package dsarray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"taskml/internal/mat"
)

func TestMatMulMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := newRT()
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(12)
		m := 1 + rng.Intn(12)
		a := randMatrix(rng, n, k)
		b := randMatrix(rng, k, m)
		shared := 1 + rng.Intn(k)
		da := FromMatrix(rt.Main(), a, 1+rng.Intn(n), shared)
		db := FromMatrix(rt.Main(), b, shared, 1+rng.Intn(m))
		prod, err := MatMul(da, db)
		if err != nil {
			return false
		}
		got, err := prod.Collect()
		if err != nil {
			return false
		}
		return mat.Equal(got, mat.Mul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The gemm_add reduction merges partial products in place; that must never
// reach backwards into the input arrays' blocks, even when an operand is
// reused across several products (block sharing) or a row/column strip has a
// single shared-dimension block (kb == 1, where the output block future IS
// the gemm_block partial).
func TestMatMulDoesNotMutateSharedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rt := newRT()
	am := randMatrix(rng, 6, 4)
	bm := randMatrix(rng, 4, 6)
	da := FromMatrix(rt.Main(), am, 3, 4) // single block on the shared dim: kb == 1
	db := FromMatrix(rt.Main(), bm, 4, 3)

	p1, err := MatMul(da, db)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := p1.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Re-run the same product from the same (possibly shared) block futures.
	p2, err := MatMul(da, db)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := p2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := mat.Mul(am, bm)
	if !mat.Equal(g1, want, 1e-9) || !mat.Equal(g2, g1, 0) {
		t.Fatal("repeated MatMul over shared blocks disagrees")
	}
	// The operands themselves must be untouched.
	ca, err := da.Collect()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := db.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(ca, am, 0) || !mat.Equal(cb, bm, 0) {
		t.Fatal("MatMul mutated an input array block")
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	rt := newRT()
	a := FromMatrix(rt.Main(), mat.New(4, 3), 2, 3)
	bad := FromMatrix(rt.Main(), mat.New(5, 2), 2, 2)
	if _, err := MatMul(a, bad); err == nil {
		t.Fatal("want inner-dimension error")
	}
	misblocked := FromMatrix(rt.Main(), mat.New(3, 2), 2, 2) // block rows 2 != a block cols 3
	if _, err := MatMul(a, misblocked); err == nil {
		t.Fatal("want block-mismatch error")
	}
}

func TestMatMulOutputBlocking(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(1))
	a := FromMatrix(rt.Main(), randMatrix(rng, 6, 4), 3, 2)
	b := FromMatrix(rt.Main(), randMatrix(rng, 4, 6), 2, 3)
	prod, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Rows() != 6 || prod.Cols() != 6 || prod.BlockRows() != 3 || prod.BlockCols() != 3 {
		t.Fatalf("output shape %dx%d blocks %dx%d", prod.Rows(), prod.Cols(), prod.BlockRows(), prod.BlockCols())
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	counts := rt.Graph().CountByName()
	// 2×2 output grid × 2 partials each.
	if counts["gemm_block"] != 8 {
		t.Fatalf("gemm_block = %d, want 8", counts["gemm_block"])
	}
	if counts["gemm_add"] != 4 {
		t.Fatalf("gemm_add = %d, want 4", counts["gemm_add"])
	}
}

func TestTransposeMatchesSerial(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(rng, 7, 5)
	a := FromMatrix(rt.Main(), m, 3, 2)
	tr := a.Transpose()
	got, err := tr.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(got, m.T(), 0) {
		t.Fatal("Transpose disagrees with serial")
	}
	if tr.Rows() != 5 || tr.Cols() != 7 || tr.BlockRows() != 2 || tr.BlockCols() != 3 {
		t.Fatalf("transpose blocking wrong: %dx%d blocks %dx%d", tr.Rows(), tr.Cols(), tr.BlockRows(), tr.BlockCols())
	}
}

func TestTransposeInvolutionDistributed(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(3))
	m := randMatrix(rng, 9, 4)
	a := FromMatrix(rt.Main(), m, 4, 3)
	back, err := a.Transpose().Transpose().Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(back, m, 0) {
		t.Fatal("double transpose is not identity")
	}
}
