package dsarray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"taskml/internal/mat"
)

func TestMatMulMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := newRT()
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(12)
		m := 1 + rng.Intn(12)
		a := randMatrix(rng, n, k)
		b := randMatrix(rng, k, m)
		shared := 1 + rng.Intn(k)
		da := FromMatrix(rt.Main(), a, 1+rng.Intn(n), shared)
		db := FromMatrix(rt.Main(), b, shared, 1+rng.Intn(m))
		prod, err := MatMul(da, db)
		if err != nil {
			return false
		}
		got, err := prod.Collect()
		if err != nil {
			return false
		}
		return mat.Equal(got, mat.Mul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	rt := newRT()
	a := FromMatrix(rt.Main(), mat.New(4, 3), 2, 3)
	bad := FromMatrix(rt.Main(), mat.New(5, 2), 2, 2)
	if _, err := MatMul(a, bad); err == nil {
		t.Fatal("want inner-dimension error")
	}
	misblocked := FromMatrix(rt.Main(), mat.New(3, 2), 2, 2) // block rows 2 != a block cols 3
	if _, err := MatMul(a, misblocked); err == nil {
		t.Fatal("want block-mismatch error")
	}
}

func TestMatMulOutputBlocking(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(1))
	a := FromMatrix(rt.Main(), randMatrix(rng, 6, 4), 3, 2)
	b := FromMatrix(rt.Main(), randMatrix(rng, 4, 6), 2, 3)
	prod, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Rows() != 6 || prod.Cols() != 6 || prod.BlockRows() != 3 || prod.BlockCols() != 3 {
		t.Fatalf("output shape %dx%d blocks %dx%d", prod.Rows(), prod.Cols(), prod.BlockRows(), prod.BlockCols())
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	counts := rt.Graph().CountByName()
	// 2×2 output grid × 2 partials each.
	if counts["gemm_block"] != 8 {
		t.Fatalf("gemm_block = %d, want 8", counts["gemm_block"])
	}
	if counts["gemm_add"] != 4 {
		t.Fatalf("gemm_add = %d, want 4", counts["gemm_add"])
	}
}

func TestTransposeMatchesSerial(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(rng, 7, 5)
	a := FromMatrix(rt.Main(), m, 3, 2)
	tr := a.Transpose()
	got, err := tr.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(got, m.T(), 0) {
		t.Fatal("Transpose disagrees with serial")
	}
	if tr.Rows() != 5 || tr.Cols() != 7 || tr.BlockRows() != 2 || tr.BlockCols() != 3 {
		t.Fatalf("transpose blocking wrong: %dx%d blocks %dx%d", tr.Rows(), tr.Cols(), tr.BlockRows(), tr.BlockCols())
	}
}

func TestTransposeInvolutionDistributed(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(3))
	m := randMatrix(rng, 9, 4)
	a := FromMatrix(rt.Main(), m, 4, 3)
	back, err := a.Transpose().Transpose().Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(back, m, 0) {
		t.Fatal("double transpose is not identity")
	}
}
