package dsarray

import (
	"taskml/internal/compss"
	"taskml/internal/mat"
)

// FromLabels loads an integer label vector as a 1-column Array with the
// given row blocking, aligned with a samples Array that shares brows —
// dislib's convention of passing x and y as twin ds-arrays.
func FromLabels(tc *compss.TaskCtx, labels []int, brows int) *Array {
	m := mat.New(len(labels), 1)
	for i, l := range labels {
		m.Set(i, 0, float64(l))
	}
	return FromMatrix(tc, m, brows, 1)
}

// LabelsToInts converts a 1-column label matrix back to ints (rounding,
// since labels travel as float64 blocks).
func LabelsToInts(m *mat.Dense) []int {
	out := make([]int, m.Rows)
	for i := range out {
		v := m.At(i, 0)
		if v >= 0 {
			out[i] = int(v + 0.5)
		} else {
			out[i] = int(v - 0.5)
		}
	}
	return out
}

// CollectLabels synchronises a 1-column Array into an int slice.
func CollectLabels(a *Array) ([]int, error) {
	m, err := a.Collect()
	if err != nil {
		return nil, err
	}
	return LabelsToInts(m), nil
}
