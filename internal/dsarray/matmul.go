package dsarray

import (
	"fmt"

	"taskml/internal/compss"
	"taskml/internal/costs"
)

// MatMul computes the distributed matrix product a·b as a new Array with
// a's row blocking and b's column blocking — dislib's blocked GEMM: one
// partial-product task per (i, k, j) block triple and a pairwise reduction
// per output block over k.
//
// Block shapes must be conformable: a's block columns must equal b's block
// rows (both arrays tile the shared dimension identically, dislib's
// requirement as well).
func MatMul(a, b *Array) (*Array, error) {
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("dsarray: MatMul shape mismatch %dx%d · %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	if a.BlockCols() != b.BlockRows() {
		return nil, fmt.Errorf("dsarray: MatMul block mismatch: a has %d block cols, b has %d block rows",
			a.BlockCols(), b.BlockRows())
	}
	tc := a.Ctx()
	nrb, ncb := a.NumRowBlocks(), b.NumColBlocks()
	kb := a.NumColBlocks()

	out := make([][]*compss.Future, nrb)
	for i := 0; i < nrb; i++ {
		out[i] = make([]*compss.Future, ncb)
		r0, r1 := a.rowRange(i)
		h := r1 - r0
		for j := 0; j < ncb; j++ {
			c0, c1 := b.colRange(j)
			w := c1 - c0
			partials := make([]*compss.Future, kb)
			for k := 0; k < kb; k++ {
				k0, k1 := a.colRange(k)
				depth := k1 - k0
				partials[k] = tc.SubmitExec(compss.Opts{
					Name:     "gemm_block",
					Exec:     "gemm_block",
					Cost:     costs.Gemm(h, depth, w),
					OutBytes: costs.Bytes(h, w),
				}, a.Block(i, k), b.Block(k, j))
			}
			// mat_add_to merges in place: each partial is a fresh gemm_block
			// output exclusively owned by this reduction (the ReduceInPlace
			// ownership contract), saving one block allocation per merge.
			out[i][j] = ReduceTree(tc, ReduceOpts{
				Name: "gemm_add", Exec: "mat_add_to",
				Cost: costs.Copy(h, w), OutBytes: costs.Bytes(h, w),
			}, partials, nil)
		}
	}
	return FromBlocks(tc, out, a.Rows(), b.Cols(), a.BlockRows(), b.BlockCols()), nil
}

// Transpose returns aᵀ as a new Array with transposed blocking, one task
// per block.
func (a *Array) Transpose() *Array {
	tc := a.Ctx()
	nrb, ncb := a.NumRowBlocks(), a.NumColBlocks()
	out := make([][]*compss.Future, ncb)
	for j := 0; j < ncb; j++ {
		out[j] = make([]*compss.Future, nrb)
	}
	for i := 0; i < nrb; i++ {
		r0, r1 := a.rowRange(i)
		for j := 0; j < ncb; j++ {
			c0, c1 := a.colRange(j)
			out[j][i] = tc.SubmitExec(compss.Opts{
				Name:     "transpose_block",
				Exec:     "transpose_block",
				Cost:     costs.Copy(r1-r0, c1-c0),
				OutBytes: costs.Bytes(c1-c0, r1-r0),
			}, a.Block(i, j))
		}
	}
	return FromBlocks(tc, out, a.Cols(), a.Rows(), a.BlockCols(), a.BlockRows())
}
