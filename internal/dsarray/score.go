package dsarray

import (
	"errors"
	"fmt"

	"taskml/internal/compss"
	"taskml/internal/costs"
	"taskml/internal/mat"
)

// Accuracy compares two aligned 1-column label arrays with one task per row
// block plus a pairwise reduction, then synchronises the scalar — the
// pattern every estimator's Score method uses ("calculates the score
// returning the mean accuracy on a given test data and labels").
func Accuracy(pred, truth *Array) (float64, error) {
	if pred.Rows() != truth.Rows() || pred.NumRowBlocks() != truth.NumRowBlocks() {
		return 0, errors.New("dsarray: prediction and truth blocking mismatch")
	}
	tc := pred.Ctx()
	partials := make([]*compss.Future, pred.NumRowBlocks())
	for i := range partials {
		partials[i] = tc.Submit(compss.Opts{
			Name:     "score_block",
			Cost:     costs.Copy(pred.RowBlockRows(i), 2),
			OutBytes: 16,
		}, func(_ *compss.TaskCtx, args []any) (any, error) {
			p := args[0].(*mat.Dense)
			t := args[1].(*mat.Dense)
			if p.Rows != t.Rows {
				return nil, fmt.Errorf("dsarray: score block rows %d vs %d", p.Rows, t.Rows)
			}
			correct := 0.0
			for r := 0; r < p.Rows; r++ {
				if int(p.At(r, 0)+0.5) == int(t.At(r, 0)+0.5) {
					correct++
				}
			}
			return mat.NewFromData(1, 2, []float64{correct, float64(p.Rows)}), nil
		}, pred.RowBlock(i), truth.RowBlock(i))
	}
	total := Reduce(tc, "score_merge", partials, 0, 16,
		func(a, b *mat.Dense) *mat.Dense { return mat.Add(a, b) })
	v, err := tc.Get(total)
	if err != nil {
		return 0, err
	}
	m := v.(*mat.Dense)
	if m.At(0, 1) == 0 {
		return 0, errors.New("dsarray: empty score")
	}
	return m.At(0, 0) / m.At(0, 1), nil
}
