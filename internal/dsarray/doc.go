// Package dsarray implements the distributed array at the heart of dislib
// (the "ds-array" of the paper's §II-B): a 2-D dataset partitioned into
// blocks, where every block is a future produced by a task on the
// internal/compss runtime. Estimators build their training workflows out of
// per-block tasks, so the runtime discovers the parallelism automatically —
// exactly the dislib/PyCOMPSs division of labour the paper describes.
//
// # Public surface
//
// Array is the block-partitioned matrix (FromMatrix / FromBlocks construct
// it; RowBlock, Map, ColSums, Gram, SubRowVec, MulDense, MatMul, Transpose
// and friends submit its per-block task workflows). Reduce / ReduceTree /
// ReduceInPlace are the merge combinators every estimator shares;
// LabelsToInts is the label codec used across the classifiers.
//
// # Concurrency and ownership
//
// Blocks are futures: once published by their producing task they are
// immutable and may feed any number of downstream tasks, including on
// out-of-process workers (block task bodies are registered with
// internal/exec and must stay argument-pure). The one exception is
// ReduceInPlace / the mat_add_to merge, which mutate their left operand —
// sanctioned only because reduction partials are exclusively owned by the
// reduction that created them. Array itself is safe for concurrent reads
// after construction.
package dsarray
