package dsarray

import (
	"fmt"

	"taskml/internal/compss"
	"taskml/internal/costs"
	"taskml/internal/mat"
)

// Array is a block-partitioned 2-D dataset. Blocks are futures resolving to
// *mat.Dense; the logical shape and the regular block size are metadata kept
// on the master, as in dislib.
type Array struct {
	tc           *compss.TaskCtx
	rows, cols   int
	brows, bcols int
	blocks       [][]*compss.Future // [rowBlock][colBlock]

	rowBlockCache []*compss.Future // lazily built hstacked row blocks
}

// FromMatrix partitions m into blocks of brows×bcols (edge blocks may be
// smaller), submitting one load task per block — the paper notes the
// 500×500 blocking of its dataset "generat[es] 631 tasks managed by
// PyCOMPSs".
func FromMatrix(tc *compss.TaskCtx, m *mat.Dense, brows, bcols int) *Array {
	if brows <= 0 || bcols <= 0 {
		panic(fmt.Sprintf("dsarray: invalid block size %dx%d", brows, bcols))
	}
	a := &Array{tc: tc, rows: m.Rows, cols: m.Cols, brows: brows, bcols: bcols}
	nrb, ncb := a.NumRowBlocks(), a.NumColBlocks()
	a.blocks = make([][]*compss.Future, nrb)
	for i := 0; i < nrb; i++ {
		a.blocks[i] = make([]*compss.Future, ncb)
		for j := 0; j < ncb; j++ {
			r0, r1 := a.rowRange(i)
			c0, c1 := a.colRange(j)
			sub := m.Slice(r0, r1, c0, c1) // sliced eagerly; the task carries the block
			a.blocks[i][j] = tc.Submit(compss.Opts{
				Name:     "load_block",
				Cost:     costs.Copy(r1-r0, c1-c0),
				OutBytes: costs.Bytes(r1-r0, c1-c0),
			}, func(_ *compss.TaskCtx, args []any) (any, error) {
				return args[0].(*mat.Dense), nil
			}, sub)
		}
	}
	return a
}

// FromBlocks wraps an existing grid of block futures (each resolving to
// *mat.Dense) into an Array. Estimators use it to return distributed
// results without synchronising.
func FromBlocks(tc *compss.TaskCtx, blocks [][]*compss.Future, rows, cols, brows, bcols int) *Array {
	return &Array{tc: tc, rows: rows, cols: cols, brows: brows, bcols: bcols, blocks: blocks}
}

// Rows returns the logical row count.
func (a *Array) Rows() int { return a.rows }

// Cols returns the logical column count.
func (a *Array) Cols() int { return a.cols }

// BlockRows returns the regular block height.
func (a *Array) BlockRows() int { return a.brows }

// BlockCols returns the regular block width.
func (a *Array) BlockCols() int { return a.bcols }

// NumRowBlocks returns the number of block rows.
func (a *Array) NumRowBlocks() int { return (a.rows + a.brows - 1) / a.brows }

// NumColBlocks returns the number of block columns.
func (a *Array) NumColBlocks() int { return (a.cols + a.bcols - 1) / a.bcols }

// Ctx returns the submitting task context.
func (a *Array) Ctx() *compss.TaskCtx { return a.tc }

// Block returns the future of block (i, j).
func (a *Array) Block(i, j int) *compss.Future { return a.blocks[i][j] }

func (a *Array) rowRange(i int) (int, int) {
	r0 := i * a.brows
	r1 := r0 + a.brows
	if r1 > a.rows {
		r1 = a.rows
	}
	return r0, r1
}

func (a *Array) colRange(j int) (int, int) {
	c0 := j * a.bcols
	c1 := c0 + a.bcols
	if c1 > a.cols {
		c1 = a.cols
	}
	return c0, c1
}

// RowBlockRows returns the height of row block i.
func (a *Array) RowBlockRows(i int) int {
	r0, r1 := a.rowRange(i)
	return r1 - r0
}

// RowBlock returns a future resolving to the full row block i (all column
// blocks concatenated). dislib estimators whose parallelism "is based on
// the number of row blocks" (CSVM, KNN, the scaler) consume these. The
// concatenation task is submitted once per row block and cached.
func (a *Array) RowBlock(i int) *compss.Future {
	if a.rowBlockCache == nil {
		a.rowBlockCache = make([]*compss.Future, a.NumRowBlocks())
	}
	if f := a.rowBlockCache[i]; f != nil {
		return f
	}
	if a.NumColBlocks() == 1 {
		a.rowBlockCache[i] = a.blocks[i][0]
		return a.blocks[i][0]
	}
	r0, r1 := a.rowRange(i)
	f := a.tc.SubmitExec(compss.Opts{
		Name:     "row_block",
		Exec:     "row_block",
		Cost:     costs.Copy(r1-r0, a.cols),
		OutBytes: costs.Bytes(r1-r0, a.cols),
	}, a.blocks[i])
	a.rowBlockCache[i] = f
	return f
}

// Collect synchronises on every block and assembles the full matrix on the
// master. Like dislib's collect() it is a synchronisation point.
func (a *Array) Collect() (*mat.Dense, error) {
	rowParts := make([]*mat.Dense, a.NumRowBlocks())
	for i := range a.blocks {
		colParts := make([]*mat.Dense, a.NumColBlocks())
		for j := range a.blocks[i] {
			v, err := a.tc.Get(a.blocks[i][j])
			if err != nil {
				return nil, err
			}
			colParts[j] = v.(*mat.Dense)
		}
		rowParts[i] = mat.HStack(colParts...)
	}
	return mat.VStack(rowParts...), nil
}

// Map applies f to every block through one task per block, preserving the
// blocking. costFn receives each block's dimensions and returns the task's
// virtual cost; name labels the tasks in the graph.
func (a *Array) Map(name string, costFn func(r, c int) float64, f func(*mat.Dense) *mat.Dense) *Array {
	out := make([][]*compss.Future, a.NumRowBlocks())
	for i := range a.blocks {
		out[i] = make([]*compss.Future, a.NumColBlocks())
		for j := range a.blocks[i] {
			r0, r1 := a.rowRange(i)
			c0, c1 := a.colRange(j)
			out[i][j] = a.tc.Submit(compss.Opts{
				Name:     name,
				Cost:     costFn(r1-r0, c1-c0),
				OutBytes: costs.Bytes(r1-r0, c1-c0),
			}, func(_ *compss.TaskCtx, args []any) (any, error) {
				return f(args[0].(*mat.Dense)), nil
			}, a.blocks[i][j])
		}
	}
	return FromBlocks(a.tc, out, a.rows, a.cols, a.brows, a.bcols)
}

// ColSums computes the per-column sums as a future of a 1×cols matrix,
// using one partial-sum task per block and a pairwise reduction tree — the
// first map-reduce phase of dislib's PCA.
func (a *Array) ColSums() *compss.Future {
	partials := make([]*compss.Future, 0, a.NumRowBlocks()*a.NumColBlocks())
	for i := range a.blocks {
		for j := range a.blocks[i] {
			r0, r1 := a.rowRange(i)
			c0, c1 := a.colRange(j)
			partials = append(partials, a.tc.SubmitExec(compss.Opts{
				Name:     "col_sum",
				Exec:     "col_sum",
				Cost:     costs.Copy(r1-r0, c1-c0),
				OutBytes: costs.Bytes(1, a.cols),
			}, a.blocks[i][j], j*a.bcols, a.cols))
		}
	}
	return ReduceTree(a.tc, ReduceOpts{
		Name: "sum_merge", Exec: "mat_add",
		Cost: costs.Copy(1, a.cols), OutBytes: costs.Bytes(1, a.cols),
	}, partials, nil)
}

// Gram computes xᵀx as a future of a cols×cols matrix: one partial Gram
// task per row block plus a pairwise reduction — the covariance estimation
// phase of the paper's PCA ("partitioning the samples only by row blocks.
// Hence, an unpartitioned covariance matrix ... is obtained").
func (a *Array) Gram() *compss.Future {
	partials := make([]*compss.Future, a.NumRowBlocks())
	for i := 0; i < a.NumRowBlocks(); i++ {
		rb := a.RowBlock(i)
		h := a.RowBlockRows(i)
		partials[i] = a.tc.SubmitExec(compss.Opts{
			Name:     "partial_gram",
			Exec:     "partial_gram",
			Cost:     costs.Gemm(a.cols, h, a.cols),
			OutBytes: costs.Bytes(a.cols, a.cols),
		}, rb)
	}
	return ReduceTree(a.tc, ReduceOpts{
		Name: "gram_merge", Exec: "mat_add",
		Cost: costs.Copy(a.cols, a.cols), OutBytes: costs.Bytes(a.cols, a.cols),
	}, partials, nil)
}

// SubRowVec subtracts a (future) 1×cols row vector from every row of every
// block — the centering step of PCA and the scaler.
func (a *Array) SubRowVec(v *compss.Future) *Array {
	out := make([][]*compss.Future, a.NumRowBlocks())
	for i := range a.blocks {
		out[i] = make([]*compss.Future, a.NumColBlocks())
		for j := range a.blocks[i] {
			r0, r1 := a.rowRange(i)
			c0, c1 := a.colRange(j)
			out[i][j] = a.tc.SubmitExec(compss.Opts{
				Name:     "center_block",
				Exec:     "center_block",
				Cost:     costs.Copy(r1-r0, c1-c0),
				OutBytes: costs.Bytes(r1-r0, c1-c0),
			}, a.blocks[i][j], v, j*a.bcols)
		}
	}
	return FromBlocks(a.tc, out, a.rows, a.cols, a.brows, a.bcols)
}

// MulDense computes a·w for a (future) dense cols×outCols matrix w,
// producing an Array with the same row blocking and a single column block —
// the PCA transform applied per row block.
func (a *Array) MulDense(w *compss.Future, outCols int) *Array {
	nrb := a.NumRowBlocks()
	out := make([][]*compss.Future, nrb)
	for i := 0; i < nrb; i++ {
		rb := a.RowBlock(i)
		h := a.RowBlockRows(i)
		out[i] = []*compss.Future{a.tc.SubmitExec(compss.Opts{
			Name:     "transform_block",
			Exec:     "transform_block",
			Cost:     costs.Gemm(h, a.cols, outCols),
			OutBytes: costs.Bytes(h, outCols),
		}, rb, w)}
	}
	return FromBlocks(a.tc, out, a.rows, outCols, a.brows, outCols)
}

// ReduceOpts parameterises a reduction tree.
type ReduceOpts struct {
	// Name labels the merge tasks in the captured graph.
	Name string
	// Exec, when non-empty, names a registered backend function (see
	// internal/exec) used as the merge body instead of the closure passed to
	// ReduceTree — merges of an Exec reduction can run on worker processes
	// when the runtime has a remote backend. The function must be binary:
	// merge(x, y) with both arguments *mat.Dense.
	Exec string
	// Cost and OutBytes describe each merge task.
	Cost     float64
	OutBytes int64
	// Fallback, when non-nil, is declared on every merge task so a runtime
	// running under compss.Degrade substitutes it for a merge whose attempts
	// are exhausted, letting the reduction proceed on partial results.
	// It should be the reduction's neutral element (e.g. ±Inf ranges for a
	// min/max merge) and is shared between tasks: treat it as read-only.
	Fallback *mat.Dense
}

// Reduce merges a slice of futures pairwise with a binary task tree — the
// reduction pattern of dislib (and of the CSVM cascade). mergeCost and
// outBytes describe each merge task; f combines two partial results.
func Reduce(tc *compss.TaskCtx, name string, futs []*compss.Future, mergeCost float64, outBytes int64, f func(x, y *mat.Dense) *mat.Dense) *compss.Future {
	return ReduceTree(tc, ReduceOpts{Name: name, Cost: mergeCost, OutBytes: outBytes}, futs, f)
}

// ReduceTree is Reduce with full per-merge options, including a degraded-
// mode fallback. When o.Exec names a registered merge, f is unused (pass
// nil) and the merges dispatch through the runtime's execution backend.
func ReduceTree(tc *compss.TaskCtx, o ReduceOpts, futs []*compss.Future, f func(x, y *mat.Dense) *mat.Dense) *compss.Future {
	if len(futs) == 0 {
		panic("dsarray: Reduce of zero futures")
	}
	if o.Exec == "" && f == nil {
		panic("dsarray: ReduceTree needs a merge function or ReduceOpts.Exec")
	}
	var fb any
	if o.Fallback != nil {
		fb = o.Fallback
	}
	merge := func(x, y *compss.Future) *compss.Future {
		opts := compss.Opts{
			Name:     o.Name,
			Exec:     o.Exec,
			Cost:     o.Cost,
			OutBytes: o.OutBytes,
			Fallback: fb,
		}
		if o.Exec != "" {
			return tc.SubmitExec(opts, x, y)
		}
		return tc.Submit(opts, func(_ *compss.TaskCtx, args []any) (any, error) {
			return f(args[0].(*mat.Dense), args[1].(*mat.Dense)), nil
		}, x, y)
	}
	level := futs
	for len(level) > 1 {
		next := make([]*compss.Future, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			next = append(next, merge(level[i], level[i+1]))
		}
		level = next
	}
	return level[0]
}

// ReduceInPlace is Reduce for merges that accumulate src into dst instead of
// allocating a combined result, saving one full-block allocation per merge
// step. The ownership contract: every future in futs must be exclusively
// owned by this reduction — a fresh task output with no other consumer —
// because merge tasks mutate their first argument. The tree shape and task
// names are identical to Reduce's.
func ReduceInPlace(tc *compss.TaskCtx, name string, futs []*compss.Future, mergeCost float64, outBytes int64, f func(dst, src *mat.Dense)) *compss.Future {
	return Reduce(tc, name, futs, mergeCost, outBytes, func(x, y *mat.Dense) *mat.Dense {
		f(x, y)
		return x
	})
}
