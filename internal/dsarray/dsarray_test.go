package dsarray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"taskml/internal/compss"
	"taskml/internal/mat"
)

func newRT() *compss.Runtime { return compss.New(compss.Config{Workers: 4}) }

func randMatrix(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestRoundTripCollect(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 17, 11)
	a := FromMatrix(rt.Main(), m, 5, 4)
	got, err := a.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(got, m, 0) {
		t.Fatal("Collect does not round-trip FromMatrix")
	}
}

func TestBlockGridShape(t *testing.T) {
	rt := newRT()
	m := mat.New(17, 11)
	a := FromMatrix(rt.Main(), m, 5, 4)
	if a.NumRowBlocks() != 4 || a.NumColBlocks() != 3 {
		t.Fatalf("grid = %dx%d, want 4x3", a.NumRowBlocks(), a.NumColBlocks())
	}
	if a.Rows() != 17 || a.Cols() != 11 || a.BlockRows() != 5 || a.BlockCols() != 4 {
		t.Fatal("shape metadata wrong")
	}
	if a.RowBlockRows(3) != 2 {
		t.Fatalf("last row block height = %d, want 2", a.RowBlockRows(3))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	// One load task per block.
	if n := rt.Graph().CountByName()["load_block"]; n != 12 {
		t.Fatalf("load tasks = %d, want 12", n)
	}
}

func TestExactBlockingNoRemainder(t *testing.T) {
	rt := newRT()
	m := mat.New(10, 8)
	a := FromMatrix(rt.Main(), m, 5, 4)
	if a.NumRowBlocks() != 2 || a.NumColBlocks() != 2 {
		t.Fatalf("grid = %dx%d, want 2x2", a.NumRowBlocks(), a.NumColBlocks())
	}
}

func TestInvalidBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FromMatrix(newRT().Main(), mat.New(2, 2), 0, 1)
}

func TestRowBlockConcatenation(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(rng, 9, 10)
	a := FromMatrix(rt.Main(), m, 4, 3)
	for i := 0; i < a.NumRowBlocks(); i++ {
		v, err := rt.Get(a.RowBlock(i))
		if err != nil {
			t.Fatal(err)
		}
		blk := v.(*mat.Dense)
		r0 := i * 4
		r1 := r0 + blk.Rows
		if !mat.Equal(blk, m.Slice(r0, r1, 0, 10), 0) {
			t.Fatalf("row block %d mismatch", i)
		}
	}
}

func TestRowBlockCached(t *testing.T) {
	rt := newRT()
	m := mat.New(8, 8)
	a := FromMatrix(rt.Main(), m, 4, 4)
	f1 := a.RowBlock(0)
	f2 := a.RowBlock(0)
	if f1 != f2 {
		t.Fatal("RowBlock not cached")
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if n := rt.Graph().CountByName()["row_block"]; n != 1 {
		t.Fatalf("row_block tasks = %d, want 1", n)
	}
}

func TestRowBlockSingleColumnBlockIsDirect(t *testing.T) {
	rt := newRT()
	m := mat.New(8, 4)
	a := FromMatrix(rt.Main(), m, 4, 4)
	if a.RowBlock(0) != a.Block(0, 0) {
		t.Fatal("single-col-block row block should be the block itself")
	}
}

func TestMapPreservesBlockingAndApplies(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(3))
	m := randMatrix(rng, 7, 5)
	a := FromMatrix(rt.Main(), m, 3, 2)
	doubled := a.Map("double", func(r, c int) float64 { return 0 }, func(b *mat.Dense) *mat.Dense {
		return mat.Scale(2, b)
	})
	got, err := doubled.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(got, mat.Scale(2, m), 1e-12) {
		t.Fatal("Map(double) wrong")
	}
	if doubled.NumRowBlocks() != a.NumRowBlocks() || doubled.NumColBlocks() != a.NumColBlocks() {
		t.Fatal("Map changed blocking")
	}
}

func TestColSumsMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := newRT()
		r, c := 1+rng.Intn(20), 1+rng.Intn(10)
		m := randMatrix(rng, r, c)
		a := FromMatrix(rt.Main(), m, 1+rng.Intn(8), 1+rng.Intn(6))
		v, err := rt.Get(a.ColSums())
		if err != nil {
			return false
		}
		got := v.(*mat.Dense)
		want := mat.ColSums(m)
		for j := 0; j < c; j++ {
			if math.Abs(got.At(0, j)-want[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGramMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := newRT()
		r, c := 2+rng.Intn(20), 1+rng.Intn(8)
		m := randMatrix(rng, r, c)
		a := FromMatrix(rt.Main(), m, 1+rng.Intn(7), 1+rng.Intn(4))
		v, err := rt.Get(a.Gram())
		if err != nil {
			return false
		}
		return mat.Equal(v.(*mat.Dense), mat.MulAtB(m, m), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSubRowVecCenters(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(5))
	m := randMatrix(rng, 12, 7)
	a := FromMatrix(rt.Main(), m, 5, 3)
	sums := a.ColSums()
	means := rt.Submit(compss.Opts{Name: "mean"}, func(_ *compss.TaskCtx, args []any) (any, error) {
		s := args[0].(*mat.Dense)
		return mat.Scale(1/float64(m.Rows), s), nil
	}, sums)
	centered, err := a.SubRowVec(means).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range mat.ColMeans(centered) {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("column %d mean = %v after centering", j, v)
		}
	}
	// Original array must be untouched.
	orig, err := a.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(orig, m, 0) {
		t.Fatal("SubRowVec mutated source blocks")
	}
}

func TestMulDense(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(6))
	m := randMatrix(rng, 9, 6)
	w := randMatrix(rng, 6, 2)
	a := FromMatrix(rt.Main(), m, 4, 3)
	wf := rt.Submit(compss.Opts{Name: "w"}, func(_ *compss.TaskCtx, _ []any) (any, error) { return w, nil })
	prod := a.MulDense(wf, 2)
	got, err := prod.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(got, mat.Mul(m, w), 1e-10) {
		t.Fatal("MulDense disagrees with serial product")
	}
	if prod.Cols() != 2 || prod.NumColBlocks() != 1 || prod.NumRowBlocks() != a.NumRowBlocks() {
		t.Fatal("MulDense output blocking wrong")
	}
}

func TestMulDenseShapeErrorPropagates(t *testing.T) {
	rt := newRT()
	m := mat.New(4, 3)
	a := FromMatrix(rt.Main(), m, 2, 3)
	bad := rt.Submit(compss.Opts{Name: "w"}, func(_ *compss.TaskCtx, _ []any) (any, error) {
		return mat.New(5, 2), nil // wrong inner dim
	})
	if _, err := a.MulDense(bad, 2).Collect(); err == nil {
		t.Fatal("want shape error")
	}
}

func TestReduceTreeShape(t *testing.T) {
	rt := newRT()
	var futs []*compss.Future
	for i := 0; i < 8; i++ {
		v := float64(i)
		futs = append(futs, rt.Submit(compss.Opts{Name: "leaf"}, func(_ *compss.TaskCtx, _ []any) (any, error) {
			return mat.NewFromData(1, 1, []float64{v}), nil
		}))
	}
	total := Reduce(rt.Main(), "merge", futs, 0, 8, func(x, y *mat.Dense) *mat.Dense { return mat.Add(x, y) })
	v, err := rt.Get(total)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*mat.Dense).At(0, 0) != 28 {
		t.Fatalf("reduce sum = %v, want 28", v.(*mat.Dense).At(0, 0))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	// 8 leaves → 4+2+1 merges.
	if n := rt.Graph().CountByName()["merge"]; n != 7 {
		t.Fatalf("merge tasks = %d, want 7", n)
	}
}

func TestReduceOddCount(t *testing.T) {
	rt := newRT()
	var futs []*compss.Future
	for i := 0; i < 5; i++ {
		v := float64(i)
		futs = append(futs, rt.Submit(compss.Opts{Name: "leaf"}, func(_ *compss.TaskCtx, _ []any) (any, error) {
			return mat.NewFromData(1, 1, []float64{v}), nil
		}))
	}
	total := Reduce(rt.Main(), "merge", futs, 0, 8, func(x, y *mat.Dense) *mat.Dense { return mat.Add(x, y) })
	v, err := rt.Get(total)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*mat.Dense).At(0, 0) != 10 {
		t.Fatalf("reduce sum = %v, want 10", v.(*mat.Dense).At(0, 0))
	}
}

func TestReduceSingle(t *testing.T) {
	rt := newRT()
	f := rt.Submit(compss.Opts{Name: "leaf"}, func(_ *compss.TaskCtx, _ []any) (any, error) {
		return mat.NewFromData(1, 1, []float64{7}), nil
	})
	out := Reduce(rt.Main(), "merge", []*compss.Future{f}, 0, 8, func(x, y *mat.Dense) *mat.Dense { return mat.Add(x, y) })
	if out != f {
		t.Fatal("Reduce of one future must return it unchanged")
	}
}

func TestReduceEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Reduce(newRT().Main(), "m", nil, 0, 0, func(x, y *mat.Dense) *mat.Dense { return x })
}

func TestGraphValidAfterPipeline(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(7))
	m := randMatrix(rng, 20, 12)
	a := FromMatrix(rt.Main(), m, 6, 5)
	sums := a.ColSums()
	means := rt.Submit(compss.Opts{Name: "mean"}, func(_ *compss.TaskCtx, args []any) (any, error) {
		return mat.Scale(1/float64(m.Rows), args[0].(*mat.Dense)), nil
	}, sums)
	centered := a.SubRowVec(means)
	if _, err := rt.Get(centered.Gram()); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	if rt.Graph().CriticalPath() <= 0 {
		t.Fatal("pipeline critical path must be positive")
	}
}

func BenchmarkGram32Blocks(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := randMatrix(rng, 512, 64)
	for i := 0; i < b.N; i++ {
		rt := newRT()
		a := FromMatrix(rt.Main(), m, 16, 64)
		if _, err := rt.Get(a.Gram()); err != nil {
			b.Fatal(err)
		}
	}
}

// ReduceTree with a declared fallback under a Degrade runtime: a merge that
// loses all its retries publishes the neutral element and the reduction
// still completes with the surviving partials folded in.
func TestReduceTreeDegradesToFallback(t *testing.T) {
	rt := compss.New(compss.Config{
		Workers:        4,
		OnTaskFailure:  compss.Degrade,
		DefaultRetries: 1,
		Faults: &compss.FaultPlan{Faults: []compss.Fault{
			{Name: "sum_merge", Nth: 0, Attempts: -1, Mode: compss.FaultError},
		}},
	})
	tc := rt.Main()
	vals := []float64{1, 2, 4, 8}
	futs := make([]*compss.Future, len(vals))
	for i, v := range vals {
		vv := v
		futs[i] = tc.Submit(compss.Opts{Name: "leaf", Cost: 1, OutBytes: 8},
			func(_ *compss.TaskCtx, _ []any) (any, error) {
				m := mat.New(1, 1)
				m.Set(0, 0, vv)
				return m, nil
			})
	}
	zero := mat.New(1, 1) // additive neutral element
	red := ReduceTree(tc, ReduceOpts{Name: "sum_merge", Cost: 1, OutBytes: 8,
		Fallback: zero}, futs,
		func(a, b *mat.Dense) *mat.Dense {
			out := a.Clone()
			out.Set(0, 0, a.At(0, 0)+b.At(0, 0))
			return out
		})
	v, err := tc.Get(red)
	if err != nil {
		t.Fatalf("degraded reduction must complete: %v", err)
	}
	got := v.(*mat.Dense).At(0, 0)
	// First merge (1+2) degraded to 0; the tree still folds 4 and 8 in.
	if got != 12 {
		t.Fatalf("degraded tree sum = %v, want 12 (lost the 1+2 merge)", got)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatalf("Barrier after degradation: %v", err)
	}
	if len(rt.Graph().DegradedTasks()) != 1 {
		t.Fatalf("want exactly one degraded merge, got %v", rt.Graph().DegradedTasks())
	}
}
