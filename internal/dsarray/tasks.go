package dsarray

import (
	"fmt"

	"taskml/internal/exec"
	"taskml/internal/mat"
)

// Registered task bodies of the distributed array. Each is the
// argument-pure form of a block task dsarray submits: the loop state the
// original closures captured (column offsets, logical widths) travels as
// trailing scalar arguments, so the same body runs in-process and on a
// worker process byte-for-byte identically (see internal/exec).
func init() {
	// row_block: concatenate a row of blocks ([]any of *mat.Dense).
	exec.Register("row_block", func(args []any) (any, error) {
		blocks := args[0].([]any)
		parts := make([]*mat.Dense, 0, len(blocks))
		for _, v := range blocks {
			parts = append(parts, v.(*mat.Dense))
		}
		return mat.HStack(parts...), nil
	})

	// col_sum(blk, off, cols): per-column sums of one block, scattered into
	// a fresh 1×cols row at column offset off.
	exec.Register("col_sum", func(args []any) (any, error) {
		blk := args[0].(*mat.Dense)
		off := args[1].(int)
		cols := args[2].(int)
		full := mat.New(1, cols)
		sums := mat.ColSums(blk)
		copy(full.Row(0)[off:off+len(sums)], sums)
		return full, nil
	})

	// mat_add(x, y): freshly-allocated elementwise sum — the generic merge
	// of the ColSums / Gram / scaler reduction trees.
	exec.Register("mat_add", func(args []any) (any, error) {
		return mat.Add(args[0].(*mat.Dense), args[1].(*mat.Dense)), nil
	})

	// mat_add_to(dst, src): dst += src, returning dst. The in-place merge of
	// reductions whose partials are exclusively owned (ReduceOpts contract);
	// on a worker dst is the decoded copy, so mutation is process-local.
	exec.Register("mat_add_to", func(args []any) (any, error) {
		dst := args[0].(*mat.Dense)
		mat.AddInPlace(dst, args[1].(*mat.Dense))
		return dst, nil
	})

	// partial_gram(blk): blkᵀ·blk.
	exec.Register("partial_gram", func(args []any) (any, error) {
		blk := args[0].(*mat.Dense)
		return mat.MulAtB(blk, blk), nil
	})

	// center_block(blk, vec, off): blk minus the [off, off+cols) window of
	// the 1×d row vector vec, as a fresh block.
	exec.Register("center_block", func(args []any) (any, error) {
		blk := args[0].(*mat.Dense).Clone()
		vec := args[1].(*mat.Dense)
		off := args[2].(int)
		mat.SubRowVec(blk, vec.Row(0)[off:off+blk.Cols])
		return blk, nil
	})

	// transform_block(blk, w): blk·w.
	exec.Register("transform_block", func(args []any) (any, error) {
		blk := args[0].(*mat.Dense)
		wm := args[1].(*mat.Dense)
		if wm.Rows != blk.Cols {
			return nil, fmt.Errorf("dsarray: transform shape mismatch %dx%d · %dx%d", blk.Rows, blk.Cols, wm.Rows, wm.Cols)
		}
		return mat.Mul(blk, wm), nil
	})

	// gemm_block(x, y): one partial product of the blocked GEMM, into a
	// fresh output block (the gemm_add reduction merges in place, so each
	// partial must be exclusively owned and never alias an input block).
	exec.Register("gemm_block", func(args []any) (any, error) {
		x := args[0].(*mat.Dense)
		y := args[1].(*mat.Dense)
		if x.Cols != y.Rows {
			return nil, fmt.Errorf("dsarray: block product %dx%d · %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
		}
		p := mat.New(x.Rows, y.Cols)
		mat.MulAdd(p, x, y)
		return p, nil
	})

	// transpose_block(blk): blkᵀ.
	exec.Register("transpose_block", func(args []any) (any, error) {
		return args[0].(*mat.Dense).T(), nil
	})
}
