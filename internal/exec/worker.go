package exec

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"

	"taskml/internal/par"
)

// WorkerConfig configures Serve.
type WorkerConfig struct {
	// Slots is how many task bodies run concurrently. Default 1 — the
	// dislib-like configuration of one serial body per worker process, with
	// parallelism coming from many workers.
	Slots int
	// CacheBytes bounds the per-connection future cache (see cache.go).
	// Default DefaultCacheBytes; <0 disables caching (0 means default).
	CacheBytes int64
	// Log receives human-readable progress lines; nil discards them.
	Log io.Writer
}

// DefaultCacheBytes is the future-cache bound applied when WorkerConfig
// leaves CacheBytes zero: large enough to hold every block of the
// experiment workloads, small enough to be irrelevant next to the data
// itself.
const DefaultCacheBytes = 256 << 20

// Serve runs the worker loop on an accepted listener until the listener
// closes: accept coordinator connections, send the handshake, execute
// registered functions, reply. Each connection is independent (a worker can
// serve several coordinators) and owns a private future cache — the task-id
// namespace is per-coordinator; within a connection requests run
// concurrently, bounded by Slots.
//
// The worker caps the kernel layer at par.SetLimit(1): its parallelism
// budget is Slots concurrent *bodies*, matching the contract the runtime's
// in-process pool follows (DESIGN.md, "The kernel layer").
func Serve(l net.Listener, cfg WorkerConfig) error {
	slots := cfg.Slots
	if slots < 1 {
		slots = 1
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	par.SetLimit(1)
	fmt.Fprintf(logw, "worker: pid %d serving %d registered functions on %s (%d slots, %d MB cache)\n",
		os.Getpid(), len(Names()), l.Addr(), slots, cacheBytes>>20)
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, slots, cacheBytes, logw)
	}
}

func serveConn(conn net.Conn, slots int, cacheBytes int64, logw io.Writer) {
	defer conn.Close()
	var sendMu sync.Mutex
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(&hello{Proto: protoVersion, Pid: os.Getpid(), Slots: slots}); err != nil {
		fmt.Fprintf(logw, "worker: handshake: %v\n", err)
		return
	}
	cache := newFutureCache(cacheBytes)
	sem := make(chan struct{}, slots)
	dec := gob.NewDecoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				fmt.Fprintf(logw, "worker: connection closed: %v\n", err)
			}
			return
		}
		sem <- struct{}{}
		go func(req request) {
			defer func() { <-sem }()
			resp := handle(req, cache)
			// Eviction reports ride on whichever response is next; draining
			// immediately before the send keeps each eviction reported
			// exactly once and at most one response late.
			resp.Evicted = cache.drainEvicted()
			resp.CacheBytes = cache.occupancy()
			sendMu.Lock()
			err := enc.Encode(&resp)
			sendMu.Unlock()
			if err != nil {
				fmt.Fprintf(logw, "worker: replying to %s (req %d): %v\n", req.Name, req.ID, err)
			}
		}(req)
	}
}

// resolveArgs walks the request arguments replacing wire references with
// values: a ValueRef is looked up in the cache (the hit hands the body a
// private clone), a RefValue contributes its inline value and seeds the
// cache under its identity. Nested references inside a []any argument (the
// wire form of a []*Future parameter) resolve the same way.
//
// When any ValueRef misses, resolution fails as a whole: the returned miss
// list is non-empty, and the caller must not run the body. Stored
// insertions performed before the miss was discovered are still real (and
// still reported) — the resent request will find them resident.
func resolveArgs(args []any, cache *futureCache) (resolved []any, miss []ValueRef, stored []StoredRef, hits, misses int) {
	var resolveOne func(v any) any
	resolveOne = func(v any) any {
		switch x := v.(type) {
		case ValueRef:
			if val, ok := cache.get(x); ok {
				hits++
				return val
			}
			misses++
			miss = append(miss, x)
			return nil
		case RefValue:
			if n, ok := cache.put(x.Ref, x.Val); ok {
				stored = append(stored, StoredRef{Ref: x.Ref, Bytes: n})
			}
			return x.Val
		case []any:
			out := make([]any, len(x))
			for i, e := range x {
				out[i] = resolveOne(e)
			}
			return out
		default:
			return v
		}
	}
	resolved = make([]any, len(args))
	for i, a := range args {
		resolved[i] = resolveOne(a)
	}
	return resolved, miss, stored, hits, misses
}

// handle executes one request with panic containment: a panicking body
// fails its request, not the worker process, mirroring the in-process
// runtime's panic→error conversion. Reference arguments are resolved
// against the connection's future cache first; an unresolvable reference
// turns the request into a Miss reply without running the body.
func handle(req request, cache *futureCache) (resp response) {
	resp.ID = req.ID
	defer func() {
		if r := recover(); r != nil {
			resp.Vals = nil
			resp.Err = fmt.Sprintf("%s: panic: %v", req.Name, r)
		}
	}()
	args, miss, stored, hits, misses := resolveArgs(req.Args, cache)
	resp.Stored = stored
	resp.RefHits = hits
	resp.RefMisses = misses
	if len(miss) > 0 {
		resp.Miss = miss
		return resp
	}
	vals, err := Invoke(req.Name, req.NOut, args)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	if req.Store {
		for i, v := range vals {
			ref := ValueRef{Session: req.Session, Task: req.Task, Out: i}
			if n, ok := cache.put(ref, v); ok {
				resp.Stored = append(resp.Stored, StoredRef{Ref: ref, Bytes: n})
			}
		}
	}
	resp.Vals = vals
	return resp
}

// Env vars of the loopback re-exec protocol (see SpawnLoopback): when
// workerEnvListen is set, MaybeWorkerMain turns the current process into a
// worker instead of running its normal main.
const (
	workerEnvListen  = "TASKML_EXEC_WORKER"
	workerEnvSlots   = "TASKML_EXEC_SLOTS"
	workerEnvCacheMB = "TASKML_EXEC_CACHE_MB"
	// workerReadyPrefix is the machine-readable first stdout line carrying
	// the bound address back to the spawning coordinator.
	workerReadyPrefix = "TASKML_WORKER_LISTENING "
)

// MaybeWorkerMain is the loopback re-exec hook: binaries that can act as
// loopback workers (the cmd tools, test binaries via TestMain) call it
// first thing. When TASKML_EXEC_WORKER is unset it returns immediately;
// when set, the process binds that address, prints the bound address on
// stdout for the spawning coordinator, serves registered functions until
// killed, and never returns.
func MaybeWorkerMain() {
	addr := os.Getenv(workerEnvListen)
	if addr == "" {
		return
	}
	slots := 1
	if s := os.Getenv(workerEnvSlots); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			slots = n
		}
	}
	var cacheBytes int64
	if s := os.Getenv(workerEnvCacheMB); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			if n <= 0 {
				cacheBytes = -1 // caching disabled
			} else {
				cacheBytes = int64(n) << 20
			}
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: listen %s: %v\n", addr, err)
		os.Exit(1)
	}
	fmt.Printf("%s%s\n", workerReadyPrefix, l.Addr())
	err = Serve(l, WorkerConfig{Slots: slots, CacheBytes: cacheBytes, Log: os.Stderr})
	fmt.Fprintf(os.Stderr, "worker: %v\n", err)
	os.Exit(1)
}
