package exec

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"taskml/internal/par"
)

// WorkerConfig configures Serve.
type WorkerConfig struct {
	// Slots is how many task bodies run concurrently. Default 1 — the
	// dislib-like configuration of one serial body per worker process, with
	// parallelism coming from many workers.
	Slots int
	// CacheBytes bounds the per-connection future cache (see cache.go).
	// Default DefaultCacheBytes; <0 disables caching (0 means default).
	CacheBytes int64
	// PeerListen is the worker-to-worker transfer listen address (protocol
	// 4, see peer.go): "" binds ":0" (the default — peer transfers on, any
	// free port), "off" disables the peer plane for this worker. The bound
	// address is advertised to the coordinator in the hello; one listener
	// serves every coordinator connection of the process. Disabling the
	// cache (CacheBytes < 0) disables the peer plane too — a worker with
	// nothing resident has nothing to serve.
	PeerListen string
	// PeerFetchTimeout bounds one peer fetch (dial + transfer); a fetch
	// that exceeds it degrades into a Miss and the coordinator re-sends the
	// value. Default 5s.
	PeerFetchTimeout time.Duration
	// Log receives human-readable progress lines; nil discards them.
	Log io.Writer
}

// DefaultCacheBytes is the future-cache bound applied when WorkerConfig
// leaves CacheBytes zero: large enough to hold every block of the
// experiment workloads, small enough to be irrelevant next to the data
// itself.
const DefaultCacheBytes = 256 << 20

// Serve runs the worker loop on an accepted listener until the listener
// closes: accept coordinator connections, send the handshake, execute
// registered functions, reply. Each connection is independent (a worker can
// serve several coordinators) and owns a private future cache — the task-id
// namespace is per-coordinator; within a connection requests run
// concurrently, bounded by Slots.
//
// The worker caps the kernel layer at par.SetLimit(1): its parallelism
// budget is Slots concurrent *bodies*, matching the contract the runtime's
// in-process pool follows (DESIGN.md, "The kernel layer").
func Serve(l net.Listener, cfg WorkerConfig) error {
	slots := cfg.Slots
	if slots < 1 {
		slots = 1
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	par.SetLimit(1)
	fmt.Fprintf(logw, "worker: pid %d serving %d registered functions on %s (%d slots, %d MB cache)\n",
		os.Getpid(), len(Names()), l.Addr(), slots, cacheBytes>>20)
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, slots, cfg, cacheBytes, logw)
	}
}

func serveConn(conn net.Conn, slots int, cfg WorkerConfig, cacheBytes int64, logw io.Writer) {
	defer conn.Close()
	plane := newConnPlane(cacheBytes, cfg, logw)
	defer plane.close()
	enc := gob.NewEncoder(conn)
	h := &hello{Proto: protoVersion, Pid: os.Getpid(), Slots: slots,
		PeerAddr: plane.peerAddr, PeerToken: plane.peerTok}
	if err := enc.Encode(h); err != nil {
		fmt.Fprintf(logw, "worker: handshake: %v\n", err)
		return
	}
	serveLoop(conn, enc, slots, plane, logw, nil)
}

// connPlane is one coordinator connection's data-plane state: the private
// future cache plus, when the peer plane is on, the peer-serving store
// registered under this connection's fresh token and the fetcher that pulls
// PeerRefs from other workers. store and fetcher are nil when peer
// transfers are disabled (PeerListen "off", cache disabled, or the peer
// bind failed) — the connection then advertises no PeerAddr and the
// coordinator routes all values through itself, exactly the protocol-2
// behaviour.
type connPlane struct {
	cache    *futureCache
	peerAddr string
	peerTok  string
	store    *peerStore
	fetcher  *peerFetcher
}

func newConnPlane(cacheBytes int64, cfg WorkerConfig, logw io.Writer) *connPlane {
	p := &connPlane{cache: newFutureCache(cacheBytes)}
	if cfg.PeerListen == "off" || cacheBytes <= 0 {
		return p
	}
	addr, tok, store := registerPeerStore(p.cache, cfg.PeerListen, logw)
	if addr == "" {
		return p
	}
	p.peerAddr, p.peerTok, p.store = addr, tok, store
	p.fetcher = newPeerFetcher(cfg.PeerFetchTimeout)
	return p
}

// close retires the connection's peer-plane state: the token stops
// resolving (the stale-session guard) and the fetch links drop.
func (p *connPlane) close() {
	deregisterPeerStore(p.peerTok)
	if p.fetcher != nil {
		p.fetcher.close()
	}
}

// serveLoop is the post-handshake body of one coordinator connection:
// decode requests, execute them concurrently (bounded by slots, each
// resolved against the connection's private future cache and peer fetcher),
// reply in completion order. busy, when non-nil, tracks the connection's
// in-flight request count (the elastic join pool sizes itself from it).
// Returns when the connection closes.
func serveLoop(conn net.Conn, enc *gob.Encoder, slots int, plane *connPlane, logw io.Writer, busy *atomic.Int64) {
	var sendMu sync.Mutex
	cache := plane.cache
	sem := make(chan struct{}, slots)
	dec := gob.NewDecoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				fmt.Fprintf(logw, "worker: connection closed: %v\n", err)
			}
			return
		}
		sem <- struct{}{}
		if busy != nil {
			busy.Add(1)
		}
		go func(req request) {
			defer func() {
				if busy != nil {
					busy.Add(-1)
				}
				<-sem
			}()
			resp := handle(req, plane)
			// Eviction reports (and peer byte deltas) ride on whichever
			// response is next; draining immediately before the send keeps
			// each report delivered exactly once and at most one response
			// late.
			resp.Evicted = cache.drainEvicted()
			resp.CacheBytes = cache.occupancy()
			sendMu.Lock()
			if plane.store != nil {
				s, r := plane.store.drainBytes()
				resp.PeerSent += s
				resp.PeerRecv += r
			}
			if plane.fetcher != nil {
				s, r := plane.fetcher.drainBytes()
				resp.PeerSent += s
				resp.PeerRecv += r
			}
			err := enc.Encode(&resp)
			sendMu.Unlock()
			if err != nil {
				fmt.Fprintf(logw, "worker: replying to %s (req %d): %v\n", req.Name, req.ID, err)
			}
		}(req)
	}
}

// JoinCoordinator dials a coordinator's fleet listen address (see
// Remote.ListenForWorkers) and serves registered functions over the
// connection until it closes: the hello doubles as the registration
// request, with token as the join credential. This is how a restarted
// worker re-admits itself mid-run — it comes back as a brand-new member
// with a fresh id and an empty cache.
func JoinCoordinator(addr, token string, cfg WorkerConfig) error {
	slots := cfg.Slots
	if slots < 1 {
		slots = 1
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	par.SetLimit(1)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("exec: joining coordinator at %s: %w", addr, err)
	}
	defer conn.Close()
	plane := newConnPlane(cacheBytes, cfg, logw)
	defer plane.close()
	enc := gob.NewEncoder(conn)
	h := &hello{Proto: protoVersion, Pid: os.Getpid(), Slots: slots, Token: token,
		PeerAddr: plane.peerAddr, PeerToken: plane.peerTok}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("exec: registering with coordinator at %s: %w", addr, err)
	}
	fmt.Fprintf(logw, "worker: pid %d joined coordinator %s (%d slots, %d MB cache)\n",
		os.Getpid(), addr, slots, cacheBytes>>20)
	serveLoop(conn, enc, slots, plane, logw, nil)
	return nil
}

// JoinPool runs an elastic pool of coordinator connections: each connection
// registers independently (so to the coordinator each is a fleet member of
// its own, with its own cache and slot count from cfg), the pool grows by
// one whenever every member is saturated (up to max), and shrinks back
// toward min by letting surplus idle connections expire. A connection the
// coordinator drops (drain, coordinator exit) is detected and replaced only
// while the pool is below min — the worker machine offers capacity in
// [min, max] and lets the coordinator's own policy use it.
//
// JoinPool returns once the coordinator has become unreachable: the pool is
// empty and a re-dial fails. A worker supervisor (or systemd) restarting
// the process re-registers from scratch.
func JoinPool(addr, token string, min, max int, cfg WorkerConfig) error {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	slots := cfg.Slots
	if slots < 1 {
		slots = 1
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}

	type member struct {
		conn net.Conn
		busy atomic.Int64
		done atomic.Bool
	}
	var mu sync.Mutex
	var pool []*member

	dialOne := func() error {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		cacheBytes := cfg.CacheBytes
		if cacheBytes == 0 {
			cacheBytes = DefaultCacheBytes
		}
		// Each pool member is an independent fleet member with its own
		// cache, token and peer store; they all share the process's one
		// peer listener.
		plane := newConnPlane(cacheBytes, cfg, logw)
		enc := gob.NewEncoder(conn)
		h := &hello{Proto: protoVersion, Pid: os.Getpid(), Slots: slots, Token: token,
			PeerAddr: plane.peerAddr, PeerToken: plane.peerTok}
		if err := enc.Encode(h); err != nil {
			plane.close()
			conn.Close()
			return err
		}
		m := &member{conn: conn}
		mu.Lock()
		pool = append(pool, m)
		n := len(pool)
		mu.Unlock()
		fmt.Fprintf(logw, "worker: pool member %d registered with %s\n", n, addr)
		go func() {
			defer plane.close()
			serveLoop(conn, enc, slots, plane, logw, &m.busy)
			m.done.Store(true)
		}()
		return nil
	}

	par.SetLimit(1)
	for i := 0; i < min; i++ {
		if err := dialOne(); err != nil {
			return fmt.Errorf("exec: joining coordinator at %s: %w", addr, err)
		}
	}

	// Supervision loop: prune dead members, top back up to min, grow by one
	// when every member is saturated. Growth is capacity *offered*; the
	// coordinator decides when to place on it (and drains what it no longer
	// wants, which the prune observes).
	for {
		time.Sleep(100 * time.Millisecond)
		mu.Lock()
		live := pool[:0]
		saturated := true
		for _, m := range pool {
			if m.done.Load() {
				continue
			}
			live = append(live, m)
			if m.busy.Load() < int64(slots) {
				saturated = false
			}
		}
		pool = live
		n := len(pool)
		mu.Unlock()

		switch {
		case n == 0:
			if err := dialOne(); err != nil {
				return fmt.Errorf("exec: coordinator at %s unreachable: %w", addr, err)
			}
		case n < min:
			_ = dialOne() // transient failures retried next tick while ≥1 member lives
		case saturated && n < max:
			_ = dialOne()
		}
	}
}

// resolveCounts aggregates the resolution outcomes of one request: cache
// hits/misses plus the peer fetches performed and their payload volume
// (sizeOfValue units, the coordinator's RefValueBytes/PeerValueBytes
// partition).
type resolveCounts struct {
	hits, misses int
	peerFetched  int
	peerValBytes int64
}

// resolveArgs walks the request arguments replacing wire references with
// values: a ValueRef is looked up in the cache (the hit hands the body a
// private clone), a RefValue contributes its inline value and seeds the
// cache under its identity, and a PeerRef is pulled from the named holder
// over the peer link (protocol 4) — the fetched value is cached like a
// RefValue replica, so the next co-located consumer resolves it locally.
// Nested references inside a []any argument (the wire form of a []*Future
// parameter) resolve the same way.
//
// When any ValueRef misses — or a PeerRef cannot be fetched (holder gone,
// wrong token, timeout, peer plane off) — resolution fails as a whole: the
// returned miss list is non-empty, and the caller must not run the body.
// Stored insertions performed before the miss was discovered are still real
// (and still reported) — the resent request will find them resident.
func resolveArgs(args []any, plane *connPlane) (resolved []any, miss []ValueRef, stored []StoredRef, rc resolveCounts) {
	cache := plane.cache
	var resolveOne func(v any) any
	resolveOne = func(v any) any {
		switch x := v.(type) {
		case ValueRef:
			if val, ok := cache.get(x); ok {
				rc.hits++
				return val
			}
			rc.misses++
			miss = append(miss, x)
			return nil
		case RefValue:
			if n, ok := cache.put(x.Ref, x.Val); ok {
				stored = append(stored, StoredRef{Ref: x.Ref, Bytes: n})
			}
			return x.Val
		case PeerRef:
			// The coordinator believed the value resident elsewhere — but a
			// local copy may exist anyway (an earlier fetch or replica the
			// coordinator's advisory map missed); prefer it.
			if val, ok := cache.get(x.Ref); ok {
				rc.hits++
				return val
			}
			if plane.fetcher != nil {
				if val, err := plane.fetcher.fetch(x.Addr, x.Token, x.Ref); err == nil {
					rc.peerFetched++
					rc.peerValBytes += sizeOfValue(val)
					if n, ok := cache.put(x.Ref, val); ok {
						stored = append(stored, StoredRef{Ref: x.Ref, Bytes: n})
					}
					return val
				}
			}
			// Fetch failed (or no fetcher): degrade into an ordinary Miss —
			// the coordinator re-sends with the value inlined.
			rc.misses++
			miss = append(miss, x.Ref)
			return nil
		case []any:
			out := make([]any, len(x))
			for i, e := range x {
				out[i] = resolveOne(e)
			}
			return out
		default:
			return v
		}
	}
	resolved = make([]any, len(args))
	for i, a := range args {
		resolved[i] = resolveOne(a)
	}
	return resolved, miss, stored, rc
}

// handle executes one request with panic containment: a panicking body
// fails its request, not the worker process, mirroring the in-process
// runtime's panic→error conversion. Reference arguments are resolved
// against the connection's future cache (and peer fetcher) first; an
// unresolvable reference turns the request into a Miss reply without
// running the body.
func handle(req request, plane *connPlane) (resp response) {
	cache := plane.cache
	resp.ID = req.ID
	defer func() {
		if r := recover(); r != nil {
			resp.Vals = nil
			resp.Err = fmt.Sprintf("%s: panic: %v", req.Name, r)
		}
	}()
	args, miss, stored, rc := resolveArgs(req.Args, plane)
	resp.Stored = stored
	resp.RefHits = rc.hits
	resp.RefMisses = rc.misses
	resp.PeerFetched = rc.peerFetched
	resp.PeerValBytes = rc.peerValBytes
	if len(miss) > 0 {
		resp.Miss = miss
		return resp
	}
	vals, err := Invoke(req.Name, req.NOut, args)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	if req.Store {
		for i, v := range vals {
			ref := ValueRef{Session: req.Session, Task: req.Task, Out: i}
			if n, ok := cache.put(ref, v); ok {
				resp.Stored = append(resp.Stored, StoredRef{Ref: ref, Bytes: n})
			}
		}
	}
	resp.Vals = vals
	return resp
}

// Env vars of the loopback re-exec protocol (see SpawnLoopback): when
// workerEnvListen is set, MaybeWorkerMain turns the current process into a
// listening worker instead of running its normal main; when workerEnvCoord
// is set instead, it dials the coordinator's fleet listen address with the
// workerEnvToken credential (the re-exec form of JoinCoordinator).
const (
	workerEnvListen  = "TASKML_EXEC_WORKER"
	workerEnvSlots   = "TASKML_EXEC_SLOTS"
	workerEnvCacheMB = "TASKML_EXEC_CACHE_MB"
	workerEnvCoord   = "TASKML_EXEC_COORD"
	workerEnvToken   = "TASKML_EXEC_TOKEN"
	// workerEnvPeer carries WorkerConfig.PeerListen to a re-exec'd child
	// ("off" disables the peer plane; unset keeps the default ":0").
	workerEnvPeer = "TASKML_EXEC_PEER"
	// workerReadyPrefix is the machine-readable first stdout line carrying
	// the bound address back to the spawning coordinator.
	workerReadyPrefix = "TASKML_WORKER_LISTENING "
)

// MaybeWorkerMain is the loopback re-exec hook: binaries that can act as
// loopback workers (the cmd tools, test binaries via TestMain) call it
// first thing. When neither TASKML_EXEC_WORKER nor TASKML_EXEC_COORD is set
// it returns immediately. With TASKML_EXEC_WORKER, the process binds that
// address, prints the bound address on stdout for the spawning coordinator,
// serves registered functions until killed, and never returns. With
// TASKML_EXEC_COORD, it instead dials the coordinator's fleet listen
// address and registers with the TASKML_EXEC_TOKEN credential — the re-exec
// form of a dial-in fleet member — exiting when the connection closes.
func MaybeWorkerMain() {
	addr := os.Getenv(workerEnvListen)
	coord := os.Getenv(workerEnvCoord)
	if addr == "" && coord == "" {
		return
	}
	slots := 1
	if s := os.Getenv(workerEnvSlots); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			slots = n
		}
	}
	var cacheBytes int64
	if s := os.Getenv(workerEnvCacheMB); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			if n <= 0 {
				cacheBytes = -1 // caching disabled
			} else {
				cacheBytes = int64(n) << 20
			}
		}
	}
	peerListen := os.Getenv(workerEnvPeer)
	if coord != "" {
		err := JoinCoordinator(coord, os.Getenv(workerEnvToken),
			WorkerConfig{Slots: slots, CacheBytes: cacheBytes, PeerListen: peerListen, Log: os.Stderr})
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0) // coordinator closed the connection: clean retirement
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: listen %s: %v\n", addr, err)
		os.Exit(1)
	}
	fmt.Printf("%s%s\n", workerReadyPrefix, l.Addr())
	err = Serve(l, WorkerConfig{Slots: slots, CacheBytes: cacheBytes, PeerListen: peerListen, Log: os.Stderr})
	fmt.Fprintf(os.Stderr, "worker: %v\n", err)
	os.Exit(1)
}
