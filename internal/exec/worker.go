package exec

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"

	"taskml/internal/par"
)

// WorkerConfig configures Serve.
type WorkerConfig struct {
	// Slots is how many task bodies run concurrently. Default 1 — the
	// dislib-like configuration of one serial body per worker process, with
	// parallelism coming from many workers.
	Slots int
	// Log receives human-readable progress lines; nil discards them.
	Log io.Writer
}

// Serve runs the worker loop on an accepted listener until the listener
// closes: accept coordinator connections, send the handshake, execute
// registered functions, reply. Each connection is independent (a worker can
// serve several coordinators); within a connection requests run
// concurrently, bounded by Slots.
//
// The worker caps the kernel layer at par.SetLimit(1): its parallelism
// budget is Slots concurrent *bodies*, matching the contract the runtime's
// in-process pool follows (DESIGN.md, "The kernel layer").
func Serve(l net.Listener, cfg WorkerConfig) error {
	slots := cfg.Slots
	if slots < 1 {
		slots = 1
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	par.SetLimit(1)
	fmt.Fprintf(logw, "worker: pid %d serving %d registered functions on %s (%d slots)\n",
		os.Getpid(), len(Names()), l.Addr(), slots)
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, slots, logw)
	}
}

func serveConn(conn net.Conn, slots int, logw io.Writer) {
	defer conn.Close()
	var sendMu sync.Mutex
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(&hello{Proto: protoVersion, Pid: os.Getpid(), Slots: slots}); err != nil {
		fmt.Fprintf(logw, "worker: handshake: %v\n", err)
		return
	}
	sem := make(chan struct{}, slots)
	dec := gob.NewDecoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				fmt.Fprintf(logw, "worker: connection closed: %v\n", err)
			}
			return
		}
		sem <- struct{}{}
		go func(req request) {
			defer func() { <-sem }()
			resp := handle(req)
			sendMu.Lock()
			err := enc.Encode(&resp)
			sendMu.Unlock()
			if err != nil {
				fmt.Fprintf(logw, "worker: replying to %s (req %d): %v\n", req.Name, req.ID, err)
			}
		}(req)
	}
}

// handle executes one request with panic containment: a panicking body
// fails its request, not the worker process, mirroring the in-process
// runtime's panic→error conversion.
func handle(req request) (resp response) {
	resp.ID = req.ID
	defer func() {
		if r := recover(); r != nil {
			resp.Vals = nil
			resp.Err = fmt.Sprintf("%s: panic: %v", req.Name, r)
		}
	}()
	vals, err := Invoke(req.Name, req.NOut, req.Args)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Vals = vals
	return resp
}

// Env vars of the loopback re-exec protocol (see SpawnLoopback): when
// workerEnvListen is set, MaybeWorkerMain turns the current process into a
// worker instead of running its normal main.
const (
	workerEnvListen = "TASKML_EXEC_WORKER"
	workerEnvSlots  = "TASKML_EXEC_SLOTS"
	// workerReadyPrefix is the machine-readable first stdout line carrying
	// the bound address back to the spawning coordinator.
	workerReadyPrefix = "TASKML_WORKER_LISTENING "
)

// MaybeWorkerMain is the loopback re-exec hook: binaries that can act as
// loopback workers (the cmd tools, test binaries via TestMain) call it
// first thing. When TASKML_EXEC_WORKER is unset it returns immediately;
// when set, the process binds that address, prints the bound address on
// stdout for the spawning coordinator, serves registered functions until
// killed, and never returns.
func MaybeWorkerMain() {
	addr := os.Getenv(workerEnvListen)
	if addr == "" {
		return
	}
	slots := 1
	if s := os.Getenv(workerEnvSlots); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			slots = n
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: listen %s: %v\n", addr, err)
		os.Exit(1)
	}
	fmt.Printf("%s%s\n", workerReadyPrefix, l.Addr())
	err = Serve(l, WorkerConfig{Slots: slots, Log: os.Stderr})
	fmt.Fprintf(os.Stderr, "worker: %v\n", err)
	os.Exit(1)
}
