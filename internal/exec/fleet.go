package exec

import (
	"fmt"
	"time"
)

// FleetEvent kinds. Join/Drain/Drained/Leave/Dead narrate membership;
// ScaleUp/ScaleDown narrate autoscaler decisions (each is followed by the
// membership events it causes).
const (
	FleetJoin      = "join"       // a member was admitted (fresh id)
	FleetDrain     = "drain"      // Drain marked a member; in-flight work continues
	FleetDrained   = "drained"    // the drain finished; connection closed
	FleetLeave     = "leave"      // Leave removed a member immediately
	FleetDead      = "dead"       // connection failure retired a member
	FleetScaleUp   = "scale-up"   // the autoscaler is growing the fleet
	FleetScaleDown = "scale-down" // the autoscaler is shrinking the fleet
)

// FleetEvent is one membership or scaling transition, delivered to the hook
// installed with SetFleetHook. Workers/Slots are the alive totals *after*
// the transition — the Chrome trace renders them as the fleet-size counter
// next to the event instant.
type FleetEvent struct {
	Kind   string // one of the Fleet* constants
	Worker string // member id, "" for pure scaling decisions
	Reason string // human-readable cause ("connection lost: ...", policy note)

	Workers int // alive members after the transition
	Slots   int // alive slot total after the transition
}

// SetFleetHook installs fn to observe every fleet transition (nil
// uninstalls). The hook runs on whichever goroutine changed membership —
// dispatchers, the listener, the autoscaler — and must be cheap and
// non-blocking.
func (r *Remote) SetFleetHook(fn func(FleetEvent)) {
	if fn == nil {
		r.fleetHook.Store(nil)
		return
	}
	r.fleetHook.Store(&fn)
}

// Fleet is the membership surface of an elastic backend. *Remote implements
// it; the compss runtime type-asserts its Backend to Fleet to size its
// worker pool from live slot totals (and resize it on every membership
// change via Watch). Fixed backends — local execution, nil — simply don't
// implement it and keep their static capacity.
type Fleet interface {
	// Join dials a worker and admits it mid-run, returning its fresh id.
	Join(addr string) (string, error)
	// Drain gracefully retires a member: no new placements, in-flight
	// attempts finish, then the connection closes.
	Drain(id string) error
	// Leave retires a member immediately, failing its in-flight attempts
	// into the retry machinery.
	Leave(id string) error
	// Workers snapshots every member ever admitted (dead ones included).
	Workers() []WorkerInfo
	// SlotTotal is the live execution capacity (Σ slots over alive members).
	SlotTotal() int
	// SlotCeiling is the largest slot total the fleet is configured to
	// reach; fixed structures are sized from it once.
	SlotCeiling() int
	// Watch subscribes fn to slot-total changes; the returned cancel
	// unsubscribes. fn runs on membership-changing goroutines and must be
	// cheap and non-blocking.
	Watch(fn func(slotTotal int)) (cancel func())
}

var _ Fleet = (*Remote)(nil)

// ScaleSample is one autoscaler observation of the fleet and its load.
type ScaleSample struct {
	Workers   int // alive members
	Draining  int // members mid-drain (capacity leaving, not yet gone)
	SlotTotal int // alive slot total
	Inflight  int // attempts currently on workers
	Ready     int // ready-queue depth (tasks runnable but not started)
	Waiting   int // dispatch goroutines blocked waiting for a free slot
}

// ScalePolicy decides the fleet size from load samples. Desired returns the
// target alive-worker count; the autoscaler clamps it to [Min, Max] and
// moves one worker per tick toward it. Policies may keep state across calls
// (the default hysteresis policy counts streaks).
type ScalePolicy interface {
	Desired(s ScaleSample) int
}

// HysteresisPolicy is the default ScalePolicy: grow when the backlog has
// clearly outrun capacity for a few consecutive samples, shrink when the
// fleet has been clearly idle for longer, hold otherwise. The asymmetric
// streaks (grow fast, shrink slow) keep a bursty load from thrashing the
// fleet — the cost of a missing worker is queue latency now, the cost of an
// extra one is a mostly-idle process.
type HysteresisPolicy struct {
	// GrowAt grows the fleet when backlog (Ready + Waiting) exceeds GrowAt ×
	// SlotTotal for GrowAfter consecutive samples. Default 2.0 and 2.
	GrowAt    float64
	GrowAfter int
	// ShrinkAt shrinks when backlog + Inflight stays below ShrinkAt ×
	// SlotTotal for ShrinkAfter consecutive samples. Default 0.25 and 4.
	ShrinkAt    float64
	ShrinkAfter int

	growStreak, shrinkStreak int
}

// Desired implements ScalePolicy.
func (p *HysteresisPolicy) Desired(s ScaleSample) int {
	growAt := p.GrowAt
	if growAt <= 0 {
		growAt = 2.0
	}
	growAfter := p.GrowAfter
	if growAfter <= 0 {
		growAfter = 2
	}
	shrinkAt := p.ShrinkAt
	if shrinkAt <= 0 {
		shrinkAt = 0.25
	}
	shrinkAfter := p.ShrinkAfter
	if shrinkAfter <= 0 {
		shrinkAfter = 4
	}

	backlog := float64(s.Ready + s.Waiting)
	capacity := float64(s.SlotTotal)
	switch {
	case backlog > growAt*capacity:
		p.growStreak++
		p.shrinkStreak = 0
	case backlog+float64(s.Inflight) < shrinkAt*capacity:
		p.shrinkStreak++
		p.growStreak = 0
	default:
		p.growStreak, p.shrinkStreak = 0, 0
	}
	if p.growStreak >= growAfter {
		p.growStreak = 0
		return s.Workers + 1
	}
	if p.shrinkStreak >= shrinkAfter {
		p.shrinkStreak = 0
		return s.Workers - 1
	}
	return s.Workers
}

// AutoscaleConfig configures Remote.Autoscale.
type AutoscaleConfig struct {
	// Min and Max bound the alive-worker count. Min defaults to 1; Max is
	// required (> 0).
	Min, Max int
	// Policy decides the target size; default &HysteresisPolicy{}.
	Policy ScalePolicy
	// Depth reports the ready-queue depth (typically trace.Gauge.Ready).
	// When nil the autoscaler falls back to the count of dispatch
	// goroutines blocked waiting for a slot — a weaker signal, since the
	// runtime's own worker pool bounds how many dispatchers exist.
	Depth func() int
	// Interval between samples; default 50ms.
	Interval time.Duration
}

// Autoscale starts a background loop that grows and shrinks the loopback
// fleet between cfg.Min and cfg.Max workers, one per tick, as cfg.Policy
// directs. Growth re-execs a new loopback child (the fleet must have been
// created by SpawnLoopback — dialed fleets have no process to start);
// shrink drains the newest spawned idle-capable worker, never below Min and
// never while another drain is still in flight. Scale decisions surface as
// FleetScaleUp/FleetScaleDown events. The loop stops at Close.
func (r *Remote) Autoscale(cfg AutoscaleConfig) error {
	if cfg.Max <= 0 {
		return fmt.Errorf("exec: Autoscale needs Max > 0")
	}
	if cfg.Min <= 0 {
		cfg.Min = 1
	}
	if cfg.Min > cfg.Max {
		return fmt.Errorf("exec: Autoscale Min %d > Max %d", cfg.Min, cfg.Max)
	}
	if cfg.Policy == nil {
		cfg.Policy = &HysteresisPolicy{}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("exec: backend is closed")
	}
	if r.spawn == nil {
		r.mu.Unlock()
		return fmt.Errorf("exec: Autoscale needs a loopback fleet (SpawnLoopback)")
	}
	if r.scaleStop != nil {
		r.mu.Unlock()
		return fmt.Errorf("exec: autoscaler already running")
	}
	stop := make(chan struct{})
	r.scaleStop = stop
	r.scaleMax = cfg.Max
	r.mu.Unlock()
	go r.scaleLoop(cfg, stop)
	return nil
}

// scaleLoop is the autoscaler body: sample, ask the policy, move one
// worker toward the target.
func (r *Remote) scaleLoop(cfg AutoscaleConfig, stop chan struct{}) {
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}

		r.mu.Lock()
		s := ScaleSample{Waiting: r.waiting}
		draining := false
		for _, w := range r.workers {
			switch w.state {
			case wsAlive:
				s.Workers++
				s.SlotTotal += w.slots
				s.Inflight += w.inflight
			case wsDraining:
				s.Draining++
				draining = true
			}
		}
		r.mu.Unlock()
		if cfg.Depth != nil {
			s.Ready = cfg.Depth()
		}

		want := cfg.Policy.Desired(s)
		if want > cfg.Max {
			want = cfg.Max
		}
		if want < cfg.Min {
			want = cfg.Min
		}
		switch {
		case want > s.Workers:
			r.emitScale(FleetScaleUp, fmt.Sprintf("backlog ready=%d waiting=%d over %d slots", s.Ready, s.Waiting, s.SlotTotal))
			if _, err := r.SpawnWorker(); err != nil {
				return // closed (or the executable vanished); stop scaling
			}
		case want < s.Workers && s.Workers > cfg.Min && !draining:
			// Shrink the newest spawned alive worker; skip while any drain
			// is still completing so capacity leaves one worker at a time.
			id := ""
			r.mu.Lock()
			for i := len(r.spawned) - 1; i >= 0; i-- {
				if r.spawned[i].state == wsAlive {
					id = r.spawned[i].id
					break
				}
			}
			r.mu.Unlock()
			if id != "" {
				r.emitScale(FleetScaleDown, fmt.Sprintf("idle: inflight=%d ready=%d over %d slots", s.Inflight, s.Ready, s.SlotTotal))
				_ = r.Drain(id)
			}
		}
	}
}

// emitScale publishes one autoscaler decision as a fleet event.
func (r *Remote) emitScale(kind, reason string) {
	hook := r.fleetHook.Load()
	if hook == nil {
		return
	}
	r.mu.Lock()
	ev := FleetEvent{Kind: kind, Reason: reason, Workers: r.aliveLocked(), Slots: r.slotTotalLocked()}
	r.mu.Unlock()
	(*hook)(ev)
}
