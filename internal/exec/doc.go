// Package exec is the pluggable execution layer under the internal/compss
// runtime: it decides *where* a task body runs. The paper's stack separates
// the programming model (PyCOMPSs) from execution on cluster workers; this
// package is that seam. A nil compss.Config.Backend executes bodies
// in-process (the default, and the fast path); a *Remote ships them to
// worker processes over gob-on-TCP, dislib-style — one coordinator, N
// workers, serialized arguments and results.
//
// # Public surface
//
//   - Register / RegisterN / RegisterType build the process-global registry
//     of named, argument-pure task bodies ("rf_bootstrap", "mat_add", ...);
//     Has / Names / Fns / Invoke query and run it.
//   - Backend is the two-method seam (ExecuteTask, Close); Local adapts the
//     registry to it. Request carries resolved argument values plus optional
//     identity (Session/TaskID/ArgRefs) for the data plane.
//   - Dial / SpawnLoopback construct a *Remote coordinator; Serve,
//     JoinCoordinator / JoinPool and MaybeWorkerMain are the worker side;
//     cmd/worker wraps them in a standalone binary. Config / Flags / Open
//     are the shared backend flag surface of the cmd tools.
//   - Fleet is the membership surface (Join / Drain / Leave / Workers /
//     SlotTotal / SlotCeiling / Watch), implemented by *Remote: workers
//     join, drain and leave mid-run, ListenForWorkers admits dial-in
//     registrations authenticated by JoinToken, and Autoscale drives the
//     loopback fleet from a ScalePolicy (default: hysteresis on the
//     ready-queue backlog). SetFleetHook observes every transition.
//   - Cloner / Sizer let domain types opt their values into the worker
//     future cache; NextSession mints the per-runtime cache namespace.
//
// # Fleet lifecycle
//
// A member is alive → draining → dead, never backwards, and dead members
// are never reused: a restarted worker re-registers as a brand-new member
// with a fresh id and an empty cache. Drain retires gracefully (no new
// placements, in-flight attempts finish and count Completed); Leave and
// connection failures retire immediately (in-flight attempts count Failed
// and fall into the compss retry machinery). The RemoteStats partition
// Dispatched == Completed + Failed holds across every transition.
//
// # The data plane
//
// Protocol 2 stops re-shipping values the cluster already holds: each
// worker connection owns a byte-bounded LRU future cache keyed by
// ValueRef{Session, Task, Out}, task outputs are stored where they were
// produced, and the coordinator tracks residency (advisory, folded from
// Stored/Evicted response reports) to place each task on the worker
// holding the most bytes of its inputs and to send resident arguments as
// references instead of values. Cache hits hand bodies deep clones, so
// in-place mutation by a body can never corrupt a resident value; types
// without a clone/size path simply ship by value every time. Staleness is
// recovered, never trusted: a worker that cannot resolve a reference
// replies Miss without running the body and the coordinator re-sends once
// with values inlined — eviction or a crashed cache costs one round trip,
// not a wrong answer.
//
// Protocol 4 adds the peer-to-peer plane on top: every worker opens a peer
// listener (advertised in its hello), and a value resident on some *other*
// alive worker travels as a PeerRef — directions to the holder — instead of
// a coordinator-shipped RefValue. The executing worker dials the holder
// over a cached, multiplexed peer connection and pulls the value straight
// into its own cache, demoting the coordinator to metadata for inter-worker
// traffic. Every peer failure (holder crashed, draining, restarted under a
// stale token, timeout) degrades into the same Miss/resend backstop, so the
// peer plane changes bytes-on-which-link, never answers. RemoteStats
// splits the accounting exactly: BytesSent/BytesRecv count only the
// coordinator links, PeerBytesSent/PeerBytesRecv count only the
// worker-to-worker links, and RefValueBytes/PeerValueBytes partition
// inter-task payload by which link carried it.
//
// # Concurrency and ownership
//
// The registry is write-at-init, read-only afterwards (Register panics on
// duplicates so collisions surface at program start). Remote is safe for
// concurrent ExecuteTask calls: each worker connection is multiplexed by
// request ID, writes are serialised per connection, and a per-worker slot
// count bounds in-flight bodies, composing with compss.Config.Workers:
// the runtime watches the fleet and keeps its effective parallelism at
// max(Workers, Σ alive slots) as members come and go. Arguments and
// results cross the wire as gob copies (or as cache clones on a reference
// hit — equivalent by construction), so registered bodies must be
// argument-pure — no captured state, results freshly allocated — which is
// exactly what makes local and remote execution bit-identical. A worker
// crash fails the in-flight attempts with an error (never the whole
// process); the compss retry machinery decides what happens next.
package exec
