// Package exec is the pluggable execution layer under the internal/compss
// runtime: it decides *where* a task body runs. The paper's stack separates
// the programming model (PyCOMPSs) from execution on cluster workers; this
// package is that seam. A nil compss.Config.Backend executes bodies
// in-process (the default, and the fast path); a *Remote ships them to
// worker processes over gob-on-TCP, dislib-style — one coordinator, N
// workers, serialized arguments and results.
//
// # Public surface
//
//   - Register / RegisterN / RegisterType build the process-global registry
//     of named, argument-pure task bodies ("rf_bootstrap", "mat_add", ...);
//     Has / Names / Fns / Invoke query and run it.
//   - Backend is the two-method seam (Execute, Close); Local adapts the
//     registry to it.
//   - Dial / SpawnLoopback construct a *Remote coordinator; Serve and
//     MaybeWorkerMain are the worker side; cmd/worker wraps Serve in a
//     standalone binary. OpenBackend is the shared -backend/-peers flag
//     logic of the cmd tools.
//
// # Concurrency and ownership
//
// The registry is write-at-init, read-only afterwards (Register panics on
// duplicates so collisions surface at program start). Remote is safe for
// concurrent Execute calls: each worker connection is multiplexed by
// request ID, writes are serialised per connection, and a per-worker slot
// count bounds in-flight bodies, composing with compss.Config.Workers
// (effective parallelism = min(Workers, Σ alive slots)). Arguments and
// results cross the wire as gob copies, so registered bodies must be
// argument-pure — no captured state, results freshly allocated — which is
// exactly what makes local and remote execution bit-identical. A worker
// crash fails the in-flight attempts with an error (never the whole
// process); the compss retry machinery decides what happens next.
package exec
