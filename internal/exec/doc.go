// Package exec is the pluggable execution layer under the internal/compss
// runtime: it decides *where* a task body runs. The paper's stack separates
// the programming model (PyCOMPSs) from execution on cluster workers; this
// package is that seam. A nil compss.Config.Backend executes bodies
// in-process (the default, and the fast path); a *Remote ships them to
// worker processes over gob-on-TCP, dislib-style — one coordinator, N
// workers, serialized arguments and results.
//
// # Public surface
//
//   - Register / RegisterN / RegisterType build the process-global registry
//     of named, argument-pure task bodies ("rf_bootstrap", "mat_add", ...);
//     Has / Names / Fns / Invoke query and run it.
//   - Backend is the two-method seam (ExecuteTask, Close); Local adapts the
//     registry to it. Request carries resolved argument values plus optional
//     identity (Session/TaskID/ArgRefs) for the data plane.
//   - Dial / SpawnLoopback construct a *Remote coordinator; Serve and
//     MaybeWorkerMain are the worker side; cmd/worker wraps Serve in a
//     standalone binary. OpenBackend is the shared -backend/-peers flag
//     logic of the cmd tools.
//   - Cloner / Sizer let domain types opt their values into the worker
//     future cache; NextSession mints the per-runtime cache namespace.
//
// # The data plane
//
// Protocol 2 stops re-shipping values the cluster already holds: each
// worker connection owns a byte-bounded LRU future cache keyed by
// ValueRef{Session, Task, Out}, task outputs are stored where they were
// produced, and the coordinator tracks residency (advisory, folded from
// Stored/Evicted response reports) to place each task on the worker
// holding the most bytes of its inputs and to send resident arguments as
// references instead of values. Cache hits hand bodies deep clones, so
// in-place mutation by a body can never corrupt a resident value; types
// without a clone/size path simply ship by value every time. Staleness is
// recovered, never trusted: a worker that cannot resolve a reference
// replies Miss without running the body and the coordinator re-sends once
// with values inlined — eviction or a crashed cache costs one round trip,
// not a wrong answer.
//
// # Concurrency and ownership
//
// The registry is write-at-init, read-only afterwards (Register panics on
// duplicates so collisions surface at program start). Remote is safe for
// concurrent ExecuteTask calls: each worker connection is multiplexed by
// request ID, writes are serialised per connection, and a per-worker slot
// count bounds in-flight bodies, composing with compss.Config.Workers
// (effective parallelism = min(Workers, Σ alive slots)). Arguments and
// results cross the wire as gob copies (or as cache clones on a reference
// hit — equivalent by construction), so registered bodies must be
// argument-pure — no captured state, results freshly allocated — which is
// exactly what makes local and remote execution bit-identical. A worker
// crash fails the in-flight attempts with an error (never the whole
// process); the compss retry machinery decides what happens next.
package exec
