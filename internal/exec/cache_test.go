package exec

// White-box tests for the worker future cache (cache.go) and the
// coordinator data plane that rides on it (remote.go): LRU accounting,
// clone-on-hit isolation, the size/clone type tables, locality-aware
// placement, and the Miss/resend recovery path driven by a deliberately
// poisoned residency map.

import (
	"testing"

	"taskml/internal/mat"
)

func init() {
	// Used by the data-plane tests below; also registered in the re-exec'd
	// loopback worker child, which runs this same init.
	Register("test_sum_list", func(args []any) (any, error) {
		var s float64
		for _, v := range args[0].([]any) {
			s += v.(float64)
		}
		return s, nil
	})
}

func ref(task int) ValueRef { return ValueRef{Session: 1, Task: task, Out: 0} }

// floats returns a []float64 whose accounted size is 8*n+8 bytes.
func floats(n int) []float64 { return make([]float64, n) }

func TestFutureCacheLRUEviction(t *testing.T) {
	c := newFutureCache(100) // room for two 40-byte entries, not three
	if _, ok := c.put(ref(1), floats(4)); !ok {
		t.Fatal("put a rejected")
	}
	if _, ok := c.put(ref(2), floats(4)); !ok {
		t.Fatal("put b rejected")
	}
	if got := c.occupancy(); got != 80 {
		t.Fatalf("occupancy = %d, want 80", got)
	}
	// Touch a so b becomes least recent, then insert c to force eviction.
	if _, ok := c.get(ref(1)); !ok {
		t.Fatal("get a missed")
	}
	if _, ok := c.put(ref(3), floats(4)); !ok {
		t.Fatal("put c rejected")
	}
	if _, ok := c.get(ref(2)); ok {
		t.Fatal("b survived eviction, want LRU evicted")
	}
	if _, ok := c.get(ref(1)); !ok {
		t.Fatal("a evicted, want kept (recently used)")
	}
	if _, ok := c.get(ref(3)); !ok {
		t.Fatal("c evicted right after insert")
	}
	ev := c.drainEvicted()
	if len(ev) != 1 || ev[0] != ref(2) {
		t.Fatalf("drainEvicted = %v, want [ref(2)]", ev)
	}
	if again := c.drainEvicted(); len(again) != 0 {
		t.Fatalf("second drainEvicted = %v, want empty (exactly-once)", again)
	}
	if got := c.occupancy(); got != 80 {
		t.Fatalf("occupancy after eviction = %d, want 80", got)
	}
}

// TestFutureCacheCloneIsolation: mutations on either side of the cache
// boundary must not reach the resident copy — a body may scribble on its
// arguments, and a producer may keep mutating the value it stored.
func TestFutureCacheCloneIsolation(t *testing.T) {
	c := newFutureCache(1 << 20)
	orig := []float64{1, 2, 3}
	if _, ok := c.put(ref(1), orig); !ok {
		t.Fatal("put rejected")
	}
	orig[0] = 99 // producer mutates after the store
	got1, ok := c.get(ref(1))
	if !ok {
		t.Fatal("get missed")
	}
	got1.([]float64)[1] = 99 // consumer body mutates its clone
	got2, ok := c.get(ref(1))
	if !ok {
		t.Fatal("second get missed")
	}
	if v := got2.([]float64); v[0] != 1 || v[1] != 2 {
		t.Fatalf("resident copy corrupted: %v, want [1 2 3]", v)
	}

	m := mat.New(2, 2)
	m.Data[0] = 7
	if _, ok := c.put(ref(2), m); !ok {
		t.Fatal("put matrix rejected")
	}
	m.Data[0] = -1
	gm, _ := c.get(ref(2))
	if gm.(*mat.Dense).Data[0] != 7 {
		t.Fatal("matrix resident copy shares Data with the caller")
	}
}

// TestFutureCacheReinsert: re-storing an existing ref (the resent-request
// replay) refreshes recency without double-accounting bytes.
func TestFutureCacheReinsert(t *testing.T) {
	c := newFutureCache(100)
	c.put(ref(1), floats(4))
	c.put(ref(2), floats(4))
	if n, ok := c.put(ref(1), floats(4)); !ok || n != 40 {
		t.Fatalf("re-put = (%d, %v), want (40, true)", n, ok)
	}
	if got := c.occupancy(); got != 80 {
		t.Fatalf("occupancy after re-put = %d, want 80 (no double count)", got)
	}
	// ref(1) is now most recent, so the next insert evicts ref(2).
	c.put(ref(3), floats(4))
	if _, ok := c.get(ref(1)); !ok {
		t.Fatal("re-put did not refresh recency: ref(1) evicted")
	}
	if _, ok := c.get(ref(2)); ok {
		t.Fatal("ref(2) survived, want LRU evicted after ref(1) refresh")
	}
}

type sizedOnly struct{}

func (sizedOnly) ExecValueBytes() int64 { return 16 }

type cloneOnly struct{}

func (c cloneOnly) CloneExecValue() any { return c }

type sizedCloner struct{ v []float64 }

func (s *sizedCloner) ExecValueBytes() int64 { return int64(len(s.v)) * 8 }
func (s *sizedCloner) CloneExecValue() any {
	return &sizedCloner{v: append([]float64(nil), s.v...)}
}

func TestFutureCacheRejects(t *testing.T) {
	if _, ok := newFutureCache(0).put(ref(1), floats(1)); ok {
		t.Fatal("disabled cache accepted a put")
	}
	if _, ok := newFutureCache(-1).put(ref(1), floats(1)); ok {
		t.Fatal("disabled cache accepted a put")
	}
	c := newFutureCache(16)
	if _, ok := c.put(ref(1), floats(4)); ok {
		t.Fatal("oversized value accepted")
	}
	if _, ok := c.put(ref(2), sizedOnly{}); ok {
		t.Fatal("unclonable value accepted")
	}
	if _, ok := c.put(ref(3), cloneOnly{}); ok {
		t.Fatal("unsizable value accepted")
	}
	if _, ok := c.put(ref(4), &sizedCloner{v: []float64{1}}); !ok {
		t.Fatal("Sizer+Cloner value rejected")
	}
	if c.occupancy() != 8 {
		t.Fatalf("occupancy = %d, want 8", c.occupancy())
	}
}

func TestSizeOfValue(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{nil, 0},
		{mat.New(3, 4), 3*4*8 + 16},
		{(*mat.Dense)(nil), 0},
		{[]float64{1, 2, 3}, 32},
		{[][]float64{{1}, {2, 3}}, 8 + (8 + 24) + (16 + 24)},
		{[]int{1, 2}, 24},
		{[]bool{true, false, true}, 11},
		{[]string{"ab"}, 8 + 2 + 16},
		{[]any{1.0, []int{1}}, 8 + 8 + 16},
		{[]any{1.0, struct{}{}}, 0}, // one unsizable element poisons the whole
		{3.14, 8},
		{int(7), 8},
		{"abcd", 20},
		{sizedOnly{}, 16},
		{struct{}{}, 0},
	}
	for _, tc := range cases {
		if got := sizeOfValue(tc.v); got != tc.want {
			t.Errorf("sizeOfValue(%T %v) = %d, want %d", tc.v, tc.v, got, tc.want)
		}
	}
}

func TestCloneValue(t *testing.T) {
	// Deep-copy shapes: mutating the clone must not touch the original.
	nested := []any{[]float64{1, 2}, []any{[]int{3}}}
	cl, ok := cloneValue(nested)
	if !ok {
		t.Fatal("cloneValue([]any) not clonable")
	}
	cl.([]any)[0].([]float64)[0] = 99
	cl.([]any)[1].([]any)[0].([]int)[0] = 99
	if nested[0].([]float64)[0] != 1 || nested[1].([]any)[0].([]int)[0] != 3 {
		t.Fatalf("clone shares memory with original: %v", nested)
	}

	if v, ok := cloneValue((*mat.Dense)(nil)); !ok || v.(*mat.Dense) != nil {
		t.Fatalf("cloneValue(nil *Dense) = %v, %v", v, ok)
	}
	if _, ok := cloneValue(make(chan int)); ok {
		t.Fatal("cloneValue(chan) should not be clonable")
	}
	if _, ok := cloneValue([]any{1.0, make(chan int)}); ok {
		t.Fatal("one unclonable element should poison the []any")
	}
	sc := &sizedCloner{v: []float64{5}}
	clc, ok := cloneValue(sc)
	if !ok {
		t.Fatal("Cloner not clonable")
	}
	clc.(*sizedCloner).v[0] = 9
	if sc.v[0] != 5 {
		t.Fatal("Cloner clone shares memory")
	}
}

func TestNextSession(t *testing.T) {
	a, b := NextSession(), NextSession()
	if a == 0 || b == 0 || b <= a {
		t.Fatalf("NextSession: %d then %d, want increasing nonzero", a, b)
	}
}

// TestRemoteLocalityPlacement: once a worker stores a task's output, every
// free-slot consumer of that output lands on it, travels by reference, and
// the residency bookkeeping shows up in WorkerInfo.
func TestRemoteLocalityPlacement(t *testing.T) {
	r, err := SpawnLoopback(LoopbackConfig{Workers: 2, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sess := NextSession()
	m := mat.New(64, 64)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	vals, producer, err := r.ExecuteTask(&Request{
		Name: "test_scale_mat", NOut: 1, Args: []any{m, 1.0},
		Session: sess, TaskID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := ref(1)
	out.Session = sess

	for i := 0; i < 4; i++ {
		args := []any{vals[0], 2.0}
		_, w, err := r.ExecuteTask(&Request{
			Name: "test_scale_mat", NOut: 1, Args: args,
			Session: sess, TaskID: 10 + i,
			ArgRefs: []ArgRef{{Arg: 0, Elem: -1, Ref: out}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if w != producer {
			t.Fatalf("consumer %d placed on %s, want data-holder %s", i, w, producer)
		}
		if _, isRef := args[0].(*mat.Dense); !isRef {
			t.Fatalf("runtime-owned Args mutated: args[0] is %T", args[0])
		}
	}
	st := r.Stats()
	if st.RefHits < 4 {
		t.Fatalf("RefHits = %d, want >= 4 (one per consumer)", st.RefHits)
	}
	if st.RefMisses != 0 || st.MissRetries != 0 {
		t.Fatalf("Stats = %+v, want no misses on a warm holder", st)
	}
	var holder, other int64
	for _, w := range r.Workers() {
		if w.ID == producer {
			holder = w.ResidentBytes
		} else {
			other = w.ResidentBytes
		}
	}
	if holder <= 0 || other != 0 {
		t.Fatalf("ResidentBytes holder=%d other=%d, want holder>0 and other==0", holder, other)
	}
}

// TestRemoteNestedRefs: a ValueRef inside a []any argument (the wire form
// of a []*Future parameter) resolves from the cache, and the substitution
// copies the inner slice rather than mutating the caller's.
func TestRemoteNestedRefs(t *testing.T) {
	r, err := SpawnLoopback(LoopbackConfig{Workers: 1, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sess := NextSession()
	vals, _, err := r.ExecuteTask(&Request{
		Name: "test_add", NOut: 1, Args: []any{4.0, 5.0},
		Session: sess, TaskID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := ValueRef{Session: sess, Task: 1, Out: 0}

	inner := []any{vals[0], 3.0}
	sum, _, err := r.ExecuteTask(&Request{
		Name: "test_sum_list", NOut: 1, Args: []any{inner},
		Session: sess, TaskID: 2,
		ArgRefs: []ArgRef{{Arg: 0, Elem: 0, Ref: out}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum[0].(float64) != 12 {
		t.Fatalf("sum = %v, want 12", sum[0])
	}
	if _, isVal := inner[0].(float64); !isVal {
		t.Fatalf("caller's []any mutated: inner[0] is %T", inner[0])
	}
	if st := r.Stats(); st.RefHits < 1 {
		t.Fatalf("RefHits = %d, want >= 1 (nested ref resolved from cache)", st.RefHits)
	}
}

// TestRemoteMissResend drives the recovery path deterministically: the
// residency map is poisoned with a ref the worker never stored, so the first
// send travels by reference, the worker replies Miss, and the coordinator
// re-sends with values inlined — same answer, one MissRetry, and the resend
// seeds the cache so the next consumer hits.
func TestRemoteMissResend(t *testing.T) {
	r, err := SpawnLoopback(LoopbackConfig{Workers: 1, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sess := NextSession()
	m := mat.New(8, 8)
	for i := range m.Data {
		m.Data[i] = 0.1 * float64(i)
	}
	poisoned := ValueRef{Session: sess, Task: 7, Out: 0}
	r.mu.Lock()
	r.workers[0].resident[poisoned] = 1
	r.workers[0].residentBytes = 1
	r.mu.Unlock()

	vals, _, err := r.ExecuteTask(&Request{
		Name: "test_scale_mat", NOut: 1, Args: []any{m, 2.0},
		Session: sess, TaskID: 9,
		ArgRefs: []ArgRef{{Arg: 0, Elem: -1, Ref: poisoned}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mat.Scale(2.0, m)
	got := vals[0].(*mat.Dense)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Data[%d] = %x, want %x (miss resend changed the answer)", i, got.Data[i], want.Data[i])
		}
	}
	st := r.Stats()
	if st.MissRetries != 1 {
		t.Fatalf("MissRetries = %d, want 1", st.MissRetries)
	}
	if st.RefMisses == 0 {
		t.Fatalf("RefMisses = %d, want > 0", st.RefMisses)
	}
	if st.Dispatched != st.Completed {
		t.Fatalf("Stats = %+v, want Dispatched == Completed at quiescence", st)
	}

	// The inlined resend seeded the cache: the same ref now hits.
	r.mu.Lock()
	_, seeded := r.workers[0].resident[poisoned]
	r.mu.Unlock()
	if !seeded {
		t.Fatal("resend did not seed residency for the missed ref")
	}
	hitsBefore := st.RefHits
	if _, _, err := r.ExecuteTask(&Request{
		Name: "test_scale_mat", NOut: 1, Args: []any{m, 3.0},
		Session: sess, TaskID: 10,
		ArgRefs: []ArgRef{{Arg: 0, Elem: -1, Ref: poisoned}},
	}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.RefHits <= hitsBefore || st.MissRetries != 1 {
		t.Fatalf("after reseed: Stats = %+v, want a hit and no new retries", st)
	}
}

// TestRemoteAnonymousNoCaching: requests without a session (TaskID -1 /
// Session 0 — the Execute surface) must not populate any residency.
func TestRemoteAnonymousNoCaching(t *testing.T) {
	r, err := SpawnLoopback(LoopbackConfig{Workers: 1, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Execute("test_scale_mat", 1, []any{mat.New(4, 4), 2.0}); err != nil {
		t.Fatal(err)
	}
	for _, w := range r.Workers() {
		if w.ResidentBytes != 0 {
			t.Fatalf("anonymous request left %d resident bytes on %s", w.ResidentBytes, w.ID)
		}
	}
	if st := r.Stats(); st.RefHits != 0 || st.RefMisses != 0 {
		t.Fatalf("anonymous request touched the data plane: %+v", st)
	}
}
