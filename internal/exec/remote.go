package exec

import (
	crand "crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteConfig configures Dial.
type RemoteConfig struct {
	// Peers are the worker addresses (host:port) to dial.
	Peers []string
	// DialTimeout bounds each dial + handshake. Default 5s.
	DialTimeout time.Duration
	// NoRefs disables the reference data plane: every request ships full
	// values and nothing is cached — the protocol-1 behaviour, kept as the
	// measurable baseline for the refs-vs-values benchmark.
	NoRefs bool
	// NoPeers disables the peer-to-peer transfer plane (protocol 4): the
	// coordinator never sends PeerRefs, so a value resident on another
	// worker re-ships through the coordinator as a RefValue — the
	// protocol-2 behaviour, kept as the measurable baseline for the
	// p2p-vs-refs benchmark. Implied by NoRefs (no refs, nothing to fetch).
	NoPeers bool
}

// workerState is the lifecycle of one fleet member. Transitions only move
// forward: alive → draining → dead (graceful Drain) or alive/draining →
// dead (connection failure, Leave, Close). A dead worker never comes back —
// a restarted process re-registers as a brand-new member with a fresh id.
type workerState int

const (
	wsAlive    workerState = iota // accepting placements
	wsDraining                    // finishing in-flight work, no new placements
	wsDead                        // retired; connection closed
)

func (s workerState) String() string {
	switch s {
	case wsAlive:
		return "alive"
	case wsDraining:
		return "draining"
	default:
		return "dead"
	}
}

// Remote is the coordinator side of the out-of-process backend: it owns a
// dynamic fleet of workers — one multiplexed gob-over-TCP connection each —
// and dispatches ExecuteTask calls onto them.
//
// # Fleet membership
//
// The worker set is fully dynamic. Members are admitted by Dial /
// SpawnLoopback at construction, by Join (coordinator dials a worker
// mid-run), by SpawnWorker (one more loopback child), or by dialing in to
// the coordinator's listen address (ListenForWorkers) with the fleet's
// JoinToken — the re-admission path for restarted workers. Every admission
// mints a fresh id ("w0", "w1", ... never reused), so a worker that crashed
// and redialed is a new member with an empty cache: its stale residency died
// with the old connection and cannot alias the new one. Drain retires a
// member gracefully — no new placements, in-flight attempts finish (their
// piggybacked cache reports still apply), then the connection closes —
// while Leave and connection failure retire it immediately, failing
// in-flight attempts into the runtime's retry machinery. Watch subscribes
// to live slot-total changes (the compss runtime resizes its worker pool
// from it), and SetFleetHook observes every membership transition (the
// Chrome trace renders them as instants).
//
// # Slot accounting
//
// Every worker advertises a slot count in its handshake (how many task
// bodies it runs concurrently). ExecuteTask picks an alive worker with a
// free slot and blocks while every alive worker is saturated, so the
// in-flight request count per worker never exceeds its slots. This composes
// with the runtime's own worker pool, which bounds the number of attempts
// in flight at all: effective remote parallelism is min(runtime pool,
// Σ alive worker slots) — and since the runtime re-resolves the fleet's
// live slot total on every membership change, a joined worker raises
// effective parallelism mid-run.
//
// # Placement and the data plane
//
// Among the free-slot workers, placement prefers the one already holding
// the most bytes of the request's future-valued arguments in its cache
// (locality-aware dispatch; ties and the no-data case fall back to
// least-loaded). Arguments the chosen worker holds travel as ValueRefs;
// arguments it lacks travel as RefValues, seeding its cache for the next
// consumer. The coordinator's residency map is advisory — built from the
// Stored/Evicted reports piggybacked on responses — and a stale entry costs
// one extra round trip, never a wrong answer: a worker that cannot resolve
// a reference replies Miss, and the coordinator re-sends the request with
// every value inlined (see wire.go).
//
// # Failure
//
// A connection error (worker crash, network drop) marks the worker dead,
// fails its in-flight requests, drops its residency (the cache died with
// the process), and excludes it from further dispatch; the remaining
// workers absorb re-dispatched retries. Remote never fails a *task* — it
// fails attempts, and the runtime's OnTaskFailure policy decides what that
// means.
//
// # Stats invariant
//
// Dispatched/Completed/Failed partition outcomes exactly: every request
// written to a connection counts Dispatched once and then exactly one of
// Completed (a response came back, error or not) or Failed (the connection
// died first). At quiescence Dispatched == Completed + Failed. Membership
// changes never break the partition: a drained worker finishes its
// in-flight requests (they count Completed), a killed or left one fails
// them (they count Failed).
type Remote struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers []*workerConn
	spawned []*workerConn // loopback children in spawn order (KillWorker index)
	closed  bool
	noRefs  bool
	noPeers bool

	nextWID     int    // fresh member ids: w<nextWID>, monotone, never reused
	token       string // fleet join credential (hello.Token on dial-in)
	listener    net.Listener
	spawn       *spawnConfig // how to re-exec one more loopback worker; nil for dialed fleets
	dialTimeout time.Duration

	waiting   int // dispatch goroutines blocked in acquire (autoscale backlog signal)
	peakAlive int
	joined    uint64 // admissions across the fleet's lifetime
	left      uint64 // retirements (drained, dead, left) across the lifetime

	scaleMax  int           // autoscale ceiling in workers; 0 when not autoscaling
	scaleStop chan struct{} // closes to stop the autoscaler; nil when not autoscaling

	nextID                        atomic.Uint64
	dispatched, completed, failed atomic.Uint64
	refHits, refMisses            atomic.Uint64
	missRetries                   atomic.Uint64

	// Peer-plane counters (protocol 4): fetches/fallbacks count outcomes,
	// peerBytesSent/Recv are the exact peer-link wire totals folded from
	// response deltas, and refValueBytes/peerValueBytes partition the
	// inter-task payload volume by which link carried it (sizeOfValue
	// units) — the coordinator-offload metric of the p2p benchmark.
	peerFetches, peerFallbacks    atomic.Uint64
	peerBytesSent, peerBytesRecv  atomic.Int64
	refValueBytes, peerValueBytes atomic.Int64

	cacheHook atomic.Pointer[func(CacheSample)]
	fleetHook atomic.Pointer[func(FleetEvent)]

	watchMu  sync.Mutex
	watchSeq int
	watchers map[int]func(slotTotal int)
}

// newRemote builds an empty fleet; members are admitted afterwards.
func newRemote(noRefs, noPeers bool, dialTimeout time.Duration) *Remote {
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	r := &Remote{
		noRefs:      noRefs,
		noPeers:     noPeers || noRefs,
		dialTimeout: dialTimeout,
		token:       newJoinToken(),
		watchers:    map[int]func(int){},
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// newJoinToken mints the fleet join credential.
func newJoinToken() string {
	var b [12]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("tok-%d-%d", os.Getpid(), time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// workerConn is one fleet member. Scheduling state (state, inflight,
// resident, proc) is guarded by the owning Remote's mutex; the pending map
// has its own lock because the reader goroutine touches it without the
// scheduler lock.
type workerConn struct {
	id    string
	addr  string
	pid   int
	slots int

	conn   *countingConn
	sendMu sync.Mutex // serialises writes to enc
	enc    *gob.Encoder

	pendMu  sync.Mutex
	pending map[uint64]chan response

	state    workerState
	inflight int
	deadErr  error
	joinTok  string // hello.Token presented on this connection (dial-in auth)

	// peerAddr / peerTok are the worker's advertised peer listener (host
	// fixed up from the connection when the bind was unspecified) and the
	// per-connection fetch credential; both empty when the worker has the
	// peer plane off. Immutable after the handshake.
	peerAddr string
	peerTok  string

	// proc is the loopback child process behind this connection, nil for
	// dialed peers. Tombstoned (set nil) under r.mu before any kill/reap so
	// KillWorker, Close and drain-completion can never reap twice.
	proc *os.Process

	done atomic.Uint64 // responses received over this connection's lifetime

	// resident mirrors the worker's future cache (ref → bytes), maintained
	// from Stored/Evicted response reports. Advisory: used only to score
	// placement and choose ref-vs-value wire forms; the Miss protocol
	// corrects any staleness.
	resident      map[ValueRef]int64
	residentBytes int64
}

// countingConn wraps a net.Conn with atomic byte counters, giving the
// benchmark suite exact bytes-on-wire numbers for the refs-vs-values
// comparison.
type countingConn struct {
	net.Conn
	read, written atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// WorkerInfo is a point-in-time description of one fleet member.
type WorkerInfo struct {
	ID       string
	Addr     string
	Pid      int
	Slots    int
	State    string // "alive", "draining" or "dead"
	Alive    bool   // State == "alive" (kept for callers predating Drain)
	Inflight int
	// Done counts responses this member returned across its lifetime.
	Done uint64
	// ResidentBytes is the coordinator's view of the worker's future-cache
	// occupancy (advisory; see Remote's data-plane notes).
	ResidentBytes int64
}

// RemoteStats counts dispatch outcomes across the backend's lifetime.
type RemoteStats struct {
	// Dispatched counts requests written to a worker connection (including
	// miss re-sends).
	Dispatched uint64
	// Completed counts responses received, including worker-side errors and
	// Miss replies.
	Completed uint64
	// Failed counts dispatches lost to connection failure (the attempt saw
	// an error and the runtime decides whether to retry). Dispatched ==
	// Completed + Failed + in-flight, always.
	Failed uint64

	// RefHits / RefMisses count worker-side reference resolutions; a high
	// miss share means residency is being evicted or killed faster than it
	// is reused.
	RefHits   uint64
	RefMisses uint64
	// MissRetries counts requests re-sent with values inlined after a Miss
	// reply.
	MissRetries uint64
	// BytesSent / BytesRecv are exact wire totals of the *coordinator* links
	// only — every coordinator↔worker connection's requests, handshakes and
	// responses. Worker-to-worker traffic never crosses those connections;
	// it is accounted separately and exactly in PeerBytesSent/PeerBytesRecv,
	// so the two pairs partition the fleet's task traffic by link.
	BytesSent uint64
	BytesRecv uint64

	// PeerFetches counts arguments workers pulled directly from a peer
	// holder; PeerFallbacks counts PeerRefs that failed (holder gone,
	// draining, wrong token, timeout) and degraded into the Miss/resend
	// path. PeerBytesSent / PeerBytesRecv are exact wire totals of the
	// worker-to-worker links (fetch requests + served values), summed from
	// the per-response deltas every worker piggybacks on its coordinator
	// connection — at quiescence they are the complete peer-plane mirror of
	// BytesSent/BytesRecv.
	PeerFetches   uint64
	PeerFallbacks uint64
	PeerBytesSent uint64
	PeerBytesRecv uint64
	// RefValueBytes / PeerValueBytes partition inter-task payload volume
	// (sizeOfValue units) by which link carried it: RefValueBytes is value
	// payload the coordinator link re-shipped even though some alive peer
	// held it, PeerValueBytes is payload pulled over peer links. With the
	// peer plane on, PeerValueBytes/(PeerValueBytes+RefValueBytes) is the
	// coordinator-offload fraction of the p2p benchmark.
	RefValueBytes  uint64
	PeerValueBytes uint64

	// Joined / Left count fleet admissions and retirements across the
	// lifetime; PeakWorkers is the largest alive-member count ever observed
	// (the elasticity benchmark records it as peak fleet size).
	Joined      uint64
	Left        uint64
	PeakWorkers int
}

// CacheSample is one data-plane observation delivered to the hook installed
// with SetCacheHook: the reference-resolution outcome and cache occupancy
// reported by one worker response.
type CacheSample struct {
	Worker string // worker id (w0, w1, ...)
	Task   int    // runtime task id, -1 for anonymous requests
	Hits   int    // references resolved from the worker's cache
	Misses int    // references the worker could not resolve
	// PeerFetches counts arguments this request pulled directly from a peer
	// worker instead of receiving through the coordinator (protocol 4).
	PeerFetches int
	CacheBytes  int64 // the worker's cache occupancy after the request
}

// SetCacheHook installs fn to receive one CacheSample per worker response
// that touched the data plane (nil uninstalls). The hook runs on dispatch
// goroutines and must be cheap and non-blocking.
func (r *Remote) SetCacheHook(fn func(CacheSample)) {
	if fn == nil {
		r.cacheHook.Store(nil)
		return
	}
	r.cacheHook.Store(&fn)
}

// Dial connects to every peer, performs the handshake, and returns the
// coordinator. It fails if any peer is unreachable or speaks the wrong
// protocol — a partially-connected start would silently shrink the cluster.
// The fleet stays open afterwards: Join, ListenForWorkers and Drain/Leave
// change membership mid-run.
func Dial(cfg RemoteConfig) (*Remote, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("exec: Dial needs at least one peer")
	}
	r := newRemote(cfg.NoRefs, cfg.NoPeers, cfg.DialTimeout)
	for _, addr := range cfg.Peers {
		if _, err := r.Join(addr); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// Join dials one worker and admits it into the fleet mid-run with a fresh
// id, which it returns. The new member is placed on as soon as it is
// admitted; the runtime's effective parallelism rises with the slot total.
func (r *Remote) Join(addr string) (string, error) {
	r.mu.Lock()
	timeout := r.dialTimeout
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return "", fmt.Errorf("exec: backend is closed")
	}
	w, err := dialWorker(addr, timeout)
	if err != nil {
		return "", err
	}
	return r.admit(w, nil)
}

// admit registers a handshaken connection as a fleet member: it assigns the
// next fresh id, starts the reader, and publishes the membership change.
func (r *Remote) admit(w *workerConn, proc *os.Process) (string, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		w.conn.Close()
		if proc != nil {
			_ = proc.Kill()
			_, _ = proc.Wait()
		}
		return "", fmt.Errorf("exec: backend is closed")
	}
	w.id = fmt.Sprintf("w%d", r.nextWID)
	r.nextWID++
	w.state = wsAlive
	w.proc = proc
	r.workers = append(r.workers, w)
	if proc != nil {
		r.spawned = append(r.spawned, w)
	}
	r.joined++
	if n := r.aliveLocked(); n > r.peakAlive {
		r.peakAlive = n
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	go r.readLoop(w)
	r.membershipChanged(FleetJoin, w.id, "")
	return w.id, nil
}

// aliveLocked counts alive members; caller holds r.mu.
func (r *Remote) aliveLocked() int {
	n := 0
	for _, w := range r.workers {
		if w.state == wsAlive {
			n++
		}
	}
	return n
}

// slotTotalLocked sums the slots of alive members; caller holds r.mu.
func (r *Remote) slotTotalLocked() int {
	n := 0
	for _, w := range r.workers {
		if w.state == wsAlive {
			n += w.slots
		}
	}
	return n
}

func dialWorker(addr string, timeout time.Duration) (*workerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("exec: dialing worker at %s: %w", addr, err)
	}
	w, err := handshake(conn, addr, timeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return w, nil
}

// handshake reads the worker's hello off a fresh connection and builds the
// (not yet admitted) member. The caller owns the connection on error.
func handshake(conn net.Conn, addr string, timeout time.Duration) (*workerConn, error) {
	cc := &countingConn{Conn: conn}
	var h hello
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	if err := gob.NewDecoder(cc).Decode(&h); err != nil {
		return nil, fmt.Errorf("exec: handshake with worker at %s: %w", addr, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	if h.Proto != protoVersion {
		return nil, fmt.Errorf("exec: worker at %s speaks protocol %d, want %d", addr, h.Proto, protoVersion)
	}
	slots := h.Slots
	if slots < 1 {
		slots = 1
	}
	return &workerConn{
		addr: addr, pid: h.Pid, slots: slots,
		conn: cc, enc: gob.NewEncoder(cc),
		pending:  map[uint64]chan response{},
		resident: map[ValueRef]int64{},
		joinTok:  h.Token,
		peerAddr: fixupPeerAddr(h.PeerAddr, addr),
		peerTok:  h.PeerToken,
	}, nil
}

// fixupPeerAddr makes a worker's advertised peer listener dialable by other
// workers: a :0 bind advertises an unspecified host ("[::]:port"), which is
// replaced with the host this coordinator reaches the worker at — the one
// address known to route there. A malformed advertisement disables the peer
// plane for the member (fail open) rather than poisoning PeerRefs.
func fixupPeerAddr(peerAddr, connAddr string) string {
	if peerAddr == "" {
		return ""
	}
	host, port, err := net.SplitHostPort(peerAddr)
	if err != nil {
		return ""
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		chost, _, err := net.SplitHostPort(connAddr)
		if err != nil {
			return ""
		}
		host = chost
	}
	return net.JoinHostPort(host, port)
}

// ListenForWorkers opens the coordinator's fleet listen address: workers
// that dial it and present the fleet's JoinToken in their hello are admitted
// as new members — the path a restarted worker (or a brand-new one absorbing
// load) takes to register mid-run. Returns the bound address (addr may use
// port 0). A connection with a wrong or missing token is dropped before it
// can receive work.
func (r *Remote) ListenForWorkers(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("exec: fleet listen %s: %w", addr, err)
	}
	r.mu.Lock()
	if r.closed || r.listener != nil {
		already := r.listener != nil
		r.mu.Unlock()
		l.Close()
		if already {
			return "", fmt.Errorf("exec: fleet listener already open")
		}
		return "", fmt.Errorf("exec: backend is closed")
	}
	r.listener = l
	r.mu.Unlock()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed (Close)
			}
			go r.admitDialIn(conn)
		}
	}()
	return l.Addr().String(), nil
}

// admitDialIn handshakes one inbound registration and admits it when the
// token matches.
func (r *Remote) admitDialIn(conn net.Conn) {
	addr := conn.RemoteAddr().String()
	w, err := handshake(conn, addr, r.dialTimeout)
	if err != nil {
		conn.Close()
		return
	}
	if w.joinTok != r.token {
		conn.Close()
		return
	}
	_, _ = r.admit(w, nil)
}

// ListenAddr returns the fleet listen address, or "" when ListenForWorkers
// was not called.
func (r *Remote) ListenAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.listener == nil {
		return ""
	}
	return r.listener.Addr().String()
}

// JoinToken returns the credential a dial-in worker must present (cmd/worker
// -join -token, or the TASKML_EXEC_TOKEN env of a re-exec'd child).
func (r *Remote) JoinToken() string { return r.token }

// readLoop drains one worker's responses. The decoder owns the connection's
// read side; any decode error means the stream is unusable (crash, kill,
// network drop — or the coordinator closed it after a drain) and the worker
// is retired.
func (r *Remote) readLoop(w *workerConn) {
	dec := gob.NewDecoder(w.conn)
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			r.failWorker(w, fmt.Errorf("connection lost: %w", err), FleetDead)
			return
		}
		w.done.Add(1)
		w.pendMu.Lock()
		ch := w.pending[resp.ID]
		delete(w.pending, resp.ID)
		w.pendMu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// failWorker retires w immediately: no further dispatches land on it, its
// residency is dropped (the cache died with the connection), and every
// pending request fails with a connection error (which the runtime treats
// as an attempt failure and may retry elsewhere). Each drained request
// counts Failed here and is handed a connFailure response so the receive
// path in executeOn does not also count it Completed — the counters stay a
// partition. kind labels the fleet event ("" emits none: Close retires the
// whole fleet without narrating it).
func (r *Remote) failWorker(w *workerConn, err error, kind string) {
	r.mu.Lock()
	if w.state == wsDead {
		r.mu.Unlock()
		return
	}
	w.state = wsDead
	w.deadErr = err
	w.resident = map[ValueRef]int64{}
	w.residentBytes = 0
	r.left++
	r.cond.Broadcast()
	r.mu.Unlock()
	w.conn.Close()

	w.pendMu.Lock()
	drained := w.pending
	w.pending = map[uint64]chan response{}
	w.pendMu.Unlock()
	for _, ch := range drained {
		r.failed.Add(1)
		ch <- response{Err: fmt.Sprintf("worker %s (%s): %v", w.id, w.addr, err), connFailure: true}
	}
	if kind != "" {
		r.membershipChanged(kind, w.id, err.Error())
	} else {
		r.notifyWatchers()
	}
}

// Drain retires worker id gracefully: it stops receiving placements
// immediately, its in-flight attempts run to completion (their responses —
// and the piggybacked cache reports — still come back and count Completed),
// and once the last one finishes the connection closes and a loopback child
// is reaped. An attempt that outlives its deadline instead times out into
// the runtime's retry machinery like any other slow attempt. Drain returns
// as soon as the worker is marked; observe completion via Workers (state
// "dead") or the fleet hook's "drained" event.
func (r *Remote) Drain(id string) error {
	r.mu.Lock()
	w := r.findLocked(id)
	if w == nil {
		r.mu.Unlock()
		return fmt.Errorf("exec: no worker %q", id)
	}
	if st := w.state; st != wsAlive {
		r.mu.Unlock()
		return fmt.Errorf("exec: worker %s is %s, cannot drain", id, st)
	}
	w.state = wsDraining
	idle := w.inflight == 0
	r.mu.Unlock()
	r.membershipChanged(FleetDrain, id, "")
	if idle {
		r.finishDrain(w)
	}
	return nil
}

// finishDrain completes a drain once the worker is idle: close the
// connection (the readLoop's decode error finds the worker already dead and
// is a no-op) and reap a loopback child.
func (r *Remote) finishDrain(w *workerConn) {
	r.mu.Lock()
	if w.state != wsDraining || w.inflight != 0 {
		r.mu.Unlock()
		return
	}
	w.state = wsDead
	w.deadErr = fmt.Errorf("drained")
	w.resident = map[ValueRef]int64{}
	w.residentBytes = 0
	proc := w.proc
	w.proc = nil
	r.left++
	r.cond.Broadcast()
	r.mu.Unlock()
	w.conn.Close()
	if proc != nil {
		_ = proc.Kill()
		_, _ = proc.Wait()
	}
	r.membershipChanged(FleetDrained, w.id, "")
}

// Leave removes worker id immediately: in-flight attempts fail into the
// retry machinery (exactly as a crash would) and a loopback child is killed
// and reaped. Use Drain for the graceful path.
func (r *Remote) Leave(id string) error {
	r.mu.Lock()
	w := r.findLocked(id)
	if w == nil {
		r.mu.Unlock()
		return fmt.Errorf("exec: no worker %q", id)
	}
	if w.state == wsDead {
		r.mu.Unlock()
		return fmt.Errorf("exec: worker %s is already dead", id)
	}
	r.mu.Unlock()
	r.failWorker(w, fmt.Errorf("removed from the fleet"), FleetLeave)
	r.mu.Lock()
	proc := w.proc
	w.proc = nil
	r.mu.Unlock()
	if proc != nil {
		_ = proc.Kill()
		_, _ = proc.Wait()
	}
	return nil
}

// findLocked returns the member with the given id; caller holds r.mu.
func (r *Remote) findLocked(id string) *workerConn {
	for _, w := range r.workers {
		if w.id == id {
			return w
		}
	}
	return nil
}

// acquire blocks until an alive worker has a free slot and reserves one.
// Placement is locality-aware: among free-slot workers it picks the one
// holding the most resident bytes of refs (the request's future-valued
// inputs), breaking ties — and the nothing-resident case — by least load.
// Saturated workers are never waited on for locality: a busy data-holder
// must not stall dispatch when an idle worker can run the task from shipped
// values. Draining members are skipped for placement but still waited on —
// their retirement (or a join) will move things along. It errors once no
// worker is alive or draining.
//
// With the peer plane on, the scoring weighs peer reachability: a ref whose
// only alive copy the candidate holds counts double, while a replicated ref
// counts plain — any other free worker can pull a replica cheaply over a
// peer link, so sole copies are the residency worth chasing. (A flat
// local+peer additive weighting would be a no-op: every candidate can reach
// the same peer-resident total, so it cancels out of the comparison.)
func (r *Remote) acquire(refs []ValueRef) (*workerConn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, fmt.Errorf("exec: backend is closed")
		}
		var holders map[ValueRef]int
		if !r.noPeers && len(refs) > 0 {
			holders = make(map[ValueRef]int, len(refs))
			for _, w := range r.workers {
				if w.state != wsAlive {
					continue
				}
				for _, ref := range refs {
					if _, ok := w.resident[ref]; ok {
						holders[ref]++
					}
				}
			}
		}
		var best *workerConn
		var bestScore int64 = -1
		anyOpen := false
		for _, w := range r.workers {
			if w.state == wsDead {
				continue
			}
			anyOpen = true
			if w.state != wsAlive || w.inflight >= w.slots {
				continue
			}
			var score int64
			for _, ref := range refs {
				b := w.resident[ref]
				if b > 0 && holders != nil && holders[ref] == 1 {
					b *= 2 // sole alive copy: unreachable over peer links elsewhere
				}
				score += b
			}
			if best == nil || score > bestScore ||
				(score == bestScore && w.inflight < best.inflight) {
				best, bestScore = w, score
			}
		}
		if !anyOpen {
			return nil, fmt.Errorf("exec: no alive workers")
		}
		if best != nil {
			best.inflight++
			return best, nil
		}
		r.waiting++
		r.cond.Wait()
		r.waiting--
	}
}

func (r *Remote) release(w *workerConn) {
	r.mu.Lock()
	w.inflight--
	finish := w.state == wsDraining && w.inflight == 0
	r.cond.Broadcast()
	r.mu.Unlock()
	if finish {
		r.finishDrain(w)
	}
}

// Execute ships one anonymous attempt (no task identity, so no caching and
// no locality) — the protocol-1 surface, kept for direct callers and tests.
func (r *Remote) Execute(name string, nOut int, args []any) ([]any, string, error) {
	return r.ExecuteTask(&Request{Name: name, NOut: nOut, Args: args, TaskID: -1})
}

// ExecuteTask ships one attempt to a worker: choose a worker near the
// request's data, reserve a slot, gob the request out (references for
// resident arguments, values seeding the cache for the rest), await the
// multiplexed response, and re-send with values inlined if the worker
// reported unresolvable references. The returned worker id labels the
// attempt in traces.
func (r *Remote) ExecuteTask(req *Request) ([]any, string, error) {
	useRefs := !r.noRefs && req.Session != 0
	var refs []ValueRef
	if useRefs {
		refs = make([]ValueRef, len(req.ArgRefs))
		for i, ar := range req.ArgRefs {
			refs[i] = ar.Ref
		}
	}
	w, err := r.acquire(refs)
	if err != nil {
		return nil, "", err
	}
	defer r.release(w)

	resp, peerSent, err := r.executeOn(w, req, useRefs, false)
	if err != nil {
		return nil, w.id, err
	}
	if len(resp.Miss) > 0 {
		// The worker lacked references the residency map promised (evicted
		// or raced) or could not pull a PeerRef from its holder (crashed,
		// drained, timed out); re-send on the same reserved slot with every
		// value inlined. The inlined form cannot miss.
		for _, m := range resp.Miss {
			if peerSent[m] {
				r.peerFallbacks.Add(1)
			}
		}
		r.missRetries.Add(1)
		resp, _, err = r.executeOn(w, req, useRefs, true)
		if err != nil {
			return nil, w.id, err
		}
		if len(resp.Miss) > 0 {
			return nil, w.id, fmt.Errorf("exec: worker %s reported misses for fully inlined %s", w.id, req.Name)
		}
	}
	if resp.Err != "" {
		return nil, w.id, fmt.Errorf("exec: %s: %s", req.Name, resp.Err)
	}
	if len(resp.Vals) != req.NOut {
		return nil, w.id, fmt.Errorf("exec: worker %s returned %d values for %s, want %d", w.id, len(resp.Vals), req.Name, req.NOut)
	}
	return resp.Vals, w.id, nil
}

// executeOn performs one wire round trip on an already-reserved worker
// slot. inlineAll forces every reference to travel as a RefValue (the
// post-Miss form). The returned set names the refs that traveled as
// PeerRefs — the caller counts a peer fallback for each one that comes back
// in a Miss.
func (r *Remote) executeOn(w *workerConn, req *Request, useRefs, inlineAll bool) (response, map[ValueRef]bool, error) {
	wireArgs := req.Args
	var peerSent map[ValueRef]bool
	store := false
	if useRefs {
		wireArgs, peerSent = r.buildWireArgs(w, req, inlineAll)
		store = req.TaskID >= 0
	}

	id := r.nextID.Add(1)
	ch := make(chan response, 1)
	w.pendMu.Lock()
	w.pending[id] = ch
	w.pendMu.Unlock()

	// Dispatched counts every send *attempt* before its outcome is known,
	// so a failed encode still satisfies Dispatched == Completed + Failed.
	r.dispatched.Add(1)
	w.sendMu.Lock()
	err := w.enc.Encode(&request{
		ID: id, Name: req.Name, NOut: req.NOut, Args: wireArgs,
		Session: req.Session, Task: req.TaskID, Store: store,
	})
	w.sendMu.Unlock()
	if err != nil {
		// A gob encode error corrupts the stream state either way; retire
		// the connection. Whoever removes the pending entry owns the Failed
		// count: if our delete finds the entry, failWorker hadn't drained it
		// (it swapped the map before we registered, or races behind us) and
		// we count the failure; if the entry is gone, failWorker counted it.
		r.failWorker(w, fmt.Errorf("sending %s: %w", req.Name, err), FleetDead)
		w.pendMu.Lock()
		_, mine := w.pending[id]
		delete(w.pending, id)
		w.pendMu.Unlock()
		if mine {
			r.failed.Add(1)
		}
		return response{}, nil, fmt.Errorf("exec: worker %s (%s): sending %s: %w", w.id, w.addr, req.Name, err)
	}

	resp := <-ch
	if resp.connFailure {
		// Fabricated by failWorker, already counted Failed; a drained
		// request is not a completed one.
		return response{}, nil, fmt.Errorf("exec: %s: %s", req.Name, resp.Err)
	}
	r.completed.Add(1)
	r.applyResidency(w, &resp)
	r.refHits.Add(uint64(resp.RefHits))
	r.refMisses.Add(uint64(resp.RefMisses))
	r.peerFetches.Add(uint64(resp.PeerFetched))
	r.peerValueBytes.Add(resp.PeerValBytes)
	r.peerBytesSent.Add(resp.PeerSent)
	r.peerBytesRecv.Add(resp.PeerRecv)
	if hook := r.cacheHook.Load(); hook != nil && useRefs {
		task := req.TaskID
		if !store {
			task = -1
		}
		(*hook)(CacheSample{
			Worker: w.id, Task: task,
			Hits: resp.RefHits, Misses: resp.RefMisses,
			PeerFetches: resp.PeerFetched,
			CacheBytes:  resp.CacheBytes,
		})
	}
	return resp, peerSent, nil
}

// buildWireArgs maps req.Args to their wire form for worker w: an argument
// (or []any element) named by an ArgRef travels as a ValueRef when w is
// believed to hold it, as a PeerRef when some *other* alive worker holds it
// and both ends speak the peer plane (w pulls the value directly from the
// holder), and as a cache-seeding RefValue otherwise; everything else
// travels by value. Draining and dead holders are never advertised — their
// values re-ship through the coordinator, failing open instead of pointing
// w at a connection that is going away. The input slices are never mutated
// — the runtime owns req.Args.
//
// The returned set names the refs sent as PeerRefs (for fallback
// accounting). RefValues of already-resident values additionally count into
// refValueBytes: payload the coordinator link carried even though a peer
// held it — the p2p benchmark's offload denominator.
func (r *Remote) buildWireArgs(w *workerConn, req *Request, inlineAll bool) ([]any, map[ValueRef]bool) {
	if len(req.ArgRefs) == 0 {
		return req.Args, nil
	}
	type argPlan struct {
		resident bool   // resident on w: send the bare ValueRef
		peerAddr string // non-empty: send a PeerRef to this holder
		peerTok  string
		warm     bool // resident on some alive worker (peer-servable payload)
	}
	plans := make([]argPlan, len(req.ArgRefs))
	r.mu.Lock()
	if !inlineAll && w.state != wsDead {
		for i, ar := range req.ArgRefs {
			_, plans[i].resident = w.resident[ar.Ref]
		}
	}
	usePeers := !r.noPeers && w.peerAddr != "" && w.state != wsDead
	for i, ar := range req.ArgRefs {
		if plans[i].resident {
			continue
		}
		for _, h := range r.workers {
			if h == w || h.state != wsAlive {
				continue
			}
			if _, ok := h.resident[ar.Ref]; !ok {
				continue
			}
			plans[i].warm = true
			if usePeers && !inlineAll && h.peerAddr != "" && h.peerTok != "" {
				plans[i].peerAddr, plans[i].peerTok = h.peerAddr, h.peerTok
				break
			}
		}
	}
	r.mu.Unlock()

	var peerSent map[ValueRef]bool
	out := append([]any(nil), req.Args...)
	cloned := map[int]bool{} // []any args copied-on-write for Elem substitution
	for i, ar := range req.ArgRefs {
		if ar.Arg < 0 || ar.Arg >= len(out) {
			continue
		}
		var val any
		if ar.Elem < 0 {
			val = out[ar.Arg]
		} else {
			inner, ok := out[ar.Arg].([]any)
			if !ok || ar.Elem >= len(inner) {
				continue
			}
			val = inner[ar.Elem]
		}
		var wire any
		switch {
		case plans[i].resident:
			wire = ar.Ref
		case plans[i].peerAddr != "":
			wire = PeerRef{Ref: ar.Ref, Addr: plans[i].peerAddr, Token: plans[i].peerTok}
			if peerSent == nil {
				peerSent = map[ValueRef]bool{}
			}
			peerSent[ar.Ref] = true
		default:
			wire = RefValue{Ref: ar.Ref, Val: val}
			if plans[i].warm {
				r.refValueBytes.Add(sizeOfValue(val))
			}
		}
		if ar.Elem < 0 {
			out[ar.Arg] = wire
		} else {
			if !cloned[ar.Arg] {
				out[ar.Arg] = append([]any(nil), out[ar.Arg].([]any)...)
				cloned[ar.Arg] = true
			}
			out[ar.Arg].([]any)[ar.Elem] = wire
		}
	}
	return out, peerSent
}

// applyResidency folds one response's Stored/Evicted reports into the
// coordinator's view of w's cache. Draining members still fold — their
// in-flight responses are the flush of the piggybacked reports — though the
// view is dropped wholesale when the drain finishes.
func (r *Remote) applyResidency(w *workerConn, resp *response) {
	if len(resp.Stored) == 0 && len(resp.Evicted) == 0 {
		return
	}
	r.mu.Lock()
	if w.state != wsDead {
		for _, ev := range resp.Evicted {
			if n, ok := w.resident[ev]; ok {
				delete(w.resident, ev)
				w.residentBytes -= n
			}
		}
		for _, st := range resp.Stored {
			if _, ok := w.resident[st.Ref]; !ok {
				w.residentBytes += st.Bytes
			}
			w.resident[st.Ref] = st.Bytes
		}
	}
	r.mu.Unlock()
}

// Workers returns a snapshot of every member the fleet has ever admitted,
// retired ones included (their State is "dead").
func (r *Remote) Workers() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, len(r.workers))
	for i, w := range r.workers {
		out[i] = WorkerInfo{
			ID: w.id, Addr: w.addr, Pid: w.pid, Slots: w.slots,
			State: w.state.String(), Alive: w.state == wsAlive,
			Inflight: w.inflight, Done: w.done.Load(),
			ResidentBytes: w.residentBytes,
		}
	}
	return out
}

// AliveWorkers returns the number of members still accepting dispatches.
func (r *Remote) AliveWorkers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aliveLocked()
}

// SlotTotal returns the live slot total across alive members — the fleet's
// current execution capacity. The compss runtime re-resolves it through
// Watch on every membership change.
func (r *Remote) SlotTotal() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slotTotalLocked()
}

// SlotCeiling returns the largest slot total this fleet is configured to
// reach: the autoscale ceiling for autoscaled fleets, otherwise the current
// total including draining members. The runtime sizes fixed structures
// (its worker deques) from it once, then tracks SlotTotal within it.
func (r *Remote) SlotCeiling() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, w := range r.workers {
		if w.state != wsDead {
			total += w.slots
		}
	}
	if r.scaleMax > 0 && r.spawn != nil {
		if c := r.scaleMax * r.spawn.slots; c > total {
			total = c
		}
	}
	return total
}

// Watch subscribes fn to live slot-total changes: it is called (on the
// goroutine that changed membership, so it must be cheap and non-blocking)
// after every join, drain completion, leave or death, with the new alive
// slot total. The returned cancel unsubscribes.
func (r *Remote) Watch(fn func(slotTotal int)) (cancel func()) {
	r.watchMu.Lock()
	id := r.watchSeq
	r.watchSeq++
	r.watchers[id] = fn
	r.watchMu.Unlock()
	return func() {
		r.watchMu.Lock()
		delete(r.watchers, id)
		r.watchMu.Unlock()
	}
}

// notifyWatchers delivers the current slot total to every Watch subscriber.
func (r *Remote) notifyWatchers() {
	r.mu.Lock()
	total := r.slotTotalLocked()
	r.mu.Unlock()
	r.watchMu.Lock()
	fns := make([]func(int), 0, len(r.watchers))
	for _, fn := range r.watchers {
		fns = append(fns, fn)
	}
	r.watchMu.Unlock()
	for _, fn := range fns {
		fn(total)
	}
}

// membershipChanged publishes one fleet transition: a FleetEvent to the
// hook (traces) and the new slot total to the Watch subscribers (runtime
// capacity).
func (r *Remote) membershipChanged(kind, worker, reason string) {
	r.mu.Lock()
	ev := FleetEvent{
		Kind: kind, Worker: worker, Reason: reason,
		Workers: r.aliveLocked(), Slots: r.slotTotalLocked(),
	}
	r.mu.Unlock()
	if hook := r.fleetHook.Load(); hook != nil {
		(*hook)(ev)
	}
	r.watchMu.Lock()
	fns := make([]func(int), 0, len(r.watchers))
	for _, fn := range r.watchers {
		fns = append(fns, fn)
	}
	r.watchMu.Unlock()
	for _, fn := range fns {
		fn(ev.Slots)
	}
}

// Stats returns cumulative dispatch counters.
func (r *Remote) Stats() RemoteStats {
	st := RemoteStats{
		Dispatched:     r.dispatched.Load(),
		Completed:      r.completed.Load(),
		Failed:         r.failed.Load(),
		RefHits:        r.refHits.Load(),
		RefMisses:      r.refMisses.Load(),
		MissRetries:    r.missRetries.Load(),
		PeerFetches:    r.peerFetches.Load(),
		PeerFallbacks:  r.peerFallbacks.Load(),
		PeerBytesSent:  uint64(r.peerBytesSent.Load()),
		PeerBytesRecv:  uint64(r.peerBytesRecv.Load()),
		RefValueBytes:  uint64(r.refValueBytes.Load()),
		PeerValueBytes: uint64(r.peerValueBytes.Load()),
	}
	r.mu.Lock()
	for _, w := range r.workers {
		st.BytesSent += uint64(w.conn.written.Load())
		st.BytesRecv += uint64(w.conn.read.Load())
	}
	st.Joined = r.joined
	st.Left = r.left
	st.PeakWorkers = r.peakAlive
	r.mu.Unlock()
	return st
}

// KillWorker forcibly terminates the i-th loopback-spawned worker (SIGKILL,
// in spawn order) — the fault-injection hook for crash-recovery tests. The
// death is observed the same way a real crash would be: the connection
// drops, in-flight attempts fail, and the worker is retired. It errors for
// workers Remote did not spawn (it has no authority over processes it only
// dialed). The kill runs under r.mu so it cannot race Close's reap of the
// same process (Kill after Wait on a reaped process is a use-after-free of
// the pid).
func (r *Remote) KillWorker(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("exec: backend is closed")
	}
	if i < 0 || i >= len(r.spawned) || r.spawned[i].proc == nil {
		return fmt.Errorf("exec: worker %d was not spawned by this coordinator", i)
	}
	return r.spawned[i].proc.Kill()
}

// Close stops the autoscaler and the fleet listener, retires every member,
// fails pending requests, and reaps loopback processes. The per-member proc
// handles are tombstoned under r.mu before reaping so a concurrent
// KillWorker can never touch a reaped process.
func (r *Remote) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	workers := append([]*workerConn(nil), r.workers...)
	var procs []*os.Process
	for _, w := range workers {
		if w.proc != nil {
			procs = append(procs, w.proc)
			w.proc = nil
		}
	}
	l := r.listener
	stop := r.scaleStop
	r.scaleStop = nil
	r.cond.Broadcast()
	r.mu.Unlock()

	if stop != nil {
		close(stop)
	}
	if l != nil {
		l.Close()
	}
	for _, w := range workers {
		r.failWorker(w, fmt.Errorf("backend closed"), "")
	}
	for _, p := range procs {
		_ = p.Kill()
		_, _ = p.Wait()
	}
	return nil
}
