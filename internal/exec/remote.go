package exec

import (
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteConfig configures Dial.
type RemoteConfig struct {
	// Peers are the worker addresses (host:port) to dial.
	Peers []string
	// DialTimeout bounds each dial + handshake. Default 5s.
	DialTimeout time.Duration
}

// Remote is the coordinator side of the out-of-process backend: it holds
// one multiplexed gob-over-TCP connection per worker and dispatches Execute
// calls onto them.
//
// # Slot accounting
//
// Every worker advertises a slot count in its handshake (how many task
// bodies it runs concurrently). Execute picks the least-loaded alive worker
// with a free slot and blocks while every alive worker is saturated, so the
// in-flight request count per worker never exceeds its slots. This composes
// with compss.Config.Workers, which bounds the number of attempts the
// runtime has in flight at all: effective remote parallelism is
// min(Config.Workers, Σ alive worker slots), and a coordinator-side block
// here holds a runtime worker slot — exactly as a busy in-process body
// would.
//
// # Failure
//
// A connection error (worker crash, network drop) marks the worker dead,
// fails its in-flight requests, and excludes it from further dispatch; the
// remaining workers absorb re-dispatched retries. Remote never fails a
// *task* — it fails attempts, and the runtime's OnTaskFailure policy
// decides what that means.
type Remote struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers []*workerConn
	closed  bool

	nextID                        atomic.Uint64
	dispatched, completed, failed atomic.Uint64

	procs []*os.Process // loopback-spawned workers, reaped on Close
}

// workerConn is one dialed worker. Scheduling state (alive, inflight) is
// guarded by the owning Remote's mutex; the pending map has its own lock
// because the reader goroutine touches it without the scheduler lock.
type workerConn struct {
	id    string
	addr  string
	pid   int
	slots int

	conn   net.Conn
	sendMu sync.Mutex // serialises writes to enc
	enc    *gob.Encoder

	pendMu  sync.Mutex
	pending map[uint64]chan response

	alive    bool
	inflight int
	deadErr  error
}

// WorkerInfo is a point-in-time description of one dialed worker.
type WorkerInfo struct {
	ID       string
	Addr     string
	Pid      int
	Slots    int
	Alive    bool
	Inflight int
}

// RemoteStats counts dispatch outcomes across the backend's lifetime.
type RemoteStats struct {
	// Dispatched counts requests written to a worker connection.
	Dispatched uint64
	// Completed counts responses received, including worker-side errors.
	Completed uint64
	// Failed counts dispatches lost to connection failure (the attempt saw
	// an error and the runtime decides whether to retry).
	Failed uint64
}

// Dial connects to every peer, performs the handshake, and returns the
// coordinator. It fails if any peer is unreachable or speaks the wrong
// protocol — a partially-connected start would silently shrink the cluster.
func Dial(cfg RemoteConfig) (*Remote, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("exec: Dial needs at least one peer")
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	r := &Remote{}
	r.cond = sync.NewCond(&r.mu)
	for i, addr := range cfg.Peers {
		w, err := dialWorker(fmt.Sprintf("w%d", i), addr, timeout)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.workers = append(r.workers, w)
		go r.readLoop(w)
	}
	return r, nil
}

func dialWorker(id, addr string, timeout time.Duration) (*workerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("exec: dialing worker %s at %s: %w", id, addr, err)
	}
	var h hello
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	if err := gob.NewDecoder(conn).Decode(&h); err != nil {
		conn.Close()
		return nil, fmt.Errorf("exec: handshake with worker %s at %s: %w", id, addr, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	if h.Proto != protoVersion {
		conn.Close()
		return nil, fmt.Errorf("exec: worker %s at %s speaks protocol %d, want %d", id, addr, h.Proto, protoVersion)
	}
	slots := h.Slots
	if slots < 1 {
		slots = 1
	}
	return &workerConn{
		id: id, addr: addr, pid: h.Pid, slots: slots,
		conn: conn, enc: gob.NewEncoder(conn),
		pending: map[uint64]chan response{},
		alive:   true,
	}, nil
}

// readLoop drains one worker's responses. The decoder owns the connection's
// read side; any decode error means the stream is unusable (crash, kill,
// network drop) and the worker is retired.
func (r *Remote) readLoop(w *workerConn) {
	dec := gob.NewDecoder(w.conn)
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			r.failWorker(w, fmt.Errorf("connection lost: %w", err))
			return
		}
		w.pendMu.Lock()
		ch := w.pending[resp.ID]
		delete(w.pending, resp.ID)
		w.pendMu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// failWorker retires w: no further dispatches land on it and every pending
// request fails with a connection error (which the runtime treats as an
// attempt failure and may retry elsewhere).
func (r *Remote) failWorker(w *workerConn, err error) {
	r.mu.Lock()
	if !w.alive {
		r.mu.Unlock()
		return
	}
	w.alive = false
	w.deadErr = err
	r.cond.Broadcast()
	r.mu.Unlock()
	w.conn.Close()

	w.pendMu.Lock()
	drained := w.pending
	w.pending = map[uint64]chan response{}
	w.pendMu.Unlock()
	for _, ch := range drained {
		r.failed.Add(1)
		ch <- response{Err: fmt.Sprintf("worker %s (%s): %v", w.id, w.addr, err)}
	}
}

// acquire blocks until an alive worker has a free slot and reserves one on
// the least-loaded such worker. It errors once no worker is alive.
func (r *Remote) acquire() (*workerConn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, fmt.Errorf("exec: backend is closed")
		}
		var best *workerConn
		anyAlive := false
		for _, w := range r.workers {
			if !w.alive {
				continue
			}
			anyAlive = true
			if w.inflight >= w.slots {
				continue
			}
			if best == nil || w.inflight < best.inflight {
				best = w
			}
		}
		if !anyAlive {
			return nil, fmt.Errorf("exec: no alive workers")
		}
		if best != nil {
			best.inflight++
			return best, nil
		}
		r.cond.Wait()
	}
}

func (r *Remote) release(w *workerConn) {
	r.mu.Lock()
	w.inflight--
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Execute ships one attempt to a worker: reserve a slot, gob the request
// out, await the multiplexed response. The returned worker id labels the
// attempt in traces.
func (r *Remote) Execute(name string, nOut int, args []any) ([]any, string, error) {
	w, err := r.acquire()
	if err != nil {
		return nil, "", err
	}
	defer r.release(w)

	id := r.nextID.Add(1)
	ch := make(chan response, 1)
	w.pendMu.Lock()
	w.pending[id] = ch
	w.pendMu.Unlock()

	w.sendMu.Lock()
	err = w.enc.Encode(&request{ID: id, Name: name, NOut: nOut, Args: args})
	w.sendMu.Unlock()
	if err != nil {
		// A gob encode error corrupts the stream state either way; retire
		// the connection. failWorker completes ch for us if the request
		// registered before the failure drained the map.
		r.failWorker(w, fmt.Errorf("sending %s: %w", name, err))
		w.pendMu.Lock()
		delete(w.pending, id)
		w.pendMu.Unlock()
		return nil, w.id, fmt.Errorf("exec: worker %s (%s): sending %s: %w", w.id, w.addr, name, err)
	}
	r.dispatched.Add(1)

	resp := <-ch
	r.completed.Add(1)
	if resp.Err != "" {
		return nil, w.id, fmt.Errorf("exec: %s: %s", name, resp.Err)
	}
	if len(resp.Vals) != nOut {
		return nil, w.id, fmt.Errorf("exec: worker %s returned %d values for %s, want %d", w.id, len(resp.Vals), name, nOut)
	}
	return resp.Vals, w.id, nil
}

// Workers returns a snapshot of the dialed workers.
func (r *Remote) Workers() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, len(r.workers))
	for i, w := range r.workers {
		out[i] = WorkerInfo{
			ID: w.id, Addr: w.addr, Pid: w.pid, Slots: w.slots,
			Alive: w.alive, Inflight: w.inflight,
		}
	}
	return out
}

// AliveWorkers returns the number of workers still accepting dispatches.
func (r *Remote) AliveWorkers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// Stats returns cumulative dispatch counters.
func (r *Remote) Stats() RemoteStats {
	return RemoteStats{
		Dispatched: r.dispatched.Load(),
		Completed:  r.completed.Load(),
		Failed:     r.failed.Load(),
	}
}

// KillWorker forcibly terminates loopback worker i (SIGKILL) — the
// fault-injection hook for crash-recovery tests. The death is observed the
// same way a real crash would be: the connection drops, in-flight attempts
// fail, and the worker is retired. It errors for workers Remote did not
// spawn (it has no authority over processes it only dialed).
func (r *Remote) KillWorker(i int) error {
	r.mu.Lock()
	var proc *os.Process
	if i >= 0 && i < len(r.procs) {
		proc = r.procs[i]
	}
	r.mu.Unlock()
	if proc == nil {
		return fmt.Errorf("exec: worker %d was not spawned by this coordinator", i)
	}
	return proc.Kill()
}

// Close retires every worker, fails pending requests, and reaps loopback
// processes.
func (r *Remote) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	workers := append([]*workerConn(nil), r.workers...)
	procs := append([]*os.Process(nil), r.procs...)
	r.cond.Broadcast()
	r.mu.Unlock()

	for _, w := range workers {
		r.failWorker(w, fmt.Errorf("backend closed"))
	}
	for _, p := range procs {
		if p != nil {
			_ = p.Kill()
			_, _ = p.Wait()
		}
	}
	return nil
}
