package exec

import (
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteConfig configures Dial.
type RemoteConfig struct {
	// Peers are the worker addresses (host:port) to dial.
	Peers []string
	// DialTimeout bounds each dial + handshake. Default 5s.
	DialTimeout time.Duration
	// NoRefs disables the reference data plane: every request ships full
	// values and nothing is cached — the protocol-1 behaviour, kept as the
	// measurable baseline for the refs-vs-values benchmark.
	NoRefs bool
}

// Remote is the coordinator side of the out-of-process backend: it holds
// one multiplexed gob-over-TCP connection per worker and dispatches
// ExecuteTask calls onto them.
//
// # Slot accounting
//
// Every worker advertises a slot count in its handshake (how many task
// bodies it runs concurrently). ExecuteTask picks an alive worker with a
// free slot and blocks while every alive worker is saturated, so the
// in-flight request count per worker never exceeds its slots. This composes
// with compss.Config.Workers, which bounds the number of attempts the
// runtime has in flight at all: effective remote parallelism is
// min(Config.Workers, Σ alive worker slots), and a coordinator-side block
// here holds a runtime worker slot — exactly as a busy in-process body
// would.
//
// # Placement and the data plane
//
// Among the free-slot workers, placement prefers the one already holding
// the most bytes of the request's future-valued arguments in its cache
// (locality-aware dispatch; ties and the no-data case fall back to
// least-loaded). Arguments the chosen worker holds travel as ValueRefs;
// arguments it lacks travel as RefValues, seeding its cache for the next
// consumer. The coordinator's residency map is advisory — built from the
// Stored/Evicted reports piggybacked on responses — and a stale entry costs
// one extra round trip, never a wrong answer: a worker that cannot resolve
// a reference replies Miss, and the coordinator re-sends the request with
// every value inlined (see wire.go).
//
// # Failure
//
// A connection error (worker crash, network drop) marks the worker dead,
// fails its in-flight requests, drops its residency (the cache died with
// the process), and excludes it from further dispatch; the remaining
// workers absorb re-dispatched retries. Remote never fails a *task* — it
// fails attempts, and the runtime's OnTaskFailure policy decides what that
// means.
//
// # Stats invariant
//
// Dispatched/Completed/Failed partition outcomes exactly: every request
// written to a connection counts Dispatched once and then exactly one of
// Completed (a response came back, error or not) or Failed (the connection
// died first). At quiescence Dispatched == Completed + Failed.
type Remote struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers []*workerConn
	closed  bool
	noRefs  bool

	nextID                        atomic.Uint64
	dispatched, completed, failed atomic.Uint64
	refHits, refMisses            atomic.Uint64
	missRetries                   atomic.Uint64

	cacheHook atomic.Pointer[func(CacheSample)]

	procs []*os.Process // loopback-spawned workers, reaped on Close
}

// workerConn is one dialed worker. Scheduling state (alive, inflight,
// resident) is guarded by the owning Remote's mutex; the pending map has
// its own lock because the reader goroutine touches it without the
// scheduler lock.
type workerConn struct {
	id    string
	addr  string
	pid   int
	slots int

	conn   *countingConn
	sendMu sync.Mutex // serialises writes to enc
	enc    *gob.Encoder

	pendMu  sync.Mutex
	pending map[uint64]chan response

	alive    bool
	inflight int
	deadErr  error

	// resident mirrors the worker's future cache (ref → bytes), maintained
	// from Stored/Evicted response reports. Advisory: used only to score
	// placement and choose ref-vs-value wire forms; the Miss protocol
	// corrects any staleness.
	resident      map[ValueRef]int64
	residentBytes int64
}

// countingConn wraps a net.Conn with atomic byte counters, giving the
// benchmark suite exact bytes-on-wire numbers for the refs-vs-values
// comparison.
type countingConn struct {
	net.Conn
	read, written atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// WorkerInfo is a point-in-time description of one dialed worker.
type WorkerInfo struct {
	ID       string
	Addr     string
	Pid      int
	Slots    int
	Alive    bool
	Inflight int
	// ResidentBytes is the coordinator's view of the worker's future-cache
	// occupancy (advisory; see Remote's data-plane notes).
	ResidentBytes int64
}

// RemoteStats counts dispatch outcomes across the backend's lifetime.
type RemoteStats struct {
	// Dispatched counts requests written to a worker connection (including
	// miss re-sends).
	Dispatched uint64
	// Completed counts responses received, including worker-side errors and
	// Miss replies.
	Completed uint64
	// Failed counts dispatches lost to connection failure (the attempt saw
	// an error and the runtime decides whether to retry). Dispatched ==
	// Completed + Failed + in-flight, always.
	Failed uint64

	// RefHits / RefMisses count worker-side reference resolutions; a high
	// miss share means residency is being evicted or killed faster than it
	// is reused.
	RefHits   uint64
	RefMisses uint64
	// MissRetries counts requests re-sent with values inlined after a Miss
	// reply.
	MissRetries uint64
	// BytesSent / BytesRecv are exact wire totals across all worker
	// connections (requests + handshakes, responses).
	BytesSent uint64
	BytesRecv uint64
}

// CacheSample is one data-plane observation delivered to the hook installed
// with SetCacheHook: the reference-resolution outcome and cache occupancy
// reported by one worker response.
type CacheSample struct {
	Worker     string // worker id (w0, w1, ...)
	Task       int    // runtime task id, -1 for anonymous requests
	Hits       int    // references resolved from the worker's cache
	Misses     int    // references the worker could not resolve
	CacheBytes int64  // the worker's cache occupancy after the request
}

// SetCacheHook installs fn to receive one CacheSample per worker response
// that touched the data plane (nil uninstalls). The hook runs on dispatch
// goroutines and must be cheap and non-blocking.
func (r *Remote) SetCacheHook(fn func(CacheSample)) {
	if fn == nil {
		r.cacheHook.Store(nil)
		return
	}
	r.cacheHook.Store(&fn)
}

// Dial connects to every peer, performs the handshake, and returns the
// coordinator. It fails if any peer is unreachable or speaks the wrong
// protocol — a partially-connected start would silently shrink the cluster.
func Dial(cfg RemoteConfig) (*Remote, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("exec: Dial needs at least one peer")
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	r := &Remote{noRefs: cfg.NoRefs}
	r.cond = sync.NewCond(&r.mu)
	for i, addr := range cfg.Peers {
		w, err := dialWorker(fmt.Sprintf("w%d", i), addr, timeout)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.workers = append(r.workers, w)
		go r.readLoop(w)
	}
	return r, nil
}

func dialWorker(id, addr string, timeout time.Duration) (*workerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("exec: dialing worker %s at %s: %w", id, addr, err)
	}
	cc := &countingConn{Conn: conn}
	var h hello
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	if err := gob.NewDecoder(cc).Decode(&h); err != nil {
		conn.Close()
		return nil, fmt.Errorf("exec: handshake with worker %s at %s: %w", id, addr, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	if h.Proto != protoVersion {
		conn.Close()
		return nil, fmt.Errorf("exec: worker %s at %s speaks protocol %d, want %d", id, addr, h.Proto, protoVersion)
	}
	slots := h.Slots
	if slots < 1 {
		slots = 1
	}
	return &workerConn{
		id: id, addr: addr, pid: h.Pid, slots: slots,
		conn: cc, enc: gob.NewEncoder(cc),
		pending:  map[uint64]chan response{},
		alive:    true,
		resident: map[ValueRef]int64{},
	}, nil
}

// readLoop drains one worker's responses. The decoder owns the connection's
// read side; any decode error means the stream is unusable (crash, kill,
// network drop) and the worker is retired.
func (r *Remote) readLoop(w *workerConn) {
	dec := gob.NewDecoder(w.conn)
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			r.failWorker(w, fmt.Errorf("connection lost: %w", err))
			return
		}
		w.pendMu.Lock()
		ch := w.pending[resp.ID]
		delete(w.pending, resp.ID)
		w.pendMu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// failWorker retires w: no further dispatches land on it, its residency is
// dropped (the cache died with the connection), and every pending request
// fails with a connection error (which the runtime treats as an attempt
// failure and may retry elsewhere). Each drained request counts Failed here
// and is handed a connFailure response so the receive path in executeOn
// does not also count it Completed — the counters stay a partition.
func (r *Remote) failWorker(w *workerConn, err error) {
	r.mu.Lock()
	if !w.alive {
		r.mu.Unlock()
		return
	}
	w.alive = false
	w.deadErr = err
	w.resident = map[ValueRef]int64{}
	w.residentBytes = 0
	r.cond.Broadcast()
	r.mu.Unlock()
	w.conn.Close()

	w.pendMu.Lock()
	drained := w.pending
	w.pending = map[uint64]chan response{}
	w.pendMu.Unlock()
	for _, ch := range drained {
		r.failed.Add(1)
		ch <- response{Err: fmt.Sprintf("worker %s (%s): %v", w.id, w.addr, err), connFailure: true}
	}
}

// acquire blocks until an alive worker has a free slot and reserves one.
// Placement is locality-aware: among free-slot workers it picks the one
// holding the most resident bytes of refs (the request's future-valued
// inputs), breaking ties — and the nothing-resident case — by least load.
// Saturated workers are never waited on for locality: a busy data-holder
// must not stall dispatch when an idle worker can run the task from shipped
// values. It errors once no worker is alive.
func (r *Remote) acquire(refs []ValueRef) (*workerConn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, fmt.Errorf("exec: backend is closed")
		}
		var best *workerConn
		var bestScore int64 = -1
		anyAlive := false
		for _, w := range r.workers {
			if !w.alive {
				continue
			}
			anyAlive = true
			if w.inflight >= w.slots {
				continue
			}
			var score int64
			for _, ref := range refs {
				score += w.resident[ref]
			}
			if best == nil || score > bestScore ||
				(score == bestScore && w.inflight < best.inflight) {
				best, bestScore = w, score
			}
		}
		if !anyAlive {
			return nil, fmt.Errorf("exec: no alive workers")
		}
		if best != nil {
			best.inflight++
			return best, nil
		}
		r.cond.Wait()
	}
}

func (r *Remote) release(w *workerConn) {
	r.mu.Lock()
	w.inflight--
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Execute ships one anonymous attempt (no task identity, so no caching and
// no locality) — the protocol-1 surface, kept for direct callers and tests.
func (r *Remote) Execute(name string, nOut int, args []any) ([]any, string, error) {
	return r.ExecuteTask(&Request{Name: name, NOut: nOut, Args: args, TaskID: -1})
}

// ExecuteTask ships one attempt to a worker: choose a worker near the
// request's data, reserve a slot, gob the request out (references for
// resident arguments, values seeding the cache for the rest), await the
// multiplexed response, and re-send with values inlined if the worker
// reported unresolvable references. The returned worker id labels the
// attempt in traces.
func (r *Remote) ExecuteTask(req *Request) ([]any, string, error) {
	useRefs := !r.noRefs && req.Session != 0
	var refs []ValueRef
	if useRefs {
		refs = make([]ValueRef, len(req.ArgRefs))
		for i, ar := range req.ArgRefs {
			refs[i] = ar.Ref
		}
	}
	w, err := r.acquire(refs)
	if err != nil {
		return nil, "", err
	}
	defer r.release(w)

	resp, err := r.executeOn(w, req, useRefs, false)
	if err != nil {
		return nil, w.id, err
	}
	if len(resp.Miss) > 0 {
		// The worker lacked references the residency map promised (evicted
		// or raced); re-send on the same reserved slot with every value
		// inlined. The inlined form cannot miss.
		r.missRetries.Add(1)
		resp, err = r.executeOn(w, req, useRefs, true)
		if err != nil {
			return nil, w.id, err
		}
		if len(resp.Miss) > 0 {
			return nil, w.id, fmt.Errorf("exec: worker %s reported misses for fully inlined %s", w.id, req.Name)
		}
	}
	if resp.Err != "" {
		return nil, w.id, fmt.Errorf("exec: %s: %s", req.Name, resp.Err)
	}
	if len(resp.Vals) != req.NOut {
		return nil, w.id, fmt.Errorf("exec: worker %s returned %d values for %s, want %d", w.id, len(resp.Vals), req.Name, req.NOut)
	}
	return resp.Vals, w.id, nil
}

// executeOn performs one wire round trip on an already-reserved worker
// slot. inlineAll forces every reference to travel as a RefValue (the
// post-Miss form).
func (r *Remote) executeOn(w *workerConn, req *Request, useRefs, inlineAll bool) (response, error) {
	wireArgs := req.Args
	store := false
	if useRefs {
		wireArgs = r.buildWireArgs(w, req, inlineAll)
		store = req.TaskID >= 0
	}

	id := r.nextID.Add(1)
	ch := make(chan response, 1)
	w.pendMu.Lock()
	w.pending[id] = ch
	w.pendMu.Unlock()

	// Dispatched counts every send *attempt* before its outcome is known,
	// so a failed encode still satisfies Dispatched == Completed + Failed.
	r.dispatched.Add(1)
	w.sendMu.Lock()
	err := w.enc.Encode(&request{
		ID: id, Name: req.Name, NOut: req.NOut, Args: wireArgs,
		Session: req.Session, Task: req.TaskID, Store: store,
	})
	w.sendMu.Unlock()
	if err != nil {
		// A gob encode error corrupts the stream state either way; retire
		// the connection. Whoever removes the pending entry owns the Failed
		// count: if our delete finds the entry, failWorker hadn't drained it
		// (it swapped the map before we registered, or races behind us) and
		// we count the failure; if the entry is gone, failWorker counted it.
		r.failWorker(w, fmt.Errorf("sending %s: %w", req.Name, err))
		w.pendMu.Lock()
		_, mine := w.pending[id]
		delete(w.pending, id)
		w.pendMu.Unlock()
		if mine {
			r.failed.Add(1)
		}
		return response{}, fmt.Errorf("exec: worker %s (%s): sending %s: %w", w.id, w.addr, req.Name, err)
	}

	resp := <-ch
	if resp.connFailure {
		// Fabricated by failWorker, already counted Failed; a drained
		// request is not a completed one.
		return response{}, fmt.Errorf("exec: %s: %s", req.Name, resp.Err)
	}
	r.completed.Add(1)
	r.applyResidency(w, &resp)
	r.refHits.Add(uint64(resp.RefHits))
	r.refMisses.Add(uint64(resp.RefMisses))
	if hook := r.cacheHook.Load(); hook != nil && useRefs {
		task := req.TaskID
		if !store {
			task = -1
		}
		(*hook)(CacheSample{
			Worker: w.id, Task: task,
			Hits: resp.RefHits, Misses: resp.RefMisses,
			CacheBytes: resp.CacheBytes,
		})
	}
	return resp, nil
}

// buildWireArgs maps req.Args to their wire form for worker w: an argument
// (or []any element) named by an ArgRef travels as a ValueRef when w is
// believed to hold it and as a cache-seeding RefValue otherwise; everything
// else travels by value. The input slices are never mutated — the runtime
// owns req.Args.
func (r *Remote) buildWireArgs(w *workerConn, req *Request, inlineAll bool) []any {
	if len(req.ArgRefs) == 0 {
		return req.Args
	}
	r.mu.Lock()
	resident := make([]bool, len(req.ArgRefs))
	if !inlineAll && w.alive {
		for i, ar := range req.ArgRefs {
			_, resident[i] = w.resident[ar.Ref]
		}
	}
	r.mu.Unlock()

	out := append([]any(nil), req.Args...)
	cloned := map[int]bool{} // []any args copied-on-write for Elem substitution
	for i, ar := range req.ArgRefs {
		if ar.Arg < 0 || ar.Arg >= len(out) {
			continue
		}
		var val any
		if ar.Elem < 0 {
			val = out[ar.Arg]
		} else {
			inner, ok := out[ar.Arg].([]any)
			if !ok || ar.Elem >= len(inner) {
				continue
			}
			val = inner[ar.Elem]
		}
		var wire any
		if resident[i] {
			wire = ar.Ref
		} else {
			wire = RefValue{Ref: ar.Ref, Val: val}
		}
		if ar.Elem < 0 {
			out[ar.Arg] = wire
		} else {
			if !cloned[ar.Arg] {
				out[ar.Arg] = append([]any(nil), out[ar.Arg].([]any)...)
				cloned[ar.Arg] = true
			}
			out[ar.Arg].([]any)[ar.Elem] = wire
		}
	}
	return out
}

// applyResidency folds one response's Stored/Evicted reports into the
// coordinator's view of w's cache.
func (r *Remote) applyResidency(w *workerConn, resp *response) {
	if len(resp.Stored) == 0 && len(resp.Evicted) == 0 {
		return
	}
	r.mu.Lock()
	if w.alive {
		for _, ev := range resp.Evicted {
			if n, ok := w.resident[ev]; ok {
				delete(w.resident, ev)
				w.residentBytes -= n
			}
		}
		for _, st := range resp.Stored {
			if _, ok := w.resident[st.Ref]; !ok {
				w.residentBytes += st.Bytes
			}
			w.resident[st.Ref] = st.Bytes
		}
	}
	r.mu.Unlock()
}

// Workers returns a snapshot of the dialed workers.
func (r *Remote) Workers() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, len(r.workers))
	for i, w := range r.workers {
		out[i] = WorkerInfo{
			ID: w.id, Addr: w.addr, Pid: w.pid, Slots: w.slots,
			Alive: w.alive, Inflight: w.inflight,
			ResidentBytes: w.residentBytes,
		}
	}
	return out
}

// AliveWorkers returns the number of workers still accepting dispatches.
func (r *Remote) AliveWorkers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// Stats returns cumulative dispatch counters.
func (r *Remote) Stats() RemoteStats {
	st := RemoteStats{
		Dispatched:  r.dispatched.Load(),
		Completed:   r.completed.Load(),
		Failed:      r.failed.Load(),
		RefHits:     r.refHits.Load(),
		RefMisses:   r.refMisses.Load(),
		MissRetries: r.missRetries.Load(),
	}
	r.mu.Lock()
	for _, w := range r.workers {
		st.BytesSent += uint64(w.conn.written.Load())
		st.BytesRecv += uint64(w.conn.read.Load())
	}
	r.mu.Unlock()
	return st
}

// KillWorker forcibly terminates loopback worker i (SIGKILL) — the
// fault-injection hook for crash-recovery tests. The death is observed the
// same way a real crash would be: the connection drops, in-flight attempts
// fail, and the worker is retired. It errors for workers Remote did not
// spawn (it has no authority over processes it only dialed). The kill runs
// under r.mu so it cannot race Close's reap of the same process (Kill
// after Wait on a reaped process is a use-after-free of the pid).
func (r *Remote) KillWorker(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || i < 0 || i >= len(r.procs) || r.procs[i] == nil {
		if r.closed {
			return fmt.Errorf("exec: backend is closed")
		}
		return fmt.Errorf("exec: worker %d was not spawned by this coordinator", i)
	}
	return r.procs[i].Kill()
}

// Close retires every worker, fails pending requests, and reaps loopback
// processes. The proc list is tombstoned under r.mu before reaping so a
// concurrent KillWorker can never touch a reaped process.
func (r *Remote) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	workers := append([]*workerConn(nil), r.workers...)
	procs := r.procs
	r.procs = nil
	r.cond.Broadcast()
	r.mu.Unlock()

	for _, w := range workers {
		r.failWorker(w, fmt.Errorf("backend closed"))
	}
	for _, p := range procs {
		if p != nil {
			_ = p.Kill()
			_, _ = p.Wait()
		}
	}
	return nil
}
