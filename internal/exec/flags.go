package exec

import (
	"fmt"
	"strings"
)

// OpenBackend interprets the cmd-line backend selection shared by the cmd
// tools (-backend / -peers flags):
//
//	mode "local" (or "")  → nil: the runtime executes everything in-process.
//	mode "remote", peers  → Dial the comma-separated worker addresses.
//	mode "remote", no peers → SpawnLoopback(loopbackWorkers, slots): the tool
//	    re-execs itself as worker processes on 127.0.0.1.
//
// The caller owns the returned backend (Close it after Barrier); a nil
// Backend needs no Close.
func OpenBackend(mode, peers string, loopbackWorkers, slots int) (Backend, error) {
	switch mode {
	case "", "local":
		return nil, nil
	case "remote":
		if peers != "" {
			var addrs []string
			for _, a := range strings.Split(peers, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
			return Dial(RemoteConfig{Peers: addrs})
		}
		if loopbackWorkers < 1 {
			loopbackWorkers = 2
		}
		return SpawnLoopback(loopbackWorkers, slots)
	default:
		return nil, fmt.Errorf("exec: unknown backend %q (want local or remote)", mode)
	}
}
