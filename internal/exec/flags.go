package exec

import (
	"fmt"
	"strings"
)

// BackendOptions is the cmd-line backend selection shared by the cmd tools
// (-backend / -peers / -slots / -exec-cache-mb / -exec-refs flags).
type BackendOptions struct {
	// Mode selects the backend: "" or "local" → nil (in-process), "remote"
	// → Dial Peers, or SpawnLoopback when Peers is empty.
	Mode string
	// Peers is a comma-separated worker address list for Mode "remote".
	Peers string
	// LoopbackWorkers is how many workers SpawnLoopback starts when Peers
	// is empty (default 2).
	LoopbackWorkers int
	// Slots is the per-worker concurrent-body count for spawned workers.
	Slots int
	// CacheMB bounds each spawned worker's future cache in MiB; 0 keeps the
	// worker default (DefaultCacheBytes), <0 disables worker caching.
	CacheMB int
	// NoRefs disables the reference data plane coordinator-side (values
	// baseline; see RemoteConfig.NoRefs).
	NoRefs bool
}

// OpenBackend interprets opts:
//
//	Mode "local" (or "")  → nil: the runtime executes everything in-process.
//	Mode "remote", Peers  → Dial the comma-separated worker addresses.
//	Mode "remote", no Peers → SpawnLoopback: the tool re-execs itself as
//	    worker processes on 127.0.0.1.
//
// The caller owns the returned backend (Close it after Barrier); a nil
// Backend needs no Close.
func OpenBackend(opts BackendOptions) (Backend, error) {
	switch opts.Mode {
	case "", "local":
		return nil, nil
	case "remote":
		if opts.Peers != "" {
			var addrs []string
			for _, a := range strings.Split(opts.Peers, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
			return Dial(RemoteConfig{Peers: addrs, NoRefs: opts.NoRefs})
		}
		n := opts.LoopbackWorkers
		if n < 1 {
			n = 2
		}
		return SpawnLoopback(LoopbackConfig{
			Workers: n, Slots: opts.Slots,
			CacheMB: opts.CacheMB, NoRefs: opts.NoRefs,
		})
	default:
		return nil, fmt.Errorf("exec: unknown backend %q (want local or remote)", opts.Mode)
	}
}
