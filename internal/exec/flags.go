package exec

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// Config is the one-stop backend configuration shared by the cmd tools: a
// single struct covering backend selection, fleet sizing, the data plane,
// and elasticity, with Flags binding the standard flag set and Open
// interpreting the result. It replaces the per-tool flag scatter the cmd
// tools grew before PR 8.
type Config struct {
	// Backend selects the execution backend: "" or "local" → nil
	// (in-process), "remote" → Dial Peers, or SpawnLoopback when Peers is
	// empty.
	Backend string
	// Peers is a comma-separated worker address list for Backend "remote".
	Peers string
	// Workers is how many loopback workers SpawnLoopback starts when Peers
	// is empty (default 2). With autoscaling (MaxWorkers > 0) the fleet
	// instead starts at MinWorkers.
	Workers int
	// Slots is the per-worker concurrent-body count for spawned workers.
	Slots int
	// CacheMB bounds each spawned worker's future cache in MiB; 0 keeps the
	// worker default (DefaultCacheBytes), <0 disables worker caching.
	CacheMB int
	// Refs enables the reference data plane (default true; false is the
	// values baseline, RemoteConfig.NoRefs).
	Refs bool
	// P2P enables direct worker-to-worker transfers on top of the reference
	// plane (default true; false is the refs baseline where every value
	// ships through the coordinator, RemoteConfig.NoPeers). Implied off when
	// Refs is off.
	P2P bool

	// Listen, when non-empty, opens the coordinator's fleet listen address
	// (Remote.ListenForWorkers) so restarted or brand-new workers can dial
	// in mid-run. Use host:0 for an ephemeral port; the bound address and
	// join token are available on the Remote.
	Listen string

	// MinWorkers / MaxWorkers enable queue-depth autoscaling of a loopback
	// fleet when MaxWorkers > 0: the fleet starts at MinWorkers (default 1)
	// and Remote.Autoscale grows/shrinks it within [MinWorkers, MaxWorkers].
	// Only loopback fleets autoscale — Open rejects MaxWorkers with Peers.
	MinWorkers int
	MaxWorkers int
	// ScalePolicy overrides the autoscaler's default &HysteresisPolicy{}.
	ScalePolicy ScalePolicy
	// ScaleInterval overrides the autoscaler's sampling interval.
	ScaleInterval time.Duration
	// Depth feeds the autoscaler the ready-queue depth (typically
	// trace.Gauge.Ready). Nil falls back to the slot-waiter count.
	Depth func() int

	// DialTimeout bounds each worker dial + handshake (default 5s).
	DialTimeout time.Duration
}

// Flags binds the standard backend flags onto fs, writing into cfg. The
// flag names are shared by every cmd tool:
//
//	-backend local|remote     -peers host:port,...
//	-loopback-workers N       -slots N
//	-exec-cache-mb N          -exec-refs       -exec-p2p
//	-fleet-listen host:port   -min-workers N  -max-workers N
func (cfg *Config) Flags(fs *flag.FlagSet) {
	fs.StringVar(&cfg.Backend, "backend", "local", "execution backend: local | remote")
	fs.StringVar(&cfg.Peers, "peers", "", "comma-separated worker addresses for -backend=remote (empty spawns loopback workers)")
	fs.IntVar(&cfg.Workers, "loopback-workers", 2, "loopback worker processes when -backend=remote without -peers")
	fs.IntVar(&cfg.Slots, "slots", 1, "task slots per loopback worker")
	fs.IntVar(&cfg.CacheMB, "exec-cache-mb", 0, "per-worker future-cache bound in MiB (0 = default, negative disables)")
	fs.BoolVar(&cfg.Refs, "exec-refs", true, "pass references instead of values between co-located remote tasks")
	fs.BoolVar(&cfg.P2P, "exec-p2p", true, "let workers pull values directly from peer workers instead of through the coordinator")
	fs.StringVar(&cfg.Listen, "fleet-listen", "", "coordinator listen address for mid-run worker registration (host:0 for ephemeral)")
	fs.IntVar(&cfg.MinWorkers, "min-workers", 0, "autoscale floor; used with -max-workers")
	fs.IntVar(&cfg.MaxWorkers, "max-workers", 0, "autoscale the loopback fleet up to this many workers (0 = fixed fleet)")
}

// Open builds the backend cfg describes:
//
//	Backend "local" (or "")  → nil: the runtime executes everything in-process.
//	Backend "remote", Peers  → Dial the comma-separated worker addresses.
//	Backend "remote", no Peers → SpawnLoopback: the tool re-execs itself as
//	    worker processes on 127.0.0.1, MinWorkers of them when autoscaling.
//
// With Listen set, the coordinator's fleet listen port opens before Open
// returns; with MaxWorkers set on a loopback fleet, the autoscaler is
// already running. The caller owns the returned backend (Close it after
// Barrier); a nil Backend needs no Close.
func Open(cfg Config) (Backend, error) {
	switch cfg.Backend {
	case "", "local":
		return nil, nil
	case "remote":
	default:
		return nil, fmt.Errorf("exec: unknown backend %q (want local or remote)", cfg.Backend)
	}

	var r *Remote
	if cfg.Peers != "" {
		if cfg.MaxWorkers > 0 {
			return nil, fmt.Errorf("exec: autoscaling (-max-workers) needs a loopback fleet, not -peers — dialed workers cannot be spawned")
		}
		var addrs []string
		for _, a := range strings.Split(cfg.Peers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		var err error
		r, err = Dial(RemoteConfig{Peers: addrs, NoRefs: !cfg.Refs, NoPeers: !cfg.P2P, DialTimeout: cfg.DialTimeout})
		if err != nil {
			return nil, err
		}
	} else {
		n := cfg.Workers
		if cfg.MaxWorkers > 0 {
			n = cfg.MinWorkers
			if n < 1 {
				n = 1
			}
			if n > cfg.MaxWorkers {
				return nil, fmt.Errorf("exec: -min-workers %d > -max-workers %d", n, cfg.MaxWorkers)
			}
		}
		if n < 1 {
			n = 2
		}
		var err error
		r, err = SpawnLoopback(LoopbackConfig{
			Workers: n, Slots: cfg.Slots,
			CacheMB: cfg.CacheMB, NoRefs: !cfg.Refs, NoPeers: !cfg.P2P,
		})
		if err != nil {
			return nil, err
		}
	}

	if cfg.Listen != "" {
		addr, err := r.ListenForWorkers(cfg.Listen)
		if err != nil {
			r.Close()
			return nil, err
		}
		// The operator needs both to start a dial-in worker; stderr keeps
		// the announcement out of piped experiment output.
		fmt.Fprintf(os.Stderr, "exec: fleet registration open on %s (worker -join %s -token %s)\n",
			addr, addr, r.JoinToken())
	}
	if cfg.MaxWorkers > 0 {
		err := r.Autoscale(AutoscaleConfig{
			Min: cfg.MinWorkers, Max: cfg.MaxWorkers,
			Policy: cfg.ScalePolicy, Depth: cfg.Depth,
			Interval: cfg.ScaleInterval,
		})
		if err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}
