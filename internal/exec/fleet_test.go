package exec_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taskml/internal/exec"
)

// TestFleetJoinDuringDispatch races a mid-run SpawnWorker against a stream
// of in-flight dispatches: the joined member must get a fresh id, absorb
// part of the load, and the stats partition must hold at quiescence.
func TestFleetJoinDuringDispatch(t *testing.T) {
	r, err := exec.SpawnLoopback(exec.LoopbackConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const tasks = 24
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := r.Execute("test_sleep_ms", 1, []any{10}); err != nil {
				failures.Add(1)
			}
		}()
	}
	id, err := r.SpawnWorker()
	if err != nil {
		t.Fatalf("SpawnWorker during dispatch: %v", err)
	}
	if id != "w1" {
		t.Fatalf("joined worker id = %q, want the fresh id w1", id)
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d attempts failed during a clean join", n)
	}
	var joinedDone uint64
	for _, w := range r.Workers() {
		if w.ID == id {
			joinedDone = w.Done
		}
	}
	if joinedDone == 0 {
		t.Fatal("joined worker received no attempts")
	}
	st := r.Stats()
	if st.Dispatched != st.Completed+st.Failed {
		t.Fatalf("partition broken: dispatched %d != completed %d + failed %d",
			st.Dispatched, st.Completed, st.Failed)
	}
	if st.Joined != 2 || st.PeakWorkers != 2 {
		t.Fatalf("Joined = %d, PeakWorkers = %d, want 2 and 2", st.Joined, st.PeakWorkers)
	}
}

// TestFleetDrainWithInflight drains a worker while it is mid-attempt: the
// drain must return immediately, the in-flight attempt must complete (not
// fail), and once idle the worker must retire cleanly — Failed stays 0.
func TestFleetDrainWithInflight(t *testing.T) {
	r, err := exec.SpawnLoopback(exec.LoopbackConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := r.Execute("test_sleep_ms", 1, []any{80}); err != nil {
				failures.Add(1)
			}
		}()
	}
	// Both single-slot workers are busy once Inflight reaches 2.
	waitFor(t, 5*time.Second, func() bool {
		n := 0
		for _, w := range r.Workers() {
			n += w.Inflight
		}
		return n == 2
	})

	if err := r.Drain("w0"); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Drain is asynchronous: w0 is draining (or already dead, if its attempt
	// just finished) but never accepts new placements.
	for _, w := range r.Workers() {
		if w.ID == "w0" && w.State == "alive" {
			t.Fatal("drained worker still reports alive")
		}
	}
	if err := r.Drain("w0"); err == nil || !strings.Contains(err.Error(), "cannot drain") {
		t.Fatalf("second Drain should reject a non-alive worker, got %v", err)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d in-flight attempts failed during a graceful drain", n)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, w := range r.Workers() {
			if w.ID == "w0" {
				return w.State == "dead"
			}
		}
		return false
	})

	// The survivor keeps executing; the drained worker never fails anything.
	if _, wid, err := r.Execute("test_add", 1, []any{1.0, 2.0}); err != nil || wid != "w1" {
		t.Fatalf("post-drain Execute = worker %q, %v; want w1, nil", wid, err)
	}
	st := r.Stats()
	if st.Failed != 0 {
		t.Fatalf("graceful drain counted %d Failed; drains must not fail attempts", st.Failed)
	}
	if st.Dispatched != st.Completed {
		t.Fatalf("partition broken at quiescence: dispatched %d != completed %d", st.Dispatched, st.Completed)
	}
	if st.Left != 1 {
		t.Fatalf("Left = %d, want 1", st.Left)
	}
}

// TestFleetListenRejoin exercises the coordinator listen mode: a dial-in
// worker with the right token becomes a fresh member, a wrong token is
// rejected before it can receive work, and a retired member can re-register
// — always under a brand-new id.
func TestFleetListenRejoin(t *testing.T) {
	r, err := exec.SpawnLoopback(exec.LoopbackConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	addr, err := r.ListenForWorkers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if r.ListenAddr() != addr {
		t.Fatalf("ListenAddr = %q, want %q", r.ListenAddr(), addr)
	}

	// Wrong token: the connection must be dropped, not admitted.
	badDone := make(chan error, 1)
	go func() { badDone <- exec.JoinCoordinator(addr, "not-the-token", exec.WorkerConfig{}) }()
	select {
	case <-badDone: // rejected: the coordinator closed the connection
	case <-time.After(5 * time.Second):
		t.Fatal("wrong-token join neither admitted nor rejected")
	}
	if n := r.AliveWorkers(); n != 1 {
		t.Fatalf("%d alive workers after a rejected join, want 1", n)
	}

	// Right token: admitted as w1 (the listen-mode worker runs as an
	// in-process goroutine here; to the coordinator it is just a member).
	joinErr := make(chan error, 1)
	go func() { joinErr <- exec.JoinCoordinator(addr, r.JoinToken(), exec.WorkerConfig{Slots: 1}) }()
	waitFor(t, 5*time.Second, func() bool { return r.AliveWorkers() == 2 })
	var joined string
	for _, w := range r.Workers() {
		if w.State == "alive" && w.ID != "w0" {
			joined = w.ID
		}
	}
	if joined != "w1" {
		t.Fatalf("dial-in worker id = %q, want w1", joined)
	}
	if v, _, err := r.Execute("test_add", 1, []any{2.0, 3.0}); err != nil || v[0].(float64) != 5 {
		t.Fatalf("Execute across the joined fleet = %v, %v", v, err)
	}

	// Retire the dial-in member and re-register: the comeback gets a fresh
	// id, never w1 again.
	if err := r.Leave(joined); err != nil {
		t.Fatal(err)
	}
	if err := <-joinErr; err != nil {
		t.Fatalf("JoinCoordinator should return nil when the coordinator closes, got %v", err)
	}
	go func() { _ = exec.JoinCoordinator(addr, r.JoinToken(), exec.WorkerConfig{Slots: 1}) }()
	waitFor(t, 5*time.Second, func() bool { return r.AliveWorkers() == 2 })
	for _, w := range r.Workers() {
		if w.State == "alive" && w.ID != "w0" && w.ID != "w2" {
			t.Fatalf("re-admitted worker id = %q, want the fresh id w2", w.ID)
		}
	}
	st := r.Stats()
	if st.Dispatched != st.Completed+st.Failed {
		t.Fatalf("partition broken: %+v", st)
	}
}

// TestFleetAutoscaleSoak runs the 1→N→1 elasticity loop for real: a burst
// of sleep tasks grows the loopback fleet to Max, the idle tail shrinks it
// back to Min, and at quiescence no attempt was lost or double-counted.
func TestFleetAutoscaleSoak(t *testing.T) {
	r, err := exec.SpawnLoopback(exec.LoopbackConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var ups, downs atomic.Int64
	r.SetFleetHook(func(ev exec.FleetEvent) {
		switch ev.Kind {
		case exec.FleetScaleUp:
			ups.Add(1)
		case exec.FleetScaleDown:
			downs.Add(1)
		}
	})
	err = r.Autoscale(exec.AutoscaleConfig{
		Min: 1, Max: 3, Interval: 10 * time.Millisecond,
		Policy: &exec.HysteresisPolicy{GrowAfter: 1, ShrinkAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Autoscale(exec.AutoscaleConfig{Min: 1, Max: 3}); err == nil {
		t.Fatal("second Autoscale should be rejected")
	}

	// Burst: far more concurrent attempts than the one slot — the waiter
	// count (the fallback depth signal) drives growth to Max.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := r.Execute("test_sleep_ms", 1, []any{5}); err != nil {
					failures.Add(1)
					return
				}
			}
		}()
	}
	waitFor(t, 10*time.Second, func() bool { return r.AliveWorkers() == 3 })
	close(stop)
	wg.Wait()

	// Idle: the fleet must shrink back to Min, one graceful drain at a time.
	waitFor(t, 10*time.Second, func() bool { return r.AliveWorkers() == 1 })

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d attempts failed during the scale soak", n)
	}
	st := r.Stats()
	if st.Failed != 0 {
		t.Fatalf("autoscaling counted %d Failed; drains must be graceful", st.Failed)
	}
	if st.Dispatched != st.Completed {
		t.Fatalf("partition broken at quiescence: dispatched %d != completed %d", st.Dispatched, st.Completed)
	}
	if st.PeakWorkers != 3 {
		t.Fatalf("PeakWorkers = %d, want 3", st.PeakWorkers)
	}
	if ups.Load() < 2 || downs.Load() < 2 {
		t.Fatalf("scale events up=%d down=%d, want ≥2 each", ups.Load(), downs.Load())
	}
	// The fleet can still do work at Min.
	if v, _, err := r.Execute("test_add", 1, []any{20.0, 22.0}); err != nil || v[0].(float64) != 42 {
		t.Fatalf("post-soak Execute = %v, %v", v, err)
	}
}

// TestHysteresisPolicy pins the default policy's streak behaviour: grow
// only after sustained backlog, shrink only after a longer idle streak,
// hold in between.
func TestHysteresisPolicy(t *testing.T) {
	p := &exec.HysteresisPolicy{} // defaults: GrowAt 2.0×, GrowAfter 2, ShrinkAt 0.25×, ShrinkAfter 4
	busy := exec.ScaleSample{Workers: 2, SlotTotal: 2, Ready: 10}
	idle := exec.ScaleSample{Workers: 2, SlotTotal: 2}
	mid := exec.ScaleSample{Workers: 2, SlotTotal: 2, Ready: 1, Inflight: 1}

	if got := p.Desired(busy); got != 2 {
		t.Fatalf("one busy sample grew the fleet to %d", got)
	}
	if got := p.Desired(busy); got != 3 {
		t.Fatalf("two busy samples → %d, want grow to 3", got)
	}
	for i := 0; i < 3; i++ {
		if got := p.Desired(idle); got != 2 {
			t.Fatalf("idle sample %d shrank early to %d", i, got)
		}
	}
	if got := p.Desired(idle); got != 1 {
		t.Fatalf("four idle samples → %d, want shrink to 1", got)
	}
	// A middling sample resets both streaks.
	p.Desired(idle)
	p.Desired(idle)
	p.Desired(mid)
	if got := p.Desired(idle); got != 2 {
		t.Fatalf("streak not reset by a middling sample: %d", got)
	}
}

// TestOpenRejectsAutoscaledPeers pins the Config contract: a dialed fleet
// has no executable to re-exec, so -max-workers with -peers must fail fast.
func TestOpenRejectsAutoscaledPeers(t *testing.T) {
	_, err := exec.Open(exec.Config{Backend: "remote", Peers: "127.0.0.1:1", MaxWorkers: 4})
	if err == nil || !strings.Contains(err.Error(), "loopback") {
		t.Fatalf("Open(peers + autoscale) = %v, want a loopback-only error", err)
	}
	if _, err := exec.Open(exec.Config{Backend: "remote", MinWorkers: 5, MaxWorkers: 2}); err == nil {
		t.Fatal("Open(min > max) should fail")
	}
}
