package exec_test

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taskml/internal/exec"
	"taskml/internal/mat"
)

// TestMain makes the test binary spawnable as a loopback worker: when the
// coordinator side of a test re-execs it with TASKML_EXEC_WORKER set,
// MaybeWorkerMain serves the functions registered below instead of running
// the tests again.
func TestMain(m *testing.M) {
	exec.MaybeWorkerMain()
	os.Exit(m.Run())
}

// Test task vocabulary. Registered from init so the re-exec'd worker child
// (which runs this same init) carries the identical name table.
func init() {
	exec.Register("test_add", func(args []any) (any, error) {
		return args[0].(float64) + args[1].(float64), nil
	})
	exec.Register("test_pid", func(args []any) (any, error) {
		return os.Getpid(), nil
	})
	exec.Register("test_scale_mat", func(args []any) (any, error) {
		return mat.Scale(args[1].(float64), args[0].(*mat.Dense)), nil
	})
	exec.RegisterN("test_split", func(args []any) ([]any, error) {
		xs := args[0].([]float64)
		var lo, hi []float64
		for _, x := range xs {
			if x < args[1].(float64) {
				lo = append(lo, x)
			} else {
				hi = append(hi, x)
			}
		}
		return []any{lo, hi}, nil
	})
	exec.Register("test_err", func(args []any) (any, error) {
		return nil, fmt.Errorf("deliberate failure: %v", args[0])
	})
	exec.Register("test_panic", func(args []any) (any, error) {
		panic("deliberate panic")
	})
	exec.Register("test_sleep_ms", func(args []any) (any, error) {
		time.Sleep(time.Duration(args[0].(int)) * time.Millisecond)
		return args[0], nil
	})
}

func TestRegistry(t *testing.T) {
	if !exec.Has("test_add") || exec.Has("no_such_function") {
		t.Fatalf("Has: wrong answers for test_add / no_such_function")
	}
	names := exec.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}

	vals, err := exec.Invoke("test_add", 1, []any{1.5, 2.25})
	if err != nil || len(vals) != 1 || vals[0].(float64) != 3.75 {
		t.Fatalf("Invoke(test_add) = %v, %v", vals, err)
	}
	if _, err := exec.Invoke("no_such_function", 1, nil); err == nil {
		t.Fatal("Invoke of an unregistered name should error")
	}
	if _, err := exec.Invoke("test_add", 2, []any{1.0, 2.0}); err == nil {
		t.Fatal("Invoke with wrong nOut should error")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	exec.Register("test_add", func([]any) (any, error) { return nil, nil })
}

func TestLocalBackend(t *testing.T) {
	var l exec.Local
	vals, worker, err := l.Execute("test_add", 1, []any{2.0, 3.0})
	if err != nil || vals[0].(float64) != 5 {
		t.Fatalf("Local.Execute = %v, %v", vals, err)
	}
	if worker != "" {
		t.Fatalf("Local worker id = %q, want empty (in-process)", worker)
	}
	if _, _, err := l.Execute("no_such_function", 1, nil); err == nil {
		t.Fatal("Local.Execute of an unregistered name should error")
	}
}

// TestLoopbackRoundtrip covers the whole wire path against real worker
// processes: scalars, matrices (bit-exact), multi-output, worker-side
// errors, and panic containment.
func TestLoopbackRoundtrip(t *testing.T) {
	r, err := exec.SpawnLoopback(exec.LoopbackConfig{Workers: 2, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if n := r.AliveWorkers(); n != 2 {
		t.Fatalf("AliveWorkers = %d, want 2", n)
	}

	// Execution really happens out of process.
	vals, worker, err := r.Execute("test_pid", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pid := vals[0].(int)
	if pid == os.Getpid() {
		t.Fatalf("test_pid ran in the coordinator process (pid %d)", pid)
	}
	found := false
	for _, w := range r.Workers() {
		if w.ID == worker {
			found = true
			if w.Pid != pid {
				t.Fatalf("worker %s handshake pid %d, body saw %d", worker, w.Pid, pid)
			}
		}
	}
	if !found {
		t.Fatalf("Execute reported unknown worker id %q", worker)
	}

	// Matrices round-trip bit-exactly.
	m := mat.New(3, 4)
	for i := range m.Data {
		m.Data[i] = 0.1 * float64(i+1) // values without exact binary representation
	}
	vals, _, err = r.Execute("test_scale_mat", 1, []any{m, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	got := vals[0].(*mat.Dense)
	want := mat.Scale(2.0, m)
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Data[%d] = %x, want %x (not bit-identical)", i, got.Data[i], want.Data[i])
		}
	}

	// Multi-output.
	vals, _, err = r.Execute("test_split", 2, []any{[]float64{1, 5, 2, 8}, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if lo := vals[0].([]float64); len(lo) != 2 || lo[0] != 1 || lo[1] != 2 {
		t.Fatalf("test_split lo = %v", lo)
	}

	// Worker-side errors come back as errors, not dead connections.
	if _, _, err := r.Execute("test_err", 1, []any{"x"}); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("worker error not propagated: %v", err)
	}
	if _, _, err := r.Execute("test_panic", 1, nil); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("worker panic not contained: %v", err)
	}
	if n := r.AliveWorkers(); n != 2 {
		t.Fatalf("AliveWorkers after error+panic = %d, want 2 (failures must not kill workers)", n)
	}
	if _, _, err := r.Execute("test_add", 1, []any{1.0, 1.0}); err != nil {
		t.Fatalf("worker unusable after panic: %v", err)
	}

	st := r.Stats()
	if st.Dispatched == 0 || st.Completed != st.Dispatched || st.Failed != 0 {
		t.Fatalf("Stats = %+v, want dispatched == completed, no failures", st)
	}
}

// TestSlotAccounting checks that a single 2-slot worker runs at most two
// bodies at once and that the coordinator blocks (rather than erroring)
// when saturated.
func TestSlotAccounting(t *testing.T) {
	r, err := exec.SpawnLoopback(exec.LoopbackConfig{Workers: 1, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const calls = 6
	var wg sync.WaitGroup
	var inflight, peak atomic.Int64
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// inflight is sampled around the blocking Execute; the worker's
			// semaphore bounds true concurrency, this bounds observed peak.
			if _, _, err := r.Execute("test_sleep_ms", 1, []any{30}); err != nil {
				t.Errorf("Execute: %v", err)
				return
			}
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			inflight.Add(-1)
		}()
	}
	wg.Wait()
	for _, w := range r.Workers() {
		if w.Inflight != 0 {
			t.Fatalf("worker %s still has %d inflight after drain", w.ID, w.Inflight)
		}
	}
	if st := r.Stats(); st.Dispatched != calls || st.Completed != calls {
		t.Fatalf("Stats = %+v, want %d dispatched and completed", st, calls)
	}
}

// TestKillWorker: killing a worker mid-flight fails the in-flight attempt
// (the runtime's retry layer owns what happens next), retires the worker,
// and leaves the survivors serving.
func TestKillWorker(t *testing.T) {
	r, err := exec.SpawnLoopback(exec.LoopbackConfig{Workers: 2, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Saturate both workers with slow bodies, then kill worker 0. Exactly
	// one of the two calls must fail with a connection error.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := r.Execute("test_sleep_ms", 1, []any{2000})
			errs <- err
		}()
	}
	waitFor(t, time.Second, func() bool {
		inflight := 0
		for _, w := range r.Workers() {
			inflight += w.Inflight
		}
		return inflight == 2
	})
	if err := r.KillWorker(0); err != nil {
		t.Fatal(err)
	}

	var failed int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				failed++
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Execute did not return after worker kill")
		}
	}
	if failed != 1 {
		t.Fatalf("%d of 2 in-flight calls failed after killing one worker, want exactly 1", failed)
	}
	waitFor(t, 5*time.Second, func() bool { return r.AliveWorkers() == 1 })
	if st := r.Stats(); st.Failed == 0 {
		t.Fatalf("Stats = %+v, want Failed > 0 after a lost dispatch", st)
	}

	// The survivor keeps serving.
	vals, worker, err := r.Execute("test_add", 1, []any{20.0, 22.0})
	if err != nil || vals[0].(float64) != 42 {
		t.Fatalf("survivor Execute = %v, %v", vals, err)
	}
	if worker != "w1" {
		t.Fatalf("dispatch landed on %q, want the survivor w1", worker)
	}

	// Killing the survivor too leaves no capacity: Execute must error, not
	// hang — the runtime turns this into task failure / degraded mode.
	if err := r.KillWorker(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return r.AliveWorkers() == 0 })
	if _, _, err := r.Execute("test_add", 1, []any{1.0, 1.0}); err == nil {
		t.Fatal("Execute with no alive workers should error")
	}

	// At quiescence the counters partition: every dispatch ended exactly
	// once, as a completion or a connection failure — never both, never
	// neither (the double-count bug made kills look like successes too).
	if st := r.Stats(); st.Dispatched != st.Completed+st.Failed {
		t.Fatalf("Stats = %+v, want Dispatched == Completed + Failed at quiescence", st)
	}
}

// TestKillWorkerCloseRace: KillWorker racing Close must never touch a
// process Close already reaped (run under -race in scripts/check.sh). After
// Close wins, KillWorker reports the backend closed instead of crashing.
func TestKillWorkerCloseRace(t *testing.T) {
	for iter := 0; iter < 3; iter++ {
		r, err := exec.SpawnLoopback(exec.LoopbackConfig{Workers: 2, Slots: 1})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); _ = r.KillWorker(0) }()
		go func() { defer wg.Done(); _ = r.Close() }()
		wg.Wait()
		if err := r.KillWorker(1); err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("KillWorker after Close = %v, want backend-closed error", err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("second Close = %v", err)
		}
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := exec.Dial(exec.RemoteConfig{}); err == nil {
		t.Fatal("Dial with no peers should error")
	}
	if _, err := exec.Dial(exec.RemoteConfig{
		Peers:       []string{"127.0.0.1:1"}, // reserved port, nothing listens
		DialTimeout: 500 * time.Millisecond,
	}); err == nil {
		t.Fatal("Dial to a dead address should error")
	}
}

func TestOpenBackend(t *testing.T) {
	b, err := exec.Open(exec.Config{Backend: "local"})
	if err != nil || b != nil {
		t.Fatalf("Open(local) = %v, %v; want nil backend (in-process execution)", b, err)
	}
	if _, err := exec.Open(exec.Config{Backend: "bogus"}); err == nil {
		t.Fatal("Open with an unknown backend should error")
	}
	r, err := exec.Open(exec.Config{Backend: "remote", Workers: 1, Slots: 1, Refs: true, P2P: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.ExecuteTask(&exec.Request{Name: "test_add", NOut: 1, Args: []any{1.0, 2.0}, TaskID: -1}); err != nil {
		t.Fatalf("loopback backend from Open: %v", err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// BenchmarkRemoteRoundtrip measures one gob round-trip to a loopback worker
// carrying a small matrix block — the per-task wire overhead a remote
// deployment pays over in-process dispatch.
func BenchmarkRemoteRoundtrip(b *testing.B) {
	r, err := exec.SpawnLoopback(exec.LoopbackConfig{Workers: 1, Slots: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	m := mat.New(32, 32)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	b.SetBytes(int64(8 * len(m.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Execute("test_scale_mat", 1, []any{m, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}
