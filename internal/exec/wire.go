package exec

import "encoding/gob"

// The wire format: length-free gob streams over one TCP connection per
// worker, multiplexed by request ID.
//
// On accept the worker sends a single hello frame advertising its protocol
// version and slot count; the coordinator then writes request frames and
// reads response frames, in any interleaving — the worker executes requests
// concurrently (bounded by its slots) and responses return in completion
// order, not request order. Both directions reuse one long-lived gob
// encoder/decoder pair, so concrete-type descriptors cross the wire once
// per connection, not once per task.
//
// Values inside Args/Vals travel as gob interface values: every concrete
// type must be registered on both ends (see RegisterType), which holds by
// construction when coordinator and worker run the same binary or link the
// same packages. Payloads are freshly allocated by gob on decode — a wire
// hop never aliases pooled scratch, satisfying the mat.Pool ownership
// contract (DESIGN.md "Memory model") by construction.
//
// # References (protocol 2)
//
// Protocol 2 adds the data plane: an argument may travel as a ValueRef —
// the *identity* of a task output the worker already holds in its future
// cache — or as a RefValue — the value plus its identity, which the worker
// inserts into the cache so the next consumer placed there sends only the
// reference. The worker never trusts the coordinator's residency view: a
// request naming a reference it cannot resolve (evicted, crashed cache) is
// answered with response.Miss and no execution; the coordinator re-sends
// with every reference inlined, so a stale residency map can cost a round
// trip but never an answer.

// protoVersion guards against dialing a worker built from an incompatible
// checkout; the coordinator rejects a mismatched hello instead of
// mis-decoding task payloads. Version 2 added the reference wire forms
// (ValueRef, RefValue) and the cache bookkeeping fields of request and
// response. Version 3 added hello.Token, the fleet join credential that
// gates the coordinator's listen mode (see Remote.ListenForWorkers).
// Version 4 added the peer-to-peer data plane: hello.PeerAddr/PeerToken,
// the PeerRef wire form, and the peer counters of response (see peer.go).
const protoVersion = 4

// hello is the worker → coordinator handshake frame. The worker always
// sends it first, whichever side dialed: on the classic path the
// coordinator dials a listening worker and reads the hello off the fresh
// connection; in fleet listen mode a worker dials the coordinator and the
// hello doubles as its registration request.
type hello struct {
	Proto int // protocol version; must equal protoVersion
	Pid   int // worker process id (diagnostics, trace labels)
	Slots int // concurrent task bodies the worker will run
	// Token is the fleet join credential. The coordinator ignores it on
	// connections it dialed itself (it chose the address) but requires it to
	// match its JoinToken on dial-in registrations — a stray connection to
	// the listen port must not become a task executor. Re-admission after a
	// crash presents the same token; the re-admitted worker still gets a
	// fresh id (its old residency died with the old connection).
	Token string
	// PeerAddr is the worker's peer-transfer listener (protocol 4): the
	// address other workers dial to pull this connection's resident values
	// directly. Empty when the worker has peer transfers disabled; the host
	// may be unspecified ("[::]:port" from a :0 bind), in which case the
	// coordinator substitutes the host it reaches the worker at.
	PeerAddr string
	// PeerToken scopes peer fetches to this coordinator connection: it is
	// minted fresh per connection and names the connection's future cache on
	// the peer listener (peer.go). A restarted worker at the same address
	// mints a new token, so PeerRefs built against the old connection can
	// never be served stale data — they fail token lookup and fall back to
	// the coordinator Miss/resend path.
	PeerToken string
}

// ValueRef names one output of a task executed earlier: (session, task,
// output index). Sessions are per-coordinator-runtime counters (see
// NextSession), so cache keys never collide across runtimes sharing one
// backend. A ValueRef travels in request.Args in place of the value when
// the coordinator believes the worker holds it.
type ValueRef struct {
	Session uint64
	Task    int
	Out     int
}

// RefValue is a value traveling *with* its identity: the worker uses the
// value for this request and inserts a private copy into its future cache
// under Ref, making the value resident there for future reference-only
// requests (this is how a value gets replicated to a second worker, and how
// the first consumer of a coordinator-produced value seeds the cache).
type RefValue struct {
	Ref ValueRef
	Val any
}

// PeerRef is a reference plus directions to a holder (protocol 4): the
// coordinator sends it in place of a RefValue when the value is resident on
// some *other* alive worker — the executing worker dials Addr, presents
// Token, and pulls the value over the peer link instead of receiving it
// through the coordinator. Every failure (holder gone, draining away, wrong
// token, timeout) degrades the PeerRef into a Miss, which the coordinator
// answers by re-sending with values inlined — the peer plane is an
// optimization layered on the Miss/resend correctness backstop, never a new
// way to get a wrong answer.
type PeerRef struct {
	Ref   ValueRef
	Addr  string // the holder's peer listener (hello.PeerAddr, host fixed up)
	Token string // the holder connection's PeerToken
}

// StoredRef reports one cache insertion back to the coordinator, which
// records residency (Bytes feeds placement scoring).
type StoredRef struct {
	Ref   ValueRef
	Bytes int64
}

// request is one coordinator → worker task dispatch.
type request struct {
	ID   uint64 // multiplexing key, unique per connection
	Name string // registered function name
	NOut int    // declared output arity (validated worker-side)
	// Args are the resolved arguments; concrete types must be registered.
	// Under protocol 2 an element (or an element of a nested []any) may be
	// a ValueRef or RefValue instead of a plain value.
	Args []any
	// Session + Task identify the producing task; the worker caches the
	// outputs under this identity when Store is set. Store is false when
	// references are disabled (values-baseline mode) or the task id is
	// unknown (direct Execute calls).
	Session uint64
	Task    int
	Store   bool
}

// response is the worker's reply to one request. Err is a string — error
// values do not gob — and is re-wrapped by the coordinator; the task-level
// typed error (compss.TaskError) is applied by the runtime on top.
type response struct {
	ID   uint64
	Vals []any
	Err  string

	// Miss lists references the worker could not resolve; when non-empty
	// the body did NOT run and Vals is nil — the coordinator must re-send
	// with the missing values inlined. The miss path is the correctness
	// backstop for every residency race (eviction, crash, stale map).
	Miss []ValueRef
	// Stored lists cache insertions this request performed (task outputs
	// and RefValue replicas); Evicted lists entries the insertions pushed
	// out. Together they keep the coordinator's residency map eventually
	// consistent with the worker's cache — advisory only, Miss is the
	// guarantee.
	Stored  []StoredRef
	Evicted []ValueRef
	// CacheBytes is the worker cache occupancy after this request, and
	// RefHits/RefMisses count the reference resolutions it performed; both
	// feed RemoteStats and the trace's data-plane track.
	CacheBytes int64
	RefHits    int
	RefMisses  int

	// PeerFetched counts arguments this request resolved over the peer
	// link (a deduplicated transfer still counts once per consuming
	// request — the counter measures values that did NOT need a coordinator
	// hop), and PeerValBytes is their total payload size (sizeOfValue
	// units, comparable with StoredRef.Bytes).
	PeerFetched  int
	PeerValBytes int64
	// PeerSent / PeerRecv are exact wire-byte deltas of this worker
	// connection's peer traffic (fetch requests sent + values served, and
	// the mirror image) since the previous response — drained like Evicted,
	// so summing them coordinator-side yields exact per-link totals.
	PeerSent int64
	PeerRecv int64

	// connFailure marks a response fabricated by the coordinator's
	// failWorker when a connection died — not a reply received from a
	// worker. Unexported: gob never encodes it, so wire responses always
	// carry false. It keeps the stats partition exact (a drained failure is
	// counted in Failed, never also in Completed).
	connFailure bool
}

// registerWireTypes registers every wire form that travels inside a gob
// interface field (request.Args elements, peerResponse.Val). The gob
// registry is process-global, so one registration here serves both the
// coordinator link and the peer link — and gob.Register itself panics on a
// conflicting duplicate, so keeping every exec-internal registration in
// this single helper is the whole duplicate audit: any future second
// registration site would panic at init.
func registerWireTypes() {
	gob.Register(ValueRef{})
	gob.Register(RefValue{})
	gob.Register(PeerRef{})
}

func init() { registerWireTypes() }
