package exec

// The wire format: length-free gob streams over one TCP connection per
// worker, multiplexed by request ID.
//
// On accept the worker sends a single hello frame advertising its protocol
// version and slot count; the coordinator then writes request frames and
// reads response frames, in any interleaving — the worker executes requests
// concurrently (bounded by its slots) and responses return in completion
// order, not request order. Both directions reuse one long-lived gob
// encoder/decoder pair, so concrete-type descriptors cross the wire once
// per connection, not once per task.
//
// Values inside Args/Vals travel as gob interface values: every concrete
// type must be registered on both ends (see RegisterType), which holds by
// construction when coordinator and worker run the same binary or link the
// same packages. Payloads are freshly allocated by gob on decode — a wire
// hop never aliases pooled scratch, satisfying the mat.Pool ownership
// contract (DESIGN.md "Memory model") by construction.

// protoVersion guards against dialing a worker built from an incompatible
// checkout; the coordinator rejects a mismatched hello instead of
// mis-decoding task payloads.
const protoVersion = 1

// hello is the worker → coordinator handshake frame.
type hello struct {
	Proto int // protocol version; must equal protoVersion
	Pid   int // worker process id (diagnostics, trace labels)
	Slots int // concurrent task bodies the worker will run
}

// request is one coordinator → worker task dispatch.
type request struct {
	ID   uint64 // multiplexing key, unique per connection
	Name string // registered function name
	NOut int    // declared output arity (validated worker-side)
	Args []any  // resolved arguments; concrete types must be registered
}

// response is the worker's reply to one request. Err is a string — error
// values do not gob — and is re-wrapped by the coordinator; the task-level
// typed error (compss.TaskError) is applied by the runtime on top.
type response struct {
	ID   uint64
	Vals []any
	Err  string
}
