package exec

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The peer-to-peer data plane (protocol 4), worker side. Protocol 2 made
// values resident where they were produced but still moved every byte
// through the coordinator: a consumer placed away from the producer was
// seeded by a RefValue hop, so coordinator NIC bandwidth capped aggregate
// throughput as the fleet grew. Protocol 4 lets the consumer pull the value
// straight from the holder: each worker process opens one peer listener
// (advertised in the hello), the coordinator sends a PeerRef naming the
// holder's address and connection token, and the executing worker dials the
// holder and transfers the value over a cached, multiplexed peer link. The
// coordinator carries metadata only for warm refs.
//
// # Fallback ladder
//
// The peer plane is an optimization, never a correctness dependency. Every
// failure — holder crashed, holder drained away, poisoned address, wrong or
// stale token, fetch timeout — turns the PeerRef into an ordinary Miss: the
// body does not run, the coordinator re-sends with values inlined, and the
// result is bit-identical to the values baseline. A restarted worker at the
// same address mints a fresh PeerToken per coordinator connection, so a
// PeerRef built against a dead connection can never be served stale data:
// the token lookup fails and the ladder takes over.
//
// # Byte accounting
//
// Each peer connection is bound to one token (the client announces it in
// peerHello), so every byte on the connection is attributable to exactly one
// coordinator connection's peerStore/peerFetcher. Both ends accumulate
// read/written deltas into atomic counters that the serve loop drains onto
// the next response (PeerSent/PeerRecv) — the coordinator's
// PeerBytesSent/PeerBytesRecv totals are exact sums of surviving
// connections' traffic, disjoint from the coordinator-link BytesSent/
// BytesRecv counters.

// peerHello binds a fresh peer connection to one holder token: the server
// refuses mismatched protocol versions and serves only refs resident in the
// token's cache.
type peerHello struct {
	Proto int
	Token string
}

// peerRequest asks the holder for one resident value.
type peerRequest struct {
	ID  uint64
	Ref ValueRef
}

// peerResponse answers one peerRequest. OK=false means the value is not
// resident under the connection's token (evicted, or the token's connection
// is gone) — the fetcher turns it into a Miss, never an invented value.
type peerResponse struct {
	ID  uint64
	OK  bool
	Val any
}

// peerStore is the serving side of one coordinator connection's cache: it
// is registered under the connection's fresh PeerToken while the serve loop
// runs and deregistered when the connection closes, which is exactly the
// stale-session guard — a dead connection's token stops resolving, so its
// refs stop being served.
type peerStore struct {
	cache      *futureCache
	sent, recv atomic.Int64  // wire bytes served under this token
	served     atomic.Uint64 // fetches answered OK (single-flight observability)
}

// drainBytes returns and resets the byte deltas accumulated since the last
// drain; the serve loop piggybacks them on the next response.
func (s *peerStore) drainBytes() (sent, recv int64) {
	return s.sent.Swap(0), s.recv.Swap(0)
}

// peerSrv is the process-wide peer listener: one per worker process, shared
// by every coordinator connection (a JoinPool worker hosts several tokens
// behind one address). It opens lazily on the first registration; the first
// registration's listen address wins, later ones reuse it.
var peerSrv struct {
	mu     sync.Mutex
	l      net.Listener
	addr   string
	stores map[string]*peerStore
}

// registerPeerStore opens the process peer listener (lazily) and registers
// cache under a fresh token. It returns the advertised address and the
// token, or ("", "", nil) when peer serving is unavailable (listen == "off",
// or the bind failed) — the caller then advertises no peer plane and the
// coordinator never routes peer traffic at it (fail open).
func registerPeerStore(cache *futureCache, listen string, logw io.Writer) (addr, token string, store *peerStore) {
	if listen == "off" || cache == nil {
		return "", "", nil
	}
	if listen == "" {
		listen = ":0"
	}
	peerSrv.mu.Lock()
	defer peerSrv.mu.Unlock()
	if peerSrv.l == nil {
		l, err := net.Listen("tcp", listen)
		if err != nil {
			if logw != nil {
				fmt.Fprintf(logw, "worker: peer listen %s: %v (peer transfers disabled)\n", listen, err)
			}
			return "", "", nil
		}
		peerSrv.l = l
		peerSrv.addr = l.Addr().String()
		if peerSrv.stores == nil {
			peerSrv.stores = map[string]*peerStore{}
		}
		go func() {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				go servePeerConn(conn)
			}
		}()
	}
	token = newJoinToken()
	store = &peerStore{cache: cache}
	peerSrv.stores[token] = store
	return peerSrv.addr, token, store
}

// deregisterPeerStore retires a token when its coordinator connection
// closes. In-flight peer requests for the token finish or fail per-request
// (lookupPeerStore is per request); new ones see OK=false.
func deregisterPeerStore(token string) {
	if token == "" {
		return
	}
	peerSrv.mu.Lock()
	delete(peerSrv.stores, token)
	peerSrv.mu.Unlock()
}

func lookupPeerStore(token string) *peerStore {
	peerSrv.mu.Lock()
	defer peerSrv.mu.Unlock()
	return peerSrv.stores[token]
}

// servePeerConn serves one inbound peer connection: bind it to the hello's
// token, then answer fetches in arrival order. Requests are handled inline —
// response writes serialize on the connection anyway, so a goroutine per
// request would buy nothing — and the store is looked up per request, so a
// token deregistered mid-connection stops serving immediately.
func servePeerConn(conn net.Conn) {
	defer conn.Close()
	cc := &countingConn{Conn: conn}
	dec := gob.NewDecoder(cc)
	var h peerHello
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := dec.Decode(&h); err != nil || h.Proto != protoVersion {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	enc := gob.NewEncoder(cc)
	var lastRead, lastWritten int64
	for {
		var req peerRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		st := lookupPeerStore(h.Token)
		resp := peerResponse{ID: req.ID}
		if st != nil {
			if v, ok := st.cache.peek(req.Ref); ok {
				resp.OK = true
				resp.Val = v
			}
		}
		err := enc.Encode(&resp)
		if st != nil {
			// Attribute the connection's byte deltas (request in, response
			// out) to the token's store. Decoder read-ahead may shift a few
			// bytes between samples, but every byte lands exactly once.
			st.recv.Add(cc.read.Load() - lastRead)
			st.sent.Add(cc.written.Load() - lastWritten)
			if resp.OK {
				st.served.Add(1)
			}
		}
		lastRead, lastWritten = cc.read.Load(), cc.written.Load()
		if err != nil {
			return
		}
	}
}

// defaultPeerFetchTimeout bounds one peer fetch when WorkerConfig leaves
// PeerFetchTimeout zero: long enough for a large block over a congested
// link, short enough that a hung holder degrades into one Miss round trip
// instead of a stalled task.
const defaultPeerFetchTimeout = 5 * time.Second

// peerFetcher is the pulling side, one per coordinator connection (so its
// byte counters drain onto that connection's responses). It keeps one
// multiplexed link per (addr, token) holder and deduplicates concurrent
// fetches of the same ref: one transfer crosses the wire, every waiting
// consumer receives a private clone.
type peerFetcher struct {
	timeout    time.Duration
	mu         sync.Mutex
	links      map[fetchKey]*peerLink // keyed by (addr, token); Ref zero
	calls      map[fetchKey]*fetchCall
	sent, recv atomic.Int64
}

type fetchKey struct {
	addr, token string
	ref         ValueRef
}

// fetchCall is one in-flight single-flight transfer.
type fetchCall struct {
	done chan struct{}
	val  any
	err  error
}

func newPeerFetcher(timeout time.Duration) *peerFetcher {
	if timeout <= 0 {
		timeout = defaultPeerFetchTimeout
	}
	return &peerFetcher{
		timeout: timeout,
		links:   map[fetchKey]*peerLink{},
		calls:   map[fetchKey]*fetchCall{},
	}
}

// drainBytes returns and resets the fetch-side byte deltas since the last
// drain.
func (f *peerFetcher) drainBytes() (sent, recv int64) {
	return f.sent.Swap(0), f.recv.Swap(0)
}

// fetch pulls ref from the holder at addr/token and returns a private deep
// clone. Concurrent fetches of the same (addr, token, ref) share one wire
// transfer; every caller — the leader included — clones the shared result,
// so no two consumers (and no cache insertion) ever alias mutable state.
func (f *peerFetcher) fetch(addr, token string, ref ValueRef) (any, error) {
	k := fetchKey{addr: addr, token: token, ref: ref}
	f.mu.Lock()
	if c, ok := f.calls[k]; ok {
		f.mu.Unlock()
		<-c.done
		return cloneFetched(c)
	}
	c := &fetchCall{done: make(chan struct{})}
	f.calls[k] = c
	f.mu.Unlock()

	c.val, c.err = f.fetchOne(addr, token, ref)
	f.mu.Lock()
	delete(f.calls, k)
	f.mu.Unlock()
	close(c.done)
	return cloneFetched(c)
}

// cloneFetched hands one consumer its private copy of a shared fetch
// result. Fetched values came out of a holder's cache, so they are clonable
// by construction; a lost clone path would mean a mixed-binary fleet, which
// the protocol version already forbids.
func cloneFetched(c *fetchCall) (any, error) {
	if c.err != nil {
		return nil, c.err
	}
	v, ok := cloneValue(c.val)
	if !ok {
		return nil, fmt.Errorf("exec: peer-fetched value of type %T has no clone path", c.val)
	}
	return v, nil
}

// fetchOne performs one wire transfer on the holder's (cached) link.
func (f *peerFetcher) fetchOne(addr, token string, ref ValueRef) (any, error) {
	lk := fetchKey{addr: addr, token: token}
	f.mu.Lock()
	l := f.links[lk]
	if l != nil && l.dead.Load() {
		delete(f.links, lk)
		l = nil
	}
	if l == nil {
		l = &peerLink{addr: addr, token: token, fetcher: f, pending: map[uint64]chan peerResponse{}}
		f.links[lk] = l
	}
	f.mu.Unlock()

	l.dialOnce.Do(func() { l.dialErr = l.dial(f.timeout) })
	if l.dialErr != nil {
		f.mu.Lock()
		if f.links[lk] == l {
			delete(f.links, lk)
		}
		f.mu.Unlock()
		return nil, l.dialErr
	}
	return l.roundTrip(ref, f.timeout)
}

// close tears down every link; in-flight round trips fail (and degrade into
// Misses on the owning connection, which is itself going away).
func (f *peerFetcher) close() {
	f.mu.Lock()
	links := make([]*peerLink, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	f.links = map[fetchKey]*peerLink{}
	f.mu.Unlock()
	for _, l := range links {
		l.fail()
	}
}

// peerLink is one multiplexed connection to one holder token: requests are
// written under sendMu, responses return in any order and are demuxed by ID
// like the coordinator link.
type peerLink struct {
	addr, token string
	fetcher     *peerFetcher

	dialOnce sync.Once
	dialErr  error

	conn   *countingConn
	enc    *gob.Encoder
	sendMu sync.Mutex
	// lastWritten tracks the written counter for per-send byte attribution;
	// guarded by sendMu.
	lastWritten int64

	pendMu  sync.Mutex
	pending map[uint64]chan peerResponse

	nextID atomic.Uint64
	dead   atomic.Bool
}

func (l *peerLink) dial(timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", l.addr, timeout)
	if err != nil {
		l.dead.Store(true)
		return fmt.Errorf("exec: dialing peer %s: %w", l.addr, err)
	}
	cc := &countingConn{Conn: conn}
	enc := gob.NewEncoder(cc)
	if err := enc.Encode(&peerHello{Proto: protoVersion, Token: l.token}); err != nil {
		conn.Close()
		l.dead.Store(true)
		return fmt.Errorf("exec: peer handshake with %s: %w", l.addr, err)
	}
	l.conn, l.enc = cc, enc
	go l.readLoop()
	return nil
}

func (l *peerLink) readLoop() {
	dec := gob.NewDecoder(l.conn)
	var lastRead int64
	for {
		var resp peerResponse
		if err := dec.Decode(&resp); err != nil {
			l.fail()
			return
		}
		l.fetcher.recv.Add(l.conn.read.Load() - lastRead)
		lastRead = l.conn.read.Load()
		l.pendMu.Lock()
		ch := l.pending[resp.ID]
		delete(l.pending, resp.ID)
		l.pendMu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// fail retires the link: the connection closes, every waiter's channel is
// closed (a closed receive reads as a connection-lost error in roundTrip),
// and the next fetch to this holder dials a fresh link.
func (l *peerLink) fail() {
	if l.dead.Swap(true) {
		return
	}
	if l.conn != nil {
		l.conn.Close()
	}
	l.pendMu.Lock()
	drained := l.pending
	l.pending = map[uint64]chan peerResponse{}
	l.pendMu.Unlock()
	for _, ch := range drained {
		close(ch)
	}
}

func (l *peerLink) roundTrip(ref ValueRef, timeout time.Duration) (any, error) {
	id := l.nextID.Add(1)
	ch := make(chan peerResponse, 1)
	l.pendMu.Lock()
	l.pending[id] = ch
	l.pendMu.Unlock()

	l.sendMu.Lock()
	err := l.enc.Encode(&peerRequest{ID: id, Ref: ref})
	l.fetcher.sent.Add(l.conn.written.Load() - l.lastWritten)
	l.lastWritten = l.conn.written.Load()
	l.sendMu.Unlock()
	if err != nil {
		l.fail()
		return nil, fmt.Errorf("exec: peer %s: sending fetch: %w", l.addr, err)
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("exec: peer %s: connection lost mid-fetch", l.addr)
		}
		if !resp.OK {
			return nil, fmt.Errorf("exec: peer %s does not hold %v", l.addr, ref)
		}
		return resp.Val, nil
	case <-timer.C:
		l.pendMu.Lock()
		delete(l.pending, id)
		l.pendMu.Unlock()
		return nil, fmt.Errorf("exec: peer %s: fetch timed out after %v", l.addr, timeout)
	}
}
