package exec

// White-box tests for the peer-to-peer data plane (peer.go and the
// coordinator glue in remote.go): the token-scoped peer server, the
// single-flight fetcher and its failure modes (dead holder, stale token,
// timeout, connection lost mid-fetch), PeerRef selection in buildWireArgs,
// the sole-holder placement discount, and the end-to-end fallback ladder
// driven through real loopback workers with deliberately poisoned holder
// coordinates.

import (
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"

	"taskml/internal/mat"
)

// newTestPeerStore registers a store on the process peer listener and
// arranges its teardown.
func newTestPeerStore(t *testing.T, cache *futureCache) (addr, token string, store *peerStore) {
	t.Helper()
	addr, token, store = registerPeerStore(cache, "127.0.0.1:0", nil)
	if addr == "" {
		t.Fatal("registerPeerStore failed to open the process peer listener")
	}
	t.Cleanup(func() { deregisterPeerStore(token) })
	return addr, token, store
}

// TestPeerFetchRoundTrip: a fetch returns the resident value bit-exactly,
// hands the consumer a private clone, reuses one link per holder, and
// attributes wire bytes on both sides.
func TestPeerFetchRoundTrip(t *testing.T) {
	cache := newFutureCache(1 << 20)
	val := []float64{1.5, 2.25, 3.125}
	if _, ok := cache.put(ref(1), val); !ok {
		t.Fatal("put rejected")
	}
	addr, token, store := newTestPeerStore(t, cache)

	f := newPeerFetcher(0)
	defer f.close()
	got, err := f.fetch(addr, token, ref(1))
	if err != nil {
		t.Fatal(err)
	}
	gs := got.([]float64)
	for i, want := range val {
		if gs[i] != want {
			t.Fatalf("fetched[%d] = %x, want %x (not bit-identical)", i, gs[i], want)
		}
	}
	// The consumer's copy is private: scribbling on it must not reach the
	// holder's resident value.
	gs[0] = 99
	if resident, _ := cache.peek(ref(1)); resident.([]float64)[0] != 1.5 {
		t.Fatal("fetched value aliases the holder's resident copy")
	}
	if n := store.served.Load(); n != 1 {
		t.Fatalf("served = %d, want 1", n)
	}

	// A second ref over the same holder reuses the cached link.
	cache.put(ref(2), []float64{7})
	if _, err := f.fetch(addr, token, ref(2)); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	links := len(f.links)
	f.mu.Unlock()
	if links != 1 {
		t.Fatalf("links = %d, want 1 (one multiplexed link per holder)", links)
	}

	// Both ends accounted the same wire bytes: what the fetcher sent the
	// store received, and vice versa.
	fs, fr := f.drainBytes()
	ss, sr := store.drainBytes()
	if fs == 0 || fr == 0 || fs != sr || fr != ss {
		t.Fatalf("byte attribution: fetcher sent/recv %d/%d, store sent/recv %d/%d — want mirrored nonzero totals", fs, fr, ss, sr)
	}
}

// TestPeerFetchSingleFlight: concurrent fetches of one ref share a single
// wire transfer, and every consumer — the leader included — receives a
// private clone of the shared result.
func TestPeerFetchSingleFlight(t *testing.T) {
	cache := newFutureCache(1 << 20)
	cache.put(ref(1), []float64{10, 20})
	addr, token, store := newTestPeerStore(t, cache)

	f := newPeerFetcher(0)
	defer f.close()
	// Install the in-flight call by hand, exactly as fetch's leader path
	// does, so every concurrent fetch below deterministically joins it.
	k := fetchKey{addr: addr, token: token, ref: ref(1)}
	c := &fetchCall{done: make(chan struct{})}
	f.mu.Lock()
	f.calls[k] = c
	f.mu.Unlock()

	const consumers = 4
	results := make(chan []float64, consumers)
	var wg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := f.fetch(addr, token, ref(1))
			if err != nil {
				t.Errorf("joined fetch: %v", err)
				return
			}
			results <- v.([]float64)
		}()
	}
	// Resolve the shared call with one real wire transfer.
	c.val, c.err = f.fetchOne(addr, token, ref(1))
	f.mu.Lock()
	delete(f.calls, k)
	f.mu.Unlock()
	close(c.done)
	wg.Wait()
	close(results)

	if n := store.served.Load(); n != 1 {
		t.Fatalf("served = %d, want 1 (single-flight must collapse duplicates)", n)
	}
	var all [][]float64
	for v := range results {
		if v[0] != 10 || v[1] != 20 {
			t.Fatalf("joined consumer got %v, want [10 20]", v)
		}
		all = append(all, v)
	}
	if len(all) != consumers {
		t.Fatalf("%d consumers returned, want %d", len(all), consumers)
	}
	// Clones are independent: mutating one consumer's copy must not leak
	// into any other's (or the shared result).
	all[0][0] = -1
	for _, v := range all[1:] {
		if v[0] != 10 {
			t.Fatal("joined consumers share one value; every consumer must get a private clone")
		}
	}
}

// TestPeerFetchFailureModes: every way a fetch can fail yields an error (the
// Miss trigger), never a wrong or stale value.
func TestPeerFetchFailureModes(t *testing.T) {
	cache := newFutureCache(1 << 20)
	cache.put(ref(1), []float64{1})
	addr, token, _ := newTestPeerStore(t, cache)

	f := newPeerFetcher(0)
	defer f.close()

	// Wrong token: the listener answers, but the token resolves no store —
	// exactly what a PeerRef minted against a restarted worker sees.
	if _, err := f.fetch(addr, "stale-token", ref(1)); err == nil {
		t.Fatal("fetch with a stale token must fail, not serve another connection's data")
	}
	// Value the holder does not have.
	if _, err := f.fetch(addr, token, ref(99)); err == nil {
		t.Fatal("fetch of a non-resident ref must fail")
	}
	// Deregistered token: the connection-closed guard.
	addr2, token2, _ := newTestPeerStore(t, cache)
	deregisterPeerStore(token2)
	if _, err := f.fetch(addr2, token2, ref(1)); err == nil {
		t.Fatal("fetch under a deregistered token must fail")
	}
	// Poisoned address: nothing listens there.
	fq := newPeerFetcher(500 * time.Millisecond)
	defer fq.close()
	if _, err := fq.fetch("127.0.0.1:1", token, ref(1)); err == nil {
		t.Fatal("fetch from a dead address must fail")
	}
	// The valid path still works after all those failures.
	if v, err := f.fetch(addr, token, ref(1)); err != nil || v.([]float64)[0] != 1 {
		t.Fatalf("valid fetch after failures = %v, %v", v, err)
	}
}

// TestPeerFetchHolderDiesMidFetch: a holder that vanishes between accepting
// the request and answering it (the SIGKILL window) fails the fetch with a
// connection-lost error; a holder that hangs trips the fetch timeout. Both
// degrade into Misses on the worker, never hangs.
func TestPeerFetchHolderDiesMidFetch(t *testing.T) {
	// A fake holder that reads the hello and first request, then either
	// drops the connection or goes silent.
	serve := func(t *testing.T, hang bool) string {
		t.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go func() {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			dec := gob.NewDecoder(conn)
			var h peerHello
			var req peerRequest
			_ = dec.Decode(&h)
			_ = dec.Decode(&req)
			if hang {
				time.Sleep(5 * time.Second) // past the fetcher's timeout
			}
			conn.Close()
		}()
		return l.Addr().String()
	}

	f := newPeerFetcher(300 * time.Millisecond)
	defer f.close()
	start := time.Now()
	if _, err := f.fetch(serve(t, false), "tok", ref(1)); err == nil {
		t.Fatal("fetch must fail when the holder dies mid-fetch")
	}
	if _, err := f.fetch(serve(t, true), "tok", ref(1)); err == nil {
		t.Fatal("fetch from a hung holder must time out")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("failure paths took %v; a dead holder must cost a timeout, not a hang", elapsed)
	}
}

// TestPeerWireArgsSelection pins buildWireArgs' wire-form ladder: resident on
// the target → ValueRef, resident on an alive peer-capable holder → PeerRef,
// anything else (draining holder, peerless endpoint, inlineAll, peers
// disabled) → RefValue — with refValueBytes counting exactly the RefValues
// some alive worker could have served.
func TestPeerWireArgsSelection(t *testing.T) {
	rf := ref(1)
	val := floats(4) // 40 accounted bytes
	mkReq := func() *Request {
		return &Request{Name: "x", NOut: 1, Args: []any{val},
			Session: 1, TaskID: 5, ArgRefs: []ArgRef{{Arg: 0, Elem: -1, Ref: rf}}}
	}
	mkw := func(id string, state workerState, peerAddr string) *workerConn {
		tok := ""
		if peerAddr != "" {
			tok = "tok-" + id
		}
		return &workerConn{id: id, state: state, slots: 1,
			peerAddr: peerAddr, peerTok: tok, resident: map[ValueRef]int64{}}
	}

	cases := []struct {
		name       string
		noPeers    bool
		inlineAll  bool
		targetAddr string      // target's peer listener ("" = peerless)
		holder     workerState // holder state; wsDead = ref not resident anywhere
		holderAddr string
		wantForm   string
		wantRVB    int64 // refValueBytes delta
	}{
		{name: "peer-ref", targetAddr: "t:1", holder: wsAlive, holderAddr: "h:1", wantForm: "PeerRef"},
		{name: "holder-draining", targetAddr: "t:1", holder: wsDraining, holderAddr: "h:1", wantForm: "RefValue"},
		{name: "holder-peerless", targetAddr: "t:1", holder: wsAlive, holderAddr: "", wantForm: "RefValue", wantRVB: 40},
		{name: "target-peerless", targetAddr: "", holder: wsAlive, holderAddr: "h:1", wantForm: "RefValue", wantRVB: 40},
		{name: "inline-all", inlineAll: true, targetAddr: "t:1", holder: wsAlive, holderAddr: "h:1", wantForm: "RefValue", wantRVB: 40},
		{name: "peers-disabled", noPeers: true, targetAddr: "t:1", holder: wsAlive, holderAddr: "h:1", wantForm: "RefValue", wantRVB: 40},
		{name: "cold", targetAddr: "t:1", holder: wsDead, holderAddr: "h:1", wantForm: "RefValue"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRemote(false, tc.noPeers, 0)
			w := mkw("w0", wsAlive, tc.targetAddr)
			h := mkw("w1", tc.holder, tc.holderAddr)
			if tc.holder != wsDead {
				h.resident[rf] = 40
			}
			r.workers = []*workerConn{w, h}

			out, peerSent := r.buildWireArgs(w, mkReq(), tc.inlineAll)
			switch tc.wantForm {
			case "PeerRef":
				pr, ok := out[0].(PeerRef)
				if !ok || pr.Ref != rf || pr.Addr != h.peerAddr || pr.Token != h.peerTok {
					t.Fatalf("wire form = %#v, want PeerRef to %s", out[0], h.peerAddr)
				}
				if !peerSent[rf] {
					t.Fatal("peerSent must name the ref sent as a PeerRef")
				}
			case "RefValue":
				if _, ok := out[0].(RefValue); !ok {
					t.Fatalf("wire form = %T, want RefValue", out[0])
				}
				if len(peerSent) != 0 {
					t.Fatalf("peerSent = %v, want empty", peerSent)
				}
			}
			if got := r.refValueBytes.Load(); got != tc.wantRVB {
				t.Fatalf("refValueBytes = %d, want %d", got, tc.wantRVB)
			}
		})
	}

	// Resident on the target beats every peer consideration.
	r := newRemote(false, false, 0)
	w := mkw("w0", wsAlive, "t:1")
	w.resident[rf] = 40
	h := mkw("w1", wsAlive, "h:1")
	h.resident[rf] = 40
	r.workers = []*workerConn{w, h}
	out, peerSent := r.buildWireArgs(w, mkReq(), false)
	if _, ok := out[0].(ValueRef); !ok || len(peerSent) != 0 {
		t.Fatalf("resident-on-target wire form = %T (peerSent %v), want bare ValueRef", out[0], peerSent)
	}
}

// TestPeerPlacementReplicaDiscount: with the peer plane on, a candidate
// holding the sole alive copy of a ref outscores one holding a larger but
// replicated ref — replicas are cheap to reach over peer links, sole copies
// are not. With peers disabled the flat byte score decides.
func TestPeerPlacementReplicaDiscount(t *testing.T) {
	refA, refB := ref(1), ref(2)
	build := func(noPeers bool) *Remote {
		r := newRemote(false, noPeers, 0)
		mkw := func(id string, res map[ValueRef]int64) *workerConn {
			return &workerConn{id: id, state: wsAlive, slots: 1,
				peerAddr: id + ":1", peerTok: "tok-" + id, resident: res}
		}
		// w0 is refA's sole holder (100 B); refB (150 B) is replicated on
		// w1 and w2.
		r.workers = []*workerConn{
			mkw("w0", map[ValueRef]int64{refA: 100}),
			mkw("w1", map[ValueRef]int64{refB: 150}),
			mkw("w2", map[ValueRef]int64{refB: 150}),
		}
		return r
	}

	w, err := build(false).acquire([]ValueRef{refA, refB})
	if err != nil {
		t.Fatal(err)
	}
	if w.id != "w0" {
		t.Fatalf("p2p placement chose %s, want w0 (sole copy of refA counts double)", w.id)
	}
	w, err = build(true).acquire([]ValueRef{refA, refB})
	if err != nil {
		t.Fatal(err)
	}
	if w.id != "w1" {
		t.Fatalf("flat placement chose %s, want w1 (most resident bytes)", w.id)
	}
}

// testPeerMatrix returns a deterministic 64×64 input and its expected
// doubled result.
func testPeerMatrix() (*mat.Dense, *mat.Dense) {
	m := mat.New(64, 64)
	for i := range m.Data {
		m.Data[i] = 0.1 * float64(i+1)
	}
	return m, mat.Scale(2.0, m)
}

// saturateWorker parks a sleeping body on the first-spawned worker (the
// deterministic tie-break target of anonymous dispatch) so the next
// placement must land elsewhere; the returned func waits for it to finish.
func saturateWorker(t *testing.T, r *Remote) func() {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, _, err := r.Execute("test_sleep_ms", 1, []any{800})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ws := r.Workers(); ws[0].Inflight == 1 {
			return func() {
				if err := <-done; err != nil {
					t.Fatalf("saturating sleep: %v", err)
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("saturating sleep never reached w0")
	return nil
}

// TestPeerTransferBetweenWorkers is the peer plane's end-to-end happy path
// over real worker processes: a value produced on one worker is consumed on
// the other, travels over the peer link (not the coordinator), lands
// bit-identically, and every counter partition holds at quiescence.
func TestPeerTransferBetweenWorkers(t *testing.T) {
	r, err := SpawnLoopback(LoopbackConfig{Workers: 2, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sess := NextSession()
	m, want := testPeerMatrix()
	_, producer, err := r.ExecuteTask(&Request{
		Name: "test_scale_mat", NOut: 1, Args: []any{m, 1.0},
		Session: sess, TaskID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := ValueRef{Session: sess, Task: 1, Out: 0}

	wait := saturateWorker(t, r)
	vals, consumer, err := r.ExecuteTask(&Request{
		Name: "test_scale_mat", NOut: 1, Args: []any{mat.Scale(1.0, m), 2.0},
		Session: sess, TaskID: 2,
		ArgRefs: []ArgRef{{Arg: 0, Elem: -1, Ref: out}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wait()
	if consumer == producer {
		t.Fatalf("consumer landed on the saturated producer %s; the test needs a cross-worker placement", producer)
	}
	got := vals[0].(*mat.Dense)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Data[%d] = %x, want %x (peer transfer changed the value)", i, got.Data[i], want.Data[i])
		}
	}

	st := r.Stats()
	if st.PeerFetches < 1 {
		t.Fatalf("PeerFetches = %d, want >= 1 (the cross-worker argument must travel the peer link)", st.PeerFetches)
	}
	if st.PeerFallbacks != 0 || st.MissRetries != 0 {
		t.Fatalf("Stats = %+v, want a clean fetch with no fallbacks", st)
	}
	if st.PeerValueBytes == 0 || st.RefValueBytes != 0 {
		t.Fatalf("payload partition PeerValueBytes=%d RefValueBytes=%d, want all inter-worker payload on the peer link", st.PeerValueBytes, st.RefValueBytes)
	}
	// Exact peer-link accounting: at quiescence every peer byte written was
	// read, and the peer totals are disjoint from (not contained in) the
	// coordinator-link totals.
	if st.PeerBytesSent == 0 || st.PeerBytesSent != st.PeerBytesRecv {
		t.Fatalf("peer wire totals sent=%d recv=%d, want equal nonzero at quiescence", st.PeerBytesSent, st.PeerBytesRecv)
	}
	if st.Dispatched != st.Completed+st.Failed {
		t.Fatalf("Stats = %+v, want outcome partition at quiescence", st)
	}

	// The fetch seeded the consumer's cache and reported residency: the
	// coordinator now sees the value on both workers.
	holders := 0
	for _, w := range r.Workers() {
		if w.ResidentBytes > 0 {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("%d workers hold residency after the peer fetch, want 2 (fetch seeds the consumer's cache)", holders)
	}
}

// TestPeerFallbackLadder drives every coordinator-visible peer failure
// through real workers: a poisoned holder address and a stale holder token
// (the restarted-worker guise) each degrade the PeerRef into a Miss, the
// coordinator re-sends values inlined, and the answer is bit-identical —
// one PeerFallback and one MissRetry per failure, never an error.
func TestPeerFallbackLadder(t *testing.T) {
	poison := []struct {
		name   string
		poison func(w *workerConn)
	}{
		{"poisoned-addr", func(w *workerConn) { w.peerAddr = "127.0.0.1:1" }},
		{"stale-token", func(w *workerConn) { w.peerTok = "tok-of-a-dead-connection" }},
	}
	for _, tc := range poison {
		t.Run(tc.name, func(t *testing.T) {
			r, err := SpawnLoopback(LoopbackConfig{Workers: 2, Slots: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			sess := NextSession()
			m, want := testPeerMatrix()
			_, _, err = r.ExecuteTask(&Request{
				Name: "test_scale_mat", NOut: 1, Args: []any{m, 1.0},
				Session: sess, TaskID: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			out := ValueRef{Session: sess, Task: 1, Out: 0}
			r.mu.Lock()
			tc.poison(r.workers[0])
			r.mu.Unlock()

			wait := saturateWorker(t, r)
			vals, _, err := r.ExecuteTask(&Request{
				Name: "test_scale_mat", NOut: 1, Args: []any{mat.Scale(1.0, m), 2.0},
				Session: sess, TaskID: 2,
				ArgRefs: []ArgRef{{Arg: 0, Elem: -1, Ref: out}},
			})
			if err != nil {
				t.Fatalf("the fallback ladder must absorb the poisoned holder: %v", err)
			}
			wait()
			got := vals[0].(*mat.Dense)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("Data[%d] = %x, want %x (fallback changed the value)", i, got.Data[i], want.Data[i])
				}
			}
			st := r.Stats()
			if st.PeerFallbacks != 1 || st.MissRetries != 1 {
				t.Fatalf("Stats = %+v, want exactly one PeerFallback and one MissRetry", st)
			}
			if st.PeerValueBytes != 0 {
				t.Fatalf("PeerValueBytes = %d, want 0 (the failed fetch must not count as peer payload)", st.PeerValueBytes)
			}
			if st.Dispatched != st.Completed+st.Failed {
				t.Fatalf("Stats = %+v, want outcome partition at quiescence", st)
			}
		})
	}
}

// TestPeerDisabledShipsThroughCoordinator: with NoPeers the cross-worker
// value re-ships through the coordinator (counted in RefValueBytes) and the
// peer counters stay zero — the refs baseline the benchmark compares
// against.
func TestPeerDisabledShipsThroughCoordinator(t *testing.T) {
	r, err := SpawnLoopback(LoopbackConfig{Workers: 2, Slots: 1, NoPeers: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sess := NextSession()
	m, want := testPeerMatrix()
	_, _, err = r.ExecuteTask(&Request{
		Name: "test_scale_mat", NOut: 1, Args: []any{m, 1.0},
		Session: sess, TaskID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := ValueRef{Session: sess, Task: 1, Out: 0}

	wait := saturateWorker(t, r)
	vals, _, err := r.ExecuteTask(&Request{
		Name: "test_scale_mat", NOut: 1, Args: []any{mat.Scale(1.0, m), 2.0},
		Session: sess, TaskID: 2,
		ArgRefs: []ArgRef{{Arg: 0, Elem: -1, Ref: out}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wait()
	got := vals[0].(*mat.Dense)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Data[%d] = %x, want %x", i, got.Data[i], want.Data[i])
		}
	}
	st := r.Stats()
	if st.PeerFetches != 0 || st.PeerFallbacks != 0 || st.PeerBytesSent != 0 || st.PeerBytesRecv != 0 || st.PeerValueBytes != 0 {
		t.Fatalf("Stats = %+v, want every peer counter zero with NoPeers", st)
	}
	if st.RefValueBytes == 0 {
		t.Fatalf("RefValueBytes = 0, want > 0 (the warm value re-shipped over the coordinator link)")
	}
}
