package exec

import (
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"taskml/internal/mat"
)

// Func is a registered single-output task body. It receives its resolved
// arguments (the same []any a compss.TaskFunc would see) and returns the
// task's output value.
//
// Registered bodies must be *argument-pure*: all state arrives through args
// (no captured closures — a closure cannot be shipped to another process),
// and results must be freshly allocated, never aliases of an argument that
// the caller retains. On the Local backend arguments are shared in-memory
// values; on the Remote backend they are gob copies. A body that mutates an
// argument it does not exclusively own would behave differently on the two
// backends, breaking the bit-identity contract.
type Func func(args []any) (any, error)

// FuncN is a registered multi-output task body (the exec counterpart of
// compss.MultiTaskFunc).
type FuncN func(args []any) ([]any, error)

// entry is one registered body; exactly one of fn1/fnN is non-nil.
type entry struct {
	fn1 Func
	fnN FuncN
}

var (
	regMu sync.RWMutex
	reg   = map[string]entry{}
)

// Register binds name to a single-output body. Names are global to the
// process and must be unique; Register panics on a duplicate, so collisions
// surface at init time rather than as wrong results on a worker. By
// convention names are lower_snake, prefixed by their domain when the
// operation is not generic (e.g. "rf_bootstrap", but "mat_add" for the
// shared matrix merge).
//
// Call Register from package init so every binary that links the package —
// coordinator, cmd/worker, test binaries re-exec'd as loopback workers —
// agrees on the name table before any task is dispatched.
func Register(name string, fn Func) {
	register(name, entry{fn1: fn})
}

// RegisterN binds name to a multi-output body; see Register.
func RegisterN(name string, fn FuncN) {
	register(name, entry{fnN: fn})
}

func register(name string, e entry) {
	if name == "" || (e.fn1 == nil && e.fnN == nil) {
		panic("exec: Register needs a name and a function")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic(fmt.Sprintf("exec: duplicate registration of %q", name))
	}
	reg[name] = e
}

// RegisterType makes a concrete type transmissible as a task argument or
// result (a gob.Register passthrough). Packages that register task bodies
// whose values are not already covered by the built-in set (*mat.Dense,
// []any, []int, []float64 and the gob-native scalars) must register them
// alongside the bodies, from the same init.
func RegisterType(v any) { gob.Register(v) }

// Has reports whether name is registered. compss checks it at submission
// time so a typo fails fast at the submit site, not as a runtime error on a
// worker.
func Has(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := reg[name]
	return ok
}

// Names returns the registered names, sorted (diagnostics, worker startup
// logs).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Fns returns the registered bodies for name (one of the two is non-nil
// when ok). compss's Local fast path calls the fn1 form directly so a
// single-output in-process exec task costs no more than a plain TaskFunc.
func Fns(name string) (Func, FuncN, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := reg[name]
	return e.fn1, e.fnN, ok
}

// Invoke runs the named body in-process and normalises the result to a
// slice of nOut values. It is the execution path of both the Local backend
// and the worker loop.
func Invoke(name string, nOut int, args []any) ([]any, error) {
	fn1, fnN, ok := Fns(name)
	if !ok {
		return nil, fmt.Errorf("exec: function %q is not registered", name)
	}
	if fn1 != nil {
		if nOut != 1 {
			return nil, fmt.Errorf("exec: %q has 1 output, %d requested", name, nOut)
		}
		v, err := fn1(args)
		if err != nil {
			return nil, err
		}
		return []any{v}, nil
	}
	vals, err := fnN(args)
	if err != nil {
		return nil, err
	}
	if len(vals) != nOut {
		return nil, fmt.Errorf("exec: %q returned %d values, %d requested", name, len(vals), nOut)
	}
	return vals, nil
}

func init() {
	// The built-in wire vocabulary: every block, label slice and scalar the
	// library's task arguments are made of. Scalars (int, int64, float64,
	// bool, string) are gob-native and need no registration.
	gob.Register(&mat.Dense{})
	gob.Register([]any{})
	gob.Register([]int{})
	gob.Register([]float64{})
	gob.Register([][]float64{})
}
