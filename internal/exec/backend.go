package exec

// Backend executes Opts.Exec-named task attempts on behalf of the compss
// runtime. Exactly one attempt maps to exactly one ExecuteTask call: the
// runtime's retry/deadline/fault machinery sits *above* the backend, so a
// backend failure (worker crash, dropped connection, unknown function) is
// just an attempt error — it surfaces as a compss.TaskError and is retried,
// degraded or finalised by the same policies as any in-process failure.
type Backend interface {
	// ExecuteTask runs the registered function req.Name with req.Args and
	// returns its req.NOut outputs. worker identifies the executing worker
	// for observability ("" when the body ran in-process); it is advisory
	// and carries no routing semantics. The identity fields of req
	// (Session/TaskID/ArgRefs) are optional hints for data-plane backends;
	// a backend without a data plane ignores them.
	ExecuteTask(req *Request) (vals []any, worker string, err error)
	// Close releases the backend's resources (connections, spawned loopback
	// processes). The backend must not be used after Close.
	Close() error
}

// Request describes one task attempt handed to a Backend.
//
// Args always carries the fully resolved argument values — a backend can
// execute the task from Args alone. Session/TaskID name the producing task
// and ArgRefs name the producing tasks of the arguments; a data-plane
// backend (Remote with references enabled) uses them to substitute wire
// references for values the chosen worker already holds, to place the task
// near its data, and to cache its outputs. Zero values disable all of that:
// a Request with only Name/NOut/Args set ships values, exactly as protocol
// 1 did.
type Request struct {
	Name string
	NOut int
	Args []any

	// Session + TaskID identify this task's outputs for future reference
	// (Session from NextSession, TaskID the runtime's task id). TaskID < 0
	// or Session == 0 means "anonymous": outputs are not cached.
	Session uint64
	TaskID  int
	// ArgRefs names the task-output provenance of arguments that are
	// futures. Arguments not covered by an ArgRef are plain values.
	ArgRefs []ArgRef
}

// ArgRef states that one argument (or one element of a []any argument) is
// the Out-th output of task (Session, Task).
type ArgRef struct {
	Arg  int // index into Request.Args
	Elem int // index into Args[Arg].([]any), or -1 for the argument itself
	Ref  ValueRef
}

// Local is the in-process Backend: ExecuteTask is a registry call on the
// caller's goroutine, with no serialization and no new allocations beyond
// the body's own. A nil compss.Config.Backend has identical semantics — the
// runtime special-cases it to skip even the interface dispatch — so Local
// exists for code that wants an explicit Backend value (tests, parity
// harnesses).
type Local struct{}

// ExecuteTask runs the named body in-process.
func (Local) ExecuteTask(req *Request) ([]any, string, error) {
	vals, err := Invoke(req.Name, req.NOut, req.Args)
	return vals, "", err
}

// Execute runs the named body in-process (convenience wrapper over
// ExecuteTask for anonymous attempts).
func (Local) Execute(name string, nOut int, args []any) ([]any, string, error) {
	vals, err := Invoke(name, nOut, args)
	return vals, "", err
}

// Close is a no-op.
func (Local) Close() error { return nil }
