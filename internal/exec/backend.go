package exec

// Backend executes Opts.Exec-named task attempts on behalf of the compss
// runtime. Exactly one attempt maps to exactly one Execute call: the
// runtime's retry/deadline/fault machinery sits *above* the backend, so a
// backend failure (worker crash, dropped connection, unknown function) is
// just an attempt error — it surfaces as a compss.TaskError and is retried,
// degraded or finalised by the same policies as any in-process failure.
type Backend interface {
	// Execute runs the registered function name with the resolved args and
	// returns its nOut outputs. worker identifies the executing worker for
	// observability ("" when the body ran in-process); it is advisory and
	// carries no routing semantics.
	Execute(name string, nOut int, args []any) (vals []any, worker string, err error)
	// Close releases the backend's resources (connections, spawned loopback
	// processes). The backend must not be used after Close.
	Close() error
}

// Local is the in-process Backend: Execute is a registry call on the
// caller's goroutine, with no serialization and no new allocations beyond
// the body's own. A nil compss.Config.Backend has identical semantics — the
// runtime special-cases it to skip even the interface dispatch — so Local
// exists for code that wants an explicit Backend value (tests, parity
// harnesses).
type Local struct{}

// Execute runs the named body in-process.
func (Local) Execute(name string, nOut int, args []any) ([]any, string, error) {
	vals, err := Invoke(name, nOut, args)
	return vals, "", err
}

// Close is a no-op.
func (Local) Close() error { return nil }
