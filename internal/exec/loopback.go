package exec

import (
	"bufio"
	"fmt"
	"io"
	"os"
	osexec "os/exec"
	"strings"
	"time"
)

// LoopbackConfig configures SpawnLoopback.
type LoopbackConfig struct {
	// Workers is how many worker processes to start (required, ≥ 1).
	Workers int
	// Slots is each worker's concurrent-body count (default 1).
	Slots int
	// CacheMB bounds each worker's future cache in MiB; 0 keeps the worker
	// default (DefaultCacheBytes), <0 disables worker caching.
	CacheMB int
	// NoRefs disables the coordinator's reference data plane (values
	// baseline; see RemoteConfig.NoRefs).
	NoRefs bool
}

// SpawnLoopback starts cfg.Workers copies of the current binary as worker
// processes on 127.0.0.1 (each with the given slot count and cache bound),
// dials them, and returns the connected coordinator. It is the zero-setup
// distributed mode behind `-backend=remote` without `-peers`: real
// processes, real sockets, real serialization — only the network is
// loopback.
//
// The children are re-execs of os.Executable() with TASKML_EXEC_WORKER set,
// so they carry exactly the same registered-function table as the
// coordinator (see MaybeWorkerMain, which every spawnable binary calls
// first thing in main). Close kills and reaps them.
func SpawnLoopback(cfg LoopbackConfig) (*Remote, error) {
	n := cfg.Workers
	if n < 1 {
		return nil, fmt.Errorf("exec: SpawnLoopback needs at least 1 worker")
	}
	slots := cfg.Slots
	if slots < 1 {
		slots = 1
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("exec: resolving own binary: %w", err)
	}

	procs := make([]*os.Process, 0, n)
	peers := make([]string, 0, n)
	kill := func() {
		for _, p := range procs {
			_ = p.Kill()
			_, _ = p.Wait()
		}
	}
	for i := 0; i < n; i++ {
		cmd := osexec.Command(exe)
		cmd.Env = append(os.Environ(),
			workerEnvListen+"=127.0.0.1:0",
			fmt.Sprintf("%s=%d", workerEnvSlots, slots),
		)
		if cfg.CacheMB != 0 {
			cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", workerEnvCacheMB, cfg.CacheMB))
		}
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			kill()
			return nil, fmt.Errorf("exec: worker %d stdout: %w", i, err)
		}
		if err := cmd.Start(); err != nil {
			kill()
			return nil, fmt.Errorf("exec: spawning worker %d: %w", i, err)
		}
		procs = append(procs, cmd.Process)
		addr, err := readReadyLine(stdout, 10*time.Second)
		if err != nil {
			kill()
			return nil, fmt.Errorf("exec: worker %d (pid %d) did not come up: %w", i, cmd.Process.Pid, err)
		}
		peers = append(peers, addr)
		// Keep draining the child's stdout so it can never block on a full
		// pipe; everything after the ready line is informational.
		go func() { _, _ = io.Copy(io.Discard, stdout) }()
	}

	r, err := Dial(RemoteConfig{Peers: peers, NoRefs: cfg.NoRefs})
	if err != nil {
		kill()
		return nil, err
	}
	r.mu.Lock()
	r.procs = procs
	r.mu.Unlock()
	return r, nil
}

// readReadyLine waits for the worker's TASKML_WORKER_LISTENING line and
// returns the address it bound. The deadline guards against a child that
// exits or hangs before binding.
func readReadyLine(stdout io.Reader, timeout time.Duration) (string, error) {
	type result struct {
		addr string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, workerReadyPrefix) {
				ch <- result{addr: strings.TrimSpace(strings.TrimPrefix(line, workerReadyPrefix))}
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = fmt.Errorf("stdout closed before ready line")
		}
		ch <- result{err: err}
	}()
	select {
	case res := <-ch:
		return res.addr, res.err
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out after %v waiting for ready line", timeout)
	}
}
