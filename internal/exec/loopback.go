package exec

import (
	"bufio"
	"fmt"
	"io"
	"os"
	osexec "os/exec"
	"strings"
	"time"
)

// LoopbackConfig configures SpawnLoopback.
type LoopbackConfig struct {
	// Workers is how many worker processes to start (required, ≥ 1).
	Workers int
	// Slots is each worker's concurrent-body count (default 1).
	Slots int
	// CacheMB bounds each worker's future cache in MiB; 0 keeps the worker
	// default (DefaultCacheBytes), <0 disables worker caching.
	CacheMB int
	// NoRefs disables the coordinator's reference data plane (values
	// baseline; see RemoteConfig.NoRefs).
	NoRefs bool
	// NoPeers disables the worker-to-worker transfer plane (refs baseline;
	// see RemoteConfig.NoPeers). Implied by NoRefs.
	NoPeers bool
}

// spawnConfig is how a loopback fleet re-execs one more worker: stored on
// the Remote at SpawnLoopback so SpawnWorker (and through it the
// autoscaler) can grow the fleet mid-run with identically-configured
// children.
type spawnConfig struct {
	exe     string
	slots   int
	cacheMB int
	peer    string // TASKML_EXEC_PEER for children: a listen address or "off"
}

// SpawnLoopback starts cfg.Workers copies of the current binary as worker
// processes on 127.0.0.1 (each with the given slot count and cache bound),
// dials them, and returns the connected coordinator. It is the zero-setup
// distributed mode behind `-backend=remote` without `-peers`: real
// processes, real sockets, real serialization — only the network is
// loopback.
//
// The children are re-execs of os.Executable() with TASKML_EXEC_WORKER set,
// so they carry exactly the same registered-function table as the
// coordinator (see MaybeWorkerMain, which every spawnable binary calls
// first thing in main). The fleet stays elastic: SpawnWorker adds one more
// child, Drain/Leave retire them, and Autoscale does both automatically.
// Close kills and reaps whatever is left.
func SpawnLoopback(cfg LoopbackConfig) (*Remote, error) {
	n := cfg.Workers
	if n < 1 {
		return nil, fmt.Errorf("exec: SpawnLoopback needs at least 1 worker")
	}
	slots := cfg.Slots
	if slots < 1 {
		slots = 1
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("exec: resolving own binary: %w", err)
	}

	r := newRemote(cfg.NoRefs, cfg.NoPeers, 0)
	peer := "127.0.0.1:0" // loopback fleet: peer links ride the same interface
	if cfg.NoPeers || cfg.NoRefs {
		peer = "off"
	}
	r.spawn = &spawnConfig{exe: exe, slots: slots, cacheMB: cfg.CacheMB, peer: peer}
	for i := 0; i < n; i++ {
		if _, err := r.SpawnWorker(); err != nil {
			r.Close()
			return nil, fmt.Errorf("exec: worker %d: %w", i, err)
		}
	}
	return r, nil
}

// SpawnWorker re-execs one more loopback child, waits for it to bind, dials
// it, and admits it into the fleet with a fresh id (which it returns). Only
// fleets created by SpawnLoopback can spawn — a dialed fleet has no
// executable to run. This is both the autoscaler's grow primitive and the
// crash-recovery test hook: kill a worker, SpawnWorker, and the replacement
// is a brand-new member absorbing retried attempts.
func (r *Remote) SpawnWorker() (string, error) {
	r.mu.Lock()
	sc := r.spawn
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return "", fmt.Errorf("exec: backend is closed")
	}
	if sc == nil {
		return "", fmt.Errorf("exec: fleet was not spawned by SpawnLoopback")
	}

	cmd := osexec.Command(sc.exe)
	cmd.Env = append(os.Environ(),
		workerEnvListen+"=127.0.0.1:0",
		fmt.Sprintf("%s=%d", workerEnvSlots, sc.slots),
		workerEnvPeer+"="+sc.peer,
	)
	if sc.cacheMB != 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", workerEnvCacheMB, sc.cacheMB))
	}
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", fmt.Errorf("exec: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return "", fmt.Errorf("exec: spawning worker: %w", err)
	}
	fail := func(err error) (string, error) {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		return "", err
	}
	addr, err := readReadyLine(stdout, 10*time.Second)
	if err != nil {
		return fail(fmt.Errorf("exec: worker (pid %d) did not come up: %w", cmd.Process.Pid, err))
	}
	// Keep draining the child's stdout so it can never block on a full
	// pipe; everything after the ready line is informational.
	go func() { _, _ = io.Copy(io.Discard, stdout) }()

	w, err := dialWorker(addr, r.dialTimeout)
	if err != nil {
		return fail(err)
	}
	id, err := r.admit(w, cmd.Process)
	if err != nil {
		return fail(err) // admit already killed on its closed path; harmless double-kill
	}
	return id, nil
}

// readReadyLine waits for the worker's TASKML_WORKER_LISTENING line and
// returns the address it bound. The deadline guards against a child that
// exits or hangs before binding.
func readReadyLine(stdout io.Reader, timeout time.Duration) (string, error) {
	type result struct {
		addr string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, workerReadyPrefix) {
				ch <- result{addr: strings.TrimSpace(strings.TrimPrefix(line, workerReadyPrefix))}
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = fmt.Errorf("stdout closed before ready line")
		}
		ch <- result{err: err}
	}()
	select {
	case res := <-ch:
		return res.addr, res.err
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out after %v waiting for ready line", timeout)
	}
}
