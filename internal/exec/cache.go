package exec

import (
	"container/list"
	"sync"
	"sync/atomic"

	"taskml/internal/mat"
)

// The worker-side future cache: task outputs (and RefValue replicas) kept
// resident on the worker that produced or last received them, so a
// co-located consumer receives a ValueRef instead of the serialized value.
//
// Correctness does not depend on the cache: a reference the worker cannot
// resolve produces a Miss response and the coordinator re-sends the values
// (remote.go). The cache is therefore free to evict under its byte bound
// (plain LRU) and to vanish entirely with a crashed worker.
//
// # Ownership
//
// Registered bodies may mutate arguments they exclusively own (dsarray's
// mat_add_to accumulates into args[0]); a cached value handed to a body
// directly would make that mutation visible to the *next* consumer of the
// same future. Resolution therefore clones on hit: the body always receives
// a private copy, exactly as if the value had crossed the wire. Only types
// with a deep-clone path are cached at all — cloneValue below knows the
// builtin numeric kinds, *mat.Dense, and the common slice shapes; other
// types opt in by implementing Cloner.

// Cloner lets a registered argument/output type opt into the future cache.
// CloneExecValue must return a deep copy sharing no mutable state with the
// receiver; values whose type is neither builtin-clonable nor a Cloner are
// simply never cached (they re-ship by value every time, which is always
// correct).
type Cloner interface {
	CloneExecValue() any
}

// sessionCounter backs NextSession. Session 0 is reserved as "no session"
// (requests with Store=false).
var sessionCounter atomic.Uint64

// NextSession returns a fresh session token. Each compss runtime draws one
// at construction and stamps it into every request, so task ids from
// sequential or concurrent runtimes sharing one backend can never alias in
// a worker's cache.
func NextSession() uint64 { return sessionCounter.Add(1) }

// cacheEntry is one resident future output.
type cacheEntry struct {
	ref   ValueRef
	val   any
	bytes int64
	elem  *list.Element
}

// futureCache is a byte-bounded LRU map from ValueRef to value. One cache
// serves one coordinator connection (serveConn): the task-id namespace is
// per-coordinator, so sharing a cache across connections would need
// coordinated sessions for no benefit on this topology.
//
// All methods are safe for concurrent use by the Slots body goroutines of
// the owning connection.
type futureCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[ValueRef]*cacheEntry
	lru      *list.List // front = most recent; values are *cacheEntry
	evicted  []ValueRef // drained into the next response (exactly once)
	hits     atomic.Uint64
	misses   atomic.Uint64
}

func newFutureCache(maxBytes int64) *futureCache {
	return &futureCache{
		maxBytes: maxBytes,
		entries:  map[ValueRef]*cacheEntry{},
		lru:      list.New(),
	}
}

// get returns a deep clone of the cached value for ref, or (nil, false) on
// miss. The clone keeps the resident copy immutable no matter what the body
// does to its arguments.
func (c *futureCache) get(ref ValueRef) (any, bool) {
	c.mu.Lock()
	e, ok := c.entries[ref]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	v := e.val
	c.mu.Unlock()
	// Clone outside the lock: clones of large matrices are the expensive
	// part and must not serialize the connection's other bodies.
	cl, ok := cloneValue(v)
	if !ok {
		// Unclonable values are never inserted; getting here means the type
		// lost its clone path mid-run, which cannot happen for a fixed
		// binary. Treat as a miss for safety.
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return cl, true
}

// peek returns the resident value for ref without cloning, or (nil, false)
// on miss. It backs the peer server (peer.go): a peer fetch gob-encodes the
// value straight onto the socket, and encoding only reads — resident copies
// are immutable by construction (get clones, put stores a private copy), so
// no clone is needed. A peek is a use: it refreshes LRU recency, but it is
// deliberately not counted in hits/misses — those count the *owning*
// connection's argument resolutions, and a peer fetch belongs to another
// connection's request.
func (c *futureCache) peek(ref ValueRef) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[ref]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.val, true
}

// put inserts val under ref and returns its accounted size, evicting LRU
// entries as needed. Values that cannot be cloned or sized, and values
// larger than the whole cache, are rejected (returns 0, false) — the caller
// simply doesn't report a StoredRef and the coordinator never records
// residency.
//
// The inserted copy is private: put clones val, so the caller may keep
// mutating its own copy (a body's returned output is not re-used, but a
// RefValue replica's decoded value is handed to the body afterwards).
func (c *futureCache) put(ref ValueRef, val any) (int64, bool) {
	if c.maxBytes <= 0 {
		return 0, false
	}
	n := sizeOfValue(val)
	if n <= 0 || n > c.maxBytes {
		return 0, false
	}
	cl, ok := cloneValue(val)
	if !ok {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[ref]; ok {
		// Re-insert (replay of a resent request): refresh recency, keep the
		// existing copy. Sizes are equal by determinism; keep the old
		// accounting either way.
		c.lru.MoveToFront(old.elem)
		return old.bytes, true
	}
	for c.bytes+n > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.ref)
		c.bytes -= e.bytes
		c.evicted = append(c.evicted, e.ref)
	}
	e := &cacheEntry{ref: ref, val: cl, bytes: n}
	e.elem = c.lru.PushFront(e)
	c.entries[ref] = e
	c.bytes += n
	return n, true
}

// drainEvicted returns the refs evicted since the last call, for
// piggybacking on the next response. Each eviction is reported exactly
// once.
func (c *futureCache) drainEvicted() []ValueRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := c.evicted
	c.evicted = nil
	return ev
}

// occupancy returns the current resident byte count.
func (c *futureCache) occupancy() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// sizeOfValue estimates the resident size of a value in bytes, for the
// cache bound and for placement scoring. 0 means "unknown" and the value is
// not cached. The estimate covers the payload (the float data of a matrix,
// the elements of a slice), not Go object headers — placement only needs
// relative magnitudes.
func sizeOfValue(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case *mat.Dense:
		if x == nil {
			return 0
		}
		return int64(len(x.Data))*8 + 16
	case []float64:
		return int64(len(x))*8 + 8
	case [][]float64:
		var n int64 = 8
		for _, row := range x {
			n += int64(len(row))*8 + 24
		}
		return n
	case []int:
		return int64(len(x))*8 + 8
	case []bool:
		return int64(len(x)) + 8
	case []string:
		var n int64 = 8
		for _, s := range x {
			n += int64(len(s)) + 16
		}
		return n
	case []any:
		var n int64 = 8
		for _, e := range x {
			en := sizeOfValue(e)
			if en <= 0 {
				return 0
			}
			n += en
		}
		return n
	case float64, int, int64, uint64, bool:
		return 8
	case string:
		return int64(len(x)) + 16
	case Sizer:
		return x.ExecValueBytes()
	default:
		return 0
	}
}

// Sizer lets a Cloner type report its resident size; without it a Cloner
// still clones correctly but is kept out of the cache (size unknown).
type Sizer interface {
	ExecValueBytes() int64
}

// cloneValue returns a deep copy of v, or ok=false when v's type has no
// clone path. Immutable-by-convention scalars are returned as-is.
func cloneValue(v any) (any, bool) {
	switch x := v.(type) {
	case nil:
		return nil, true
	case *mat.Dense:
		if x == nil {
			return (*mat.Dense)(nil), true
		}
		return x.Clone(), true
	case []float64:
		return append([]float64(nil), x...), true
	case [][]float64:
		out := make([][]float64, len(x))
		for i, row := range x {
			out[i] = append([]float64(nil), row...)
		}
		return out, true
	case []int:
		return append([]int(nil), x...), true
	case []bool:
		return append([]bool(nil), x...), true
	case []string:
		return append([]string(nil), x...), true
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			ce, ok := cloneValue(e)
			if !ok {
				return nil, false
			}
			out[i] = ce
		}
		return out, true
	case float64, int, int64, uint64, bool, string:
		return x, true
	case Cloner:
		return x.CloneExecValue(), true
	default:
		return nil, false
	}
}
