package forest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"taskml/internal/mat"
)

// TreeParams configures a single CART tree.
type TreeParams struct {
	// MaxDepth bounds the tree. Default 16.
	MaxDepth int
	// MinSamplesSplit is the smallest node that may split. Default 2.
	MinSamplesSplit int
	// MaxFeatures is the number of features sampled per split; 0 selects
	// √d, the random-forest default.
	MaxFeatures int
}

func (p TreeParams) withDefaults() TreeParams {
	if p.MaxDepth == 0 {
		p.MaxDepth = 16
	}
	if p.MinSamplesSplit < 2 {
		p.MinSamplesSplit = 2
	}
	return p
}

// Node is one node of a decision tree. Leaves carry the class probability
// distribution of their training samples — "the leaves of the decision
// trees are the probability distribution of those samples that fulfill the
// conditions required by all the nodes in the path".
type Node struct {
	// Leaf marks terminal nodes.
	Leaf bool
	// Probs is the class distribution at a leaf.
	Probs []float64
	// Feature and Threshold define the split: x[Feature] <= Threshold goes
	// left.
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node
}

// Depth returns the tree height below (and including) n.
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return 1 + l
	}
	return 1 + r
}

// CountNodes returns the number of nodes in the subtree.
func (n *Node) CountNodes() int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return 1 + n.Left.CountNodes() + n.Right.CountNodes()
}

// leafNode builds a leaf from the label histogram of idx.
func leafNode(y []int, idx []int, nClasses int) *Node {
	probs := make([]float64, nClasses)
	for _, i := range idx {
		probs[y[i]]++
	}
	if len(idx) > 0 {
		inv := 1 / float64(len(idx))
		for c := range probs {
			probs[c] *= inv
		}
	}
	return &Node{Leaf: true, Probs: probs}
}

// giniOf computes the Gini impurity of a label histogram.
func giniOf(counts []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

// Split is the outcome of a single best-split search.
type Split struct {
	// Found is false when no impurity-reducing split exists.
	Found     bool
	Feature   int
	Threshold float64
	Left      []int
	Right     []int
}

// BestSplit searches the Gini-optimal binary split of the samples idx,
// scanning MaxFeatures randomly sampled features.
func BestSplit(x *mat.Dense, y []int, idx []int, nClasses int, p TreeParams, rng *rand.Rand) Split {
	p = p.withDefaults()
	nFeat := p.MaxFeatures
	if nFeat <= 0 {
		nFeat = int(math.Sqrt(float64(x.Cols)))
		if nFeat < 1 {
			nFeat = 1
		}
	}
	if nFeat > x.Cols {
		nFeat = x.Cols
	}
	feats := rng.Perm(x.Cols)[:nFeat]

	total := float64(len(idx))
	parentCounts := make([]float64, nClasses)
	for _, i := range idx {
		parentCounts[y[i]]++
	}
	parentGini := giniOf(parentCounts, total)
	if parentGini == 0 {
		return Split{}
	}

	type pair struct {
		v float64
		y int
		i int
	}
	best := Split{}
	bestScore := parentGini - 1e-12

	vals := make([]pair, len(idx))
	leftCounts := make([]float64, nClasses)
	for _, f := range feats {
		for k, i := range idx {
			vals[k] = pair{v: x.At(i, f), y: y[i], i: i}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		for k := 0; k < len(vals)-1; k++ {
			leftCounts[vals[k].y]++
			if vals[k].v == vals[k+1].v {
				continue
			}
			nl := float64(k + 1)
			nr := total - nl
			rightCounts := make([]float64, nClasses)
			for c := range rightCounts {
				rightCounts[c] = parentCounts[c] - leftCounts[c]
			}
			score := (nl*giniOf(leftCounts, nl) + nr*giniOf(rightCounts, nr)) / total
			if score < bestScore {
				bestScore = score
				best.Found = true
				best.Feature = f
				best.Threshold = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	if !best.Found {
		return best
	}
	for _, i := range idx {
		if x.At(i, best.Feature) <= best.Threshold {
			best.Left = append(best.Left, i)
		} else {
			best.Right = append(best.Right, i)
		}
	}
	return best
}

// BuildTree grows a CART tree on the samples idx (nil means all rows).
func BuildTree(x *mat.Dense, y []int, idx []int, nClasses int, p TreeParams, rng *rand.Rand) *Node {
	p = p.withDefaults()
	if idx == nil {
		idx = make([]int, x.Rows)
		for i := range idx {
			idx[i] = i
		}
	}
	return buildRec(x, y, idx, nClasses, p, rng, 0)
}

func buildRec(x *mat.Dense, y []int, idx []int, nClasses int, p TreeParams, rng *rand.Rand, depth int) *Node {
	if depth >= p.MaxDepth || len(idx) < p.MinSamplesSplit {
		return leafNode(y, idx, nClasses)
	}
	sp := BestSplit(x, y, idx, nClasses, p, rng)
	if !sp.Found || len(sp.Left) == 0 || len(sp.Right) == 0 {
		return leafNode(y, idx, nClasses)
	}
	return &Node{
		Feature:   sp.Feature,
		Threshold: sp.Threshold,
		Left:      buildRec(x, y, sp.Left, nClasses, p, rng, depth+1),
		Right:     buildRec(x, y, sp.Right, nClasses, p, rng, depth+1),
	}
}

// PredictProbs walks one sample down the tree to its leaf distribution.
func (n *Node) PredictProbs(row []float64) []float64 {
	cur := n
	for !cur.Leaf {
		if row[cur.Feature] <= cur.Threshold {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	return cur.Probs
}

// PredictLabel returns the argmax class of the sample's leaf.
func (n *Node) PredictLabel(row []float64) int {
	probs := n.PredictProbs(row)
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best
}

// Validate checks structural invariants of the tree (used by property
// tests): internal nodes have two children, leaf distributions sum to ~1.
func (n *Node) Validate(nClasses int) error {
	if n == nil {
		return fmt.Errorf("forest: nil node")
	}
	if n.Leaf {
		if len(n.Probs) != nClasses {
			return fmt.Errorf("forest: leaf has %d probs, want %d", len(n.Probs), nClasses)
		}
		var s float64
		for _, p := range n.Probs {
			if p < 0 || p > 1 {
				return fmt.Errorf("forest: leaf prob %v outside [0,1]", p)
			}
			s += p
		}
		if s != 0 && math.Abs(s-1) > 1e-9 {
			return fmt.Errorf("forest: leaf probs sum to %v", s)
		}
		return nil
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("forest: internal node missing children")
	}
	if err := n.Left.Validate(nClasses); err != nil {
		return err
	}
	return n.Right.Validate(nClasses)
}
