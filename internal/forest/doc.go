// Package forest implements the RandomForest estimator of the paper's
// §III-C.3: an ensemble of CART decision trees whose final prediction
// averages the per-tree class probability distributions (Figure 7), with
// the dislib parallelisation scheme — "its parallelism is based on the
// number of estimators and the parameter distr_depth (limit of the depth of
// the tree where the decisions are no longer computed in parallel)".
//
// # Public surface
//
// RandomForest (Fit/Predict over ds-arrays, configured by Params) is the
// estimator; TreeParams/Node/Split/BuildTree/BestSplit expose the
// single-tree CART machinery it distributes. TrainSet and SplitOut are the
// wire-visible intermediate values of the distributed fit.
//
// # Concurrency and ownership
//
// Fit and Predict submit tasks on the caller's compss context; the task
// bodies are registered with internal/exec and argument-pure, so the
// forest trains identically in-process and on remote workers. A fitted
// RandomForest (and any Node tree) is immutable and safe for concurrent
// Predict calls. Randomness is explicit: every task derives its rand.Rand
// from a seed argument, never from shared state.
package forest
