package forest

import (
	"math/rand"

	"taskml/internal/dsarray"
	"taskml/internal/exec"
	"taskml/internal/mat"
)

// Registered task bodies of the random-forest workflow. The estimator
// seeds, depths and tree parameters the original closures captured travel
// as explicit arguments, so every body is a pure function of its args and
// runs identically in-process and on a worker process. The wire types
// (TrainSet, SplitOut, Node, TreeParams) are registered alongside; all are
// trees of exported fields, which gob round-trips exactly — float64s
// bit-for-bit, so remote training is bit-identical to local.
func init() {
	exec.RegisterType(&TrainSet{})
	exec.RegisterType(&SplitOut{})
	exec.RegisterType(&Node{})
	exec.RegisterType(TreeParams{})

	// rf_gather(blocks): alternating x row block / y row block futures,
	// concatenated into the single TrainSet the tree tasks consume.
	exec.Register("rf_gather", func(args []any) (any, error) {
		vals := args[0].([]any)
		var xs []*mat.Dense
		var labels []int
		for i := 0; i < len(vals); i += 2 {
			xs = append(xs, vals[i].(*mat.Dense))
			labels = append(labels, dsarray.LabelsToInts(vals[i+1].(*mat.Dense))...)
		}
		return &TrainSet{X: mat.VStack(xs...), Y: labels}, nil
	})

	// rf_bootstrap(data, seed): one estimator's bootstrap sample of row
	// indices, drawn from the given seed.
	exec.Register("rf_bootstrap", func(args []any) (any, error) {
		ts := args[0].(*TrainSet)
		seed := args[1].(int64)
		rng := rand.New(rand.NewSource(seed))
		idx := make([]int, len(ts.Y))
		for i := range idx {
			idx[i] = rng.Intn(len(ts.Y))
		}
		return idx, nil
	})

	// rf_subtree(data, rows, seed, tp, nClasses): grow one whole subtree
	// below the distr-depth frontier. tp arrives with MaxDepth already
	// rebased to the remaining depth.
	exec.Register("rf_subtree", func(args []any) (any, error) {
		ts := args[0].(*TrainSet)
		rows := args[1].([]int)
		seed := args[2].(int64)
		tp := args[3].(TreeParams)
		nClasses := args[4].(int)
		rng := rand.New(rand.NewSource(seed))
		return BuildTree(ts.X, ts.Y, rows, nClasses, tp, rng), nil
	})

	// rf_split(data, rows, seed, tp, nClasses) -> (SplitOut, left, right):
	// one best-split decision of the distributed depth range.
	exec.RegisterN("rf_split", func(args []any) ([]any, error) {
		ts := args[0].(*TrainSet)
		rows := args[1].([]int)
		seed := args[2].(int64)
		tp := args[3].(TreeParams)
		nClasses := args[4].(int)
		rng := rand.New(rand.NewSource(seed))
		if len(rows) < tp.withDefaults().MinSamplesSplit {
			return []any{&SplitOut{Leaf: leafNode(ts.Y, rows, nClasses)}, []int{}, []int{}}, nil
		}
		sp := BestSplit(ts.X, ts.Y, rows, nClasses, tp, rng)
		if !sp.Found || len(sp.Left) == 0 || len(sp.Right) == 0 {
			return []any{&SplitOut{Leaf: leafNode(ts.Y, rows, nClasses)}, []int{}, []int{}}, nil
		}
		return []any{&SplitOut{Split: sp}, sp.Left, sp.Right}, nil
	})

	// rf_join(split, left, right): assemble a distr-depth node from its
	// split decision and child subtrees.
	exec.Register("rf_join", func(args []any) (any, error) {
		so := args[0].(*SplitOut)
		if so.Leaf != nil {
			return so.Leaf, nil
		}
		return &Node{
			Feature:   so.Split.Feature,
			Threshold: so.Split.Threshold,
			Left:      args[1].(*Node),
			Right:     args[2].(*Node),
		}, nil
	})

	// rf_predict(blk, trees, nClasses): classify one query row block by
	// averaging the per-tree leaf distributions.
	exec.Register("rf_predict", func(args []any) (any, error) {
		blk := args[0].(*mat.Dense)
		treeVals := args[1].([]any)
		nClasses := args[2].(int)
		trees := make([]*Node, 0, len(treeVals))
		for _, v := range treeVals {
			trees = append(trees, v.(*Node))
		}
		out := mat.New(blk.Rows, 1)
		probs := make([]float64, nClasses)
		for r := 0; r < blk.Rows; r++ {
			for c := range probs {
				probs[c] = 0
			}
			for _, t := range trees {
				for c, pr := range t.PredictProbs(blk.Row(r)) {
					probs[c] += pr
				}
			}
			best := 0
			for c, pr := range probs {
				if pr > probs[best] {
					best = c
				}
			}
			out.Set(r, 0, float64(best))
		}
		return out, nil
	})
}
