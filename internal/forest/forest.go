package forest

import (
	"errors"
	"fmt"
	"math/rand"

	"taskml/internal/compss"
	"taskml/internal/costs"
	"taskml/internal/dsarray"
	"taskml/internal/mat"
)

// Params configures the RandomForest estimator.
type Params struct {
	// Tree configures the individual CART estimators.
	Tree TreeParams
	// NEstimators is the number of trees; the paper's Figure 8 workflow
	// trains 40. Default 10.
	NEstimators int
	// DistrDepth is "the limit of the depth of the tree where the decisions
	// are no longer computed in parallel": node splits down to this depth
	// are individual tasks; each remaining subtree is one task. Default 1.
	DistrDepth int
	// NClasses is the label arity. Default 2 (AF vs Normal).
	NClasses int
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.NEstimators == 0 {
		p.NEstimators = 10
	}
	if p.DistrDepth == 0 {
		p.DistrDepth = 1
	}
	if p.NClasses == 0 {
		p.NClasses = 2
	}
	return p
}

// ErrNotFitted is returned by prediction before Fit.
var ErrNotFitted = errors.New("forest: model is not fitted")

// TrainSet is the gathered dataset shipped to the tree tasks. The paper
// observes that RF "is the only algorithm in dislib in which the number of
// blocks and their size does not have a direct impact on the computational
// time and number of tasks created": the workflow gathers the row blocks
// once and the task count depends only on NEstimators and DistrDepth.
// Fields are exported so the value gob-serialises to worker processes.
type TrainSet struct {
	X *mat.Dense
	Y []int
}

// SplitOut is a distr-depth split task's output.
type SplitOut struct {
	Leaf  *Node // non-nil when the node terminated (pure/small)
	Split Split
}

// RandomForest is the distributed random-forest classifier.
type RandomForest struct {
	Params Params

	trees []*compss.Future // one *Node per estimator
	dims  int
}

// gather concatenates x's row blocks and labels into a single TrainSet
// future (the reduction at the top of Figure 8's workflow).
func gather(x, y *dsarray.Array) *compss.Future {
	tc := x.Ctx()
	var futs []*compss.Future
	for i := 0; i < x.NumRowBlocks(); i++ {
		futs = append(futs, x.RowBlock(i), y.RowBlock(i))
	}
	return tc.SubmitExec(compss.Opts{
		Name:     "rf_gather",
		Exec:     "rf_gather",
		Cost:     costs.Copy(x.Rows(), x.Cols()+1),
		OutBytes: costs.Bytes(x.Rows(), x.Cols()+1),
	}, futs)
}

// Fit builds the forest workflow: a gather task, then per estimator a
// bootstrap task, distr-depth split tasks, one subtree task per frontier
// node, and join tasks assembling the tree.
func (f *RandomForest) Fit(x, y *dsarray.Array) error {
	if x.Rows() != y.Rows() {
		return fmt.Errorf("forest: %d samples vs %d labels", x.Rows(), y.Rows())
	}
	if y.Cols() != 1 {
		return fmt.Errorf("forest: labels must have 1 column, got %d", y.Cols())
	}
	p := f.Params.withDefaults()
	if p.DistrDepth >= p.Tree.withDefaults().MaxDepth {
		return fmt.Errorf("forest: DistrDepth %d must be below MaxDepth %d", p.DistrDepth, p.Tree.withDefaults().MaxDepth)
	}
	tc := x.Ctx()
	data := gather(x, y)
	n, d := x.Rows(), x.Cols()
	f.dims = d

	f.trees = make([]*compss.Future, p.NEstimators)
	for e := 0; e < p.NEstimators; e++ {
		seed := p.Seed + int64(e)*7919
		// Bootstrap sample of row indices.
		boot := tc.SubmitExec(compss.Opts{
			Name:     "rf_bootstrap",
			Exec:     "rf_bootstrap",
			Cost:     costs.Copy(n, 1),
			OutBytes: int64(n * 8),
		}, data, seed)
		f.trees[e] = f.buildDistr(tc, data, boot, seed, 0, n, p)
	}
	return nil
}

// buildDistr recursively submits the distr-depth task structure for one
// node and returns a future resolving to the node's *Node subtree. estN is
// the estimated sample count for cost declaration.
func (f *RandomForest) buildDistr(tc *compss.TaskCtx, data, idx *compss.Future, seed int64, depth, estN int, p Params) *compss.Future {
	tp := p.Tree.withDefaults()
	d := f.dims
	if depth >= p.DistrDepth {
		// One task builds the whole remaining subtree; the TreeParams it
		// ships carry MaxDepth rebased to the remaining depth.
		sub := tp
		sub.MaxDepth = tp.MaxDepth - depth
		return tc.SubmitExec(compss.Opts{
			Name:     "rf_subtree",
			Exec:     "rf_subtree",
			Cost:     costs.TreeFit(estN, d, tp.MaxDepth-depth),
			OutBytes: 4096,
		}, data, idx, seed+int64(depth)*104729, sub, p.NClasses)
	}

	// Split task: one best-split decision computed in parallel with the
	// rest of the level.
	outs := tc.SubmitExecN(compss.Opts{
		Name:     "rf_split",
		Exec:     "rf_split",
		Cost:     costs.TreeFit(estN, d, 1),
		OutBytes: int64(estN * 8),
	}, 3, data, idx, seed+int64(depth)*104729, tp, p.NClasses)

	// Cost estimates for the children model the data-dependent split
	// imbalance of real CART trees: splits are rarely even, so subtree
	// tasks have heavy-tailed durations. This is the load imbalance the
	// paper blames for RF's poor scalability ("the division of the data on
	// the different decision trees can cause some tasks handle considerably
	// more data than other[s]"). The fraction is drawn deterministically
	// per node from the estimator seed.
	frac := 0.2 + 0.6*rand.New(rand.NewSource(seed^int64(depth*2654435761))).Float64()
	left := f.buildDistr(tc, data, outs[1], seed*31+1, depth+1, int(frac*float64(estN))+1, p)
	right := f.buildDistr(tc, data, outs[2], seed*31+2, depth+1, int((1-frac)*float64(estN))+1, p)

	return tc.SubmitExec(compss.Opts{
		Name:     "rf_join",
		Exec:     "rf_join",
		Cost:     0,
		OutBytes: 4096,
	}, outs[0], left, right)
}

// Trees synchronises and returns the fitted estimators.
func (f *RandomForest) Trees(tc *compss.TaskCtx) ([]*Node, error) {
	if f.trees == nil {
		return nil, ErrNotFitted
	}
	out := make([]*Node, len(f.trees))
	for i, fut := range f.trees {
		v, err := tc.Get(fut)
		if err != nil {
			return nil, err
		}
		out[i] = v.(*Node)
	}
	return out, nil
}

// Predict classifies x by averaging the per-tree probability distributions
// ("to compute the final prediction of the overall model, the predictions
// of the composing estimators are averaged"), one task per query row block.
func (f *RandomForest) Predict(x *dsarray.Array) (*dsarray.Array, error) {
	if f.trees == nil {
		return nil, ErrNotFitted
	}
	if x.Cols() != f.dims {
		return nil, fmt.Errorf("forest: %d features, model fitted on %d", x.Cols(), f.dims)
	}
	p := f.Params.withDefaults()
	tc := x.Ctx()
	nrb := x.NumRowBlocks()
	blocks := make([][]*compss.Future, nrb)
	for i := 0; i < nrb; i++ {
		rows := x.RowBlockRows(i)
		blocks[i] = []*compss.Future{tc.SubmitExec(compss.Opts{
			Name:     "rf_predict",
			Exec:     "rf_predict",
			Cost:     costs.TreePredict(rows, p.Tree.withDefaults().MaxDepth) * float64(p.NEstimators),
			OutBytes: costs.Bytes(rows, 1),
		}, x.RowBlock(i), f.trees, p.NClasses)}
	}
	return dsarray.FromBlocks(tc, blocks, x.Rows(), 1, x.BlockRows(), 1), nil
}

// Score returns the mean accuracy on (x, y).
func (f *RandomForest) Score(x, y *dsarray.Array) (float64, error) {
	pred, err := f.Predict(x)
	if err != nil {
		return 0, err
	}
	return dsarray.Accuracy(pred, y)
}
