package forest

import (
	"errors"
	"fmt"
	"math/rand"

	"taskml/internal/compss"
	"taskml/internal/costs"
	"taskml/internal/dsarray"
	"taskml/internal/mat"
)

// Params configures the RandomForest estimator.
type Params struct {
	// Tree configures the individual CART estimators.
	Tree TreeParams
	// NEstimators is the number of trees; the paper's Figure 8 workflow
	// trains 40. Default 10.
	NEstimators int
	// DistrDepth is "the limit of the depth of the tree where the decisions
	// are no longer computed in parallel": node splits down to this depth
	// are individual tasks; each remaining subtree is one task. Default 1.
	DistrDepth int
	// NClasses is the label arity. Default 2 (AF vs Normal).
	NClasses int
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.NEstimators == 0 {
		p.NEstimators = 10
	}
	if p.DistrDepth == 0 {
		p.DistrDepth = 1
	}
	if p.NClasses == 0 {
		p.NClasses = 2
	}
	return p
}

// ErrNotFitted is returned by prediction before Fit.
var ErrNotFitted = errors.New("forest: model is not fitted")

// trainSet is the gathered dataset shipped to the tree tasks. The paper
// observes that RF "is the only algorithm in dislib in which the number of
// blocks and their size does not have a direct impact on the computational
// time and number of tasks created": the workflow gathers the row blocks
// once and the task count depends only on NEstimators and DistrDepth.
type trainSet struct {
	x *mat.Dense
	y []int
}

// splitOut is a distr-depth split task's output.
type splitOut struct {
	leaf  *Node // non-nil when the node terminated (pure/small)
	split Split
}

// RandomForest is the distributed random-forest classifier.
type RandomForest struct {
	Params Params

	trees []*compss.Future // one *Node per estimator
	dims  int
}

// gather concatenates x's row blocks and labels into a single trainSet
// future (the reduction at the top of Figure 8's workflow).
func gather(x, y *dsarray.Array) *compss.Future {
	tc := x.Ctx()
	args := make([]any, 0, 2*x.NumRowBlocks())
	var futs []*compss.Future
	for i := 0; i < x.NumRowBlocks(); i++ {
		futs = append(futs, x.RowBlock(i), y.RowBlock(i))
	}
	args = append(args, futs)
	return tc.Submit(compss.Opts{
		Name:     "rf_gather",
		Cost:     costs.Copy(x.Rows(), x.Cols()+1),
		OutBytes: costs.Bytes(x.Rows(), x.Cols()+1),
	}, func(_ *compss.TaskCtx, resolved []any) (any, error) {
		vals := resolved[0].([]any)
		var xs []*mat.Dense
		var labels []int
		for i := 0; i < len(vals); i += 2 {
			xs = append(xs, vals[i].(*mat.Dense))
			labels = append(labels, dsarray.LabelsToInts(vals[i+1].(*mat.Dense))...)
		}
		return &trainSet{x: mat.VStack(xs...), y: labels}, nil
	}, args...)
}

// Fit builds the forest workflow: a gather task, then per estimator a
// bootstrap task, distr-depth split tasks, one subtree task per frontier
// node, and join tasks assembling the tree.
func (f *RandomForest) Fit(x, y *dsarray.Array) error {
	if x.Rows() != y.Rows() {
		return fmt.Errorf("forest: %d samples vs %d labels", x.Rows(), y.Rows())
	}
	if y.Cols() != 1 {
		return fmt.Errorf("forest: labels must have 1 column, got %d", y.Cols())
	}
	p := f.Params.withDefaults()
	if p.DistrDepth >= p.Tree.withDefaults().MaxDepth {
		return fmt.Errorf("forest: DistrDepth %d must be below MaxDepth %d", p.DistrDepth, p.Tree.withDefaults().MaxDepth)
	}
	tc := x.Ctx()
	data := gather(x, y)
	n, d := x.Rows(), x.Cols()
	f.dims = d

	f.trees = make([]*compss.Future, p.NEstimators)
	for e := 0; e < p.NEstimators; e++ {
		seed := p.Seed + int64(e)*7919
		// Bootstrap sample of row indices.
		boot := tc.Submit(compss.Opts{
			Name:     "rf_bootstrap",
			Cost:     costs.Copy(n, 1),
			OutBytes: int64(n * 8),
		}, func(_ *compss.TaskCtx, args []any) (any, error) {
			rng := rand.New(rand.NewSource(seed))
			ts := args[0].(*trainSet)
			idx := make([]int, len(ts.y))
			for i := range idx {
				idx[i] = rng.Intn(len(ts.y))
			}
			return idx, nil
		}, data)
		f.trees[e] = f.buildDistr(tc, data, boot, seed, 0, n, p)
	}
	return nil
}

// buildDistr recursively submits the distr-depth task structure for one
// node and returns a future resolving to the node's *Node subtree. estN is
// the estimated sample count for cost declaration.
func (f *RandomForest) buildDistr(tc *compss.TaskCtx, data, idx *compss.Future, seed int64, depth, estN int, p Params) *compss.Future {
	tp := p.Tree.withDefaults()
	d := f.dims
	if depth >= p.DistrDepth {
		// One task builds the whole remaining subtree.
		return tc.Submit(compss.Opts{
			Name:     "rf_subtree",
			Cost:     costs.TreeFit(estN, d, tp.MaxDepth-depth),
			OutBytes: 4096,
		}, func(_ *compss.TaskCtx, args []any) (any, error) {
			ts := args[0].(*trainSet)
			rows := args[1].([]int)
			rng := rand.New(rand.NewSource(seed + int64(depth)*104729))
			sub := tp
			sub.MaxDepth = tp.MaxDepth - depth
			return BuildTree(ts.x, ts.y, rows, p.NClasses, sub, rng), nil
		}, data, idx)
	}

	// Split task: one best-split decision computed in parallel with the
	// rest of the level.
	outs := tc.SubmitN(compss.Opts{
		Name:     "rf_split",
		Cost:     costs.TreeFit(estN, d, 1),
		OutBytes: int64(estN * 8),
	}, 3, func(_ *compss.TaskCtx, args []any) ([]any, error) {
		ts := args[0].(*trainSet)
		rows := args[1].([]int)
		rng := rand.New(rand.NewSource(seed + int64(depth)*104729))
		if len(rows) < tp.MinSamplesSplit {
			return []any{&splitOut{leaf: leafNode(ts.y, rows, p.NClasses)}, []int{}, []int{}}, nil
		}
		sp := BestSplit(ts.x, ts.y, rows, p.NClasses, tp, rng)
		if !sp.Found || len(sp.Left) == 0 || len(sp.Right) == 0 {
			return []any{&splitOut{leaf: leafNode(ts.y, rows, p.NClasses)}, []int{}, []int{}}, nil
		}
		return []any{&splitOut{split: sp}, sp.Left, sp.Right}, nil
	}, data, idx)

	// Cost estimates for the children model the data-dependent split
	// imbalance of real CART trees: splits are rarely even, so subtree
	// tasks have heavy-tailed durations. This is the load imbalance the
	// paper blames for RF's poor scalability ("the division of the data on
	// the different decision trees can cause some tasks handle considerably
	// more data than other[s]"). The fraction is drawn deterministically
	// per node from the estimator seed.
	frac := 0.2 + 0.6*rand.New(rand.NewSource(seed^int64(depth*2654435761))).Float64()
	left := f.buildDistr(tc, data, outs[1], seed*31+1, depth+1, int(frac*float64(estN))+1, p)
	right := f.buildDistr(tc, data, outs[2], seed*31+2, depth+1, int((1-frac)*float64(estN))+1, p)

	return tc.Submit(compss.Opts{
		Name:     "rf_join",
		Cost:     0,
		OutBytes: 4096,
	}, func(_ *compss.TaskCtx, args []any) (any, error) {
		so := args[0].(*splitOut)
		if so.leaf != nil {
			return so.leaf, nil
		}
		return &Node{
			Feature:   so.split.Feature,
			Threshold: so.split.Threshold,
			Left:      args[1].(*Node),
			Right:     args[2].(*Node),
		}, nil
	}, outs[0], left, right)
}

// Trees synchronises and returns the fitted estimators.
func (f *RandomForest) Trees(tc *compss.TaskCtx) ([]*Node, error) {
	if f.trees == nil {
		return nil, ErrNotFitted
	}
	out := make([]*Node, len(f.trees))
	for i, fut := range f.trees {
		v, err := tc.Get(fut)
		if err != nil {
			return nil, err
		}
		out[i] = v.(*Node)
	}
	return out, nil
}

// Predict classifies x by averaging the per-tree probability distributions
// ("to compute the final prediction of the overall model, the predictions
// of the composing estimators are averaged"), one task per query row block.
func (f *RandomForest) Predict(x *dsarray.Array) (*dsarray.Array, error) {
	if f.trees == nil {
		return nil, ErrNotFitted
	}
	if x.Cols() != f.dims {
		return nil, fmt.Errorf("forest: %d features, model fitted on %d", x.Cols(), f.dims)
	}
	p := f.Params.withDefaults()
	tc := x.Ctx()
	nrb := x.NumRowBlocks()
	blocks := make([][]*compss.Future, nrb)
	for i := 0; i < nrb; i++ {
		rows := x.RowBlockRows(i)
		blocks[i] = []*compss.Future{tc.Submit(compss.Opts{
			Name:     "rf_predict",
			Cost:     costs.TreePredict(rows, p.Tree.withDefaults().MaxDepth) * float64(p.NEstimators),
			OutBytes: costs.Bytes(rows, 1),
		}, func(_ *compss.TaskCtx, args []any) (any, error) {
			blk := args[0].(*mat.Dense)
			trees := make([]*Node, 0, len(args[1].([]any)))
			for _, v := range args[1].([]any) {
				trees = append(trees, v.(*Node))
			}
			out := mat.New(blk.Rows, 1)
			probs := make([]float64, p.NClasses)
			for r := 0; r < blk.Rows; r++ {
				for c := range probs {
					probs[c] = 0
				}
				for _, t := range trees {
					for c, pr := range t.PredictProbs(blk.Row(r)) {
						probs[c] += pr
					}
				}
				best := 0
				for c, pr := range probs {
					if pr > probs[best] {
						best = c
					}
				}
				out.Set(r, 0, float64(best))
			}
			return out, nil
		}, x.RowBlock(i), f.trees)}
	}
	return dsarray.FromBlocks(tc, blocks, x.Rows(), 1, x.BlockRows(), 1), nil
}

// Score returns the mean accuracy on (x, y).
func (f *RandomForest) Score(x, y *dsarray.Array) (float64, error) {
	pred, err := f.Predict(x)
	if err != nil {
		return 0, err
	}
	return dsarray.Accuracy(pred, y)
}
