package forest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"taskml/internal/compss"
	"taskml/internal/dsarray"
	"taskml/internal/mat"
)

func newRT() *compss.Runtime { return compss.New(compss.Config{Workers: 4}) }

func blobs(rng *rand.Rand, n, d int, sep float64) (*mat.Dense, []int) {
	x := mat.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		off := -sep / 2
		if c == 1 {
			off = sep / 2
		}
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64()+off)
		}
	}
	return x, y
}

func xorData(rng *rand.Rand, n int) (*mat.Dense, []int) {
	x := mat.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	return x, y
}

func TestBuildTreeSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := blobs(rng, 200, 3, 5)
	tree := BuildTree(x, y, nil, 2, TreeParams{}, rng)
	if err := tree.Validate(2); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < x.Rows; i++ {
		if tree.PredictLabel(x.Row(i)) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows); acc < 0.97 {
		t.Fatalf("tree training accuracy %v", acc)
	}
}

func TestBuildTreeHandlesXor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := xorData(rng, 300)
	tree := BuildTree(x, y, nil, 2, TreeParams{MaxFeatures: 2}, rng)
	correct := 0
	for i := 0; i < x.Rows; i++ {
		if tree.PredictLabel(x.Row(i)) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows); acc < 0.9 {
		t.Fatalf("tree accuracy %v on XOR (axis-aligned splits should handle it)", acc)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := xorData(rng, 300)
	tree := BuildTree(x, y, nil, 2, TreeParams{MaxDepth: 3}, rng)
	if d := tree.Depth(); d > 4 { // depth counts nodes, MaxDepth counts splits
		t.Fatalf("tree depth %d with MaxDepth 3", d)
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {1}, {2}})
	y := []int{1, 1, 1}
	tree := BuildTree(x, y, nil, 2, TreeParams{}, rand.New(rand.NewSource(4)))
	if !tree.Leaf {
		t.Fatal("pure training set must yield a single leaf")
	}
	if tree.Probs[1] != 1 {
		t.Fatalf("leaf probs = %v", tree.Probs)
	}
}

func TestBestSplitKnownThreshold(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {1}, {10}, {11}})
	y := []int{0, 0, 1, 1}
	sp := BestSplit(x, y, []int{0, 1, 2, 3}, 2, TreeParams{MaxFeatures: 1}, rand.New(rand.NewSource(5)))
	if !sp.Found {
		t.Fatal("split not found")
	}
	if sp.Threshold < 1 || sp.Threshold > 10 {
		t.Fatalf("threshold %v outside (1, 10)", sp.Threshold)
	}
	if len(sp.Left) != 2 || len(sp.Right) != 2 {
		t.Fatalf("partition %d/%d", len(sp.Left), len(sp.Right))
	}
}

func TestBestSplitNoGain(t *testing.T) {
	// Identical feature values: no split possible.
	x := mat.NewFromRows([][]float64{{5}, {5}, {5}, {5}})
	y := []int{0, 1, 0, 1}
	sp := BestSplit(x, y, []int{0, 1, 2, 3}, 2, TreeParams{}, rand.New(rand.NewSource(6)))
	if sp.Found {
		t.Fatal("split found on constant feature")
	}
}

// Property: every tree built on random data is structurally valid and
// partitions are consistent.
func TestTreeStructureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		d := 1 + rng.Intn(5)
		x := mat.New(n, d)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			y[i] = rng.Intn(3)
			for j := 0; j < d; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
		}
		tree := BuildTree(x, y, nil, 3, TreeParams{MaxDepth: 6}, rng)
		if tree.Validate(3) != nil {
			return false
		}
		// Every prediction must be a valid class.
		for i := 0; i < n; i++ {
			l := tree.PredictLabel(x.Row(i))
			if l < 0 || l > 2 {
				return false
			}
		}
		return tree.Depth() <= 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomForestAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := blobs(rng, 300, 4, 3)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 75, 4)
	ya := dsarray.FromLabels(rt.Main(), y, 75)
	f := &RandomForest{Params: Params{NEstimators: 12, Seed: 7}}
	if err := f.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	acc, err := f.Score(xa, ya)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.93 {
		t.Fatalf("forest accuracy %v", acc)
	}
}

func TestRandomForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xTr, yTr := blobs(rng, 300, 6, 1.6)
	xTe, yTe := blobs(rng, 300, 6, 1.6)

	evalForest := func(nEst int) float64 {
		rt := newRT()
		xa := dsarray.FromMatrix(rt.Main(), xTr, 100, 6)
		ya := dsarray.FromLabels(rt.Main(), yTr, 100)
		f := &RandomForest{Params: Params{NEstimators: nEst, Seed: 8, Tree: TreeParams{MaxDepth: 10}}}
		if err := f.Fit(xa, ya); err != nil {
			t.Fatal(err)
		}
		xq := dsarray.FromMatrix(rt.Main(), xTe, 100, 6)
		yq := dsarray.FromLabels(rt.Main(), yTe, 100)
		acc, err := f.Score(xq, yq)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	one := evalForest(1)
	many := evalForest(30)
	if many < one-0.02 {
		t.Fatalf("30-tree forest (%v) worse than single tree (%v)", many, one)
	}
}

func TestForestGraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := blobs(rng, 80, 3, 3)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 20, 3)
	ya := dsarray.FromLabels(rt.Main(), y, 20)
	f := &RandomForest{Params: Params{NEstimators: 4, DistrDepth: 2, Seed: 9}}
	if err := f.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	counts := rt.Graph().CountByName()
	// Per estimator: 2^0 + 2^1 = 3 split tasks, 2^2 = 4 subtree tasks,
	// 3 join tasks, 1 bootstrap.
	if counts["rf_split"] != 4*3 {
		t.Fatalf("rf_split = %d, want 12", counts["rf_split"])
	}
	if counts["rf_subtree"] != 4*4 {
		t.Fatalf("rf_subtree = %d, want 16", counts["rf_subtree"])
	}
	if counts["rf_join"] != 4*3 {
		t.Fatalf("rf_join = %d, want 12", counts["rf_join"])
	}
	if counts["rf_bootstrap"] != 4 || counts["rf_gather"] != 1 {
		t.Fatalf("bootstrap/gather counts: %v", counts)
	}
	// The task count must not depend on blocking: refit with different
	// blocks and compare.
	rt2 := newRT()
	xa2 := dsarray.FromMatrix(rt2.Main(), x, 10, 3)
	ya2 := dsarray.FromLabels(rt2.Main(), y, 10)
	f2 := &RandomForest{Params: Params{NEstimators: 4, DistrDepth: 2, Seed: 9}}
	if err := f2.Fit(xa2, ya2); err != nil {
		t.Fatal(err)
	}
	if err := rt2.Barrier(); err != nil {
		t.Fatal(err)
	}
	c2 := rt2.Graph().CountByName()
	for _, name := range []string{"rf_split", "rf_subtree", "rf_join", "rf_bootstrap"} {
		if c2[name] != counts[name] {
			t.Fatalf("%s count depends on block size: %d vs %d", name, c2[name], counts[name])
		}
	}
}

func TestForestDistrDepthEquivalence(t *testing.T) {
	// distr_depth changes the task structure, not the model family:
	// accuracies should be in the same ballpark.
	rng := rand.New(rand.NewSource(10))
	x, y := blobs(rng, 200, 4, 3)
	accs := map[int]float64{}
	for _, dd := range []int{1, 2, 3} {
		rt := newRT()
		xa := dsarray.FromMatrix(rt.Main(), x, 50, 4)
		ya := dsarray.FromLabels(rt.Main(), y, 50)
		f := &RandomForest{Params: Params{NEstimators: 8, DistrDepth: dd, Seed: 10}}
		if err := f.Fit(xa, ya); err != nil {
			t.Fatal(err)
		}
		acc, err := f.Score(xa, ya)
		if err != nil {
			t.Fatal(err)
		}
		accs[dd] = acc
	}
	for dd, acc := range accs {
		if acc < 0.9 {
			t.Fatalf("distr_depth %d accuracy %v", dd, acc)
		}
	}
}

func TestForestTreesExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y := blobs(rng, 100, 3, 4)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 25, 3)
	ya := dsarray.FromLabels(rt.Main(), y, 25)
	f := &RandomForest{Params: Params{NEstimators: 5, Seed: 11}}
	if err := f.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	trees, err := f.Trees(rt.Main())
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 5 {
		t.Fatalf("%d trees", len(trees))
	}
	for i, tr := range trees {
		if err := tr.Validate(2); err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
	}
}

func TestForestErrors(t *testing.T) {
	rt := newRT()
	x := dsarray.FromMatrix(rt.Main(), mat.New(10, 2), 5, 2)
	yShort := dsarray.FromLabels(rt.Main(), make([]int, 8), 5)
	f := &RandomForest{}
	if err := f.Fit(x, yShort); err == nil {
		t.Fatal("want mismatch error")
	}
	if _, err := f.Predict(x); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
	deep := &RandomForest{Params: Params{DistrDepth: 20}}
	yGood := dsarray.FromLabels(rt.Main(), make([]int, 10), 5)
	if err := deep.Fit(x, yGood); err == nil {
		t.Fatal("want DistrDepth >= MaxDepth error")
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y := blobs(rng, 120, 3, 2)
	run := func() []int {
		rt := newRT()
		xa := dsarray.FromMatrix(rt.Main(), x, 30, 3)
		ya := dsarray.FromLabels(rt.Main(), y, 30)
		f := &RandomForest{Params: Params{NEstimators: 6, Seed: 99}}
		if err := f.Fit(xa, ya); err != nil {
			t.Fatal(err)
		}
		pred, err := f.Predict(xa)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := dsarray.CollectLabels(pred)
		if err != nil {
			t.Fatal(err)
		}
		return labels
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different forests")
		}
	}
}

func BenchmarkForestFit(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x, y := blobs(rng, 400, 8, 2)
	for i := 0; i < b.N; i++ {
		rt := newRT()
		xa := dsarray.FromMatrix(rt.Main(), x, 100, 8)
		ya := dsarray.FromLabels(rt.Main(), y, 100)
		f := &RandomForest{Params: Params{NEstimators: 10, Seed: 13}}
		if err := f.Fit(xa, ya); err != nil {
			b.Fatal(err)
		}
		if err := rt.Barrier(); err != nil {
			b.Fatal(err)
		}
	}
}
