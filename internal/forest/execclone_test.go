package forest

import (
	"testing"

	"taskml/internal/mat"
)

// The exec future cache relies on CloneExecValue returning copies that
// share no mutable state: a cached TrainSet scribbled on by one body must
// not leak into the next consumer's clone.
func TestTrainSetCloneIsolation(t *testing.T) {
	x := mat.New(2, 2)
	x.Data[0] = 1
	ts := &TrainSet{X: x, Y: []int{0, 1}}
	if ts.ExecValueBytes() <= 0 {
		t.Fatal("TrainSet size must be positive (else never cached)")
	}
	cl := ts.CloneExecValue().(*TrainSet)
	cl.X.Data[0] = 99
	cl.Y[0] = 99
	if ts.X.Data[0] != 1 || ts.Y[0] != 0 {
		t.Fatalf("clone shares memory: X[0]=%v Y[0]=%d", ts.X.Data[0], ts.Y[0])
	}
}

func TestNodeCloneDeep(t *testing.T) {
	n := &Node{
		Feature: 1, Threshold: 0.5,
		Left:  &Node{Leaf: true, Probs: []float64{0.2, 0.8}},
		Right: &Node{Leaf: true, Probs: []float64{0.9, 0.1}},
	}
	if n.ExecValueBytes() <= 0 {
		t.Fatal("Node size must be positive")
	}
	cl := n.CloneExecValue().(*Node)
	cl.Left.Probs[0] = 99
	cl.Right = nil
	if n.Left.Probs[0] != 0.2 || n.Right == nil {
		t.Fatal("subtree clone shares memory with original")
	}
}

func TestSplitOutCloneDeep(t *testing.T) {
	s := &SplitOut{Split: Split{Found: true, Left: []int{1, 2}, Right: []int{3}}}
	if s.ExecValueBytes() <= 0 {
		t.Fatal("SplitOut size must be positive")
	}
	cl := s.CloneExecValue().(*SplitOut)
	cl.Split.Left[0] = 99
	if s.Split.Left[0] != 1 {
		t.Fatal("SplitOut clone shares index slices")
	}

	leaf := &SplitOut{Leaf: &Node{Leaf: true, Probs: []float64{1}}}
	lcl := leaf.CloneExecValue().(*SplitOut)
	lcl.Leaf.Probs[0] = 0
	if leaf.Leaf.Probs[0] != 1 {
		t.Fatal("SplitOut clone shares the leaf node")
	}
}
