package forest

// Future-cache participation (see internal/exec cache.go): the forest wire
// types opt into worker-side caching by providing deep clones and resident
// sizes. TrainSet is the payoff — every rf_bootstrap of an estimator
// consumes the same gathered TrainSet, so a cached copy on the worker that
// ran rf_gather turns N full-dataset transfers into N references.
//
// CloneExecValue must not share mutable state with the receiver: the cache
// hands bodies clones precisely so a mutating body cannot corrupt the
// resident copy.

// CloneExecValue returns a deep copy (matrix data and label slice owned by
// the copy).
func (t *TrainSet) CloneExecValue() any {
	if t == nil {
		return (*TrainSet)(nil)
	}
	out := &TrainSet{Y: append([]int(nil), t.Y...)}
	if t.X != nil {
		out.X = t.X.Clone()
	}
	return out
}

// ExecValueBytes reports the resident payload size.
func (t *TrainSet) ExecValueBytes() int64 {
	if t == nil {
		return 8
	}
	n := int64(len(t.Y))*8 + 32
	if t.X != nil {
		n += int64(len(t.X.Data)) * 8
	}
	return n
}

// CloneExecValue returns a deep copy of the subtree rooted here.
func (n *Node) CloneExecValue() any { return n.cloneTree() }

func (n *Node) cloneTree() *Node {
	if n == nil {
		return nil
	}
	return &Node{
		Leaf:    n.Leaf,
		Probs:   append([]float64(nil), n.Probs...),
		Feature: n.Feature, Threshold: n.Threshold,
		Left: n.Left.cloneTree(), Right: n.Right.cloneTree(),
	}
}

// ExecValueBytes reports the resident payload size of the subtree.
func (n *Node) ExecValueBytes() int64 {
	if n == nil {
		return 8
	}
	return 64 + int64(len(n.Probs))*8 + n.Left.ExecValueBytes() + n.Right.ExecValueBytes()
}

// CloneExecValue returns a deep copy (leaf subtree and index slices owned
// by the copy).
func (s *SplitOut) CloneExecValue() any {
	if s == nil {
		return (*SplitOut)(nil)
	}
	out := &SplitOut{Leaf: s.Leaf.cloneTree(), Split: s.Split}
	out.Split.Left = append([]int(nil), s.Split.Left...)
	out.Split.Right = append([]int(nil), s.Split.Right...)
	return out
}

// ExecValueBytes reports the resident payload size.
func (s *SplitOut) ExecValueBytes() int64 {
	if s == nil {
		return 8
	}
	return 64 + int64(len(s.Split.Left)+len(s.Split.Right))*8 + s.Leaf.ExecValueBytes()
}
