// Package metrics provides the evaluation machinery of the paper's §IV:
// confusion matrices in the normalized layout of Table I, accuracy,
// precision/recall/F1 (the paper's discussion of precision-focus vs
// recall-focus for stroke care), and the stratified K-fold splitter behind
// every experiment's 5-fold cross-validation.
//
// # Public surface
//
// Confusion (NewConfusion, Add/AddAll, Merge, Accuracy/Precision/Recall/F1,
// Table I-style rendering), the Accuracy convenience over label slices, and
// the KFold / StratifiedKFold splitters (deterministic in their seed).
//
// # Concurrency and ownership
//
// A Confusion is a plain counter object: not safe for concurrent Add;
// the cross-validation merges per-fold matrices with Merge on the master
// instead of sharing one. Fold splits are value slices owned by the caller.
package metrics
