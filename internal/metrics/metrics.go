package metrics

import (
	"fmt"
	"math/rand"
	"strings"
)

// Confusion is a k-class confusion matrix of raw counts, rows = true class,
// columns = predicted class.
type Confusion struct {
	K      int
	Counts [][]int
}

// NewConfusion returns an empty k-class confusion matrix.
func NewConfusion(k int) *Confusion {
	c := &Confusion{K: k, Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	return c
}

// Add records one (truth, prediction) pair.
func (c *Confusion) Add(truth, pred int) {
	c.Counts[truth][pred]++
}

// AddAll records paired slices; it panics on length mismatch.
func (c *Confusion) AddAll(truth, pred []int) {
	if len(truth) != len(pred) {
		panic(fmt.Sprintf("metrics: %d truths vs %d predictions", len(truth), len(pred)))
	}
	for i := range truth {
		c.Add(truth[i], pred[i])
	}
}

// Merge accumulates another confusion matrix (e.g. across folds).
func (c *Confusion) Merge(o *Confusion) {
	if o.K != c.K {
		panic("metrics: merging confusion matrices of different arity")
	}
	for i := range c.Counts {
		for j := range c.Counts[i] {
			c.Counts[i][j] += o.Counts[i][j]
		}
	}
}

// Total returns the number of recorded samples.
func (c *Confusion) Total() int {
	t := 0
	for _, row := range c.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy returns the fraction of correct predictions (0 when empty).
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.K; i++ {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(t)
}

// Fraction returns cell (truth, pred) normalized by the total — the layout
// of the paper's Table I, where each cell is the fraction of all samples.
func (c *Confusion) Fraction(truth, pred int) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Counts[truth][pred]) / float64(t)
}

// Precision returns TP / (TP + FP) for the given class (1 when the class is
// never predicted, following the convention that avoids 0/0).
func (c *Confusion) Precision(class int) float64 {
	tp := c.Counts[class][class]
	pred := 0
	for i := 0; i < c.K; i++ {
		pred += c.Counts[i][class]
	}
	if pred == 0 {
		return 1
	}
	return float64(tp) / float64(pred)
}

// Recall returns TP / (TP + FN) for the given class (1 when the class has
// no samples).
func (c *Confusion) Recall(class int) float64 {
	tp := c.Counts[class][class]
	actual := 0
	for j := 0; j < c.K; j++ {
		actual += c.Counts[class][j]
	}
	if actual == 0 {
		return 1
	}
	return float64(tp) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for the class.
func (c *Confusion) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix in the Table I style, with class labels and
// total-normalized fractions.
func (c *Confusion) String() string {
	return c.Render(defaultLabels(c.K))
}

// Render renders the matrix with the given class labels.
func (c *Confusion) Render(labels []string) string {
	var b strings.Builder
	b.WriteString("          Prediction\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, l := range labels {
		fmt.Fprintf(&b, "%8s", l)
	}
	b.WriteByte('\n')
	for i := 0; i < c.K; i++ {
		fmt.Fprintf(&b, "%-8s", labels[i])
		for j := 0; j < c.K; j++ {
			fmt.Fprintf(&b, "%8.3f", c.Fraction(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func defaultLabels(k int) []string {
	ls := make([]string, k)
	for i := range ls {
		ls[i] = fmt.Sprintf("c%d", i)
	}
	return ls
}

// Accuracy is a convenience for paired label slices.
func Accuracy(truth, pred []int) float64 {
	c := NewConfusion(maxLabel(truth, pred) + 1)
	c.AddAll(truth, pred)
	return c.Accuracy()
}

func maxLabel(xs ...[]int) int {
	m := 0
	for _, s := range xs {
		for _, v := range s {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Fold is one cross-validation split, holding row indices into the dataset.
type Fold struct {
	Train []int
	Test  []int
}

// KFold produces k folds over n samples after a seeded shuffle. Every
// sample appears in exactly one test set; fold sizes differ by at most one.
func KFold(n, k int, seed int64) []Fold {
	if k < 2 || k > n {
		panic(fmt.Sprintf("metrics: KFold k=%d invalid for n=%d", k, n))
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	return foldsFrom(idx, k)
}

// StratifiedKFold produces k folds preserving per-class proportions, the
// splitter used for the paper's 5-fold cross-validations.
func StratifiedKFold(labels []int, k int, seed int64) []Fold {
	n := len(labels)
	if k < 2 || k > n {
		panic(fmt.Sprintf("metrics: StratifiedKFold k=%d invalid for n=%d", k, n))
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := map[int][]int{}
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	// Interleave shuffled per-class lists so contiguous chunks are
	// stratified.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	// Deterministic class order.
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			if classes[j] < classes[i] {
				classes[i], classes[j] = classes[j], classes[i]
			}
		}
	}
	for _, c := range classes {
		rng.Shuffle(len(byClass[c]), func(i, j int) {
			byClass[c][i], byClass[c][j] = byClass[c][j], byClass[c][i]
		})
	}
	// Round-robin assignment to folds per class keeps proportions within 1.
	assign := make([]int, n)
	for _, c := range classes {
		for i, idx := range byClass[c] {
			assign[idx] = i % k
		}
	}
	folds := make([]Fold, k)
	for i := 0; i < n; i++ {
		f := assign[i]
		folds[f].Test = append(folds[f].Test, i)
		for j := 0; j < k; j++ {
			if j != f {
				folds[j].Train = append(folds[j].Train, i)
			}
		}
	}
	return folds
}

func foldsFrom(idx []int, k int) []Fold {
	folds := make([]Fold, k)
	for i, sample := range idx {
		f := i % k
		folds[f].Test = append(folds[f].Test, sample)
		for j := 0; j < k; j++ {
			if j != f {
				folds[j].Train = append(folds[j].Train, sample)
			}
		}
	}
	return folds
}
