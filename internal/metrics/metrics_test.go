package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionAccuracy(t *testing.T) {
	c := NewConfusion(2)
	c.AddAll([]int{0, 0, 1, 1}, []int{0, 1, 1, 1})
	if math.Abs(c.Accuracy()-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 0.75", c.Accuracy())
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestConfusionFractionsMatchTableLayout(t *testing.T) {
	// Reproduce the arithmetic of the paper's Table Ia: 2006 samples,
	// 762 TP(AF), 251 FN, 251 FP, 742 TN → fractions 0.379/0.125/0.125/0.369.
	c := NewConfusion(2)
	for i := 0; i < 762; i++ {
		c.Add(0, 0)
	}
	for i := 0; i < 251; i++ {
		c.Add(0, 1)
	}
	for i := 0; i < 251; i++ {
		c.Add(1, 0)
	}
	for i := 0; i < 742; i++ {
		c.Add(1, 1)
	}
	if math.Abs(c.Fraction(0, 0)-0.37986) > 1e-3 {
		t.Fatalf("Fraction(0,0) = %v", c.Fraction(0, 0))
	}
	if math.Abs(c.Accuracy()-0.7498) > 1e-3 {
		t.Fatalf("Accuracy = %v, want ≈ 0.7498 (the paper's 74.9%%)", c.Accuracy())
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := NewConfusion(2)
	// class 0: TP=8, FN=2; predicted 0: 8+4 → precision 8/12, recall 8/10.
	for i := 0; i < 8; i++ {
		c.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		c.Add(0, 1)
	}
	for i := 0; i < 4; i++ {
		c.Add(1, 0)
	}
	for i := 0; i < 6; i++ {
		c.Add(1, 1)
	}
	if math.Abs(c.Precision(0)-8.0/12) > 1e-12 {
		t.Fatalf("Precision = %v", c.Precision(0))
	}
	if math.Abs(c.Recall(0)-0.8) > 1e-12 {
		t.Fatalf("Recall = %v", c.Recall(0))
	}
	p, r := 8.0/12, 0.8
	if math.Abs(c.F1(0)-2*p*r/(p+r)) > 1e-12 {
		t.Fatalf("F1 = %v", c.F1(0))
	}
}

func TestPrecisionRecallDegenerate(t *testing.T) {
	c := NewConfusion(2)
	c.Add(0, 0) // class 1 never appears nor predicted
	if c.Precision(1) != 1 || c.Recall(1) != 1 {
		t.Fatal("degenerate precision/recall convention broken")
	}
	empty := NewConfusion(2)
	if empty.Accuracy() != 0 || empty.Fraction(0, 0) != 0 {
		t.Fatal("empty confusion must report zeros")
	}
}

func TestMerge(t *testing.T) {
	a := NewConfusion(2)
	a.Add(0, 0)
	b := NewConfusion(2)
	b.Add(1, 1)
	b.Add(1, 0)
	a.Merge(b)
	if a.Total() != 3 || a.Counts[1][0] != 1 {
		t.Fatalf("Merge wrong: %+v", a.Counts)
	}
}

func TestMergeArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewConfusion(2).Merge(NewConfusion(3))
}

func TestAddAllLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewConfusion(2).AddAll([]int{0}, []int{0, 1})
}

func TestRenderContainsLabels(t *testing.T) {
	c := NewConfusion(2)
	c.Add(0, 0)
	s := c.Render([]string{"AF", "N"})
	if !strings.Contains(s, "AF") || !strings.Contains(s, "Prediction") {
		t.Fatalf("Render output:\n%s", s)
	}
	if c.String() == "" {
		t.Fatal("String must render")
	}
}

func TestAccuracyHelper(t *testing.T) {
	if a := Accuracy([]int{0, 1, 1}, []int{0, 1, 0}); math.Abs(a-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", a)
	}
}

func checkPartition(t *testing.T, folds []Fold, n int) {
	t.Helper()
	seen := map[int]int{}
	for fi, f := range folds {
		for _, i := range f.Test {
			seen[i]++
		}
		// Train ∪ Test = all, disjoint.
		inTest := map[int]bool{}
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatalf("fold %d: index %d in both train and test", fi, i)
			}
		}
		if len(f.Train)+len(f.Test) != n {
			t.Fatalf("fold %d covers %d of %d", fi, len(f.Train)+len(f.Test), n)
		}
	}
	if len(seen) != n {
		t.Fatalf("test sets cover %d of %d samples", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d appears in %d test sets", i, c)
		}
	}
}

func TestKFoldPartition(t *testing.T) {
	folds := KFold(23, 5, 1)
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	checkPartition(t, folds, 23)
	// Sizes within 1.
	for _, f := range folds {
		if len(f.Test) < 4 || len(f.Test) > 5 {
			t.Fatalf("fold size %d", len(f.Test))
		}
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a := KFold(10, 2, 7)
	b := KFold(10, 2, 7)
	for i := range a {
		if len(a[i].Test) != len(b[i].Test) {
			t.Fatal("same seed different folds")
		}
		sort.Ints(a[i].Test)
		sort.Ints(b[i].Test)
		for j := range a[i].Test {
			if a[i].Test[j] != b[i].Test[j] {
				t.Fatal("same seed different folds")
			}
		}
	}
}

func TestKFoldInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	KFold(3, 5, 0)
}

func TestStratifiedKFoldPreservesProportions(t *testing.T) {
	labels := make([]int, 100)
	for i := 80; i < 100; i++ {
		labels[i] = 1 // 80/20 split
	}
	folds := StratifiedKFold(labels, 5, 3)
	checkPartition(t, folds, 100)
	for fi, f := range folds {
		ones := 0
		for _, i := range f.Test {
			if labels[i] == 1 {
				ones++
			}
		}
		if ones != 4 {
			t.Fatalf("fold %d has %d minority samples, want 4", fi, ones)
		}
	}
}

// Property: stratified folds always partition and keep per-class counts
// within 1 across folds.
func TestStratifiedKFoldProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		k := 2 + rng.Intn(4)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		folds := StratifiedKFold(labels, k, seed)
		perClass := map[int][]int{}
		for fi, fold := range folds {
			counts := map[int]int{}
			for _, i := range fold.Test {
				counts[labels[i]]++
			}
			for c := 0; c < 3; c++ {
				for len(perClass[c]) <= fi {
					perClass[c] = append(perClass[c], 0)
				}
				perClass[c][fi] = counts[c]
			}
		}
		for _, counts := range perClass {
			lo, hi := counts[0], counts[0]
			for _, v := range counts {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi-lo > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
