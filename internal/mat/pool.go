package mat

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file is the scratch-arena layer: a size-bucketed, sync.Pool-backed
// recycler for the *Dense matrices and []float64 vectors the hot loops
// (eddl batch steps, sigproc STFT segments, knn distance blocks) would
// otherwise allocate fresh on every iteration.
//
// # Ownership contract
//
// Pooled buffers are *task-internal scratch*. A value obtained from a Pool
// is owned exclusively by the caller until Put returns it; after Put the
// caller must not touch it again. Values that escape the computation that
// allocated them — anything published through a compss.Future, stored in a
// model, or returned across a task boundary — must be freshly allocated
// (New / Clone), never pooled. DESIGN.md ("Memory model") states the
// contract; SetDebug's poisoning plus the bit-identity tests in
// internal/core enforce it.
//
// # Bucketing policy
//
// Capacities are rounded up to the next power of two and each power-of-two
// class has its own sync.Pool, so a Get never returns a buffer with less
// capacity than requested and reuse across slightly-different shapes (the
// ragged last mini-batch, per-block distance panels) still hits the pool.
// Requests above maxPooledLen (2^26 elements, 512 MiB) bypass the pool in
// both directions.

// maxPooledBits is the largest power-of-two exponent the pool buckets;
// larger requests allocate directly and are dropped on Put.
const maxPooledBits = 26

// maxPooledLen is the largest element count served from a bucket.
const maxPooledLen = 1 << maxPooledBits

// poisonValue fills returned buffers in debug mode. NaN is chosen so any
// arithmetic on recycled scratch that leaked into a live structure turns
// the downstream numbers into NaN — loud, not subtly wrong.
var poisonValue = math.NaN()

// Pool is a size-bucketed scratch arena for []float64 and *Dense buffers.
// All methods are safe for concurrent use. The zero value is ready to use;
// most code shares the package-level Scratch pool so that buffers released
// by one task warm the next task's Get.
type Pool struct {
	slices [maxPooledBits + 1]sync.Pool // of *[]float64
	dense  [maxPooledBits + 1]sync.Pool // of *Dense (Data cap = 1<<bucket)
	boxes  sync.Pool                    // spare *[]float64 headers, so Put itself is allocation-free

	disabled atomic.Bool
	debug    atomic.Bool

	gets   atomic.Int64
	reuses atomic.Int64
	puts   atomic.Int64
}

// Scratch is the process-wide default pool used by the eddl, sigproc and
// knn hot paths.
var Scratch = &Pool{}

// PoolStats is a snapshot of a pool's traffic counters.
type PoolStats struct {
	// Gets counts Get/GetDense calls, Reuses the subset served from a
	// bucket rather than a fresh allocation, Puts the buffers returned.
	Gets, Reuses, Puts int64
}

// Stats returns the pool's counters since process start.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Gets: p.gets.Load(), Reuses: p.reuses.Load(), Puts: p.puts.Load()}
}

// SetDisabled turns recycling off: Get always allocates fresh and Put
// discards. The unpooled mode is the reference behaviour the poisoning
// tests compare against; production code leaves it off.
func (p *Pool) SetDisabled(v bool) { p.disabled.Store(v) }

// SetDebug enables poisoning: every buffer handed to Put is filled with NaN
// before it is recycled, so any reader that kept a reference past its Put
// sees NaN instead of stale-but-plausible numbers. Meant for tests (the
// internal/core aliasing test runs the whole AF pipeline this way); it
// makes Put O(n).
func (p *Pool) SetDebug(v bool) { p.debug.Store(v) }

// bucketFor returns the bucket index whose capacity (1<<idx) holds n
// elements, or -1 when n exceeds the pooled range.
func bucketFor(n int) int {
	if n <= 0 {
		return 0
	}
	idx := bits.Len(uint(n - 1)) // ceil(log2 n)
	if idx > maxPooledBits {
		return -1
	}
	return idx
}

// Get returns a zeroed []float64 of length n. The buffer is scratch owned
// by the caller until Put.
func (p *Pool) Get(n int) []float64 {
	p.gets.Add(1)
	if b := bucketFor(n); b >= 0 && !p.disabled.Load() {
		if v := p.slices[b].Get(); v != nil {
			box := v.(*[]float64)
			s := (*box)[:n]
			*box = nil
			p.boxes.Put(box)
			p.reuses.Add(1)
			clear(s)
			return s
		}
		return make([]float64, n, 1<<b)
	}
	return make([]float64, n)
}

// Put returns a slice obtained from Get to its bucket. Put of a slice the
// pool did not produce is allowed as long as its capacity is an exact
// bucket size; anything else is silently dropped.
func (p *Pool) Put(s []float64) {
	if s == nil {
		return
	}
	p.puts.Add(1)
	if p.debug.Load() {
		poison(s[:cap(s)])
	}
	if p.disabled.Load() {
		return
	}
	c := cap(s)
	if c == 0 || c&(c-1) != 0 || c > maxPooledLen {
		return
	}
	box, _ := p.boxes.Get().(*[]float64)
	if box == nil {
		box = new([]float64)
	}
	*box = s[:c]
	p.slices[bits.Len(uint(c))-1].Put(box)
}

// GetDense returns a zeroed r×c matrix whose backing array is pooled
// scratch. It is the arena counterpart of New; the matrix is owned by the
// caller until PutDense.
func (p *Pool) GetDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	n := r * c
	p.gets.Add(1)
	if b := bucketFor(n); b >= 0 && !p.disabled.Load() {
		if v := p.dense[b].Get(); v != nil {
			m := v.(*Dense)
			m.Rows, m.Cols = r, c
			m.Data = m.Data[:n]
			p.reuses.Add(1)
			clear(m.Data)
			return m
		}
		return &Dense{Rows: r, Cols: c, Data: make([]float64, n, 1<<b)}
	}
	return New(r, c)
}

// PutDense recycles a matrix obtained from GetDense. The caller must hold
// the only live reference: both the header and its Data are reused by a
// later GetDense.
func (p *Pool) PutDense(m *Dense) {
	if m == nil {
		return
	}
	p.puts.Add(1)
	if p.debug.Load() {
		poison(m.Data[:cap(m.Data)])
	}
	if p.disabled.Load() {
		return
	}
	c := cap(m.Data)
	if c == 0 || c&(c-1) != 0 || c > maxPooledLen {
		return
	}
	m.Rows, m.Cols = 0, 0
	m.Data = m.Data[:0]
	p.dense[bits.Len(uint(c))-1].Put(m)
}

// GrowDense reuses *buf as an r×c matrix when its backing capacity
// suffices, zeroing the used region; otherwise it recycles *buf and draws a
// larger matrix from the pool. It is the idiom behind per-layer scratch in
// internal/eddl: a field holds the buffer across iterations, GrowDense
// reshapes it per step, and one PutDense releases it when the loop ends.
func (p *Pool) GrowDense(buf **Dense, r, c int) *Dense {
	n := r * c
	if m := *buf; m != nil && cap(m.Data) >= n {
		m.Rows, m.Cols = r, c
		m.Data = m.Data[:n]
		clear(m.Data)
		return m
	}
	p.PutDense(*buf)
	*buf = p.GetDense(r, c)
	return *buf
}

// ReleaseDense recycles *buf and nils the field; a nil *buf is a no-op.
func (p *Pool) ReleaseDense(buf **Dense) {
	if *buf != nil {
		p.PutDense(*buf)
		*buf = nil
	}
}

func poison(s []float64) {
	for i := range s {
		s[i] = poisonValue
	}
}
