package mat

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"taskml/internal/par"
)

// naiveMul is the reference ijk product the blocked kernels are tested
// against.
func naiveMul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestDotAxpyKnown(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Fatalf("Dot = %v, want 35", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("empty Dot = %v", got)
	}
	y := []float64{1, 1, 1, 1, 1}
	Axpy(2, a, y)
	for i := range y {
		if y[i] != 1+2*a[i] {
			t.Fatalf("Axpy = %v", y)
		}
	}
	Axpy(3, nil, nil) // zero-length must be a no-op
}

func TestDotMatchesSequentialSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100)
		a, b := make([]float64, n), make([]float64, n)
		var want float64
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			want += a[i] * b[i]
		}
		return math.Abs(Dot(a, b)-want) <= 1e-12*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The blocked, parallel kernels must agree with the naive reference at
// every parallelism limit, including shapes that are not multiples of the
// cache-block sizes.
func TestBlockedKernelsMatchNaive(t *testing.T) {
	defer par.SetLimit(runtime.GOMAXPROCS(0))
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 2}, {17, 129, 33}, {64, 64, 64}, {130, 257, 70}}
	for _, limit := range []int{1, 2, 8} {
		par.SetLimit(limit)
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := randDense(rng, m, k)
			b := randDense(rng, k, n)
			want := naiveMul(a, b)
			if got := Mul(a, b); !Equal(got, want, 1e-10) {
				t.Fatalf("limit=%d %v: Mul disagrees with naive", limit, sh)
			}
			if got := MulAtB(a.T(), b); !Equal(got, want, 1e-10) {
				t.Fatalf("limit=%d %v: MulAtB disagrees", limit, sh)
			}
			if got := MulABt(a, b.T()); !Equal(got, want, 1e-10) {
				t.Fatalf("limit=%d %v: MulABt disagrees", limit, sh)
			}
		}
	}
}

// The parallel kernel must be deterministic: the same product computed at
// different limits is bit-for-bit identical (chunking never reassociates
// a given output element's accumulation).
func TestKernelsBitIdenticalAcrossLimits(t *testing.T) {
	defer par.SetLimit(runtime.GOMAXPROCS(0))
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 70, 150)
	b := randDense(rng, 150, 90)
	at := a.T()
	par.SetLimit(1)
	serial := Mul(a, b)
	serialAtB := MulAtB(at, b)
	par.SetLimit(8)
	if !Equal(Mul(a, b), serial, 0) {
		t.Fatal("Mul is not bit-identical across limits")
	}
	if !Equal(MulAtB(at, b), serialAtB, 0) {
		t.Fatal("MulAtB is not bit-identical across limits")
	}
}

func TestMulAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randDense(rng, 9, 14)
	b := randDense(rng, 14, 6)
	seedOut := randDense(rng, 9, 6)
	dst := seedOut.Clone()
	MulAdd(dst, a, b)
	want := Add(seedOut, Mul(a, b))
	if !Equal(dst, want, 1e-12) {
		t.Fatal("MulAdd does not accumulate into dst")
	}

	at := a.T()
	dst2 := seedOut.Clone()
	MulAtBAdd(dst2, at, b)
	if !Equal(dst2, want, 1e-12) {
		t.Fatal("MulAtBAdd does not accumulate into dst")
	}

	bt := b.T()
	dst3 := seedOut.Clone()
	MulABtAdd(dst3, a, bt)
	if !Equal(dst3, want, 1e-12) {
		t.Fatal("MulABtAdd does not accumulate into dst")
	}
}

func TestMulAddShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"inner":  func() { MulAdd(New(2, 2), New(2, 3), New(2, 2)) },
		"dst":    func() { MulAdd(New(3, 3), New(2, 3), New(3, 2)) },
		"atbDst": func() { MulAtBAdd(New(2, 2), New(4, 3), New(4, 2)) },
		"abtDst": func() { MulABtAdd(New(2, 2), New(3, 4), New(2, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected shape panic", name)
				}
			}()
			fn()
		}()
	}
}

// EigSym must produce identical eigenpairs whether the rotations are
// applied serially or in parallel chunks (the per-element arithmetic is
// unchanged).
func TestEigSymBitIdenticalAcrossLimits(t *testing.T) {
	defer par.SetLimit(runtime.GOMAXPROCS(0))
	rng := rand.New(rand.NewSource(14))
	g := randDense(rng, 40, 40)
	a := MulAtB(g, g)
	par.SetLimit(1)
	v1, e1, err1 := EigSym(a)
	par.SetLimit(8)
	v2, e2, err2 := EigSym(a)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("convergence differs: %v vs %v", err1, err2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("eigenvalue %d differs across limits: %v vs %v", i, v1[i], v2[i])
		}
	}
	if !Equal(e1, e2, 0) {
		t.Fatal("eigenvectors differ across limits")
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks (the kernel-regression tripwires of the perf issue).

func benchGEMM(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(3))
	x := randDense(rng, n, n)
	y := randDense(rng, n, n)
	b.ReportAllocs()
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
	b.ReportMetric(2*float64(n)*float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGEMM256(b *testing.B) { benchGEMM(b, 256) }

func BenchmarkGEMM512(b *testing.B) { benchGEMM(b, 512) }

// BenchmarkGEMM512Serial pins the kernel layer to one goroutine: the
// cache-blocking + unrolled micro-kernel gains without any parallelism, and
// the tripwire for regressions at par.SetLimit(1).
func BenchmarkGEMM512Serial(b *testing.B) {
	defer par.SetLimit(runtime.GOMAXPROCS(0))
	par.SetLimit(1)
	benchGEMM(b, 512)
}

func BenchmarkEigSym(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := randDense(rng, 128, 128)
	a := MulAtB(g, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigSym(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulABt512x64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := randDense(rng, 512, 64)
	y := randDense(rng, 512, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulABt(x, y)
	}
}
