package mat

import (
	"fmt"

	"taskml/internal/par"
)

// This file holds the hot numeric layer: the unrolled dot/axpy
// micro-kernels and the cache-blocked, row-band-parallel GEMM variants that
// Mul/MulAtB/MulABt/MulVec are built on. Parallelism goes through
// internal/par, so kernel threads compose with the compss worker pool (see
// the par package comment for the oversubscription contract).

// Cache-blocking parameters. kcBlock×(row bytes) keeps the streamed panel
// of b resident in L2 while a row band reuses it; jcBlock bounds the
// destination-row segment so the panel stays resident even for very wide
// matrices (kcBlock · jcBlock · 8 B ≈ 512 KiB).
const (
	kcBlock = 128
	jcBlock = 512
)

// gemmFlopFloor is the work (in multiply-adds) below which a kernel runs
// serially: smaller products are dominated by goroutine handoff.
const gemmFlopFloor = 1 << 15

// Dot returns the inner product of a and b. len(b) must be ≥ len(a); extra
// elements of b are ignored. Four accumulators keep the FP pipeline full;
// the summation order differs from a naive loop by at most the usual
// floating-point reassociation error.
func Dot(a, b []float64) float64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy accumulates y += alpha·x over len(x) elements. len(y) must be
// ≥ len(x).
func Axpy(alpha float64, x, y []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// rowGrain picks the number of output rows per parallel chunk so a chunk
// amortises its handoff: at least minRows, and enough rows to clear the
// flop floor.
func rowGrain(rows int, flopsPerRow float64) int {
	g := 1
	if flopsPerRow > 0 {
		g = int(gemmFlopFloor/flopsPerRow) + 1
	}
	if g < 4 {
		g = 4
	}
	if g > rows {
		g = rows
	}
	return g
}

// MulAdd accumulates the product a·b into dst (dst += a·b). It is the
// in-place GEMM behind Mul and the allocation-free accumulate variant used
// by the ds-array blocked matmul reduction.
func MulAdd(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulAdd shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAdd dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	kdim, n := a.Cols, b.Cols
	par.For(a.Rows, rowGrain(a.Rows, 2*float64(kdim)*float64(n)), func(r0, r1 int) {
		for kk := 0; kk < kdim; kk += kcBlock {
			kend := kk + kcBlock
			if kend > kdim {
				kend = kdim
			}
			for jj := 0; jj < n; jj += jcBlock {
				jend := jj + jcBlock
				if jend > n {
					jend = n
				}
				for i := r0; i < r1; i++ {
					arow := a.Row(i)
					orow := dst.Row(i)[jj:jend]
					for k := kk; k < kend; k++ {
						if aik := arow[k]; aik != 0 {
							Axpy(aik, b.Row(k)[jj:jend], orow)
						}
					}
				}
			}
		}
	})
}

// MulAtBAdd accumulates aᵀ·b into dst (dst += aᵀ·b) without materialising
// the transpose. Row bands of dst (columns of a) run in parallel.
func MulAtBAdd(dst, a, b *Dense) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulAtBAdd shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAtBAdd dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	par.For(a.Cols, rowGrain(a.Cols, 2*float64(a.Rows)*float64(b.Cols)), func(i0, i1 int) {
		for r := 0; r < a.Rows; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i := i0; i < i1; i++ {
				if av := arow[i]; av != 0 {
					Axpy(av, brow, dst.Row(i))
				}
			}
		}
	})
}

// MulABtAdd accumulates a·bᵀ into dst (dst += a·bᵀ). Each output element is
// a dot product of two stored rows, so the kernel is a row-band-parallel
// sweep of Dot calls.
func MulABtAdd(dst, a, b *Dense) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulABtAdd shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulABtAdd dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	par.For(a.Rows, rowGrain(a.Rows, 2*float64(a.Cols)*float64(b.Rows)), func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				orow[j] += Dot(arow, b.Row(j))
			}
		}
	})
}
