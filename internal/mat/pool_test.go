package mat

import (
	"math"
	"testing"

	"taskml/internal/par"
)

func TestBucketFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{maxPooledLen, maxPooledBits}, {maxPooledLen + 1, -1},
	}
	for _, c := range cases {
		if got := bucketFor(c.n); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPoolGetZeroedAfterDirtyPut(t *testing.T) {
	p := &Pool{}
	s := p.Get(100)
	if len(s) != 100 {
		t.Fatalf("len = %d, want 100", len(s))
	}
	for i := range s {
		s[i] = 1 + float64(i)
	}
	p.Put(s)
	// The next Get in the same bucket must be zeroed even if it reuses the
	// dirty buffer.
	s2 := p.Get(70)
	if len(s2) != 70 {
		t.Fatalf("len = %d, want 70", len(s2))
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	st := p.Stats()
	if st.Gets != 2 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want Gets 2, Puts 1", st)
	}
}

func TestPoolPutDropsForeignCapacities(t *testing.T) {
	p := &Pool{}
	// A slice whose capacity is not an exact bucket size must not enter a
	// bucket (it could short-change a later Get).
	p.Put(make([]float64, 100)) // cap 100, not a power of two
	s := p.Get(100)
	if cap(s) != 128 {
		t.Fatalf("Get(100) cap = %d, want bucket capacity 128", cap(s))
	}
}

func TestGetDensePutDenseRoundTrip(t *testing.T) {
	p := &Pool{}
	m := p.GetDense(10, 12)
	if m.Rows != 10 || m.Cols != 12 || len(m.Data) != 120 || cap(m.Data) != 128 {
		t.Fatalf("unexpected shape %dx%d len %d cap %d", m.Rows, m.Cols, len(m.Data), cap(m.Data))
	}
	m.Data[0] = 42
	p.PutDense(m)
	// Reuse across a different shape in the same bucket.
	m2 := p.GetDense(11, 11)
	if m2.Rows != 11 || m2.Cols != 11 {
		t.Fatalf("unexpected shape %dx%d", m2.Rows, m2.Cols)
	}
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("reused Dense not zeroed at %d: %v", i, v)
		}
	}
	if st := p.Stats(); st.Reuses == 0 {
		if !raceEnabled {
			t.Fatalf("expected the second GetDense to reuse, stats %+v", st)
		}
		// Under -race sync.Pool drops a random fraction of Puts to expose
		// lifetime bugs, so a single round trip is not guaranteed to reuse;
		// keep cycling until one lands.
		reused := false
		for i := 0; i < 200 && !reused; i++ {
			p.PutDense(m2)
			m2 = p.GetDense(11, 11)
			reused = p.Stats().Reuses > 0
		}
		if !reused {
			t.Fatalf("no reuse after 200 round trips under -race, stats %+v", p.Stats())
		}
	}
}

func TestGrowDenseReusesCapacity(t *testing.T) {
	p := &Pool{}
	var buf *Dense
	m := p.GrowDense(&buf, 8, 16) // cap 128
	first := &m.Data[0]
	m.Data[5] = 7
	// Shrinking and regrowing within capacity must keep the same backing
	// array and zero the used region.
	m = p.GrowDense(&buf, 4, 8)
	if &m.Data[0] != first {
		t.Fatal("GrowDense within capacity reallocated")
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("GrowDense region not zeroed at %d: %v", i, v)
		}
	}
	// Growing past capacity swaps buffers.
	m = p.GrowDense(&buf, 32, 32)
	if m.Rows != 32 || m.Cols != 32 {
		t.Fatalf("unexpected shape %dx%d", m.Rows, m.Cols)
	}
	p.ReleaseDense(&buf)
	if buf != nil {
		t.Fatal("ReleaseDense did not nil the field")
	}
	p.ReleaseDense(&buf) // nil release is a no-op
}

func TestPoolDebugPoisonsOnPut(t *testing.T) {
	p := &Pool{}
	p.SetDebug(true)
	s := p.Get(16)
	for i := range s {
		s[i] = 1
	}
	p.Put(s)
	// The caller wrongly kept the reference: it must see NaN, not stale 1s.
	for i, v := range s {
		if !math.IsNaN(v) {
			t.Fatalf("debug Put left s[%d] = %v, want NaN", i, v)
		}
	}
	m := p.GetDense(4, 4)
	p.PutDense(m)
	for i, v := range m.Data[:cap(m.Data)] {
		if !math.IsNaN(v) {
			t.Fatalf("debug PutDense left Data[%d] = %v, want NaN", i, v)
		}
	}
	// Poisoned buffers re-enter the pool; a Get must still hand them back
	// zeroed.
	s2 := p.Get(16)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("poisoned reuse not zeroed at %d: %v", i, v)
		}
	}
}

func TestPoolDisabledNeverReuses(t *testing.T) {
	p := &Pool{}
	p.SetDisabled(true)
	s := p.Get(64)
	s[0] = 9
	p.Put(s)
	s2 := p.Get(64)
	if &s2[0] == &s[0] {
		t.Fatal("disabled pool reused a buffer")
	}
	if st := p.Stats(); st.Reuses != 0 {
		t.Fatalf("disabled pool recorded reuses: %+v", st)
	}
}

// The alloc-regression floor for the scalar kernels: Dot and Axpy are leaf
// loops and must never allocate.
func TestDotAxpyAllocFree(t *testing.T) {
	x := make([]float64, 4096)
	y := make([]float64, 4096)
	for i := range x {
		x[i] = float64(i%7) - 3
		y[i] = float64(i%5) - 2
	}
	var sink float64
	if a := testing.AllocsPerRun(100, func() { sink += Dot(x, y) }); a != 0 {
		t.Errorf("Dot allocates %v times per call, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { Axpy(0.5, x, y) }); a != 0 {
		t.Errorf("Axpy allocates %v times per call, want 0", a)
	}
	_ = sink
}

// Steady-state Get/Put traffic must be allocation-free: after warm-up every
// request is served from a bucket. A background GC can empty a sync.Pool
// mid-loop, so the assertion leaves a little headroom instead of demanding
// an exact zero.
func TestPoolSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a random fraction of Puts under -race, so steady state is not allocation-free there; run without -race for the strict assertion")
	}
	defer par.SetLimit(par.Limit())
	par.SetLimit(1)
	p := &Pool{}
	for i := 0; i < 4; i++ { // warm the buckets
		p.Put(p.Get(1000))
		p.PutDense(p.GetDense(30, 30))
	}
	a := testing.AllocsPerRun(200, func() {
		s := p.Get(1000)
		m := p.GetDense(30, 30)
		p.PutDense(m)
		p.Put(s)
	})
	if a > 0.5 {
		t.Errorf("steady-state Get/Put allocates %v times per cycle, want ~0", a)
	}
}

// The Into variants must agree bit-for-bit with their allocating
// counterparts — they share the same accumulate kernels after a clear.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	a := fill(17, 23, 1)
	b := fill(23, 9, 2)
	bt := b.T()
	dst := Scratch.GetDense(17, 9)
	defer Scratch.PutDense(dst)

	MulInto(dst, a, b)
	requireEqual(t, "MulInto", dst, Mul(a, b))
	MulABtInto(dst, a, bt)
	requireEqual(t, "MulABtInto", dst, MulABt(a, bt))
	at := a.T()
	dst2 := Scratch.GetDense(17, 9)
	defer Scratch.PutDense(dst2)
	MulAtBInto(dst2, at, b)
	requireEqual(t, "MulAtBInto", dst2, MulAtB(at, b))

	idx := []int{3, 0, 16, 7}
	sub := Scratch.GetDense(len(idx), a.Cols)
	defer Scratch.PutDense(sub)
	TakeRowsInto(sub, a, idx)
	requireEqual(t, "TakeRowsInto", sub, TakeRows(a, idx))

	norms := RowNormsInto(Scratch.Get(a.Rows), a)
	defer Scratch.Put(norms)
	for r := 0; r < a.Rows; r++ {
		if norms[r] != Dot(a.Row(r), a.Row(r)) {
			t.Fatalf("RowNormsInto row %d: %v vs %v", r, norms[r], Dot(a.Row(r), a.Row(r)))
		}
	}
}

func TestIntoVariantsShapePanics(t *testing.T) {
	a := fill(4, 5, 1)
	b := fill(5, 3, 2)
	bad := New(4, 4)
	for name, f := range map[string]func(){
		"MulInto":      func() { MulInto(bad, a, b) },
		"MulABtInto":   func() { MulABtInto(bad, a, b.T()) },
		"MulAtBInto":   func() { MulAtBInto(bad, a.T(), b) },
		"TakeRowsInto": func() { TakeRowsInto(bad, a, []int{0, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on shape mismatch", name)
				}
			}()
			f()
		}()
	}
}

func fill(r, c int, seed float64) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = math.Sin(seed + float64(i)*0.37)
	}
	return m
}

func requireEqual(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, got.Data[i], want.Data[i])
		}
	}
}
