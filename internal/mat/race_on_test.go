//go:build race

package mat

// raceEnabled relaxes pool-reuse assertions: under the race detector
// sync.Pool intentionally drops a fraction of Puts to shake out lifetime
// bugs, so reuse is probabilistic rather than guaranteed.
const raceEnabled = true
