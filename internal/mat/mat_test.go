package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("New not zeroed: %v", m.Data)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(-1, 2)
}

func TestNewFromDataLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = -1
	if m.At(1, 0) != -1 {
		t.Fatal("Row must alias storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestSlice(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Slice(1, 3, 0, 2)
	want := NewFromRows([][]float64{{4, 5}, {7, 8}})
	if !Equal(s, want, 0) {
		t.Fatalf("Slice = %v, want %v", s, want)
	}
}

func TestSliceOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Slice(0, 3, 0, 1)
}

func TestTranspose(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	want := NewFromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !Equal(tr, want, 0) {
		t.Fatalf("T = %v, want %v", tr, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randDense(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		return Equal(m.T().T(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	if got := Add(a, b); !Equal(got, NewFromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, NewFromRows([][]float64{{4, 4}, {4, 4}}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(2, a); !Equal(got, NewFromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	c := a.Clone()
	AddInPlace(c, b)
	if !Equal(c, Add(a, b), 0) {
		t.Fatal("AddInPlace disagrees with Add")
	}
	d := a.Clone()
	ScaleInPlace(d, 3)
	if !Equal(d, Scale(3, a), 0) {
		t.Fatal("ScaleInPlace disagrees with Scale")
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2, 2), New(2, 3))
}

func TestMulKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if got := Mul(a, b); !Equal(got, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 5, 5)
	if !Equal(Mul(m, Identity(5)), m, 1e-12) || !Equal(Mul(Identity(5), m), m, 1e-12) {
		t.Fatal("identity is not neutral for Mul")
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

// Property: MulAtB(a, b) == Mul(a.T(), b) and MulABt(a, b) == Mul(a, b.T()).
func TestFusedTransposeProductsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, m := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randDense(rng, n, k)
		b := randDense(rng, n, m)
		c := randDense(rng, m, k)
		return Equal(MulAtB(a, b), Mul(a.T(), b), 1e-10) &&
			Equal(MulABt(a, c), Mul(a, c.T()), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVec(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := MulVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestColMeansAndSums(t *testing.T) {
	m := NewFromRows([][]float64{{1, 10}, {3, 20}})
	means := ColMeans(m)
	if means[0] != 2 || means[1] != 15 {
		t.Fatalf("ColMeans = %v", means)
	}
	sums := ColSums(m)
	if sums[0] != 4 || sums[1] != 30 {
		t.Fatalf("ColSums = %v", sums)
	}
	empty := ColMeans(New(0, 3))
	for _, v := range empty {
		if v != 0 {
			t.Fatal("ColMeans of empty matrix must be zeros")
		}
	}
}

func TestSubRowVecCentersColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 20, 4)
	SubRowVec(m, ColMeans(m))
	for j, v := range ColMeans(m) {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("column %d mean after centering = %v", j, v)
		}
	}
}

func TestVStackHStack(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := NewFromRows([][]float64{{3, 4}, {5, 6}})
	v := VStack(a, nil, b)
	if !Equal(v, NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}}), 0) {
		t.Fatalf("VStack = %v", v)
	}
	h := HStack(b, b)
	if !Equal(h, NewFromRows([][]float64{{3, 4, 3, 4}, {5, 6, 5, 6}}), 0) {
		t.Fatalf("HStack = %v", h)
	}
	if e := VStack(); e.Rows != 0 || e.Cols != 0 {
		t.Fatal("empty VStack should be 0x0")
	}
}

func TestTakeRows(t *testing.T) {
	m := NewFromRows([][]float64{{0, 0}, {1, 1}, {2, 2}})
	got := TakeRows(m, []int{2, 0})
	if !Equal(got, NewFromRows([][]float64{{2, 2}, {0, 0}}), 0) {
		t.Fatalf("TakeRows = %v", got)
	}
}

func TestNorm2(t *testing.T) {
	m := NewFromRows([][]float64{{3, 4}})
	if Norm2(m) != 5 {
		t.Fatalf("Norm2 = %v, want 5", Norm2(m))
	}
}

func TestEigSymDiagonal(t *testing.T) {
	vals, vecs, err := EigSym(Diag([]float64{1, 5, 3}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i, v := range want {
		if math.Abs(vals[i]-v) > 1e-10 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// The top eigenvector must be ±e_1 (the index of value 5).
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-10 {
		t.Fatalf("top eigenvector = col0 of %v", vecs)
	}
}

func TestEigSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt2.
	r := vecs.At(0, 0) / vecs.At(1, 0)
	if math.Abs(r-1) > 1e-8 {
		t.Fatalf("top eigenvector ratio = %v, want 1", r)
	}
}

// Property: for a random symmetric matrix, A·v_i = λ_i·v_i, eigenvectors are
// orthonormal, and eigenvalues come back sorted descending.
func TestEigSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := randDense(rng, n, n)
		a := MulAtB(g, g) // symmetric PSD
		vals, vecs, err := EigSym(a)
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				return false
			}
		}
		// A·V == V·diag(vals)
		av := Mul(a, vecs)
		vd := Mul(vecs, Diag(vals))
		if !Equal(av, vd, 1e-7*(1+Norm2(a))) {
			return false
		}
		// VᵀV == I
		return Equal(MulAtB(vecs, vecs), Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEigSymTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	g := randDense(rng, n, n)
	a := MulAtB(g, g)
	var trace float64
	for i := 0; i < n; i++ {
		trace += a.At(i, i)
	}
	vals, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-trace) > 1e-8*math.Abs(trace) {
		t.Fatalf("sum of eigenvalues %v != trace %v", sum, trace)
	}
}

func TestIdentityDiag(t *testing.T) {
	if !Equal(Identity(3), Diag([]float64{1, 1, 1}), 0) {
		t.Fatal("Identity(3) != Diag(ones)")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewFromRows([][]float64{{1, 2}})
	if small.String() == "" {
		t.Fatal("empty String for small matrix")
	}
	big := New(100, 100)
	if big.String() != "Dense(100x100)" {
		t.Fatalf("large String = %q", big.String())
	}
}

func BenchmarkMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randDense(rng, 128, 128)
	y := randDense(rng, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkEigSym64(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := randDense(rng, 64, 64)
	a := MulAtB(g, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigSym(a); err != nil {
			b.Fatal(err)
		}
	}
}
