// Package mat provides the dense linear-algebra kernels the rest of the
// library is built on: a row-major dense matrix type, GEMM, transposed
// products, and a symmetric eigendecomposition (the replacement for
// numpy.linalg.eigh used by the PCA covariance method in the paper).
//
// The hot kernels (Mul, MulAtB, MulABt, MulVec, the Jacobi rotations of
// EigSym) are cache-blocked and row-band parallel on the bounded
// internal/par pool, sharing the unrolled Dot/Axpy micro-kernels in
// kernels.go. Kernel parallelism composes with the task-level parallelism
// of internal/compss through par.SetLimit — see the par package comment for
// the oversubscription contract. At par.SetLimit(1) every kernel runs
// serially on its caller, mirroring how dislib runs serial NumPy kernels
// inside PyCOMPSs tasks.
//
// # Public surface
//
// Dense is the matrix type — all fields exported (Rows, Cols, Data) so
// values gob-serialize for the out-of-process backend without adapters.
// Constructors (New, VStack, HStack), element ops (Add, Sub, Scale and
// their InPlace forms), products (Mul, MulAdd, MulAtB, MulABt, MulVec) and
// EigSym cover what the estimators need.
//
// # Concurrency and ownership
//
// A Dense has no hidden state: whoever holds the only reference may mutate
// it; once shared (published as a task result, passed as a task argument)
// it must be treated as immutable. Kernels never alias their output with an
// input unless the name says so (the *InPlace forms). Concurrent reads are
// always safe; concurrent writes are the caller's problem.
package mat
