package mat

import "fmt"

// This file holds the destination-reusing entry points of the GEMM layer:
// the *Into variants overwrite a caller-provided matrix instead of
// allocating one, so hot loops can keep a pooled scratch destination (see
// pool.go) alive across iterations. Each is the exact arithmetic of its
// allocating counterpart — zero the destination, then the shared accumulate
// kernel — so results are bit-identical to Mul/MulABt/MulAtB.

// Zero clears every element of m.
func Zero(m *Dense) { clear(m.Data) }

// MulInto computes dst = a·b, overwriting dst. dst must be pre-shaped to
// a.Rows×b.Cols and must not alias a or b.
func MulInto(dst, a, b *Dense) {
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	clear(dst.Data)
	MulAdd(dst, a, b)
}

// MulABtInto computes dst = a·bᵀ, overwriting dst. dst must be pre-shaped
// to a.Rows×b.Rows and must not alias a or b.
func MulABtInto(dst, a, b *Dense) {
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulABtInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	clear(dst.Data)
	MulABtAdd(dst, a, b)
}

// MulAtBInto computes dst = aᵀ·b, overwriting dst. dst must be pre-shaped
// to a.Cols×b.Cols and must not alias a or b.
func MulAtBInto(dst, a, b *Dense) {
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAtBInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	clear(dst.Data)
	MulAtBAdd(dst, a, b)
}

// TakeRowsInto copies the rows of m selected by idx into dst, which must be
// pre-shaped to len(idx)×m.Cols. It is TakeRows without the allocation.
func TakeRowsInto(dst, m *Dense, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("mat: TakeRowsInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, len(idx), m.Cols))
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
}

// RowNormsInto writes ‖row‖² for every row of x into dst (len ≥ x.Rows),
// via the shared Dot micro-kernel, and returns dst[:x.Rows].
func RowNormsInto(dst []float64, x *Dense) []float64 {
	dst = dst[:x.Rows]
	for i := range dst {
		row := x.Row(i)
		dst[i] = Dot(row, row)
	}
	return dst
}
