package mat

import (
	"errors"
	"fmt"
	"math"

	"taskml/internal/par"
)

// Dense is a row-major dense matrix of float64.
//
// The zero value is an empty (0×0) matrix. Data is stored contiguously:
// element (i, j) lives at Data[i*Cols+j].
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewFromData wraps data (not copied) as an r×c matrix.
// It panics if len(data) != r*c.
func NewFromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// NewFromRows builds a matrix by copying the given rows. All rows must have
// equal length. An empty input yields a 0×0 matrix.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Slice returns a copy of the sub-matrix with rows [r0, r1) and columns
// [c0, c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: slice [%d:%d, %d:%d] out of bounds for %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Equal reports whether a and b have identical shape and elements within tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Add stores a+b into a new matrix. Shapes must match.
func Add(a, b *Dense) *Dense {
	checkSameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub stores a-b into a new matrix. Shapes must match.
func Sub(a, b *Dense) *Dense {
	checkSameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a. Shapes must match.
func AddInPlace(a, b *Dense) {
	checkSameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale returns s*a as a new matrix.
func Scale(s float64, a *Dense) *Dense {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = s * v
	}
	return out
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(a *Dense, s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

func checkSameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Mul computes the matrix product a·b with the cache-blocked,
// row-band-parallel GEMM kernel (see MulAdd in kernels.go).
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MulAdd(out, a, b)
	return out
}

// MulAtB computes aᵀ·b without materialising the transpose. This is the
// kernel behind the PCA covariance step (xᵀx) of the paper's §III-B.4.
func MulAtB(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulAtB shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	MulAtBAdd(out, a, b)
	return out
}

// MulABt computes a·bᵀ. Used for pairwise dot products between row-sample
// blocks (KNN distance computation, RBF kernels).
func MulABt(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulABt shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	MulABtAdd(out, a, b)
	return out
}

// MulVec computes the matrix-vector product a·x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	par.For(a.Rows, rowGrain(a.Rows, 2*float64(a.Cols)), func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			out[i] = Dot(a.Row(i), x)
		}
	})
	return out
}

// ColMeans returns the per-column mean of m. A 0-row matrix yields zeros.
func ColMeans(m *Dense) []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// ColSums returns the per-column sum of m.
func ColSums(m *Dense) []float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// SubRowVec subtracts vector v from every row of m, in place.
func SubRowVec(m *Dense, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: SubRowVec length %d vs %d cols", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] -= v[j]
		}
	}
}

// VStack concatenates matrices vertically. All inputs must share a column
// count; nil or empty inputs are skipped.
func VStack(ms ...*Dense) *Dense {
	rows, cols := 0, -1
	for _, m := range ms {
		if m == nil || m.Rows == 0 {
			continue
		}
		if cols == -1 {
			cols = m.Cols
		} else if m.Cols != cols {
			panic(fmt.Sprintf("mat: VStack column mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	if cols == -1 {
		return New(0, 0)
	}
	out := New(rows, cols)
	at := 0
	for _, m := range ms {
		if m == nil || m.Rows == 0 {
			continue
		}
		copy(out.Data[at*cols:], m.Data)
		at += m.Rows
	}
	return out
}

// HStack concatenates matrices horizontally. All inputs must share a row
// count.
func HStack(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		at := 0
		for _, m := range ms {
			copy(out.Row(i)[at:at+m.Cols], m.Row(i))
			at += m.Cols
		}
	}
	return out
}

// TakeRows returns a new matrix with the rows of m selected by idx, in order.
func TakeRows(m *Dense, idx []int) *Dense {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Norm2 returns the Euclidean (Frobenius) norm of the matrix elements,
// through the shared unrolled dot micro-kernel.
func Norm2(m *Dense) float64 {
	return math.Sqrt(Dot(m.Data, m.Data))
}

// ErrNotConverged is returned by iterative solvers that exhaust their sweep
// budget before reaching the requested tolerance.
var ErrNotConverged = errors.New("mat: iteration did not converge")

// EigSym computes the eigendecomposition of the symmetric matrix a using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// matching unit eigenvectors as the *columns* of the returned matrix, the
// same convention as numpy.linalg.eigh after a descending sort (which is
// what dislib's PCA does with the covariance matrix).
//
// a is not modified. Symmetry is assumed; only the upper triangle is
// trusted. EigSym returns ErrNotConverged if off-diagonal mass remains after
// the sweep budget, with the best available approximation still returned.
func EigSym(a *Dense) (vals []float64, vecs *Dense, err error) {
	n := a.Rows
	if n != a.Cols {
		panic(fmt.Sprintf("mat: EigSym on non-square %dx%d", n, a.Cols))
	}
	w := a.Clone()
	// Symmetrise from the upper triangle so tiny asymmetries from
	// accumulated floating error cannot bias the rotations.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w.At(i, j)
			w.Set(j, i, v)
		}
	}
	v := Identity(n)

	const maxSweeps = 64
	tol := 1e-11 * offDiagNorm(w)
	if tol == 0 {
		tol = 1e-300
	}
	converged := false
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiagNorm(w) <= tol {
			converged = true
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	if !converged && offDiagNorm(w) > tol {
		err = ErrNotConverged
	}

	vals = make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	order := argsortDesc(vals)
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for newCol, oldCol := range order {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, err
}

// rotateGrain is the minimum row-chunk per goroutine when a Jacobi rotation
// is applied in parallel: a rotation is O(n) work, so only large matrices
// (the wide-feature PCA covariances) clear it; small ones run serially.
const rotateGrain = 384

// rotate applies the Jacobi rotation J(p,q,c,s) as w ← JᵀwJ and accumulates
// it into the eigenvector matrix v ← vJ. The column update (pass 1) must
// fully precede the row update (pass 2) because the row pass reads the
// rotated 2×2 pivot block; within a pass every k is independent, so each
// pass is chunk-parallel across k. The eigenvector column update is
// independent of w and rides in the second pass. The arithmetic per element
// is identical to the serial form, so results are bit-for-bit equal
// regardless of the chunking.
func rotate(w, v *Dense, p, q int, c, s float64) {
	n := w.Rows
	par.For(n, rotateGrain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			wkp, wkq := w.At(k, p), w.At(k, q)
			w.Set(k, p, c*wkp-s*wkq)
			w.Set(k, q, s*wkp+c*wkq)
		}
	})
	par.For(n, rotateGrain, func(lo, hi int) {
		prow, qrow := w.Row(p), w.Row(q)
		for k := lo; k < hi; k++ {
			wpk, wqk := prow[k], qrow[k]
			prow[k] = c*wpk - s*wqk
			qrow[k] = s*wpk + c*wqk
		}
		for k := lo; k < hi; k++ {
			vkp, vkq := v.At(k, p), v.At(k, q)
			v.Set(k, p, c*vkp-s*vkq)
			v.Set(k, q, s*vkp+c*vkq)
		}
	})
}

func offDiagNorm(m *Dense) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				v := m.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

func argsortDesc(vals []float64) []int {
	order := make([]int, len(vals))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: n is the feature count after reduction, small enough,
	// and we avoid importing sort for a closure-based Slice here.
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && vals[order[j-1]] < vals[order[j]] {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	return order
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with v on the diagonal.
func Diag(v []float64) *Dense {
	m := New(len(v), len(v))
	for i, x := range v {
		m.Set(i, i, x)
	}
	return m
}

// String renders small matrices for debugging; large matrices are
// abbreviated to their shape.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
