// Package sigproc implements the signal-processing kernels of the paper's
// feature-extraction pipeline (§III-B): zero-padding, window functions, a
// radix-2 FFT, and the Short-Time Fourier Transform spectrogram that SciPy's
// signal.spectrogram provides in the original implementation. The paper
// flattens the spectrogram into a 1-D feature vector that feeds PCA and the
// classifiers.
package sigproc

import (
	"fmt"
	"math"
	"math/cmplx"

	"taskml/internal/mat"
	"taskml/internal/par"
)

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the discrete Fourier transform of x with an iterative
// radix-2 Cooley-Tukey algorithm. len(x) must be a power of two (use
// NextPow2 + ZeroPadComplex to arrange it); FFT panics otherwise, as that
// is a programming error in this codebase. The input is not modified.
func FFT(x []complex128) []complex128 {
	return fft(x, false)
}

// IFFT computes the inverse DFT (normalised by 1/n).
func IFFT(x []complex128) []complex128 {
	out := fft(x, true)
	inv := 1 / float64(len(x))
	for i := range out {
		out[i] *= complex(inv, 0)
	}
	return out
}

func fft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("sigproc: FFT length %d is not a power of two", n))
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		rev := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				rev |= 1 << (bits - 1 - b)
			}
		}
		out[rev] = x[i]
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
				w *= step
			}
		}
	}
	return out
}

// Hann returns the n-point Hann window (the window we use for the STFT; the
// paper's SciPy call defaults to a Tukey window — both are tapered cosine
// windows with equivalent effect on the downstream features).
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// ZeroPad extends (or truncates) x to length n by appending zeros — the
// paper's zero-padding step that evens out the 9-to-61-second recordings
// (§III-B.2).
func ZeroPad(x []float64, n int) []float64 {
	out := make([]float64, n)
	copy(out, x)
	return out
}

// SpectrogramConfig parameterises the STFT.
type SpectrogramConfig struct {
	// Fs is the sampling frequency in Hz (300 for the CinC recordings).
	Fs float64
	// WindowSize is the segment length (power of two).
	WindowSize int
	// Overlap is the number of samples shared by consecutive segments;
	// must be < WindowSize.
	Overlap int
}

// Validate checks the configuration.
func (c SpectrogramConfig) Validate() error {
	if c.Fs <= 0 {
		return fmt.Errorf("sigproc: Fs must be positive, got %v", c.Fs)
	}
	if !IsPow2(c.WindowSize) {
		return fmt.Errorf("sigproc: WindowSize %d must be a power of two", c.WindowSize)
	}
	if c.Overlap < 0 || c.Overlap >= c.WindowSize {
		return fmt.Errorf("sigproc: Overlap %d must be in [0, WindowSize)", c.Overlap)
	}
	return nil
}

// NumSegments returns how many STFT segments a signal of length n yields.
func (c SpectrogramConfig) NumSegments(n int) int {
	hop := c.WindowSize - c.Overlap
	if n < c.WindowSize {
		return 0
	}
	return 1 + (n-c.WindowSize)/hop
}

// NumBins returns the number of one-sided frequency bins.
func (c SpectrogramConfig) NumBins() int { return c.WindowSize/2 + 1 }

// Spectrogram computes the one-sided power spectral density spectrogram of
// x: rows are frequency bins (NumBins), columns are time segments, matching
// scipy.signal.spectrogram's layout where "each column contains an estimate
// of the short-term, time-localized frequency components" (§III-B.3).
// It also returns the bin frequencies (Hz) and segment center times (s).
func Spectrogram(x []float64, c SpectrogramConfig) (*mat.Dense, []float64, []float64, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, nil, err
	}
	nseg := c.NumSegments(len(x))
	if nseg == 0 {
		return nil, nil, nil, fmt.Errorf("sigproc: signal length %d shorter than window %d", len(x), c.WindowSize)
	}
	hop := c.WindowSize - c.Overlap
	win := Hann(c.WindowSize)
	var winPow float64
	for _, w := range win {
		winPow += w * w
	}
	scale := 1 / (c.Fs * winPow)

	nb := c.NumBins()
	out := mat.New(nb, nseg)
	// Segments are independent: each chunk gets its own window buffer and
	// writes a disjoint set of output columns, so the loop parallelises
	// cleanly over internal/par. Grain keeps a chunk at ≥ a few thousand
	// butterfly operations.
	grain := 1 + (1<<13)/c.WindowSize
	par.For(nseg, grain, func(lo, hi int) {
		buf := make([]complex128, c.WindowSize)
		for s := lo; s < hi; s++ {
			off := s * hop
			for i := 0; i < c.WindowSize; i++ {
				buf[i] = complex(x[off+i]*win[i], 0)
			}
			spec := FFT(buf)
			for b := 0; b < nb; b++ {
				p := real(spec[b])*real(spec[b]) + imag(spec[b])*imag(spec[b])
				p *= scale
				if b != 0 && b != c.WindowSize/2 {
					p *= 2 // one-sided: fold the negative frequencies
				}
				out.Set(b, s, p)
			}
		}
	})

	freqs := make([]float64, nb)
	for b := range freqs {
		freqs[b] = float64(b) * c.Fs / float64(c.WindowSize)
	}
	times := make([]float64, nseg)
	for s := range times {
		times[s] = (float64(s*hop) + float64(c.WindowSize)/2) / c.Fs
	}
	return out, freqs, times, nil
}

// Flatten concatenates the spectrogram rows into the 1-D feature vector the
// paper feeds to PCA ("the array elements are concatenated to produce a
// 1-dimensional array").
func Flatten(m *mat.Dense) []float64 {
	out := make([]float64, len(m.Data))
	copy(out, m.Data)
	return out
}

// FeatureLen returns the flattened feature length for signals of length n —
// the analogue of the paper's 18810-long vector.
func (c SpectrogramConfig) FeatureLen(n int) int {
	return c.NumBins() * c.NumSegments(n)
}
