package sigproc

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"taskml/internal/mat"
	"taskml/internal/par"
)

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the discrete Fourier transform of x with an iterative
// radix-2 Cooley-Tukey algorithm. len(x) must be a power of two (use
// NextPow2 + ZeroPadComplex to arrange it); FFT panics otherwise, as that
// is a programming error in this codebase. The input is not modified.
func FFT(x []complex128) []complex128 {
	return fft(x, false)
}

// IFFT computes the inverse DFT (normalised by 1/n).
func IFFT(x []complex128) []complex128 {
	out := fft(x, true)
	inv := 1 / float64(len(x))
	for i := range out {
		out[i] *= complex(inv, 0)
	}
	return out
}

func fft(x []complex128, inverse bool) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, inverse)
	return out
}

// fftInPlace transforms x in place: the bit-reversal permutation is an
// involution, so it reduces to swaps, and the butterfly passes already
// operate on the permuted array. Identical arithmetic (and therefore
// bit-identical output) to the allocating form — this is the work-buffer
// kernel Plan reuses across STFT segments.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("sigproc: FFT length %d is not a power of two", n))
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		rev := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				rev |= 1 << (bits - 1 - b)
			}
		}
		if i < rev {
			x[i], x[rev] = x[rev], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
}

// Hann returns the n-point Hann window (the window we use for the STFT; the
// paper's SciPy call defaults to a Tukey window — both are tapered cosine
// windows with equivalent effect on the downstream features).
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// ZeroPad extends (or truncates) x to length n by appending zeros — the
// paper's zero-padding step that evens out the 9-to-61-second recordings
// (§III-B.2).
func ZeroPad(x []float64, n int) []float64 {
	out := make([]float64, n)
	copy(out, x)
	return out
}

// SpectrogramConfig parameterises the STFT.
type SpectrogramConfig struct {
	// Fs is the sampling frequency in Hz (300 for the CinC recordings).
	Fs float64
	// WindowSize is the segment length (power of two).
	WindowSize int
	// Overlap is the number of samples shared by consecutive segments;
	// must be < WindowSize.
	Overlap int
}

// Validate checks the configuration.
func (c SpectrogramConfig) Validate() error {
	if c.Fs <= 0 {
		return fmt.Errorf("sigproc: Fs must be positive, got %v", c.Fs)
	}
	if !IsPow2(c.WindowSize) {
		return fmt.Errorf("sigproc: WindowSize %d must be a power of two", c.WindowSize)
	}
	if c.Overlap < 0 || c.Overlap >= c.WindowSize {
		return fmt.Errorf("sigproc: Overlap %d must be in [0, WindowSize)", c.Overlap)
	}
	return nil
}

// NumSegments returns how many STFT segments a signal of length n yields.
func (c SpectrogramConfig) NumSegments(n int) int {
	hop := c.WindowSize - c.Overlap
	if n < c.WindowSize {
		return 0
	}
	return 1 + (n-c.WindowSize)/hop
}

// NumBins returns the number of one-sided frequency bins.
func (c SpectrogramConfig) NumBins() int { return c.WindowSize/2 + 1 }

// Plan is a reusable STFT execution: the Hann window, its power
// normalisation and the per-goroutine FFT work buffers are computed or
// pooled once and amortised over every Execute call with the same
// configuration. Plans are safe for concurrent use; the feature-extraction
// tasks that spectrogram thousands of recordings share one plan per
// configuration through the cache behind Spectrogram.
type Plan struct {
	cfg   SpectrogramConfig
	win   []float64
	scale float64
	bufs  sync.Pool // *[]complex128 FFT work buffers, one per goroutine

	// getFn/putFn are the pool accessors as prebuilt func values: method
	// values allocate a closure at every use site, which would put two
	// allocations back into every ExecuteInto call.
	getFn func() any
	putFn func(any)
}

// NewPlan validates c and precomputes the window.
func NewPlan(c SpectrogramConfig) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	win := Hann(c.WindowSize)
	var winPow float64
	for _, w := range win {
		winPow += w * w
	}
	p := &Plan{cfg: c, win: win, scale: 1 / (c.Fs * winPow)}
	p.getFn, p.putFn = p.getBuf, p.putBuf
	return p, nil
}

// Config returns the plan's configuration.
func (p *Plan) Config() SpectrogramConfig { return p.cfg }

func (p *Plan) getBuf() any {
	if v := p.bufs.Get(); v != nil {
		return v
	}
	b := make([]complex128, p.cfg.WindowSize)
	return &b
}

func (p *Plan) putBuf(v any) { p.bufs.Put(v) }

// Execute computes the spectrogram of x into a freshly allocated matrix
// (with bin frequencies and segment times, like Spectrogram). The result
// is independent of plan scratch and safe to publish through a Future.
func (p *Plan) Execute(x []float64) (*mat.Dense, []float64, []float64, error) {
	c := p.cfg
	nseg := c.NumSegments(len(x))
	if nseg == 0 {
		return nil, nil, nil, fmt.Errorf("sigproc: signal length %d shorter than window %d", len(x), c.WindowSize)
	}
	out := mat.New(c.NumBins(), nseg)
	p.ExecuteInto(x, out)
	freqs := make([]float64, c.NumBins())
	for b := range freqs {
		freqs[b] = float64(b) * c.Fs / float64(c.WindowSize)
	}
	hop := c.WindowSize - c.Overlap
	times := make([]float64, nseg)
	for s := range times {
		times[s] = (float64(s*hop) + float64(c.WindowSize)/2) / c.Fs
	}
	return out, freqs, times, nil
}

// ExecuteInto computes the spectrogram of x into dst, which must be
// pre-shaped to NumBins × NumSegments(len(x)) — typically pooled scratch
// when the flattened features, not the matrix itself, are what escapes.
// The per-segment loop is allocation-free: FFT work buffers come from the
// plan's pool, one per participating goroutine (par.ForScratch), and are
// returned when the region drains.
func (p *Plan) ExecuteInto(x []float64, dst *mat.Dense) {
	c := p.cfg
	nseg := c.NumSegments(len(x))
	nb := c.NumBins()
	if dst.Rows != nb || dst.Cols != nseg {
		panic(fmt.Sprintf("sigproc: ExecuteInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, nb, nseg))
	}
	hop := c.WindowSize - c.Overlap
	win := p.win
	scale := p.scale
	// Segments are independent: each goroutine reuses one work buffer for
	// all its chunks and writes a disjoint set of output columns. Grain
	// keeps a chunk at ≥ a few thousand butterfly operations.
	grain := 1 + (1<<13)/c.WindowSize
	par.ForScratch(nseg, grain, p.getFn, p.putFn, func(lo, hi int, scratch any) {
		buf := *(scratch.(*[]complex128))
		for s := lo; s < hi; s++ {
			off := s * hop
			for i := 0; i < c.WindowSize; i++ {
				buf[i] = complex(x[off+i]*win[i], 0)
			}
			fftInPlace(buf, false)
			for b := 0; b < nb; b++ {
				pw := real(buf[b])*real(buf[b]) + imag(buf[b])*imag(buf[b])
				pw *= scale
				if b != 0 && b != c.WindowSize/2 {
					pw *= 2 // one-sided: fold the negative frequencies
				}
				dst.Set(b, s, pw)
			}
		}
	})
}

// plans caches one Plan per configuration so repeated Spectrogram calls —
// the per-recording feature tasks — share windows and work buffers.
var plans sync.Map // SpectrogramConfig → *Plan

// PlanFor returns the cached plan for c, creating it on first use.
func PlanFor(c SpectrogramConfig) (*Plan, error) {
	if v, ok := plans.Load(c); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(c)
	if err != nil {
		return nil, err
	}
	v, _ := plans.LoadOrStore(c, p)
	return v.(*Plan), nil
}

// Spectrogram computes the one-sided power spectral density spectrogram of
// x: rows are frequency bins (NumBins), columns are time segments, matching
// scipy.signal.spectrogram's layout where "each column contains an estimate
// of the short-term, time-localized frequency components" (§III-B.3).
// It also returns the bin frequencies (Hz) and segment center times (s).
// Repeated calls with the same configuration reuse a cached Plan.
func Spectrogram(x []float64, c SpectrogramConfig) (*mat.Dense, []float64, []float64, error) {
	p, err := PlanFor(c)
	if err != nil {
		return nil, nil, nil, err
	}
	return p.Execute(x)
}

// Flatten concatenates the spectrogram rows into the 1-D feature vector the
// paper feeds to PCA ("the array elements are concatenated to produce a
// 1-dimensional array").
func Flatten(m *mat.Dense) []float64 {
	out := make([]float64, len(m.Data))
	copy(out, m.Data)
	return out
}

// FeatureLen returns the flattened feature length for signals of length n —
// the analogue of the paper's 18810-long vector.
func (c SpectrogramConfig) FeatureLen(n int) int {
	return c.NumBins() * c.NumSegments(n)
}
