package sigproc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"taskml/internal/mat"
	"taskml/internal/par"
)

// naiveDFT is the O(n²) reference the FFT is validated against.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Fatalf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Fatalf("IsPow2(%d) = true", n)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	got := FFT(x)
	for k, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("FFT(impulse)[%d] = %v, want 1", k, v)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6)) // 2..64
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		want := naiveDFT(x)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		back := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeE += real(x[i]) * real(x[i])
	}
	var freqE float64
	for _, v := range FFT(x) {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= float64(n)
	if math.Abs(timeE-freqE) > 1e-9*timeE {
		t.Fatalf("Parseval violated: time %v vs freq %v", timeE, freqE)
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	orig := append([]complex128(nil), x...)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT mutated its input")
		}
	}
}

func TestFFTNonPow2Panics(t *testing.T) {
	// A silent wrong answer here would corrupt every downstream feature, so
	// the guard must fire with a message that names the bad length.
	for _, n := range []int{3, 6, 100} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("FFT(len %d): want panic", n)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "not a power of two") {
					t.Fatalf("FFT(len %d): panic %v lacks diagnostic message", n, r)
				}
			}()
			FFT(make([]complex128, n))
		}()
	}
}

func TestHannWindow(t *testing.T) {
	w := Hann(9)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[8]) > 1e-12 {
		t.Fatalf("Hann endpoints = %v, %v, want 0", w[0], w[8])
	}
	if math.Abs(w[4]-1) > 1e-12 {
		t.Fatalf("Hann midpoint = %v, want 1", w[4])
	}
	for i := 0; i < 4; i++ {
		if math.Abs(w[i]-w[8-i]) > 1e-12 {
			t.Fatal("Hann window not symmetric")
		}
	}
	if Hann(1)[0] != 1 {
		t.Fatal("Hann(1) must be [1]")
	}
}

func TestZeroPad(t *testing.T) {
	x := []float64{1, 2, 3}
	p := ZeroPad(x, 6)
	if len(p) != 6 || p[0] != 1 || p[2] != 3 || p[3] != 0 || p[5] != 0 {
		t.Fatalf("ZeroPad = %v", p)
	}
	// Truncation case.
	tr := ZeroPad(x, 2)
	if len(tr) != 2 || tr[0] != 1 || tr[1] != 2 {
		t.Fatalf("ZeroPad truncate = %v", tr)
	}
}

func TestSpectrogramConfigValidate(t *testing.T) {
	good := SpectrogramConfig{Fs: 300, WindowSize: 64, Overlap: 32}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SpectrogramConfig{
		{Fs: 0, WindowSize: 64, Overlap: 0},
		{Fs: 300, WindowSize: 60, Overlap: 0},
		{Fs: 300, WindowSize: 64, Overlap: 64},
		{Fs: 300, WindowSize: 64, Overlap: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid: %+v", i, c)
		}
	}
}

func TestSpectrogramShape(t *testing.T) {
	c := SpectrogramConfig{Fs: 300, WindowSize: 64, Overlap: 32}
	n := 640
	x := make([]float64, n)
	m, freqs, times, err := Spectrogram(x, c)
	if err != nil {
		t.Fatal(err)
	}
	wantSegs := c.NumSegments(n)
	if m.Rows != 33 || m.Cols != wantSegs {
		t.Fatalf("spectrogram shape %dx%d, want 33x%d", m.Rows, m.Cols, wantSegs)
	}
	if len(freqs) != 33 || len(times) != wantSegs {
		t.Fatalf("axes lengths %d, %d", len(freqs), len(times))
	}
	if freqs[0] != 0 || math.Abs(freqs[32]-150) > 1e-9 {
		t.Fatalf("freq axis = [%v .. %v], want [0 .. 150] (Nyquist)", freqs[0], freqs[32])
	}
	if c.FeatureLen(n) != 33*wantSegs {
		t.Fatalf("FeatureLen = %d", c.FeatureLen(n))
	}
}

func TestSpectrogramTooShortSignal(t *testing.T) {
	c := SpectrogramConfig{Fs: 300, WindowSize: 64, Overlap: 0}
	if _, _, _, err := Spectrogram(make([]float64, 10), c); err == nil {
		t.Fatal("want error for short signal")
	}
}

func TestSpectrogramLocatesSinusoid(t *testing.T) {
	// A 30 Hz tone sampled at 300 Hz must put its energy in the 30 Hz bin.
	c := SpectrogramConfig{Fs: 300, WindowSize: 128, Overlap: 64}
	n := 1500
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 30 * float64(i) / 300)
	}
	m, freqs, _, err := Spectrogram(x, c)
	if err != nil {
		t.Fatal(err)
	}
	// Average power per bin across segments.
	best, bestPow := -1, 0.0
	for b := 0; b < m.Rows; b++ {
		var p float64
		for s := 0; s < m.Cols; s++ {
			p += m.At(b, s)
		}
		if p > bestPow {
			best, bestPow = b, p
		}
	}
	if math.Abs(freqs[best]-30) > c.Fs/float64(c.WindowSize)+1e-9 {
		t.Fatalf("peak at %v Hz, want ~30 Hz", freqs[best])
	}
}

func TestSpectrogramNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	m, _, _, err := Spectrogram(x, SpectrogramConfig{Fs: 300, WindowSize: 64, Overlap: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Data {
		if v < 0 {
			t.Fatalf("negative PSD value %v", v)
		}
	}
}

func TestFlattenLengthAndOrder(t *testing.T) {
	c := SpectrogramConfig{Fs: 300, WindowSize: 64, Overlap: 0}
	x := make([]float64, 256)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	m, _, _, err := Spectrogram(x, c)
	if err != nil {
		t.Fatal(err)
	}
	flat := Flatten(m)
	if len(flat) != m.Rows*m.Cols {
		t.Fatalf("Flatten length = %d, want %d", len(flat), m.Rows*m.Cols)
	}
	if flat[m.Cols] != m.At(1, 0) {
		t.Fatal("Flatten must be row-major")
	}
	// Flatten must copy, not alias.
	flat[0] = 12345
	if m.Data[0] == 12345 {
		t.Fatal("Flatten aliases the spectrogram")
	}
}

// The STFT segments are computed in parallel chunks; the result must be
// bit-for-bit the same as the serial sweep (each segment's arithmetic is
// untouched by the chunking).
func TestSpectrogramBitIdenticalAcrossLimits(t *testing.T) {
	defer par.SetLimit(runtime.GOMAXPROCS(0))
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c := SpectrogramConfig{Fs: 300, WindowSize: 128, Overlap: 64}
	par.SetLimit(1)
	serial, _, _, err := Spectrogram(x, c)
	if err != nil {
		t.Fatal(err)
	}
	par.SetLimit(8)
	parallel, _, _, err := Spectrogram(x, c)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(serial, parallel, 0) {
		t.Fatal("parallel spectrogram differs from serial")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkSpectrogram18000(b *testing.B) {
	// Roughly one zero-padded 60 s ECG at 300 Hz.
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 18000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c := SpectrogramConfig{Fs: 300, WindowSize: 256, Overlap: 32}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Spectrogram(x, c); err != nil {
			b.Fatal(err)
		}
	}
}
