//go:build !race

package sigproc

const raceEnabled = false
