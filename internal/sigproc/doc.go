// Package sigproc implements the signal-processing kernels of the paper's
// feature-extraction pipeline (§III-B): zero-padding, window functions, a
// radix-2 FFT, and the Short-Time Fourier Transform spectrogram that SciPy's
// signal.spectrogram provides in the original implementation. The paper
// flattens the spectrogram into a 1-D feature vector that feeds PCA and the
// classifiers.
//
// # Public surface
//
// FFT / IFFT, Hann, ZeroPad, and the STFT plan machinery (PlanFor caches
// one plan per configuration; Execute / ExecuteInto run it, the Into form
// writing into caller-owned scratch for the allocation-free hot path).
//
// # Concurrency and ownership
//
// The free functions are pure. Plans are immutable after construction and
// safe to share; the plan cache is lock-protected. ExecuteInto's output
// buffer is caller-owned scratch — the bit-identity of Execute and
// ExecuteInto is tested, so either form may be used anywhere.
package sigproc
