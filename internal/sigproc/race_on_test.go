//go:build race

package sigproc

// Under the race detector sync.Pool drops a random fraction of Puts, so the
// plan's per-goroutine FFT buffers are not guaranteed to be reused and the
// strict alloc-free assertion does not hold there.
const raceEnabled = true
