package sigproc

import (
	"math/rand"
	"testing"

	"taskml/internal/mat"
	"taskml/internal/par"
)

func planTestSignal(n int) []float64 {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestPlanForCachesPerConfig(t *testing.T) {
	c := SpectrogramConfig{Fs: 300, WindowSize: 64, Overlap: 32}
	p1, err := PlanFor(c)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("PlanFor returned distinct plans for the same configuration")
	}
	other := SpectrogramConfig{Fs: 300, WindowSize: 128, Overlap: 32}
	p3, err := PlanFor(other)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("PlanFor shared a plan across configurations")
	}
	if _, err := PlanFor(SpectrogramConfig{Fs: 300, WindowSize: 63, Overlap: 32}); err == nil {
		t.Fatal("want validation error for non-power-of-two window")
	}
}

func TestExecuteIntoMatchesExecuteBitIdentical(t *testing.T) {
	c := SpectrogramConfig{Fs: 300, WindowSize: 128, Overlap: 64}
	p, err := NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	x := planTestSignal(3000)
	ref, _, _, err := p.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{1, 4} {
		func() {
			defer par.SetLimit(par.Limit())
			par.SetLimit(limit)
			dst := mat.Scratch.GetDense(c.NumBins(), c.NumSegments(len(x)))
			defer mat.Scratch.PutDense(dst)
			p.ExecuteInto(x, dst)
			for i := range ref.Data {
				if dst.Data[i] != ref.Data[i] {
					t.Fatalf("limit %d: element %d differs: %v vs %v", limit, i, dst.Data[i], ref.Data[i])
				}
			}
		}()
	}
}

func TestExecuteIntoShapePanics(t *testing.T) {
	c := SpectrogramConfig{Fs: 300, WindowSize: 64, Overlap: 32}
	p, err := NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mis-shaped dst")
		}
	}()
	p.ExecuteInto(planTestSignal(640), mat.New(3, 3))
}

// The per-segment STFT loop is the feature-extraction hot path: after the
// plan's work buffers are warm, a whole ExecuteInto must stay (near)
// allocation-free regardless of how many segments it covers. The bound
// leaves headroom for a background GC emptying the sync.Pools mid-loop.
func TestSTFTSegmentLoopAllocFree(t *testing.T) {
	defer par.SetLimit(par.Limit())
	par.SetLimit(1)
	c := SpectrogramConfig{Fs: 300, WindowSize: 256, Overlap: 32}
	p, err := NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	x := planTestSignal(18000)
	nseg := c.NumSegments(len(x))
	dst := mat.Scratch.GetDense(c.NumBins(), nseg)
	defer mat.Scratch.PutDense(dst)
	p.ExecuteInto(x, dst) // warm the buffer pool
	a := testing.AllocsPerRun(50, func() { p.ExecuteInto(x, dst) })
	limit := 1.0
	if raceEnabled {
		// ~1/4 of pool Puts are dropped under -race, so a fraction of calls
		// re-allocate their FFT buffer; keep the bound, just looser.
		limit = 3
	}
	if a > limit {
		t.Errorf("ExecuteInto allocates %v times per call over %d segments, want ~0", a, nseg)
	}
}

// BenchmarkSpectrogramPlan18000 is BenchmarkSpectrogram18000 with the plan
// held and the output reused — the steady-state regime of the per-recording
// feature tasks; the -benchmem delta against the allocating benchmark is
// this PR's headline for sigproc.
func BenchmarkSpectrogramPlan18000(b *testing.B) {
	x := planTestSignal(18000)
	c := SpectrogramConfig{Fs: 300, WindowSize: 256, Overlap: 32}
	p, err := NewPlan(c)
	if err != nil {
		b.Fatal(err)
	}
	dst := mat.Scratch.GetDense(c.NumBins(), c.NumSegments(len(x)))
	defer mat.Scratch.PutDense(dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ExecuteInto(x, dst)
	}
}
