// Package serve is the always-on inference service over the deployment
// half of the paper's Figure 1: where internal/edge simulates one wearable
// monitoring one patient, a serve.Server multiplexes thousands of
// concurrent ECG streams onto a single task runtime, so continuous
// inference rides the same work-stealing executor, data plane and elastic
// fleet that trained the model (the hybrid task/dataflow shape from
// PAPERS.md, with Compass-style per-request latency targets).
//
// # Public surface
//
// New builds a Server from a compss.Runtime and a Config holding the
// window geometry (edge.Config), a Scorer that submits one micro-batch of
// windows as a task and resolves to their labels, the latency SLO and the
// batcher/buffer bounds. Admit opens a Stream or returns a *CapacityError;
// Stream.Push feeds raw samples; alarms surface through Config.OnAlarm
// (and Stream.Events under RecordEvents). Flush, WaitIdle and Close drain;
// Metrics and Stream.Stats expose the accounting; Config.Hook streams
// Samples to the trace layer.
//
// # Data path
//
// Each stream owns the two halves of an edge.Monitor: an edge.Windower
// cuts analysis windows on Push, and an edge.Debouncer applies scored
// labels in stream order. Between them sits the cross-stream micro-batcher:
// ready windows from all streams join one FIFO queue, flushed into a
// scoring task when MaxBatch accumulate (size path) or when the oldest has
// waited MaxDelay (deadline path). Batches complete in any order; a
// per-stream reorder buffer holds results until every earlier window of
// that stream is terminal, so the Debouncer sees exactly the label
// sequence the synchronous Monitor would — which is what makes served
// alarms bit-identical to batch edge.Run on the same signal.
//
// # Overload behaviour
//
// Load is refused, never silently degraded, at two points. Admission:
// Admit projects the p99 serving latency with the candidate stream's
// steady-state load added (measured latency histogram scaled by M/M/1
// waiting-time growth over the EWMA per-window service time) and rejects
// with a *CapacityError when the projection exceeds the SLO or utilisation
// would cross Headroom. Backpressure: each stream's ingress buffer holds
// at most StreamBuffer unflushed windows; a newer window sheds the oldest,
// counted on the stream and the server and reported through Hook. A shed
// window is a gap to the Debouncer — skipped, neither extending nor
// resetting the consecutive-positive alarm chain.
//
// # Concurrency and ownership
//
// One mutex guards all mutable server and stream state; scoring itself
// runs outside it in per-batch goroutines, and OnAlarm/Hook callbacks fire
// outside it too (possibly concurrently — they must be thread-safe).
// Exactly one goroutine may Push to a given Stream; distinct streams push
// concurrently. Window data is copied out of the Windower at cut time and
// owned by the server; Scorer implementations must treat it read-only.
// With Config.Now nil a background goroutine drives the deadline flush;
// tests inject a virtual clock via Now and call Flush explicitly.
package serve
