package serve

import "time"

// histBase is the upper bound of the first latency bucket.
const histBase = 50 * time.Microsecond

// latHist is a fixed log₂-bucket latency histogram: bucket 0 counts
// observations below histBase, bucket b counts [histBase·2^(b-1),
// histBase·2^b). Quantile returns the upper bound of the bucket holding
// the requested rank, so reported quantiles are conservative (rounded up)
// and resolution degrades with magnitude — the right trade for SLO math,
// where 12 ms vs 14 ms never changes an admission decision but 50 ms vs
// 500 ms does. The zero value is ready to use; callers provide locking.
type latHist struct {
	n       int64
	buckets [32]int64
}

func (h *latHist) add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := 0
	for t := histBase; b < len(h.buckets)-1 && d >= t; b++ {
		t *= 2
	}
	h.buckets[b]++
	h.n++
}

// quantile returns an upper bound for the q-quantile (q in [0, 1]), or 0
// when the histogram is empty.
func (h *latHist) quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(q*float64(h.n-1)) + 1
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range h.buckets {
		cum += c
		if cum >= rank {
			return histBase << b
		}
	}
	return histBase << (len(h.buckets) - 1)
}
