package serve

import (
	"time"

	"taskml/internal/edge"
)

// Stream is one admitted patient stream: a Windower cutting analysis
// windows on ingest and a Debouncer applying scored labels in stream
// order, with a bounded ingress buffer in between. Exactly one goroutine
// may Push to a given stream; distinct streams push concurrently.
type Stream struct {
	s   *Server
	id  int
	win *edge.Windower // touched only by the pushing goroutine

	// The fields below are guarded by s.mu.
	deb      *edge.Debouncer
	queued   []*window // cut but not yet flushed into a batch (prefix may be flushed/shed)
	nextSeq  int
	applySeq int
	reorder  map[int]scored
	windows  int64
	shed     int64
	scoredN  int64
	alarms   int64
	events   []edge.Event
	closed   bool
}

// ID returns the stream's server-assigned identifier.
func (st *Stream) ID() int { return st.id }

// Push appends raw samples to the stream, cutting every analysis window
// they complete and enqueueing the windows for micro-batched scoring.
// When the stream's ingress buffer is full, the oldest unflushed window is
// shed to admit the new one — freshest-data-wins, with the drop counted on
// the stream and the server. Push never blocks on scoring.
func (st *Stream) Push(samples ...float64) error {
	st.win.Push(samples...)
	s := st.s
	type cut struct {
		end  int
		data []float64
	}
	var cuts []cut
	for {
		view, end, ok := st.win.Peek()
		if !ok {
			break
		}
		data := make([]float64, len(view))
		copy(data, view)
		st.win.Advance()
		cuts = append(cuts, cut{end: end, data: data})
	}
	if len(cuts) == 0 {
		return nil
	}
	now := s.cfg.Now()
	var alarms []alarmFire
	var obs []Sample
	s.mu.Lock()
	if s.closed || st.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	for _, c := range cuts {
		// Drop the already-flushed (or shed) prefix: those windows left
		// the ingress buffer for the batcher and no longer occupy it.
		for len(st.queued) > 0 && (st.queued[0].flushed || st.queued[0].shed) {
			st.queued = st.queued[1:]
		}
		if len(st.queued) >= s.cfg.StreamBuffer {
			victim := st.queued[0]
			st.queued = st.queued[1:]
			victim.shed = true // the batcher queue discards it on contact
			s.pending--
			st.shed++
			s.shedTotal++
			st.deliverLocked(victim.seq, scored{skip: true}, now, &alarms, &obs)
			if s.cfg.Hook != nil {
				obs = append(obs, Sample{Kind: "shed", Stream: st.id,
					Pending: s.pending, InFlight: s.inflight, Streams: len(s.streams),
					Shed: s.shedTotal})
			}
		}
		w := &window{st: st, seq: st.nextSeq, end: c.end, data: c.data, ready: now}
		st.nextSeq++
		st.queued = append(st.queued, w)
		s.q = append(s.q, w)
		s.pending++
		s.windows++
		st.windows++
	}
	batches := s.flushSizeLocked(&obs)
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, b := range batches {
		s.launch(b)
	}
	if s.cfg.OnAlarm != nil {
		for _, a := range alarms {
			s.cfg.OnAlarm(a.id, a.ev, a.lat)
		}
	}
	s.emit(obs)
	return nil
}

// deliverLocked records one window's terminal outcome and drains the
// reorder buffer: outcomes apply to the Debouncer strictly in stream
// order, so a batch completing out of order waits for its predecessors.
// skip outcomes (shed or score-error) advance the sequence without
// touching the debounce state — the documented gap semantics.
func (st *Stream) deliverLocked(seq int, sc scored, now time.Time, alarms *[]alarmFire, samples *[]Sample) {
	s := st.s
	st.reorder[seq] = sc
	for {
		cur, ok := st.reorder[st.applySeq]
		if !ok {
			return
		}
		delete(st.reorder, st.applySeq)
		st.applySeq++
		if cur.skip {
			continue
		}
		ev := st.deb.Apply(cur.end, cur.label)
		lat := now.Sub(cur.ready)
		s.winHist.add(lat)
		s.scoredN++
		st.scoredN++
		if s.cfg.RecordEvents {
			st.events = append(st.events, ev)
		}
		if ev.Alarm {
			s.alarms++
			st.alarms++
			s.alarmHist.add(lat)
			if s.cfg.OnAlarm != nil {
				*alarms = append(*alarms, alarmFire{id: st.id, ev: ev, lat: lat})
			}
			if s.cfg.Hook != nil {
				*samples = append(*samples, Sample{Kind: "alarm", Stream: st.id,
					Pending: s.pending, InFlight: s.inflight, Streams: len(s.streams),
					LatencyUS: lat.Microseconds()})
			}
		}
	}
}

// AlarmRaised reports whether this stream's debounced alarm has fired.
func (st *Stream) AlarmRaised() bool {
	st.s.mu.Lock()
	defer st.s.mu.Unlock()
	return st.deb.AlarmRaised()
}

// Events returns a copy of the applied events. Empty unless
// Config.RecordEvents is set.
func (st *Stream) Events() []edge.Event {
	st.s.mu.Lock()
	defer st.s.mu.Unlock()
	out := make([]edge.Event, len(st.events))
	copy(out, st.events)
	return out
}

// StreamStats is one stream's accounting.
type StreamStats struct {
	// Windows counts every window cut from this stream; Scored those
	// applied with a label; Shed those dropped by backpressure; Alarms the
	// debounced alarms raised.
	Windows, Scored, Shed, Alarms int64
}

// Stats returns the stream's counters.
func (st *Stream) Stats() StreamStats {
	st.s.mu.Lock()
	defer st.s.mu.Unlock()
	return StreamStats{Windows: st.windows, Scored: st.scoredN, Shed: st.shed, Alarms: st.alarms}
}

// Close ends the stream: it frees the admission slot immediately, while
// windows already queued or in flight still score and apply. Pushing to a
// closed stream returns ErrClosed. Close is idempotent.
func (st *Stream) Close() {
	st.s.mu.Lock()
	if !st.closed {
		st.closed = true
		delete(st.s.streams, st.id)
	}
	st.s.mu.Unlock()
}
