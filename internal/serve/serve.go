package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"taskml/internal/compss"
	"taskml/internal/edge"
)

// Scorer submits one micro-batch of analysis windows for scoring and
// returns a Future resolving to []int — one label per window, in batch
// order. Implementations submit a task onto tc (a registered exec body
// such as core's "serve_score", or a plain closure for in-process use);
// the window slices are owned by the server and must be treated read-only.
type Scorer func(tc *compss.TaskCtx, windows [][]float64, fs float64) *compss.Future

// Config parameterises a Server.
type Config struct {
	// Window is the per-stream geometry and debounce configuration
	// (edge.Config): Fs is required, the rest defaults as in edge.
	Window edge.Config
	// Score submits micro-batches for scoring. Required.
	Score Scorer

	// SLO is the per-stream serving-latency target enforced by admission
	// control: Admit rejects a new stream when the projected p99 latency
	// from window-ready to label-applied would exceed it. 0 disables the
	// SLO projection (MaxStreams still applies).
	SLO time.Duration
	// MaxBatch flushes the batcher when this many windows are pending.
	// Default 64.
	MaxBatch int
	// MaxDelay flushes the batcher when the oldest pending window has
	// waited this long, bounding the latency cost of batching at low load.
	// Default 5ms.
	MaxDelay time.Duration
	// StreamBuffer bounds each stream's ingress buffer: windows cut but
	// not yet flushed into a batch. When a new window would exceed it, the
	// stream's oldest buffered window is shed — counted per stream and on
	// the server, never silent. Default 4.
	StreamBuffer int
	// MaxStreams is a hard admission cap; 0 means no fixed cap.
	MaxStreams int
	// Slots is the scoring-capacity estimate used by the admission
	// projection: how many window scorings proceed concurrently (the
	// runtime's worker count, or the fleet's slot total on a remote
	// backend). Default GOMAXPROCS.
	Slots int
	// Headroom is the utilisation ceiling of the admission projection:
	// a stream whose steady-state load would push utilisation to or past
	// it is rejected outright. Default 0.85.
	Headroom float64
	// MinSamples is how many latency observations the projection needs
	// before it trusts the measured p99 over the cold-start estimate.
	// Default 32.
	MinSamples int

	// RecordEvents keeps every applied event on the stream (Stream.Events)
	// — the parity-test and debugging mode. Off by default: a long-lived
	// service must not accumulate per-window state.
	RecordEvents bool
	// OnAlarm, when non-nil, is called for every alarm with the stream id,
	// the alarm event and the serving latency of the alarm window (ready →
	// applied). Called outside the server lock, possibly concurrently.
	OnAlarm func(stream int, ev edge.Event, latency time.Duration)
	// Hook, when non-nil, receives a Sample for every serving-plane event
	// (flushes, alarms, sheds, rejections, score errors) — wire it to
	// trace.Collector.AddServeSample for the Chrome export. Called outside
	// the server lock, possibly concurrently.
	Hook func(Sample)
	// Now overrides the wall clock (virtual-clock tests). A non-nil Now
	// also disables the background deadline flusher: the test drives
	// flushes explicitly. nil = time.Now with a real flusher goroutine.
	Now func() time.Time
}

// Sample is one serving-plane observation, exported through Config.Hook —
// the serve counterpart of exec.CacheSample. trace.Collector.AddServeSample
// stamps and renders the stream as a "serving" process in the Chrome
// export.
type Sample struct {
	// Kind is the observation: "flush" (a batch left the queue), "alarm",
	// "shed" (one window dropped by backpressure), "reject" (admission
	// refused a stream), or "error" (a batch's scoring task failed).
	Kind string
	// Stream is the stream id for "alarm" and "shed"; -1 otherwise.
	Stream int
	// Batch is the flushed batch size ("flush", "error").
	Batch int
	// Pending is the batcher queue depth after the event.
	Pending int
	// InFlight is the number of submitted, not yet applied batches.
	InFlight int
	// Streams is the number of open streams.
	Streams int
	// LatencyUS is the serving latency of the alarm window ("alarm").
	LatencyUS int64
	// Shed is the cumulative shed-window count ("shed").
	Shed int64
}

// ErrClosed is returned by Admit and Push after Close.
var ErrClosed = errors.New("serve: server closed")

// CapacityError is the admission-control rejection: the server will not
// degrade existing streams' SLO to accept a new one.
type CapacityError struct {
	// Streams is the open-stream count at rejection time.
	Streams int
	// Projected is the projected p99 serving latency with the new stream
	// admitted (0 when the rejection came from MaxStreams).
	Projected time.Duration
	// SLO is the configured target.
	SLO time.Duration
	// Reason is a human-readable cause.
	Reason string
}

func (e *CapacityError) Error() string { return "serve: admission rejected: " + e.Reason }

// maxDuration stands in for an unbounded latency projection.
const maxDuration = time.Duration(math.MaxInt64)

// window is one cut analysis window travelling through the serving
// pipeline: stream ingress buffer → batcher queue → scoring batch →
// in-order apply.
type window struct {
	st      *Stream
	seq     int // per-stream apply order
	end     int // stream sample index past the window (edge.Debouncer.Apply)
	data    []float64
	ready   time.Time // when the window became ready (latency epoch)
	shed    bool      // dropped by backpressure; batcher discards it
	flushed bool      // already taken into a batch
}

// scored is the terminal outcome of one window, delivered to its stream's
// reorder buffer.
type scored struct {
	label int
	end   int
	ready time.Time
	skip  bool // shed or score-error: advance the sequence without applying
}

// Server is the always-on inference coordinator: it multiplexes many
// concurrent streams onto one task runtime, micro-batching ready windows
// across streams into scoring tasks and enforcing per-stream latency SLOs
// with admission control and bounded-buffer shedding.
type Server struct {
	cfg     Config
	rt      *compss.Runtime
	fs      float64
	stride  float64 // seconds between windows per stream (offered-load unit)
	winLen  int
	strideN int

	mu       sync.Mutex
	cond     *sync.Cond
	streams  map[int]*Stream
	nextID   int
	q        []*window // FIFO by ready time across all streams
	pending  int       // non-shed windows in q
	inflight int

	winHist   latHist
	alarmHist latHist
	svcEWMA   float64 // measured seconds per window (batch turnaround / size)

	admitted, rejected          int64
	windows, scoredN, shedTotal int64
	scoreErrs, alarms, batches  int64
	closed                      bool

	stop       chan struct{}
	flusherRIP chan struct{}
}

// New builds a Server submitting onto rt. The caller owns the runtime (and
// its backend); Close drains the server but leaves the runtime usable.
func New(rt *compss.Runtime, cfg Config) (*Server, error) {
	if rt == nil {
		return nil, errors.New("serve: runtime is required")
	}
	if cfg.Score == nil {
		return nil, errors.New("serve: Config.Score is required")
	}
	if err := cfg.Window.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	if cfg.StreamBuffer <= 0 {
		cfg.StreamBuffer = 4
	}
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.Headroom <= 0 || cfg.Headroom > 1 {
		cfg.Headroom = 0.85
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 32
	}
	s := &Server{
		cfg:     cfg,
		rt:      rt,
		fs:      cfg.Window.Fs,
		winLen:  cfg.Window.WindowSamples(),
		strideN: cfg.Window.StrideSamples(),
		streams: map[int]*Stream{},
	}
	s.stride = float64(s.strideN) / s.fs
	s.cond = sync.NewCond(&s.mu)
	if s.cfg.Now == nil {
		s.cfg.Now = time.Now
		s.stop = make(chan struct{})
		s.flusherRIP = make(chan struct{})
		interval := s.cfg.MaxDelay / 4
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		go s.flusher(interval)
	}
	return s, nil
}

// flusher is the background deadline pump: it checks the oldest pending
// window every interval and flushes everything once MaxDelay is due.
func (s *Server) flusher(interval time.Duration) {
	defer close(s.flusherRIP)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.flushDue()
		}
	}
}

// Admit opens a new stream, or rejects it: with MaxStreams reached, or
// when the projected p99 serving latency including the new stream's
// steady-state load would exceed the SLO. Rejection protects the SLO of
// the streams already admitted — the server sheds load at the door rather
// than degrading everyone.
func (s *Server) Admit() (*Stream, error) {
	var sample Sample
	hooked := false
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	var capErr *CapacityError
	if s.cfg.MaxStreams > 0 && len(s.streams) >= s.cfg.MaxStreams {
		capErr = &CapacityError{
			Streams: len(s.streams), SLO: s.cfg.SLO,
			Reason: fmt.Sprintf("at MaxStreams %d", s.cfg.MaxStreams),
		}
	} else if s.cfg.SLO > 0 {
		if proj := s.projectedP99Locked(len(s.streams) + 1); proj > s.cfg.SLO {
			capErr = &CapacityError{
				Streams: len(s.streams), Projected: proj, SLO: s.cfg.SLO,
				Reason: fmt.Sprintf("projected p99 %v exceeds SLO %v at %d streams",
					proj, s.cfg.SLO, len(s.streams)+1),
			}
		}
	}
	if capErr != nil {
		s.rejected++
		if s.cfg.Hook != nil {
			sample = Sample{Kind: "reject", Stream: -1, Pending: s.pending,
				InFlight: s.inflight, Streams: len(s.streams)}
			hooked = true
		}
		s.mu.Unlock()
		if hooked {
			s.cfg.Hook(sample)
		}
		return nil, capErr
	}
	id := s.nextID
	s.nextID++
	win, err := edge.NewWindower(s.winLen, s.strideN)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	st := &Stream{
		s:       s,
		id:      id,
		win:     win,
		deb:     edge.NewDebouncer(s.cfg.Window),
		reorder: map[int]scored{},
	}
	s.streams[id] = st
	s.admitted++
	s.mu.Unlock()
	return st, nil
}

// projectedP99Locked estimates the p99 serving latency (window ready →
// label applied) with n open streams. Each stream offers one window per
// stride, each window costs the measured EWMA service time, and Slots
// scorings proceed concurrently, so utilisation is ρ(n) = n·svc/(stride·
// slots). The observed p99 (or, cold, MaxDelay + svc) is inflated by
// (1-ρnow)/(1-ρ(n)) — the M/M/1 waiting-time scaling, a deliberately
// pessimistic heuristic — and any n at or past Headroom·capacity projects
// to +inf: tail latency under a bursty arrival process explodes well
// before ρ = 1.
func (s *Server) projectedP99Locked(n int) time.Duration {
	base := s.cfg.MaxDelay + time.Duration(s.svcEWMA*float64(time.Second))
	if s.winHist.n >= int64(s.cfg.MinSamples) {
		base = s.winHist.quantile(0.99)
	}
	if s.svcEWMA <= 0 {
		return base // cold start: no throughput estimate yet
	}
	capacity := float64(s.cfg.Slots) / s.svcEWMA // windows/second
	rho := float64(n) / s.stride / capacity
	if rho >= s.cfg.Headroom {
		return maxDuration
	}
	rhoNow := float64(len(s.streams)) / s.stride / capacity
	if rhoNow > 0.95 {
		rhoNow = 0.95
	}
	return time.Duration(float64(base) * (1 - rhoNow) / (1 - rho))
}

// takeBatchLocked removes up to MaxBatch live windows from the queue
// front, discarding shed ones. Callers check s.pending > 0 first.
func (s *Server) takeBatchLocked() []*window {
	batch := make([]*window, 0, min(s.pending, s.cfg.MaxBatch))
	i := 0
	for ; i < len(s.q) && len(batch) < s.cfg.MaxBatch; i++ {
		w := s.q[i]
		w.flushed = true
		if w.shed {
			continue
		}
		batch = append(batch, w)
	}
	s.q = s.q[i:]
	s.pending -= len(batch)
	if len(batch) > 0 {
		s.inflight++
		s.batches++
	}
	return batch
}

// flushSizeLocked drains every full batch the queue holds, returning the
// batches to launch after unlock.
func (s *Server) flushSizeLocked(samples *[]Sample) [][]*window {
	var batches [][]*window
	for s.pending >= s.cfg.MaxBatch {
		b := s.takeBatchLocked()
		if len(b) == 0 {
			break
		}
		batches = append(batches, b)
		if s.cfg.Hook != nil {
			*samples = append(*samples, Sample{Kind: "flush", Stream: -1, Batch: len(b),
				Pending: s.pending, InFlight: s.inflight, Streams: len(s.streams)})
		}
	}
	return batches
}

// flushDue flushes everything pending once the oldest live window has
// waited MaxDelay — the deadline half of the batcher (the size half lives
// on the Push path). The background flusher calls it on a ticker;
// virtual-clock tests call it directly after advancing the clock.
func (s *Server) flushDue() {
	now := s.cfg.Now()
	var samples []Sample
	var batches [][]*window
	s.mu.Lock()
	for len(s.q) > 0 && s.q[0].shed {
		s.q = s.q[1:]
	}
	if s.pending > 0 && now.Sub(s.q[0].ready) >= s.cfg.MaxDelay {
		for s.pending > 0 {
			b := s.takeBatchLocked()
			if len(b) == 0 {
				break
			}
			batches = append(batches, b)
			if s.cfg.Hook != nil {
				samples = append(samples, Sample{Kind: "flush", Stream: -1, Batch: len(b),
					Pending: s.pending, InFlight: s.inflight, Streams: len(s.streams)})
			}
		}
	}
	s.mu.Unlock()
	for _, b := range batches {
		s.launch(b)
	}
	s.emit(samples)
}

// Flush submits every pending window regardless of batch size or age —
// the drain path (Close) and the test hook.
func (s *Server) Flush() {
	var samples []Sample
	var batches [][]*window
	s.mu.Lock()
	for s.pending > 0 {
		b := s.takeBatchLocked()
		if len(b) == 0 {
			break
		}
		batches = append(batches, b)
		if s.cfg.Hook != nil {
			samples = append(samples, Sample{Kind: "flush", Stream: -1, Batch: len(b),
				Pending: s.pending, InFlight: s.inflight, Streams: len(s.streams)})
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, b := range batches {
		s.launch(b)
	}
	s.emit(samples)
}

// alarmFire carries one alarm out of the lock to the OnAlarm callback.
type alarmFire struct {
	id  int
	ev  edge.Event
	lat time.Duration
}

// launch scores one batch asynchronously: submit through the Scorer, wait
// for the labels, and deliver each window's outcome to its stream for
// in-order application. A failed scoring task (after the runtime's retry
// machinery gave up) skips its windows — counted in ScoreErrors, never
// silently — and the streams' sequences advance past them.
func (s *Server) launch(batch []*window) {
	go func() {
		start := s.cfg.Now()
		wins := make([][]float64, len(batch))
		for i, w := range batch {
			wins[i] = w.data
		}
		fut := s.cfg.Score(s.rt.Main(), wins, s.fs)
		v, err := s.rt.Main().Get(fut)
		now := s.cfg.Now()
		var labels []int
		if err == nil {
			var ok bool
			labels, ok = v.([]int)
			if !ok {
				err = fmt.Errorf("serve: scorer returned %T, want []int", v)
			} else if len(labels) != len(batch) {
				err = fmt.Errorf("serve: scorer returned %d labels for %d windows", len(labels), len(batch))
			}
		}
		var alarms []alarmFire
		var samples []Sample
		s.mu.Lock()
		s.inflight--
		per := now.Sub(start).Seconds() / float64(len(batch))
		if per > 0 {
			if s.svcEWMA == 0 {
				s.svcEWMA = per
			} else {
				s.svcEWMA += 0.2 * (per - s.svcEWMA)
			}
		}
		if err != nil {
			s.scoreErrs += int64(len(batch))
			for _, w := range batch {
				w.st.deliverLocked(w.seq, scored{skip: true, end: w.end}, now, &alarms, &samples)
			}
			if s.cfg.Hook != nil {
				samples = append(samples, Sample{Kind: "error", Stream: -1, Batch: len(batch),
					Pending: s.pending, InFlight: s.inflight, Streams: len(s.streams)})
			}
		} else {
			for i, w := range batch {
				w.st.deliverLocked(w.seq, scored{label: labels[i], end: w.end, ready: w.ready}, now, &alarms, &samples)
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if s.cfg.OnAlarm != nil {
			for _, a := range alarms {
				s.cfg.OnAlarm(a.id, a.ev, a.lat)
			}
		}
		s.emit(samples)
	}()
}

func (s *Server) emit(samples []Sample) {
	if s.cfg.Hook == nil {
		return
	}
	for _, sm := range samples {
		s.cfg.Hook(sm)
	}
}

// WaitIdle blocks until no windows are pending and no batches are in
// flight. Pending windows only drain when flushed, so callers pair it with
// Flush (Close does both).
func (s *Server) WaitIdle() {
	s.mu.Lock()
	for s.pending > 0 || s.inflight > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close stops admission and ingest, flushes the pending windows, waits for
// every in-flight batch to apply, and stops the background flusher. The
// runtime is left usable. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.stop != nil {
		close(s.stop)
		<-s.flusherRIP
	}
	s.Flush()
	s.WaitIdle()
	return nil
}

// Metrics is a point-in-time snapshot of the serving plane.
type Metrics struct {
	// Streams is the open-stream count; Admitted/Rejected the admission
	// totals.
	Streams            int
	Admitted, Rejected int64
	// Windows counts every window cut; Scored those applied with a label;
	// Shed those dropped by backpressure; ScoreErrors those skipped by a
	// failed scoring task. Windows == Scored + Shed + ScoreErrors +
	// (pending + in-flight, not yet terminal).
	Windows, Scored, Shed, ScoreErrors int64
	// Alarms counts debounced alarms across all streams.
	Alarms int64
	// Pending and InFlight are the live queue depths; Batches the flush
	// total.
	Pending, InFlight int
	Batches           int64
	// WindowP50/P99 are serving-latency quantiles (window ready → label
	// applied); AlarmP50/P99 the same restricted to alarm windows.
	WindowP50, WindowP99 time.Duration
	AlarmP50, AlarmP99   time.Duration
	// ServicePerWindow is the EWMA per-window scoring turnaround feeding
	// the admission projection.
	ServicePerWindow time.Duration
}

// Metrics returns a consistent snapshot.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Streams:  len(s.streams),
		Admitted: s.admitted, Rejected: s.rejected,
		Windows: s.windows, Scored: s.scoredN, Shed: s.shedTotal, ScoreErrors: s.scoreErrs,
		Alarms:  s.alarms,
		Pending: s.pending, InFlight: s.inflight, Batches: s.batches,
		WindowP50: s.winHist.quantile(0.50), WindowP99: s.winHist.quantile(0.99),
		AlarmP50: s.alarmHist.quantile(0.50), AlarmP99: s.alarmHist.quantile(0.99),
		ServicePerWindow: time.Duration(s.svcEWMA * float64(time.Second)),
	}
}
