package serve

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taskml/internal/compss"
	"taskml/internal/edge"
)

// vclock is the virtual clock driving the deterministic batcher tests: the
// test advances it explicitly and calls flushDue itself (a non-nil
// Config.Now disables the background flusher).
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVclock() *vclock { return &vclock{t: time.Unix(1000, 0)} }

func (c *vclock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// batchLog records every scored batch's size.
type batchLog struct {
	mu    sync.Mutex
	sizes []int
}

func (b *batchLog) record(n int) {
	b.mu.Lock()
	b.sizes = append(b.sizes, n)
	b.mu.Unlock()
}

func (b *batchLog) get() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.sizes...)
}

// constScorer labels every window `label`, recording batch sizes.
func constScorer(log *batchLog, label int) Scorer {
	return func(tc *compss.TaskCtx, windows [][]float64, fs float64) *compss.Future {
		if log != nil {
			log.record(len(windows))
		}
		n := len(windows)
		return tc.Submit(compss.Opts{Name: "score"}, func(tc *compss.TaskCtx, args []any) (any, error) {
			labels := make([]int, n)
			for i := range labels {
				labels[i] = label
			}
			return labels, nil
		})
	}
}

// testConfig is the shared geometry: 1 s windows, 1 s stride, 10 Hz — one
// window per 10 samples, no overlap, so window counts are easy to reason
// about.
func testConfig() edge.Config {
	return edge.Config{Fs: 10, WindowSec: 1, StrideSec: 1, AlarmAfter: 2}
}

func TestServeBatcherSizeFlush(t *testing.T) {
	clk := newVclock()
	log := &batchLog{}
	rt := compss.New(compss.Config{Workers: 2})
	s, err := New(rt, Config{
		Window:       testConfig(),
		Score:        constScorer(log, 1),
		MaxBatch:     4,
		MaxDelay:     time.Hour,
		StreamBuffer: 100,
		Now:          clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Admit()
	if err != nil {
		t.Fatal(err)
	}
	// 40 samples = 4 windows = exactly one size-triggered batch.
	if err := st.Push(make([]float64, 40)...); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	if got := log.get(); !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("size flush batches = %v, want [4]", got)
	}
	// 3 more windows stay pending: under MaxBatch and the deadline is far.
	if err := st.Push(make([]float64, 30)...); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.Pending != 3 || m.Batches != 1 {
		t.Fatalf("pending=%d batches=%d, want 3 pending and 1 batch", m.Pending, m.Batches)
	}
	s.Flush()
	s.WaitIdle()
	if got := log.get(); !reflect.DeepEqual(got, []int{4, 3}) {
		t.Fatalf("after Flush batches = %v, want [4 3]", got)
	}
	m := s.Metrics()
	if m.Windows != 7 || m.Scored != 7 || m.Pending != 0 || m.Shed != 0 {
		t.Fatalf("metrics = %+v, want 7 windows all scored", m)
	}
}

func TestServeBatcherDeadlineFlush(t *testing.T) {
	clk := newVclock()
	log := &batchLog{}
	rt := compss.New(compss.Config{Workers: 2})
	s, err := New(rt, Config{
		Window:       testConfig(),
		Score:        constScorer(log, 1),
		MaxBatch:     64,
		MaxDelay:     5 * time.Millisecond,
		StreamBuffer: 100,
		Now:          clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Admit()
	if err := st.Push(make([]float64, 20)...); err != nil { // 2 windows
		t.Fatal(err)
	}
	s.flushDue()
	if m := s.Metrics(); m.Pending != 2 || m.Batches != 0 {
		t.Fatalf("flushed before the deadline: %+v", m)
	}
	clk.advance(6 * time.Millisecond)
	s.flushDue()
	s.WaitIdle()
	if got := log.get(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("deadline flush batches = %v, want [2]", got)
	}
	if m := s.Metrics(); m.Scored != 2 || m.Pending != 0 {
		t.Fatalf("metrics after deadline flush = %+v", m)
	}
}

func TestServeAdmissionMaxStreams(t *testing.T) {
	clk := newVclock()
	rt := compss.New(compss.Config{Workers: 1})
	s, err := New(rt, Config{
		Window:     testConfig(),
		Score:      constScorer(nil, 1),
		MaxStreams: 3,
		Now:        clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]*Stream, 3)
	for i := range streams {
		if streams[i], err = s.Admit(); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	_, err = s.Admit()
	var capErr *CapacityError
	if !errors.As(err, &capErr) {
		t.Fatalf("4th Admit err = %v, want *CapacityError", err)
	}
	if capErr.Streams != 3 {
		t.Fatalf("CapacityError.Streams = %d, want 3", capErr.Streams)
	}
	// Closing a stream frees its admission slot.
	streams[0].Close()
	if _, err := s.Admit(); err != nil {
		t.Fatalf("Admit after Close: %v", err)
	}
	if m := s.Metrics(); m.Rejected != 1 || m.Admitted != 4 {
		t.Fatalf("admitted=%d rejected=%d, want 4/1", m.Admitted, m.Rejected)
	}
}

func TestServeAdmissionSLOProjection(t *testing.T) {
	clk := newVclock()
	rt := compss.New(compss.Config{Workers: 1})
	s, err := New(rt, Config{
		Window: testConfig(), // 1 s stride: each stream offers 1 window/s
		Score:  constScorer(nil, 1),
		SLO:    10 * time.Second,
		Slots:  1,
		Now:    clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the measured service time: 50 ms/window on 1 slot = 20
	// windows/s capacity. Headroom 0.85 admits while n·1win/s < 17.
	s.mu.Lock()
	s.svcEWMA = 0.05
	s.mu.Unlock()
	admitted := 0
	var rejectErr error
	for i := 0; i < 100; i++ {
		if _, err := s.Admit(); err != nil {
			rejectErr = err
			break
		}
		admitted++
	}
	if admitted != 16 {
		t.Fatalf("admitted %d streams, want 16 (headroom 0.85 of 20 win/s)", admitted)
	}
	var capErr *CapacityError
	if !errors.As(rejectErr, &capErr) {
		t.Fatalf("rejection err = %v, want *CapacityError", rejectErr)
	}
	if capErr.Projected <= capErr.SLO {
		t.Fatalf("projected %v should exceed SLO %v", capErr.Projected, capErr.SLO)
	}

	// A tight SLO rejects even the first stream once a service time is
	// measured: base latency alone (MaxDelay + svc) exceeds it.
	s2, err := New(rt, Config{
		Window: testConfig(),
		Score:  constScorer(nil, 1),
		SLO:    time.Millisecond,
		Slots:  1,
		Now:    clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	s2.mu.Lock()
	s2.svcEWMA = 0.05
	s2.mu.Unlock()
	if _, err := s2.Admit(); !errors.As(err, &capErr) {
		t.Fatalf("tight-SLO Admit err = %v, want *CapacityError", err)
	}
}

func TestServeBackpressureShedding(t *testing.T) {
	clk := newVclock()
	log := &batchLog{}
	var shedSamples atomic.Int64
	rt := compss.New(compss.Config{Workers: 2})
	var s *Server
	s, err := New(rt, Config{
		Window:       testConfig(),
		Score:        constScorer(log, 0), // every window positive (AF)
		MaxBatch:     100,
		MaxDelay:     time.Hour,
		StreamBuffer: 2,
		RecordEvents: true,
		Now:          clk.now,
		Hook: func(sm Sample) {
			if sm.Kind == "shed" {
				shedSamples.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Admit()
	// 5 windows against a 2-window ingress buffer: the 3 oldest shed.
	if err := st.Push(make([]float64, 50)...); err != nil {
		t.Fatal(err)
	}
	if stats := st.Stats(); stats.Windows != 5 || stats.Shed != 3 {
		t.Fatalf("stream stats = %+v, want 5 windows / 3 shed", stats)
	}
	if m := s.Metrics(); m.Shed != 3 || m.Pending != 2 {
		t.Fatalf("server metrics = %+v, want shed 3 / pending 2", m)
	}
	if got := shedSamples.Load(); got != 3 {
		t.Fatalf("shed hook samples = %d, want 3", got)
	}
	s.Flush()
	s.WaitIdle()
	// Shed windows never reach a batch: only the 2 survivors score.
	if got := log.get(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("batches = %v, want [2] (shed windows excluded)", got)
	}
	// The 3 shed windows are gaps, not resets: the 2 surviving positive
	// windows are consecutive to the debouncer and raise the alarm
	// (AlarmAfter=2).
	if !st.AlarmRaised() {
		t.Fatal("alarm not raised: shed windows must not reset the debounce chain")
	}
	if stats := st.Stats(); stats.Scored != 2 || stats.Alarms != 1 {
		t.Fatalf("stream stats = %+v, want 2 scored / 1 alarm", stats)
	}
	// Events carry only applied windows, ending with the alarm.
	evs := st.Events()
	if len(evs) != 2 || !evs[1].Alarm {
		t.Fatalf("events = %+v, want 2 applied events with alarm on the last", evs)
	}
}

func TestServeScoreErrorSkips(t *testing.T) {
	clk := newVclock()
	var fail atomic.Bool
	rt := compss.New(compss.Config{Workers: 2})
	scorer := func(tc *compss.TaskCtx, windows [][]float64, fs float64) *compss.Future {
		n := len(windows)
		return tc.Submit(compss.Opts{Name: "score"}, func(tc *compss.TaskCtx, args []any) (any, error) {
			if fail.Load() {
				return nil, errors.New("injected scoring failure")
			}
			labels := make([]int, n)
			return labels, nil // all positive (label 0)
		})
	}
	s, err := New(rt, Config{
		Window:       testConfig(),
		Score:        scorer,
		MaxBatch:     100,
		MaxDelay:     time.Hour,
		StreamBuffer: 100,
		RecordEvents: true,
		Now:          clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Admit()
	push := func() {
		t.Helper()
		if err := st.Push(make([]float64, 10)...); err != nil {
			t.Fatal(err)
		}
		s.Flush()
		s.WaitIdle()
	}
	push() // window 1: positive, chain = 1
	fail.Store(true)
	push() // window 2: scoring fails → skipped, chain untouched
	fail.Store(false)
	push() // window 3: positive, chain = 2 → alarm
	m := s.Metrics()
	if m.ScoreErrors != 1 || m.Scored != 2 {
		t.Fatalf("metrics = %+v, want 1 score error / 2 scored", m)
	}
	if !st.AlarmRaised() || m.Alarms != 1 {
		t.Fatal("alarm not raised: a failed batch must skip, not reset, the debounce chain")
	}
}

// parityModel is the deterministic featurize+classify pair shared by the
// served and batch paths in the parity test.
func parityFeaturize(window []float64, fs float64) ([]float64, error) {
	var mean, sq float64
	for _, v := range window {
		mean += v
	}
	mean /= float64(len(window))
	for _, v := range window {
		sq += (v - mean) * (v - mean)
	}
	return []float64{mean, math.Sqrt(sq / float64(len(window)))}, nil
}

func parityClassify(feats []float64) (int, error) {
	if feats[0] > 0.5 { // high-mean windows are "AF"
		return 0, nil
	}
	return 1, nil
}

// paritySignal builds a deterministic 2-phase signal: quiet, then elevated
// with a per-stream ripple.
func paritySignal(seed, n, onset int) []float64 {
	sig := make([]float64, n)
	state := uint64(seed)*2654435761 + 1
	for i := range sig {
		state = state*6364136223846793005 + 1442695040888963407
		ripple := float64(state>>40) / float64(1<<24) * 0.2
		if i >= onset {
			sig[i] = 1.0 + ripple
		} else {
			sig[i] = ripple
		}
	}
	return sig
}

func TestServeParityWithEdgeRun(t *testing.T) {
	cfg := edge.Config{Fs: 100, WindowSec: 2, StrideSec: 1, AlarmAfter: 2}
	rt := compss.New(compss.Config{Workers: 4})
	// The scorer runs the same featurize+classify the batch path uses,
	// inside a submitted task.
	scorer := func(tc *compss.TaskCtx, windows [][]float64, fs float64) *compss.Future {
		return tc.Submit(compss.Opts{Name: "parity_score"}, func(tc *compss.TaskCtx, args []any) (any, error) {
			labels := make([]int, len(windows))
			for i, w := range windows {
				feats, err := parityFeaturize(w, fs)
				if err != nil {
					return nil, err
				}
				if labels[i], err = parityClassify(feats); err != nil {
					return nil, err
				}
			}
			return labels, nil
		})
	}
	// Real clock: the background deadline flusher runs, and MaxBatch=3
	// forces cross-stream batches.
	s, err := New(rt, Config{
		Window:       cfg,
		Score:        scorer,
		MaxBatch:     3,
		MaxDelay:     2 * time.Millisecond,
		StreamBuffer: 1 << 20, // parity needs every window scored
		RecordEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	signals := [][]float64{
		paritySignal(1, 3000, 1000),
		paritySignal(2, 3000, 1500),
		paritySignal(3, 3000, 2200),
	}
	chunks := []int{7, 64, 1000} // deliberately different ingest chunking
	streams := make([]*Stream, len(signals))
	for i := range signals {
		if streams[i], err = s.Admit(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i, sig := range signals {
		wg.Add(1)
		go func(st *Stream, sig []float64, chunk int) {
			defer wg.Done()
			for off := 0; off < len(sig); off += chunk {
				end := min(off+chunk, len(sig))
				if err := st.Push(sig[off:end]...); err != nil {
					t.Error(err)
					return
				}
			}
		}(streams[i], sig, chunks[i])
	}
	wg.Wait()
	s.Flush()
	s.WaitIdle()

	for i, sig := range signals {
		wantEvents, wantAlarm, err := edge.Run(cfg, parityFeaturize, edge.ClassifierFunc(parityClassify), sig)
		if err != nil {
			t.Fatal(err)
		}
		got := streams[i].Events()
		if !reflect.DeepEqual(got, wantEvents) {
			t.Fatalf("stream %d: served events differ from edge.Run\n got %d events\nwant %d events\nfirst diff: %s",
				i, len(got), len(wantEvents), firstEventDiff(got, wantEvents))
		}
		gotAlarm := -1.0
		for _, e := range got {
			if e.Alarm {
				gotAlarm = e.TimeSec
				break
			}
		}
		if gotAlarm != wantAlarm {
			t.Fatalf("stream %d: alarm at %v, edge.Run at %v", i, gotAlarm, wantAlarm)
		}
	}
	if m := s.Metrics(); m.Shed != 0 || m.ScoreErrors != 0 {
		t.Fatalf("parity run shed/error windows: %+v", m)
	}
}

func firstEventDiff(got, want []edge.Event) string {
	n := min(len(got), len(want))
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return fmt.Sprintf("index %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(got), len(want))
}
