// Package graph holds the task dependency graph captured while a workflow
// executes on the internal/compss runtime.
//
// The graph is the bridge between the programming model and the performance
// model: internal/compss appends one node per submitted task (in program
// order, with data dependencies, nesting parentage and resource demands) and
// internal/cluster replays the captured graph against a virtual cluster
// description to obtain the schedule the paper's figures are derived from.
// A single captured graph can be replayed on any number of cluster
// configurations, which is how the core-count sweeps of Figures 11a-c and 12
// are produced from one workflow run.
//
// # Public surface
//
// Graph records tasks (Add), failure/degradation events, and answers
// structural queries (CriticalPath, TotalCost, MaxWidth, CountByName,
// Validate); DOT and Export render it as Graphviz and as a provenance
// record. Scaled returns a cost-scaled copy for paper-scale replays.
//
// # Concurrency and ownership
//
// Add and the event recorders are safe for concurrent use (the runtime
// appends from many worker goroutines); IDs are dense and assigned in
// submission order. Readers should query after the producing runtime has
// quiesced — queries take the same lock but see a consistent snapshot only
// once no more tasks are being added.
package graph
