package graph

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// chain builds a linear chain of n unit-cost tasks.
func chain(n int) *Graph {
	g := New()
	prev := -1
	for i := 0; i < n; i++ {
		t := Task{Name: "step", Parent: -1, Cost: 1, Cores: 1}
		if prev >= 0 {
			t.Deps = []Dep{{Task: prev}}
		}
		prev = g.Add(t)
	}
	return g
}

func TestAddAssignsSequentialIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		id := g.Add(Task{Name: "t", Parent: -1, Cost: 1, Cores: 1})
		if id != i {
			t.Fatalf("Add returned %d, want %d", id, i)
		}
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
}

func TestTaskLookup(t *testing.T) {
	g := chain(3)
	tk, ok := g.Task(1)
	if !ok || tk.ID != 1 || len(tk.Deps) != 1 || tk.Deps[0].Task != 0 {
		t.Fatalf("Task(1) = %+v, ok=%v", tk, ok)
	}
	if _, ok := g.Task(99); ok {
		t.Fatal("Task(99) should not exist")
	}
	if _, ok := g.Task(-1); ok {
		t.Fatal("Task(-1) should not exist")
	}
}

func TestConcurrentAddIsSafeAndDense(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	const n = 200
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = g.Add(Task{Name: "t", Parent: -1, Cost: 1, Cores: 1})
		}(i)
	}
	wg.Wait()
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	if g.Len() != n {
		t.Fatalf("Len = %d, want %d", g.Len(), n)
	}
}

func TestValidateAcceptsChain(t *testing.T) {
	if err := chain(10).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsForwardDep(t *testing.T) {
	g := New()
	g.Add(Task{Name: "t", Parent: -1, Cost: 1, Cores: 1, Deps: []Dep{{Task: 0}}})
	if err := g.Validate(); err == nil {
		t.Fatal("want error for self/forward dependency")
	}
}

func TestValidateRejectsForwardParent(t *testing.T) {
	g := New()
	g.Add(Task{Name: "t", Parent: 3, Cost: 1, Cores: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("want error for forward parent")
	}
}

func TestValidateRejectsNoResources(t *testing.T) {
	g := New()
	g.Add(Task{Name: "t", Parent: -1, Cost: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("want error for zero resource demand")
	}
}

func TestValidateRejectsNegativeCost(t *testing.T) {
	g := New()
	g.Add(Task{Name: "t", Parent: -1, Cost: -1, Cores: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("want error for negative cost")
	}
}

func TestCriticalPathChain(t *testing.T) {
	if cp := chain(7).CriticalPath(); cp != 7 {
		t.Fatalf("CriticalPath = %v, want 7", cp)
	}
}

func TestCriticalPathFanOut(t *testing.T) {
	g := New()
	src := g.Add(Task{Name: "src", Parent: -1, Cost: 2, Cores: 1})
	var leaves []Dep
	for i := 0; i < 4; i++ {
		id := g.Add(Task{Name: "leaf", Parent: -1, Cost: 3, Cores: 1, Deps: []Dep{{Task: src}}})
		leaves = append(leaves, Dep{Task: id})
	}
	g.Add(Task{Name: "sink", Parent: -1, Cost: 1, Cores: 1, Deps: leaves})
	if cp := g.CriticalPath(); cp != 6 {
		t.Fatalf("CriticalPath = %v, want 6", cp)
	}
}

func TestCriticalPathNesting(t *testing.T) {
	g := New()
	p := g.Add(Task{Name: "parent", Parent: -1, Cost: 1, Cores: 1})
	// Children submitted inside the parent: chain of two, each cost 5.
	c1 := g.Add(Task{Name: "child", Parent: p, Cost: 5, Cores: 1})
	g.Add(Task{Name: "child", Parent: p, Cost: 5, Cores: 1, Deps: []Dep{{Task: c1}}})
	// A dependent of the parent waits for the whole subtree.
	g.Add(Task{Name: "after", Parent: -1, Cost: 1, Cores: 1, Deps: []Dep{{Task: p}}})
	if cp := g.CriticalPath(); cp != 11 {
		t.Fatalf("CriticalPath = %v, want 11 (children dominate parent)", cp)
	}
}

func TestCriticalPathDependentSubmittedBeforeDepChildren(t *testing.T) {
	// Main submits parent P, then a task depending on P, and only afterwards
	// P's children get recorded (they were created while P ran). The
	// dependent must still wait for the children.
	g := New()
	p := g.Add(Task{Name: "p", Parent: -1, Cost: 1, Cores: 1})
	g.Add(Task{Name: "after", Parent: -1, Cost: 1, Cores: 1, Deps: []Dep{{Task: p}}})
	g.Add(Task{Name: "child", Parent: p, Cost: 10, Cores: 1})
	if cp := g.CriticalPath(); cp != 11 {
		t.Fatalf("CriticalPath = %v, want 11", cp)
	}
}

func TestTotalCost(t *testing.T) {
	if tc := chain(4).TotalCost(); tc != 4 {
		t.Fatalf("TotalCost = %v, want 4", tc)
	}
}

func TestMaxWidth(t *testing.T) {
	g := New()
	src := g.Add(Task{Name: "src", Parent: -1, Cost: 1, Cores: 1})
	for i := 0; i < 5; i++ {
		g.Add(Task{Name: "leaf", Parent: -1, Cost: 1, Cores: 1, Deps: []Dep{{Task: src}}})
	}
	if w := g.MaxWidth(); w != 5 {
		t.Fatalf("MaxWidth = %d, want 5", w)
	}
	if w := chain(3).MaxWidth(); w != 1 {
		t.Fatalf("MaxWidth(chain) = %d, want 1", w)
	}
}

// Property: CriticalPath <= TotalCost for any random well-formed DAG, and
// CriticalPath >= max single task cost.
func TestCriticalPathBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + rng.Intn(30)
		maxCost := 0.0
		for i := 0; i < n; i++ {
			cost := rng.Float64() * 10
			if cost > maxCost {
				maxCost = cost
			}
			tk := Task{Name: "t", Parent: -1, Cost: cost, Cores: 1}
			for d := 0; d < i; d++ {
				if rng.Float64() < 0.2 {
					tk.Deps = append(tk.Deps, Dep{Task: d})
				}
			}
			g.Add(tk)
		}
		cp := g.CriticalPath()
		return cp <= g.TotalCost()+1e-9 && cp >= maxCost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTStructure(t *testing.T) {
	g := New()
	p := g.Add(Task{Name: "fold", Parent: -1, Cost: 1, Cores: 1})
	c := g.Add(Task{Name: "train", Parent: p, Cost: 1, Cores: 1})
	g.Add(Task{Name: "merge", Parent: -1, Cost: 1, Cores: 1, Deps: []Dep{{Task: c, ViaMaster: true}}})
	dot := g.DOT("cnn")
	for _, want := range []string{
		"digraph \"cnn\"",
		"subgraph cluster_t0",     // nesting cluster for the fold task
		"t1 -> t2 [style=dashed]", // via-master edge is dashed
		"cluster_legend",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestCountByName(t *testing.T) {
	g := New()
	g.Add(Task{Name: "a", Parent: -1, Cost: 1, Cores: 1})
	g.Add(Task{Name: "a", Parent: -1, Cost: 1, Cores: 1})
	g.Add(Task{Name: "b", Parent: -1, Cost: 1, Cores: 1})
	counts := g.CountByName()
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("CountByName = %v", counts)
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	if cp := New().CriticalPath(); cp != 0 {
		t.Fatalf("CriticalPath(empty) = %v, want 0", cp)
	}
	if math.IsNaN(New().TotalCost()) || New().TotalCost() != 0 {
		t.Fatal("TotalCost(empty) must be 0")
	}
}

func TestScaledMultipliesCostsAndBytes(t *testing.T) {
	g := New()
	a := g.Add(Task{Name: "a", Parent: -1, Cost: 2, Cores: 1, OutBytes: 100})
	g.Add(Task{Name: "b", Parent: -1, Cost: 3, Cores: 2, OutBytes: 10, Deps: []Dep{{Task: a, ViaMaster: true}}})
	s := g.Scaled(10, 5)
	if s.Len() != 2 {
		t.Fatalf("scaled graph has %d tasks", s.Len())
	}
	ta, _ := s.Task(0)
	tb, _ := s.Task(1)
	if ta.Cost != 20 || ta.OutBytes != 500 || tb.Cost != 30 || tb.OutBytes != 50 {
		t.Fatalf("scaled tasks: %+v, %+v", ta, tb)
	}
	// Structure preserved, original untouched.
	if len(tb.Deps) != 1 || !tb.Deps[0].ViaMaster || tb.Cores != 2 {
		t.Fatalf("structure lost: %+v", tb)
	}
	orig, _ := g.Task(0)
	if orig.Cost != 2 || orig.OutBytes != 100 {
		t.Fatal("Scaled mutated the source graph")
	}
	if s.CriticalPath() != 10*g.CriticalPath() {
		t.Fatal("critical path must scale linearly with cost")
	}
}

func TestFailureEventsAndAttempts(t *testing.T) {
	g := chain(3)
	g.RecordFailure(FailureEvent{Task: 1, Attempt: 0, Mode: "error", CostFraction: 0.5})
	g.RecordFailure(FailureEvent{Task: 1, Attempt: 1, Mode: "timeout", CostFraction: 1})
	g.RecordFailure(FailureEvent{Task: 2, Attempt: 0, Mode: "panic", CostFraction: 0.25})
	if err := g.Validate(); err != nil {
		t.Fatalf("valid failure events rejected: %v", err)
	}
	if got := len(g.FailureEvents()); got != 3 {
		t.Fatalf("FailureEvents returned %d events, want 3", got)
	}
	by := g.FailuresByTask()
	if len(by[1]) != 2 || by[1][0].Attempt != 0 || by[1][1].Attempt != 1 {
		t.Fatalf("FailuresByTask[1] = %+v", by[1])
	}
	if g.Attempts(0) != 1 || g.Attempts(1) != 3 || g.Attempts(2) != 2 {
		t.Fatalf("Attempts = %d,%d,%d; want 1,3,2",
			g.Attempts(0), g.Attempts(1), g.Attempts(2))
	}
}

func TestRecordFailureClampsFraction(t *testing.T) {
	g := chain(1)
	g.RecordFailure(FailureEvent{Task: 0, Attempt: 0, Mode: "error", CostFraction: math.NaN()})
	g.RecordFailure(FailureEvent{Task: 0, Attempt: 1, Mode: "error", CostFraction: -2})
	for _, ev := range g.FailureEvents() {
		if ev.CostFraction != 1 {
			t.Fatalf("unclamped fraction %v in %+v", ev.CostFraction, ev)
		}
	}
}

func TestDegradedMarks(t *testing.T) {
	g := chain(3)
	g.RecordFailure(FailureEvent{Task: 2, Attempt: 0, Mode: "error", CostFraction: 1})
	g.MarkDegraded(2)
	if !g.IsDegraded(2) || g.IsDegraded(1) {
		t.Fatal("degraded marks wrong")
	}
	if ids := g.DegradedTasks(); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("DegradedTasks = %v", ids)
	}
	// A degraded task's final "attempt" is its fallback, not an execution.
	if g.Attempts(2) != 1 {
		t.Fatalf("Attempts(degraded) = %d, want just the failed one", g.Attempts(2))
	}
}

func TestScaledPreservesFailuresWithoutScalingBackoff(t *testing.T) {
	g := New()
	g.Add(Task{Name: "a", Parent: -1, Cost: 2, Cores: 1, Retries: 2, BackoffSec: 5})
	g.RecordFailure(FailureEvent{Task: 0, Attempt: 0, Mode: "error", CostFraction: 0.5})
	g.MarkDegraded(0)
	s := g.Scaled(10, 1)
	if len(s.FailureEvents()) != 1 || !s.IsDegraded(0) {
		t.Fatal("Scaled dropped failure events or degraded marks")
	}
	ts, _ := s.Task(0)
	if ts.Retries != 2 || ts.BackoffSec != 5 {
		t.Fatalf("Scaled altered retry policy: %+v (backoff is policy, not workload)", ts)
	}
}

func TestWithoutFailuresStripsEvents(t *testing.T) {
	g := chain(2)
	g.RecordFailure(FailureEvent{Task: 0, Attempt: 0, Mode: "error", CostFraction: 1})
	g.MarkDegraded(1)
	clean := g.WithoutFailures()
	if clean.Len() != g.Len() {
		t.Fatal("WithoutFailures changed the task set")
	}
	if len(clean.FailureEvents()) != 0 || len(clean.DegradedTasks()) != 0 {
		t.Fatal("WithoutFailures kept failure state")
	}
	if len(g.FailureEvents()) != 1 {
		t.Fatal("WithoutFailures mutated the source graph")
	}
}

func TestAddCountedNumbersOccurrences(t *testing.T) {
	g := New()
	_, o0 := g.AddCounted(Task{Name: "x", Parent: -1, Cost: 1, Cores: 1})
	_, o1 := g.AddCounted(Task{Name: "y", Parent: -1, Cost: 1, Cores: 1})
	_, o2 := g.AddCounted(Task{Name: "x", Parent: -1, Cost: 1, Cores: 1})
	if o0 != 0 || o1 != 0 || o2 != 1 {
		t.Fatalf("occurrences = %d,%d,%d; want 0,0,1", o0, o1, o2)
	}
}

func TestValidateRejectsBadFailureState(t *testing.T) {
	cases := []struct {
		name string
		prep func(*Graph)
	}{
		{"event task out of range", func(g *Graph) {
			g.RecordFailure(FailureEvent{Task: 99, Attempt: 0, Mode: "error", CostFraction: 1})
		}},
		{"negative attempt", func(g *Graph) {
			g.RecordFailure(FailureEvent{Task: 0, Attempt: -1, Mode: "error", CostFraction: 1})
		}},
		{"degraded unknown task", func(g *Graph) { g.MarkDegraded(42) }},
	}
	for _, c := range cases {
		g := chain(2)
		c.prep(g)
		if err := g.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted invalid failure state", c.name)
		}
	}
	g := New()
	g.Add(Task{Name: "a", Parent: -1, Cost: 1, Cores: 1, Retries: -1})
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted negative Retries")
	}
	g2 := New()
	g2.Add(Task{Name: "a", Parent: -1, Cost: 1, Cores: 1, BackoffSec: math.NaN()})
	if err := g2.Validate(); err == nil {
		t.Fatal("Validate accepted NaN BackoffSec")
	}
}
