package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Dep is a dependency on the output of another task.
type Dep struct {
	// Task is the ID of the producing task.
	Task int
	// ViaMaster marks dependencies introduced by a synchronisation in the
	// submitting program (a Future.Get followed by later submissions). The
	// data makes an extra hop through the master process, which the
	// scheduler charges as an additional transfer.
	ViaMaster bool
	// OrderOnly marks synchronisation-ordering dependencies that carry no
	// data of their own: the consumer merely cannot start before the
	// producer's value reached the master. The scheduler delays the
	// consumer by the producer→master hop but moves no bytes (the value
	// travelled once; ordering does not re-send it).
	OrderOnly bool
}

// Task is one node of the captured graph.
type Task struct {
	// ID is the submission order, unique and monotonically increasing.
	ID int
	// Name groups tasks of the same kind (e.g. "svc_fit", "merge_sv"); the
	// DOT export colors nodes by Name like the PyCOMPSs graphs in the paper.
	Name string
	// Parent is the ID of the task whose body submitted this task (nesting),
	// or -1 for tasks submitted by the main program.
	Parent int
	// Deps lists data dependencies.
	Deps []Dep
	// Cost is the task's virtual duration in seconds on a reference core
	// (or reference GPU when GPUs > 0).
	Cost float64
	// Cores and GPUs are the resource demand. Cores defaults to 1 for
	// compute tasks; a GPU task may also pin cores.
	Cores, GPUs int
	// OutBytes is the size of the task's output, used for transfer costs.
	OutBytes int64
	// Retries is the task's retry budget as resolved at submission (runtime
	// defaults and policy applied). Informational for the replay: the
	// attempts actually taken live in the failure events.
	Retries int
	// BackoffSec is the virtual backoff base between a failed attempt and
	// its retry: the retry after failed attempt k (0-based) re-queues
	// BackoffSec·2^k after the failure instant, so the first retry waits
	// the base. A policy parameter, deliberately left untouched by Scaled.
	BackoffSec float64
}

// FailureEvent records one failed attempt of a task, as observed by the
// runtime. The replay in internal/cluster charges the failed attempt
// CostFraction of the task's cost on the node it was placed on, then
// re-queues the task after its backoff.
type FailureEvent struct {
	// Task is the ID of the failing task.
	Task int
	// Attempt is the 0-based attempt index that failed.
	Attempt int
	// Mode is how the attempt died: "error", "panic" or "timeout".
	Mode string
	// CostFraction is the fraction of the task's virtual cost consumed
	// before the failure instant, in [0, 1].
	CostFraction float64
	// At is the real (wall-clock) instant the runtime observed the failure,
	// carrying Go's monotonic reading. Purely informational — the replay
	// works in virtual time — it lets trace exporters cross-reference a
	// replayed failure with the same failure in the real-execution trace.
	// Zero for hand-built graphs.
	At time.Time
}

// Graph is an append-only record of submitted tasks. It is safe for
// concurrent use: nested tasks submit from worker goroutines.
type Graph struct {
	mu        sync.Mutex
	tasks     []Task
	nameCount map[string]int
	failures  []FailureEvent
	degraded  map[int]bool
}

// New returns an empty graph. The task slice starts with room for a small
// workflow: Task is a wide struct, so growing from zero capacity through
// repeated doubling re-copies every record several times and leaves the
// abandoned arrays to the garbage collector — measurable on the submit hot
// path.
func New() *Graph { return &Graph{tasks: make([]Task, 0, 128)} }

// Add appends a task and returns its assigned ID.
func (g *Graph) Add(t Task) int {
	id, _ := g.AddCounted(t)
	return id
}

// Append appends *t (by copy) without maintaining the per-name occurrence
// counter. Submitters that never consult occurrence indices (no fault plan
// to match against) use it to skip the map work on the hot path; the
// pointer parameter spares a second copy of the wide struct. Mixing Append
// with AddCounted on one graph skews the indices AddCounted hands out, so
// a graph should stick to one of the two.
func (g *Graph) Append(t *Task) int {
	g.mu.Lock()
	id := len(g.tasks)
	g.tasks = append(g.tasks, *t)
	g.tasks[id].ID = id
	g.mu.Unlock()
	return id
}

// AddCounted appends a task and returns its assigned ID together with its
// occurrence index among same-named tasks (0 for the first "svc_fit", 1 for
// the second, ...). Both are assigned under one lock, so the occurrence
// order always matches graph-ID order — what fault plans match against.
func (g *Graph) AddCounted(t Task) (id, occ int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t.ID = len(g.tasks)
	g.tasks = append(g.tasks, t)
	if g.nameCount == nil {
		g.nameCount = map[string]int{}
	}
	occ = g.nameCount[t.Name]
	g.nameCount[t.Name] = occ + 1
	return t.ID, occ
}

// RecordFailure appends a failed-attempt event. CostFraction is clamped to
// [0, 1]; non-finite values become 1 (full cost charged).
func (g *Graph) RecordFailure(ev FailureEvent) {
	if !(ev.CostFraction >= 0 && ev.CostFraction <= 1) {
		ev.CostFraction = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.failures = append(g.failures, ev)
}

// FailureEvents returns a snapshot of all recorded failed attempts, in
// record order.
func (g *Graph) FailureEvents() []FailureEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]FailureEvent, len(g.failures))
	copy(out, g.failures)
	return out
}

// FailuresByTask groups the failure events by task ID, each slice sorted by
// attempt — the shape the virtual-cluster replay consumes.
func (g *Graph) FailuresByTask() map[int][]FailureEvent {
	out := map[int][]FailureEvent{}
	for _, ev := range g.FailureEvents() {
		out[ev.Task] = append(out[ev.Task], ev)
	}
	for _, evs := range out {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Attempt < evs[j].Attempt })
	}
	return out
}

// MarkDegraded records that a task exhausted its attempts and published its
// declared fallback instead of a computed value.
func (g *Graph) MarkDegraded(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.degraded == nil {
		g.degraded = map[int]bool{}
	}
	g.degraded[id] = true
}

// IsDegraded reports whether the task's published value is its fallback.
func (g *Graph) IsDegraded(id int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.degraded[id]
}

// DegradedTasks returns the IDs of degraded tasks in ascending order.
func (g *Graph) DegradedTasks() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, 0, len(g.degraded))
	for id := range g.degraded {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Attempts returns how many attempts the task took: failed attempts plus
// the final successful one — or failed attempts alone when the task
// degraded (its fallback stood in; nothing succeeded).
func (g *Graph) Attempts(id int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, ev := range g.failures {
		if ev.Task == id {
			n++
		}
	}
	if g.degraded[id] {
		return n
	}
	return n + 1
}

// WithoutFailures returns a copy of the graph with the same tasks but no
// failure events or degraded marks — the fault-free baseline a faulty
// replay is compared against (cmd/scaling -faults).
func (g *Graph) WithoutFailures() *Graph {
	out := New()
	for _, t := range g.Tasks() {
		deps := make([]Dep, len(t.Deps))
		copy(deps, t.Deps)
		t.Deps = deps
		out.Add(t)
	}
	return out
}

// Len returns the number of captured tasks.
func (g *Graph) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.tasks)
}

// Tasks returns a snapshot copy of the captured tasks in submission order.
func (g *Graph) Tasks() []Task {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Task, len(g.tasks))
	copy(out, g.tasks)
	return out
}

// Task returns the captured task with the given ID.
func (g *Graph) Task(id int) (Task, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.tasks) {
		return Task{}, false
	}
	return g.tasks[id], true
}

// Validate checks structural invariants: dependency and parent IDs must
// reference earlier tasks (the graph is a DAG by construction of submission
// order) and resource demands must be positive.
func (g *Graph) Validate() error {
	for _, t := range g.Tasks() {
		if t.Parent >= t.ID {
			return fmt.Errorf("graph: task %d has parent %d not submitted before it", t.ID, t.Parent)
		}
		for _, d := range t.Deps {
			if d.Task < 0 || d.Task >= t.ID {
				return fmt.Errorf("graph: task %d depends on %d, not submitted before it", t.ID, d.Task)
			}
		}
		if t.Cores < 0 || t.GPUs < 0 {
			return fmt.Errorf("graph: task %d has negative resource demand", t.ID)
		}
		if t.Cores == 0 && t.GPUs == 0 {
			return fmt.Errorf("graph: task %d demands no resources", t.ID)
		}
		if t.Cost < 0 {
			return fmt.Errorf("graph: task %d has negative cost", t.ID)
		}
		if t.Retries < 0 {
			return fmt.Errorf("graph: task %d has negative retry budget", t.ID)
		}
		if t.BackoffSec < 0 || t.BackoffSec != t.BackoffSec {
			return fmt.Errorf("graph: task %d has invalid backoff %v", t.ID, t.BackoffSec)
		}
	}
	n := g.Len()
	for _, ev := range g.FailureEvents() {
		if ev.Task < 0 || ev.Task >= n {
			return fmt.Errorf("graph: failure event references unknown task %d", ev.Task)
		}
		if ev.Attempt < 0 {
			return fmt.Errorf("graph: failure event for task %d has negative attempt", ev.Task)
		}
		if !(ev.CostFraction >= 0 && ev.CostFraction <= 1) {
			return fmt.Errorf("graph: failure event for task %d has cost fraction %v outside [0,1]", ev.Task, ev.CostFraction)
		}
	}
	for _, id := range g.DegradedTasks() {
		if id < 0 || id >= n {
			return fmt.Errorf("graph: degraded mark references unknown task %d", id)
		}
	}
	return nil
}

// CriticalPath returns the length, in cost-seconds, of the longest
// dependency chain, ignoring resource limits and transfers. No schedule on
// any finite cluster can beat it; internal/cluster tests assert
// makespan >= CriticalPath.
//
// Nesting is honoured: a child cannot start before its parent starts, and a
// parent does not complete (for its dependents) until all descendants do.
func (g *Graph) CriticalPath() float64 {
	tasks := g.Tasks()
	n := len(tasks)
	children := make([][]int, n)
	for _, t := range tasks {
		if t.Parent >= 0 {
			children[t.Parent] = append(children[t.Parent], t.ID)
		}
	}
	// start(t) = max(start(parent), fin(dep)...)
	// fin(t)   = max(start(t)+cost, fin(child)...)
	// The mutual recursion is acyclic because the runtime cannot create a
	// task that depends on the future of one of its own ancestors; memoise
	// both quantities.
	start := make([]float64, n)
	fin := make([]float64, n)
	haveStart := make([]bool, n)
	haveFin := make([]bool, n)
	var startOf, finOf func(i int) float64
	startOf = func(i int) float64 {
		if haveStart[i] {
			return start[i]
		}
		haveStart[i] = true // pre-mark: defensive against malformed cycles
		t := tasks[i]
		s := 0.0
		if t.Parent >= 0 {
			s = startOf(t.Parent)
		}
		for _, d := range t.Deps {
			if f := finOf(d.Task); f > s {
				s = f
			}
		}
		start[i] = s
		return s
	}
	finOf = func(i int) float64 {
		if haveFin[i] {
			return fin[i]
		}
		haveFin[i] = true
		f := startOf(i) + tasks[i].Cost
		for _, c := range children[i] {
			if cf := finOf(c); cf > f {
				f = cf
			}
		}
		fin[i] = f
		return f
	}
	var cp float64
	for i := range tasks {
		if f := finOf(i); f > cp {
			cp = f
		}
	}
	return cp
}

// TotalCost returns the sum of all task costs (the sequential work).
func (g *Graph) TotalCost() float64 {
	var s float64
	for _, t := range g.Tasks() {
		s += t.Cost
	}
	return s
}

// MaxWidth returns an upper bound on usable parallelism: the maximum number
// of tasks whose dependency depth is equal (levels of the DAG).
func (g *Graph) MaxWidth() int {
	tasks := g.Tasks()
	depth := make([]int, len(tasks))
	counts := map[int]int{}
	width := 0
	for i, t := range tasks {
		d := 0
		if t.Parent >= 0 && depth[t.Parent]+1 > d {
			d = depth[t.Parent] + 1
		}
		for _, dep := range t.Deps {
			if depth[dep.Task]+1 > d {
				d = depth[dep.Task] + 1
			}
		}
		depth[i] = d
		counts[d]++
		if counts[d] > width {
			width = counts[d]
		}
	}
	return width
}

// dotPalette mirrors the multi-color task circles of the paper's PyCOMPSs
// execution graphs (Figures 4, 6, 8, 9, 10): each task name gets a stable
// color.
var dotPalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
	"#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
}

// DOT renders the captured graph in Graphviz format, one node per task,
// colored by task name, with nested tasks grouped in subgraph clusters —
// the same visual structure as the execution graphs in the paper.
func (g *Graph) DOT(title string) string {
	tasks := g.Tasks()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [style=filled, shape=circle, fontsize=9];\n")

	colorOf := map[string]string{}
	var names []string
	for _, t := range tasks {
		if _, ok := colorOf[t.Name]; !ok {
			colorOf[t.Name] = dotPalette[len(colorOf)%len(dotPalette)]
			names = append(names, t.Name)
		}
	}

	children := map[int][]int{}
	var top []int
	for _, t := range tasks {
		if t.Parent >= 0 {
			children[t.Parent] = append(children[t.Parent], t.ID)
		} else {
			top = append(top, t.ID)
		}
	}

	var emit func(indent string, ids []int)
	emit = func(indent string, ids []int) {
		for _, id := range ids {
			t := tasks[id]
			fmt.Fprintf(&b, "%st%d [label=%q, fillcolor=%q];\n", indent, id, fmt.Sprintf("%d", id), colorOf[t.Name])
			if kids := children[id]; len(kids) > 0 {
				fmt.Fprintf(&b, "%ssubgraph cluster_t%d {\n%s  label=%q; style=dashed;\n", indent, id, indent, t.Name)
				emit(indent+"  ", kids)
				fmt.Fprintf(&b, "%s}\n", indent)
			}
		}
	}
	emit("  ", top)
	for _, t := range tasks {
		for _, d := range t.Deps {
			style := ""
			if d.ViaMaster {
				style = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  t%d -> t%d%s;\n", d.Task, t.ID, style)
		}
	}
	// Legend.
	b.WriteString("  subgraph cluster_legend {\n    label=\"tasks\"; style=solid;\n")
	sort.Strings(names)
	for i, n := range names {
		fmt.Fprintf(&b, "    legend%d [label=%q, shape=box, fillcolor=%q];\n", i, n, colorOf[n])
	}
	b.WriteString("  }\n}\n")
	return b.String()
}

// Scaled returns a copy of the graph with every task's cost multiplied by
// costF and its output size by bytesF. The experiment harness uses it to
// emulate paper-scale payloads: the captured graph's *structure* comes from
// a laptop-scale run, while per-task work and data sizes are rescaled to
// the ratios of the paper's dataset (EXPERIMENTS.md derives the factors).
// Failure events and degraded marks carry over unchanged; BackoffSec is a
// retry policy parameter, not workload, and is not scaled.
func (g *Graph) Scaled(costF, bytesF float64) *Graph {
	out := New()
	for _, t := range g.Tasks() {
		t.Cost *= costF
		t.OutBytes = int64(float64(t.OutBytes) * bytesF)
		deps := make([]Dep, len(t.Deps))
		copy(deps, t.Deps)
		t.Deps = deps
		out.Add(t)
	}
	for _, ev := range g.FailureEvents() {
		out.RecordFailure(ev)
	}
	for _, id := range g.DegradedTasks() {
		out.MarkDegraded(id)
	}
	return out
}

// CountByName returns how many tasks of each name the graph contains —
// handy for asserting workflow shapes in tests ("one svc_fit per row block").
func (g *Graph) CountByName() map[string]int {
	out := map[string]int{}
	for _, t := range g.Tasks() {
		out[t.Name]++
	}
	return out
}
