// Package graph holds the task dependency graph captured while a workflow
// executes on the internal/compss runtime.
//
// The graph is the bridge between the programming model and the performance
// model: internal/compss appends one node per submitted task (in program
// order, with data dependencies, nesting parentage and resource demands) and
// internal/cluster replays the captured graph against a virtual cluster
// description to obtain the schedule the paper's figures are derived from.
// A single captured graph can be replayed on any number of cluster
// configurations, which is how the core-count sweeps of Figures 11a-c and 12
// are produced from one workflow run.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Dep is a dependency on the output of another task.
type Dep struct {
	// Task is the ID of the producing task.
	Task int
	// ViaMaster marks dependencies introduced by a synchronisation in the
	// submitting program (a Future.Get followed by later submissions). The
	// data makes an extra hop through the master process, which the
	// scheduler charges as an additional transfer.
	ViaMaster bool
	// OrderOnly marks synchronisation-ordering dependencies that carry no
	// data of their own: the consumer merely cannot start before the
	// producer's value reached the master. The scheduler delays the
	// consumer by the producer→master hop but moves no bytes (the value
	// travelled once; ordering does not re-send it).
	OrderOnly bool
}

// Task is one node of the captured graph.
type Task struct {
	// ID is the submission order, unique and monotonically increasing.
	ID int
	// Name groups tasks of the same kind (e.g. "svc_fit", "merge_sv"); the
	// DOT export colors nodes by Name like the PyCOMPSs graphs in the paper.
	Name string
	// Parent is the ID of the task whose body submitted this task (nesting),
	// or -1 for tasks submitted by the main program.
	Parent int
	// Deps lists data dependencies.
	Deps []Dep
	// Cost is the task's virtual duration in seconds on a reference core
	// (or reference GPU when GPUs > 0).
	Cost float64
	// Cores and GPUs are the resource demand. Cores defaults to 1 for
	// compute tasks; a GPU task may also pin cores.
	Cores, GPUs int
	// OutBytes is the size of the task's output, used for transfer costs.
	OutBytes int64
}

// Graph is an append-only record of submitted tasks. It is safe for
// concurrent use: nested tasks submit from worker goroutines.
type Graph struct {
	mu    sync.Mutex
	tasks []Task
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Add appends a task and returns its assigned ID.
func (g *Graph) Add(t Task) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	t.ID = len(g.tasks)
	g.tasks = append(g.tasks, t)
	return t.ID
}

// Len returns the number of captured tasks.
func (g *Graph) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.tasks)
}

// Tasks returns a snapshot copy of the captured tasks in submission order.
func (g *Graph) Tasks() []Task {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Task, len(g.tasks))
	copy(out, g.tasks)
	return out
}

// Task returns the captured task with the given ID.
func (g *Graph) Task(id int) (Task, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.tasks) {
		return Task{}, false
	}
	return g.tasks[id], true
}

// Validate checks structural invariants: dependency and parent IDs must
// reference earlier tasks (the graph is a DAG by construction of submission
// order) and resource demands must be positive.
func (g *Graph) Validate() error {
	for _, t := range g.Tasks() {
		if t.Parent >= t.ID {
			return fmt.Errorf("graph: task %d has parent %d not submitted before it", t.ID, t.Parent)
		}
		for _, d := range t.Deps {
			if d.Task < 0 || d.Task >= t.ID {
				return fmt.Errorf("graph: task %d depends on %d, not submitted before it", t.ID, d.Task)
			}
		}
		if t.Cores < 0 || t.GPUs < 0 {
			return fmt.Errorf("graph: task %d has negative resource demand", t.ID)
		}
		if t.Cores == 0 && t.GPUs == 0 {
			return fmt.Errorf("graph: task %d demands no resources", t.ID)
		}
		if t.Cost < 0 {
			return fmt.Errorf("graph: task %d has negative cost", t.ID)
		}
	}
	return nil
}

// CriticalPath returns the length, in cost-seconds, of the longest
// dependency chain, ignoring resource limits and transfers. No schedule on
// any finite cluster can beat it; internal/cluster tests assert
// makespan >= CriticalPath.
//
// Nesting is honoured: a child cannot start before its parent starts, and a
// parent does not complete (for its dependents) until all descendants do.
func (g *Graph) CriticalPath() float64 {
	tasks := g.Tasks()
	n := len(tasks)
	children := make([][]int, n)
	for _, t := range tasks {
		if t.Parent >= 0 {
			children[t.Parent] = append(children[t.Parent], t.ID)
		}
	}
	// start(t) = max(start(parent), fin(dep)...)
	// fin(t)   = max(start(t)+cost, fin(child)...)
	// The mutual recursion is acyclic because the runtime cannot create a
	// task that depends on the future of one of its own ancestors; memoise
	// both quantities.
	start := make([]float64, n)
	fin := make([]float64, n)
	haveStart := make([]bool, n)
	haveFin := make([]bool, n)
	var startOf, finOf func(i int) float64
	startOf = func(i int) float64 {
		if haveStart[i] {
			return start[i]
		}
		haveStart[i] = true // pre-mark: defensive against malformed cycles
		t := tasks[i]
		s := 0.0
		if t.Parent >= 0 {
			s = startOf(t.Parent)
		}
		for _, d := range t.Deps {
			if f := finOf(d.Task); f > s {
				s = f
			}
		}
		start[i] = s
		return s
	}
	finOf = func(i int) float64 {
		if haveFin[i] {
			return fin[i]
		}
		haveFin[i] = true
		f := startOf(i) + tasks[i].Cost
		for _, c := range children[i] {
			if cf := finOf(c); cf > f {
				f = cf
			}
		}
		fin[i] = f
		return f
	}
	var cp float64
	for i := range tasks {
		if f := finOf(i); f > cp {
			cp = f
		}
	}
	return cp
}

// TotalCost returns the sum of all task costs (the sequential work).
func (g *Graph) TotalCost() float64 {
	var s float64
	for _, t := range g.Tasks() {
		s += t.Cost
	}
	return s
}

// MaxWidth returns an upper bound on usable parallelism: the maximum number
// of tasks whose dependency depth is equal (levels of the DAG).
func (g *Graph) MaxWidth() int {
	tasks := g.Tasks()
	depth := make([]int, len(tasks))
	counts := map[int]int{}
	width := 0
	for i, t := range tasks {
		d := 0
		if t.Parent >= 0 && depth[t.Parent]+1 > d {
			d = depth[t.Parent] + 1
		}
		for _, dep := range t.Deps {
			if depth[dep.Task]+1 > d {
				d = depth[dep.Task] + 1
			}
		}
		depth[i] = d
		counts[d]++
		if counts[d] > width {
			width = counts[d]
		}
	}
	return width
}

// dotPalette mirrors the multi-color task circles of the paper's PyCOMPSs
// execution graphs (Figures 4, 6, 8, 9, 10): each task name gets a stable
// color.
var dotPalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
	"#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
}

// DOT renders the captured graph in Graphviz format, one node per task,
// colored by task name, with nested tasks grouped in subgraph clusters —
// the same visual structure as the execution graphs in the paper.
func (g *Graph) DOT(title string) string {
	tasks := g.Tasks()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [style=filled, shape=circle, fontsize=9];\n")

	colorOf := map[string]string{}
	var names []string
	for _, t := range tasks {
		if _, ok := colorOf[t.Name]; !ok {
			colorOf[t.Name] = dotPalette[len(colorOf)%len(dotPalette)]
			names = append(names, t.Name)
		}
	}

	children := map[int][]int{}
	var top []int
	for _, t := range tasks {
		if t.Parent >= 0 {
			children[t.Parent] = append(children[t.Parent], t.ID)
		} else {
			top = append(top, t.ID)
		}
	}

	var emit func(indent string, ids []int)
	emit = func(indent string, ids []int) {
		for _, id := range ids {
			t := tasks[id]
			fmt.Fprintf(&b, "%st%d [label=%q, fillcolor=%q];\n", indent, id, fmt.Sprintf("%d", id), colorOf[t.Name])
			if kids := children[id]; len(kids) > 0 {
				fmt.Fprintf(&b, "%ssubgraph cluster_t%d {\n%s  label=%q; style=dashed;\n", indent, id, indent, t.Name)
				emit(indent+"  ", kids)
				fmt.Fprintf(&b, "%s}\n", indent)
			}
		}
	}
	emit("  ", top)
	for _, t := range tasks {
		for _, d := range t.Deps {
			style := ""
			if d.ViaMaster {
				style = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  t%d -> t%d%s;\n", d.Task, t.ID, style)
		}
	}
	// Legend.
	b.WriteString("  subgraph cluster_legend {\n    label=\"tasks\"; style=solid;\n")
	sort.Strings(names)
	for i, n := range names {
		fmt.Fprintf(&b, "    legend%d [label=%q, shape=box, fillcolor=%q];\n", i, n, colorOf[n])
	}
	b.WriteString("  }\n}\n")
	return b.String()
}

// Scaled returns a copy of the graph with every task's cost multiplied by
// costF and its output size by bytesF. The experiment harness uses it to
// emulate paper-scale payloads: the captured graph's *structure* comes from
// a laptop-scale run, while per-task work and data sizes are rescaled to
// the ratios of the paper's dataset (EXPERIMENTS.md derives the factors).
func (g *Graph) Scaled(costF, bytesF float64) *Graph {
	out := New()
	for _, t := range g.Tasks() {
		t.Cost *= costF
		t.OutBytes = int64(float64(t.OutBytes) * bytesF)
		deps := make([]Dep, len(t.Deps))
		copy(deps, t.Deps)
		t.Deps = deps
		out.Add(t)
	}
	return out
}

// CountByName returns how many tasks of each name the graph contains —
// handy for asserting workflow shapes in tests ("one svc_fit per row block").
func (g *Graph) CountByName() map[string]int {
	out := map[string]int{}
	for _, t := range g.Tasks() {
		out[t.Name]++
	}
	return out
}
