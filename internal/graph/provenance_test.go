package graph

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestProvenanceRoundTrip(t *testing.T) {
	g := New()
	a := g.Add(Task{Name: "load", Parent: -1, Cost: 1, Cores: 1, OutBytes: 64})
	g.Add(Task{Name: "fit", Parent: -1, Cost: 5, Cores: 8,
		Deps: []Dep{{Task: a, ViaMaster: true, OrderOnly: true}}})

	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	p := g.Export("csvm-fit", map[string]string{"block_rows": "50"}, now)
	if p.TaskCount != 2 || p.TotalCost != 6 || p.Workflow != "csvm-fit" {
		t.Fatalf("export summary: %+v", p)
	}

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	js := buf.String()
	for _, want := range []string{`"workflow": "csvm-fit"`, `"block_rows": "50"`, `"critical_path_sec"`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %q:\n%s", want, js)
		}
	}

	p2, g2, err := ReadProvenance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Workflow != "csvm-fit" || p2.Metadata["block_rows"] != "50" {
		t.Fatalf("decoded provenance: %+v", p2)
	}
	if g2.Len() != 2 {
		t.Fatalf("reconstructed graph has %d tasks", g2.Len())
	}
	t2, _ := g2.Task(1)
	if len(t2.Deps) != 1 || !t2.Deps[0].ViaMaster || !t2.Deps[0].OrderOnly {
		t.Fatalf("dep flags lost: %+v", t2.Deps)
	}
	if g2.CriticalPath() != g.CriticalPath() {
		t.Fatal("reconstructed graph differs")
	}
}

func TestReadProvenanceRejectsGarbage(t *testing.T) {
	if _, _, err := ReadProvenance(strings.NewReader("not json")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestReadProvenanceRejectsBadOrdering(t *testing.T) {
	js := `{"workflow":"x","tasks":[{"ID":5,"Name":"t","Parent":-1,"Cost":1,"Cores":1}]}`
	if _, _, err := ReadProvenance(strings.NewReader(js)); err == nil {
		t.Fatal("want ordering error")
	}
}

func TestReadProvenanceRejectsInvalidGraph(t *testing.T) {
	js := `{"workflow":"x","tasks":[{"ID":0,"Name":"t","Parent":3,"Cost":1,"Cores":1}]}`
	if _, _, err := ReadProvenance(strings.NewReader(js)); err == nil {
		t.Fatal("want validation error")
	}
}
