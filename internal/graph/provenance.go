package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Provenance is a serializable record of one workflow execution, in the
// spirit of the workflow-provenance artifacts the paper publishes on
// WorkflowHub: the complete task graph plus free-form experiment metadata,
// enough to re-derive every schedule and figure from the stored JSON.
type Provenance struct {
	// Workflow names the experiment (e.g. "csvm-fit").
	Workflow string `json:"workflow"`
	// CreatedAt stamps the export.
	CreatedAt time.Time `json:"created_at"`
	// Metadata carries experiment parameters and results (block sizes,
	// accuracies, cluster names → makespans, ...).
	Metadata map[string]string `json:"metadata,omitempty"`
	// Tasks is the captured graph in submission order.
	Tasks []Task `json:"tasks"`
	// Summary statistics, precomputed for human readers.
	TaskCount    int     `json:"task_count"`
	TotalCost    float64 `json:"total_cost_sec"`
	CriticalPath float64 `json:"critical_path_sec"`
}

// Export builds the provenance record for this graph.
func (g *Graph) Export(workflow string, metadata map[string]string, now time.Time) Provenance {
	return Provenance{
		Workflow:     workflow,
		CreatedAt:    now,
		Metadata:     metadata,
		Tasks:        g.Tasks(),
		TaskCount:    g.Len(),
		TotalCost:    g.TotalCost(),
		CriticalPath: g.CriticalPath(),
	}
}

// WriteJSON serializes the provenance record.
func (p Provenance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProvenance parses a provenance record and reconstructs its graph.
func ReadProvenance(r io.Reader) (Provenance, *Graph, error) {
	var p Provenance
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return Provenance{}, nil, fmt.Errorf("graph: decoding provenance: %w", err)
	}
	g := New()
	for i, t := range p.Tasks {
		if t.ID != i {
			return Provenance{}, nil, fmt.Errorf("graph: provenance task %d has id %d (not submission-ordered)", i, t.ID)
		}
		g.Add(t)
	}
	if err := g.Validate(); err != nil {
		return Provenance{}, nil, fmt.Errorf("graph: provenance graph invalid: %w", err)
	}
	return p, g, nil
}
