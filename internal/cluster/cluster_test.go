package cluster

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"taskml/internal/graph"
)

// zeroOverhead strips latency/overhead so schedules are exact arithmetic.
// Free transfers are spelled with infinite bandwidth; zero bandwidth is a
// validation error.
func zeroOverhead(c Cluster) Cluster {
	c.LatencySec = 0
	c.BandwidthBps = math.Inf(1)
	c.TaskOverheadSec = 0
	return c
}

func mustSchedule(t *testing.T, g *graph.Graph, c Cluster) *Schedule {
	t.Helper()
	s, err := ScheduleGraph(g, c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChainIsSequential(t *testing.T) {
	g := graph.New()
	prev := -1
	for i := 0; i < 5; i++ {
		tk := graph.Task{Name: "s", Parent: -1, Cost: 2, Cores: 1}
		if prev >= 0 {
			tk.Deps = []graph.Dep{{Task: prev}}
		}
		prev = g.Add(tk)
	}
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 4, 0)))
	if math.Abs(s.Makespan-10) > 1e-9 {
		t.Fatalf("Makespan = %v, want 10", s.Makespan)
	}
}

func TestFanOutUsesAllCores(t *testing.T) {
	g := graph.New()
	for i := 0; i < 8; i++ {
		g.Add(graph.Task{Name: "w", Parent: -1, Cost: 1, Cores: 1})
	}
	// 4 cores → two waves of 4.
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 4, 0)))
	if math.Abs(s.Makespan-2) > 1e-9 {
		t.Fatalf("Makespan = %v, want 2", s.Makespan)
	}
	// 8 cores → one wave.
	s = mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 8, 0)))
	if math.Abs(s.Makespan-1) > 1e-9 {
		t.Fatalf("Makespan = %v, want 1", s.Makespan)
	}
}

func TestMakespanAtLeastCriticalPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 2 + rng.Intn(25)
		for i := 0; i < n; i++ {
			tk := graph.Task{Name: "t", Parent: -1, Cost: rng.Float64() * 5, Cores: 1}
			for d := 0; d < i; d++ {
				if rng.Float64() < 0.15 {
					tk.Deps = append(tk.Deps, graph.Dep{Task: d})
				}
			}
			g.Add(tk)
		}
		c := zeroOverhead(Homogeneous("c", 1+rng.Intn(3), 1+rng.Intn(8), 0))
		s, err := ScheduleGraph(g, c)
		if err != nil {
			return false
		}
		return s.Makespan >= g.CriticalPath()-1e-9 &&
			s.Makespan <= g.TotalCost()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferChargedAcrossNodes(t *testing.T) {
	// Two 1-core nodes force the two parallel producers apart; the consumer
	// must pull one output across the interconnect.
	g := graph.New()
	a := g.Add(graph.Task{Name: "p", Parent: -1, Cost: 1, Cores: 1, OutBytes: 1000})
	b := g.Add(graph.Task{Name: "p", Parent: -1, Cost: 1, Cores: 1, OutBytes: 1000})
	g.Add(graph.Task{Name: "c", Parent: -1, Cost: 1, Cores: 1, Deps: []graph.Dep{{Task: a}, {Task: b}}})

	c := Homogeneous("c", 2, 1, 0)
	c.TaskOverheadSec = 0
	c.LatencySec = 0.5
	c.BandwidthBps = 1000 // 1 s to move 1000 bytes

	s := mustSchedule(t, g, c)
	// Producers run in parallel (end t=1); consumer lands on one of their
	// nodes, pays 0 for the local dep and 0.5+1.0 for the remote one.
	if math.Abs(s.Makespan-3.5) > 1e-9 {
		t.Fatalf("Makespan = %v, want 3.5", s.Makespan)
	}
	if s.BytesMoved != 1000 {
		t.Fatalf("BytesMoved = %d, want 1000", s.BytesMoved)
	}
}

func TestNoTransferOnSameNode(t *testing.T) {
	g := graph.New()
	a := g.Add(graph.Task{Name: "p", Parent: -1, Cost: 1, Cores: 1, OutBytes: 1 << 20})
	g.Add(graph.Task{Name: "c", Parent: -1, Cost: 1, Cores: 1, Deps: []graph.Dep{{Task: a}}})
	c := Homogeneous("c", 1, 2, 0)
	c.TaskOverheadSec = 0
	c.LatencySec = 10
	c.BandwidthBps = 1
	s := mustSchedule(t, g, c)
	if math.Abs(s.Makespan-2) > 1e-9 {
		t.Fatalf("Makespan = %v, want 2 (locality must be free)", s.Makespan)
	}
	if s.BytesMoved != 0 {
		t.Fatalf("BytesMoved = %d, want 0", s.BytesMoved)
	}
}

func TestViaMasterPaysTwoHopsEvenLocally(t *testing.T) {
	g := graph.New()
	a := g.Add(graph.Task{Name: "p", Parent: -1, Cost: 1, Cores: 1, OutBytes: 0})
	g.Add(graph.Task{Name: "c", Parent: -1, Cost: 1, Cores: 1, Deps: []graph.Dep{{Task: a, ViaMaster: true}}})
	c := Homogeneous("c", 1, 2, 0)
	c.TaskOverheadSec = 0
	c.LatencySec = 0.25
	c.BandwidthBps = math.Inf(1)
	s := mustSchedule(t, g, c)
	if math.Abs(s.Makespan-2.5) > 1e-9 {
		t.Fatalf("Makespan = %v, want 2.5 (two master hops)", s.Makespan)
	}
}

func TestNestingChildAfterParentStartAndParentFinalizedAfterChildren(t *testing.T) {
	g := graph.New()
	p := g.Add(graph.Task{Name: "fold", Parent: -1, Cost: 1, Cores: 1})
	c1 := g.Add(graph.Task{Name: "epoch", Parent: p, Cost: 4, Cores: 1})
	g.Add(graph.Task{Name: "epoch", Parent: p, Cost: 4, Cores: 1, Deps: []graph.Dep{{Task: c1}}})
	g.Add(graph.Task{Name: "score", Parent: -1, Cost: 1, Cores: 1, Deps: []graph.Dep{{Task: p}}})
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 4, 0)))
	// parent starts at 0; children chain 0→4→8; score waits for subtree: 8→9.
	if math.Abs(s.Makespan-9) > 1e-9 {
		t.Fatalf("Makespan = %v, want 9", s.Makespan)
	}
	if s.Placements[3].Start < 8-1e-9 {
		t.Fatalf("dependent of parent started at %v, before children finished", s.Placements[3].Start)
	}
}

func TestMultiCoreTasksSerializeOnSmallNode(t *testing.T) {
	g := graph.New()
	g.Add(graph.Task{Name: "big", Parent: -1, Cost: 1, Cores: 8})
	g.Add(graph.Task{Name: "big", Parent: -1, Cost: 1, Cores: 8})
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 8, 0)))
	if math.Abs(s.Makespan-2) > 1e-9 {
		t.Fatalf("Makespan = %v, want 2 on one 8-core node", s.Makespan)
	}
	s = mustSchedule(t, g, zeroOverhead(Homogeneous("c", 2, 8, 0)))
	if math.Abs(s.Makespan-1) > 1e-9 {
		t.Fatalf("Makespan = %v, want 1 on two 8-core nodes", s.Makespan)
	}
}

func TestGPUTasksNeedGPUNodes(t *testing.T) {
	g := graph.New()
	g.Add(graph.Task{Name: "train", Parent: -1, Cost: 1, Cores: 1, GPUs: 1})
	if _, err := ScheduleGraph(g, Homogeneous("cpuonly", 2, 8, 0)); err == nil {
		t.Fatal("want error: GPU task on CPU-only cluster")
	}
	s := mustSchedule(t, g, zeroOverhead(CTEPower(1)))
	if s.Makespan <= 0 {
		t.Fatal("GPU task did not schedule on CTE-Power")
	}
}

func TestGPUContention(t *testing.T) {
	g := graph.New()
	for i := 0; i < 8; i++ {
		g.Add(graph.Task{Name: "train", Parent: -1, Cost: 1, Cores: 1, GPUs: 1})
	}
	// One CTE-Power node has 4 GPUs → two waves.
	s := mustSchedule(t, g, zeroOverhead(CTEPower(1)))
	if math.Abs(s.Makespan-2) > 1e-9 {
		t.Fatalf("Makespan = %v, want 2 (4 GPUs, 8 tasks)", s.Makespan)
	}
}

func TestGPUSpeedScalesDuration(t *testing.T) {
	g := graph.New()
	g.Add(graph.Task{Name: "train", Parent: -1, Cost: 10, Cores: 1, GPUs: 1})
	c := zeroOverhead(CTEPower(1))
	for i := range c.Nodes {
		c.Nodes[i].GPUSpeed = 5
	}
	s := mustSchedule(t, g, c)
	if math.Abs(s.Makespan-2) > 1e-9 {
		t.Fatalf("Makespan = %v, want 2 with GPUSpeed 5", s.Makespan)
	}
}

func TestEmptyClusterErrors(t *testing.T) {
	g := graph.New()
	g.Add(graph.Task{Name: "t", Parent: -1, Cost: 1, Cores: 1})
	if _, err := ScheduleGraph(g, Cluster{Name: "empty"}); err == nil {
		t.Fatal("want error for empty cluster")
	}
}

func TestOversizedTaskErrors(t *testing.T) {
	g := graph.New()
	g.Add(graph.Task{Name: "t", Parent: -1, Cost: 1, Cores: 64})
	if _, err := ScheduleGraph(g, Homogeneous("c", 4, 8, 0)); err == nil {
		t.Fatal("want error for 64-core task on 8-core nodes")
	}
}

func TestInvalidGraphRejected(t *testing.T) {
	g := graph.New()
	g.Add(graph.Task{Name: "t", Parent: 5, Cost: 1, Cores: 1})
	if _, err := ScheduleGraph(g, Homogeneous("c", 1, 1, 0)); err == nil {
		t.Fatal("want validation error")
	}
}

func TestTaskOverheadAdds(t *testing.T) {
	g := graph.New()
	g.Add(graph.Task{Name: "t", Parent: -1, Cost: 1, Cores: 1})
	c := Homogeneous("c", 1, 1, 0)
	c.TaskOverheadSec = 0.5
	c.LatencySec = 0
	s := mustSchedule(t, g, c)
	if math.Abs(s.Makespan-1.5) > 1e-9 {
		t.Fatalf("Makespan = %v, want 1.5", s.Makespan)
	}
}

func TestUtilizationPerfectOnEmbarrassinglyParallel(t *testing.T) {
	g := graph.New()
	for i := 0; i < 16; i++ {
		g.Add(graph.Task{Name: "t", Parent: -1, Cost: 1, Cores: 1})
	}
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 2, 8, 0)))
	if math.Abs(s.Utilization-1) > 1e-9 {
		t.Fatalf("Utilization = %v, want 1", s.Utilization)
	}
}

func TestCoreSpeedScalesDuration(t *testing.T) {
	g := graph.New()
	g.Add(graph.Task{Name: "t", Parent: -1, Cost: 4, Cores: 1})
	c := zeroOverhead(Homogeneous("c", 1, 1, 0))
	c.Nodes[0].CoreSpeed = 2
	s := mustSchedule(t, g, c)
	if math.Abs(s.Makespan-2) > 1e-9 {
		t.Fatalf("Makespan = %v, want 2 with CoreSpeed 2", s.Makespan)
	}
}

func TestSweepMonotoneOnFanOut(t *testing.T) {
	g := graph.New()
	for i := 0; i < 96; i++ {
		g.Add(graph.Task{Name: "t", Parent: -1, Cost: 1, Cores: 1})
	}
	var configs []Cluster
	for _, nodes := range []int{1, 2, 4, 8} {
		configs = append(configs, zeroOverhead(Homogeneous("c", nodes, 12, 0)))
	}
	times, err := Sweep(g, configs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(times); i++ {
		if times[i] > times[i-1]+1e-9 {
			t.Fatalf("fan-out sweep not monotone: %v", times)
		}
	}
	if math.Abs(times[0]-8) > 1e-9 || math.Abs(times[3]-1) > 1e-9 {
		t.Fatalf("sweep = %v, want [8 4 2 1]", times)
	}
}

func TestPresets(t *testing.T) {
	mn := MareNostrum4(3)
	if mn.TotalCores() != 144 || mn.TotalGPUs() != 0 {
		t.Fatalf("MareNostrum4(3): %d cores %d gpus", mn.TotalCores(), mn.TotalGPUs())
	}
	cte := CTEPower(2)
	if cte.TotalCores() != 80 || cte.TotalGPUs() != 8 {
		t.Fatalf("CTEPower(2): %d cores %d gpus", cte.TotalCores(), cte.TotalGPUs())
	}
}

func TestPlacementsCoverAllTasks(t *testing.T) {
	g := graph.New()
	a := g.Add(graph.Task{Name: "a", Parent: -1, Cost: 1, Cores: 1})
	g.Add(graph.Task{Name: "b", Parent: -1, Cost: 1, Cores: 1, Deps: []graph.Dep{{Task: a}}})
	s := mustSchedule(t, g, Homogeneous("c", 1, 2, 0))
	if len(s.Placements) != 2 {
		t.Fatalf("Placements = %d, want 2", len(s.Placements))
	}
	for id, p := range s.Placements {
		if p.Task != id || p.End < p.Start {
			t.Fatalf("bad placement %+v", p)
		}
	}
}

func TestEgressSerializesFanOut(t *testing.T) {
	// One producer with a large output feeding two consumers that must run
	// on other nodes (the producer's only core is occupied by a long
	// blocker): the producer's egress link serializes the two sends.
	g := graph.New()
	src := g.Add(graph.Task{Name: "gather", Parent: -1, Cost: 1, Cores: 1, OutBytes: 1000})
	g.Add(graph.Task{Name: "blocker", Parent: -1, Cost: 10, Cores: 1, Deps: []graph.Dep{{Task: src}}})
	for i := 0; i < 2; i++ {
		g.Add(graph.Task{Name: "use", Parent: -1, Cost: 1, Cores: 1, Deps: []graph.Dep{{Task: src}}})
	}
	c := Homogeneous("c", 3, 1, 0) // 1 core per node
	c.TaskOverheadSec = 0
	c.LatencySec = 0
	c.BandwidthBps = 1000 // 1 s per send
	s := mustSchedule(t, g, c)
	// Producer ends at 1 and its node stays busy until 11. The consumers go
	// remote: the first receives at 2 and ends at 3; the second's transfer
	// waits for the egress link (2→3) and it ends at 4.
	if math.Abs(s.Makespan-11) > 1e-9 || s.Placements[3].End != 4 && s.Placements[2].End != 4 {
		t.Fatalf("placements = %+v", s.Placements)
	}
	later := math.Max(s.Placements[2].End, s.Placements[3].End)
	earlier := math.Min(s.Placements[2].End, s.Placements[3].End)
	if math.Abs(earlier-3) > 1e-9 || math.Abs(later-4) > 1e-9 {
		t.Fatalf("consumer ends = %v, %v; want 3 and 4 (serialized egress)", earlier, later)
	}
}

func TestDeserializationChargesTaskInput(t *testing.T) {
	g := graph.New()
	a := g.Add(graph.Task{Name: "p", Parent: -1, Cost: 1, Cores: 1, OutBytes: 1000})
	g.Add(graph.Task{Name: "c", Parent: -1, Cost: 1, Cores: 1, Deps: []graph.Dep{{Task: a}}})
	c := zeroOverhead(Homogeneous("c", 1, 2, 0))
	c.DeserializeBps = 500 // 2 s to unmarshal 1000 bytes
	s := mustSchedule(t, g, c)
	// Local dependency: no transfer, but the consumer still pays 2 s of
	// deserialization → 1 + (1 + 2) = 4.
	if math.Abs(s.Makespan-4) > 1e-9 {
		t.Fatalf("Makespan = %v, want 4 with deserialization charge", s.Makespan)
	}
}

func TestMasterEgressSerializesSyncs(t *testing.T) {
	// Two via-master deps with big payloads from distinct producers: the
	// master link carries both, one after the other.
	g := graph.New()
	a := g.Add(graph.Task{Name: "p", Parent: -1, Cost: 1, Cores: 1, OutBytes: 1000})
	b := g.Add(graph.Task{Name: "p", Parent: -1, Cost: 1, Cores: 1, OutBytes: 1000})
	g.Add(graph.Task{Name: "c", Parent: -1, Cost: 0, Cores: 1,
		Deps: []graph.Dep{{Task: a, ViaMaster: true}, {Task: b, ViaMaster: true}}})
	c := zeroOverhead(Homogeneous("c", 1, 2, 0))
	c.BandwidthBps = 1000 // 1 s per hop, 2 s per via-master transfer
	s := mustSchedule(t, g, c)
	// Producers end at 1; master sends take 2 s each, serialized: 1+2+2 = 5.
	if math.Abs(s.Makespan-5) > 1e-9 {
		t.Fatalf("Makespan = %v, want 5 with serialized master egress", s.Makespan)
	}
}

func TestValidateRejectsBadClusters(t *testing.T) {
	base := func() Cluster { return Homogeneous("c", 1, 4, 0) }
	cases := []struct {
		name string
		mut  func(*Cluster)
	}{
		{"no nodes", func(c *Cluster) { c.Nodes = nil }},
		{"zero bandwidth", func(c *Cluster) { c.BandwidthBps = 0 }},
		{"NaN bandwidth", func(c *Cluster) { c.BandwidthBps = math.NaN() }},
		{"negative latency", func(c *Cluster) { c.LatencySec = -1 }},
		{"negative overhead", func(c *Cluster) { c.TaskOverheadSec = -0.5 }},
		{"negative deserialize", func(c *Cluster) { c.DeserializeBps = -1 }},
		{"node with no resources", func(c *Cluster) { c.Nodes[0] = NodeSpec{} }},
		{"cores without speed", func(c *Cluster) { c.Nodes[0].CoreSpeed = 0 }},
		{"negative cores", func(c *Cluster) { c.Nodes[0].Cores = -2 }},
	}
	for _, tc := range cases {
		c := base()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted the cluster", tc.name)
		}
		g := graph.New()
		g.Add(graph.Task{Name: "a", Parent: -1, Cost: 1, Cores: 1})
		if _, err := ScheduleGraph(g, c); err == nil {
			t.Fatalf("%s: ScheduleGraph accepted the cluster", tc.name)
		}
	}
	// The two spellings that must stay legal: infinite bandwidth (free
	// transfers) and zero DeserializeBps (deserialization model disabled).
	c := base()
	c.BandwidthBps = math.Inf(1)
	c.DeserializeBps = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate rejected a legal cluster: %v", err)
	}
}

// Replay arithmetic on one single-core node: a task of cost 4 fails its
// first attempt at fraction 0.5 (t=2), backs off 1 virtual second, reruns
// at t=3, and finishes at t=7. The lost attempt is 2 wasted core-seconds.
func TestReplaySingleNodeRetryArithmetic(t *testing.T) {
	g := graph.New()
	id := g.Add(graph.Task{Name: "a", Parent: -1, Cost: 4, Cores: 1, Retries: 1, BackoffSec: 1})
	g.RecordFailure(graph.FailureEvent{Task: id, Attempt: 0, Mode: "error", CostFraction: 0.5})
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 1, 0)))
	if len(s.FailedAttempts) != 1 {
		t.Fatalf("replayed %d failed attempts, want 1", len(s.FailedAttempts))
	}
	fa := s.FailedAttempts[0]
	if math.Abs(fa.Start-0) > 1e-9 || math.Abs(fa.End-2) > 1e-9 {
		t.Fatalf("failed attempt ran [%v, %v], want [0, 2]", fa.Start, fa.End)
	}
	p := s.Placements[id]
	if math.Abs(p.Start-3) > 1e-9 || math.Abs(p.End-7) > 1e-9 {
		t.Fatalf("final attempt ran [%v, %v], want [3, 7] after backoff", p.Start, p.End)
	}
	if math.Abs(s.Makespan-7) > 1e-9 {
		t.Fatalf("Makespan = %v, want 7", s.Makespan)
	}
	if math.Abs(s.WastedCoreSeconds-2) > 1e-9 {
		t.Fatalf("WastedCoreSeconds = %v, want 2", s.WastedCoreSeconds)
	}
	if math.Abs(s.BusyCoreSeconds-6) > 1e-9 {
		t.Fatalf("BusyCoreSeconds = %v, want 6 (includes the lost attempt)", s.BusyCoreSeconds)
	}
}

// Exponential backoff: two failures at full cost with base 1 give floors
// end+1 (2^0) then end+2 (2^1).
func TestReplayBackoffDoubles(t *testing.T) {
	g := graph.New()
	id := g.Add(graph.Task{Name: "a", Parent: -1, Cost: 2, Cores: 1, Retries: 2, BackoffSec: 1})
	g.RecordFailure(graph.FailureEvent{Task: id, Attempt: 0, Mode: "error", CostFraction: 1})
	g.RecordFailure(graph.FailureEvent{Task: id, Attempt: 1, Mode: "error", CostFraction: 1})
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 1, 0)))
	// Attempt 0: [0,2]; floor 3; attempt 1: [3,5]; floor 7; final: [7,9].
	p := s.Placements[id]
	if math.Abs(p.Start-7) > 1e-9 || math.Abs(p.End-9) > 1e-9 {
		t.Fatalf("final attempt ran [%v, %v], want [7, 9]", p.Start, p.End)
	}
}

// A degraded task's replay ends at its last failure instant — the fallback
// costs nothing — and is counted in DegradedTasks.
func TestReplayDegradedTaskEndsAtFailure(t *testing.T) {
	g := graph.New()
	id := g.Add(graph.Task{Name: "a", Parent: -1, Cost: 4, Cores: 1})
	g.Add(graph.Task{Name: "b", Parent: -1, Cost: 2, Cores: 1, Deps: []graph.Dep{{Task: id}}})
	g.RecordFailure(graph.FailureEvent{Task: id, Attempt: 0, Mode: "error", CostFraction: 0.5})
	g.MarkDegraded(id)
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 1, 0)))
	p := s.Placements[id]
	if math.Abs(p.End-2) > 1e-9 {
		t.Fatalf("degraded task ends at %v, want the failure instant 2", p.End)
	}
	if s.DegradedTasks != 1 {
		t.Fatalf("DegradedTasks = %d, want 1", s.DegradedTasks)
	}
	pb := s.Placements[1]
	if math.Abs(pb.Start-2) > 1e-9 {
		t.Fatalf("dependent starts at %v, want 2 (right after the fallback)", pb.Start)
	}
}

// Replaying the same failed graph twice yields the identical schedule, and
// the fault-free replay of WithoutFailures() is never slower than the
// faulty one.
func TestReplayDeterministicAndOverheadNonNegative(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		tk := graph.Task{Name: "w", Parent: -1, Cost: 1 + rng.Float64()*3, Cores: 1,
			OutBytes: 1 << 16, Retries: 2, BackoffSec: 0.5}
		if i > 0 {
			tk.Deps = []graph.Dep{{Task: rng.Intn(i)}}
		}
		id := g.Add(tk)
		if i%5 == 0 {
			g.RecordFailure(graph.FailureEvent{Task: id, Attempt: 0, Mode: "error", CostFraction: 0.5})
		}
	}
	c := MareNostrum4(2)
	s1 := mustSchedule(t, g, c)
	s2 := mustSchedule(t, g, c)
	if s1.Makespan != s2.Makespan || s1.BytesMoved != s2.BytesMoved ||
		s1.WastedCoreSeconds != s2.WastedCoreSeconds {
		t.Fatalf("replay not deterministic: %+v vs %+v", s1, s2)
	}
	clean := mustSchedule(t, g.WithoutFailures(), c)
	if clean.Makespan > s1.Makespan+1e-9 {
		t.Fatalf("fault-free makespan %v exceeds faulty %v", clean.Makespan, s1.Makespan)
	}
	if s1.WastedCoreSeconds <= 0 || math.IsNaN(s1.Makespan) || math.IsInf(s1.Makespan, 0) {
		t.Fatalf("recovery metrics not finite/positive: %+v", s1)
	}
}

// GanttCSV rows for lost attempts are labelled name!attempt so plots can
// distinguish them from the surviving execution.
func TestGanttCSVMarksFailedAttempts(t *testing.T) {
	g := graph.New()
	id := g.Add(graph.Task{Name: "a", Parent: -1, Cost: 2, Cores: 1, Retries: 1, BackoffSec: 1})
	g.RecordFailure(graph.FailureEvent{Task: id, Attempt: 0, Mode: "error", CostFraction: 1})
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 1, 0)))
	csv := s.GanttCSV(g)
	if !strings.Contains(csv, "a!0") {
		t.Fatalf("GanttCSV misses the a!0 lost-attempt row:\n%s", csv)
	}
	if sum := s.RecoverySummary(g); !strings.Contains(sum, "1 failed attempt") {
		t.Fatalf("RecoverySummary = %q", sum)
	}
}
