package cluster

import (
	"fmt"
	"sort"
	"strings"

	"taskml/internal/graph"
)

// PhaseBreakdown aggregates, per task name, how much virtual busy time the
// schedule spends and where its last instance finishes — the tool used to
// show which phase limits a workflow (e.g. that the CSVM cascade's merge
// phase dominates the tail, the paper's explanation for Figure 11a's
// saturation).
type PhaseBreakdown struct {
	Name       string
	Count      int
	BusySec    float64 // sum of task durations
	LastEnd    float64 // completion time of the phase's last task
	FirstStart float64
}

// Breakdown computes per-name phase statistics of a schedule against its
// graph.
func (s *Schedule) Breakdown(g *graph.Graph) []PhaseBreakdown {
	byName := map[string]*PhaseBreakdown{}
	for _, p := range s.Placements {
		t, ok := g.Task(p.Task)
		if !ok {
			continue
		}
		b, ok := byName[t.Name]
		if !ok {
			b = &PhaseBreakdown{Name: t.Name, FirstStart: p.Start}
			byName[t.Name] = b
		}
		b.Count++
		b.BusySec += p.End - p.Start
		if p.End > b.LastEnd {
			b.LastEnd = p.End
		}
		if p.Start < b.FirstStart {
			b.FirstStart = p.Start
		}
	}
	out := make([]PhaseBreakdown, 0, len(byName))
	for _, b := range byName {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BusySec > out[j].BusySec })
	return out
}

// BreakdownTable renders the phase breakdown for reports.
func (s *Schedule) BreakdownTable(g *graph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %12s %12s %12s\n", "phase", "tasks", "busy (s)", "starts (s)", "ends (s)")
	for _, p := range s.Breakdown(g) {
		fmt.Fprintf(&b, "%-20s %8d %12.3f %12.3f %12.3f\n", p.Name, p.Count, p.BusySec, p.FirstStart, p.LastEnd)
	}
	return b.String()
}

// GanttCSV exports the schedule as CSV (task, name, node, start, end) for
// external plotting — a poor man's Paraver trace, in the spirit of the
// execution traces the paper's artifact uploads to Zenodo. Replayed failed
// attempts follow the final placements, with the name suffixed "!k" for
// attempt k, so fault-injected traces show the wasted intervals.
func (s *Schedule) GanttCSV(g *graph.Graph) string {
	var b strings.Builder
	b.WriteString("task,name,node,start,end\n")
	for _, p := range s.Placements {
		name := ""
		if t, ok := g.Task(p.Task); ok {
			name = t.Name
		}
		fmt.Fprintf(&b, "%d,%s,%d,%.6f,%.6f\n", p.Task, name, p.Node, p.Start, p.End)
	}
	for _, fa := range s.FailedAttempts {
		name := ""
		if t, ok := g.Task(fa.Task); ok {
			name = t.Name
		}
		fmt.Fprintf(&b, "%d,%s!%d,%d,%.6f,%.6f\n", fa.Task, name, fa.Attempt, fa.Node, fa.Start, fa.End)
	}
	return b.String()
}

// RecoverySummary describes the replayed failure cost: how many attempts
// were lost, on how many tasks, and how much core time they wasted — the
// per-kind table shows where the retries concentrated.
func (s *Schedule) RecoverySummary(g *graph.Graph) string {
	if len(s.FailedAttempts) == 0 {
		return "recovery: no failures replayed\n"
	}
	perName := map[string]int{}
	tasks := map[int]bool{}
	for _, fa := range s.FailedAttempts {
		tasks[fa.Task] = true
		name := "?"
		if t, ok := g.Task(fa.Task); ok {
			name = t.Name
		}
		perName[name]++
	}
	var b strings.Builder
	pct := 0.0
	if s.BusyCoreSeconds > 0 {
		pct = 100 * s.WastedCoreSeconds / s.BusyCoreSeconds
	}
	fmt.Fprintf(&b, "recovery: %d failed attempts across %d tasks (%d degraded), %.3f core-s wasted (%.1f%% of busy)\n",
		len(s.FailedAttempts), len(tasks), s.DegradedTasks, s.WastedCoreSeconds, pct)
	names := make([]string, 0, len(perName))
	for n := range perName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-20s %4d lost attempt(s)\n", n, perName[n])
	}
	return b.String()
}

// CriticalTail returns the fraction of the makespan during which fewer than
// `threshold` tasks run concurrently — a serialisation indicator (a high
// tail fraction means a reduction phase dominates).
func (s *Schedule) CriticalTail(threshold int) float64 {
	if s.Makespan <= 0 || len(s.Placements) == 0 {
		return 0
	}
	type event struct {
		t     float64
		delta int
	}
	events := make([]event, 0, 2*len(s.Placements))
	for _, p := range s.Placements {
		events = append(events, event{p.Start, 1}, event{p.End, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta
	})
	var thin float64
	running := 0
	prev := 0.0
	for _, e := range events {
		if running < threshold {
			thin += e.t - prev
		}
		running += e.delta
		prev = e.t
	}
	if prev < s.Makespan && running < threshold {
		thin += s.Makespan - prev
	}
	return thin / s.Makespan
}
