// Package cluster models the distributed infrastructure the paper evaluates
// on (MareNostrum4 general-purpose nodes and the CTE-Power GPU partition)
// and provides a deterministic scheduler that replays a captured task graph
// (internal/graph) against a cluster description.
//
// Tasks in taskml really execute — model outputs are real — but *time* is
// virtual: every task carries an analytic cost in reference-core seconds and
// the scheduler computes when it would have started and finished on the
// described machine, charging interconnect transfers for dependencies that
// cross nodes and an extra master hop for dependencies created through a
// main-program synchronisation. Replaying one captured graph on a sweep of
// cluster sizes regenerates the scalability figures (11a-c, 12) of the
// paper without needing hundreds of physical cores.
//
// # Public surface
//
// Cluster describes a machine (MareNostrum4 and CTEPower are the paper's
// two testbeds); ScheduleGraph replays a graph onto it and returns a
// Schedule with the makespan, per-task placement, utilization, transfer
// volume, failed-attempt replays and Gantt/Chrome-trace exports.
//
// # Concurrency and ownership
//
// Scheduling is a pure function of (graph, cluster): single-goroutine,
// deterministic, no shared state. A returned Schedule is immutable; it may
// be read concurrently.
package cluster
