package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"taskml/internal/graph"
)

// faultyDiamond is the diamond with one retried task and one degraded task.
func faultyDiamond() *graph.Graph {
	g := graph.New()
	src := g.Add(graph.Task{Name: "load", Parent: -1, Cost: 1, Cores: 1})
	a := g.Add(graph.Task{Name: "work", Parent: -1, Cost: 2, Cores: 1, Deps: []graph.Dep{{Task: src}}, Retries: 2, BackoffSec: 1})
	b := g.Add(graph.Task{Name: "work", Parent: -1, Cost: 2, Cores: 1, Deps: []graph.Dep{{Task: src}}, Retries: 1, BackoffSec: 1})
	g.Add(graph.Task{Name: "merge", Parent: -1, Cost: 1, Cores: 1, Deps: []graph.Dep{{Task: a}, {Task: b}}})
	g.RecordFailure(graph.FailureEvent{Task: a, Attempt: 0, Mode: "error", CostFraction: 0.5})
	g.RecordFailure(graph.FailureEvent{Task: b, Attempt: 0, Mode: "panic", CostFraction: 1})
	g.MarkDegraded(b)
	return g
}

func TestScheduleChromeTrace(t *testing.T) {
	g := faultyDiamond()
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 2, 1, 0)))
	tr := s.ChromeTrace(g)

	// Valid JSON in the object envelope.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	type row struct{ pid, tid int }
	depth := map[row]int{}
	names := map[string]int{}
	sawFailure, sawDegrade, sawCounter := 0, 0, 0
	for _, ev := range tr.Events {
		switch ev.Ph {
		case "B":
			depth[row{ev.Pid, ev.Tid}]++
			names[ev.Name]++
		case "E":
			depth[row{ev.Pid, ev.Tid}]--
			if depth[row{ev.Pid, ev.Tid}] < 0 {
				t.Fatalf("E before B on node %d lane %d at ts %v", ev.Pid, ev.Tid, ev.Ts)
			}
		case "i":
			switch ev.Name {
			case "failure":
				sawFailure++
			case "degrade":
				sawDegrade++
			}
			if ev.Scope != "t" {
				t.Errorf("instant %q missing thread scope", ev.Name)
			}
		case "C":
			sawCounter++
			if ev.Name != "busy cores" {
				t.Errorf("unexpected counter %q", ev.Name)
			}
			if n := ev.Args["n"].(int); n < 0 {
				t.Errorf("busy cores went negative: %d", n)
			}
		case "M":
			if ev.Name == "process_name" {
				if n := ev.Args["name"].(string); !strings.HasPrefix(n, "node ") {
					t.Errorf("process name %q", n)
				}
			}
		}
		if ev.Ts < 0 {
			t.Errorf("negative ts on %q", ev.Name)
		}
	}
	for r, d := range depth {
		if d != 0 {
			t.Errorf("node %d lane %d has %d unclosed slices", r.pid, r.tid, d)
		}
	}

	// Final placements for load, merge and the retried work; "!0" rows for
	// both failed first attempts. The degraded task has no final slice —
	// its last failed attempt stands in.
	if names["load"] != 1 || names["merge"] != 1 || names["work"] != 1 {
		t.Errorf("final slices: %v", names)
	}
	if names["work!0"] != 2 {
		t.Errorf("failed-attempt slices: %v", names)
	}
	if sawFailure != 2 {
		t.Errorf("failure instants = %d, want 2", sawFailure)
	}
	if sawDegrade != 1 {
		t.Errorf("degrade instants = %d, want 1", sawDegrade)
	}
	if sawCounter == 0 {
		t.Error("no busy-cores samples")
	}
}

// TestChromeTraceBackoffGap pins the replay semantics the trace mirrors:
// the retried attempt's slice begins only after the failure instant plus
// the task's backoff, so the gap is visible in the rendered row.
func TestChromeTraceBackoffGap(t *testing.T) {
	g := graph.New()
	id := g.Add(graph.Task{Name: "w", Parent: -1, Cost: 2, Cores: 1, Retries: 1, BackoffSec: 3})
	g.RecordFailure(graph.FailureEvent{Task: id, Attempt: 0, Mode: "error", CostFraction: 0.5})
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 1, 0)))
	tr := s.ChromeTrace(g)

	var failTs, retryStart float64
	for _, ev := range tr.Events {
		if ev.Ph == "i" && ev.Name == "failure" {
			failTs = ev.Ts
		}
		if ev.Ph == "B" && ev.Name == "w" {
			retryStart = ev.Ts
		}
	}
	// Failure at 1 virtual second (half the cost), backoff 3 s → the final
	// attempt starts at 4 s = 4e6 µs.
	if failTs != 1e6 || retryStart != 4e6 {
		t.Fatalf("failure at %v µs, retry start at %v µs; want 1e6 and 4e6", failTs, retryStart)
	}
}
