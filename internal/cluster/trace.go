package cluster

import (
	"fmt"
	"sort"

	"taskml/internal/graph"
	"taskml/internal/trace"
)

// nodeInterval is one occupancy interval replayed on a node: either a final
// placement or a failed attempt.
type nodeInterval struct {
	task, attempt int // attempt -1 for the final (successful) placement
	name          string
	start, end    float64 // virtual seconds
	cores         int
	mode          string // failure mode for failed attempts, "" otherwise
	degraded      bool
}

// ChromeTrace renders the replayed schedule in Chrome trace-event format —
// the mirror of the real-execution exporter in internal/trace, so a run
// and its virtual replay open side-by-side in Perfetto. One trace process
// per node (rows are occupancy lanes packed within the node, lane count =
// the node's peak task concurrency), with failed attempts as "name!k"
// slices followed by a failure instant, degraded tasks closed by a
// "degrade" instant, and a busy-cores counter per node. Virtual seconds
// map to trace microseconds (1 virtual second = 1 displayed second), and
// the backoff gaps between a failure and the next attempt appear as idle
// space between the slices.
func (s *Schedule) ChromeTrace(g *graph.Graph) *trace.Trace {
	t := &trace.Trace{}
	failures := g.FailuresByTask()

	byNode := map[int][]nodeInterval{}
	addInterval := func(iv nodeInterval, node int) {
		if tk, ok := g.Task(iv.task); ok {
			iv.name = tk.Name
			iv.cores = tk.Cores
		}
		byNode[node] = append(byNode[node], iv)
	}
	for _, p := range s.Placements {
		// A degraded task's "placement" is its last failed attempt, which
		// FailedAttempts already carries — skip it here to avoid a
		// duplicate slice.
		if g.IsDegraded(p.Task) && len(failures[p.Task]) > 0 {
			continue
		}
		addInterval(nodeInterval{task: p.Task, attempt: -1, start: p.Start, end: p.End}, p.Node)
	}
	for _, fa := range s.FailedAttempts {
		iv := nodeInterval{task: fa.Task, attempt: fa.Attempt, start: fa.Start, end: fa.End}
		if evs := failures[fa.Task]; len(evs) > 0 {
			for _, ev := range evs {
				if ev.Attempt == fa.Attempt {
					iv.mode = ev.Mode
					break
				}
			}
			if iv.mode == "" {
				iv.mode = "error"
			}
			iv.degraded = g.IsDegraded(fa.Task) && fa.Attempt == evs[len(evs)-1].Attempt
		}
		addInterval(iv, fa.Node)
	}

	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	type sortable struct {
		ev            trace.TraceEvent
		ord           int // E < i < C < B at equal ts
		task, attempt int
	}
	var out []sortable
	const usPerSec = 1e6

	for _, node := range nodes {
		ivs := byNode[node]
		sort.Slice(ivs, func(i, j int) bool {
			a, b := ivs[i], ivs[j]
			if a.start != b.start {
				return a.start < b.start
			}
			if a.task != b.task {
				return a.task < b.task
			}
			return a.attempt < b.attempt
		})
		starts := make([]float64, len(ivs))
		ends := make([]float64, len(ivs))
		for i, iv := range ivs {
			starts[i], ends[i] = iv.start, iv.end
		}
		lanes, nLanes := trace.PackLanes(starts, ends)
		t.Add(trace.TraceEvent{Name: "process_name", Ph: "M", Pid: node,
			Args: map[string]any{"name": fmt.Sprintf("node %d", node)}})
		for l := 0; l < nLanes; l++ {
			t.Add(trace.TraceEvent{Name: "thread_name", Ph: "M", Pid: node, Tid: l,
				Args: map[string]any{"name": fmt.Sprintf("lane %d", l)}})
		}

		// Per-node busy-cores counter: +cores at each slice start, −cores
		// at each end.
		type delta struct {
			at float64
			d  int
		}
		var deltas []delta
		for i, iv := range ivs {
			name := iv.name
			outcome := "ok"
			if iv.attempt >= 0 {
				name = fmt.Sprintf("%s!%d", iv.name, iv.attempt)
				outcome = iv.mode
			}
			args := map[string]any{"task": iv.task, "outcome": outcome, "cores": iv.cores}
			if iv.attempt >= 0 {
				args["attempt"] = iv.attempt
			}
			out = append(out,
				sortable{ord: 3, task: iv.task, attempt: iv.attempt, ev: trace.TraceEvent{
					Name: name, Cat: "task", Ph: "B", Ts: iv.start * usPerSec, Pid: node, Tid: lanes[i], Args: args,
				}},
				sortable{ord: 0, task: iv.task, attempt: iv.attempt, ev: trace.TraceEvent{
					Name: name, Cat: "task", Ph: "E", Ts: iv.end * usPerSec, Pid: node, Tid: lanes[i],
				}},
			)
			if iv.attempt >= 0 {
				iargs := map[string]any{"task": iv.task, "name": iv.name, "attempt": iv.attempt, "mode": iv.mode}
				out = append(out, sortable{ord: 1, task: iv.task, attempt: iv.attempt, ev: trace.TraceEvent{
					Name: "failure", Cat: "fault", Ph: "i", Ts: iv.end * usPerSec,
					Pid: node, Tid: lanes[i], Scope: "t", Args: iargs,
				}})
				if iv.degraded {
					out = append(out, sortable{ord: 1, task: iv.task, attempt: iv.attempt + 1, ev: trace.TraceEvent{
						Name: "degrade", Cat: "fault", Ph: "i", Ts: iv.end * usPerSec,
						Pid: node, Tid: lanes[i], Scope: "t",
						Args: map[string]any{"task": iv.task, "name": iv.name},
					}})
				}
			}
			cores := iv.cores
			if cores < 1 {
				cores = 1
			}
			deltas = append(deltas, delta{iv.start, cores}, delta{iv.end, -cores})
		}
		sort.Slice(deltas, func(i, j int) bool {
			if deltas[i].at != deltas[j].at {
				return deltas[i].at < deltas[j].at
			}
			return deltas[i].d < deltas[j].d // releases before claims at ties
		})
		busy := 0
		for _, d := range deltas {
			busy += d.d
			out = append(out, sortable{ord: 2, ev: trace.TraceEvent{
				Name: "busy cores", Cat: "cluster", Ph: "C", Ts: d.at * usPerSec, Pid: node,
				Args: map[string]any{"n": busy},
			}})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ev.Ts != b.ev.Ts {
			return a.ev.Ts < b.ev.Ts
		}
		if a.ev.Pid != b.ev.Pid {
			return a.ev.Pid < b.ev.Pid
		}
		if a.ev.Tid != b.ev.Tid {
			return a.ev.Tid < b.ev.Tid
		}
		if a.ord != b.ord {
			return a.ord < b.ord
		}
		if a.task != b.task {
			return a.task < b.task
		}
		if a.attempt != b.attempt {
			return a.attempt < b.attempt
		}
		return a.ev.Name < b.ev.Name
	})
	for _, sv := range out {
		t.Add(sv.ev)
	}
	return t
}
