package cluster

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"taskml/internal/graph"
)

// NodeSpec describes one compute node.
type NodeSpec struct {
	// Cores is the number of CPU cores.
	Cores int
	// GPUs is the number of accelerators.
	GPUs int
	// CoreSpeed scales CPU task durations: duration = cost / CoreSpeed.
	// 1.0 is the reference core the task costs are expressed in.
	CoreSpeed float64
	// GPUSpeed scales GPU task durations the same way.
	GPUSpeed float64
}

// Cluster describes the virtual machine a graph is scheduled on.
type Cluster struct {
	// Name labels the configuration in reports.
	Name string
	// Nodes lists the compute nodes.
	Nodes []NodeSpec
	// LatencySec is the one-way interconnect latency per transfer.
	LatencySec float64
	// BandwidthBps is the interconnect bandwidth in bytes per second.
	BandwidthBps float64
	// TaskOverheadSec is the runtime's per-task dispatch overhead
	// (scheduling, bookkeeping); PyCOMPSs-class runtimes pay a few
	// milliseconds to a few tens of milliseconds per task.
	TaskOverheadSec float64
	// DeserializeBps, when non-zero, charges every task for unmarshalling
	// its input objects (Σ dependency bytes / DeserializeBps), regardless
	// of locality — PyCOMPSs-class runtimes move task data as serialized
	// (pickled) objects even between co-located tasks. 0 disables the
	// charge.
	DeserializeBps float64
}

// Defaults used by the preset constructors; exported so experiments can
// reference the exact model parameters.
const (
	// DefaultLatencySec approximates a 100 Gb-class HPC interconnect.
	DefaultLatencySec = 20e-6
	// DefaultBandwidthBps is the *effective per-flow object-transfer*
	// throughput (1.25 GB/s): PyCOMPSs-class runtimes move serialized
	// objects over TCP with endpoint (de)serialization, which sustains an
	// order of magnitude below the 100 Gb/s link peak.
	DefaultBandwidthBps = 1.25e9
	// DefaultTaskOverheadSec is the per-task runtime overhead.
	DefaultTaskOverheadSec = 10e-3
)

// Homogeneous builds a cluster of identical nodes with default interconnect
// parameters.
func Homogeneous(name string, nodes, coresPerNode, gpusPerNode int) Cluster {
	specs := make([]NodeSpec, nodes)
	for i := range specs {
		specs[i] = NodeSpec{Cores: coresPerNode, GPUs: gpusPerNode, CoreSpeed: 1, GPUSpeed: 1}
	}
	return Cluster{
		Name:            name,
		Nodes:           specs,
		LatencySec:      DefaultLatencySec,
		BandwidthBps:    DefaultBandwidthBps,
		TaskOverheadSec: DefaultTaskOverheadSec,
	}
}

// DefaultDeserializeBps is the object-deserialization throughput assumed
// for the cluster presets (pickle-class serialization of numerical data).
const DefaultDeserializeBps = 100e6

// MareNostrum4 models n general-purpose nodes of MareNostrum IV: two
// 24-core Intel Xeon Platinum 8160 per node (48 cores), no GPUs — the
// testbed of the paper's Figure 11 experiments.
func MareNostrum4(n int) Cluster {
	c := Homogeneous(fmt.Sprintf("MareNostrum4-%dn", n), n, 48, 0)
	c.DeserializeBps = DefaultDeserializeBps
	return c
}

// CTEPower models n nodes of the CTE-Power cluster: 2× Power9 (40 cores
// visible) and 4× NVIDIA V100 per node — the testbed of the paper's
// Figure 12 CNN experiments.
func CTEPower(n int) Cluster {
	c := Homogeneous(fmt.Sprintf("CTE-Power-%dn", n), n, 40, 4)
	c.DeserializeBps = DefaultDeserializeBps
	return c
}

// Validate checks the cluster description for parameters that would poison
// the virtual times with NaN or Inf instead of failing loudly: an empty node
// list, non-positive interconnect bandwidth (zero used to silently mean
// "free transfers"; say math.Inf(1) to mean that), negative or NaN latency,
// overhead or deserialization throughput, and nodes advertising cores or
// GPUs without a positive speed (cost/speed would be Inf or NaN).
// ScheduleGraph validates before scheduling.
func (c Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster %q: no nodes", c.Name)
	}
	if !(c.BandwidthBps > 0) {
		return fmt.Errorf("cluster %q: BandwidthBps must be positive, got %v (use math.Inf(1) for free transfers)",
			c.Name, c.BandwidthBps)
	}
	if c.LatencySec < 0 || math.IsNaN(c.LatencySec) {
		return fmt.Errorf("cluster %q: invalid LatencySec %v", c.Name, c.LatencySec)
	}
	if c.TaskOverheadSec < 0 || math.IsNaN(c.TaskOverheadSec) {
		return fmt.Errorf("cluster %q: invalid TaskOverheadSec %v", c.Name, c.TaskOverheadSec)
	}
	if c.DeserializeBps < 0 || math.IsNaN(c.DeserializeBps) {
		return fmt.Errorf("cluster %q: invalid DeserializeBps %v (0 disables the charge)", c.Name, c.DeserializeBps)
	}
	for i, n := range c.Nodes {
		if n.Cores < 0 || n.GPUs < 0 {
			return fmt.Errorf("cluster %q: node %d has negative resources", c.Name, i)
		}
		if n.Cores == 0 && n.GPUs == 0 {
			return fmt.Errorf("cluster %q: node %d provides no cores and no GPUs", c.Name, i)
		}
		if n.Cores > 0 && !(n.CoreSpeed > 0) {
			return fmt.Errorf("cluster %q: node %d has %d cores but CoreSpeed %v", c.Name, i, n.Cores, n.CoreSpeed)
		}
		if n.GPUs > 0 && !(n.GPUSpeed > 0) {
			return fmt.Errorf("cluster %q: node %d has %d GPUs but GPUSpeed %v", c.Name, i, n.GPUs, n.GPUSpeed)
		}
	}
	return nil
}

// TotalCores returns the core count across all nodes.
func (c Cluster) TotalCores() int {
	t := 0
	for _, n := range c.Nodes {
		t += n.Cores
	}
	return t
}

// TotalGPUs returns the GPU count across all nodes.
func (c Cluster) TotalGPUs() int {
	t := 0
	for _, n := range c.Nodes {
		t += n.GPUs
	}
	return t
}

// Placement records where and when one task ran in the virtual schedule.
// For a task with failed attempts it describes the final attempt; for a
// degraded task it describes the last failed attempt (the fallback stands
// in at the instant the task gave up).
type Placement struct {
	Task  int
	Node  int
	Start float64
	End   float64
}

// AttemptPlacement records one *failed* attempt replayed in virtual time:
// the attempt occupied Node from Start until the failure instant End, after
// which the task re-queued (backoff permitting) and possibly landed on a
// different node.
type AttemptPlacement struct {
	Task    int
	Attempt int
	Node    int
	Start   float64
	End     float64
}

// Schedule is the result of replaying a graph on a cluster.
type Schedule struct {
	// Makespan is the virtual completion time of the whole graph, the
	// quantity the paper's time axes report.
	Makespan float64
	// Placements is indexed by task ID.
	Placements []Placement
	// BytesMoved is the total data moved across the interconnect, including
	// re-transfers of inputs for retried attempts.
	BytesMoved int64
	// BusyCoreSeconds sums cores×duration over all attempts, failed ones
	// included (they held their cores until the failure instant).
	BusyCoreSeconds float64
	// Utilization is BusyCoreSeconds / (Makespan × TotalCores); 0 when the
	// makespan is 0.
	Utilization float64
	// FailedAttempts lists every replayed failed attempt, in schedule order.
	FailedAttempts []AttemptPlacement
	// WastedCoreSeconds is the share of BusyCoreSeconds consumed by failed
	// attempts — the recovery cost the -faults sweeps quantify.
	WastedCoreSeconds float64
	// DegradedTasks counts tasks whose declared fallback stood in for a
	// computed value.
	DegradedTasks int
}

// taskHeap orders ready tasks by submission ID, approximating the program
// order PyCOMPSs releases tasks in.
type taskHeap []int

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ScheduleGraph replays g on c with a greedy earliest-start list scheduler.
//
// Semantics:
//   - a task starts no earlier than: its parent task's start (nesting), all
//     its dependencies' *finalized* ends plus transfer time, and the
//     availability of the demanded cores/GPUs on the chosen node;
//   - a dependency's finalized end includes all of its nested descendants
//     (a parent task is not "done" for consumers until its subtasks are);
//   - transfers cost latency + bytes/bandwidth when producer and consumer
//     nodes differ, twice that for ViaMaster dependencies (the data bounces
//     through the master process), and zero for node-local reuse;
//   - node choice minimises the task's start time, ties broken by the
//     lowest node index;
//   - failure events recorded in the graph are replayed: each failed attempt
//     occupies its chosen node (and re-pulls its inputs) until the failure
//     instant — CostFraction of the task's duration — then the task
//     re-queues BackoffSec·2^k later (k being the failed attempt's 0-based
//     index, so the first retry waits the base) and is placed afresh,
//     possibly on a different node. A degraded task ends at its last
//     failure instant (its fallback stands in; nothing ran to completion).
func ScheduleGraph(g *graph.Graph, c Cluster) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	tasks := g.Tasks()
	n := len(tasks)
	failures := g.FailuresByTask()

	for _, t := range tasks {
		if !fits(t, c) {
			return nil, fmt.Errorf("cluster: task %d (%s) demands %d cores / %d GPUs; no node in %q is large enough",
				t.ID, t.Name, t.Cores, t.GPUs, c.Name)
		}
	}

	// Per-node resource availability times, plus one egress link per node
	// and one for the master: a producer sending its output to many
	// consumers serializes on its own link, which is what makes
	// "distribute one big object to everyone" stages scale poorly (the
	// paper's RandomForest transfer observation).
	coreAvail := make([][]float64, len(c.Nodes))
	gpuAvail := make([][]float64, len(c.Nodes))
	for i, spec := range c.Nodes {
		coreAvail[i] = make([]float64, spec.Cores)
		gpuAvail[i] = make([]float64, spec.GPUs)
	}
	egress := make([]float64, len(c.Nodes))
	masterEgress := 0.0

	children := make([][]int, n)
	dependents := make([][]int, n)
	pendingDeps := make([]int, n)
	pendingChildren := make([]int, n)
	for _, t := range tasks {
		if t.Parent >= 0 {
			children[t.Parent] = append(children[t.Parent], t.ID)
			pendingChildren[t.Parent]++
		}
		pendingDeps[t.ID] = len(t.Deps)
		for _, d := range t.Deps {
			dependents[d.Task] = append(dependents[d.Task], t.ID)
		}
	}

	scheduled := make([]bool, n)
	finalized := make([]bool, n)
	fin := make([]float64, n) // finalized end (incl. descendants)
	place := make([]Placement, n)

	ready := &taskHeap{}
	isReady := func(id int) bool {
		t := tasks[id]
		if pendingDeps[id] > 0 {
			return false
		}
		return t.Parent < 0 || scheduled[t.Parent]
	}
	for id := range tasks {
		if isReady(id) {
			heap.Push(ready, id)
		}
	}

	var sched *Schedule = &Schedule{Placements: place}
	var finalize func(id int)
	finalize = func(id int) {
		if finalized[id] {
			return
		}
		finalized[id] = true
		if fin[id] < place[id].End {
			fin[id] = place[id].End
		}
		for _, dep := range dependents[id] {
			pendingDeps[dep]--
			if isReady(dep) && !scheduled[dep] {
				heap.Push(ready, dep)
			}
		}
		p := tasks[id].Parent
		if p >= 0 {
			if fin[id] > fin[p] {
				fin[p] = fin[id]
			}
			pendingChildren[p]--
			if pendingChildren[p] == 0 && scheduled[p] {
				finalize(p)
			}
		}
	}

	done := 0
	for ready.Len() > 0 {
		id := heap.Pop(ready).(int)
		if scheduled[id] {
			continue
		}
		t := tasks[id]

		floor := 0.0
		if t.Parent >= 0 {
			floor = place[t.Parent].Start
		}

		// planTransfers computes when t's inputs are ready on node ni given
		// an earliest-start lower bound, reserving egress link time on the
		// producers when commit is set. Each attempt re-pulls its inputs, so
		// retried tasks re-charge their transfers.
		planTransfers := func(ni int, lower float64, commit bool) (ready float64, inBytes int64) {
			tentNode := map[int]float64{}
			tentMaster := masterEgress
			ready = lower
			for _, d := range t.Deps {
				bytes := tasks[d.Task].OutBytes
				r := fin[d.Task]
				src := place[d.Task].Node
				if d.OrderOnly {
					// Pure synchronisation ordering: the consumer waits for
					// the producer's value to have reached the master, but
					// no data is (re-)sent for this edge.
					if r += c.hopTime(bytes); r > ready {
						ready = r
					}
					continue
				}
				inBytes += bytes
				switch {
				case d.ViaMaster:
					start := math.Max(r, tentMaster)
					end := start + 2*c.hopTime(bytes)
					tentMaster = end
					r = end
					if commit {
						sched.BytesMoved += bytes
					}
				case src != ni:
					av, ok := tentNode[src]
					if !ok {
						av = egress[src]
					}
					start := math.Max(r, av)
					end := start + c.hopTime(bytes)
					tentNode[src] = end
					r = end
					if commit {
						sched.BytesMoved += bytes
					}
				}
				if r > ready {
					ready = r
				}
			}
			if commit {
				masterEgress = tentMaster
				for src, av := range tentNode {
					egress[src] = av
				}
			}
			return ready, inBytes
		}

		// Replay the task's attempts: every recorded failure occupies a node
		// until its failure instant and pushes the next attempt past the
		// backoff; the final attempt (absent for degraded tasks) runs to
		// completion.
		evs := failures[id]
		degraded := g.IsDegraded(id) && len(evs) > 0
		nAttempts := len(evs) + 1
		if degraded {
			nAttempts = len(evs)
		}
		attemptFloor := floor
		for k := 0; k < nAttempts; k++ {
			failed := k < len(evs)
			isFinal := k == nAttempts-1

			bestNode, bestStart := -1, math.Inf(1)
			var bestIn int64
			for ni, spec := range c.Nodes {
				if spec.Cores < t.Cores || spec.GPUs < t.GPUs {
					continue
				}
				est, inBytes := planTransfers(ni, attemptFloor, false)
				if ra := resourceAvail(coreAvail[ni], t.Cores); ra > est {
					est = ra
				}
				if ra := resourceAvail(gpuAvail[ni], t.GPUs); ra > est {
					est = ra
				}
				if est < bestStart {
					bestStart, bestNode, bestIn = est, ni, inBytes
				}
			}
			if bestNode < 0 {
				return nil, fmt.Errorf("cluster: task %d unschedulable", id)
			}
			planTransfers(bestNode, attemptFloor, true)

			spec := c.Nodes[bestNode]
			speed := spec.CoreSpeed
			if t.GPUs > 0 {
				speed = spec.GPUSpeed
			}
			work := t.Cost / speed
			if failed {
				work *= evs[k].CostFraction
			}
			dur := c.TaskOverheadSec + work
			if c.DeserializeBps > 0 {
				dur += float64(bestIn) / c.DeserializeBps
			}
			end := bestStart + dur
			claim(coreAvail[bestNode], t.Cores, end)
			claim(gpuAvail[bestNode], t.GPUs, end)
			busy := dur * float64(max(t.Cores, 1))
			sched.BusyCoreSeconds += busy

			if failed {
				sched.FailedAttempts = append(sched.FailedAttempts, AttemptPlacement{
					Task: id, Attempt: evs[k].Attempt, Node: bestNode, Start: bestStart, End: end,
				})
				sched.WastedCoreSeconds += busy
			}
			if isFinal {
				place[id] = Placement{Task: id, Node: bestNode, Start: bestStart, End: end}
			} else {
				attemptFloor = end + t.BackoffSec*math.Pow(2, float64(k))
			}
		}
		if degraded {
			sched.DegradedTasks++
		}
		scheduled[id] = true
		done++
		// Children become eligible now that the parent's start is known.
		for _, ch := range children[id] {
			if isReady(ch) && !scheduled[ch] {
				heap.Push(ready, ch)
			}
		}
		if pendingChildren[id] == 0 {
			finalize(id)
		}
	}
	if done != n {
		return nil, fmt.Errorf("cluster: deadlock — scheduled %d of %d tasks (cyclic or malformed graph)", done, n)
	}

	for id := range tasks {
		if fin[id] > sched.Makespan {
			sched.Makespan = fin[id]
		}
	}
	if sched.Makespan > 0 && c.TotalCores() > 0 {
		sched.Utilization = sched.BusyCoreSeconds / (sched.Makespan * float64(c.TotalCores()))
	}
	return sched, nil
}

// hopTime is the interconnect cost of one transfer hop of the given size.
// Node-local dependencies never reach this path; ViaMaster dependencies pay
// two hops (producer → master → consumer).
func (c Cluster) hopTime(bytes int64) float64 {
	hop := c.LatencySec
	if c.BandwidthBps > 0 {
		hop += float64(bytes) / c.BandwidthBps
	}
	return hop
}

// resourceAvail returns the earliest time at which `count` units from avail
// are simultaneously free (the count-th smallest availability time), or 0
// when count is 0.
func resourceAvail(avail []float64, count int) float64 {
	if count <= 0 {
		return 0
	}
	tmp := make([]float64, len(avail))
	copy(tmp, avail)
	sort.Float64s(tmp)
	return tmp[count-1]
}

// claim marks `count` units busy until end, choosing the earliest-available
// units (the same ones resourceAvail inspected).
func claim(avail []float64, count int, end float64) {
	if count <= 0 {
		return
	}
	// Select indices of the `count` smallest availability times.
	idx := make([]int, len(avail))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return avail[idx[i]] < avail[idx[j]] })
	for i := 0; i < count; i++ {
		avail[idx[i]] = end
	}
}

func fits(t graph.Task, c Cluster) bool {
	for _, spec := range c.Nodes {
		if spec.Cores >= t.Cores && spec.GPUs >= t.GPUs {
			return true
		}
	}
	return false
}

// Sweep replays the same graph on each cluster configuration and returns
// the makespans in order. It is the primitive behind the Figure 11/12
// core-count sweeps.
func Sweep(g *graph.Graph, configs []Cluster) ([]float64, error) {
	out := make([]float64, len(configs))
	for i, c := range configs {
		s, err := ScheduleGraph(g, c)
		if err != nil {
			return nil, fmt.Errorf("sweep %q: %w", c.Name, err)
		}
		out[i] = s.Makespan
	}
	return out, nil
}
