package cluster

import (
	"math"
	"strings"
	"testing"

	"taskml/internal/graph"
)

// diamond builds src → {a, b} → sink with distinct names.
func diamond() *graph.Graph {
	g := graph.New()
	src := g.Add(graph.Task{Name: "load", Parent: -1, Cost: 1, Cores: 1})
	a := g.Add(graph.Task{Name: "work", Parent: -1, Cost: 2, Cores: 1, Deps: []graph.Dep{{Task: src}}})
	b := g.Add(graph.Task{Name: "work", Parent: -1, Cost: 2, Cores: 1, Deps: []graph.Dep{{Task: src}}})
	g.Add(graph.Task{Name: "merge", Parent: -1, Cost: 1, Cores: 1, Deps: []graph.Dep{{Task: a}, {Task: b}}})
	return g
}

func TestBreakdownAggregates(t *testing.T) {
	g := diamond()
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 4, 0)))
	bd := s.Breakdown(g)
	byName := map[string]PhaseBreakdown{}
	for _, p := range bd {
		byName[p.Name] = p
	}
	if byName["work"].Count != 2 || math.Abs(byName["work"].BusySec-4) > 1e-9 {
		t.Fatalf("work phase: %+v", byName["work"])
	}
	if byName["merge"].LastEnd < byName["work"].LastEnd {
		t.Fatal("merge must end after work")
	}
	// Sorted by busy time descending: "work" first.
	if bd[0].Name != "work" {
		t.Fatalf("breakdown order: %v", bd)
	}
}

func TestBreakdownTableRenders(t *testing.T) {
	g := diamond()
	s := mustSchedule(t, g, Homogeneous("c", 1, 4, 0))
	table := s.BreakdownTable(g)
	for _, want := range []string{"phase", "work", "merge", "load"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestGanttCSV(t *testing.T) {
	g := diamond()
	s := mustSchedule(t, g, Homogeneous("c", 1, 4, 0))
	csv := s.GanttCSV(g)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // header + 4 tasks
		t.Fatalf("CSV has %d lines:\n%s", len(lines), csv)
	}
	if lines[0] != "task,name,node,start,end" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(csv, "merge") {
		t.Fatal("CSV missing task name")
	}
}

func TestCriticalTailSerialChain(t *testing.T) {
	g := graph.New()
	prev := -1
	for i := 0; i < 4; i++ {
		tk := graph.Task{Name: "s", Parent: -1, Cost: 1, Cores: 1}
		if prev >= 0 {
			tk.Deps = []graph.Dep{{Task: prev}}
		}
		prev = g.Add(tk)
	}
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 4, 0)))
	// A chain never has 2 tasks concurrent: the sub-2 fraction is 1.
	if tail := s.CriticalTail(2); math.Abs(tail-1) > 1e-9 {
		t.Fatalf("CriticalTail = %v, want 1 for a chain", tail)
	}
}

func TestCriticalTailParallelPhase(t *testing.T) {
	g := graph.New()
	for i := 0; i < 8; i++ {
		g.Add(graph.Task{Name: "w", Parent: -1, Cost: 1, Cores: 1})
	}
	s := mustSchedule(t, g, zeroOverhead(Homogeneous("c", 1, 8, 0)))
	// All 8 run concurrently: the sub-2 fraction is 0.
	if tail := s.CriticalTail(2); tail > 1e-9 {
		t.Fatalf("CriticalTail = %v, want 0 for a full-width phase", tail)
	}
}

func TestCriticalTailEmpty(t *testing.T) {
	var s Schedule
	if s.CriticalTail(2) != 0 {
		t.Fatal("empty schedule tail must be 0")
	}
}
