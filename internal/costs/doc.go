// Package costs is the single calibration point for the virtual-time model.
//
// Every task submitted to internal/compss carries an analytic cost in
// *reference-core seconds*; internal/cluster divides by node speed and adds
// interconnect transfers. The functions here convert the operation counts of
// the library's kernels into those seconds. One constant, RefFlops, anchors
// the whole model; EXPERIMENTS.md documents how the resulting magnitudes
// compare with the paper's testbed (a MareNostrum4 Xeon 8160 core).
//
// # Public surface and concurrency
//
// Pure functions (Sec, Gemm, Eigh, Copy, IO, Bytes, ...) from operation
// shapes to seconds and bytes, anchored by the RefFlops and MasterIOBps
// constants. Everything is stateless and safe for unrestricted concurrent
// use.
package costs
