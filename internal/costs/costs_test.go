package costs

import (
	"testing"
	"testing/quick"
)

func TestSecLinear(t *testing.T) {
	if Sec(RefFlops) != 1 {
		t.Fatalf("Sec(RefFlops) = %v, want 1", Sec(RefFlops))
	}
	if Sec(0) != 0 {
		t.Fatal("Sec(0) must be 0")
	}
}

func TestBytes(t *testing.T) {
	if Bytes(10, 20) != 1600 {
		t.Fatalf("Bytes(10,20) = %d", Bytes(10, 20))
	}
	if Bytes(0, 5) != 0 {
		t.Fatal("empty matrix must have 0 bytes")
	}
}

func TestIOThroughput(t *testing.T) {
	if IO(int64(MasterIOBps)) != 1 {
		t.Fatalf("IO(MasterIOBps) = %v, want 1 s", IO(int64(MasterIOBps)))
	}
}

// Property: all cost functions are non-negative and monotone in their size
// arguments.
func TestCostsMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		n, m := int(a)+1, int(b)+1
		bigger := n * 2
		checks := []struct{ small, large float64 }{
			{Copy(n, m), Copy(bigger, m)},
			{Gemm(n, m, n), Gemm(bigger, m, n)},
			{Eigh(n), Eigh(bigger)},
			{SVCFit(n, m), SVCFit(bigger, m)},
			{SVCPredict(n, n, m), SVCPredict(bigger, n, m)},
			{Scaler(n, m), Scaler(bigger, m)},
			{KNNQuery(n, n, m), KNNQuery(bigger, n, m)},
			{TreeFit(n, m, 4), TreeFit(bigger, m, 4)},
			{TreePredict(n, 4), TreePredict(bigger, 4)},
			{NNForwardBackward(n, float64(m)), NNForwardBackward(bigger, float64(m))},
		}
		for _, c := range checks {
			if c.small < 0 || c.large < c.small {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSTFTCost(t *testing.T) {
	if STFT(0, 256, 128) != 0 || STFT(1000, 0, 10) != 0 || STFT(1000, 256, 0) != 0 {
		t.Fatal("degenerate STFT costs must be 0")
	}
	small := STFT(1000, 256, 128)
	big := STFT(10000, 256, 128)
	if small <= 0 || big <= small {
		t.Fatalf("STFT cost not monotone: %v vs %v", small, big)
	}
}

func TestRelativeKernelOrdering(t *testing.T) {
	// SVC training on n samples must dwarf a single scaler pass — the
	// balance the scheduling figures depend on.
	n, d := 500, 100
	if SVCFit(n, d) <= 100*Scaler(n, d) {
		t.Fatalf("SVCFit (%v) should be orders above Scaler (%v)", SVCFit(n, d), Scaler(n, d))
	}
	// An eigendecomposition dominates the GEMM of the same size.
	if Eigh(n) <= Gemm(n, n, n) {
		t.Fatalf("Eigh (%v) should exceed Gemm (%v)", Eigh(n), Gemm(n, n, n))
	}
}
