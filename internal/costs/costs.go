package costs

// RefFlops is the sustained double-precision throughput assumed for one
// reference core running the library's (unblocked, pure-Go-equivalent)
// dense kernels. Deliberately far below peak: the paper's Python stack runs
// NumPy kernels mixed with interpreter overhead.
const RefFlops = 2e9

// MasterIOBps is the effective throughput of moving data through the
// master process: PyCOMPSs-class runtimes serialize task data with pickle
// and stage it on disk, which is orders of magnitude slower than the
// interconnect. This constant prices the dataset-distribution stages whose
// weight the paper observes ("the solution does not achieve a 5x
// scalability due to the part of the workflow previous to the training of
// the folds which includes the partitioning and distribution of the
// dataset").
const MasterIOBps = 20e6

// Sec converts a floating-point operation count into reference-core seconds.
func Sec(flops float64) float64 { return flops / RefFlops }

// IO models a master-side data staging task (serialize + write) of the
// given payload.
func IO(bytes int64) float64 { return float64(bytes) / MasterIOBps }

// Bytes returns the serialized size of an r×c float64 matrix (the transfer
// unit of the scheduler's interconnect model).
func Bytes(r, c int) int64 { return int64(r) * int64(c) * 8 }

// Copy models a data-movement-only task (block load, split, concat):
// roughly one op per element.
func Copy(r, c int) float64 { return Sec(float64(r) * float64(c)) }

// Gemm models an m×k by k×n matrix product (2mkn flops).
func Gemm(m, k, n int) float64 { return Sec(2 * float64(m) * float64(k) * float64(n)) }

// Eigh models a symmetric n×n eigendecomposition. Jacobi needs a handful of
// sweeps at ~6n³ flops each; 30n³ matches both our solver and LAPACK-class
// costs within the model's tolerance.
func Eigh(n int) float64 { return Sec(30 * float64(n) * float64(n) * float64(n)) }

// SMOIterFactor is the empirical number of SMO iterations per training
// sample for the RBF problems in this repository.
const SMOIterFactor = 8

// SVCFit models SMO training on n samples with d features: approximately
// SMOIterFactor·n iterations, each touching a kernel row (n·d flops).
func SVCFit(n, d int) float64 {
	return Sec(SMOIterFactor * float64(n) * float64(n) * float64(d))
}

// SVCPredict models evaluating nsv support vectors against n samples.
func SVCPredict(nsv, n, d int) float64 {
	return Sec(2 * float64(nsv) * float64(n) * float64(d))
}

// Scaler models a StandardScaler pass (two reads, one write per element).
func Scaler(n, d int) float64 { return Sec(3 * float64(n) * float64(d)) }

// KNNFit models building a per-block neighbor structure (a copy in the
// brute-force implementation, matching scikit-learn's "brute" backend).
func KNNFit(n, d int) float64 { return Copy(n, d) }

// KNNQuery models brute-force distance computation between nTrain stored
// samples and nQuery queries in d dimensions (3 flops per term: diff,
// square, accumulate).
func KNNQuery(nTrain, nQuery, d int) float64 {
	return Sec(3 * float64(nTrain) * float64(nQuery) * float64(d))
}

// TreeFit models growing one CART tree on n samples, d features, to the
// given depth: each level re-scans the samples over the sampled features.
func TreeFit(n, d, depth int) float64 {
	return Sec(6 * float64(n) * float64(d) * float64(depth))
}

// TreePredict models classifying n samples down a depth-deep tree.
func TreePredict(n, depth int) float64 { return Sec(4 * float64(n) * float64(depth)) }

// NNForwardBackward models one optimisation pass (forward + backward ≈ 3×
// forward) over n samples with fwd flops per sample.
func NNForwardBackward(n int, fwdFlopsPerSample float64) float64 {
	return Sec(3 * float64(n) * fwdFlopsPerSample)
}

// STFT models a spectrogram: one FFT of size w per hop, n/hop windows,
// 5·w·log2(w) flops per FFT.
func STFT(n, w, hop int) float64 {
	if hop <= 0 || w <= 0 || n <= 0 {
		return 0
	}
	windows := float64(n / hop)
	logw := 0.0
	for s := 1; s < w; s <<= 1 {
		logw++
	}
	return Sec(windows * 5 * float64(w) * logw)
}
