package edge

import (
	"errors"
	"math"
	"testing"

	"taskml/internal/ecg"
)

// rrFeaturizer summarises a window with its RR-interval statistics — a
// tiny hand-made feature pipeline good enough for unit tests.
func rrFeaturizer(window []float64, fs float64) ([]float64, error) {
	peaks := ecg.DetectRPeaks(window, fs)
	rrs := ecg.RRIntervals(peaks, fs)
	if len(rrs) == 0 {
		return []float64{0, 0}, nil
	}
	var mean float64
	for _, v := range rrs {
		mean += v
	}
	mean /= float64(len(rrs))
	var sd float64
	for _, v := range rrs {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(rrs)))
	return []float64{mean, sd / math.Max(mean, 1e-9)}, nil
}

// rrClassifier flags high RR variability as AF (label 0).
var rrClassifier = ClassifierFunc(func(f []float64) (int, error) {
	if f[1] > 0.12 {
		return 0, nil // AF
	}
	return 1, nil // Normal
})

func TestMonitorConfigValidation(t *testing.T) {
	bad := []Config{
		{Fs: 0},
		{Fs: 300, WindowSec: 2, StrideSec: 5},
		{Fs: 300, WindowSec: -1},
	}
	for i, cfg := range bad {
		if _, err := NewMonitor(cfg, rrFeaturizer, rrClassifier); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
	if _, err := NewMonitor(Config{Fs: 300}, nil, rrClassifier); err == nil {
		t.Fatal("nil featurizer must error")
	}
	if _, err := NewMonitor(Config{Fs: 300}, rrFeaturizer, nil); err == nil {
		t.Fatal("nil classifier must error")
	}
}

func TestNoAlarmOnNormalRhythm(t *testing.T) {
	g := ecg.NewGenerator(ecg.GenConfig{Seed: 1, MinDurSec: 60, MaxDurSec: 60.5, NoiseStd: 0.02})
	rec := g.Record(ecg.Normal)
	events, alarm, err := Run(Config{Fs: rec.Fs, WindowSec: 10, StrideSec: 5}, rrFeaturizer, rrClassifier, rec.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if alarm >= 0 {
		t.Fatalf("false alarm at %v s on a Normal recording", alarm)
	}
	if len(events) < 8 {
		t.Fatalf("only %d events from a 60 s stream", len(events))
	}
}

func TestAlarmOnParoxysmalEpisode(t *testing.T) {
	g := ecg.NewGenerator(ecg.GenConfig{Seed: 2, NoiseStd: 0.02})
	rec, onset := g.Paroxysmal(40, 40)
	onsetSec := float64(onset) / rec.Fs
	events, alarm, err := Run(Config{Fs: rec.Fs, WindowSec: 10, StrideSec: 5, AlarmAfter: 2},
		rrFeaturizer, rrClassifier, rec.Signal)
	if err != nil {
		t.Fatal(err)
	}
	if alarm < 0 {
		t.Fatal("missed the AF episode")
	}
	latency := DetectionLatency(alarm, onsetSec)
	if latency < 0 || latency > 30 {
		t.Fatalf("detection latency %v s (onset %v, alarm %v)", latency, onsetSec, alarm)
	}
	// Exactly one alarm event.
	alarms := 0
	for _, e := range events {
		if e.Alarm {
			alarms++
		}
	}
	if alarms != 1 {
		t.Fatalf("%d alarm events, want 1", alarms)
	}
}

func TestDebounceSuppressesIsolatedPositives(t *testing.T) {
	// A classifier that flags exactly one window as positive cannot trip a
	// 2-window debounce.
	calls := 0
	flaky := ClassifierFunc(func(_ []float64) (int, error) {
		calls++
		if calls == 3 {
			return 0, nil
		}
		return 1, nil
	})
	signal := make([]float64, 300*60)
	_, alarm, err := Run(Config{Fs: 300, WindowSec: 10, StrideSec: 5, AlarmAfter: 2},
		rrFeaturizer, flaky, signal)
	if err != nil {
		t.Fatal(err)
	}
	if alarm >= 0 {
		t.Fatal("debounce failed: isolated positive raised the alarm")
	}
}

func TestPushChunkingInvariance(t *testing.T) {
	g := ecg.NewGenerator(ecg.GenConfig{Seed: 3, NoiseStd: 0.02})
	rec, _ := g.Paroxysmal(30, 30)
	cfg := Config{Fs: rec.Fs, WindowSec: 8, StrideSec: 4}

	whole, _, err := Run(cfg, rrFeaturizer, rrClassifier, rec.Signal)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(cfg, rrFeaturizer, rrClassifier)
	if err != nil {
		t.Fatal(err)
	}
	var chunked []Event
	for at := 0; at < len(rec.Signal); at += 777 {
		end := at + 777
		if end > len(rec.Signal) {
			end = len(rec.Signal)
		}
		evs, err := m.Push(rec.Signal[at:end]...)
		if err != nil {
			t.Fatal(err)
		}
		chunked = append(chunked, evs...)
	}
	if len(whole) != len(chunked) {
		t.Fatalf("chunked %d events vs %d whole", len(chunked), len(whole))
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, whole[i], chunked[i])
		}
	}
}

func TestMonitorReset(t *testing.T) {
	alwaysAF := ClassifierFunc(func(_ []float64) (int, error) { return 0, nil })
	m, err := NewMonitor(Config{Fs: 300, WindowSec: 2, StrideSec: 1, AlarmAfter: 1}, rrFeaturizer, alwaysAF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Push(make([]float64, 300*3)...); err != nil {
		t.Fatal(err)
	}
	if !m.AlarmRaised() {
		t.Fatal("alarm should have fired")
	}
	m.Reset()
	if m.AlarmRaised() {
		t.Fatal("Reset did not clear the alarm")
	}
	evs, err := m.Push(make([]float64, 300)...)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e.Alarm {
			return // re-armed correctly
		}
	}
	if !m.AlarmRaised() {
		t.Fatal("alarm should re-fire after Reset")
	}
}

func TestClassifierErrorPropagates(t *testing.T) {
	boom := ClassifierFunc(func(_ []float64) (int, error) { return 0, errors.New("model gone") })
	_, _, err := Run(Config{Fs: 300, WindowSec: 1, StrideSec: 1}, rrFeaturizer, boom, make([]float64, 600))
	if err == nil {
		t.Fatal("classifier error must propagate")
	}
}

func TestDetectionLatencyMissed(t *testing.T) {
	if DetectionLatency(-1, 10) != -1 {
		t.Fatal("missed alarm latency must be -1")
	}
	if DetectionLatency(15, 10) != 5 {
		t.Fatal("latency arithmetic wrong")
	}
}
