// Package edge implements the inference half of the paper's Figure 1: the
// trained AF-detection model "is then deployed and used for inference at
// the edge" — a wearable device classifies the incoming ECG stream in
// sliding windows and raises an alarm when an AF episode is detected. The
// paper leaves this part as future work; this package builds its
// single-stream state machines — windowing, debounced alarms and
// detection-latency measurement on synthetic paroxysmal episodes — and
// internal/serve composes them into the always-on multi-stream service.
//
// # Public surface
//
// NewMonitor wires a Featurizer and a Classifier behind a sliding-window
// Config; Push feeds samples and returns the events raised so far. Run is
// the one-shot convenience over a full signal; DetectionLatency scores an
// alarm against a known episode onset.
//
// The two halves of the monitor are exported separately for callers that
// score windows asynchronously: a Windower cuts sliding windows
// incrementally (Push / Peek / Advance), and a Debouncer turns the ordered
// label sequence back into events and alarms (Apply). Monitor ≡ Windower +
// synchronous featurize/classify + Debouncer, which is the contract that
// keeps internal/serve's micro-batched scoring bit-identical to the batch
// Run path: same windows in, same labels applied in stream order, same
// debounce state machine. A window that is never scored (serve's overload
// shedding) is simply not Applied — a gap neither extends nor resets the
// consecutive-positive chain.
//
// # Concurrency and ownership
//
// Every type here is a single-stream state machine with no internal
// locking: one goroutine pushes samples, events are returned (not
// delivered asynchronously), and the injected Featurizer/Classifier are
// called synchronously from Monitor.Push. Windower.Peek returns a view
// into the internal buffer valid until the next Push — copy it to retain
// it (internal/serve does, since its windows outlive the ingest call). Use
// one Monitor (or Windower/Debouncer pair) per stream; distinct instances
// are independent.
package edge
