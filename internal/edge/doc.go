// Package edge implements the inference half of the paper's Figure 1: the
// trained AF-detection model "is then deployed and used for inference at
// the edge" — a wearable device classifies the incoming ECG stream in
// sliding windows and raises an alarm when an AF episode is detected. The
// paper leaves this part as future work; this package builds it as a
// streaming monitor with debounced alarms and detection-latency
// measurement on synthetic paroxysmal episodes.
//
// # Public surface
//
// NewMonitor wires a Featurizer and a Classifier behind a sliding-window
// Config; Push feeds samples and returns the events raised so far. Run is
// the one-shot convenience over a full signal; DetectionLatency scores an
// alarm against a known episode onset.
//
// # Concurrency and ownership
//
// A Monitor is a single-stream state machine: one goroutine pushes samples,
// events are returned (not delivered asynchronously), and the injected
// Featurizer/Classifier are called synchronously from Push. Use one Monitor
// per stream; distinct Monitors are independent.
package edge
