package edge

import (
	"errors"
	"fmt"
)

// Classifier labels one analysis window's feature vector (the label values
// are the application's, e.g. core.LabelAF / core.LabelNormal).
type Classifier interface {
	Classify(features []float64) (int, error)
}

// ClassifierFunc adapts a plain function to the Classifier interface.
type ClassifierFunc func(features []float64) (int, error)

// Classify implements Classifier.
func (f ClassifierFunc) Classify(features []float64) (int, error) { return f(features) }

// Featurizer converts a raw signal window into the classifier's feature
// vector (e.g. the zero-pad + STFT + PCA-projection pipeline).
type Featurizer func(window []float64, fs float64) ([]float64, error)

// Config parameterises the monitor.
type Config struct {
	// Fs is the stream's sampling rate in Hz.
	Fs float64
	// WindowSec is the analysis window length. Default 10 s.
	WindowSec float64
	// StrideSec is the hop between consecutive windows. Default 2 s.
	StrideSec float64
	// AlarmAfter is the number of consecutive positive windows required to
	// raise the alarm (debouncing transient misclassifications). Default 2.
	AlarmAfter int
	// PositiveLabel is the label treated as an AF detection. Default 0
	// (core.LabelAF).
	PositiveLabel int
}

func (c Config) withDefaults() Config {
	if c.WindowSec == 0 {
		c.WindowSec = 10
	}
	if c.StrideSec == 0 {
		c.StrideSec = 2
	}
	if c.AlarmAfter == 0 {
		c.AlarmAfter = 2
	}
	return c
}

// Event is one classified window.
type Event struct {
	// TimeSec is the window's end time in the stream.
	TimeSec float64
	// Label is the classifier's output.
	Label int
	// Alarm is true on the event that crosses the debounce threshold.
	Alarm bool
}

// Validate checks the sampling rate and window geometry (NewMonitor and
// the serving layer share it).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Fs <= 0 {
		return errors.New("edge: Fs must be positive")
	}
	if c.StrideSec <= 0 || c.WindowSec <= 0 || c.StrideSec > c.WindowSec {
		return fmt.Errorf("edge: invalid window %gs / stride %gs", c.WindowSec, c.StrideSec)
	}
	return nil
}

// WindowSamples returns the analysis window length in samples.
func (c Config) WindowSamples() int {
	c = c.withDefaults()
	return int(c.WindowSec * c.Fs)
}

// StrideSamples returns the hop between consecutive windows in samples.
func (c Config) StrideSamples() int {
	c = c.withDefaults()
	return int(c.StrideSec * c.Fs)
}

// Windower cuts fixed-length sliding windows from an incrementally pushed
// sample stream. It is the buffering half of a Monitor, split out so a
// serving coordinator can cut windows synchronously while scoring them
// elsewhere.
type Windower struct {
	buf      []float64
	consumed int // samples dropped from the front of buf
	winLen   int
	stride   int
}

// NewWindower builds a windower over winLen-sample windows advancing by
// stride samples.
func NewWindower(winLen, stride int) (*Windower, error) {
	if winLen <= 0 || stride <= 0 || stride > winLen {
		return nil, fmt.Errorf("edge: invalid window %d / stride %d samples", winLen, stride)
	}
	return &Windower{winLen: winLen, stride: stride}, nil
}

// Push appends samples to the stream.
func (w *Windower) Push(samples ...float64) { w.buf = append(w.buf, samples...) }

// Peek returns the next complete analysis window, or ok=false when fewer
// than a window's worth of samples are buffered. The returned slice is a
// view into the internal buffer, valid until the next Push: callers that
// retain the window past that must copy it. endSample is the stream index
// one past the window's last sample (Event.TimeSec = endSample / Fs).
func (w *Windower) Peek() (window []float64, endSample int, ok bool) {
	if len(w.buf) < w.winLen {
		return nil, 0, false
	}
	return w.buf[:w.winLen:w.winLen], w.consumed + w.winLen, true
}

// Advance consumes the window Peek returned, moving the stream forward by
// one stride. It is a no-op when no complete window is buffered.
func (w *Windower) Advance() {
	if len(w.buf) < w.winLen {
		return
	}
	w.buf = w.buf[w.stride:]
	w.consumed += w.stride
}

// Buffered returns the number of samples currently held.
func (w *Windower) Buffered() int { return len(w.buf) }

// Debouncer turns one stream's ordered per-window label sequence into
// events, applying the consecutive-positive alarm rule. It is the decision
// half of a Monitor: feed it every window's label in stream order and it
// reproduces Monitor's events exactly. A window that was never scored
// (e.g. shed under overload by the serving layer) is represented by *not*
// calling Apply for it — a gap neither extends nor resets the
// consecutive-positive chain, so a dropped window can never mask an
// ongoing episode.
type Debouncer struct {
	fs          float64
	alarmAfter  int
	positive    int
	consecPos   int
	alarmRaised bool
}

// NewDebouncer builds a debouncer from the monitor configuration (Fs,
// AlarmAfter and PositiveLabel are used; defaults apply).
func NewDebouncer(cfg Config) *Debouncer {
	cfg = cfg.withDefaults()
	return &Debouncer{fs: cfg.Fs, alarmAfter: cfg.AlarmAfter, positive: cfg.PositiveLabel}
}

// Apply records the label of the window ending at endSample and returns
// its event, with Alarm set on the event that crosses the debounce
// threshold.
func (d *Debouncer) Apply(endSample, label int) Event {
	ev := Event{TimeSec: float64(endSample) / d.fs, Label: label}
	if label == d.positive {
		d.consecPos++
		if d.consecPos >= d.alarmAfter && !d.alarmRaised {
			d.alarmRaised = true
			ev.Alarm = true
		}
	} else {
		d.consecPos = 0
	}
	return ev
}

// AlarmRaised reports whether the alarm has fired.
func (d *Debouncer) AlarmRaised() bool { return d.alarmRaised }

// Reset clears the alarm and debounce state.
func (d *Debouncer) Reset() {
	d.consecPos = 0
	d.alarmRaised = false
}

// Monitor consumes a sample stream incrementally and classifies sliding
// windows. It is a plain state machine (no goroutines): push samples, get
// events. Internally it is a Windower feeding a Debouncer with the
// featurize+classify step run synchronously in between; the serving layer
// (internal/serve) composes the same two halves around asynchronous
// micro-batched scoring, which is what keeps its alarms bit-identical to
// this path.
type Monitor struct {
	cfg       Config
	classify  Classifier
	featurize Featurizer
	win       *Windower
	deb       *Debouncer
}

// NewMonitor builds a streaming monitor.
func NewMonitor(cfg Config, featurize Featurizer, classify Classifier) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if featurize == nil || classify == nil {
		return nil, errors.New("edge: featurizer and classifier are required")
	}
	win, err := NewWindower(cfg.WindowSamples(), cfg.StrideSamples())
	if err != nil {
		return nil, err
	}
	return &Monitor{
		cfg:       cfg,
		classify:  classify,
		featurize: featurize,
		win:       win,
		deb:       NewDebouncer(cfg),
	}, nil
}

// AlarmRaised reports whether the alarm has fired.
func (m *Monitor) AlarmRaised() bool { return m.deb.AlarmRaised() }

// Reset clears the alarm and debounce state (the stream position is kept).
func (m *Monitor) Reset() { m.deb.Reset() }

// Push appends samples to the stream and returns the events of every
// analysis window completed by them. Splitting the same stream into
// different Push chunk sizes yields identical events. On a featurizer or
// classifier error the failing window stays buffered (a later Push retries
// it) and the events already raised are returned alongside the error.
func (m *Monitor) Push(samples ...float64) ([]Event, error) {
	m.win.Push(samples...)
	var events []Event
	for {
		window, end, ok := m.win.Peek()
		if !ok {
			break
		}
		feats, err := m.featurize(window, m.cfg.Fs)
		if err != nil {
			return events, fmt.Errorf("edge: featurize: %w", err)
		}
		label, err := m.classify.Classify(feats)
		if err != nil {
			return events, fmt.Errorf("edge: classify: %w", err)
		}
		m.win.Advance()
		events = append(events, m.deb.Apply(end, label))
	}
	return events, nil
}

// Run processes a whole recording at once and returns all events plus the
// alarm time (-1 when no alarm fired).
func Run(cfg Config, featurize Featurizer, classify Classifier, signal []float64) ([]Event, float64, error) {
	m, err := NewMonitor(cfg, featurize, classify)
	if err != nil {
		return nil, -1, err
	}
	events, err := m.Push(signal...)
	if err != nil {
		return events, -1, err
	}
	alarm := -1.0
	for _, e := range events {
		if e.Alarm {
			alarm = e.TimeSec
			break
		}
	}
	return events, alarm, nil
}

// DetectionLatency returns the delay between an episode onset and the
// alarm, or -1 when the alarm never fired (a missed episode).
func DetectionLatency(alarmTimeSec, onsetSec float64) float64 {
	if alarmTimeSec < 0 {
		return -1
	}
	return alarmTimeSec - onsetSec
}
