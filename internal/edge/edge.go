package edge

import (
	"errors"
	"fmt"
)

// Classifier labels one analysis window's feature vector (the label values
// are the application's, e.g. core.LabelAF / core.LabelNormal).
type Classifier interface {
	Classify(features []float64) (int, error)
}

// ClassifierFunc adapts a plain function to the Classifier interface.
type ClassifierFunc func(features []float64) (int, error)

// Classify implements Classifier.
func (f ClassifierFunc) Classify(features []float64) (int, error) { return f(features) }

// Featurizer converts a raw signal window into the classifier's feature
// vector (e.g. the zero-pad + STFT + PCA-projection pipeline).
type Featurizer func(window []float64, fs float64) ([]float64, error)

// Config parameterises the monitor.
type Config struct {
	// Fs is the stream's sampling rate in Hz.
	Fs float64
	// WindowSec is the analysis window length. Default 10 s.
	WindowSec float64
	// StrideSec is the hop between consecutive windows. Default 2 s.
	StrideSec float64
	// AlarmAfter is the number of consecutive positive windows required to
	// raise the alarm (debouncing transient misclassifications). Default 2.
	AlarmAfter int
	// PositiveLabel is the label treated as an AF detection. Default 0
	// (core.LabelAF).
	PositiveLabel int
}

func (c Config) withDefaults() Config {
	if c.WindowSec == 0 {
		c.WindowSec = 10
	}
	if c.StrideSec == 0 {
		c.StrideSec = 2
	}
	if c.AlarmAfter == 0 {
		c.AlarmAfter = 2
	}
	return c
}

// Event is one classified window.
type Event struct {
	// TimeSec is the window's end time in the stream.
	TimeSec float64
	// Label is the classifier's output.
	Label int
	// Alarm is true on the event that crosses the debounce threshold.
	Alarm bool
}

// Monitor consumes a sample stream incrementally and classifies sliding
// windows. It is a plain state machine (no goroutines): push samples, get
// events.
type Monitor struct {
	cfg         Config
	classify    Classifier
	featurize   Featurizer
	buf         []float64
	consumed    int // samples dropped from the front of buf
	winLen      int
	stride      int
	consecPos   int
	alarmRaised bool
}

// NewMonitor builds a streaming monitor.
func NewMonitor(cfg Config, featurize Featurizer, classify Classifier) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if cfg.Fs <= 0 {
		return nil, errors.New("edge: Fs must be positive")
	}
	if cfg.StrideSec <= 0 || cfg.WindowSec <= 0 || cfg.StrideSec > cfg.WindowSec {
		return nil, fmt.Errorf("edge: invalid window %gs / stride %gs", cfg.WindowSec, cfg.StrideSec)
	}
	if featurize == nil || classify == nil {
		return nil, errors.New("edge: featurizer and classifier are required")
	}
	return &Monitor{
		cfg:       cfg,
		classify:  classify,
		featurize: featurize,
		winLen:    int(cfg.WindowSec * cfg.Fs),
		stride:    int(cfg.StrideSec * cfg.Fs),
	}, nil
}

// AlarmRaised reports whether the alarm has fired.
func (m *Monitor) AlarmRaised() bool { return m.alarmRaised }

// Reset clears the alarm and debounce state (the stream position is kept).
func (m *Monitor) Reset() {
	m.consecPos = 0
	m.alarmRaised = false
}

// Push appends samples to the stream and returns the events of every
// analysis window completed by them. Splitting the same stream into
// different Push chunk sizes yields identical events.
func (m *Monitor) Push(samples ...float64) ([]Event, error) {
	m.buf = append(m.buf, samples...)
	var events []Event
	for len(m.buf) >= m.winLen {
		window := m.buf[:m.winLen]
		feats, err := m.featurize(window, m.cfg.Fs)
		if err != nil {
			return events, fmt.Errorf("edge: featurize: %w", err)
		}
		label, err := m.classify.Classify(feats)
		if err != nil {
			return events, fmt.Errorf("edge: classify: %w", err)
		}
		end := float64(m.consumed+m.winLen) / m.cfg.Fs
		ev := Event{TimeSec: end, Label: label}
		if label == m.cfg.PositiveLabel {
			m.consecPos++
			if m.consecPos >= m.cfg.AlarmAfter && !m.alarmRaised {
				m.alarmRaised = true
				ev.Alarm = true
			}
		} else {
			m.consecPos = 0
		}
		events = append(events, ev)
		m.buf = m.buf[m.stride:]
		m.consumed += m.stride
	}
	return events, nil
}

// Run processes a whole recording at once and returns all events plus the
// alarm time (-1 when no alarm fired).
func Run(cfg Config, featurize Featurizer, classify Classifier, signal []float64) ([]Event, float64, error) {
	m, err := NewMonitor(cfg, featurize, classify)
	if err != nil {
		return nil, -1, err
	}
	events, err := m.Push(signal...)
	if err != nil {
		return events, -1, err
	}
	alarm := -1.0
	for _, e := range events {
		if e.Alarm {
			alarm = e.TimeSec
			break
		}
	}
	return events, alarm, nil
}

// DetectionLatency returns the delay between an episode onset and the
// alarm, or -1 when the alarm never fired (a missed episode).
func DetectionLatency(alarmTimeSec, onsetSec float64) float64 {
	if alarmTimeSec < 0 {
		return -1
	}
	return alarmTimeSec - onsetSec
}
