package preproc

import (
	"fmt"
	"math"

	"taskml/internal/compss"
	"taskml/internal/costs"
	"taskml/internal/dsarray"
	"taskml/internal/mat"
)

// MinMaxScaler rescales every feature to [0, 1] (dislib ships it alongside
// the StandardScaler; wearable pipelines often prefer it because spectral
// power features are non-negative and heavy-tailed).
//
// Like the StandardScaler it is a two-phase task workflow: per-block
// min/max tasks, a pairwise reduction, and one transform task per block;
// nothing synchronises.
type MinMaxScaler struct {
	ranges *compss.Future // 2×d matrix: row 0 = min, row 1 = max
	cols   int
}

// neutralRanges is the min/max reduction's neutral element: +Inf minima and
// -Inf maxima, which any real partial overrides. Declared as the fallback of
// the fit tasks so a Degrade-policy runtime can lose a block's partial (or a
// merge) and still produce usable — if narrower — ranges.
func neutralRanges(d int) *mat.Dense {
	out := mat.New(2, d)
	for c := 0; c < d; c++ {
		out.Set(0, c, math.Inf(1))
		out.Set(1, c, math.Inf(-1))
	}
	return out
}

// Fit computes per-feature minima and maxima of x.
func (s *MinMaxScaler) Fit(x *dsarray.Array) {
	tc := x.Ctx()
	d := x.Cols()
	partialFallback := neutralRanges(d)
	partials := make([]*compss.Future, 0, x.NumRowBlocks()*x.NumColBlocks())
	for i := 0; i < x.NumRowBlocks(); i++ {
		for j := 0; j < x.NumColBlocks(); j++ {
			jj := j
			partials = append(partials, tc.Submit(compss.Opts{
				Name:     "minmax_partial",
				Cost:     costs.Copy(x.BlockRows(), x.BlockCols()),
				OutBytes: costs.Bytes(2, d),
				Fallback: partialFallback,
			}, func(_ *compss.TaskCtx, args []any) (any, error) {
				blk := args[0].(*mat.Dense)
				out := mat.New(2, d)
				for c := 0; c < d; c++ {
					out.Set(0, c, math.Inf(1))
					out.Set(1, c, math.Inf(-1))
				}
				off := jj * x.BlockCols()
				for r := 0; r < blk.Rows; r++ {
					row := blk.Row(r)
					for c, v := range row {
						if v < out.At(0, off+c) {
							out.Set(0, off+c, v)
						}
						if v > out.At(1, off+c) {
							out.Set(1, off+c, v)
						}
					}
				}
				return out, nil
			}, x.Block(i, j)))
		}
	}
	s.ranges = dsarray.ReduceTree(tc, dsarray.ReduceOpts{
		Name: "minmax_merge", Cost: costs.Copy(2, d), OutBytes: costs.Bytes(2, d),
		Fallback: neutralRanges(d),
	}, partials,
		func(a, b *mat.Dense) *mat.Dense {
			out := a.Clone()
			for c := 0; c < out.Cols; c++ {
				if b.At(0, c) < out.At(0, c) {
					out.Set(0, c, b.At(0, c))
				}
				if b.At(1, c) > out.At(1, c) {
					out.Set(1, c, b.At(1, c))
				}
			}
			return out
		})
	s.cols = d
}

// Transform maps x to [0, 1] per feature; constant features map to 0.
func (s *MinMaxScaler) Transform(x *dsarray.Array) (*dsarray.Array, error) {
	if s.ranges == nil {
		return nil, ErrNotFitted
	}
	if x.Cols() != s.cols {
		return nil, fmt.Errorf("preproc: min-max scaler fitted on %d features, got %d", s.cols, x.Cols())
	}
	tc := x.Ctx()
	nrb, ncb := x.NumRowBlocks(), x.NumColBlocks()
	out := make([][]*compss.Future, nrb)
	for i := 0; i < nrb; i++ {
		out[i] = make([]*compss.Future, ncb)
		for j := 0; j < ncb; j++ {
			jj := j
			out[i][j] = tc.Submit(compss.Opts{
				Name:     "minmax_transform",
				Cost:     costs.Copy(x.BlockRows(), x.BlockCols()),
				OutBytes: costs.Bytes(x.BlockRows(), x.BlockCols()),
			}, func(_ *compss.TaskCtx, args []any) (any, error) {
				blk := args[0].(*mat.Dense).Clone()
				rg := args[1].(*mat.Dense)
				off := jj * x.BlockCols()
				for r := 0; r < blk.Rows; r++ {
					row := blk.Row(r)
					for c := range row {
						lo, hi := rg.At(0, off+c), rg.At(1, off+c)
						if hi > lo {
							row[c] = (row[c] - lo) / (hi - lo)
						} else {
							row[c] = 0
						}
					}
				}
				return blk, nil
			}, x.Block(i, j), s.ranges)
		}
	}
	return dsarray.FromBlocks(tc, out, x.Rows(), x.Cols(), x.BlockRows(), x.BlockCols()), nil
}

// FitTransform fits and transforms x.
func (s *MinMaxScaler) FitTransform(x *dsarray.Array) (*dsarray.Array, error) {
	s.Fit(x)
	return s.Transform(x)
}
