// Package preproc implements the dislib preprocessing estimators the paper
// uses: StandardScaler (the extra step of the KNN experiment, §IV-B) and
// PCA via the covariance method (§III-B.4), both as task workflows over
// ds-arrays with parallelism per row block.
//
// # Public surface
//
// StandardScaler and PCA follow the estimator shape (Fit over a
// dsarray.Array, then Transform); MinMaxScaler is the streaming-friendly
// variant used at the edge.
//
// # Concurrency and ownership
//
// Fit and Transform submit tasks on the array's compss context and
// synchronise internally where the algorithm demands it (the eigh step of
// PCA, like the paper's implementation, runs on the master). The block task
// bodies are registered with internal/exec and argument-pure, so fitting is
// bit-identical in-process and on remote workers. A fitted estimator is
// immutable and safe for concurrent Transform calls.
package preproc
