package preproc

import (
	"errors"
	"fmt"

	"taskml/internal/compss"
	"taskml/internal/costs"
	"taskml/internal/dsarray"
	"taskml/internal/mat"
)

// ErrNotFitted is returned when Transform is called before Fit.
var ErrNotFitted = errors.New("preproc: estimator is not fitted")

// StandardScaler removes the mean of every feature and divides by its
// standard deviation, "in order to reduce the variance to a unit" — the
// paper applies it before KNN so no feature dominates the distances.
//
// Fit builds a map-reduce over the blocks (one partial-moments task per
// block, a pairwise reduction, one finalize task); Transform is one task
// per block. Nothing synchronises: the fitted statistics stay a future, so
// a scaler+estimator pipeline forms a single task graph, as in Figure 6.
type StandardScaler struct {
	stats *compss.Future // 2×d matrix: row 0 = mean, row 1 = std
	cols  int
}

// Fit computes per-feature moments of x.
func (s *StandardScaler) Fit(x *dsarray.Array) {
	tc := x.Ctx()
	d := x.Cols()
	// Partial moments per block: a 3×d matrix [count*; sum; sumsq], where
	// count is replicated along the row for uniform merging.
	partials := make([]*compss.Future, 0, x.NumRowBlocks()*x.NumColBlocks())
	for i := 0; i < x.NumRowBlocks(); i++ {
		for j := 0; j < x.NumColBlocks(); j++ {
			partials = append(partials, tc.SubmitExec(compss.Opts{
				Name:     "scaler_partial",
				Exec:     "scaler_partial",
				Cost:     costs.Scaler(x.BlockRows(), x.BlockCols()),
				OutBytes: costs.Bytes(3, d),
			}, x.Block(i, j), j*x.BlockCols(), d))
		}
	}
	merged := dsarray.ReduceTree(tc, dsarray.ReduceOpts{
		Name: "scaler_merge", Exec: "mat_add",
		Cost: costs.Copy(3, d), OutBytes: costs.Bytes(3, d),
	}, partials, nil)

	s.stats = tc.SubmitExec(compss.Opts{
		Name:     "scaler_finalize",
		Exec:     "scaler_finalize",
		Cost:     costs.Copy(2, d),
		OutBytes: costs.Bytes(2, d),
	}, merged)
	s.cols = d
}

// Transform returns (x - mean) / std, one task per block.
func (s *StandardScaler) Transform(x *dsarray.Array) (*dsarray.Array, error) {
	if s.stats == nil {
		return nil, ErrNotFitted
	}
	if x.Cols() != s.cols {
		return nil, fmt.Errorf("preproc: scaler fitted on %d features, got %d", s.cols, x.Cols())
	}
	tc := x.Ctx()
	nrb, ncb := x.NumRowBlocks(), x.NumColBlocks()
	out := make([][]*compss.Future, nrb)
	for i := 0; i < nrb; i++ {
		out[i] = make([]*compss.Future, ncb)
		for j := 0; j < ncb; j++ {
			out[i][j] = tc.SubmitExec(compss.Opts{
				Name:     "scaler_transform",
				Exec:     "scaler_transform",
				Cost:     costs.Scaler(x.BlockRows(), x.BlockCols()),
				OutBytes: costs.Bytes(x.BlockRows(), x.BlockCols()),
			}, x.Block(i, j), s.stats, j*x.BlockCols())
		}
	}
	return dsarray.FromBlocks(tc, out, x.Rows(), x.Cols(), x.BlockRows(), x.BlockCols()), nil
}

// FitTransform fits the scaler and transforms x.
func (s *StandardScaler) FitTransform(x *dsarray.Array) (*dsarray.Array, error) {
	s.Fit(x)
	return s.Transform(x)
}

// Stats synchronises the fitted statistics: means and standard deviations.
func (s *StandardScaler) Stats(tc *compss.TaskCtx) (means, stds []float64, err error) {
	if s.stats == nil {
		return nil, nil, ErrNotFitted
	}
	v, err := tc.Get(s.stats)
	if err != nil {
		return nil, nil, err
	}
	m := v.(*mat.Dense)
	return append([]float64(nil), m.Row(0)...), append([]float64(nil), m.Row(1)...), nil
}

// PCA reduces dimensionality with the covariance method of §III-B.4:
// features are centered (not standardized), the covariance matrix is
// estimated as xᵀx/(n-1) "in two successive map-reduce phases, partitioning
// the samples only by row blocks", and a single task computes the
// eigendecomposition of the unpartitioned covariance matrix.
type PCA struct {
	// NComponents fixes the output dimensionality. Leave 0 to select by
	// VarianceToRetain.
	NComponents int
	// VarianceToRetain selects the smallest k whose eigenvalues explain at
	// least this fraction of total variance (the paper keeps 95%, reducing
	// 18810 features to 3269). Default 0.95 when NComponents is 0.
	VarianceToRetain float64

	mean       *compss.Future // 1×d
	components *mat.Dense     // d×k, materialised on the master at Fit
	explained  []float64      // eigenvalues, descending
	k          int
	cols       int
}

// Fit runs the PCA workflow on x. The eigendecomposition is synchronised to
// the master (it is a single task in dislib too); selecting k by retained
// variance requires the eigenvalues on the master regardless.
func (p *PCA) Fit(x *dsarray.Array) error {
	if x.Rows() < 2 {
		return fmt.Errorf("preproc: PCA needs at least 2 samples, got %d", x.Rows())
	}
	tc := x.Ctx()
	d := x.Cols()

	// Phase 1: column means.
	sums := x.ColSums()
	p.mean = tc.SubmitExec(compss.Opts{
		Name:     "pca_mean",
		Exec:     "pca_mean",
		Cost:     costs.Copy(1, d),
		OutBytes: costs.Bytes(1, d),
	}, sums, x.Rows())

	// Phase 2: covariance of the centered data.
	centered := x.SubRowVec(p.mean)
	gram := centered.Gram()
	cov := tc.SubmitExec(compss.Opts{
		Name:     "pca_cov",
		Exec:     "pca_cov",
		Cost:     costs.Copy(d, d),
		OutBytes: costs.Bytes(d, d),
	}, gram, x.Rows())

	// Single eigendecomposition task (numpy.linalg.eigh in dislib).
	eig := tc.SubmitExecN(compss.Opts{
		Name:     "pca_eigh",
		Exec:     "pca_eigh",
		Cost:     costs.Eigh(d),
		OutBytes: costs.Bytes(d, d),
	}, 2, cov)

	valsAny, err := tc.Get(eig[0])
	if err != nil {
		return err
	}
	vecsAny, err := tc.Get(eig[1])
	if err != nil {
		return err
	}
	vals := valsAny.(*mat.Dense).Row(0)
	p.explained = append([]float64(nil), vals...)
	p.components = vecsAny.(*mat.Dense)
	p.cols = d

	switch {
	case p.NComponents > 0:
		if p.NComponents > d {
			return fmt.Errorf("preproc: NComponents %d exceeds %d features", p.NComponents, d)
		}
		p.k = p.NComponents
	default:
		retain := p.VarianceToRetain
		if retain == 0 {
			retain = 0.95
		}
		if retain <= 0 || retain > 1 {
			return fmt.Errorf("preproc: VarianceToRetain %v outside (0, 1]", retain)
		}
		var total float64
		for _, v := range vals {
			if v > 0 {
				total += v
			}
		}
		p.k = d
		if total > 0 {
			acc := 0.0
			for i, v := range vals {
				if v > 0 {
					acc += v
				}
				if acc/total >= retain {
					p.k = i + 1
					break
				}
			}
		}
	}
	return nil
}

// K returns the selected number of components.
func (p *PCA) K() int { return p.k }

// ExplainedVariance returns the eigenvalues in descending order.
func (p *PCA) ExplainedVariance() []float64 { return p.explained }

// ExplainedVarianceRatio returns the fraction of variance the selected k
// components retain.
func (p *PCA) ExplainedVarianceRatio() float64 {
	var total, kept float64
	for i, v := range p.explained {
		if v > 0 {
			total += v
			if i < p.k {
				kept += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return kept / total
}

// Transform projects x onto the selected components: (x - mean) · W_k, one
// centering task and one GEMM task per row block.
func (p *PCA) Transform(x *dsarray.Array) (*dsarray.Array, error) {
	if p.components == nil {
		return nil, ErrNotFitted
	}
	if x.Cols() != p.cols {
		return nil, fmt.Errorf("preproc: PCA fitted on %d features, got %d", p.cols, x.Cols())
	}
	tc := x.Ctx()
	w := p.components.Slice(0, p.cols, 0, p.k)
	wf := tc.Submit(compss.Opts{
		Name:     "pca_components",
		Cost:     costs.Copy(p.cols, p.k),
		OutBytes: costs.Bytes(p.cols, p.k),
	}, func(_ *compss.TaskCtx, args []any) (any, error) {
		return args[0].(*mat.Dense), nil
	}, w)
	return x.SubRowVec(p.mean).MulDense(wf, p.k), nil
}

// FitTransform fits the PCA on x and projects it.
func (p *PCA) FitTransform(x *dsarray.Array) (*dsarray.Array, error) {
	if err := p.Fit(x); err != nil {
		return nil, err
	}
	return p.Transform(x)
}
