package preproc

import (
	"math"
	"math/rand"
	"testing"

	"taskml/internal/compss"
	"taskml/internal/dsarray"
	"taskml/internal/mat"
)

func newRT() *compss.Runtime { return compss.New(compss.Config{Workers: 4}) }

func randMatrix(rng *rand.Rand, r, c int, scale, offset float64) *mat.Dense {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()*scale + offset
	}
	return m
}

func TestScalerProducesZeroMeanUnitStd(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 50, 7, 3.5, 10)
	a := dsarray.FromMatrix(rt.Main(), m, 13, 3)
	var s StandardScaler
	scaled, err := s.FitTransform(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scaled.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for j, mean := range mat.ColMeans(got) {
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean = %v", j, mean)
		}
	}
	for j := 0; j < got.Cols; j++ {
		var ss float64
		for i := 0; i < got.Rows; i++ {
			ss += got.At(i, j) * got.At(i, j)
		}
		std := math.Sqrt(ss / float64(got.Rows))
		if math.Abs(std-1) > 1e-9 {
			t.Fatalf("column %d std = %v", j, std)
		}
	}
}

func TestScalerStats(t *testing.T) {
	rt := newRT()
	m := mat.NewFromRows([][]float64{{1, 10}, {3, 10}, {5, 10}})
	a := dsarray.FromMatrix(rt.Main(), m, 2, 2)
	var s StandardScaler
	s.Fit(a)
	means, stds, err := s.Stats(rt.Main())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(means[0]-3) > 1e-12 || math.Abs(means[1]-10) > 1e-12 {
		t.Fatalf("means = %v", means)
	}
	// Column 0: population std of {1,3,5} = sqrt(8/3).
	if math.Abs(stds[0]-math.Sqrt(8.0/3)) > 1e-12 {
		t.Fatalf("stds = %v", stds)
	}
	// Constant column: std treated as 1.
	if stds[1] != 1 {
		t.Fatalf("constant column std = %v, want 1", stds[1])
	}
}

func TestScalerTransformBeforeFit(t *testing.T) {
	rt := newRT()
	a := dsarray.FromMatrix(rt.Main(), mat.New(4, 2), 2, 2)
	var s StandardScaler
	if _, err := s.Transform(a); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
}

func TestScalerDimensionMismatch(t *testing.T) {
	rt := newRT()
	a := dsarray.FromMatrix(rt.Main(), randMatrix(rand.New(rand.NewSource(2)), 6, 3, 1, 0), 3, 3)
	b := dsarray.FromMatrix(rt.Main(), mat.New(6, 4), 3, 4)
	var s StandardScaler
	s.Fit(a)
	if _, err := s.Transform(b); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestScalerGraphShape(t *testing.T) {
	rt := newRT()
	m := randMatrix(rand.New(rand.NewSource(3)), 20, 8, 1, 0)
	a := dsarray.FromMatrix(rt.Main(), m, 5, 4) // 4×2 grid
	var s StandardScaler
	if _, err := s.FitTransform(a); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	counts := rt.Graph().CountByName()
	if counts["scaler_partial"] != 8 || counts["scaler_transform"] != 8 {
		t.Fatalf("graph shape: %v", counts)
	}
	if counts["scaler_merge"] != 7 { // 8 partials → 7 pairwise merges
		t.Fatalf("merge count: %v", counts)
	}
}

// serialPCA computes the reference projection with direct linear algebra.
func serialPCA(m *mat.Dense, k int) *mat.Dense {
	c := m.Clone()
	mat.SubRowVec(c, mat.ColMeans(c))
	cov := mat.Scale(1/float64(m.Rows-1), mat.MulAtB(c, c))
	_, vecs, err := mat.EigSym(cov)
	if err != nil {
		panic(err)
	}
	return mat.Mul(c, vecs.Slice(0, m.Cols, 0, k))
}

func TestPCAFixedComponentsMatchesSerial(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(4))
	m := randMatrix(rng, 40, 6, 2, 5)
	a := dsarray.FromMatrix(rt.Main(), m, 9, 3)
	p := PCA{NComponents: 3}
	proj, err := p.FitTransform(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := proj.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := serialPCA(m, 3)
	if got.Rows != 40 || got.Cols != 3 {
		t.Fatalf("projection shape %dx%d", got.Rows, got.Cols)
	}
	// Eigenvector signs are arbitrary: compare per-column absolute values.
	for j := 0; j < 3; j++ {
		same, flipped := true, true
		for i := 0; i < got.Rows; i++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-7 {
				same = false
			}
			if math.Abs(got.At(i, j)+want.At(i, j)) > 1e-7 {
				flipped = false
			}
		}
		if !same && !flipped {
			t.Fatalf("component %d does not match serial PCA (up to sign)", j)
		}
	}
}

func TestPCAVarianceRetention(t *testing.T) {
	// Data with strong low-rank structure: 2 dominant directions + noise.
	rt := newRT()
	rng := rand.New(rand.NewSource(5))
	n, d := 120, 10
	m := mat.New(n, d)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64()*10, rng.NormFloat64()*5
		for j := 0; j < d; j++ {
			m.Set(i, j, a*math.Sin(float64(j))+b*math.Cos(2*float64(j))+0.1*rng.NormFloat64())
		}
	}
	a := dsarray.FromMatrix(rt.Main(), m, 30, 5)
	p := PCA{VarianceToRetain: 0.95}
	if err := p.Fit(a); err != nil {
		t.Fatal(err)
	}
	if p.K() < 1 || p.K() > 3 {
		t.Fatalf("K = %d, want small for rank-2 data", p.K())
	}
	if r := p.ExplainedVarianceRatio(); r < 0.95 {
		t.Fatalf("retained ratio %v < 0.95", r)
	}
	if len(p.ExplainedVariance()) != d {
		t.Fatalf("eigenvalue count %d", len(p.ExplainedVariance()))
	}
	// Eigenvalues descending.
	ev := p.ExplainedVariance()
	for i := 1; i < len(ev); i++ {
		if ev[i] > ev[i-1]+1e-9 {
			t.Fatalf("eigenvalues not sorted: %v", ev)
		}
	}
}

func TestPCADefaultsTo95(t *testing.T) {
	rt := newRT()
	m := randMatrix(rand.New(rand.NewSource(6)), 30, 5, 1, 0)
	a := dsarray.FromMatrix(rt.Main(), m, 10, 5)
	var p PCA
	if err := p.Fit(a); err != nil {
		t.Fatal(err)
	}
	if p.ExplainedVarianceRatio() < 0.95 {
		t.Fatalf("default retention %v < 0.95", p.ExplainedVarianceRatio())
	}
}

func TestPCAProjectionDecorrelates(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(7))
	m := randMatrix(rng, 60, 5, 2, -3)
	a := dsarray.FromMatrix(rt.Main(), m, 20, 5)
	p := PCA{NComponents: 5}
	proj, err := p.FitTransform(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := proj.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Projected covariance must be (near) diagonal with the eigenvalues.
	mat.SubRowVec(got, mat.ColMeans(got))
	cov := mat.Scale(1/float64(got.Rows-1), mat.MulAtB(got, got))
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				if math.Abs(cov.At(i, i)-p.ExplainedVariance()[i]) > 1e-6*(1+p.ExplainedVariance()[i]) {
					t.Fatalf("projected variance %v != eigenvalue %v", cov.At(i, i), p.ExplainedVariance()[i])
				}
			} else if math.Abs(cov.At(i, j)) > 1e-7 {
				t.Fatalf("projected covariance (%d,%d) = %v, want 0", i, j, cov.At(i, j))
			}
		}
	}
}

func TestPCAErrors(t *testing.T) {
	rt := newRT()
	one := dsarray.FromMatrix(rt.Main(), mat.New(1, 3), 1, 3)
	var p PCA
	if err := p.Fit(one); err == nil {
		t.Fatal("want error for single sample")
	}
	if _, err := (&PCA{}).Transform(one); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
	big := PCA{NComponents: 99}
	a := dsarray.FromMatrix(rt.Main(), mat.New(5, 3), 2, 3)
	if err := big.Fit(a); err == nil {
		t.Fatal("want error for NComponents > features")
	}
	badRetain := PCA{VarianceToRetain: 1.5}
	if err := badRetain.Fit(a); err == nil {
		t.Fatal("want error for retention > 1")
	}
}

func TestPCATransformDimensionMismatch(t *testing.T) {
	rt := newRT()
	a := dsarray.FromMatrix(rt.Main(), randMatrix(rand.New(rand.NewSource(8)), 10, 4, 1, 0), 5, 4)
	b := dsarray.FromMatrix(rt.Main(), mat.New(10, 6), 5, 6)
	p := PCA{NComponents: 2}
	if err := p.Fit(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Transform(b); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestPCAGraphHasSingleEighTask(t *testing.T) {
	rt := newRT()
	m := randMatrix(rand.New(rand.NewSource(9)), 24, 6, 1, 0)
	a := dsarray.FromMatrix(rt.Main(), m, 6, 3)
	p := PCA{NComponents: 2}
	if _, err := p.FitTransform(a); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	counts := rt.Graph().CountByName()
	if counts["pca_eigh"] != 1 {
		t.Fatalf("eigendecomposition must be a single task (got %d)", counts["pca_eigh"])
	}
	if counts["partial_gram"] != 4 { // one per row block
		t.Fatalf("partial_gram = %d, want 4", counts["partial_gram"])
	}
}

func BenchmarkPCAFit64Features(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := randMatrix(rng, 256, 64, 1, 0)
	for i := 0; i < b.N; i++ {
		rt := newRT()
		a := dsarray.FromMatrix(rt.Main(), m, 64, 64)
		p := PCA{VarianceToRetain: 0.95}
		if err := p.Fit(a); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMinMaxScalerRange(t *testing.T) {
	rt := newRT()
	rng := rand.New(rand.NewSource(20))
	m := randMatrix(rng, 40, 6, 5, -7)
	a := dsarray.FromMatrix(rt.Main(), m, 13, 3)
	var s MinMaxScaler
	scaled, err := s.FitTransform(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scaled.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < got.Cols; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < got.Rows; i++ {
			v := got.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if math.Abs(lo) > 1e-12 || math.Abs(hi-1) > 1e-12 {
			t.Fatalf("column %d range [%v, %v], want [0, 1]", j, lo, hi)
		}
	}
}

func TestMinMaxScalerConstantColumn(t *testing.T) {
	rt := newRT()
	m := mat.NewFromRows([][]float64{{3, 1}, {3, 2}, {3, 4}})
	a := dsarray.FromMatrix(rt.Main(), m, 2, 2)
	var s MinMaxScaler
	scaled, err := s.FitTransform(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scaled.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got.At(i, 0) != 0 {
			t.Fatalf("constant column must map to 0, got %v", got.At(i, 0))
		}
	}
}

func TestMinMaxScalerErrors(t *testing.T) {
	rt := newRT()
	a := dsarray.FromMatrix(rt.Main(), mat.New(4, 2), 2, 2)
	var s MinMaxScaler
	if _, err := s.Transform(a); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
	s.Fit(a)
	wide := dsarray.FromMatrix(rt.Main(), mat.New(4, 5), 2, 5)
	if _, err := s.Transform(wide); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestMinMaxScalerTransformNewData(t *testing.T) {
	// Transforming unseen data can leave [0,1]; the mapping itself must be
	// the fitted affine map.
	rt := newRT()
	train := mat.NewFromRows([][]float64{{0}, {10}})
	test := mat.NewFromRows([][]float64{{5}, {20}})
	var s MinMaxScaler
	s.Fit(dsarray.FromMatrix(rt.Main(), train, 2, 1))
	out, err := s.Transform(dsarray.FromMatrix(rt.Main(), test, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.At(0, 0)-0.5) > 1e-12 || math.Abs(got.At(1, 0)-2) > 1e-12 {
		t.Fatalf("mapped values %v, %v; want 0.5, 2", got.At(0, 0), got.At(1, 0))
	}
}

// Losing one minmax_partial under Degrade narrows the fitted ranges to the
// surviving blocks' extremes — the scaler still fits and transforms.
func TestMinMaxScalerDegradedPartial(t *testing.T) {
	rt := compss.New(compss.Config{
		Workers:        4,
		OnTaskFailure:  compss.Degrade,
		DefaultRetries: 1,
		Faults: &compss.FaultPlan{Faults: []compss.Fault{
			{Name: "minmax_partial", Nth: 0, Attempts: -1, Mode: compss.FaultError},
		}},
	})
	// Two row blocks of a 1-column matrix: block 0 holds the global extremes
	// [-100, 100], block 1 only [0, 10]. Degrading block 0's partial leaves
	// the neutral-element fallback, so the fit sees only block 1.
	m := mat.New(4, 1)
	m.Set(0, 0, -100)
	m.Set(1, 0, 100)
	m.Set(2, 0, 0)
	m.Set(3, 0, 10)
	a := dsarray.FromMatrix(rt.Main(), m, 2, 1)
	var s MinMaxScaler
	scaled, err := s.FitTransform(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scaled.Collect()
	if err != nil {
		t.Fatalf("degraded fit must still transform: %v", err)
	}
	// Fitted range is [0, 10]: block 1's rows land on 0 and 1, block 0's
	// extremes map outside [0, 1].
	if v := got.At(2, 0); math.Abs(v) > 1e-12 {
		t.Fatalf("surviving min maps to %v, want 0", v)
	}
	if v := got.At(3, 0); math.Abs(v-1) > 1e-12 {
		t.Fatalf("surviving max maps to %v, want 1", v)
	}
	if v := got.At(0, 0); v >= 0 {
		t.Fatalf("lost block's min maps to %v, want < 0 under narrowed ranges", v)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatalf("Barrier after degraded fit: %v", err)
	}
	if n := len(rt.Graph().DegradedTasks()); n != 1 {
		t.Fatalf("want 1 degraded task, got %d", n)
	}
}
