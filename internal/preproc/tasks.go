package preproc

import (
	"fmt"
	"math"

	"taskml/internal/exec"
	"taskml/internal/mat"
)

// Registered task bodies of the preprocessing estimators (StandardScaler
// and PCA), in argument-pure form: block offsets and sample counts that the
// original closures captured arrive as explicit arguments (see
// internal/exec for the contract).
func init() {
	// scaler_partial(blk, off, d): per-block moment partials, a 3×d matrix
	// [count; sum; sumsq] with the block's columns scattered at offset off.
	exec.Register("scaler_partial", func(args []any) (any, error) {
		blk := args[0].(*mat.Dense)
		off := args[1].(int)
		d := args[2].(int)
		out := mat.New(3, d)
		for r := 0; r < blk.Rows; r++ {
			row := blk.Row(r)
			for c, v := range row {
				out.Set(0, off+c, out.At(0, off+c)+1)
				out.Set(1, off+c, out.At(1, off+c)+v)
				out.Set(2, off+c, out.At(2, off+c)+v*v)
			}
		}
		return out, nil
	})

	// scaler_finalize(m): merged 3×d moments → 2×d [mean; std].
	exec.Register("scaler_finalize", func(args []any) (any, error) {
		m := args[0].(*mat.Dense)
		d := m.Cols
		out := mat.New(2, d)
		for c := 0; c < d; c++ {
			n := m.At(0, c)
			if n == 0 {
				return nil, fmt.Errorf("preproc: scaler fitted on empty column %d", c)
			}
			mean := m.At(1, c) / n
			variance := m.At(2, c)/n - mean*mean
			if variance < 0 {
				variance = 0
			}
			std := math.Sqrt(variance)
			if std == 0 {
				std = 1 // constant feature: scikit-learn convention
			}
			out.Set(0, c, mean)
			out.Set(1, c, std)
		}
		return out, nil
	})

	// scaler_transform(blk, st, off): (blk - mean) / std against the
	// [off, off+cols) window of the 2×d statistics, as a fresh block.
	exec.Register("scaler_transform", func(args []any) (any, error) {
		blk := args[0].(*mat.Dense).Clone()
		st := args[1].(*mat.Dense)
		off := args[2].(int)
		for r := 0; r < blk.Rows; r++ {
			row := blk.Row(r)
			for c := range row {
				row[c] = (row[c] - st.At(0, off+c)) / st.At(1, off+c)
			}
		}
		return blk, nil
	})

	// pca_mean(sums, n): column sums → column means.
	exec.Register("pca_mean", func(args []any) (any, error) {
		return mat.Scale(1/float64(args[1].(int)), args[0].(*mat.Dense)), nil
	})

	// pca_cov(gram, n): centered Gram matrix → covariance (divide by n-1).
	exec.Register("pca_cov", func(args []any) (any, error) {
		return mat.Scale(1/float64(args[1].(int)-1), args[0].(*mat.Dense)), nil
	})

	// pca_eigh(cov) -> (eigenvalues as 1×d, eigenvectors): the single
	// unpartitioned eigendecomposition task (numpy.linalg.eigh in dislib).
	exec.RegisterN("pca_eigh", func(args []any) ([]any, error) {
		vals, vecs, err := mat.EigSym(args[0].(*mat.Dense))
		if err != nil {
			return nil, err
		}
		return []any{mat.NewFromData(1, len(vals), vals), vecs}, nil
	})
}
