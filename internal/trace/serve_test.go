package trace_test

import (
	"testing"

	"taskml/internal/serve"
	"taskml/internal/trace"
)

// TestServeTraceRows checks the structure of the serving process in the
// Chrome export: fabricated serving-plane samples must land on the right
// lanes with the right counters, and a collector with no serving samples
// must not emit the process at all (the golden trace stays untouched).
func TestServeTraceRows(t *testing.T) {
	col := trace.NewCollector()
	for _, s := range []serve.Sample{
		{Kind: "flush", Stream: -1, Batch: 64, Pending: 10, InFlight: 1, Streams: 100},
		{Kind: "alarm", Stream: 7, Pending: 10, InFlight: 1, Streams: 100, LatencyUS: 1500},
		{Kind: "shed", Stream: 3, Pending: 12, InFlight: 1, Streams: 100, Shed: 5},
		{Kind: "reject", Stream: -1, Pending: 12, InFlight: 1, Streams: 100},
		{Kind: "error", Stream: -1, Batch: 8, Pending: 0, InFlight: 0, Streams: 100},
	} {
		col.AddServeSample(s)
	}
	if got := len(col.ServeSamples()); got != 5 {
		t.Fatalf("ServeSamples holds %d samples, want 5", got)
	}
	tr := col.Chrome()

	type key struct {
		name string
		ph   string
	}
	counts := map[key]int{}
	lanes := map[string]string{} // instant name -> lane thread name
	threadNames := map[int]string{}
	var servePid = -1
	for _, ev := range tr.Events {
		if ev.Name == "process_name" {
			if args, ok := ev.Args["name"].(string); ok && args == "serving" {
				servePid = ev.Pid
			}
		}
	}
	if servePid < 0 {
		t.Fatal("no \"serving\" process in the trace")
	}
	for _, ev := range tr.Events {
		if ev.Pid != servePid {
			continue
		}
		if ev.Name == "thread_name" {
			threadNames[ev.Tid] = ev.Args["name"].(string)
		}
	}
	for _, ev := range tr.Events {
		if ev.Pid != servePid || ev.Ph == "M" {
			continue
		}
		counts[key{ev.Name, ev.Ph}]++
		if ev.Ph == "i" {
			lanes[ev.Name] = threadNames[ev.Tid]
		}
	}
	wantLanes := map[string]string{
		"flush":  "batcher",
		"alarm":  "alarms",
		"shed":   "backpressure",
		"reject": "backpressure",
		"error":  "backpressure",
	}
	for name, lane := range wantLanes {
		if counts[key{name, "i"}] != 1 {
			t.Fatalf("instant %q emitted %d times, want 1", name, counts[key{name, "i"}])
		}
		if lanes[name] != lane {
			t.Fatalf("instant %q on lane %q, want %q", name, lanes[name], lane)
		}
	}
	// Every sample re-emits the queue and stream counters; the shed counter
	// fires only on shed samples.
	if got := counts[key{"serve queue", "C"}]; got != 5 {
		t.Fatalf("serve queue counter emitted %d times, want 5", got)
	}
	if got := counts[key{"serve streams", "C"}]; got != 5 {
		t.Fatalf("serve streams counter emitted %d times, want 5", got)
	}
	if got := counts[key{"shed windows", "C"}]; got != 1 {
		t.Fatalf("shed windows counter emitted %d times, want 1", got)
	}

	// No serving samples → no serving process.
	empty := trace.NewCollector()
	for _, ev := range empty.Chrome().Events {
		if name, ok := ev.Args["name"].(string); ok && name == "serving" {
			t.Fatal("empty collector emitted a serving process")
		}
	}
}
