package trace

import (
	"sync/atomic"

	"taskml/internal/compss"
)

// Gauge is a minimal Observer tracking the runtime's live ready-queue depth
// — the counter the Chrome export renders as the "ready" track, exposed
// here as a live value instead of a post-hoc rendering so it can drive
// decisions mid-run. Its intended consumer is the exec autoscaler: pass
// Ready as exec.AutoscaleConfig.Depth (or exec.Config.Depth) and the fleet
// grows when the runnable backlog outruns slot capacity.
//
// A task counts as ready from the moment its dependencies resolve (or a
// retry re-queues it) until its body starts. Gauge is safe for concurrent
// use and can observe several runtimes at once (the depths sum — which is
// what a shared backend's autoscaler wants).
type Gauge struct {
	compss.NopObserver
	ready atomic.Int64
}

// NewGauge returns an empty gauge; attach it via compss.Config.Observers.
func NewGauge() *Gauge { return &Gauge{} }

var _ compss.Observer = (*Gauge)(nil)

func (g *Gauge) OnDepsReady(compss.Event) { g.ready.Add(1) }
func (g *Gauge) OnRetry(compss.Event)     { g.ready.Add(1) }
func (g *Gauge) OnStart(compss.Event)     { g.ready.Add(-1) }

// Ready returns the current ready-queue depth.
func (g *Gauge) Ready() int { return int(g.ready.Load()) }
