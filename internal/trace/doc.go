// Package trace turns the runtime's Observer event stream (internal/compss)
// into Chrome trace-event JSON, the format chrome://tracing and Perfetto
// (https://ui.perfetto.dev) open directly — the same built-in-profiler idea
// Taskflow ships for its task graphs.
//
// Two producers emit the format:
//
//   - Collector + Chrome (this package) render a *real* execution: per-lane
//     B/E duration slices for every attempt, instant markers for retries,
//     failures and degradations, and counter tracks for worker-pool
//     occupancy and the ready queue;
//   - Schedule.ChromeTrace (internal/cluster) renders a *replayed* virtual
//     schedule into the same format, so a run and its replay open
//     side-by-side in Perfetto.
//
// # Public surface
//
// Collector is a compss.Observer that buffers events; its Chrome method
// (and the free Chrome function over a plain event slice) builds a Trace,
// which Add/WriteJSON/WriteFile assemble and emit. PackLanes is the greedy
// interval-packing helper both producers share. In-process attempts pack
// into "worker N" lanes; attempts executed by a remote backend
// (internal/exec) are pinned to per-worker-id lanes instead, so a
// distributed run shows one swimlane per worker process.
//
// # Concurrency and ownership
//
// Collector's observer callbacks are called from runtime goroutines and
// append under a lock; call Events or Chrome only after the observed
// runtime has quiesced. A built Trace is a plain value owned by the caller.
package trace
