package trace

import (
	"encoding/json"
	"io"
	"os"
)

// TraceEvent is one entry of the Chrome trace-event format. Only the fields
// this package emits are modelled; see the Trace Event Format spec for the
// full catalogue of phases.
type TraceEvent struct {
	// Name labels the slice/instant/counter.
	Name string `json:"name,omitempty"`
	// Cat is the event category (filterable in the viewer).
	Cat string `json:"cat,omitempty"`
	// Ph is the phase: "B"/"E" duration begin/end, "i" instant, "C"
	// counter, "M" metadata.
	Ph string `json:"ph"`
	// Ts is the event timestamp in microseconds from the trace origin.
	Ts float64 `json:"ts"`
	// Pid/Tid place the event on a process/thread row.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// Scope is the instant-event scope ("t" = thread). Instants only.
	Scope string `json:"s,omitempty"`
	// Args carries free-form metadata shown when the event is selected.
	Args map[string]any `json:"args,omitempty"`
}

// Trace is an ordered set of trace events plus the envelope fields the
// viewers expect.
type Trace struct {
	Events []TraceEvent
}

// Add appends events.
func (t *Trace) Add(evs ...TraceEvent) { t.Events = append(t.Events, evs...) }

// envelope is the JSON object format of a Chrome trace ("JSON Object
// Format" in the spec): viewers accept a bare array too, but the object
// form carries the display unit and tolerates trailing metadata.
type envelope struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the trace in Chrome trace-event JSON object format.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(envelope{TraceEvents: t.Events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace to path (the cmd tools' -trace flag target).
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// processName/threadName emit the metadata events that label rows in the
// viewer.
func processName(pid int, name string) TraceEvent {
	return TraceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}}
}

func threadName(pid, tid int, name string) TraceEvent {
	return TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}}
}

// PackLanes assigns each half-open interval [start, end) to the
// lowest-indexed lane in which it does not overlap its predecessor
// (greedy first-fit), returning the lane per interval and the lane count.
// Intervals must be sorted by start; a lane whose last interval ends
// exactly at the next start is reusable. Both exporters use it to turn
// unpinned attempt intervals into per-worker (or per-node-lane) rows.
func PackLanes(starts, ends []float64) (lane []int, n int) {
	lane = make([]int, len(starts))
	var laneEnd []float64
	for i := range starts {
		placed := false
		for l := range laneEnd {
			if laneEnd[l] <= starts[i] {
				laneEnd[l] = ends[i]
				lane[i] = l
				placed = true
				break
			}
		}
		if !placed {
			lane[i] = len(laneEnd)
			laneEnd = append(laneEnd, ends[i])
		}
	}
	return lane, len(laneEnd)
}
