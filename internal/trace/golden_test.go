package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"taskml/internal/compss"
	"taskml/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace file")

// chainTrace runs the reference workflow the golden file captures: a
// three-task chain on one worker, where the middle task loses its first
// attempt to an injected fault and recovers, and the last task loses every
// attempt and degrades to its declared fallback. One worker plus strict
// chaining makes the event stream — and therefore the exported trace
// shape — fully deterministic; the ~1 ms bodies keep successive events on
// distinct clock readings.
func chainTrace(t *testing.T) *trace.Trace {
	t.Helper()
	col := trace.NewCollector()
	rt := compss.New(compss.Config{
		Workers:       1,
		OnTaskFailure: compss.Degrade,
		Observers:     []compss.Observer{col},
		Faults: &compss.FaultPlan{Faults: []compss.Fault{
			{Name: "flaky", Nth: -1, Attempts: 1, Mode: compss.FaultError},
			{Name: "doomed", Nth: -1, Attempts: -1, Mode: compss.FaultError},
		}},
	})
	body := func(_ *compss.TaskCtx, _ []any) (any, error) {
		time.Sleep(time.Millisecond)
		return 1, nil
	}
	a := rt.Submit(compss.Opts{Name: "steady"}, body)
	b := rt.Submit(compss.Opts{Name: "flaky", Retries: 1}, body, a)
	c := rt.Submit(compss.Opts{Name: "doomed", Retries: 1, Fallback: 0}, body, b)
	if _, err := rt.Get(c); err != nil {
		t.Fatalf("degraded chain must still publish: %v", err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	return col.Chrome()
}

// normalize strips the wall-clock content from an encoded trace: ts values
// depend on real scheduling, so the golden comparison covers event count,
// order, phases, rows, names and args — the shape — only.
func normalize(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	for _, ev := range doc.TraceEvents {
		delete(ev, "ts")
		if args, ok := ev["args"].(map[string]any); ok {
			delete(args, "err") // error strings carry task IDs already asserted elsewhere
		}
	}
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := chainTrace(t).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := normalize(t, buf.Bytes())

	golden := filepath.Join("testdata", "chain_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test ./internal/trace -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace shape diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestChromeTraceWellFormed asserts the structural invariants Perfetto
// needs, independent of the golden file: every B has a matching E on its
// row in order, instants carry the thread scope, and counters never go
// negative.
func TestChromeTraceWellFormed(t *testing.T) {
	tr := chainTrace(t)
	depth := map[int]int{}
	kinds := map[string]int{}
	for _, ev := range tr.Events {
		kinds[ev.Ph]++
		switch ev.Ph {
		case "B":
			depth[ev.Tid]++
		case "E":
			depth[ev.Tid]--
			if depth[ev.Tid] < 0 {
				t.Fatalf("E without B on row %d", ev.Tid)
			}
		case "i":
			if ev.Scope != "t" {
				t.Errorf("instant %q missing thread scope", ev.Name)
			}
		case "C":
			if n, ok := ev.Args["n"].(int); !ok || n < 0 {
				t.Errorf("counter %q has invalid value %v", ev.Name, ev.Args["n"])
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("row %d has %d unclosed slices", tid, d)
		}
	}
	// steady ok + flaky!0 + flaky ok + doomed!0 + doomed!1 = 5 attempts.
	if kinds["B"] != 5 || kinds["E"] != 5 {
		t.Errorf("attempt slices = %d/%d, want 5/5", kinds["B"], kinds["E"])
	}
	// failures: flaky!0, doomed!0, doomed!1; retries: flaky#1, doomed#1;
	// degrade: doomed.
	if kinds["i"] != 6 {
		t.Errorf("instants = %d, want 6", kinds["i"])
	}
	if kinds["C"] == 0 {
		t.Error("no counter samples emitted")
	}
}
