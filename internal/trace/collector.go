package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"taskml/internal/compss"
	"taskml/internal/exec"
	"taskml/internal/serve"
)

// Collector is the lock-cheap in-memory Observer sink: every hook appends
// the event to a mutex-guarded buffer and returns. All rendering cost is
// deferred to Chrome(), which runs after the workflow finished.
//
// Beyond the Observer hooks it accepts exec data-plane samples (cache
// hit/miss outcomes and occupancy per worker response) via AddCacheSample —
// wire it with exec.Remote.SetCacheHook(collector.AddCacheSample) — and
// renders them as extra trace rows alongside the task slices.
type Collector struct {
	mu      sync.Mutex
	events  []compss.Event
	samples []CacheSample
	fleet   []FleetSample
	serving []ServeSample
}

// CacheSample is one exec data-plane observation plus its arrival time (the
// Collector stamps Time on delivery, putting cache activity on the same
// clock as the Observer events).
type CacheSample struct {
	Time time.Time
	exec.CacheSample
}

// FleetSample is one fleet membership/scaling transition plus its arrival
// time — joins, drains, deaths and autoscaler decisions on the same clock
// as the task slices. Wire it with
// exec.Remote.SetFleetHook(collector.AddFleetEvent).
type FleetSample struct {
	Time time.Time
	exec.FleetEvent
}

// ServeSample is one serving-plane observation plus its arrival time —
// batch flushes, alarms, shed windows, admission rejections and scoring
// errors on the same clock as the task slices. Wire it with
// serve.Config.Hook = collector.AddServeSample.
type ServeSample struct {
	Time time.Time
	serve.Sample
}

// NewCollector returns an empty collector; attach it via
// compss.Config.Observers.
func NewCollector() *Collector { return &Collector{} }

var _ compss.Observer = (*Collector)(nil)

func (c *Collector) add(ev compss.Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

func (c *Collector) OnSubmit(ev compss.Event)    { c.add(ev) }
func (c *Collector) OnDepsReady(ev compss.Event) { c.add(ev) }
func (c *Collector) OnStart(ev compss.Event)     { c.add(ev) }
func (c *Collector) OnEnd(ev compss.Event)       { c.add(ev) }
func (c *Collector) OnRetry(ev compss.Event)     { c.add(ev) }
func (c *Collector) OnFailure(ev compss.Event)   { c.add(ev) }
func (c *Collector) OnDegrade(ev compss.Event)   { c.add(ev) }

// AddCacheSample records one exec data-plane observation, stamped with the
// arrival time. It is shaped to be installed directly as an
// exec.Remote cache hook and is safe for concurrent use.
func (c *Collector) AddCacheSample(s exec.CacheSample) {
	ts := CacheSample{Time: time.Now(), CacheSample: s}
	c.mu.Lock()
	c.samples = append(c.samples, ts)
	c.mu.Unlock()
}

// AddFleetEvent records one fleet transition, stamped with the arrival
// time. It is shaped to be installed directly as an exec.Remote fleet hook
// and is safe for concurrent use.
func (c *Collector) AddFleetEvent(ev exec.FleetEvent) {
	fs := FleetSample{Time: time.Now(), FleetEvent: ev}
	c.mu.Lock()
	c.fleet = append(c.fleet, fs)
	c.mu.Unlock()
}

// AddServeSample records one serving-plane observation, stamped with the
// arrival time. It is shaped to be installed directly as a serve.Config
// hook and is safe for concurrent use.
func (c *Collector) AddServeSample(s serve.Sample) {
	ss := ServeSample{Time: time.Now(), Sample: s}
	c.mu.Lock()
	c.serving = append(c.serving, ss)
	c.mu.Unlock()
}

// Events returns a snapshot of the collected events in arrival order.
func (c *Collector) Events() []compss.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]compss.Event, len(c.events))
	copy(out, c.events)
	return out
}

// CacheSamples returns a snapshot of the collected data-plane samples in
// arrival order.
func (c *Collector) CacheSamples() []CacheSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CacheSample, len(c.samples))
	copy(out, c.samples)
	return out
}

// FleetSamples returns a snapshot of the collected fleet transitions in
// arrival order.
func (c *Collector) FleetSamples() []FleetSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]FleetSample, len(c.fleet))
	copy(out, c.fleet)
	return out
}

// ServeSamples returns a snapshot of the collected serving-plane samples
// in arrival order.
func (c *Collector) ServeSamples() []ServeSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ServeSample, len(c.serving))
	copy(out, c.serving)
	return out
}

// Chrome renders the collected events (and any data-plane, fleet or
// serving samples); shorthand for ChromeAll over the four snapshots.
func (c *Collector) Chrome() *Trace {
	return ChromeAll(c.Events(), c.CacheSamples(), c.FleetSamples(), c.ServeSamples())
}

// attemptKey identifies one executed attempt of one task.
type attemptKey struct {
	task, attempt int
}

// attemptSlice is a closed Start→End/Failure interval of one attempt.
type attemptSlice struct {
	attemptKey
	name       string
	start, end float64 // µs from trace origin
	outcome    string  // "ok", or the failure mode
	errText    string
	worker     string // exec-backend worker id; "" for in-process attempts
}

// sortable wraps a TraceEvent with the tiebreak keys that make the emitted
// order fully deterministic even when timestamps collide (the golden test
// strips ts, so shape must not depend on clock resolution).
type sortable struct {
	ev            TraceEvent
	ord           int // phase priority: E < i < C < B at equal ts
	task, attempt int
}

// Chrome converts a runtime event stream into a Chrome trace. The runtime
// does not pin in-process tasks to worker identities (a body that blocks on
// a nested Get releases its slot and re-acquires a possibly different one),
// so the exporter reconstructs worker rows by greedily packing the attempt
// intervals into lanes: lane count equals the peak concurrency actually
// observed, which is bounded by Config.Workers.
//
// Attempts an execution backend ran remotely (Event.Worker non-empty on the
// closing End/Failure event) *are* pinned — the backend reports which worker
// process executed them — so they bypass greedy packing and land on lanes
// named after the worker id ("w0", "w1", ...), one extra lane per worker
// only when a multi-slot worker overlaps attempts ("w0 slot 1").
//
// Emitted tracks, all under one process ("taskml runtime"):
//
//   - "worker N" rows: one B/E slice per executed in-process attempt,
//     failed attempts labelled "name!k" (matching the virtual-cluster Gantt
//     convention), with instant markers for failures, retries and
//     degradations on the lane of the attempt they refer to;
//   - "wN" rows: the same, for attempts executed by remote worker wN;
//   - a "failed deps" row holding instant markers for tasks whose body
//     never ran because a dependency failed;
//   - counter tracks "ready" (tasks runnable but not yet started) and
//     "workers" (attempts executing), sampled at every transition.
func Chrome(events []compss.Event) *Trace { return ChromeCache(events, nil) }

// ChromeCache renders a runtime event stream plus exec data-plane samples.
// With no samples it is exactly Chrome (the golden trace is unchanged);
// with samples it adds a second trace process ("exec data plane") holding
// one instant row per remote worker (cache hit / miss markers) and a
// "resident bytes" counter track with one series per worker — the
// re-shipping a reduction tree avoids (or pays) is visible directly in the
// viewer.
func ChromeCache(events []compss.Event, samples []CacheSample) *Trace {
	return ChromeAll(events, samples, nil, nil)
}

// ChromeAll renders a runtime event stream plus exec data-plane samples
// plus fleet membership transitions plus serving-plane samples. The fleet
// rows are additive in the same "exec data plane" process as the cache
// rows: one instant lane ("fleet") marking joins, drains, deaths and
// autoscaler decisions, and a "fleet size" counter tracking alive workers
// and slots — the elasticity of a run is visible next to the queue-depth
// counters that drove it. Serving samples add a third process ("serving",
// see renderServeRows) with batcher, alarm and backpressure lanes.
func ChromeAll(events []compss.Event, samples []CacheSample, fleet []FleetSample, serving []ServeSample) *Trace {
	t := &Trace{}
	if len(events) == 0 && len(samples) == 0 && len(fleet) == 0 && len(serving) == 0 {
		return t
	}
	var origin time.Time
	haveOrigin := false
	for _, ev := range events {
		if !haveOrigin || ev.Time.Before(origin) {
			origin, haveOrigin = ev.Time, true
		}
	}
	for _, s := range samples {
		if !haveOrigin || s.Time.Before(origin) {
			origin, haveOrigin = s.Time, true
		}
	}
	for _, f := range fleet {
		if !haveOrigin || f.Time.Before(origin) {
			origin, haveOrigin = f.Time, true
		}
	}
	for _, s := range serving {
		if !haveOrigin || s.Time.Before(origin) {
			origin, haveOrigin = s.Time, true
		}
	}
	renderEvents(t, origin, events)
	if len(samples) > 0 || len(fleet) > 0 {
		t.Add(processName(cachePid, "exec data plane"))
		nLanes := renderCacheRows(t, origin, samples)
		renderFleetRows(t, origin, fleet, nLanes)
	}
	renderServeRows(t, origin, serving)
	return t
}

// renderEvents is the task-slice half of the export (see Chrome's doc
// comment for the emitted tracks).
func renderEvents(t *Trace, origin time.Time, events []compss.Event) {
	if len(events) == 0 {
		return
	}
	// Sub-microsecond resolution matters: trace ts is in µs, but injected
	// (body-less) attempts can close within the clock's resolution. Every
	// rendered event takes its ts from tsOf, which enforces per-task
	// monotonicity — with a strict 1 ns step for the events that close an
	// attempt slice — so a slice's E, its failure/degrade instants and the
	// derived counter samples can never sort before its B no matter how
	// coarse the clock: the exported shape is deterministic, which the
	// golden test relies on.
	us := func(ev compss.Event) float64 {
		return float64(ev.Time.Sub(origin).Nanoseconds()) / 1e3
	}
	tsOf := make([]float64, len(events))
	lastTs := map[int]float64{}
	for i, ev := range events {
		ts := us(ev)
		if prev, ok := lastTs[ev.Task]; ok {
			floor := prev
			if ev.Kind == compss.EventEnd || (ev.Kind == compss.EventFailure && ev.Attempt >= 0) {
				floor = prev + 1e-3 // strictly after the attempt's Start
			}
			if ts < floor {
				ts = floor
			}
		}
		lastTs[ev.Task] = ts
		tsOf[i] = ts
	}

	// Pair Start with the End/Failure that closes it, per (task, attempt).
	open := map[attemptKey]attemptSlice{}
	var slices []attemptSlice
	for i, ev := range events {
		k := attemptKey{ev.Task, ev.Attempt}
		switch ev.Kind {
		case compss.EventStart:
			open[k] = attemptSlice{attemptKey: k, name: ev.Name, start: tsOf[i]}
		case compss.EventEnd, compss.EventFailure:
			s, ok := open[k]
			if !ok {
				continue // dep failure (attempt -1) or unmatched close
			}
			delete(open, k)
			s.end = tsOf[i]
			s.worker = ev.Worker
			if ev.Kind == compss.EventEnd {
				s.outcome = "ok"
			} else {
				s.outcome = ev.Mode
				if ev.Err != nil {
					s.errText = ev.Err.Error()
				}
			}
			slices = append(slices, s)
		}
	}
	// Attempts still open (runtime torn down mid-flight) are dropped: a
	// dangling B without its E renders as an infinite slice.

	sort.Slice(slices, func(i, j int) bool {
		a, b := slices[i], slices[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.task != b.task {
			return a.task < b.task
		}
		return a.attempt < b.attempt
	})
	// Lane assignment. In-process attempts (no worker id) are greedily
	// packed, as before; remote attempts are grouped per worker id, each
	// group packed on its own so a multi-slot worker's overlapping attempts
	// still nest correctly ("w0", "w0 slot 1", ...).
	var localIdx []int
	remoteIdx := map[string][]int{}
	var workerIDs []string
	for i, s := range slices {
		if s.worker == "" {
			localIdx = append(localIdx, i)
			continue
		}
		if _, ok := remoteIdx[s.worker]; !ok {
			workerIDs = append(workerIDs, s.worker)
		}
		remoteIdx[s.worker] = append(remoteIdx[s.worker], i)
	}
	sort.Strings(workerIDs)

	const pid = 0
	t.Add(processName(pid, "taskml runtime"))
	laneOf := map[attemptKey]int{}
	packInto := func(idx []int, base int) int {
		starts := make([]float64, len(idx))
		ends := make([]float64, len(idx))
		for j, i := range idx {
			starts[j], ends[j] = slices[i].start, slices[i].end
		}
		lanes, n := PackLanes(starts, ends)
		for j, i := range idx {
			laneOf[slices[i].attemptKey] = base + lanes[j]
		}
		return n
	}
	nLocal := packInto(localIdx, 0)
	for l := 0; l < nLocal; l++ {
		t.Add(threadName(pid, l, fmt.Sprintf("worker %d", l)))
	}
	next := nLocal
	for _, wid := range workerIDs {
		n := packInto(remoteIdx[wid], next)
		for l := 0; l < n; l++ {
			name := wid
			if l > 0 {
				name = fmt.Sprintf("%s slot %d", wid, l)
			}
			t.Add(threadName(pid, next+l, name))
		}
		next += n
	}
	depLane := next // row for tasks that never ran
	hasDepLane := false

	var out []sortable
	for _, s := range slices {
		name := s.name
		if s.outcome != "ok" {
			name = fmt.Sprintf("%s!%d", s.name, s.attempt)
		}
		args := map[string]any{"task": s.task, "attempt": s.attempt, "outcome": s.outcome}
		if s.worker != "" {
			args["worker"] = s.worker
		}
		tid := laneOf[s.attemptKey]
		out = append(out,
			sortable{ord: 3, task: s.task, attempt: s.attempt, ev: TraceEvent{
				Name: name, Cat: "task", Ph: "B", Ts: s.start, Pid: pid, Tid: tid, Args: args,
			}},
			sortable{ord: 0, task: s.task, attempt: s.attempt, ev: TraceEvent{
				Name: name, Cat: "task", Ph: "E", Ts: s.end, Pid: pid, Tid: tid,
			}},
		)
	}

	// Instant markers and counter samples from the raw stream, stamped with
	// the same monotonic-clamped timestamps as the slices they refer to.
	ready, busy := 0, 0
	counter := func(ts float64, task int, name string, v int) sortable {
		return sortable{ord: 2, task: task, ev: TraceEvent{
			Name: name, Cat: "runtime", Ph: "C", Ts: ts, Pid: pid,
			Args: map[string]any{"n": v},
		}}
	}
	instant := func(ts float64, ev compss.Event, name string, tid int) sortable {
		args := map[string]any{"task": ev.Task, "name": ev.Name, "attempt": ev.Attempt}
		if ev.Mode != "" {
			args["mode"] = ev.Mode
		}
		if ev.Err != nil {
			args["err"] = ev.Err.Error()
		}
		return sortable{ord: 1, task: ev.Task, attempt: ev.Attempt, ev: TraceEvent{
			Name: name, Cat: "fault", Ph: "i", Ts: ts, Pid: pid, Tid: tid, Scope: "t", Args: args,
		}}
	}
	for i, ev := range events {
		ts := tsOf[i]
		switch ev.Kind {
		case compss.EventDepsReady:
			ready++
			out = append(out, counter(ts, ev.Task, "ready", ready))
		case compss.EventRetry:
			ready++
			out = append(out, counter(ts, ev.Task, "ready", ready))
			out = append(out, instant(ts, ev, "retry", laneOf[attemptKey{ev.Task, ev.Attempt - 1}]))
		case compss.EventStart:
			ready--
			busy++
			out = append(out, counter(ts, ev.Task, "ready", ready), counter(ts, ev.Task, "workers", busy))
		case compss.EventEnd:
			busy--
			out = append(out, counter(ts, ev.Task, "workers", busy))
		case compss.EventFailure:
			if ev.Attempt < 0 {
				hasDepLane = true
				out = append(out, instant(ts, ev, "failure", depLane))
				continue
			}
			busy--
			out = append(out, counter(ts, ev.Task, "workers", busy))
			out = append(out, instant(ts, ev, "failure", laneOf[attemptKey{ev.Task, ev.Attempt}]))
		case compss.EventDegrade:
			out = append(out, instant(ts, ev, "degrade", laneOf[attemptKey{ev.Task, ev.Attempt}]))
		}
	}
	if hasDepLane {
		t.Add(threadName(pid, depLane, "failed deps"))
	}

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ev.Ts != b.ev.Ts {
			return a.ev.Ts < b.ev.Ts
		}
		if a.ev.Tid != b.ev.Tid {
			return a.ev.Tid < b.ev.Tid
		}
		if a.ord != b.ord {
			return a.ord < b.ord
		}
		if a.task != b.task {
			return a.task < b.task
		}
		if a.attempt != b.attempt {
			return a.attempt < b.attempt
		}
		return a.ev.Name < b.ev.Name
	})
	for _, s := range out {
		t.Add(s.ev)
	}
}

// cachePid is the trace process holding the exec rows: per-worker cache
// lanes, the fleet lane, and their counters.
const cachePid = 1

// renderCacheRows emits the per-worker cache hit/miss and peer-fetch
// instant rows and the multi-series "resident bytes" counter, all on the
// same clock as the task slices; it returns the number of lanes it used
// (the fleet lane starts after them).
func renderCacheRows(t *Trace, origin time.Time, samples []CacheSample) int {
	if len(samples) == 0 {
		return 0
	}
	laneOf := map[string]int{}
	var workerIDs []string
	for _, s := range samples {
		if _, ok := laneOf[s.Worker]; !ok {
			laneOf[s.Worker] = 0
			workerIDs = append(workerIDs, s.Worker)
		}
	}
	sort.Strings(workerIDs)
	for i, wid := range workerIDs {
		laneOf[wid] = i
		t.Add(threadName(cachePid, i, wid+" cache"))
	}
	// One counter series per worker; each sample re-emits the full snapshot
	// so the stacked track always shows total resident bytes.
	occupancy := map[string]int64{}
	for _, s := range samples {
		ts := float64(s.Time.Sub(origin).Nanoseconds()) / 1e3
		if ts < 0 {
			ts = 0
		}
		lane := laneOf[s.Worker]
		if s.Hits > 0 || s.Misses > 0 {
			name := "cache hit"
			if s.Misses > 0 {
				name = "cache miss"
			}
			t.Add(TraceEvent{
				Name: name, Cat: "cache", Ph: "i", Ts: ts,
				Pid: cachePid, Tid: lane, Scope: "t",
				Args: map[string]any{"task": s.Task, "hits": s.Hits, "misses": s.Misses},
			})
		}
		if s.PeerFetches > 0 {
			t.Add(TraceEvent{
				Name: "peer fetch", Cat: "cache", Ph: "i", Ts: ts,
				Pid: cachePid, Tid: lane, Scope: "t",
				Args: map[string]any{"task": s.Task, "fetches": s.PeerFetches},
			})
		}
		occupancy[s.Worker] = s.CacheBytes
		args := make(map[string]any, len(occupancy))
		for w, b := range occupancy {
			args[w] = b
		}
		t.Add(TraceEvent{
			Name: "resident bytes", Cat: "cache", Ph: "C", Ts: ts,
			Pid: cachePid, Args: args,
		})
	}
	return len(workerIDs)
}

// servePid is the trace process holding the serving-plane rows.
const servePid = 2

// renderServeRows emits the "serving" process: a "batcher" lane with one
// instant per flush, an "alarms" lane, and a "backpressure" lane carrying
// shed / reject / error markers — plus counter tracks "serve queue"
// (pending windows and in-flight batches), "serve streams" (open streams)
// and "shed windows" (cumulative). Latency histograms are the server's
// (serve.Metrics); the trace carries the per-event view.
func renderServeRows(t *Trace, origin time.Time, serving []ServeSample) {
	if len(serving) == 0 {
		return
	}
	t.Add(processName(servePid, "serving"))
	const (
		laneBatcher = 0
		laneAlarms  = 1
		laneBack    = 2
	)
	t.Add(threadName(servePid, laneBatcher, "batcher"))
	t.Add(threadName(servePid, laneAlarms, "alarms"))
	t.Add(threadName(servePid, laneBack, "backpressure"))
	for _, s := range serving {
		ts := float64(s.Time.Sub(origin).Nanoseconds()) / 1e3
		if ts < 0 {
			ts = 0
		}
		lane := laneBack
		args := map[string]any{}
		switch s.Kind {
		case "flush":
			lane = laneBatcher
			args["batch"] = s.Batch
		case "alarm":
			lane = laneAlarms
			args["stream"] = s.Stream
			args["latency_us"] = s.LatencyUS
		case "shed":
			args["stream"] = s.Stream
			args["shed_total"] = s.Shed
		case "error":
			args["batch"] = s.Batch
		}
		t.Add(TraceEvent{
			Name: s.Kind, Cat: "serve", Ph: "i", Ts: ts,
			Pid: servePid, Tid: lane, Scope: "t", Args: args,
		})
		t.Add(TraceEvent{
			Name: "serve queue", Cat: "serve", Ph: "C", Ts: ts, Pid: servePid,
			Args: map[string]any{"pending": s.Pending, "inflight": s.InFlight},
		})
		t.Add(TraceEvent{
			Name: "serve streams", Cat: "serve", Ph: "C", Ts: ts, Pid: servePid,
			Args: map[string]any{"streams": s.Streams},
		})
		if s.Kind == "shed" {
			t.Add(TraceEvent{
				Name: "shed windows", Cat: "serve", Ph: "C", Ts: ts, Pid: servePid,
				Args: map[string]any{"shed": s.Shed},
			})
		}
	}
}

// renderFleetRows emits the fleet membership lane: one instant per
// transition (named by its kind — "join", "drained", "scale-up", ...) and a
// "fleet size" counter carrying the alive worker and slot totals after each
// transition.
func renderFleetRows(t *Trace, origin time.Time, fleet []FleetSample, lane int) {
	if len(fleet) == 0 {
		return
	}
	t.Add(threadName(cachePid, lane, "fleet"))
	for _, f := range fleet {
		ts := float64(f.Time.Sub(origin).Nanoseconds()) / 1e3
		if ts < 0 {
			ts = 0
		}
		args := map[string]any{"workers": f.Workers, "slots": f.Slots}
		if f.Worker != "" {
			args["worker"] = f.Worker
		}
		if f.Reason != "" {
			args["reason"] = f.Reason
		}
		t.Add(TraceEvent{
			Name: f.Kind, Cat: "fleet", Ph: "i", Ts: ts,
			Pid: cachePid, Tid: lane, Scope: "t", Args: args,
		})
		t.Add(TraceEvent{
			Name: "fleet size", Cat: "fleet", Ph: "C", Ts: ts, Pid: cachePid,
			Args: map[string]any{"workers": f.Workers, "slots": f.Slots},
		})
	}
}
