// The Observer API: a structured event stream over task lifecycles.
//
// Every submitted task emits a fixed, per-task-causally-ordered sequence of
// events as it moves through the runtime. Sinks implement Observer and are
// attached via Config.Observers; the built-in StatsObserver (stats.go) and
// the Chrome-trace Collector (internal/trace) are both plain Observers, so
// profiling and tracing share one instrumentation point.
//
// # Event sequences
//
// A task that completes normally emits
//
//	Submit < DepsReady < Start(0) < End(0)
//
// and a task that fails and retries interleaves failures:
//
//	Submit < DepsReady < Start(0) < Failure(0) < Retry(1) < Start(1) < ...
//
// terminated by exactly one of End(k) (success), Failure(k, Final=true)
// (attempts exhausted), or Failure(k) < Degrade(k) (the declared fallback
// was published). A task whose dependency failed — so its body never ran —
// emits Submit < Failure(Attempt: -1, Mode: "deps", Final: true) only.
//
// # Ordering and concurrency
//
// Events of one task are causally ordered: each hook returns before the next
// one for the same task fires, and the sequences above are guaranteed.
// Events of *different* tasks arrive concurrently from the worker goroutines
// executing them, so observers must be safe for concurrent use. Hooks run
// inline on the runtime's hot path: a slow observer slows the workflow down
// (keep hooks O(1); buffer and post-process, as internal/trace does).
//
// # Overhead contract
//
// A runtime with no observers pays one atomic load per would-be event and
// never constructs an Event value — the zero-observer submit path is
// benchmarked against the pre-Observer runtime (BenchmarkSubmitNoObserver
// vs BenchmarkSubmitTraced at the repository root) and must not regress.
package compss

import "time"

// EventKind discriminates lifecycle events.
type EventKind int

const (
	// EventSubmit fires when the task is registered (graph node allocated),
	// before its dependency resolution starts. Attempt is -1.
	EventSubmit EventKind = iota
	// EventDepsReady fires when every dependency resolved successfully and
	// the task is about to queue for a worker slot. Attempt is -1.
	EventDepsReady
	// EventStart fires when an attempt's body begins executing (its worker
	// slot is acquired).
	EventStart
	// EventEnd fires once, when the final attempt's body returned
	// successfully; its Time is the instant the body returned (the worker
	// slot was released), so End.Time − Start.Time is body execution.
	EventEnd
	// EventRetry fires when a failed attempt re-queues; Attempt is the
	// *upcoming* attempt index (the one a later Start will carry).
	EventRetry
	// EventFailure fires when an attempt fails (Mode "error", "panic" or
	// "timeout"), or — with Attempt -1 and Mode "deps" — when a dependency
	// failure prevents the task from ever running. Final marks the task's
	// terminal failure: no retry follows and no fallback stands in.
	EventFailure
	// EventDegrade fires after the terminal failure of a task that declared
	// Opts.Fallback under the Degrade policy: the fallback was published and
	// the task completed degraded.
	EventDegrade
)

// String returns the event kind's wire name (used by trace exporters).
func (k EventKind) String() string {
	switch k {
	case EventSubmit:
		return "submit"
	case EventDepsReady:
		return "deps_ready"
	case EventStart:
		return "start"
	case EventEnd:
		return "end"
	case EventRetry:
		return "retry"
	case EventFailure:
		return "failure"
	case EventDegrade:
		return "degrade"
	default:
		return "unknown"
	}
}

// Event is one immutable lifecycle record. Values are passed by copy and
// never mutated after emission; observers may retain them.
type Event struct {
	// Kind is the lifecycle transition.
	Kind EventKind
	// Task is the graph ID of the task.
	Task int
	// Name is the task's kind label (Opts.Name).
	Name string
	// Attempt is the 0-based attempt index the event belongs to, -1 for
	// events that precede any attempt (Submit, DepsReady, dep failures).
	// For Retry it is the upcoming attempt's index.
	Attempt int
	// Time is the emission instant. It carries Go's monotonic clock
	// reading, so durations between events of one run are exact even if
	// the wall clock steps.
	Time time.Time
	// Err is the attempt's failure (Failure events only).
	Err error
	// Mode is the failure mode: "error", "panic", "timeout", or "deps" for
	// a dependency failure (Failure events only).
	Mode string
	// Final marks a Failure event as the task's terminal outcome: the retry
	// budget is spent and no fallback stands in.
	Final bool
	// Worker identifies the execution-backend worker that ran the attempt
	// (End and Failure events of Opts.Exec tasks dispatched through a
	// remote Backend); "" for in-process execution. Trace exporters use it
	// to put remote attempts on per-worker lanes.
	Worker string
	// Stolen marks Start events of tasks the work-stealing dispatcher
	// migrated off the deque they were enqueued on: another worker ran out
	// of local work and took this task from its origin worker (or a parked
	// submitter's deque). Always false on other event kinds. Queue-time
	// attribution is unaffected — DepsReady→Start still measures the full
	// ready-to-running gap; the steal happens at dispatch, so the time was
	// spent waiting on the origin deque.
	Stolen bool
}

// Observer receives lifecycle events. Implementations must be safe for
// concurrent use (events of different tasks arrive from different
// goroutines); events of a single task are delivered in causal order.
// Embed NopObserver to implement only the hooks a sink cares about.
type Observer interface {
	OnSubmit(Event)
	OnDepsReady(Event)
	OnStart(Event)
	OnEnd(Event)
	OnRetry(Event)
	OnFailure(Event)
	OnDegrade(Event)
}

// NopObserver implements Observer with empty hooks; embed it in sinks that
// only care about a subset of events.
type NopObserver struct{}

func (NopObserver) OnSubmit(Event)    {}
func (NopObserver) OnDepsReady(Event) {}
func (NopObserver) OnStart(Event)     {}
func (NopObserver) OnEnd(Event)       {}
func (NopObserver) OnRetry(Event)     {}
func (NopObserver) OnFailure(Event)   {}
func (NopObserver) OnDegrade(Event)   {}

// emit dispatches one event at time.Now(); see emitAt.
func (rt *Runtime) emit(kind EventKind, st *taskState, attempt int, err error, mode string, final bool) {
	if rt.obs.Load() == nil {
		return // zero-observer fast path: no Event is built
	}
	rt.emitAt(kind, st, attempt, time.Now(), err, mode, final, "")
}

// emitAt dispatches one event with an explicit timestamp to every attached
// observer, in attachment order. Callers use it when the event's instant was
// captured before bookkeeping that should not be charged to it (e.g. End is
// stamped when the body returned, not after the nested-children wait).
// worker labels attempts a remote backend executed ("" in-process).
func (rt *Runtime) emitAt(kind EventKind, st *taskState, attempt int, at time.Time, err error, mode string, final bool, worker string) {
	obs := rt.obs.Load()
	if obs == nil {
		return
	}
	ev := Event{
		Kind: kind, Task: st.id, Name: st.name, Attempt: attempt,
		Time: at, Err: err, Mode: mode, Final: final, Worker: worker,
		// st.stolen is written once, by the executing goroutine before it
		// emits Start; the short-circuit keeps every other event kind —
		// Submit and DepsReady are emitted by other goroutines — from
		// reading the field at all.
		Stolen: kind == EventStart && st.stolen,
	}
	for _, o := range *obs {
		switch kind {
		case EventSubmit:
			o.OnSubmit(ev)
		case EventDepsReady:
			o.OnDepsReady(ev)
		case EventStart:
			o.OnStart(ev)
		case EventEnd:
			o.OnEnd(ev)
		case EventRetry:
			o.OnRetry(ev)
		case EventFailure:
			o.OnFailure(ev)
		case EventDegrade:
			o.OnDegrade(ev)
		}
	}
}
