// Package compss is a task-based workflow runtime in the style of PyCOMPSs,
// the programming model the paper builds on: plain functions become
// asynchronous tasks, data dependencies between tasks are detected
// automatically from their arguments, and the runtime executes the resulting
// DAG in parallel.
//
// # Programming model
//
// A task is submitted with Submit (from the main program) or TaskCtx.Submit
// (from inside another task — "nesting", the PyCOMPSs feature the paper uses
// to overlap the CNN folds in Figure 10). Any argument that is a *Future, or
// a []*Future, marks a dependency on the producing task; the runtime resolves
// it to the produced value before the task body runs:
//
//	a := rt.Submit(compss.Opts{Name: "load", Cost: 1}, loadFn)
//	b := rt.Submit(compss.Opts{Name: "fit", Cost: 5}, fitFn, a) // waits for a
//	model, err := rt.Get(b)                                     // synchronises
//
// Get is a synchronisation: besides blocking the caller, it raises the
// calling context's *sync floor* — tasks submitted afterwards cannot, in
// virtual time, start before the synchronised value reached the master.
// This reproduces the behaviour the paper describes for Figure 9, where each
// epoch's weight synchronisation "stops the generation of tasks". Nested
// contexts have their own local floor, so a Get inside a nested task does
// not delay sibling tasks — the Figure 10 improvement.
//
// # Execution and time
//
// Tasks really run, on a goroutine pool of Config.Workers slots, so model
// outputs are genuine. Virtual time is handled elsewhere: every submission
// is recorded in a graph.Graph (with its analytic cost and resource demand)
// that internal/cluster replays against a virtual cluster description.
package compss

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"taskml/internal/graph"
)

// Opts describes a task at submission time.
type Opts struct {
	// Name labels the task kind in the captured graph (colors in the DOT
	// export, CountByName in tests).
	Name string
	// Cost is the task's virtual duration in reference-core seconds (or
	// reference-GPU seconds when GPUs > 0). It does not affect real
	// execution, only the replayed schedule.
	Cost float64
	// Cores is the number of cores the task occupies on its node. Defaults
	// to 1 when both Cores and GPUs are zero.
	Cores int
	// GPUs is the number of accelerators the task occupies.
	GPUs int
	// OutBytes is the size of the produced value, charged by the scheduler
	// when a dependent runs on a different node (or via the master).
	OutBytes int64
}

// TaskFunc is a task body. It receives a TaskCtx for nested submissions and
// its resolved arguments (futures replaced by values) and returns the task's
// output value.
type TaskFunc func(tc *TaskCtx, args []any) (any, error)

// MultiTaskFunc is a task body with multiple outputs (see SubmitN).
type MultiTaskFunc func(tc *TaskCtx, args []any) ([]any, error)

// Config configures a Runtime.
type Config struct {
	// Workers bounds real goroutine parallelism. Defaults to GOMAXPROCS.
	Workers int
}

// Runtime executes tasks and captures the workflow graph.
type Runtime struct {
	g    *graph.Graph
	sem  chan struct{}
	main *TaskCtx
	rec  statsRecorder

	mu  sync.Mutex
	all []*taskState
}

// New creates a runtime.
func New(cfg Config) *Runtime {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	rt := &Runtime{
		g:   graph.New(),
		sem: make(chan struct{}, w),
	}
	rt.main = &TaskCtx{rt: rt, parent: -1, insideTask: false}
	return rt
}

// Graph returns the captured task graph. It grows as the program submits
// tasks; replay it with internal/cluster once the workflow is complete
// (after Barrier).
func (rt *Runtime) Graph() *graph.Graph { return rt.g }

// Main returns the main-program task context. Submit/Get/Barrier on the
// Runtime are shorthands for the same methods on Main().
func (rt *Runtime) Main() *TaskCtx { return rt.main }

// Submit schedules fn as a task of the main program. See TaskCtx.Submit.
func (rt *Runtime) Submit(o Opts, fn TaskFunc, args ...any) *Future {
	return rt.main.Submit(o, fn, args...)
}

// SubmitN schedules a task with nOut outputs from the main program.
func (rt *Runtime) SubmitN(o Opts, nOut int, fn MultiTaskFunc, args ...any) []*Future {
	return rt.main.SubmitN(o, nOut, fn, args...)
}

// Get synchronises on f from the main program: it blocks until the value is
// available and raises the main sync floor. See TaskCtx.Get.
func (rt *Runtime) Get(f *Future) (any, error) { return rt.main.Get(f) }

// Barrier waits for every task submitted so far (in any context) and
// returns the first error in submission order, if any. Like a PyCOMPSs
// barrier it is also a synchronisation: tasks submitted afterwards start,
// in virtual time, after everything before the barrier.
func (rt *Runtime) Barrier() error { return rt.main.barrierAll() }

// taskState is the shared completion record behind one or more Futures.
type taskState struct {
	id   int
	name string
	done chan struct{}
	vals []any
	err  error
}

// Future is a handle to the not-yet-available output of a task. Passing a
// Future (or a []*Future) as a Submit argument creates a dependency; Get
// synchronises on it.
type Future struct {
	st  *taskState
	idx int
}

// TaskID returns the graph ID of the producing task.
func (f *Future) TaskID() int { return f.st.id }

// wait blocks until the producing task completed, without sync-floor
// semantics (used for dependency resolution and barriers).
func (f *Future) wait() (any, error) {
	<-f.st.done
	if f.st.err != nil {
		return nil, f.st.err
	}
	return f.st.vals[f.idx], nil
}

// TaskCtx is the submission context handed to task bodies. The main program
// has its own context (Runtime.Main). Each context tracks a local sync
// floor and the set of tasks it submitted.
type TaskCtx struct {
	rt         *Runtime
	parent     int  // graph ID of the enclosing task, -1 for main
	insideTask bool // true when this ctx belongs to a running task body

	mu        sync.Mutex
	floor     map[int]bool // task IDs synchronised in this context
	submitted []*Future
}

// Submit schedules fn as a task. Arguments may be plain values, *Future, or
// []*Future; futures are dependencies and arrive resolved in fn's args.
//
// The returned Future resolves once fn returned *and* every task fn
// submitted through its own TaskCtx completed (a nested task is not done
// until its children are).
func (tc *TaskCtx) Submit(o Opts, fn TaskFunc, args ...any) *Future {
	fs := tc.submit(o, 1, func(child *TaskCtx, resolved []any) ([]any, error) {
		v, err := fn(child, resolved)
		return []any{v}, err
	}, args)
	return fs[0]
}

// SubmitN schedules a task producing nOut outputs and returns one Future
// per output. All outputs resolve together when the task completes; the
// graph records a single task node (dependents of any output depend on the
// task). This mirrors dislib tasks that fill several blocks at once.
func (tc *TaskCtx) SubmitN(o Opts, nOut int, fn MultiTaskFunc, args ...any) []*Future {
	if nOut <= 0 {
		panic("compss: SubmitN needs nOut >= 1")
	}
	return tc.submit(o, nOut, fn, args)
}

func (tc *TaskCtx) submit(o Opts, nOut int, fn MultiTaskFunc, args []any) []*Future {
	if o.Name == "" {
		o.Name = "task"
	}
	if o.Cores == 0 && o.GPUs == 0 {
		o.Cores = 1
	}

	// Dependency detection: futures in args, plus this context's sync
	// floor. Floor entries are tasks this context already synchronised on
	// (their values are at the master), so they only matter for virtual
	// time, never for real execution. An argument whose producer was also
	// synchronised carries its value through the master (ViaMaster); floor
	// entries that are not arguments are pure ordering (OrderOnly).
	type depKind int
	const (
		depArg depKind = iota
		depFloor
	)
	deps := map[int]depKind{}
	for _, a := range args {
		switch v := a.(type) {
		case *Future:
			deps[v.st.id] = depArg
		case []*Future:
			for _, f := range v {
				deps[f.st.id] = depArg
			}
		}
	}
	tc.mu.Lock()
	synced := make(map[int]bool, len(tc.floor))
	for id := range tc.floor {
		synced[id] = true
		if _, isArg := deps[id]; !isArg {
			deps[id] = depFloor
		}
	}
	tc.mu.Unlock()

	gdeps := make([]graph.Dep, 0, len(deps))
	for id, kind := range deps {
		gdeps = append(gdeps, graph.Dep{
			Task:      id,
			ViaMaster: synced[id],
			OrderOnly: kind == depFloor,
		})
	}

	id := tc.rt.g.Add(graph.Task{
		Name:     o.Name,
		Parent:   tc.parent,
		Deps:     gdeps,
		Cost:     o.Cost,
		Cores:    o.Cores,
		GPUs:     o.GPUs,
		OutBytes: o.OutBytes,
	})

	st := &taskState{id: id, name: o.Name, done: make(chan struct{}), vals: make([]any, nOut)}
	futs := make([]*Future, nOut)
	for i := range futs {
		futs[i] = &Future{st: st, idx: i}
	}

	tc.rt.mu.Lock()
	tc.rt.all = append(tc.rt.all, st)
	tc.rt.mu.Unlock()
	tc.mu.Lock()
	tc.submitted = append(tc.submitted, futs[0])
	tc.mu.Unlock()

	go tc.rt.run(st, id, nOut, fn, args)
	return futs
}

// run executes a task: resolve dependencies, acquire a worker slot, run the
// body (with panic containment), wait for nested children, publish.
func (rt *Runtime) run(st *taskState, id, nOut int, fn MultiTaskFunc, args []any) {
	defer close(st.done)
	submitted := time.Now()

	// Resolve arguments outside the worker slot so blocked tasks do not
	// hold execution capacity.
	resolved := make([]any, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case *Future:
			val, err := v.wait()
			if err != nil {
				st.err = fmt.Errorf("task %d (%s): dependency failed: %w", id, st.name, err)
				return
			}
			resolved[i] = val
		case []*Future:
			vals := make([]any, len(v))
			for j, f := range v {
				val, err := f.wait()
				if err != nil {
					st.err = fmt.Errorf("task %d (%s): dependency failed: %w", id, st.name, err)
					return
				}
				vals[j] = val
			}
			resolved[i] = vals
		default:
			resolved[i] = a
		}
	}

	depsReady := time.Now()
	rt.sem <- struct{}{}
	started := time.Now()
	child := &TaskCtx{rt: rt, parent: id, insideTask: true}
	func() {
		defer func() {
			if r := recover(); r != nil {
				st.err = fmt.Errorf("task %d (%s): panic: %v", id, st.name, r)
			}
		}()
		vals, err := fn(child, resolved)
		if err != nil {
			st.err = fmt.Errorf("task %d (%s): %w", id, st.name, err)
			return
		}
		if len(vals) != nOut {
			st.err = fmt.Errorf("task %d (%s): returned %d values, declared %d", id, st.name, len(vals), nOut)
			return
		}
		st.vals = vals
	}()
	<-rt.sem
	rt.rec.add(TaskStat{
		ID:       id,
		Name:     st.name,
		WaitDeps: depsReady.Sub(submitted),
		Queued:   started.Sub(depsReady),
		Duration: time.Since(started),
	})

	// A nested task is not complete until its children are; propagate the
	// first child error if the body itself succeeded.
	if cerr := child.waitSubmitted(); cerr != nil && st.err == nil {
		st.err = fmt.Errorf("task %d (%s): nested task failed: %w", id, st.name, cerr)
	}
}

// Get blocks until f's value is available and raises this context's sync
// floor: tasks submitted afterwards in this context will not start, in
// virtual time, before the synchronised data reached the master process.
func (tc *TaskCtx) Get(f *Future) (any, error) {
	v, err := tc.blockingWait(f)
	tc.mu.Lock()
	if tc.floor == nil {
		tc.floor = map[int]bool{}
	}
	tc.floor[f.st.id] = true
	tc.mu.Unlock()
	return v, err
}

// blockingWait waits for a future; when called from inside a task body it
// releases the worker slot while blocked so nested tasks cannot deadlock
// the pool.
func (tc *TaskCtx) blockingWait(f *Future) (any, error) {
	if !tc.insideTask {
		return f.wait()
	}
	select {
	case <-f.st.done: // already resolved, no need to release the slot
	default:
		<-tc.rt.sem
		defer func() { tc.rt.sem <- struct{}{} }()
	}
	return f.wait()
}

// WaitAll is a local barrier: it waits for every task submitted through
// this context and raises the floor past all of them. It returns the first
// error among them (in submission order).
func (tc *TaskCtx) WaitAll() error {
	tc.mu.Lock()
	snapshot := make([]*Future, len(tc.submitted))
	copy(snapshot, tc.submitted)
	tc.mu.Unlock()

	var first error
	for _, f := range snapshot {
		if _, err := tc.blockingWait(f); err != nil && first == nil {
			first = err
		}
	}
	tc.mu.Lock()
	if tc.floor == nil {
		tc.floor = map[int]bool{}
	}
	for _, f := range snapshot {
		tc.floor[f.st.id] = true
	}
	tc.mu.Unlock()
	return first
}

// waitSubmitted waits for this context's tasks without floor bookkeeping;
// used for the implicit wait when a task body returns. The caller's worker
// slot is already released at that point.
func (tc *TaskCtx) waitSubmitted() error {
	tc.mu.Lock()
	snapshot := make([]*Future, len(tc.submitted))
	copy(snapshot, tc.submitted)
	tc.mu.Unlock()
	var first error
	for _, f := range snapshot {
		if _, err := f.wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// barrierAll waits for every task in the runtime (main Barrier).
func (tc *TaskCtx) barrierAll() error {
	tc.rt.mu.Lock()
	snapshot := make([]*taskState, len(tc.rt.all))
	copy(snapshot, tc.rt.all)
	tc.rt.mu.Unlock()

	var first error
	tc.mu.Lock()
	if tc.floor == nil {
		tc.floor = map[int]bool{}
	}
	tc.mu.Unlock()
	for _, st := range snapshot {
		<-st.done
		if st.err != nil && first == nil {
			first = st.err
		}
		tc.mu.Lock()
		tc.floor[st.id] = true
		tc.mu.Unlock()
	}
	return first
}

// GetAll resolves a slice of futures with Get semantics and returns the
// values. It fails on the first error.
func (tc *TaskCtx) GetAll(fs []*Future) ([]any, error) {
	out := make([]any, len(fs))
	for i, f := range fs {
		v, err := tc.Get(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
