package compss

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"taskml/internal/exec"
	"taskml/internal/graph"
)

// Opts describes a task at submission time.
type Opts struct {
	// Name labels the task kind in the captured graph (colors in the DOT
	// export, CountByName in tests).
	Name string
	// Cost is the task's virtual duration in reference-core seconds (or
	// reference-GPU seconds when GPUs > 0). It does not affect real
	// execution, only the replayed schedule.
	Cost float64
	// Cores is the number of cores the task occupies on its node. Defaults
	// to 1 when both Cores and GPUs are zero.
	Cores int
	// GPUs is the number of accelerators the task occupies.
	GPUs int
	// OutBytes is the size of the produced value, charged by the scheduler
	// when a dependent runs on a different node (or via the master).
	OutBytes int64
	// Retries is how many times a failed attempt is re-executed before the
	// task is declared failed. 0 falls back to Config.DefaultRetries; a
	// negative value opts out explicitly (exactly one attempt, even when the
	// default is positive); the FailFast policy forces 0. Retried attempts
	// re-run immediately in real time — backoff exists only in the replayed
	// schedule, so failure handling stays deterministic.
	Retries int
	// Backoff is the virtual-time base delay, in seconds, between a failed
	// attempt and its retry: the retry after failed attempt k (0-based)
	// re-queues Backoff·2^k after the failure instant, so the first retry
	// waits the base. 0 falls back to Config.DefaultBackoff. Like Cost it
	// never affects real execution.
	Backoff float64
	// Deadline, when positive, bounds each attempt's wall-clock execution.
	// An attempt that overruns fails with ErrDeadlineExceeded and is retried
	// like any other failure; its goroutine is abandoned (its eventual
	// result is discarded) but keeps running, possibly concurrently with the
	// retry. The retry shares the resolved argument values with the
	// abandoned body, so bodies of tasks with a Deadline must treat their
	// arguments as read-only. The deadline does not extend to nested
	// children: give long-running children their own Deadline, or Barrier
	// waits for them even after the parent recovered.
	Deadline time.Duration
	// Fallback, when non-nil, is the value published if every attempt fails
	// under the Degrade policy, letting dependents — typically reduction
	// merges — proceed on partial results. For SubmitN tasks it must be a
	// []any of length nOut. Fallback values may be shared between tasks and
	// must be treated as read-only by consumers.
	Fallback any
	// Exec names a registered execution-backend function (exec.Register)
	// standing in for the task body: the attempt runs through
	// Config.Backend when one is attached — typically on a remote worker
	// process — and through an in-process registry call otherwise, with
	// identical semantics. Tasks submitted with SubmitExec/SubmitExecN set
	// it; tasks with a closure body leave it empty and always run
	// in-process. Retries, deadlines, fault injection and failure policies
	// apply identically either way: a backend failure (worker crash,
	// dropped connection) is an attempt failure like any other.
	Exec string
}

// FailurePolicy is the runtime-wide answer to a task exhausting its attempts.
type FailurePolicy int

const (
	// RetryThenFail (the default) honours per-task retry budgets and fails
	// the task — and transitively its dependents — when they run out.
	RetryThenFail FailurePolicy = iota
	// FailFast ignores retry budgets: the first failed attempt is final.
	FailFast
	// Degrade behaves like RetryThenFail, but a task that declared
	// Opts.Fallback publishes it instead of failing, so the workflow
	// completes on partial results (at a model-quality cost; the graph
	// records which tasks degraded).
	Degrade
)

// TaskFunc is a task body. It receives a TaskCtx for nested submissions and
// its resolved arguments (futures replaced by values) and returns the task's
// output value.
type TaskFunc func(tc *TaskCtx, args []any) (any, error)

// MultiTaskFunc is a task body with multiple outputs (see SubmitN).
type MultiTaskFunc func(tc *TaskCtx, args []any) ([]any, error)

// Config configures a Runtime.
type Config struct {
	// Workers bounds real goroutine parallelism. Defaults to GOMAXPROCS.
	Workers int
	// OnTaskFailure selects what happens when a task exhausts its attempts.
	// The zero value, RetryThenFail, preserves the historical behaviour for
	// tasks without retries (first failure is final).
	OnTaskFailure FailurePolicy
	// DefaultRetries is the retry budget for tasks that leave Opts.Retries
	// at 0. Ignored under FailFast.
	DefaultRetries int
	// DefaultBackoff is the virtual backoff base, in seconds, for tasks that
	// leave Opts.Backoff at 0.
	DefaultBackoff float64
	// Faults injects deterministic failures into chosen attempts (tests,
	// cmd/scaling -faults). Nil injects nothing.
	Faults *FaultPlan
	// Observers receive task lifecycle events (see observer.go). The slice
	// is copied at New; attaching no observers keeps the submit path free
	// of instrumentation cost (one atomic nil-check per would-be event).
	Observers []Observer
	// Backend executes Opts.Exec-named attempts (see internal/exec). Nil —
	// the default — runs them in-process via the registry, with zero cost
	// over a closure body; an exec.Remote ships them to worker processes.
	// Tasks without an Exec name never touch the backend.
	Backend exec.Backend
}

// Runtime executes tasks and captures the workflow graph.
type Runtime struct {
	g    *graph.Graph
	cfg  Config
	sem  *slotPool
	main *TaskCtx

	// ex is the work-stealing executor (see executor.go): per-worker ready
	// deques, the overflow injector, and the carrier/parking machinery. The
	// task registry lives in its shards; the runtime keeps no global task
	// list.
	ex *executor

	// obs is the copy-on-write observer list; nil when no observer is
	// attached (the zero-cost default). mu guards only the observer-list
	// swap.
	obs atomic.Pointer[[]Observer]

	// execSession is this runtime's exec-backend session token (see
	// exec.NextSession): it scopes the runtime's task ids in worker future
	// caches, so sequential or concurrent runtimes sharing one backend can
	// never alias each other's cached outputs. 0 when no Backend is
	// attached.
	execSession uint64

	mu sync.Mutex
}

// New creates a runtime.
//
// With an elastic backend (one implementing exec.Fleet, like exec.Remote),
// the runtime's execution capacity follows the fleet: it starts at
// max(Workers, live slot total) and is re-resolved on every membership
// change — a worker joining mid-run raises effective parallelism, a
// draining one lowers it. The executor's carrier structures are sized once
// to the fleet's slot ceiling, so an autoscaled fleet can grow into
// capacity the pool merely re-targets. The Watch subscription lives as
// long as the backend (runtimes have no teardown); it holds only the slot
// pool, and resizing a quiesced runtime's pool is harmless.
func New(cfg Config) *Runtime {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultRetries < 0 {
		cfg.DefaultRetries = 0
	}
	if cfg.DefaultBackoff < 0 {
		cfg.DefaultBackoff = 0
	}
	capacity, ceiling := w, w
	fleet, elastic := cfg.Backend.(exec.Fleet)
	if elastic {
		if total := fleet.SlotTotal(); total > capacity {
			capacity = total
		}
		if c := fleet.SlotCeiling(); c > ceiling {
			ceiling = c
		}
	}
	rt := &Runtime{
		g:   graph.New(),
		cfg: cfg,
		sem: newSlotPool(capacity),
	}
	rt.ex = newExecutor(rt, ceiling)
	if elastic {
		base := w
		fleet.Watch(func(slotTotal int) {
			n := slotTotal
			if base > n {
				n = base
			}
			rt.sem.setCap(n)
		})
	}
	if cfg.Backend != nil {
		rt.execSession = exec.NextSession()
	}
	if len(cfg.Observers) > 0 {
		obs := make([]Observer, len(cfg.Observers))
		copy(obs, cfg.Observers)
		rt.obs.Store(&obs)
	}
	rt.main = &TaskCtx{rt: rt, parent: -1, insideTask: false}
	return rt
}

// Graph returns the captured task graph. It grows as the program submits
// tasks; replay it with internal/cluster once the workflow is complete
// (after Barrier).
func (rt *Runtime) Graph() *graph.Graph { return rt.g }

// Main returns the main-program task context.
//
// Every Runtime convenience method below is a thin, documented forward to
// the same method on Main(): there is exactly one submission code path
// (TaskCtx.submit) and one synchronisation code path (TaskCtx.Get /
// blockingWait), which is also where the Observer events are emitted — one
// code path, one instrumentation point.
func (rt *Runtime) Main() *TaskCtx { return rt.main }

// Submit schedules fn as a task of the main program.
// It forwards to Main().Submit; see TaskCtx.Submit.
func (rt *Runtime) Submit(o Opts, fn TaskFunc, args ...any) *Future {
	return rt.main.Submit(o, fn, args...)
}

// SubmitN schedules a task with nOut outputs from the main program.
// It forwards to Main().SubmitN; see TaskCtx.SubmitN.
func (rt *Runtime) SubmitN(o Opts, nOut int, fn MultiTaskFunc, args ...any) []*Future {
	return rt.main.SubmitN(o, nOut, fn, args...)
}

// SubmitExec schedules a registered backend function as a task of the main
// program. It forwards to Main().SubmitExec; see TaskCtx.SubmitExec.
func (rt *Runtime) SubmitExec(o Opts, args ...any) *Future {
	return rt.main.SubmitExec(o, args...)
}

// SubmitExecN schedules a registered multi-output backend function as a
// task of the main program. It forwards to Main().SubmitExecN; see
// TaskCtx.SubmitExecN.
func (rt *Runtime) SubmitExecN(o Opts, nOut int, args ...any) []*Future {
	return rt.main.SubmitExecN(o, nOut, args...)
}

// Get synchronises on f from the main program: it blocks until the value is
// available and raises the main sync floor.
// It forwards to Main().Get; see TaskCtx.Get.
func (rt *Runtime) Get(f *Future) (any, error) { return rt.main.Get(f) }

// GetAll resolves a slice of futures from the main program with Get
// semantics. It forwards to Main().GetAll; see TaskCtx.GetAll.
func (rt *Runtime) GetAll(fs []*Future) ([]any, error) { return rt.main.GetAll(fs) }

// WaitAll waits for every task submitted through the main context and
// raises the main sync floor past all of them.
// It forwards to Main().WaitAll; see TaskCtx.WaitAll.
func (rt *Runtime) WaitAll() error { return rt.main.WaitAll() }

// Barrier waits for every task submitted so far (in any context) and
// returns the first error in submission order, if any. Like a PyCOMPSs
// barrier it is also a synchronisation: tasks submitted afterwards start,
// in virtual time, after everything before the barrier.
// It forwards to Main()'s global barrier.
func (rt *Runtime) Barrier() error { return rt.main.barrierAll() }

// taskState is the shared completion record behind one or more Futures.
// Single-output tasks — the overwhelmingly common case — embed their value
// slot, Future and first-attempt context here, so one allocation covers the
// whole submission record (see TaskCtx.submit).
type taskState struct {
	id      int
	name    string
	occ     int // occurrence index among same-named tasks, for fault matching
	retries int // effective retry budget after Config defaults and policy
	// The three Opts fields execution needs after submit; carrying them
	// instead of the whole Opts keeps the per-task record (and its zeroing
	// on the submit hot path) small.
	deadline time.Duration
	fallback any
	execName string
	// done is the completion broadcast channel, allocated lazily by
	// doneChan: most tasks finish before anyone parks on them and never
	// pay for one. completed is the authoritative flag — waiters poll it
	// with one atomic load and only materialize the channel to sleep.
	done     chan struct{}
	vals     []any
	err      error
	degraded bool

	// Execution record carried from submit to runReady: the body, its output
	// arity, the raw argument list (futures unresolved), and the submitting
	// context's task state for the barrier's absorbed-error walk.
	fn1      TaskFunc
	fnN      MultiTaskFunc
	nOut     int
	args     []any
	parentSt *taskState
	// floorIDs snapshots the submitting context's sync floor: every id here
	// became a (ViaMaster) graph dep of this task, so Get on this task can
	// compact them out of the floor.
	floorIDs []int

	// Readiness. pending counts unmet argument producers plus one submission
	// sentinel; the transition to 0 is the ready edge (becomeReady). chMu
	// guards the completed flag and the children list a producer drains at
	// completion; stolen records whether dispatch migrated the task off the
	// deque it was enqueued on (Observer/Stats attribution only).
	pending   atomic.Int32
	chMu      sync.Mutex
	completed atomic.Bool
	children  []*taskState
	stolen    bool
	// reg marks the submit-time field initialization as complete: the
	// arena slot is reachable by snapshotTasks the moment it is handed
	// out, so the gather skips slots whose submit has not yet published
	// them (the store is the release the gather's load acquires). A task
	// skipped mid-submit is covered transitively — its submitting parent
	// is gathered, and a parent's completion waits on its children.
	reg atomic.Bool

	val1  [1]any     // backing for vals when nOut == 1
	fut1  Future     // the single Future when nOut == 1
	futp1 [1]*Future // backing for the returned []*Future when nOut == 1
	ctx0  TaskCtx    // attempt 0's body context (retries allocate fresh ones)
}

// closedChan is returned by doneChan for already-completed tasks, so the
// post-completion wait path allocates nothing.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// doneChan returns a channel that is closed once the task completed,
// allocating st.done on first use. Callers that only need a completion
// probe read st.completed directly; the channel exists purely for waiters
// that must sleep in a select.
func (st *taskState) doneChan() <-chan struct{} {
	if st.completed.Load() {
		return closedChan
	}
	st.chMu.Lock()
	if st.completed.Load() {
		st.chMu.Unlock()
		return closedChan
	}
	if st.done == nil {
		st.done = make(chan struct{})
	}
	ch := st.done
	st.chMu.Unlock()
	return ch
}

// Future is a handle to the not-yet-available output of a task. Passing a
// Future (or a []*Future) as a Submit argument creates a dependency; Get
// synchronises on it.
type Future struct {
	st  *taskState
	idx int
}

// TaskID returns the graph ID of the producing task.
func (f *Future) TaskID() int { return f.st.id }

// wait blocks until the producing task completed, without sync-floor
// semantics (used for dependency resolution and barriers).
func (f *Future) wait() (any, error) {
	if !f.st.completed.Load() {
		<-f.st.doneChan()
	}
	if f.st.err != nil {
		return nil, f.st.err
	}
	return f.st.vals[f.idx], nil
}

// TaskCtx is the submission context handed to task bodies. The main program
// has its own context (Runtime.Main). Each context tracks a local sync
// floor and the set of tasks it submitted.
type TaskCtx struct {
	rt         *Runtime
	parent     int  // graph ID of the enclosing task, -1 for main
	insideTask bool // true when this ctx belongs to a running task body

	// ownerSt is the taskState whose body this context belongs to (nil for
	// main); it seeds taskState.parentSt on nested submissions. wkr is the
	// deque the executing carrier owns — nested submits push there, the
	// lock-free fast path — and may be nil (main, or a carrier that found
	// every deque slot claimed). onCarrier is true when the body runs inline
	// on the carrier/helper goroutine (no Deadline): such a body blocks by
	// helping — running other ready tasks — instead of parking, and can
	// never be abandoned. Deadline bodies run on a spawned goroutine
	// (onCarrier false) and keep the PR 2 park/abandon protocol.
	ownerSt   *taskState
	wkr       *worker
	onCarrier bool

	// Attempt slot accounting. A task body starts out owning the worker
	// slot its attempt acquired; blockingWait parks the body by handing the
	// slot back to the pool and reacquires it when the awaited value
	// arrives. A deadline overrun abandons the attempt. The two flags must
	// change together under slotMu: the timeout handler reclaims the slot
	// only if the body still holds it (a parked body already gave it back),
	// and a parked body must never reacquire once abandoned — the retry
	// owns that capacity now.
	slotMu    sync.Mutex
	abandoned bool
	holdsSlot bool

	// floor is the compactable sync floor: the task IDs whose ordering the
	// next submission must capture as graph deps. Get(X) both adds X and
	// deletes every id in X.floorIDs — those became deps of X, so ordering
	// through X subsumes them and the floor stays O(live sync points)
	// instead of growing with every Get. synced is the full, never-compacted
	// set of ids this context ever synchronised; it drives the ViaMaster
	// flag on argument deps, which must not forget compacted entries.
	// Invariant: floor ⊆ synced.
	// floorLazy holds barrier results not yet folded into the maps:
	// WaitAll/Barrier synchronise on *every* task, so eagerly inserting each
	// id costs two map writes per task even when the program ends right
	// after the barrier. The ids are folded in (materializeFloorLocked) the
	// next time floor or synced is actually consulted.
	mu        sync.Mutex
	floor     map[int]bool
	synced    map[int]bool
	floorLazy []int
	submitted []*Future
}

// materializeFloorLocked folds pending barrier ids into the floor and
// synced maps. Callers hold tc.mu.
func (tc *TaskCtx) materializeFloorLocked() {
	if len(tc.floorLazy) == 0 {
		return
	}
	if tc.floor == nil {
		tc.floor = make(map[int]bool, len(tc.floorLazy))
		tc.synced = make(map[int]bool, len(tc.floorLazy))
	}
	for _, id := range tc.floorLazy {
		tc.floor[id] = true
		tc.synced[id] = true
	}
	tc.floorLazy = tc.floorLazy[:0]
}

// Submit schedules fn as a task. Arguments may be plain values, *Future, or
// []*Future; futures are dependencies and arrive resolved in fn's args.
//
// The returned Future resolves once fn returned *and* every task fn
// submitted through its own TaskCtx completed (a nested task is not done
// until its children are).
func (tc *TaskCtx) Submit(o Opts, fn TaskFunc, args ...any) *Future {
	return tc.submit(&o, 1, fn, nil, args)[0]
}

// SubmitN schedules a task producing nOut outputs and returns one Future
// per output. All outputs resolve together when the task completes; the
// graph records a single task node (dependents of any output depend on the
// task). This mirrors dislib tasks that fill several blocks at once.
func (tc *TaskCtx) SubmitN(o Opts, nOut int, fn MultiTaskFunc, args ...any) []*Future {
	if nOut <= 0 {
		panic("compss: SubmitN needs nOut >= 1")
	}
	return tc.submit(&o, nOut, nil, fn, args)
}

// SubmitExec schedules the registered backend function o.Exec as a
// single-output task: instead of a closure body, the attempt invokes the
// exec registry — in-process by default, or on a worker process when the
// runtime has a remote Backend. Dependency detection, retries, deadlines
// and observers behave exactly as for Submit. It panics if o.Exec is empty
// or names nothing registered, so typos fail at the submit site.
//
// Registered bodies cannot submit nested tasks (they receive no TaskCtx —
// a worker process has no route back into the coordinator's graph); use
// Submit with a closure for nesting workflows.
func (tc *TaskCtx) SubmitExec(o Opts, args ...any) *Future {
	tc.checkExec(o)
	return tc.submit(&o, 1, nil, nil, args)[0]
}

// SubmitExecN is SubmitExec for a registered function with nOut outputs
// (the exec counterpart of SubmitN).
func (tc *TaskCtx) SubmitExecN(o Opts, nOut int, args ...any) []*Future {
	if nOut <= 0 {
		panic("compss: SubmitExecN needs nOut >= 1")
	}
	tc.checkExec(o)
	return tc.submit(&o, nOut, nil, nil, args)
}

func (tc *TaskCtx) checkExec(o Opts) {
	if o.Exec == "" {
		panic("compss: SubmitExec needs Opts.Exec")
	}
	if !exec.Has(o.Exec) {
		panic(fmt.Sprintf("compss: Opts.Exec %q is not registered (exec.Register it at init)", o.Exec))
	}
}

// appendArgDep adds an argument dependency on task id, collapsing duplicate
// future arguments into one edge. ViaMaster follows synced membership: a
// value the context already synchronised travels through the master again
// (synced, unlike the floor, is never compacted, so the flag survives floor
// compaction).
func appendArgDep(deps []graph.Dep, id int, synced map[int]bool) []graph.Dep {
	for i := range deps {
		if deps[i].Task == id {
			return deps
		}
	}
	return append(deps, graph.Dep{Task: id, ViaMaster: synced[id]})
}

// submit is the single submission code path. Exactly one of fn1 / fnN is
// non-nil: Submit passes its TaskFunc as fn1 (no wrapping closure, and the
// single output value travels by copy, not through a fresh []any), SubmitN
// its MultiTaskFunc as fnN.
func (tc *TaskCtx) submit(o *Opts, nOut int, fn1 TaskFunc, fnN MultiTaskFunc, args []any) []*Future {
	if o.Name == "" {
		o.Name = "task"
	}
	if o.Cores == 0 && o.GPUs == 0 {
		o.Cores = 1
	}

	// Dependency detection: futures in args, plus this context's sync
	// floor. Floor entries are tasks this context already synchronised on
	// (their values are at the master), so they only matter for virtual
	// time, never for real execution. An argument whose producer was also
	// synchronised carries its value through the master (ViaMaster); floor
	// entries that are not arguments are pure ordering (OrderOnly).
	//
	// The list is assembled straight into the graph.Dep slice — argument
	// deps first (deduplicated by a linear scan; fan-ins are small), then
	// the floor remainder — so the hot path builds no intermediate maps.
	nArg := 0
	for _, a := range args {
		switch v := a.(type) {
		case *Future:
			nArg++
		case []*Future:
			nArg += len(v)
		}
	}
	tc.mu.Lock()
	tc.materializeFloorLocked()
	var gdeps []graph.Dep
	if n := nArg + len(tc.floor); n > 0 {
		gdeps = make([]graph.Dep, 0, n)
	}
	for _, a := range args {
		switch v := a.(type) {
		case *Future:
			gdeps = appendArgDep(gdeps, v.st.id, tc.synced)
		case []*Future:
			for _, f := range v {
				gdeps = appendArgDep(gdeps, f.st.id, tc.synced)
			}
		}
	}
	nArgDeps := len(gdeps)
	var floorIDs []int
	if len(tc.floor) > 0 {
		floorIDs = make([]int, 0, len(tc.floor))
	}
	for id := range tc.floor {
		floorIDs = append(floorIDs, id)
		isArg := false
		for i := 0; i < nArgDeps; i++ {
			if gdeps[i].Task == id {
				isArg = true
				break
			}
		}
		if !isArg {
			gdeps = append(gdeps, graph.Dep{Task: id, ViaMaster: true, OrderOnly: true})
		}
	}
	tc.mu.Unlock()

	// Resolve the effective failure policy now, so the graph records what
	// the replay should emulate.
	retries := o.Retries
	if retries == 0 {
		retries = tc.rt.cfg.DefaultRetries
	}
	if retries < 0 || tc.rt.cfg.OnTaskFailure == FailFast {
		retries = 0 // negative Opts.Retries is an explicit opt-out
	}
	backoff := o.Backoff
	if backoff <= 0 {
		backoff = tc.rt.cfg.DefaultBackoff
	}
	if backoff < 0 {
		backoff = 0
	}
	o.Retries, o.Backoff = retries, backoff

	gt := graph.Task{
		Name:       o.Name,
		Parent:     tc.parent,
		Deps:       gdeps,
		Cost:       o.Cost,
		Cores:      o.Cores,
		GPUs:       o.GPUs,
		OutBytes:   o.OutBytes,
		Retries:    retries,
		BackoffSec: backoff,
	}
	// The occurrence index only feeds fault matching; without a fault plan
	// the cheaper Append skips the graph's per-name counter map.
	var id, occ int
	if tc.rt.cfg.Faults == nil {
		id = tc.rt.g.Append(&gt)
	} else {
		id, occ = tc.rt.g.AddCounted(gt)
	}

	st := tc.rt.ex.allocTask(tc.wkr)
	st.id, st.name, st.occ, st.retries = id, o.Name, occ, retries
	st.deadline, st.fallback, st.execName = o.Deadline, o.Fallback, o.Exec
	st.fn1, st.fnN, st.nOut, st.args = fn1, fnN, nOut, args
	st.parentSt, st.floorIDs = tc.ownerSt, floorIDs
	// The sentinel keeps the task unready until dependency wiring below is
	// complete, even when producers finish concurrently.
	st.pending.Store(1)
	var futs []*Future
	if nOut == 1 {
		st.vals = st.val1[:]
		st.fut1 = Future{st: st}
		st.futp1[0] = &st.fut1
		futs = st.futp1[:]
	} else {
		st.vals = make([]any, nOut)
		futs = make([]*Future, nOut)
		for i := range futs {
			futs[i] = &Future{st: st, idx: i}
		}
	}
	st.reg.Store(true) // init complete: publish to the registry gather

	tc.mu.Lock()
	if tc.submitted == nil {
		tc.submitted = make([]*Future, 0, 16)
	}
	tc.submitted = append(tc.submitted, futs[0])
	tc.mu.Unlock()

	// Emit before dependency wiring so Submit is causally first in the
	// task's event sequence (wiring can make the task ready immediately).
	tc.rt.emit(EventSubmit, st, -1, nil, "", false)

	// Wire argument dependencies: register this task as a child of every
	// still-running producer, counting each registration in pending. A
	// producer that already completed contributes neither a child entry nor
	// a pending increment, so the accounting stays balanced; duplicate
	// future arguments are symmetric too (registered and counted once per
	// occurrence, decremented once per child entry).
	for _, a := range args {
		switch v := a.(type) {
		case *Future:
			if tryAddChild(v.st, st) {
				st.pending.Add(1)
			}
		case []*Future:
			for _, f := range v {
				if tryAddChild(f.st, st) {
					st.pending.Add(1)
				}
			}
		}
	}
	// Drop the sentinel; if every producer already finished, the task is
	// ready here, on the submitter — a body submit pushes straight to its
	// own worker's deque without touching any runtime-global state.
	if st.pending.Add(-1) == 0 {
		tc.rt.becomeReady(st, tc.wkr)
	}
	return futs
}

// tryAddChild registers c as a completion child of p, reporting false when p
// already completed (its children were drained; the caller must not count a
// pending dependency on it).
func tryAddChild(p, c *taskState) bool {
	p.chMu.Lock()
	defer p.chMu.Unlock()
	if p.completed.Load() {
		return false
	}
	p.children = append(p.children, c)
	return true
}

// becomeReady fires when a task's last argument producer completed (or
// immediately at submit, for tasks with no pending producers): it screens
// the producers for failures, then enqueues the task on w's deque — the
// submitting or completing worker, preserving locality — or the injector.
//
// The failure screen walks the arguments in their original order, so the
// reported dependency error is the first failing argument exactly as the
// old sequential resolution produced. A failed dependency means the body
// never runs; the task still emits a terminal "deps" failure event so
// observers (and through them a StatsObserver) account for every graph
// node, and still completes so its own dependents cascade.
func (rt *Runtime) becomeReady(st *taskState, w *worker) {
	for _, a := range st.args {
		switch v := a.(type) {
		case *Future:
			if v.st.err != nil {
				rt.failDepsCascade(st, v.st.err, w)
				return
			}
		case []*Future:
			for _, f := range v {
				if f.st.err != nil {
					rt.failDepsCascade(st, f.st.err, w)
					return
				}
			}
		}
	}
	rt.emit(EventDepsReady, st, -1, nil, "", false)
	rt.ex.enqueue(st, w)
}

// failDepsCascade terminates a task whose dependency failed and propagates
// readiness to its own children (which will fail the same screen in turn).
func (rt *Runtime) failDepsCascade(st *taskState, err error, w *worker) {
	rt.failDeps(st, err)
	rt.complete(st, w)
}

// complete marks st completed (closing its done channel, when a waiter
// materialized one) and decrements every registered child's pending count,
// making the last-dependency children ready on the completing worker's
// deque. Runs on whichever goroutine finished the task. The caller must
// have published st.vals / st.err before calling: the completed store is
// the release waiters synchronise on.
func (rt *Runtime) complete(st *taskState, w *worker) {
	st.chMu.Lock()
	st.completed.Store(true)
	if st.done != nil {
		close(st.done)
	}
	kids := st.children
	st.children = nil
	st.chMu.Unlock()
	for _, c := range kids {
		if c.pending.Add(-1) == 0 {
			rt.becomeReady(c, w)
		}
	}
}

// runReady executes a ready task to completion: resolve the (already
// available) argument values, then loop over attempts — acquire a worker
// slot, run the body (with panic containment, deadline and fault
// injection), wait for the attempt's nested children — retrying while the
// budget lasts, and finally publish the value, the declared fallback
// (Degrade), or the failure. Each transition emits the matching Observer
// event (see observer.go for the guaranteed per-task sequences); the
// StatsObserver derives the legacy TaskStats entirely from this stream.
// stolen records whether this task migrated off the deque it was enqueued
// on, purely for Observer/Stats attribution.
func (rt *Runtime) runReady(st *taskState, w *worker, stolen bool) {
	st.stolen = stolen
	id, nOut := st.id, st.nOut
	args := st.args
	var resolved []any
	if len(args) > 0 {
		resolved = make([]any, len(args))
		for i, a := range args {
			switch v := a.(type) {
			case *Future:
				resolved[i] = v.st.vals[v.idx]
			case []*Future:
				vals := make([]any, len(v))
				for j, f := range v {
					vals[j] = f.st.vals[f.idx]
				}
				resolved[i] = vals
			default:
				resolved[i] = a
			}
		}
	}

	for attempt := 0; ; attempt++ {
		rt.sem.acquire()
		rt.emit(EventStart, st, attempt, nil, "", false)
		// Attempt 0 uses the context embedded in the taskState; retries get
		// a fresh one, because an abandoned (timed-out) attempt keeps using
		// its context concurrently with the retry.
		var child *TaskCtx
		if attempt == 0 {
			child = &st.ctx0
			child.rt, child.parent, child.insideTask, child.holdsSlot = rt, id, true, true
		} else {
			child = &TaskCtx{rt: rt, parent: id, insideTask: true, holdsSlot: true}
		}
		child.ownerSt = st
		child.wkr = w
		child.onCarrier = st.deadline <= 0
		res := rt.execAttempt(st, child, attempt, nOut, st.fn1, st.fnN, resolved)
		if !res.slotLost {
			rt.sem.release()
		}
		// The body is done and the slot released; End events are stamped
		// here so End−Start measures body execution, not the bookkeeping
		// (nested-children wait) below. With no observers attached the
		// stamp is skipped — the clock read is measurable on the dispatch
		// hot path — and taken lazily on the (cold) failure branches,
		// which feed it to the graph's failure record.
		var bodyDone time.Time
		if rt.obs.Load() != nil {
			bodyDone = time.Now()
		}

		if res.mode == "timeout" {
			// Do not wait for the abandoned attempt's children: Deadline
			// bounds this task's recovery, and Barrier skips child errors an
			// ancestor's retry absorbed. Children that can hang forever must
			// carry their own Deadline, or Barrier will wait on them.
		} else {
			// An attempt is not complete until its children are; a child
			// failure fails the attempt, so the retry covers the whole
			// nested subtree.
			cerr := child.waitSubmitted()
			if res.err == nil && cerr != nil {
				res = attemptResult{
					err:  &TaskError{ID: id, Name: st.name, Err: fmt.Errorf("nested task failed: %w", cerr)},
					mode: "error",
					frac: 1,
				}
			}
		}
		if res.err == nil {
			if res.vals != nil {
				st.vals = res.vals
			} else {
				st.vals[0] = res.val // single-output fast path (nOut == 1)
			}
			if bodyDone.IsZero() && rt.obs.Load() != nil {
				bodyDone = time.Now() // observer attached mid-attempt
			}
			rt.emitAt(EventEnd, st, attempt, bodyDone, nil, "", false, res.worker)
			break
		}
		if bodyDone.IsZero() {
			bodyDone = time.Now() // observers were off at body return
		}
		rt.g.RecordFailure(graph.FailureEvent{
			Task: id, Attempt: attempt, Mode: res.mode, CostFraction: res.frac, At: bodyDone,
		})
		if attempt < st.retries {
			rt.emitAt(EventFailure, st, attempt, bodyDone, res.err, res.mode, false, res.worker)
			rt.emit(EventRetry, st, attempt+1, nil, "", false)
			continue
		}
		if rt.cfg.OnTaskFailure == Degrade {
			if vals, ok := fallbackValues(st.fallback, nOut); ok {
				st.vals = vals
				st.degraded = true
				rt.g.MarkDegraded(id)
				rt.emitAt(EventFailure, st, attempt, bodyDone, res.err, res.mode, false, res.worker)
				rt.emit(EventDegrade, st, attempt, nil, "", false)
				break
			}
		}
		st.err = res.err
		rt.emitAt(EventFailure, st, attempt, bodyDone, res.err, res.mode, true, res.worker)
		break
	}
	rt.complete(st, w)
}

// failDeps records a dep-resolution failure: a collapsed DepError, surfaced
// to observers as a terminal Failure with Attempt -1 and Mode "deps".
func (rt *Runtime) failDeps(st *taskState, err error) {
	st.err = depError(st.id, st.name, err)
	rt.emit(EventFailure, st, -1, st.err, "deps", true)
}

// attemptResult is one attempt's outcome; mode and frac feed the graph's
// failure record when err is non-nil.
type attemptResult struct {
	vals []any
	val  any // the output when vals is nil: single-output bodies pass it by copy
	err  error
	mode string  // "error", "panic" or "timeout"
	frac float64 // virtual cost fraction consumed before the failure instant
	// slotLost reports that the attempt's worker slot is already back in the
	// pool (the timed-out body was parked in blockingWait when abandoned),
	// so the run loop must not release it a second time.
	slotLost bool
	// worker identifies the execution-backend worker that ran the attempt;
	// "" for in-process execution (including every non-Exec task).
	worker string
}

// execAttempt runs one attempt of the task body inside the caller's worker
// slot: fault injection swaps the body for a doomed one, a deadline races it
// against a timer, and panics become errors.
func (rt *Runtime) execAttempt(st *taskState, child *TaskCtx, attempt, nOut int, fn1 TaskFunc, fnN MultiTaskFunc, resolved []any) attemptResult {
	frac := 1.0
	var cancel chan struct{}
	if f := rt.cfg.Faults.match(st.id, st.name, st.occ, attempt); f != nil {
		frac = f.fraction()
		mode := f.Mode
		if mode == FaultHang && st.deadline <= 0 {
			mode = FaultError // nothing would ever cancel the hang
		}
		if mode == FaultHang {
			cancel = make(chan struct{})
		}
		fn1, fnN = nil, injectedBody(st, attempt, mode, cancel)
	}

	d := st.deadline
	if d <= 0 {
		// No deadline: run the body inline on the calling carrier/helper —
		// no goroutine, no result channel, no closure allocation.
		return rt.runAttemptBody(st, child, nOut, fn1, fnN, resolved, frac)
	}
	ch := make(chan attemptResult, 1)
	go func() { ch <- rt.runAttemptBody(st, child, nOut, fn1, fnN, resolved, frac) }()
	timer := time.NewTimer(d)
	defer timer.Stop()
	// While blocked on this select the calling carrier processes nothing, so
	// uncount it from the live-carrier gate: work the deadline body enqueues
	// (nested submissions) can then spawn a replacement carrier. The
	// anyWork recheck closes the race with an enqueue that saw the fleet
	// full just before the decrement. Helpers running a deadline attempt
	// were never counted, so the gate dips below the true carrier count —
	// harmless: it only permits an extra spawn, and execution parallelism is
	// bounded by the slot pool, not by carrier count.
	rt.ex.nLive.Add(-1)
	if rt.ex.anyWork() {
		rt.ex.signalWork()
	}
	var timedOut bool
	var res attemptResult
	select {
	case res = <-ch:
	case <-timer.C:
		timedOut = true
	}
	rt.ex.nLive.Add(1)
	if !timedOut {
		return res
	}
	{
		// Abandon the attempt: its goroutine keeps running but its result is
		// discarded, and its context stops touching the worker semaphore.
		// Atomically take the slot away from the body: if it still holds one
		// (it is computing), the run loop releases it as usual; if it is
		// parked in blockingWait, the slot is already back in the pool and
		// must not be consumed again.
		child.slotMu.Lock()
		child.abandoned = true
		held := child.holdsSlot
		child.holdsSlot = false
		child.slotMu.Unlock()
		if cancel != nil {
			close(cancel)
		}
		return attemptResult{
			err: &TaskError{ID: st.id, Name: st.name,
				Err: fmt.Errorf("attempt %d: %w (deadline %v)", attempt, ErrDeadlineExceeded, d)},
			mode:     "timeout",
			frac:     1, // the node was held until the deadline fired
			slotLost: !held,
		}
	}
}

// runAttemptBody executes the (possibly fault-swapped) body of one attempt
// with panic containment. It runs inline on the dispatching goroutine for
// deadline-free tasks and on a spawned goroutine under a Deadline.
func (rt *Runtime) runAttemptBody(st *taskState, child *TaskCtx, nOut int, fn1 TaskFunc, fnN MultiTaskFunc, resolved []any, frac float64) (res attemptResult) {
	defer func() {
		if r := recover(); r != nil {
			res = attemptResult{
				err:  &TaskError{ID: st.id, Name: st.name, Err: fmt.Errorf("panic: %v", r)},
				mode: "panic",
				frac: frac,
			}
		}
	}()
	switch {
	case fn1 != nil:
		v, err := fn1(child, resolved)
		if err != nil {
			return attemptResult{err: &TaskError{ID: st.id, Name: st.name, Err: err}, mode: "error", frac: frac}
		}
		return attemptResult{val: v}
	case fnN != nil:
		vals, err := fnN(child, resolved)
		switch {
		case err != nil:
			return attemptResult{err: &TaskError{ID: st.id, Name: st.name, Err: err}, mode: "error", frac: frac}
		case len(vals) != nOut:
			return attemptResult{
				err:  &TaskError{ID: st.id, Name: st.name, Err: fmt.Errorf("returned %d values, declared %d", len(vals), nOut)},
				mode: "error",
				frac: 1,
			}
		}
		return attemptResult{vals: vals}
	default:
		// Exec-named body (SubmitExec): dispatch through the backend.
		// Injected faults never reach here — the injected body replaced
		// fnN in execAttempt, so a fault-plan entry fails the attempt
		// without a wire round-trip, exactly as it bypasses closure bodies.
		return rt.execBody(st, nOut, resolved)
	}
}

// execBody runs one attempt of an Opts.Exec-named task. With a Backend
// attached the attempt is the backend's problem (an exec.Remote ships it to
// a worker process and the returned worker id lands on the End/Failure
// event); without one it is a direct registry call — the single-output
// local path passes the value by copy, so an in-process exec task costs the
// same as a closure body.
//
// The backend request carries the task's identity (execSession + id) and
// the provenance of every future-valued argument (exec.ArgRef), so a
// data-plane backend can place the attempt near resident inputs and pass
// references instead of values — or, on exec.Remote's peer plane, point
// the executing worker at whichever peer worker holds the value so it is
// pulled directly, without a coordinator hop. The resolved values always
// travel too — identity is a hint, never a dependency.
func (rt *Runtime) execBody(st *taskState, nOut int, resolved []any) attemptResult {
	name := st.execName
	if be := rt.cfg.Backend; be != nil {
		req := &exec.Request{
			Name: name, NOut: nOut, Args: resolved,
			Session: rt.execSession, TaskID: st.id,
			ArgRefs: argRefs(st.args, rt.execSession),
		}
		vals, worker, err := be.ExecuteTask(req)
		if err != nil {
			return attemptResult{
				err:    &TaskError{ID: st.id, Name: st.name, Err: err},
				mode:   "error",
				frac:   1,
				worker: worker,
			}
		}
		if nOut == 1 {
			return attemptResult{val: vals[0], worker: worker}
		}
		return attemptResult{vals: vals, worker: worker}
	}
	f1, fN, ok := exec.Fns(name)
	if f1 != nil && nOut == 1 {
		v, err := f1(resolved)
		if err != nil {
			return attemptResult{err: &TaskError{ID: st.id, Name: st.name, Err: err}, mode: "error", frac: 1}
		}
		return attemptResult{val: v}
	}
	var vals []any
	var err error
	switch {
	case !ok:
		err = fmt.Errorf("exec function %q is not registered", name)
	case fN == nil:
		err = fmt.Errorf("exec function %q has 1 output, %d declared", name, nOut)
	default:
		vals, err = fN(resolved)
		if err == nil && len(vals) != nOut {
			err = fmt.Errorf("exec function %q returned %d values, declared %d", name, len(vals), nOut)
		}
	}
	if err != nil {
		return attemptResult{err: &TaskError{ID: st.id, Name: st.name, Err: err}, mode: "error", frac: 1}
	}
	return attemptResult{vals: vals}
}

// argRefs derives the exec.ArgRef provenance list from a task's raw
// (unresolved) argument list: each *Future argument — and each element of a
// []*Future argument — is the (session, producing-task, output) triple the
// data plane caches values under. Plain-value arguments carry no ref.
func argRefs(args []any, session uint64) []exec.ArgRef {
	if session == 0 {
		return nil
	}
	var refs []exec.ArgRef
	for i, a := range args {
		switch v := a.(type) {
		case *Future:
			refs = append(refs, exec.ArgRef{
				Arg: i, Elem: -1,
				Ref: exec.ValueRef{Session: session, Task: v.st.id, Out: v.idx},
			})
		case []*Future:
			for j, f := range v {
				refs = append(refs, exec.ArgRef{
					Arg: i, Elem: j,
					Ref: exec.ValueRef{Session: session, Task: f.st.id, Out: f.idx},
				})
			}
		}
	}
	return refs
}

// fallbackValues validates a declared fallback against the task's output
// arity, returning the values to publish.
func fallbackValues(fb any, nOut int) ([]any, bool) {
	if fb == nil {
		return nil, false
	}
	if nOut == 1 {
		return []any{fb}, true
	}
	if vs, ok := fb.([]any); ok && len(vs) == nOut {
		return vs, true
	}
	return nil, false
}

// Get blocks until f's value is available and raises this context's sync
// floor: tasks submitted afterwards in this context will not start, in
// virtual time, before the synchronised data reached the master process.
func (tc *TaskCtx) Get(f *Future) (any, error) {
	v, err := tc.blockingWait(f)
	tc.mu.Lock()
	tc.materializeFloorLocked()
	if tc.floor == nil {
		tc.floor = map[int]bool{}
		tc.synced = map[int]bool{}
	}
	tc.floor[f.st.id] = true
	tc.synced[f.st.id] = true
	// Compact: every id the awaited task snapshotted from a sync floor at
	// submission became one of its graph deps, so ordering through it
	// subsumes them — without this the floor grows by one per Get and every
	// later Submit pays a linear scan over it (the old quadratic wall).
	for _, id := range f.st.floorIDs {
		delete(tc.floor, id)
	}
	tc.mu.Unlock()
	return v, err
}

// blockingWait waits for a future. Three callers, three strategies:
//
//   - The main program (or any non-task context) helps: it runs ready tasks
//     inline until the target completes, parking only when the queues are
//     empty.
//   - A non-Deadline body runs inline on a carrier or helper goroutine
//     (onCarrier): it hands its worker slot back to the pool, helps, and
//     reacquires before resuming — so nested tasks cannot deadlock the pool
//     and the blocked body's goroutine keeps contributing throughput.
//     Abandonment is impossible here (no deadline), so the slot bookkeeping
//     is plain.
//   - A Deadline body runs on a spawned goroutine and keeps the PR 2
//     park/abandon protocol verbatim: release the slot, wait passively,
//     reacquire unless the deadline handler abandoned the attempt — in
//     which case the slot stays with the pool (the retry owns that
//     capacity) and the body resumes slotless.
func (tc *TaskCtx) blockingWait(f *Future) (any, error) {
	if !tc.insideTask {
		if !f.st.completed.Load() {
			rng := tc.rt.ex.nextSeed()
			tc.rt.ex.helpUntilDone(nil, &rng, f.st)
		}
		return f.wait()
	}
	if tc.onCarrier {
		if f.st.completed.Load() { // already resolved, keep the slot
			return f.wait()
		}
		tc.slotMu.Lock()
		held := tc.holdsSlot
		tc.holdsSlot = false
		tc.slotMu.Unlock()
		if held {
			tc.rt.sem.release() // hand the slot back; never blocks, we held a token
		}
		rng := tc.rt.ex.nextSeed()
		tc.rt.ex.helpUntilDone(tc.wkr, &rng, f.st)
		if held {
			tc.rt.sem.acquire()
			tc.slotMu.Lock()
			tc.holdsSlot = true
			tc.slotMu.Unlock()
		}
		return f.wait()
	}
	tc.slotMu.Lock()
	if tc.abandoned || !tc.holdsSlot {
		tc.slotMu.Unlock()
		return f.wait()
	}
	if f.st.completed.Load() { // already resolved, keep the slot
		tc.slotMu.Unlock()
		return f.wait()
	}
	// Park: hand the slot back. The receive never blocks — this attempt
	// holds a slot, so the pool has at least its token.
	tc.rt.sem.release()
	tc.holdsSlot = false
	tc.slotMu.Unlock()

	<-f.st.doneChan()

	// Reacquire before resuming the body, unless the attempt was abandoned
	// while parked — its deadline handler saw holdsSlot == false and left
	// the capacity to the retry.
	tc.slotMu.Lock()
	if tc.abandoned {
		tc.slotMu.Unlock()
		return f.wait()
	}
	tc.slotMu.Unlock()
	tc.rt.sem.acquire()
	tc.slotMu.Lock()
	if tc.abandoned {
		// Abandoned while blocked on the reacquire: return the token. The
		// receive never blocks — the send above put a token in the pool and
		// every other holder only ever receives its own.
		tc.slotMu.Unlock()
		tc.rt.sem.release()
		return f.wait()
	}
	tc.holdsSlot = true
	tc.slotMu.Unlock()
	return f.wait()
}

// WaitAll is a local barrier: it waits for every task submitted through
// this context and raises the floor past all of them. It returns the first
// error among them (in submission order).
func (tc *TaskCtx) WaitAll() error {
	tc.mu.Lock()
	snapshot := make([]*Future, len(tc.submitted))
	copy(snapshot, tc.submitted)
	tc.mu.Unlock()

	var first error
	for _, f := range snapshot {
		if _, err := tc.blockingWait(f); err != nil && first == nil {
			first = err
		}
	}
	tc.mu.Lock()
	for _, f := range snapshot {
		tc.floorLazy = append(tc.floorLazy, f.st.id)
	}
	tc.mu.Unlock()
	return first
}

// waitSubmitted waits for this context's tasks without floor bookkeeping;
// used for the implicit wait when a task body returns. The attempt's worker
// slot is already released at that point, so the calling carrier/helper
// goroutine helps — running the very children it is waiting for when
// nothing else claimed them.
func (tc *TaskCtx) waitSubmitted() error {
	tc.mu.Lock()
	if len(tc.submitted) == 0 {
		tc.mu.Unlock()
		return nil
	}
	snapshot := make([]*Future, len(tc.submitted))
	copy(snapshot, tc.submitted)
	tc.mu.Unlock()
	var first error
	var rng uint64
	for _, f := range snapshot {
		if !f.st.completed.Load() {
			if rng == 0 {
				rng = tc.rt.ex.nextSeed()
			}
			tc.rt.ex.helpUntilDone(tc.wkr, &rng, f.st)
		}
		if _, err := f.wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// barrierAll waits for every task in the runtime (main Barrier). Failures
// compensated upstream — a nested task whose parent retried past it or
// degraded to its fallback — are not the workflow's failures and are
// skipped; the first unabsorbed error in submission order is returned.
func (tc *TaskCtx) barrierAll() error {
	snapshot := tc.rt.ex.snapshotTasks()

	var first error
	var rng uint64
	for _, st := range snapshot {
		if !st.completed.Load() {
			if rng == 0 {
				rng = tc.rt.ex.nextSeed()
			}
			tc.rt.ex.helpUntilDone(nil, &rng, st)
		}
		if st.err != nil && first == nil && !tc.rt.errorAbsorbed(st) {
			first = st.err
		}
	}
	tc.mu.Lock()
	if free := cap(tc.floorLazy) - len(tc.floorLazy); free < len(snapshot) {
		grown := make([]int, len(tc.floorLazy), len(tc.floorLazy)+len(snapshot))
		copy(grown, tc.floorLazy)
		tc.floorLazy = grown
	}
	for _, st := range snapshot {
		tc.floorLazy = append(tc.floorLazy, st.id)
	}
	tc.mu.Unlock()
	return first
}

// errorAbsorbed reports whether st's failure was compensated upstream: some
// ancestor task ultimately published a value (via a later attempt whose
// resubmitted children succeeded, or via its fallback), so the workflow as
// a whole moved past this failure. Ancestors have smaller graph IDs than
// their nested children, so by the time the barrier's in-order sweep asks
// about st every ancestor's done channel is already closed (a parent's
// completion waits on its children) — the waits below are formally blocking
// but never park in practice.
func (rt *Runtime) errorAbsorbed(st *taskState) bool {
	for p := st.parentSt; p != nil; p = p.parentSt {
		if !p.completed.Load() {
			<-p.doneChan()
		}
		if p.err == nil {
			return true
		}
	}
	return false
}

// GetAll resolves a slice of futures with Get semantics and returns the
// values. It fails on the first error.
func (tc *TaskCtx) GetAll(fs []*Future) ([]any, error) {
	out := make([]any, len(fs))
	for i, f := range fs {
		v, err := tc.Get(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
