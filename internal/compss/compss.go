package compss

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"taskml/internal/exec"
	"taskml/internal/graph"
)

// Opts describes a task at submission time.
type Opts struct {
	// Name labels the task kind in the captured graph (colors in the DOT
	// export, CountByName in tests).
	Name string
	// Cost is the task's virtual duration in reference-core seconds (or
	// reference-GPU seconds when GPUs > 0). It does not affect real
	// execution, only the replayed schedule.
	Cost float64
	// Cores is the number of cores the task occupies on its node. Defaults
	// to 1 when both Cores and GPUs are zero.
	Cores int
	// GPUs is the number of accelerators the task occupies.
	GPUs int
	// OutBytes is the size of the produced value, charged by the scheduler
	// when a dependent runs on a different node (or via the master).
	OutBytes int64
	// Retries is how many times a failed attempt is re-executed before the
	// task is declared failed. 0 falls back to Config.DefaultRetries; a
	// negative value opts out explicitly (exactly one attempt, even when the
	// default is positive); the FailFast policy forces 0. Retried attempts
	// re-run immediately in real time — backoff exists only in the replayed
	// schedule, so failure handling stays deterministic.
	Retries int
	// Backoff is the virtual-time base delay, in seconds, between a failed
	// attempt and its retry: the retry after failed attempt k (0-based)
	// re-queues Backoff·2^k after the failure instant, so the first retry
	// waits the base. 0 falls back to Config.DefaultBackoff. Like Cost it
	// never affects real execution.
	Backoff float64
	// Deadline, when positive, bounds each attempt's wall-clock execution.
	// An attempt that overruns fails with ErrDeadlineExceeded and is retried
	// like any other failure; its goroutine is abandoned (its eventual
	// result is discarded) but keeps running, possibly concurrently with the
	// retry. The retry shares the resolved argument values with the
	// abandoned body, so bodies of tasks with a Deadline must treat their
	// arguments as read-only. The deadline does not extend to nested
	// children: give long-running children their own Deadline, or Barrier
	// waits for them even after the parent recovered.
	Deadline time.Duration
	// Fallback, when non-nil, is the value published if every attempt fails
	// under the Degrade policy, letting dependents — typically reduction
	// merges — proceed on partial results. For SubmitN tasks it must be a
	// []any of length nOut. Fallback values may be shared between tasks and
	// must be treated as read-only by consumers.
	Fallback any
	// Exec names a registered execution-backend function (exec.Register)
	// standing in for the task body: the attempt runs through
	// Config.Backend when one is attached — typically on a remote worker
	// process — and through an in-process registry call otherwise, with
	// identical semantics. Tasks submitted with SubmitExec/SubmitExecN set
	// it; tasks with a closure body leave it empty and always run
	// in-process. Retries, deadlines, fault injection and failure policies
	// apply identically either way: a backend failure (worker crash,
	// dropped connection) is an attempt failure like any other.
	Exec string
}

// FailurePolicy is the runtime-wide answer to a task exhausting its attempts.
type FailurePolicy int

const (
	// RetryThenFail (the default) honours per-task retry budgets and fails
	// the task — and transitively its dependents — when they run out.
	RetryThenFail FailurePolicy = iota
	// FailFast ignores retry budgets: the first failed attempt is final.
	FailFast
	// Degrade behaves like RetryThenFail, but a task that declared
	// Opts.Fallback publishes it instead of failing, so the workflow
	// completes on partial results (at a model-quality cost; the graph
	// records which tasks degraded).
	Degrade
)

// TaskFunc is a task body. It receives a TaskCtx for nested submissions and
// its resolved arguments (futures replaced by values) and returns the task's
// output value.
type TaskFunc func(tc *TaskCtx, args []any) (any, error)

// MultiTaskFunc is a task body with multiple outputs (see SubmitN).
type MultiTaskFunc func(tc *TaskCtx, args []any) ([]any, error)

// Config configures a Runtime.
type Config struct {
	// Workers bounds real goroutine parallelism. Defaults to GOMAXPROCS.
	Workers int
	// OnTaskFailure selects what happens when a task exhausts its attempts.
	// The zero value, RetryThenFail, preserves the historical behaviour for
	// tasks without retries (first failure is final).
	OnTaskFailure FailurePolicy
	// DefaultRetries is the retry budget for tasks that leave Opts.Retries
	// at 0. Ignored under FailFast.
	DefaultRetries int
	// DefaultBackoff is the virtual backoff base, in seconds, for tasks that
	// leave Opts.Backoff at 0.
	DefaultBackoff float64
	// Faults injects deterministic failures into chosen attempts (tests,
	// cmd/scaling -faults). Nil injects nothing.
	Faults *FaultPlan
	// Observers receive task lifecycle events (see observer.go). The slice
	// is copied at New; attaching no observers keeps the submit path free
	// of instrumentation cost (one atomic nil-check per would-be event).
	Observers []Observer
	// Backend executes Opts.Exec-named attempts (see internal/exec). Nil —
	// the default — runs them in-process via the registry, with zero cost
	// over a closure body; an exec.Remote ships them to worker processes.
	// Tasks without an Exec name never touch the backend.
	Backend exec.Backend
}

// Runtime executes tasks and captures the workflow graph.
type Runtime struct {
	g    *graph.Graph
	cfg  Config
	sem  chan struct{}
	main *TaskCtx

	// obs is the copy-on-write observer list; nil when no observer is
	// attached (the zero-cost default). statsObs is the observer behind the
	// deprecated EnableStats/Stats compatibility surface, nil until
	// EnableStats.
	obs      atomic.Pointer[[]Observer]
	statsObs atomic.Pointer[StatsObserver]

	mu   sync.Mutex
	all  []*taskState
	byID map[int]*taskState
}

// New creates a runtime.
func New(cfg Config) *Runtime {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultRetries < 0 {
		cfg.DefaultRetries = 0
	}
	if cfg.DefaultBackoff < 0 {
		cfg.DefaultBackoff = 0
	}
	rt := &Runtime{
		g:   graph.New(),
		cfg: cfg,
		sem: make(chan struct{}, w),
	}
	if len(cfg.Observers) > 0 {
		obs := make([]Observer, len(cfg.Observers))
		copy(obs, cfg.Observers)
		rt.obs.Store(&obs)
	}
	rt.main = &TaskCtx{rt: rt, parent: -1, insideTask: false}
	return rt
}

// Graph returns the captured task graph. It grows as the program submits
// tasks; replay it with internal/cluster once the workflow is complete
// (after Barrier).
func (rt *Runtime) Graph() *graph.Graph { return rt.g }

// Main returns the main-program task context.
//
// Every Runtime convenience method below is a thin, documented forward to
// the same method on Main(): there is exactly one submission code path
// (TaskCtx.submit) and one synchronisation code path (TaskCtx.Get /
// blockingWait), which is also where the Observer events are emitted — one
// code path, one instrumentation point.
func (rt *Runtime) Main() *TaskCtx { return rt.main }

// Submit schedules fn as a task of the main program.
// It forwards to Main().Submit; see TaskCtx.Submit.
func (rt *Runtime) Submit(o Opts, fn TaskFunc, args ...any) *Future {
	return rt.main.Submit(o, fn, args...)
}

// SubmitN schedules a task with nOut outputs from the main program.
// It forwards to Main().SubmitN; see TaskCtx.SubmitN.
func (rt *Runtime) SubmitN(o Opts, nOut int, fn MultiTaskFunc, args ...any) []*Future {
	return rt.main.SubmitN(o, nOut, fn, args...)
}

// SubmitExec schedules a registered backend function as a task of the main
// program. It forwards to Main().SubmitExec; see TaskCtx.SubmitExec.
func (rt *Runtime) SubmitExec(o Opts, args ...any) *Future {
	return rt.main.SubmitExec(o, args...)
}

// SubmitExecN schedules a registered multi-output backend function as a
// task of the main program. It forwards to Main().SubmitExecN; see
// TaskCtx.SubmitExecN.
func (rt *Runtime) SubmitExecN(o Opts, nOut int, args ...any) []*Future {
	return rt.main.SubmitExecN(o, nOut, args...)
}

// Get synchronises on f from the main program: it blocks until the value is
// available and raises the main sync floor.
// It forwards to Main().Get; see TaskCtx.Get.
func (rt *Runtime) Get(f *Future) (any, error) { return rt.main.Get(f) }

// GetAll resolves a slice of futures from the main program with Get
// semantics. It forwards to Main().GetAll; see TaskCtx.GetAll.
func (rt *Runtime) GetAll(fs []*Future) ([]any, error) { return rt.main.GetAll(fs) }

// WaitAll waits for every task submitted through the main context and
// raises the main sync floor past all of them.
// It forwards to Main().WaitAll; see TaskCtx.WaitAll.
func (rt *Runtime) WaitAll() error { return rt.main.WaitAll() }

// Barrier waits for every task submitted so far (in any context) and
// returns the first error in submission order, if any. Like a PyCOMPSs
// barrier it is also a synchronisation: tasks submitted afterwards start,
// in virtual time, after everything before the barrier.
// It forwards to Main()'s global barrier.
func (rt *Runtime) Barrier() error { return rt.main.barrierAll() }

// taskState is the shared completion record behind one or more Futures.
// Single-output tasks — the overwhelmingly common case — embed their value
// slot, Future and first-attempt context here, so one allocation covers the
// whole submission record (see TaskCtx.submit).
type taskState struct {
	id       int
	name     string
	occ      int // occurrence index among same-named tasks, for fault matching
	opts     Opts
	retries  int // effective retry budget after Config defaults and policy
	done     chan struct{}
	vals     []any
	err      error
	degraded bool

	val1  [1]any     // backing for vals when nOut == 1
	fut1  Future     // the single Future when nOut == 1
	futp1 [1]*Future // backing for the returned []*Future when nOut == 1
	ctx0  TaskCtx    // attempt 0's body context (retries allocate fresh ones)
}

// Future is a handle to the not-yet-available output of a task. Passing a
// Future (or a []*Future) as a Submit argument creates a dependency; Get
// synchronises on it.
type Future struct {
	st  *taskState
	idx int
}

// TaskID returns the graph ID of the producing task.
func (f *Future) TaskID() int { return f.st.id }

// wait blocks until the producing task completed, without sync-floor
// semantics (used for dependency resolution and barriers).
func (f *Future) wait() (any, error) {
	<-f.st.done
	if f.st.err != nil {
		return nil, f.st.err
	}
	return f.st.vals[f.idx], nil
}

// TaskCtx is the submission context handed to task bodies. The main program
// has its own context (Runtime.Main). Each context tracks a local sync
// floor and the set of tasks it submitted.
type TaskCtx struct {
	rt         *Runtime
	parent     int  // graph ID of the enclosing task, -1 for main
	insideTask bool // true when this ctx belongs to a running task body

	// Attempt slot accounting. A task body starts out owning the worker
	// slot its attempt acquired; blockingWait parks the body by handing the
	// slot back to the pool and reacquires it when the awaited value
	// arrives. A deadline overrun abandons the attempt. The two flags must
	// change together under slotMu: the timeout handler reclaims the slot
	// only if the body still holds it (a parked body already gave it back),
	// and a parked body must never reacquire once abandoned — the retry
	// owns that capacity now.
	slotMu    sync.Mutex
	abandoned bool
	holdsSlot bool

	mu        sync.Mutex
	floor     map[int]bool // task IDs synchronised in this context
	submitted []*Future
}

// Submit schedules fn as a task. Arguments may be plain values, *Future, or
// []*Future; futures are dependencies and arrive resolved in fn's args.
//
// The returned Future resolves once fn returned *and* every task fn
// submitted through its own TaskCtx completed (a nested task is not done
// until its children are).
func (tc *TaskCtx) Submit(o Opts, fn TaskFunc, args ...any) *Future {
	return tc.submit(o, 1, fn, nil, args)[0]
}

// SubmitN schedules a task producing nOut outputs and returns one Future
// per output. All outputs resolve together when the task completes; the
// graph records a single task node (dependents of any output depend on the
// task). This mirrors dislib tasks that fill several blocks at once.
func (tc *TaskCtx) SubmitN(o Opts, nOut int, fn MultiTaskFunc, args ...any) []*Future {
	if nOut <= 0 {
		panic("compss: SubmitN needs nOut >= 1")
	}
	return tc.submit(o, nOut, nil, fn, args)
}

// SubmitExec schedules the registered backend function o.Exec as a
// single-output task: instead of a closure body, the attempt invokes the
// exec registry — in-process by default, or on a worker process when the
// runtime has a remote Backend. Dependency detection, retries, deadlines
// and observers behave exactly as for Submit. It panics if o.Exec is empty
// or names nothing registered, so typos fail at the submit site.
//
// Registered bodies cannot submit nested tasks (they receive no TaskCtx —
// a worker process has no route back into the coordinator's graph); use
// Submit with a closure for nesting workflows.
func (tc *TaskCtx) SubmitExec(o Opts, args ...any) *Future {
	tc.checkExec(o)
	return tc.submit(o, 1, nil, nil, args)[0]
}

// SubmitExecN is SubmitExec for a registered function with nOut outputs
// (the exec counterpart of SubmitN).
func (tc *TaskCtx) SubmitExecN(o Opts, nOut int, args ...any) []*Future {
	if nOut <= 0 {
		panic("compss: SubmitExecN needs nOut >= 1")
	}
	tc.checkExec(o)
	return tc.submit(o, nOut, nil, nil, args)
}

func (tc *TaskCtx) checkExec(o Opts) {
	if o.Exec == "" {
		panic("compss: SubmitExec needs Opts.Exec")
	}
	if !exec.Has(o.Exec) {
		panic(fmt.Sprintf("compss: Opts.Exec %q is not registered (exec.Register it at init)", o.Exec))
	}
}

// appendArgDep adds an argument dependency on task id, collapsing duplicate
// future arguments into one edge. ViaMaster follows floor membership: a
// value the context already synchronised travels through the master again.
func appendArgDep(deps []graph.Dep, id int, floor map[int]bool) []graph.Dep {
	for i := range deps {
		if deps[i].Task == id {
			return deps
		}
	}
	return append(deps, graph.Dep{Task: id, ViaMaster: floor[id]})
}

// submit is the single submission code path. Exactly one of fn1 / fnN is
// non-nil: Submit passes its TaskFunc as fn1 (no wrapping closure, and the
// single output value travels by copy, not through a fresh []any), SubmitN
// its MultiTaskFunc as fnN.
func (tc *TaskCtx) submit(o Opts, nOut int, fn1 TaskFunc, fnN MultiTaskFunc, args []any) []*Future {
	if o.Name == "" {
		o.Name = "task"
	}
	if o.Cores == 0 && o.GPUs == 0 {
		o.Cores = 1
	}

	// Dependency detection: futures in args, plus this context's sync
	// floor. Floor entries are tasks this context already synchronised on
	// (their values are at the master), so they only matter for virtual
	// time, never for real execution. An argument whose producer was also
	// synchronised carries its value through the master (ViaMaster); floor
	// entries that are not arguments are pure ordering (OrderOnly).
	//
	// The list is assembled straight into the graph.Dep slice — argument
	// deps first (deduplicated by a linear scan; fan-ins are small), then
	// the floor remainder — so the hot path builds no intermediate maps.
	nArg := 0
	for _, a := range args {
		switch v := a.(type) {
		case *Future:
			nArg++
		case []*Future:
			nArg += len(v)
		}
	}
	tc.mu.Lock()
	var gdeps []graph.Dep
	if n := nArg + len(tc.floor); n > 0 {
		gdeps = make([]graph.Dep, 0, n)
	}
	for _, a := range args {
		switch v := a.(type) {
		case *Future:
			gdeps = appendArgDep(gdeps, v.st.id, tc.floor)
		case []*Future:
			for _, f := range v {
				gdeps = appendArgDep(gdeps, f.st.id, tc.floor)
			}
		}
	}
	nArgDeps := len(gdeps)
	for id := range tc.floor {
		isArg := false
		for i := 0; i < nArgDeps; i++ {
			if gdeps[i].Task == id {
				isArg = true
				break
			}
		}
		if !isArg {
			gdeps = append(gdeps, graph.Dep{Task: id, ViaMaster: true, OrderOnly: true})
		}
	}
	tc.mu.Unlock()

	// Resolve the effective failure policy now, so the graph records what
	// the replay should emulate.
	retries := o.Retries
	if retries == 0 {
		retries = tc.rt.cfg.DefaultRetries
	}
	if retries < 0 || tc.rt.cfg.OnTaskFailure == FailFast {
		retries = 0 // negative Opts.Retries is an explicit opt-out
	}
	backoff := o.Backoff
	if backoff <= 0 {
		backoff = tc.rt.cfg.DefaultBackoff
	}
	if backoff < 0 {
		backoff = 0
	}
	o.Retries, o.Backoff = retries, backoff

	id, occ := tc.rt.g.AddCounted(graph.Task{
		Name:       o.Name,
		Parent:     tc.parent,
		Deps:       gdeps,
		Cost:       o.Cost,
		Cores:      o.Cores,
		GPUs:       o.GPUs,
		OutBytes:   o.OutBytes,
		Retries:    retries,
		BackoffSec: backoff,
	})

	st := &taskState{
		id: id, name: o.Name, occ: occ, opts: o, retries: retries,
		done: make(chan struct{}),
	}
	var futs []*Future
	if nOut == 1 {
		st.vals = st.val1[:]
		st.fut1 = Future{st: st}
		st.futp1[0] = &st.fut1
		futs = st.futp1[:]
	} else {
		st.vals = make([]any, nOut)
		futs = make([]*Future, nOut)
		for i := range futs {
			futs[i] = &Future{st: st, idx: i}
		}
	}

	tc.rt.mu.Lock()
	tc.rt.all = append(tc.rt.all, st)
	if tc.rt.byID == nil {
		tc.rt.byID = map[int]*taskState{}
	}
	tc.rt.byID[id] = st
	tc.rt.mu.Unlock()
	tc.mu.Lock()
	tc.submitted = append(tc.submitted, futs[0])
	tc.mu.Unlock()

	// Emit before the run goroutine spawns so Submit is causally first in
	// the task's event sequence.
	tc.rt.emit(EventSubmit, st, -1, nil, "", false)
	go tc.rt.run(st, id, nOut, fn1, fnN, args)
	return futs
}

// run executes a task: resolve dependencies, then loop over attempts —
// acquire a worker slot, run the body (with panic containment, deadline and
// fault injection), wait for the attempt's nested children — retrying while
// the budget lasts, and finally publish the value, the declared fallback
// (Degrade), or the failure. Each transition emits the matching Observer
// event (see observer.go for the guaranteed per-task sequences); the
// StatsObserver derives the legacy TaskStats entirely from this stream.
func (rt *Runtime) run(st *taskState, id, nOut int, fn1 TaskFunc, fnN MultiTaskFunc, args []any) {
	defer close(st.done)

	// Resolve arguments outside the worker slot so blocked tasks do not
	// hold execution capacity. A failed dependency means this task never
	// runs — it still emits a terminal "deps" failure event so observers
	// (and through them StatsSummary) account for every graph node.
	resolved := make([]any, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case *Future:
			val, err := v.wait()
			if err != nil {
				rt.failDeps(st, err)
				return
			}
			resolved[i] = val
		case []*Future:
			vals := make([]any, len(v))
			for j, f := range v {
				val, err := f.wait()
				if err != nil {
					rt.failDeps(st, err)
					return
				}
				vals[j] = val
			}
			resolved[i] = vals
		default:
			resolved[i] = a
		}
	}
	rt.emit(EventDepsReady, st, -1, nil, "", false)

	for attempt := 0; ; attempt++ {
		rt.sem <- struct{}{}
		rt.emit(EventStart, st, attempt, nil, "", false)
		// Attempt 0 uses the context embedded in the taskState; retries get
		// a fresh one, because an abandoned (timed-out) attempt keeps using
		// its context concurrently with the retry.
		var child *TaskCtx
		if attempt == 0 {
			child = &st.ctx0
			child.rt, child.parent, child.insideTask, child.holdsSlot = rt, id, true, true
		} else {
			child = &TaskCtx{rt: rt, parent: id, insideTask: true, holdsSlot: true}
		}
		res := rt.execAttempt(st, child, attempt, nOut, fn1, fnN, resolved)
		if !res.slotLost {
			<-rt.sem
		}
		// The body is done and the slot released; End events are stamped
		// here so End−Start measures body execution, not the bookkeeping
		// (nested-children wait) below.
		bodyDone := time.Now()

		if res.mode == "timeout" {
			// Do not wait for the abandoned attempt's children: Deadline
			// bounds this task's recovery, and Barrier skips child errors an
			// ancestor's retry absorbed. Children that can hang forever must
			// carry their own Deadline, or Barrier will wait on them.
		} else {
			// An attempt is not complete until its children are; a child
			// failure fails the attempt, so the retry covers the whole
			// nested subtree.
			cerr := child.waitSubmitted()
			if res.err == nil && cerr != nil {
				res = attemptResult{
					err:  &TaskError{ID: id, Name: st.name, Err: fmt.Errorf("nested task failed: %w", cerr)},
					mode: "error",
					frac: 1,
				}
			}
		}
		if res.err == nil {
			if res.vals != nil {
				st.vals = res.vals
			} else {
				st.vals[0] = res.val // single-output fast path (nOut == 1)
			}
			rt.emitAt(EventEnd, st, attempt, bodyDone, nil, "", false, res.worker)
			break
		}
		rt.g.RecordFailure(graph.FailureEvent{
			Task: id, Attempt: attempt, Mode: res.mode, CostFraction: res.frac, At: bodyDone,
		})
		if attempt < st.retries {
			rt.emitAt(EventFailure, st, attempt, bodyDone, res.err, res.mode, false, res.worker)
			rt.emit(EventRetry, st, attempt+1, nil, "", false)
			continue
		}
		if rt.cfg.OnTaskFailure == Degrade {
			if vals, ok := fallbackValues(st.opts.Fallback, nOut); ok {
				st.vals = vals
				st.degraded = true
				rt.g.MarkDegraded(id)
				rt.emitAt(EventFailure, st, attempt, bodyDone, res.err, res.mode, false, res.worker)
				rt.emit(EventDegrade, st, attempt, nil, "", false)
				break
			}
		}
		st.err = res.err
		rt.emitAt(EventFailure, st, attempt, bodyDone, res.err, res.mode, true, res.worker)
		break
	}
}

// failDeps records a dep-resolution failure: a collapsed DepError, surfaced
// to observers as a terminal Failure with Attempt -1 and Mode "deps".
func (rt *Runtime) failDeps(st *taskState, err error) {
	st.err = depError(st.id, st.name, err)
	rt.emit(EventFailure, st, -1, st.err, "deps", true)
}

// attemptResult is one attempt's outcome; mode and frac feed the graph's
// failure record when err is non-nil.
type attemptResult struct {
	vals []any
	val  any // the output when vals is nil: single-output bodies pass it by copy
	err  error
	mode string  // "error", "panic" or "timeout"
	frac float64 // virtual cost fraction consumed before the failure instant
	// slotLost reports that the attempt's worker slot is already back in the
	// pool (the timed-out body was parked in blockingWait when abandoned),
	// so the run loop must not release it a second time.
	slotLost bool
	// worker identifies the execution-backend worker that ran the attempt;
	// "" for in-process execution (including every non-Exec task).
	worker string
}

// execAttempt runs one attempt of the task body inside the caller's worker
// slot: fault injection swaps the body for a doomed one, a deadline races it
// against a timer, and panics become errors.
func (rt *Runtime) execAttempt(st *taskState, child *TaskCtx, attempt, nOut int, fn1 TaskFunc, fnN MultiTaskFunc, resolved []any) attemptResult {
	frac := 1.0
	var cancel chan struct{}
	if f := rt.cfg.Faults.match(st.id, st.name, st.occ, attempt); f != nil {
		frac = f.fraction()
		mode := f.Mode
		if mode == FaultHang && st.opts.Deadline <= 0 {
			mode = FaultError // nothing would ever cancel the hang
		}
		if mode == FaultHang {
			cancel = make(chan struct{})
		}
		fn1, fnN = nil, injectedBody(st, attempt, mode, cancel)
	}

	runBody := func() (res attemptResult) {
		defer func() {
			if r := recover(); r != nil {
				res = attemptResult{
					err:  &TaskError{ID: st.id, Name: st.name, Err: fmt.Errorf("panic: %v", r)},
					mode: "panic",
					frac: frac,
				}
			}
		}()
		switch {
		case fn1 != nil:
			v, err := fn1(child, resolved)
			if err != nil {
				return attemptResult{err: &TaskError{ID: st.id, Name: st.name, Err: err}, mode: "error", frac: frac}
			}
			return attemptResult{val: v}
		case fnN != nil:
			vals, err := fnN(child, resolved)
			switch {
			case err != nil:
				return attemptResult{err: &TaskError{ID: st.id, Name: st.name, Err: err}, mode: "error", frac: frac}
			case len(vals) != nOut:
				return attemptResult{
					err:  &TaskError{ID: st.id, Name: st.name, Err: fmt.Errorf("returned %d values, declared %d", len(vals), nOut)},
					mode: "error",
					frac: 1,
				}
			}
			return attemptResult{vals: vals}
		default:
			// Exec-named body (SubmitExec): dispatch through the backend.
			// Injected faults never reach here — the injected body replaced
			// fnN above, so a fault-plan entry fails the attempt without a
			// wire round-trip, exactly as it bypasses closure bodies.
			return rt.execBody(st, nOut, resolved)
		}
	}

	d := st.opts.Deadline
	if d <= 0 {
		return runBody()
	}
	ch := make(chan attemptResult, 1)
	go func() { ch <- runBody() }()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res
	case <-timer.C:
		// Abandon the attempt: its goroutine keeps running but its result is
		// discarded, and its context stops touching the worker semaphore.
		// Atomically take the slot away from the body: if it still holds one
		// (it is computing), the run loop releases it as usual; if it is
		// parked in blockingWait, the slot is already back in the pool and
		// must not be consumed again.
		child.slotMu.Lock()
		child.abandoned = true
		held := child.holdsSlot
		child.holdsSlot = false
		child.slotMu.Unlock()
		if cancel != nil {
			close(cancel)
		}
		return attemptResult{
			err: &TaskError{ID: st.id, Name: st.name,
				Err: fmt.Errorf("attempt %d: %w (deadline %v)", attempt, ErrDeadlineExceeded, d)},
			mode:     "timeout",
			frac:     1, // the node was held until the deadline fired
			slotLost: !held,
		}
	}
}

// execBody runs one attempt of an Opts.Exec-named task. With a Backend
// attached the attempt is the backend's problem (an exec.Remote ships it to
// a worker process and the returned worker id lands on the End/Failure
// event); without one it is a direct registry call — the single-output
// local path passes the value by copy, so an in-process exec task costs the
// same as a closure body.
func (rt *Runtime) execBody(st *taskState, nOut int, resolved []any) attemptResult {
	name := st.opts.Exec
	if be := rt.cfg.Backend; be != nil {
		vals, worker, err := be.Execute(name, nOut, resolved)
		if err != nil {
			return attemptResult{
				err:    &TaskError{ID: st.id, Name: st.name, Err: err},
				mode:   "error",
				frac:   1,
				worker: worker,
			}
		}
		if nOut == 1 {
			return attemptResult{val: vals[0], worker: worker}
		}
		return attemptResult{vals: vals, worker: worker}
	}
	f1, fN, ok := exec.Fns(name)
	if f1 != nil && nOut == 1 {
		v, err := f1(resolved)
		if err != nil {
			return attemptResult{err: &TaskError{ID: st.id, Name: st.name, Err: err}, mode: "error", frac: 1}
		}
		return attemptResult{val: v}
	}
	var vals []any
	var err error
	switch {
	case !ok:
		err = fmt.Errorf("exec function %q is not registered", name)
	case fN == nil:
		err = fmt.Errorf("exec function %q has 1 output, %d declared", name, nOut)
	default:
		vals, err = fN(resolved)
		if err == nil && len(vals) != nOut {
			err = fmt.Errorf("exec function %q returned %d values, declared %d", name, len(vals), nOut)
		}
	}
	if err != nil {
		return attemptResult{err: &TaskError{ID: st.id, Name: st.name, Err: err}, mode: "error", frac: 1}
	}
	return attemptResult{vals: vals}
}

// fallbackValues validates a declared fallback against the task's output
// arity, returning the values to publish.
func fallbackValues(fb any, nOut int) ([]any, bool) {
	if fb == nil {
		return nil, false
	}
	if nOut == 1 {
		return []any{fb}, true
	}
	if vs, ok := fb.([]any); ok && len(vs) == nOut {
		return vs, true
	}
	return nil, false
}

// Get blocks until f's value is available and raises this context's sync
// floor: tasks submitted afterwards in this context will not start, in
// virtual time, before the synchronised data reached the master process.
func (tc *TaskCtx) Get(f *Future) (any, error) {
	v, err := tc.blockingWait(f)
	tc.mu.Lock()
	if tc.floor == nil {
		tc.floor = map[int]bool{}
	}
	tc.floor[f.st.id] = true
	tc.mu.Unlock()
	return v, err
}

// blockingWait waits for a future; when called from inside a task body it
// releases the worker slot while blocked so nested tasks cannot deadlock
// the pool. An abandoned attempt (deadline overrun) no longer owns a slot
// and must wait without the release/reacquire dance; abandonment can also
// land while the body is parked here, in which case the slot stays with the
// pool (the retry owns that capacity) and the body resumes slotless.
func (tc *TaskCtx) blockingWait(f *Future) (any, error) {
	if !tc.insideTask {
		return f.wait()
	}
	tc.slotMu.Lock()
	if tc.abandoned || !tc.holdsSlot {
		tc.slotMu.Unlock()
		return f.wait()
	}
	select {
	case <-f.st.done: // already resolved, keep the slot
		tc.slotMu.Unlock()
		return f.wait()
	default:
	}
	// Park: hand the slot back. The receive never blocks — this attempt
	// holds a slot, so the pool has at least its token.
	<-tc.rt.sem
	tc.holdsSlot = false
	tc.slotMu.Unlock()

	<-f.st.done

	// Reacquire before resuming the body, unless the attempt was abandoned
	// while parked — its deadline handler saw holdsSlot == false and left
	// the capacity to the retry.
	tc.slotMu.Lock()
	if tc.abandoned {
		tc.slotMu.Unlock()
		return f.wait()
	}
	tc.slotMu.Unlock()
	tc.rt.sem <- struct{}{}
	tc.slotMu.Lock()
	if tc.abandoned {
		// Abandoned while blocked on the reacquire: return the token. The
		// receive never blocks — the send above put a token in the pool and
		// every other holder only ever receives its own.
		tc.slotMu.Unlock()
		<-tc.rt.sem
		return f.wait()
	}
	tc.holdsSlot = true
	tc.slotMu.Unlock()
	return f.wait()
}

// WaitAll is a local barrier: it waits for every task submitted through
// this context and raises the floor past all of them. It returns the first
// error among them (in submission order).
func (tc *TaskCtx) WaitAll() error {
	tc.mu.Lock()
	snapshot := make([]*Future, len(tc.submitted))
	copy(snapshot, tc.submitted)
	tc.mu.Unlock()

	var first error
	for _, f := range snapshot {
		if _, err := tc.blockingWait(f); err != nil && first == nil {
			first = err
		}
	}
	tc.mu.Lock()
	if tc.floor == nil {
		tc.floor = map[int]bool{}
	}
	for _, f := range snapshot {
		tc.floor[f.st.id] = true
	}
	tc.mu.Unlock()
	return first
}

// waitSubmitted waits for this context's tasks without floor bookkeeping;
// used for the implicit wait when a task body returns. The caller's worker
// slot is already released at that point.
func (tc *TaskCtx) waitSubmitted() error {
	tc.mu.Lock()
	snapshot := make([]*Future, len(tc.submitted))
	copy(snapshot, tc.submitted)
	tc.mu.Unlock()
	var first error
	for _, f := range snapshot {
		if _, err := f.wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// barrierAll waits for every task in the runtime (main Barrier). Failures
// compensated upstream — a nested task whose parent retried past it or
// degraded to its fallback — are not the workflow's failures and are
// skipped; the first unabsorbed error in submission order is returned.
func (tc *TaskCtx) barrierAll() error {
	tc.rt.mu.Lock()
	snapshot := make([]*taskState, len(tc.rt.all))
	copy(snapshot, tc.rt.all)
	tc.rt.mu.Unlock()

	var first error
	tc.mu.Lock()
	if tc.floor == nil {
		tc.floor = map[int]bool{}
	}
	tc.mu.Unlock()
	for _, st := range snapshot {
		<-st.done
		if st.err != nil && first == nil && !tc.rt.errorAbsorbed(st) {
			first = st.err
		}
		tc.mu.Lock()
		tc.floor[st.id] = true
		tc.mu.Unlock()
	}
	return first
}

// errorAbsorbed reports whether st's failure was compensated upstream: some
// ancestor task ultimately published a value (via a later attempt whose
// resubmitted children succeeded, or via its fallback), so the workflow as
// a whole moved past this failure.
func (rt *Runtime) errorAbsorbed(st *taskState) bool {
	t, ok := rt.g.Task(st.id)
	if !ok {
		return false
	}
	for p := t.Parent; p >= 0; {
		rt.mu.Lock()
		ps := rt.byID[p]
		rt.mu.Unlock()
		if ps == nil {
			return false
		}
		<-ps.done
		if ps.err == nil {
			return true
		}
		pt, ok := rt.g.Task(p)
		if !ok {
			return false
		}
		p = pt.Parent
	}
	return false
}

// GetAll resolves a slice of futures with Get semantics and returns the
// values. It fails on the first error.
func (tc *TaskCtx) GetAll(fs []*Future) ([]any, error) {
	out := make([]any, len(fs))
	for i, f := range fs {
		v, err := tc.Get(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
