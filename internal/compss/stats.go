package compss

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TaskStat records the real execution of one task (wall-clock, not virtual
// time): useful for profiling the Go implementation itself and for
// validating that the analytic cost model orders kernels sensibly.
type TaskStat struct {
	ID       int
	Name     string
	WaitDeps time.Duration // submission → dependencies resolved
	Queued   time.Duration // dependencies resolved → body start (worker-slot wait), summed over attempts
	Duration time.Duration // body execution, summed over attempts
	Attempts int           // executed attempts; 0 means a dependency failed and the body never ran
	Degraded bool          // the published value is the declared fallback
}

// statsRecorder accumulates TaskStats when enabled.
type statsRecorder struct {
	mu    sync.Mutex
	on    bool
	stats []TaskStat
}

func (r *statsRecorder) add(s TaskStat) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.on {
		r.stats = append(r.stats, s)
	}
}

// EnableStats switches on real-execution profiling for subsequently
// submitted tasks.
func (rt *Runtime) EnableStats() { rt.rec.mu.Lock(); rt.rec.on = true; rt.rec.mu.Unlock() }

// Stats returns a snapshot of the recorded task executions.
func (rt *Runtime) Stats() []TaskStat {
	rt.rec.mu.Lock()
	defer rt.rec.mu.Unlock()
	out := make([]TaskStat, len(rt.rec.stats))
	copy(out, rt.rec.stats)
	return out
}

// StatsByName aggregates total real execution time per task name.
func (rt *Runtime) StatsByName() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, s := range rt.Stats() {
		out[s.Name] += s.Duration
	}
	return out
}

// StatsSummary renders a per-name profile table sorted by total execution
// time, with the aggregate dependency wait (wait) and worker-slot wait
// (queued) alongside — the split separates "blocked on the graph" from
// "blocked on capacity".
func (rt *Runtime) StatsSummary() string {
	type row struct {
		name                string
		total, wait, queued time.Duration
		count, retries      int
	}
	agg := map[string]*row{}
	for _, s := range rt.Stats() {
		r, ok := agg[s.Name]
		if !ok {
			r = &row{name: s.Name}
			agg[s.Name] = r
		}
		r.total += s.Duration
		r.wait += s.WaitDeps
		r.queued += s.Queued
		r.count++
		if s.Attempts > 1 {
			r.retries += s.Attempts - 1
		}
	}
	rows := make([]*row, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %8s %12s %10s %10s %8s\n", "task", "total", "count", "mean", "wait", "queued", "retries")
	for _, r := range rows {
		mean := time.Duration(0)
		if r.count > 0 {
			mean = r.total / time.Duration(r.count)
		}
		fmt.Fprintf(&b, "%-20s %10s %8d %12s %10s %10s %8d\n", r.name, r.total.Round(time.Microsecond), r.count,
			mean.Round(time.Microsecond), r.wait.Round(time.Microsecond), r.queued.Round(time.Microsecond), r.retries)
	}
	return b.String()
}
