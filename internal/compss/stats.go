package compss

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// AttemptStat is the timing of one executed attempt of a task: how long it
// waited for a worker slot after becoming runnable, how long its body ran,
// and how it ended. The per-attempt split is what makes retry cost
// attributable — TaskStat.Queued/Duration are its sums.
type AttemptStat struct {
	Queued  time.Duration // runnable (deps ready / retry queued) → body start
	Run     time.Duration // body start → body return
	Outcome string        // "ok", "error", "panic" or "timeout"
	Stolen  bool          // the attempt ran on a worker that stole the task
}

// TaskStat records the real execution of one task (wall-clock, not virtual
// time): useful for profiling the Go implementation itself and for
// validating that the analytic cost model orders kernels sensibly.
type TaskStat struct {
	ID       int
	Name     string
	WaitDeps time.Duration // submission → dependencies resolved
	Queued   time.Duration // dependencies resolved → body start (worker-slot wait), summed over attempts
	Duration time.Duration // body execution, summed over attempts
	Attempts int           // executed attempts; 0 means a dependency failed and the body never ran
	// QueuedStolen is the portion of Queued charged to attempts another
	// worker stole: the task waited that long on its origin deque before a
	// thief took it. Queued − QueuedStolen is the locally-dispatched wait,
	// so the split shows whether slot-wait time comes from a busy owner or
	// from steal migration latency.
	QueuedStolen time.Duration
	// Stolen counts the attempts that ran via a steal; Attempts − Stolen ran
	// on the worker that enqueued them (or the enqueuing goroutine itself).
	Stolen int
	// PerAttempt breaks Queued/Duration down attempt by attempt, in attempt
	// order; len(PerAttempt) == Attempts.
	PerAttempt []AttemptStat
	Failed     bool // the task's terminal outcome was a failure (deps or exhausted attempts)
	Degraded   bool // the published value is the declared fallback
}

// statBuild accumulates one task's in-flight timings between its Submit
// event and its terminal event.
type statBuild struct {
	submitted time.Time
	runnable  time.Time // deps-ready or retry instant: start of the current slot wait
	started   time.Time // current attempt's body start
	stat      TaskStat
}

// StatsObserver is the built-in profiling Observer: it folds the runtime's
// event stream back into per-task TaskStats, preserving the semantics of the
// pre-Observer stats recorder (WaitDeps / Queued / Duration split, one stat
// per submitted task, dep-failed tasks included) while adding the
// per-attempt breakdown. Attach it via Config.Observers.
type StatsObserver struct {
	mu    sync.Mutex
	open  map[int]*statBuild
	stats []TaskStat
}

// NewStatsObserver returns an empty stats sink.
func NewStatsObserver() *StatsObserver {
	return &StatsObserver{open: map[int]*statBuild{}}
}

var _ Observer = (*StatsObserver)(nil)

func (s *StatsObserver) OnSubmit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.open[ev.Task] = &statBuild{
		submitted: ev.Time,
		stat:      TaskStat{ID: ev.Task, Name: ev.Name},
	}
}

func (s *StatsObserver) OnDepsReady(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.open[ev.Task]; b != nil {
		b.stat.WaitDeps = ev.Time.Sub(b.submitted)
		b.runnable = ev.Time
	}
}

func (s *StatsObserver) OnStart(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.open[ev.Task]; b != nil {
		q := ev.Time.Sub(b.runnable)
		b.started = ev.Time
		b.stat.Queued += q
		if ev.Stolen {
			b.stat.QueuedStolen += q
			b.stat.Stolen++
		}
		b.stat.Attempts++
		b.stat.PerAttempt = append(b.stat.PerAttempt, AttemptStat{Queued: q, Stolen: ev.Stolen})
	}
}

func (s *StatsObserver) OnEnd(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.open[ev.Task]; b != nil {
		b.closeAttempt(ev.Time, "ok")
		s.finalize(ev.Task, b)
	}
}

func (s *StatsObserver) OnRetry(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.open[ev.Task]; b != nil {
		b.runnable = ev.Time
	}
}

func (s *StatsObserver) OnFailure(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.open[ev.Task]
	if b == nil {
		return
	}
	if ev.Attempt < 0 { // dependency failure: the body never ran
		b.stat.WaitDeps = ev.Time.Sub(b.submitted)
		b.stat.Failed = true
		s.finalize(ev.Task, b)
		return
	}
	b.closeAttempt(ev.Time, ev.Mode)
	if ev.Final {
		b.stat.Failed = true
		s.finalize(ev.Task, b)
	}
}

func (s *StatsObserver) OnDegrade(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.open[ev.Task]; b != nil {
		b.stat.Degraded = true
		s.finalize(ev.Task, b)
	}
}

// closeAttempt charges the current attempt's body time and outcome.
func (b *statBuild) closeAttempt(end time.Time, outcome string) {
	d := end.Sub(b.started)
	b.stat.Duration += d
	if n := len(b.stat.PerAttempt); n > 0 {
		b.stat.PerAttempt[n-1].Run = d
		b.stat.PerAttempt[n-1].Outcome = outcome
	}
}

// finalize moves a finished build into the stats snapshot. Caller holds s.mu.
func (s *StatsObserver) finalize(task int, b *statBuild) {
	s.stats = append(s.stats, b.stat)
	delete(s.open, task)
}

// Stats returns a snapshot of the completed tasks' stats, in completion
// order.
func (s *StatsObserver) Stats() []TaskStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TaskStat, len(s.stats))
	copy(out, s.stats)
	return out
}

// ByName aggregates total real execution time per task name.
func (s *StatsObserver) ByName() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, t := range s.Stats() {
		out[t.Name] += t.Duration
	}
	return out
}

// Summary renders a per-name profile table sorted by total execution time,
// with the aggregate dependency wait (wait) and worker-slot wait (queued)
// alongside — the split separates "blocked on the graph" from "blocked on
// capacity". The retries/failed/degraded columns keep the three failure
// outcomes apart: a retried task recovered, a failed one poisoned its
// dependents, a degraded one published its declared fallback.
func (s *StatsObserver) Summary() string {
	type row struct {
		name                string
		total, wait, queued time.Duration
		qstolen             time.Duration
		count, retries      int
		stolen              int
		failed, degraded    int
	}
	agg := map[string]*row{}
	for _, t := range s.Stats() {
		r, ok := agg[t.Name]
		if !ok {
			r = &row{name: t.Name}
			agg[t.Name] = r
		}
		r.total += t.Duration
		r.wait += t.WaitDeps
		r.queued += t.Queued
		r.qstolen += t.QueuedStolen
		r.stolen += t.Stolen
		r.count++
		if t.Attempts > 1 {
			r.retries += t.Attempts - 1
		}
		switch {
		case t.Degraded:
			r.degraded++
		case t.Failed:
			r.failed++
		}
	}
	rows := make([]*row, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %8s %12s %10s %10s %10s %7s %8s %7s %9s\n",
		"task", "total", "count", "mean", "wait", "queued", "q-stolen", "stolen", "retries", "failed", "degraded")
	for _, r := range rows {
		mean := time.Duration(0)
		if r.count > 0 {
			mean = r.total / time.Duration(r.count)
		}
		fmt.Fprintf(&b, "%-20s %10s %8d %12s %10s %10s %10s %7d %8d %7d %9d\n", r.name, r.total.Round(time.Microsecond), r.count,
			mean.Round(time.Microsecond), r.wait.Round(time.Microsecond), r.queued.Round(time.Microsecond),
			r.qstolen.Round(time.Microsecond), r.stolen, r.retries, r.failed, r.degraded)
	}
	return b.String()
}
