package compss

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func failTask(err error) TaskFunc {
	return func(_ *TaskCtx, _ []any) (any, error) { return nil, err }
}

// Regression: tasks that never run because a dependency failed used to
// return before the stats recorder saw them, so the summary undercounted
// the workflow. Every submitted task must produce exactly one TaskStat.
func TestDepFailedTasksStillRecordStats(t *testing.T) {
	so := NewStatsObserver()
	rt := New(Config{Workers: 2, Observers: []Observer{so}})
	boom := errors.New("boom")
	bad := rt.Submit(Opts{Name: "bad"}, failTask(boom))
	d1 := rt.Submit(Opts{Name: "dep"}, constTask(1), bad)
	d2 := rt.Submit(Opts{Name: "dep"}, constTask(2), d1)
	rt.Submit(Opts{Name: "dep"}, constTask(3), d2)
	if err := rt.Barrier(); err == nil {
		t.Fatal("Barrier should report the failure")
	}
	stats := so.Stats()
	if got, want := len(stats), rt.Graph().Len(); got != want {
		t.Fatalf("recorded %d stats for %d tasks", got, want)
	}
	for _, s := range stats {
		if s.Name == "dep" {
			if s.Attempts != 0 {
				t.Fatalf("dep-failed task reports %d attempts, want 0", s.Attempts)
			}
			if s.Duration != 0 {
				t.Fatalf("dep-failed task reports nonzero Duration %v", s.Duration)
			}
		}
	}
	if !strings.Contains(so.Summary(), "dep") {
		t.Fatal("Summary lost the dep-failed tasks")
	}
}

// Regression: a failure propagating through a chain of dependents used to
// wrap "dependency failed" once per hop. The collapsed error mentions it
// once, errors.As recovers both the root TaskError and the consumer's
// DepError, and errors.Is still matches the root cause.
func TestDependencyErrorCollapses(t *testing.T) {
	rt := New(Config{Workers: 2})
	boom := errors.New("boom")
	a := rt.Submit(Opts{Name: "root"}, failTask(boom))
	b := rt.Submit(Opts{Name: "mid"}, constTask(1), a)
	c := rt.Submit(Opts{Name: "mid"}, constTask(2), b)
	d := rt.Submit(Opts{Name: "leaf"}, constTask(3), c)
	_, err := rt.Get(d)
	if err == nil {
		t.Fatal("leaf of a failed chain must error")
	}
	if n := strings.Count(err.Error(), "dependency failed"); n != 1 {
		t.Fatalf("want exactly one 'dependency failed' in %q, got %d", err, n)
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("no TaskError in %v", err)
	}
	if te.ID != a.TaskID() || te.Name != "root" {
		t.Fatalf("TaskError points at task %d (%s), want the root %d", te.ID, te.Name, a.TaskID())
	}
	var de *DepError
	if !errors.As(err, &de) {
		t.Fatalf("no DepError in %v", err)
	}
	if de.ID != d.TaskID() {
		t.Fatalf("DepError points at task %d, want the consumer %d", de.ID, d.TaskID())
	}
	if !errors.Is(err, boom) {
		t.Fatalf("errors.Is lost the root cause in %v", err)
	}
}

func TestRetryRecoversInjectedFault(t *testing.T) {
	so := NewStatsObserver()
	rt := New(Config{Workers: 2, Observers: []Observer{so}, Faults: &FaultPlan{Faults: []Fault{
		{Name: "r", Nth: 0, Attempts: 2, Mode: FaultError},
	}}})
	f := rt.Submit(Opts{Name: "r", Retries: 2}, constTask(42))
	v, err := rt.Get(f)
	if err != nil {
		t.Fatalf("task should recover on its third attempt: %v", err)
	}
	if v != 42 {
		t.Fatalf("retried task published %v, want the real body's 42", v)
	}
	evs := rt.Graph().FailureEvents()
	if len(evs) != 2 {
		t.Fatalf("want 2 failure events, got %d", len(evs))
	}
	for k, ev := range evs {
		if ev.Task != f.TaskID() || ev.Attempt != k || ev.Mode != "error" {
			t.Fatalf("event %d = %+v", k, ev)
		}
	}
	if got := rt.Graph().Attempts(f.TaskID()); got != 3 {
		t.Fatalf("graph reports %d attempts, want 3", got)
	}
	for _, s := range so.Stats() {
		if s.ID == f.TaskID() && s.Attempts != 3 {
			t.Fatalf("stat reports %d attempts, want 3", s.Attempts)
		}
	}
}

func TestRetriesExhaustedSurfacesInjectedFault(t *testing.T) {
	rt := New(Config{Workers: 1, Faults: &FaultPlan{Faults: []Fault{
		{Name: "doomed", Nth: 0, Attempts: -1, Mode: FaultError},
	}}})
	f := rt.Submit(Opts{Name: "doomed", Retries: 2}, constTask(1))
	_, err := rt.Get(f)
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("want ErrInjectedFault after exhausting retries, got %v", err)
	}
	if n := len(rt.Graph().FailureEvents()); n != 3 {
		t.Fatalf("want 3 failed attempts recorded, got %d", n)
	}
}

func TestFailFastIgnoresRetries(t *testing.T) {
	rt := New(Config{Workers: 1, OnTaskFailure: FailFast, DefaultRetries: 5,
		Faults: &FaultPlan{Faults: []Fault{{Name: "x", Nth: 0, Attempts: 1}}}})
	f := rt.Submit(Opts{Name: "x", Retries: 3}, constTask(1))
	_, err := rt.Get(f)
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("FailFast must surface the first failure, got %v", err)
	}
	if n := len(rt.Graph().FailureEvents()); n != 1 {
		t.Fatalf("FailFast ran %d attempts, want exactly 1", n)
	}
	tk, _ := rt.Graph().Task(f.TaskID())
	if tk.Retries != 0 {
		t.Fatalf("graph records retry budget %d under FailFast, want 0", tk.Retries)
	}
}

func TestPanicFaultRecordsPanicMode(t *testing.T) {
	rt := New(Config{Workers: 1, Faults: &FaultPlan{Faults: []Fault{
		{Name: "p", Nth: 0, Attempts: 1, Mode: FaultPanic},
	}}})
	f := rt.Submit(Opts{Name: "p", Retries: 1}, constTask(5))
	v, err := rt.Get(f)
	if err != nil || v != 5 {
		t.Fatalf("got (%v, %v), want recovery to 5", v, err)
	}
	evs := rt.Graph().FailureEvents()
	if len(evs) != 1 || evs[0].Mode != "panic" {
		t.Fatalf("events = %+v, want one panic-mode failure", evs)
	}
}

// Degrade: after the retry budget is spent, a task with a declared fallback
// publishes it instead of failing; dependents consume the fallback and
// Barrier reports a clean run (the degradation is visible in the graph).
func TestDegradePublishesFallback(t *testing.T) {
	so := NewStatsObserver()
	rt := New(Config{Workers: 2, OnTaskFailure: Degrade, Observers: []Observer{so},
		Faults: &FaultPlan{Faults: []Fault{{Name: "d", Nth: 0, Attempts: -1}}}})
	d := rt.Submit(Opts{Name: "d", Retries: 1, Fallback: 40}, constTask(999))
	sum := rt.Submit(Opts{Name: "consume"}, func(_ *TaskCtx, args []any) (any, error) {
		return args[0].(int) + 2, nil
	}, d)
	v, err := rt.Get(sum)
	if err != nil {
		t.Fatalf("dependent of a degraded task must run: %v", err)
	}
	if v != 42 {
		t.Fatalf("dependent saw %v, want fallback 40 + 2", v)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatalf("Barrier must be clean after degradation, got %v", err)
	}
	if !rt.Graph().IsDegraded(d.TaskID()) {
		t.Fatal("graph does not mark the task degraded")
	}
	var seen bool
	for _, s := range so.Stats() {
		if s.ID == d.TaskID() {
			seen = true
			if !s.Degraded {
				t.Fatal("TaskStat does not flag the degraded task")
			}
		}
	}
	if !seen {
		t.Fatal("degraded task missing from stats")
	}
}

func TestDegradeWithoutFallbackStillFails(t *testing.T) {
	rt := New(Config{Workers: 1, OnTaskFailure: Degrade,
		Faults: &FaultPlan{Faults: []Fault{{Name: "nf", Nth: 0, Attempts: -1}}}})
	f := rt.Submit(Opts{Name: "nf", Retries: 1}, constTask(1))
	if _, err := rt.Get(f); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("no fallback declared: failure must surface, got %v", err)
	}
}

// A deadline fails the attempt; the retry's body (which behaves) succeeds,
// and the timed-out attempt is recorded as mode "timeout".
func TestDeadlineTimesOutAttemptThenRetries(t *testing.T) {
	rt := New(Config{Workers: 2})
	var calls atomic.Int32
	f := rt.Submit(Opts{Name: "slow", Deadline: 40 * time.Millisecond, Retries: 1},
		func(_ *TaskCtx, _ []any) (any, error) {
			if calls.Add(1) == 1 {
				time.Sleep(400 * time.Millisecond)
			}
			return 7, nil
		})
	v, err := rt.Get(f)
	if err != nil || v != 7 {
		t.Fatalf("got (%v, %v), want the retry to publish 7", v, err)
	}
	evs := rt.Graph().FailureEvents()
	if len(evs) != 1 || evs[0].Mode != "timeout" {
		t.Fatalf("events = %+v, want one timeout", evs)
	}
}

func TestDeadlineExhaustedIsErrDeadlineExceeded(t *testing.T) {
	rt := New(Config{Workers: 2})
	f := rt.Submit(Opts{Name: "hang", Deadline: 30 * time.Millisecond},
		func(_ *TaskCtx, _ []any) (any, error) {
			time.Sleep(300 * time.Millisecond)
			return 1, nil
		})
	_, err := rt.Get(f)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Name != "hang" {
		t.Fatalf("timeout not wrapped in a TaskError: %v", err)
	}
}

// A FaultHang injection is only survivable with a deadline: the timer fires,
// the hung attempt is abandoned, and the retry runs the real body.
func TestHangFaultRecoveredByDeadline(t *testing.T) {
	rt := New(Config{Workers: 2, Faults: &FaultPlan{Faults: []Fault{
		{Name: "h", Nth: 0, Attempts: 1, Mode: FaultHang},
	}}})
	f := rt.Submit(Opts{Name: "h", Deadline: 40 * time.Millisecond, Retries: 1}, constTask(3))
	v, err := rt.Get(f)
	if err != nil || v != 3 {
		t.Fatalf("got (%v, %v), want recovery to 3", v, err)
	}
	evs := rt.Graph().FailureEvents()
	if len(evs) != 1 || evs[0].Mode != "timeout" {
		t.Fatalf("events = %+v, want one timeout from the hung attempt", evs)
	}
}

// Satellite regression: a nested child failing under retry must not deadlock
// blockingWait's slot release/reacquire with a single worker. The child's own
// retry recovers it while the parent is parked in Get.
func TestChildRetryUnderOneWorkerDoesNotDeadlock(t *testing.T) {
	rt := New(Config{Workers: 1, Faults: &FaultPlan{Faults: []Fault{
		{Name: "child", Nth: 0, Attempts: 2, Mode: FaultError},
	}}})
	parent := rt.Submit(Opts{Name: "parent"}, func(tc *TaskCtx, _ []any) (any, error) {
		c := tc.Submit(Opts{Name: "child", Retries: 2}, constTask(11))
		v, err := tc.Get(c)
		if err != nil {
			return nil, err
		}
		return v.(int) + 1, nil
	})
	v, err := rt.Get(parent)
	if err != nil || v != 12 {
		t.Fatalf("got (%v, %v), want 12", v, err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatalf("Barrier after recovered child retry: %v", err)
	}
}

// A fire-and-forget child that fails permanently fails the parent's attempt;
// the parent's retry resubmits the child (a fresh occurrence that the plan
// leaves alone) and succeeds. Barrier must not dredge up the absorbed
// first-occurrence failure.
func TestParentRetryAbsorbsChildFailure(t *testing.T) {
	rt := New(Config{Workers: 1, Faults: &FaultPlan{Faults: []Fault{
		{Name: "child", Nth: 0, Attempts: -1, Mode: FaultError},
	}}})
	var out atomic.Int32
	parent := rt.Submit(Opts{Name: "parent", Retries: 1}, func(tc *TaskCtx, _ []any) (any, error) {
		tc.Submit(Opts{Name: "child"}, func(_ *TaskCtx, _ []any) (any, error) {
			out.Store(21)
			return nil, nil
		})
		return "done", nil
	})
	v, err := rt.Get(parent)
	if err != nil || v != "done" {
		t.Fatalf("got (%v, %v), want the parent's retry to succeed", v, err)
	}
	if out.Load() != 21 {
		t.Fatal("resubmitted child never ran its real body")
	}
	if err := rt.Barrier(); err != nil {
		t.Fatalf("Barrier reports an absorbed child failure: %v", err)
	}
}

// Barrier must still report the first *unrecovered* error in submission
// order: a task that failed once but was retried to success does not count,
// and of two permanent failures the earlier submission wins even if it
// finishes later.
func TestBarrierFirstErrorOrderAfterRetries(t *testing.T) {
	rt := New(Config{Workers: 2, Faults: &FaultPlan{Faults: []Fault{
		{Name: "flaky", Nth: 0, Attempts: 1, Mode: FaultError},
	}}})
	rt.Submit(Opts{Name: "flaky", Retries: 2}, constTask(1))
	bad1 := errors.New("bad1")
	bad2 := errors.New("bad2")
	rt.Submit(Opts{Name: "bad1"}, func(_ *TaskCtx, _ []any) (any, error) {
		time.Sleep(80 * time.Millisecond) // finish after bad2
		return nil, bad1
	})
	rt.Submit(Opts{Name: "bad2"}, failTask(bad2))
	err := rt.Barrier()
	if !errors.Is(err, bad1) {
		t.Fatalf("Barrier returned %v, want bad1 (first failed submission)", err)
	}
	if errors.Is(err, bad2) {
		t.Fatal("Barrier leaked the later failure")
	}
}

// Fault occurrence counting is per name: EveryNth targets the Nth submission
// of any name, while Name+Nth targets one specific occurrence.
func TestFaultMatchingByOccurrence(t *testing.T) {
	rt := New(Config{Workers: 1, Faults: &FaultPlan{Faults: []Fault{
		{Name: "w", Nth: 1, Attempts: -1, Mode: FaultError},
	}}})
	f0 := rt.Submit(Opts{Name: "w"}, constTask(0))
	f1 := rt.Submit(Opts{Name: "w"}, constTask(1))
	f2 := rt.Submit(Opts{Name: "w"}, constTask(2))
	if _, err := rt.Get(f0); err != nil {
		t.Fatalf("occurrence 0 should survive: %v", err)
	}
	if _, err := rt.Get(f1); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("occurrence 1 should be killed, got %v", err)
	}
	if _, err := rt.Get(f2); err != nil {
		t.Fatalf("occurrence 2 should survive: %v", err)
	}
}

// Regression (review): with a single worker, a parent whose deadline fires
// while it is parked in Get on a slow child used to corrupt the semaphore
// accounting — the timeout handler consumed a token the parked body had
// already given back, the child then hung on its own release, and the
// workflow deadlocked. The retry must recover, and the pool must still be
// exactly Workers wide afterwards.
func TestDeadlineAbandonWhileParkedInGetDoesNotDeadlock(t *testing.T) {
	rt := New(Config{Workers: 1})
	var parentRuns atomic.Int32
	parent := rt.Submit(Opts{Name: "parent", Deadline: 50 * time.Millisecond, Retries: 1},
		func(tc *TaskCtx, _ []any) (any, error) {
			slow := parentRuns.Add(1) == 1
			c := tc.Submit(Opts{Name: "child"}, func(_ *TaskCtx, _ []any) (any, error) {
				if slow {
					time.Sleep(250 * time.Millisecond) // outlives the parent's deadline
				}
				return 5, nil
			})
			v, err := tc.Get(c) // parks, releasing the only slot
			if err != nil {
				return nil, err
			}
			return v.(int) + 1, nil
		})

	type outcome struct {
		v   any
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		v, err := rt.Get(parent)
		done <- outcome{v, err}
	}()
	select {
	case o := <-done:
		if o.err != nil || o.v != 6 {
			t.Fatalf("got (%v, %v), want the retry to publish 6", o.v, o.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("workflow deadlocked after deadline abandonment")
	}
	barrier := make(chan error, 1)
	go func() { barrier <- rt.Barrier() }()
	select {
	case err := <-barrier:
		if err != nil {
			t.Fatalf("Barrier after recovery: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Barrier deadlocked after deadline abandonment")
	}

	// The pool must still be exactly one slot wide: if the abandonment
	// leaked a token, these probes overlap; if it lost one, they hang.
	var cur, peak atomic.Int32
	probe := func(_ *TaskCtx, _ []any) (any, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		cur.Add(-1)
		return nil, nil
	}
	rt.Submit(Opts{Name: "probe"}, probe)
	rt.Submit(Opts{Name: "probe"}, probe)
	go func() { barrier <- rt.Barrier() }()
	select {
	case err := <-barrier:
		if err != nil {
			t.Fatalf("probe Barrier: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker pool lost a slot to the abandoned attempt")
	}
	if p := peak.Load(); p != 1 {
		t.Fatalf("peak concurrency %d with Workers=1: abandonment leaked a slot", p)
	}
}

// Regression (review): a deadline retry must not wait for the abandoned
// attempt's still-running children — Opts.Deadline bounds the task's own
// recovery. With spare capacity the retry completes while the abandoned
// child is still asleep; Barrier still waits for (and absorbs) it.
func TestDeadlineRetryDoesNotWaitForAbandonedChildren(t *testing.T) {
	rt := New(Config{Workers: 2})
	var attempts atomic.Int32
	start := time.Now()
	parent := rt.Submit(Opts{Name: "parent", Deadline: 50 * time.Millisecond, Retries: 1},
		func(tc *TaskCtx, _ []any) (any, error) {
			if attempts.Add(1) == 1 {
				c := tc.Submit(Opts{Name: "lingering"}, func(_ *TaskCtx, _ []any) (any, error) {
					time.Sleep(1200 * time.Millisecond)
					return nil, nil
				})
				tc.Get(c) // parks past the deadline
			}
			return "ok", nil
		})
	v, err := rt.Get(parent)
	if err != nil || v != "ok" {
		t.Fatalf("got (%v, %v), want the retry to publish ok", v, err)
	}
	if el := time.Since(start); el > 600*time.Millisecond {
		t.Fatalf("retry took %v — it waited for the abandoned child", el)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatalf("Barrier after recovery: %v", err)
	}
}

// Regression (review): Opts.Retries < 0 is an explicit opt-out that beats a
// positive Config.DefaultRetries — exactly one attempt runs.
func TestNegativeRetriesOptsOutOfDefault(t *testing.T) {
	rt := New(Config{Workers: 1, DefaultRetries: 3, Faults: &FaultPlan{Faults: []Fault{
		{Name: "once", Nth: 0, Attempts: -1, Mode: FaultError},
	}}})
	f := rt.Submit(Opts{Name: "once", Retries: -1}, constTask(1))
	if _, err := rt.Get(f); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("want the injected failure to surface, got %v", err)
	}
	if n := len(rt.Graph().FailureEvents()); n != 1 {
		t.Fatalf("ran %d attempts, want exactly 1", n)
	}
	tk, _ := rt.Graph().Task(f.TaskID())
	if tk.Retries != 0 {
		t.Fatalf("graph records retry budget %d, want 0", tk.Retries)
	}
}

// Runtime-level defaults apply when Opts stay zero, and per-task Opts win.
func TestDefaultRetriesFromConfig(t *testing.T) {
	rt := New(Config{Workers: 1, DefaultRetries: 2, Faults: &FaultPlan{Faults: []Fault{
		{Name: "a", Nth: 0, Attempts: 2, Mode: FaultError},
	}}})
	f := rt.Submit(Opts{Name: "a"}, constTask(9))
	v, err := rt.Get(f)
	if err != nil || v != 9 {
		t.Fatalf("DefaultRetries not honoured: (%v, %v)", v, err)
	}
	tk, _ := rt.Graph().Task(f.TaskID())
	if tk.Retries != 2 {
		t.Fatalf("graph records retry budget %d, want the default 2", tk.Retries)
	}
}
