package compss

import (
	"errors"
	"fmt"
)

// ErrDeadlineExceeded marks an attempt that ran past its Opts.Deadline. Test
// with errors.Is on the error returned by Get/Barrier.
var ErrDeadlineExceeded = errors.New("deadline exceeded")

// ErrInjectedFault marks a failure produced by a FaultPlan rather than the
// task body. Tests use errors.Is to tell injected failures from organic ones.
var ErrInjectedFault = errors.New("injected fault")

// TaskError is the failure of a task's own execution: its body returned an
// error or panicked, an attempt missed its deadline, its retry budget ran
// out, or one of its nested children failed. ID and Name identify the task
// in the captured graph; Err is the underlying cause, reachable through
// errors.Is/As.
type TaskError struct {
	ID   int
	Name string
	Err  error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("task %d (%s): %v", e.ID, e.Name, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// DepError is the failure of a task that never ran because a dependency
// failed. ID and Name identify the task that could not run; Cause is always
// the originating failure (a *TaskError for the task that actually broke),
// never another DepError — a failure deep in a chain surfaces as one
// "dependency failed" plus the root cause, not one wrapper per hop.
type DepError struct {
	ID    int
	Name  string
	Cause error
}

func (e *DepError) Error() string {
	return fmt.Sprintf("task %d (%s): dependency failed: %v", e.ID, e.Name, e.Cause)
}

func (e *DepError) Unwrap() error { return e.Cause }

// depError wraps a dependency failure, collapsing chains: if err is already
// a DepError (the dependency itself never ran), the new error points at the
// same root cause instead of stacking another layer.
func depError(id int, name string, err error) error {
	var de *DepError
	if errors.As(err, &de) {
		return &DepError{ID: id, Name: name, Cause: de.Cause}
	}
	return &DepError{ID: id, Name: name, Cause: err}
}
