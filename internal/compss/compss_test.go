package compss

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"taskml/internal/graph"
)

// value task returning v after optionally recording execution order.
func constTask(v any) TaskFunc {
	return func(_ *TaskCtx, _ []any) (any, error) { return v, nil }
}

func TestSubmitAndGet(t *testing.T) {
	rt := New(Config{Workers: 2})
	f := rt.Submit(Opts{Name: "c", Cost: 1}, constTask(42))
	v, err := rt.Get(f)
	if err != nil || v.(int) != 42 {
		t.Fatalf("Get = %v, %v", v, err)
	}
}

func TestDependencyValueFlows(t *testing.T) {
	rt := New(Config{Workers: 2})
	a := rt.Submit(Opts{Name: "a"}, constTask(10))
	b := rt.Submit(Opts{Name: "b"}, func(_ *TaskCtx, args []any) (any, error) {
		return args[0].(int) * 3, nil
	}, a)
	v, err := rt.Get(b)
	if err != nil || v.(int) != 30 {
		t.Fatalf("Get = %v, %v", v, err)
	}
}

func TestSliceOfFuturesResolves(t *testing.T) {
	rt := New(Config{Workers: 4})
	var fs []*Future
	for i := 1; i <= 4; i++ {
		fs = append(fs, rt.Submit(Opts{Name: "p"}, constTask(i)))
	}
	sum := rt.Submit(Opts{Name: "sum"}, func(_ *TaskCtx, args []any) (any, error) {
		total := 0
		for _, v := range args[0].([]any) {
			total += v.(int)
		}
		return total, nil
	}, fs)
	v, err := rt.Get(sum)
	if err != nil || v.(int) != 10 {
		t.Fatalf("sum = %v, %v", v, err)
	}
}

func TestGraphCapturesDeps(t *testing.T) {
	rt := New(Config{Workers: 2})
	a := rt.Submit(Opts{Name: "a", Cost: 1, OutBytes: 100}, constTask(1))
	b := rt.Submit(Opts{Name: "b", Cost: 2}, constTask(2), a)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	g := rt.Graph()
	if g.Len() != 2 {
		t.Fatalf("graph has %d tasks, want 2", g.Len())
	}
	tb, _ := g.Task(b.TaskID())
	if len(tb.Deps) != 1 || tb.Deps[0].Task != a.TaskID() || tb.Deps[0].ViaMaster {
		t.Fatalf("deps of b = %+v", tb.Deps)
	}
	ta, _ := g.Task(a.TaskID())
	if ta.Cost != 1 || ta.OutBytes != 100 || ta.Cores != 1 {
		t.Fatalf("task a = %+v", ta)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateFutureArgDedupes(t *testing.T) {
	rt := New(Config{Workers: 2})
	a := rt.Submit(Opts{Name: "a"}, constTask(1))
	b := rt.Submit(Opts{Name: "b"}, func(_ *TaskCtx, args []any) (any, error) {
		return args[0].(int) + args[1].(int), nil
	}, a, a)
	v, err := rt.Get(b)
	if err != nil || v.(int) != 2 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	tb, _ := rt.Graph().Task(b.TaskID())
	if len(tb.Deps) != 1 {
		t.Fatalf("duplicate dep not merged: %+v", tb.Deps)
	}
}

func TestGetRaisesFloorViaMaster(t *testing.T) {
	rt := New(Config{Workers: 2})
	a := rt.Submit(Opts{Name: "a", Cost: 1}, constTask(1))
	if _, err := rt.Get(a); err != nil {
		t.Fatal(err)
	}
	// b does not take a as an argument, yet must be ordered after the sync.
	b := rt.Submit(Opts{Name: "b", Cost: 1}, constTask(2))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	tb, _ := rt.Graph().Task(b.TaskID())
	if len(tb.Deps) != 1 || tb.Deps[0].Task != a.TaskID() || !tb.Deps[0].ViaMaster {
		t.Fatalf("floor dep missing or wrong: %+v", tb.Deps)
	}
}

func TestArgDepUpgradedToViaMasterAfterGet(t *testing.T) {
	rt := New(Config{Workers: 2})
	a := rt.Submit(Opts{Name: "a"}, constTask(1))
	if _, err := rt.Get(a); err != nil {
		t.Fatal(err)
	}
	b := rt.Submit(Opts{Name: "b"}, func(_ *TaskCtx, args []any) (any, error) {
		return args[0], nil
	}, a)
	if _, err := rt.Get(b); err != nil {
		t.Fatal(err)
	}
	tb, _ := rt.Graph().Task(b.TaskID())
	if len(tb.Deps) != 1 || !tb.Deps[0].ViaMaster {
		t.Fatalf("dep should be via-master after Get: %+v", tb.Deps)
	}
}

func TestErrorPropagatesToDependents(t *testing.T) {
	rt := New(Config{Workers: 2})
	boom := errors.New("boom")
	a := rt.Submit(Opts{Name: "a"}, func(_ *TaskCtx, _ []any) (any, error) { return nil, boom })
	b := rt.Submit(Opts{Name: "b"}, constTask(2), a)
	c := rt.Submit(Opts{Name: "c"}, constTask(3), b)
	_, err := rt.Get(c)
	if !errors.Is(err, boom) {
		t.Fatalf("error did not propagate through the chain: %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	rt := New(Config{Workers: 2})
	f := rt.Submit(Opts{Name: "p"}, func(_ *TaskCtx, _ []any) (any, error) {
		panic("kaboom")
	})
	_, err := rt.Get(f)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestBarrierReturnsFirstError(t *testing.T) {
	rt := New(Config{Workers: 4})
	rt.Submit(Opts{Name: "ok"}, constTask(1))
	rt.Submit(Opts{Name: "bad"}, func(_ *TaskCtx, _ []any) (any, error) {
		return nil, errors.New("bad task")
	})
	err := rt.Barrier()
	if err == nil || !strings.Contains(err.Error(), "bad task") {
		t.Fatalf("Barrier = %v", err)
	}
}

func TestParallelismIsBounded(t *testing.T) {
	rt := New(Config{Workers: 3})
	var cur, peak int64
	gate := make(chan struct{})
	for i := 0; i < 12; i++ {
		rt.Submit(Opts{Name: "w"}, func(_ *TaskCtx, _ []any) (any, error) {
			n := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			<-gate
			atomic.AddInt64(&cur, -1)
			return nil, nil
		})
	}
	close(gate)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", peak)
	}
}

func TestNestedTasksRecordParent(t *testing.T) {
	rt := New(Config{Workers: 4})
	parent := rt.Submit(Opts{Name: "fold", Cost: 1}, func(tc *TaskCtx, _ []any) (any, error) {
		c := tc.Submit(Opts{Name: "epoch", Cost: 2}, constTask(7))
		v, err := tc.Get(c)
		if err != nil {
			return nil, err
		}
		return v.(int) + 1, nil
	})
	v, err := rt.Get(parent)
	if err != nil || v.(int) != 8 {
		t.Fatalf("nested result = %v, %v", v, err)
	}
	var child graph.Task
	for _, tk := range rt.Graph().Tasks() {
		if tk.Name == "epoch" {
			child = tk
		}
	}
	if child.Parent != parent.TaskID() {
		t.Fatalf("child parent = %d, want %d", child.Parent, parent.TaskID())
	}
}

func TestNestedSyncIsLocal(t *testing.T) {
	// Two parent tasks each Get their own child; the sibling parent's tasks
	// must NOT gain floor deps from the other context.
	rt := New(Config{Workers: 4})
	mk := func(name string) *Future {
		return rt.Submit(Opts{Name: name, Cost: 1}, func(tc *TaskCtx, _ []any) (any, error) {
			c1 := tc.Submit(Opts{Name: name + "_e1", Cost: 1}, constTask(1))
			if _, err := tc.Get(c1); err != nil {
				return nil, err
			}
			c2 := tc.Submit(Opts{Name: name + "_e2", Cost: 1}, constTask(2))
			return tc.Get(c2)
		})
	}
	fa, fb := mk("fa"), mk("fb")
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	// fa_e2 must depend only on tasks inside fa's context.
	for _, tk := range rt.Graph().Tasks() {
		if tk.Name == "fa_e2" {
			for _, d := range tk.Deps {
				dep, _ := rt.Graph().Task(d.Task)
				if dep.Parent == fb.TaskID() || d.Task == fb.TaskID() {
					t.Fatalf("fa_e2 leaked a dep into fb's context: %+v", tk.Deps)
				}
			}
		}
		if tk.Name == "fb_e2" {
			for _, d := range tk.Deps {
				dep, _ := rt.Graph().Task(d.Task)
				if dep.Parent == fa.TaskID() || d.Task == fa.TaskID() {
					t.Fatalf("fb_e2 leaked a dep into fa's context: %+v", tk.Deps)
				}
			}
		}
	}
}

func TestNestingDoesNotDeadlockWithOneWorker(t *testing.T) {
	// A parent that synchronises on its child while the pool has a single
	// slot: the slot must be released during the Get.
	rt := New(Config{Workers: 1})
	f := rt.Submit(Opts{Name: "parent"}, func(tc *TaskCtx, _ []any) (any, error) {
		c := tc.Submit(Opts{Name: "child"}, constTask(5))
		return tc.Get(c)
	})
	v, err := rt.Get(f)
	if err != nil || v.(int) != 5 {
		t.Fatalf("Get = %v, %v", v, err)
	}
}

func TestDeepNestingOneWorker(t *testing.T) {
	rt := New(Config{Workers: 1})
	var spawn func(depth int) TaskFunc
	spawn = func(depth int) TaskFunc {
		return func(tc *TaskCtx, _ []any) (any, error) {
			if depth == 0 {
				return 1, nil
			}
			c := tc.Submit(Opts{Name: fmt.Sprintf("d%d", depth)}, spawn(depth-1))
			v, err := tc.Get(c)
			if err != nil {
				return nil, err
			}
			return v.(int) + 1, nil
		}
	}
	f := rt.Submit(Opts{Name: "root"}, spawn(5))
	v, err := rt.Get(f)
	if err != nil || v.(int) != 6 {
		t.Fatalf("deep nesting = %v, %v", v, err)
	}
}

func TestParentWaitsForFireAndForgetChildren(t *testing.T) {
	rt := New(Config{Workers: 4})
	var childRan atomic.Bool
	f := rt.Submit(Opts{Name: "parent"}, func(tc *TaskCtx, _ []any) (any, error) {
		tc.Submit(Opts{Name: "child"}, func(_ *TaskCtx, _ []any) (any, error) {
			childRan.Store(true)
			return nil, nil
		})
		return "done", nil // returns without waiting
	})
	if _, err := rt.Get(f); err != nil {
		t.Fatal(err)
	}
	if !childRan.Load() {
		t.Fatal("parent future resolved before its child completed")
	}
}

func TestNestedChildErrorFailsParent(t *testing.T) {
	rt := New(Config{Workers: 4})
	f := rt.Submit(Opts{Name: "parent"}, func(tc *TaskCtx, _ []any) (any, error) {
		tc.Submit(Opts{Name: "child"}, func(_ *TaskCtx, _ []any) (any, error) {
			return nil, errors.New("child exploded")
		})
		return "ok", nil
	})
	_, err := rt.Get(f)
	if err == nil || !strings.Contains(err.Error(), "child exploded") {
		t.Fatalf("parent must surface unhandled child error, got %v", err)
	}
}

func TestSubmitN(t *testing.T) {
	rt := New(Config{Workers: 2})
	fs := rt.SubmitN(Opts{Name: "split"}, 3, func(_ *TaskCtx, _ []any) ([]any, error) {
		return []any{"a", "b", "c"}, nil
	})
	if len(fs) != 3 {
		t.Fatalf("SubmitN returned %d futures", len(fs))
	}
	for i, want := range []string{"a", "b", "c"} {
		v, err := rt.Get(fs[i])
		if err != nil || v.(string) != want {
			t.Fatalf("output %d = %v, %v", i, v, err)
		}
	}
	if rt.Graph().Len() != 1 {
		t.Fatalf("SubmitN must record one task, got %d", rt.Graph().Len())
	}
}

func TestSubmitNWrongArityErrors(t *testing.T) {
	rt := New(Config{Workers: 2})
	fs := rt.SubmitN(Opts{Name: "bad"}, 2, func(_ *TaskCtx, _ []any) ([]any, error) {
		return []any{"only one"}, nil
	})
	if _, err := rt.Get(fs[0]); err == nil {
		t.Fatal("want arity error")
	}
}

func TestWaitAllLocalBarrier(t *testing.T) {
	rt := New(Config{Workers: 4})
	f := rt.Submit(Opts{Name: "parent"}, func(tc *TaskCtx, _ []any) (any, error) {
		for i := 0; i < 3; i++ {
			tc.Submit(Opts{Name: "w", Cost: 1}, constTask(i))
		}
		if err := tc.WaitAll(); err != nil {
			return nil, err
		}
		after := tc.Submit(Opts{Name: "after", Cost: 1}, constTask(99))
		return tc.Get(after)
	})
	if _, err := rt.Get(f); err != nil {
		t.Fatal(err)
	}
	// "after" must have floor deps on the three "w" tasks.
	for _, tk := range rt.Graph().Tasks() {
		if tk.Name == "after" {
			vm := 0
			for _, d := range tk.Deps {
				if d.ViaMaster {
					vm++
				}
			}
			if vm < 3 {
				t.Fatalf("after has %d via-master deps, want >= 3: %+v", vm, tk.Deps)
			}
		}
	}
}

func TestGetAll(t *testing.T) {
	rt := New(Config{Workers: 4})
	var fs []*Future
	for i := 0; i < 5; i++ {
		fs = append(fs, rt.Submit(Opts{Name: "v"}, constTask(i)))
	}
	vals, err := rt.Main().GetAll(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v.(int) != i {
			t.Fatalf("GetAll[%d] = %v", i, v)
		}
	}
}

func TestDefaultNameAndCores(t *testing.T) {
	rt := New(Config{})
	f := rt.Submit(Opts{}, constTask(nil))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	tk, _ := rt.Graph().Task(f.TaskID())
	if tk.Name != "task" || tk.Cores != 1 {
		t.Fatalf("defaults not applied: %+v", tk)
	}
}

func TestGPUOptsRecorded(t *testing.T) {
	rt := New(Config{Workers: 2})
	f := rt.Submit(Opts{Name: "train", GPUs: 4, Cores: 2}, constTask(nil))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	tk, _ := rt.Graph().Task(f.TaskID())
	if tk.GPUs != 4 || tk.Cores != 2 {
		t.Fatalf("resource demand not recorded: %+v", tk)
	}
}

func TestManyConcurrentSubmitters(t *testing.T) {
	// Nested tasks submit from many goroutines; the graph must stay
	// consistent and the runtime must not race (run with -race).
	rt := New(Config{Workers: 8})
	root := rt.Submit(Opts{Name: "root"}, func(tc *TaskCtx, _ []any) (any, error) {
		var fs []*Future
		for i := 0; i < 20; i++ {
			fs = append(fs, tc.Submit(Opts{Name: "branch"}, func(tc2 *TaskCtx, _ []any) (any, error) {
				leaf := tc2.Submit(Opts{Name: "leaf"}, constTask(1))
				return tc2.Get(leaf)
			}))
		}
		total := 0
		for _, f := range fs {
			v, err := tc.Get(f)
			if err != nil {
				return nil, err
			}
			total += v.(int)
		}
		return total, nil
	})
	v, err := rt.Get(root)
	if err != nil || v.(int) != 20 {
		t.Fatalf("root = %v, %v", v, err)
	}
	if err := rt.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	if rt.Graph().Len() != 41 {
		t.Fatalf("graph has %d tasks, want 41", rt.Graph().Len())
	}
}

func BenchmarkSubmitGetOverhead(b *testing.B) {
	rt := New(Config{Workers: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := rt.Submit(Opts{Name: "noop"}, constTask(nil))
		if _, err := rt.Get(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFanOut100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rt := New(Config{Workers: 8})
		fs := make([]*Future, 100)
		for j := range fs {
			fs[j] = rt.Submit(Opts{Name: "w"}, constTask(j))
		}
		if err := rt.Barrier(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStatsRecording(t *testing.T) {
	so := NewStatsObserver()
	rt := New(Config{Workers: 2, Observers: []Observer{so}})
	for i := 0; i < 3; i++ {
		rt.Submit(Opts{Name: "work"}, constTask(i))
	}
	rt.Submit(Opts{Name: "other"}, constTask(nil))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	stats := so.Stats()
	if len(stats) != 4 {
		t.Fatalf("recorded %d stats, want 4", len(stats))
	}
	for _, s := range stats {
		if s.Duration < 0 || s.Queued < 0 || s.WaitDeps < 0 {
			t.Fatalf("negative timing: %+v", s)
		}
	}
	byName := so.ByName()
	if len(byName) != 2 {
		t.Fatalf("ByName = %v", byName)
	}
	summary := so.Summary()
	if !strings.Contains(summary, "work") || !strings.Contains(summary, "other") {
		t.Fatalf("summary:\n%s", summary)
	}
}

// A task blocked on a slow dependency must account that time as WaitDeps,
// not Queued: the split distinguishes graph stalls from capacity stalls.
func TestStatsSplitDependencyVsSlotWait(t *testing.T) {
	so := NewStatsObserver()
	rt := New(Config{Workers: 2, Observers: []Observer{so}})
	slow := rt.Submit(Opts{Name: "slow"}, func(_ *TaskCtx, _ []any) (any, error) {
		time.Sleep(30 * time.Millisecond)
		return 1, nil
	})
	rt.Submit(Opts{Name: "dep"}, constTask(2), slow)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	stats := so.Stats()
	var dep *TaskStat
	for i := range stats {
		if stats[i].Name == "dep" {
			dep = &stats[i]
		}
	}
	if dep == nil {
		t.Fatal("no stat for dependent task")
	}
	if dep.WaitDeps < 10*time.Millisecond {
		t.Fatalf("WaitDeps = %v, want most of the 30ms dependency stall", dep.WaitDeps)
	}
	if dep.Queued > dep.WaitDeps {
		t.Fatalf("Queued (%v) should not exceed WaitDeps (%v) with free workers", dep.Queued, dep.WaitDeps)
	}
}

func TestStatsDetachedObserverSeesNothing(t *testing.T) {
	so := NewStatsObserver()
	rt := New(Config{Workers: 2}) // so is NOT attached
	rt.Submit(Opts{Name: "w"}, constTask(nil))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if len(so.Stats()) != 0 {
		t.Fatal("stats recorded by an unattached observer")
	}
}

func TestFloorDepIsOrderOnlyButArgDepIsNot(t *testing.T) {
	rt := New(Config{Workers: 2})
	a := rt.Submit(Opts{Name: "a"}, constTask(1))
	if _, err := rt.Get(a); err != nil {
		t.Fatal(err)
	}
	// b consumes a's value: via-master, NOT order-only.
	b := rt.Submit(Opts{Name: "b"}, func(_ *TaskCtx, args []any) (any, error) {
		return args[0], nil
	}, a)
	// c merely comes after the sync: order-only.
	c := rt.Submit(Opts{Name: "c"}, constTask(2))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	tb, _ := rt.Graph().Task(b.TaskID())
	if len(tb.Deps) != 1 || !tb.Deps[0].ViaMaster || tb.Deps[0].OrderOnly {
		t.Fatalf("arg dep after sync: %+v", tb.Deps)
	}
	tc, _ := rt.Graph().Task(c.TaskID())
	foundOrder := false
	for _, d := range tc.Deps {
		if d.Task == a.TaskID() && d.OrderOnly && d.ViaMaster {
			foundOrder = true
		}
	}
	if !foundOrder {
		t.Fatalf("floor dep not order-only: %+v", tc.Deps)
	}
}
