// Work-stealing executor: per-worker deques, an overflow injector and a
// parking protocol replace the goroutine-per-task dispatch.
//
// Layout. The runtime owns Config.Workers worker structs, each holding a
// bounded ring deque of ready tasks. A *carrier* is a goroutine that claims a
// worker slot and loops pop→execute; carriers are spawned lazily when work
// appears and exit after a short idle linger, so an idle Runtime costs no
// goroutines. Execution capacity is still bounded by the rt.sem slot pool —
// a carrier acquires a slot per attempt — which keeps the PR 2
// slot-ownership accounting (deadline abandonment, pool exactness)
// byte-for-byte intact on top of the dispatch layer. The pool's capacity is
// elastic (it tracks fleet membership, see New); the carrier and deque
// arrays here are instead sized once, to the fleet's slot *ceiling*, since
// thieves iterate ex.workers unlocked.
//
// Queues. A task body submitting through its TaskCtx pushes onto its own
// worker's deque bottom (LIFO: the freshest task is the cache-warmest) and
// never touches a runtime-global lock; external submits (main program,
// deadline-task bodies that outlive their carrier, abandoned attempts)
// round-robin over the live-carrier prefix of the deques, overflowing to
// the injector FIFO only when the target ring is full. When a task
// completes, its newly-ready children are pushed onto the completing
// worker's deque — the locality property Taskflow gets from the same
// design. Thieves take the deque top (FIFO), so the oldest — most likely
// coldest — task migrates.
//
// Steal order. An idle carrier scans its own deque, then batch-pops the
// injector, then sweeps the victims' deques in a per-carrier xorshift-random
// order so concurrent thieves fan out over different victims. Deque ops take
// a per-worker mutex (the "light victim lock" variant): owner and thief
// serialize on one uncontended-in-the-common-case lock, which the race
// detector can verify, instead of a fenced Chase-Lev protocol it cannot.
//
// Parking. Idle carriers and blocked helpers park on cap-1 channels kept in
// an idler list. Every enqueue signals — wake one idler, or spawn a carrier
// if none is parked and fewer than Workers are live — unless a carrier is
// already *searching* for work (nSearching > 0), in which case the signal
// is elided: the searcher's sweep is guaranteed to find the task, so a
// burst of submits ramps up one carrier at a time instead of one per task.
// Parking is two-phase (announce, then re-check the queues, then sleep) so
// a signal sent between the check and the sleep is never lost; a parker
// popped from the list concurrently with its own timeout/target-wake
// consumes the in-flight signal and hands it on, so no enqueue's wake is
// dropped. A carrier leaves the searching state *before* its final queue
// re-check, so an enqueue that observed it searching has already made its
// task visible to that re-check.
//
// Helping. Any wait on a task — Runtime.Get, a body's nested Get, the
// implicit wait for a returning body's children, Barrier — runs ready tasks
// inline (acquiring a token per attempt, so the Workers bound holds) instead
// of blocking, via helpUntilDone. That is what lets a carrier whose task
// blocks on a child execute the child itself with Workers == 1.
package compss

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// dequeCap bounds each worker deque (power of two); pushes beyond it
	// overflow to the injector. Rings start at dequeMin and double.
	dequeCap = 256
	dequeMin = 32
	// carrierLinger is how long an idle carrier stays parked before exiting.
	carrierLinger = 500 * time.Microsecond
	// injectorBatch is how many tasks a carrier moves from the injector to
	// its own deque per visit, amortizing the injector lock.
	injectorBatch = 8
	// stealSpins is how many full find-work rounds a carrier runs (yielding
	// between them) before parking.
	stealSpins = 2
)

// worker is one deque owner slot. The structs are created at New and never
// freed; carriers claim and release them, and thieves sweep all of them, so
// a deque stays drainable even between owners (an abandoned deadline body
// may push to its worker's deque after the carrier moved on or exited).
type worker struct {
	idx int

	// mu guards the ring below — the light victim lock. head is the steal
	// end, tail the owner end; size mirrors tail-head for lock-free
	// emptiness probes by thieves.
	mu   sync.Mutex
	buf  []*taskState
	head int
	tail int
	size atomic.Int32

	// shard is this worker's slice of the task registry, a slab arena that
	// both allocates taskStates and retains them for barrierAll's gather;
	// shardMu is separate from mu so allocating a submission never contends
	// with thieves.
	shardMu sync.Mutex
	shard   taskArena
}

// taskChunk is the arena slab size: taskStates are handed out of chunks of
// this many, one malloc per taskChunk submissions.
const taskChunk = 32

// taskArena is a chunked slab of taskStates doubling as a registry shard:
// allocation order is submission order, and the chunks keep every task
// reachable for barrierAll. Guarded by the owning shard's mutex. Slots are
// handed out zeroed and never reused, exactly like individual allocations —
// the slab only batches the malloc and the GC bookkeeping.
type taskArena struct {
	chunks []*[taskChunk]taskState
	n      int // used slots in the last chunk
}

func (a *taskArena) alloc() *taskState {
	if a.n == taskChunk || len(a.chunks) == 0 {
		a.chunks = append(a.chunks, new([taskChunk]taskState))
		a.n = 0
	}
	st := &a.chunks[len(a.chunks)-1][a.n]
	a.n++
	return st
}

func (a *taskArena) len() int {
	if len(a.chunks) == 0 {
		return 0
	}
	return (len(a.chunks)-1)*taskChunk + a.n
}

func (a *taskArena) appendTo(dst []*taskState) []*taskState {
	for i, c := range a.chunks {
		used := taskChunk
		if i == len(a.chunks)-1 {
			used = a.n
		}
		for j := 0; j < used; j++ {
			st := &c[j]
			if !st.reg.Load() { // reserved, submit not yet published
				continue
			}
			dst = append(dst, st)
		}
	}
	return dst
}

// push adds st to the deque bottom (owner end). It reports false when the
// ring is at dequeCap; the caller overflows to the injector. The ring
// starts small and doubles on demand, so the many mostly-idle deques of a
// wide pool don't each pay for the full capacity up front.
func (w *worker) push(st *taskState) bool {
	w.mu.Lock()
	n := w.tail - w.head
	if n == len(w.buf) {
		if n == dequeCap {
			w.mu.Unlock()
			return false
		}
		grown := make([]*taskState, max(2*n, dequeMin))
		for i := 0; i < n; i++ {
			grown[(w.head+i)&(len(grown)-1)] = w.buf[(w.head+i)&(len(w.buf)-1)]
		}
		w.buf = grown
	}
	w.buf[w.tail&(len(w.buf)-1)] = st
	w.tail++
	w.size.Store(int32(w.tail - w.head))
	w.mu.Unlock()
	return true
}

// pop removes the most recently pushed task (owner end, LIFO).
func (w *worker) pop() *taskState {
	if w.size.Load() == 0 {
		return nil
	}
	w.mu.Lock()
	if w.tail == w.head {
		w.mu.Unlock()
		return nil
	}
	w.tail--
	st := w.buf[w.tail&(len(w.buf)-1)]
	w.buf[w.tail&(len(w.buf)-1)] = nil
	w.size.Store(int32(w.tail - w.head))
	w.mu.Unlock()
	return st
}

// steal removes the oldest task (thief end, FIFO).
func (w *worker) steal() *taskState {
	if w.size.Load() == 0 {
		return nil
	}
	w.mu.Lock()
	if w.tail == w.head {
		w.mu.Unlock()
		return nil
	}
	st := w.buf[w.head&(len(w.buf)-1)]
	w.buf[w.head&(len(w.buf)-1)] = nil
	w.head++
	w.size.Store(int32(w.tail - w.head))
	w.mu.Unlock()
	return st
}

// parker is one parked goroutine's wake channel (cap 1: a signal sent to a
// parker that is concurrently leaving is buffered, not lost). timer is the
// carrier-linger timer, lazily created and reused across parks; it is
// always stopped-and-drained outside a park, so Reset is safe under the
// pre-1.23 timer semantics this module pins.
type parker struct {
	ch    chan struct{}
	timer *time.Timer
}

var parkerPool = sync.Pool{New: func() any { return &parker{ch: make(chan struct{}, 1)} }}

func getParker() *parker {
	p := parkerPool.Get().(*parker)
	select { // drop a stale token from a prior hand-off race
	case <-p.ch:
	default:
	}
	return p
}

// executor is the scheduler state hanging off a Runtime.
type executor struct {
	rt       *Runtime
	maxProcs int // carrier/deque count: max(Config.Workers, fleet slot ceiling)
	workers  []*worker

	// claimMu guards the free-worker stack.
	claimMu sync.Mutex
	free    []*worker

	// injector is the external-submit / overflow FIFO.
	injMu   sync.Mutex
	injQ    []*taskState
	injHead int
	injSize atomic.Int32

	// extMu guards the registry arena for tasks submitted outside any
	// worker context.
	extMu    sync.Mutex
	extShard taskArena

	// idlers is the LIFO list of parked carriers and helpers; idleCount
	// mirrors its length for a lock-free probe on the signal fast path.
	idleMu    sync.Mutex
	idlers    []*parker
	idleCount atomic.Int32

	// nLive counts live carriers, parked ones included. It gates spawning
	// (at most maxProcs carriers; helpers are extra capacity on top) and is
	// decremented only on carrier exit.
	nLive atomic.Int32

	// nSearching counts carriers currently scanning for work: just spawned,
	// just woken, or between tasks. While one is scanning, signalWork skips
	// the wake/spawn entirely (the scanner will find the enqueued task, or
	// re-check the queues before it sleeps — see the parking protocol note
	// on carrier), which keeps a burst of submits from waking one carrier
	// per task and lets a serial submit→wait caller be served by a single
	// carrier without a wake/park cycle per task. A carrier that takes a
	// task and leaves the count at zero re-signals when work remains, so
	// the fleet still ramps to maxProcs under sustained load.
	nSearching atomic.Int32

	// rr rotates external submits over the worker deques.
	rr atomic.Uint32

	seed atomic.Uint64
}

func newExecutor(rt *Runtime, procs int) *executor {
	ex := &executor{rt: rt, maxProcs: procs}
	// One backing array for the worker structs — a runtime costs a few
	// small allocations here instead of one per worker.
	arr := make([]worker, procs)
	ex.workers = make([]*worker, procs)
	ex.free = make([]*worker, procs)
	for i := range arr {
		arr[i].idx = i
		ex.workers[i] = &arr[i]
		// The free stack is popped from the back: fill it reversed so the
		// first carriers claim w0, w1, ... — the same prefix the round-robin
		// in enqueue targets.
		ex.free[procs-1-i] = &arr[i]
	}
	ex.seed.Store(0x853c49e6748fea9b)
	return ex
}

func (ex *executor) nextSeed() uint64 {
	return ex.seed.Add(0x9e3779b97f4a7c15) | 1
}

func xorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

func (ex *executor) claimWorker() *worker {
	ex.claimMu.Lock()
	defer ex.claimMu.Unlock()
	if n := len(ex.free); n > 0 {
		w := ex.free[n-1]
		ex.free = ex.free[:n-1]
		return w
	}
	return nil // all slots owned (some carriers are blocked in deadline waits)
}

func (ex *executor) releaseWorker(w *worker) {
	if w == nil {
		return
	}
	ex.claimMu.Lock()
	ex.free = append(ex.free, w)
	ex.claimMu.Unlock()
}

// pushInjector appends st to the external queue. Callers must signalWork
// after every enqueue (here and for deque pushes) — the signal is what keeps
// the carrier population matched to the queued work.
func (ex *executor) pushInjector(st *taskState) {
	ex.injMu.Lock()
	ex.injQ = append(ex.injQ, st)
	ex.injSize.Store(int32(len(ex.injQ) - ex.injHead))
	ex.injMu.Unlock()
}

// popInjector takes one task for the caller and moves up to injectorBatch-1
// more onto the caller's own deque, amortizing the injector lock across a
// burst of external submissions.
func (ex *executor) popInjector(w *worker) *taskState {
	if ex.injSize.Load() == 0 {
		return nil
	}
	ex.injMu.Lock()
	n := len(ex.injQ) - ex.injHead
	if n == 0 {
		ex.injMu.Unlock()
		return nil
	}
	take := 1
	if w != nil && n > 1 {
		take = injectorBatch
		if take > n {
			take = n
		}
	}
	batch := ex.injQ[ex.injHead : ex.injHead+take]
	ex.injHead += take
	if ex.injHead == len(ex.injQ) {
		ex.injQ = ex.injQ[:0]
		ex.injHead = 0
	}
	ex.injSize.Store(int32(len(ex.injQ) - ex.injHead))
	st := batch[0]
	moved := 0
	for _, extra := range batch[1:] {
		if !w.push(extra) { // deque full: leave the rest queued
			ex.injQ = append(ex.injQ, extra)
			continue
		}
		moved++
	}
	if moved > 0 {
		ex.injSize.Store(int32(len(ex.injQ) - ex.injHead))
	}
	ex.injMu.Unlock()
	if moved > 0 {
		ex.signalWork() // the moved tasks are parallelism other carriers can take
	}
	return st
}

// anyWork reports whether any queue holds a ready task (atomic probes only).
func (ex *executor) anyWork() bool {
	if ex.injSize.Load() > 0 {
		return true
	}
	for _, w := range ex.workers {
		if w.size.Load() > 0 {
			return true
		}
	}
	return false
}

// signalWork is called after every enqueue: wake one parked idler, else
// spawn a carrier if the fleet is not full. The no-idler no-headroom case is
// two atomic loads — the submit fast path stays lock-free. A carrier that
// is already searching absorbs the signal (see nSearching): it either takes
// the task or re-checks the queues before sleeping, so the skip never
// strands an enqueue.
func (ex *executor) signalWork() {
	if ex.nSearching.Load() > 0 {
		return
	}
	if ex.idleCount.Load() > 0 {
		ex.idleMu.Lock()
		if n := len(ex.idlers); n > 0 {
			p := ex.idlers[n-1]
			ex.idlers = ex.idlers[:n-1]
			ex.idleCount.Store(int32(n - 1))
			ex.idleMu.Unlock()
			p.ch <- struct{}{} // cap 1, one send per pop: never blocks
			return
		}
		ex.idleMu.Unlock()
	}
	for {
		n := ex.nLive.Load()
		if n >= int32(ex.maxProcs) {
			return
		}
		if ex.nLive.CompareAndSwap(n, n+1) {
			ex.nSearching.Add(1) // the new carrier starts out searching
			go ex.carrier()
			return
		}
	}
}

// announceIdle parks p on the idler list (phase one of two-phase parking:
// the caller must re-check the queues before sleeping).
func (ex *executor) announceIdle(p *parker) {
	ex.idleMu.Lock()
	ex.idlers = append(ex.idlers, p)
	ex.idleCount.Store(int32(len(ex.idlers)))
	ex.idleMu.Unlock()
}

// cancelIdle removes p from the idler list, reporting false when a signaler
// popped it first — in which case a wake token is (or is about to be) in
// p.ch and the caller must consume it.
func (ex *executor) cancelIdle(p *parker) bool {
	ex.idleMu.Lock()
	defer ex.idleMu.Unlock()
	for i := len(ex.idlers) - 1; i >= 0; i-- {
		if ex.idlers[i] == p {
			ex.idlers = append(ex.idlers[:i], ex.idlers[i+1:]...)
			ex.idleCount.Store(int32(len(ex.idlers)))
			return true
		}
	}
	return false
}

// retire removes p from the idler list when its owner stops waiting for a
// reason other than a work signal (its target completed, or a carrier's
// linger expired). If a signaler already popped p, the in-flight signal is
// consumed and handed to another processor so the enqueue that sent it is
// still served.
func (ex *executor) retire(p *parker) {
	if !ex.cancelIdle(p) {
		<-p.ch
		if ex.anyWork() {
			ex.signalWork()
		}
	}
	parkerPool.Put(p)
}

// findWork returns the next ready task for a processor that owns deque w
// (nil for helpers without one): own deque, then injector batch, then one
// randomized sweep over the other deques. stolen reports a migration from
// another worker's deque.
func (ex *executor) findWork(w *worker, rng *uint64) (st *taskState, stolen bool) {
	if w != nil {
		if st = w.pop(); st != nil {
			return st, false
		}
	}
	if st = ex.popInjector(w); st != nil {
		return st, false
	}
	n := len(ex.workers)
	start := int(xorshift(rng) % uint64(n))
	for i := 0; i < n; i++ {
		v := ex.workers[(start+i)%n]
		if v == w {
			continue
		}
		if st = v.steal(); st != nil {
			return st, true
		}
	}
	return nil, false
}

// carrier is the worker-goroutine main loop: claim a deque slot, run tasks,
// park when idle, exit when the linger expires. The exit path re-checks the
// queues after decrementing nLive so an enqueue that saw a full fleet and
// skipped spawning is never stranded.
func (ex *executor) carrier() {
	w := ex.claimWorker()
	rng := ex.nextSeed()
	spins := 0
	searching := true // spawned searching, counted by the spawner
	for {
		if !searching {
			searching = true
			ex.nSearching.Add(1)
		}
		st, stolen := ex.findWork(w, &rng)
		if st != nil {
			searching = false
			// Last searcher taking a task: signals were absorbed on its
			// behalf, so hand the ramp on if work remains queued.
			if ex.nSearching.Add(-1) == 0 && ex.anyWork() {
				ex.signalWork()
			}
			spins = 0
			ex.rt.runReady(st, w, stolen)
			continue
		}
		if spins < stealSpins {
			spins++
			runtime.Gosched()
			continue
		}
		spins = 0
		p := getParker()
		ex.announceIdle(p)
		// Stop counting as a searcher strictly before the phase-two queue
		// re-check: an enqueuer that observed this carrier searching (and
		// skipped its signal) is then guaranteed the check below sees its
		// task — the atomic order is enqueue < nSearching load < this
		// decrement < anyWork loads.
		searching = false
		ex.nSearching.Add(-1)
		if ex.anyWork() { // phase two: an enqueue may have just missed us
			if !ex.cancelIdle(p) {
				<-p.ch
			}
			parkerPool.Put(p)
			continue
		}
		if p.timer == nil {
			p.timer = time.NewTimer(carrierLinger)
		} else {
			p.timer.Reset(carrierLinger) // stopped-and-drained since last park
		}
		select {
		case <-p.ch:
			if !p.timer.Stop() {
				<-p.timer.C
			}
			parkerPool.Put(p)
		case <-p.timer.C:
			if !ex.cancelIdle(p) { // a signaler beat the timer: serve it
				<-p.ch
				parkerPool.Put(p)
				continue
			}
			parkerPool.Put(p)
			ex.releaseWorker(w)
			ex.nLive.Add(-1)
			if ex.anyWork() {
				ex.signalWork() // close the exit/enqueue race
			}
			return
		}
	}
}

// helpUntilDone runs ready tasks inline until target completes — the
// blocking strategy of every wait in the runtime. A helper with nothing to
// run parks as an idler, waking on either its target's completion or a work
// signal, so parked helpers still serve the pool. Completion is polled via
// target.completed (one atomic load per round); the target's done channel
// is only materialized when the helper actually has to sleep.
func (ex *executor) helpUntilDone(w *worker, rng *uint64, target *taskState) {
	for {
		if target.completed.Load() {
			return
		}
		if st, stolen := ex.findWork(w, rng); st != nil {
			ex.rt.runReady(st, w, stolen)
			continue
		}
		p := getParker()
		ex.announceIdle(p)
		if target.completed.Load() {
			ex.retire(p)
			return
		}
		if ex.anyWork() {
			if !ex.cancelIdle(p) {
				<-p.ch
			}
			parkerPool.Put(p)
			continue
		}
		select {
		case <-target.doneChan():
			ex.retire(p)
			return
		case <-p.ch:
			parkerPool.Put(p)
		}
	}
}

// enqueue makes a ready task available: the submitting/completing worker's
// own deque when there is one (locality); external submits round-robin over
// the live-carrier prefix of the deques — claimWorker hands slots out from
// the front, so the first nLive deques are the ones carriers actually drain;
// spreading over the idle tail would only force thieves to find the tasks.
// Overflow falls back to the injector. Every enqueue signals.
func (ex *executor) enqueue(st *taskState, w *worker) {
	if w == nil {
		n := int(ex.nLive.Load())
		if n < 1 {
			n = 1
		} else if n > len(ex.workers) {
			n = len(ex.workers)
		}
		w = ex.workers[int(ex.rr.Add(1))%n]
	}
	if !w.push(st) {
		ex.pushInjector(st)
	}
	ex.signalWork()
}

// allocTask hands out a zeroed taskState from the submitting worker's arena
// (or the external arena). The arena chunk doubles as the task registry
// entry: every taskState stays reachable for barrierAll anyway, so slab
// allocation trades nothing for one malloc per taskChunk submissions.
func (ex *executor) allocTask(w *worker) *taskState {
	if w != nil {
		w.shardMu.Lock()
		st := w.shard.alloc()
		w.shardMu.Unlock()
		return st
	}
	ex.extMu.Lock()
	st := ex.extShard.alloc()
	ex.extMu.Unlock()
	return st
}

// snapshotTasks gathers every registered task across the arenas, sorted by
// graph ID (== submission order).
func (ex *executor) snapshotTasks() []*taskState {
	n := 0
	ex.extMu.Lock()
	n += ex.extShard.len()
	ex.extMu.Unlock()
	for _, w := range ex.workers {
		w.shardMu.Lock()
		n += w.shard.len()
		w.shardMu.Unlock()
	}
	all := make([]*taskState, 0, n)
	ex.extMu.Lock()
	all = ex.extShard.appendTo(all)
	ex.extMu.Unlock()
	for _, w := range ex.workers {
		w.shardMu.Lock()
		all = w.shard.appendTo(all)
		w.shardMu.Unlock()
	}
	// Arenas are individually ordered; a k-way merge is not worth it for a
	// barrier-rate operation. Tasks submitted between the two locked
	// passes can push the gather past n — append grows as needed.
	sortTasksByID(all)
	return all
}

func sortTasksByID(ts []*taskState) {
	// Insertion sort over a nearly-sorted gather is O(n) in the common
	// single-submitter case and avoids pulling in sort for a hot-free path.
	for i := 1; i < len(ts); i++ {
		st := ts[i]
		j := i - 1
		for j >= 0 && ts[j].id > st.id {
			ts[j+1] = ts[j]
			j--
		}
		ts[j+1] = st
	}
}
