package compss

import "sync"

// slotPool is the runtime's execution-capacity semaphore: acquire blocks
// while held ≥ cap, release never blocks. It replaces the fixed buffered
// channel so capacity can follow an elastic backend's fleet — setCap
// re-targets the pool mid-run and wakes every waiter to re-evaluate.
//
// Shrinking never revokes held slots: with held > cap the pool is simply
// over target and admits no one until enough releases bring it back under —
// the same grace a draining worker gets on the exec side. The acquire /
// release pairing discipline is exactly the old channel's (a release is
// always preceded by this goroutine's own acquire), so the PR 2
// slot-parking protocol in blockingWait carries over token-for-token.
type slotPool struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	held int
}

func newSlotPool(capacity int) *slotPool {
	if capacity < 1 {
		capacity = 1
	}
	p := &slotPool{cap: capacity}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquire blocks until the pool is under capacity and takes one slot.
func (p *slotPool) acquire() {
	p.mu.Lock()
	for p.held >= p.cap {
		p.cond.Wait()
	}
	p.held++
	p.mu.Unlock()
}

// release returns one slot; it never blocks.
func (p *slotPool) release() {
	p.mu.Lock()
	p.held--
	p.cond.Broadcast()
	p.mu.Unlock()
}

// setCap re-targets the pool's capacity (clamped to ≥ 1) and wakes waiters
// so a raised cap admits them immediately.
func (p *slotPool) setCap(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	p.cap = n
	p.cond.Broadcast()
	p.mu.Unlock()
}

// capacity returns the current target capacity.
func (p *slotPool) capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cap
}
