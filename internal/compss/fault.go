// Fault injection: a FaultPlan declared in Config.Faults makes chosen task
// attempts fail deterministically, which is how the fault-tolerance layer is
// tested and how cmd/scaling's -faults sweep produces reproducible recovery
// costs. An injected attempt never runs the real body — it fails in its
// place — so a retried task still computes its output exactly once and the
// workflow's results stay bit-identical to a fault-free run.
package compss

import "fmt"

// FaultMode selects how an injected attempt dies.
type FaultMode int

const (
	// FaultError makes the attempt return an error wrapping ErrInjectedFault.
	FaultError FaultMode = iota
	// FaultPanic makes the attempt panic (exercises the recover path).
	FaultPanic
	// FaultHang makes the attempt block until its deadline cancels it, so it
	// fails with ErrDeadlineExceeded. It requires Opts.Deadline > 0 on the
	// targeted task; without a deadline the runtime downgrades it to
	// FaultError rather than blocking a worker forever.
	FaultHang
)

// Fault selects a set of task attempts to kill. Matching, in priority order:
//
//   - Name != "": tasks of that kind. Nth picks the occurrence (0-based, in
//     graph-ID order among same-named tasks); Nth < 0 hits every occurrence.
//     Occurrence order is deterministic when same-named tasks are submitted
//     from one context; for concurrently-submitted kinds prefer Nth: -1.
//   - EveryNth > 0: tasks whose graph ID is a multiple of EveryNth.
//   - otherwise: the task with graph ID == TaskID (zero value targets task 0).
//
// The first Attempts attempts of a matched task are killed (0 defaults to 1;
// negative kills every attempt), in Mode, after AtFraction of the task's
// virtual cost (default 0.5) — the fraction only affects the replayed
// schedule, never real execution.
type Fault struct {
	Name     string
	Nth      int
	EveryNth int
	TaskID   int
	Attempts int
	Mode     FaultMode
	// AtFraction is the fraction of the task's virtual cost consumed before
	// the failure instant, in (0, 1]; out-of-range values mean 0.5. Timeouts
	// always charge the full cost (the node was held until the deadline).
	AtFraction float64
}

func (f *Fault) matches(id int, name string, occ int) bool {
	switch {
	case f.Name != "":
		return name == f.Name && (f.Nth < 0 || occ == f.Nth)
	case f.EveryNth > 0:
		return id%f.EveryNth == 0
	default:
		return id == f.TaskID
	}
}

// fraction returns the virtual cost fraction charged for this failure.
func (f *Fault) fraction() float64 {
	if f.AtFraction > 0 && f.AtFraction <= 1 {
		return f.AtFraction
	}
	return 0.5
}

// FaultPlan is a deterministic fault-injection schedule consulted once per
// attempt. The zero plan (or a nil *FaultPlan) injects nothing.
type FaultPlan struct {
	Faults []Fault
}

// match returns the first fault that kills this attempt, or nil.
func (p *FaultPlan) match(id int, name string, occ, attempt int) *Fault {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		f := &p.Faults[i]
		n := f.Attempts
		if n == 0 {
			n = 1
		}
		if (n < 0 || attempt < n) && f.matches(id, name, occ) {
			return f
		}
	}
	return nil
}

// injectedBody replaces a task body for one doomed attempt.
func injectedBody(st *taskState, attempt int, mode FaultMode, cancel chan struct{}) MultiTaskFunc {
	return func(_ *TaskCtx, _ []any) ([]any, error) {
		switch mode {
		case FaultPanic:
			panic(fmt.Sprintf("injected fault (attempt %d)", attempt))
		case FaultHang:
			<-cancel
			return nil, fmt.Errorf("attempt %d hung: %w", attempt, ErrInjectedFault)
		default:
			return nil, fmt.Errorf("attempt %d: %w", attempt, ErrInjectedFault)
		}
	}
}
