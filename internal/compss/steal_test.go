package compss

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestStealStress drives the work-stealing dispatcher through its
// migration paths under deliberately unbalanced load: a hot body that
// submits far more children than one deque holds (forcing the injector
// overflow path), a deep nested chain whose every level fans out (so ready
// tasks keep appearing on whichever worker completed the parent), and a
// burst of external submits racing the bodies (the round-robin placement
// path). Everything must complete with the right values, and the Observer
// event stream must stay causally ordered per task — the contract the
// stealing layer is not allowed to bend.
func TestStealStress(t *testing.T) {
	const (
		hotChildren = 600 // > dequeCap: the hot owner's deque must overflow
		chainDepth  = 40
		chainFan    = 3
		burst       = 200
	)
	obs := newSeqObserver()
	rt := New(Config{Workers: 8, Observers: []Observer{obs}})

	one := func(_ *TaskCtx, _ []any) (any, error) { return 1, nil }

	// Hot submitter: one body pushes hotChildren tasks onto its own deque
	// in a tight loop, then gathers them. The ring caps at dequeCap, so the
	// tail spills to the injector while thieves drain the head.
	hot := rt.Submit(Opts{Name: "hot"}, func(tc *TaskCtx, _ []any) (any, error) {
		futs := make([]*Future, hotChildren)
		for i := range futs {
			futs[i] = tc.Submit(Opts{Name: "hot_leaf"}, one)
		}
		sum := 0
		for _, f := range futs {
			v, err := tc.Get(f)
			if err != nil {
				return nil, err
			}
			sum += v.(int)
		}
		return sum, nil
	})

	// Deep unbalanced chain: every level submits chainFan leaves plus one
	// deeper link, so one branch stays much longer than its siblings and
	// idle workers must keep stealing to stay busy.
	var chain func(tc *TaskCtx, args []any) (any, error)
	chain = func(tc *TaskCtx, args []any) (any, error) {
		depth := args[0].(int)
		if depth == 0 {
			return 0, nil
		}
		leaves := make([]*Future, chainFan)
		for i := range leaves {
			leaves[i] = tc.Submit(Opts{Name: "chain_leaf"}, one)
		}
		next := tc.Submit(Opts{Name: "chain"}, chain, depth-1)
		sum := 0
		for _, f := range leaves {
			v, err := tc.Get(f)
			if err != nil {
				return nil, err
			}
			sum += v.(int)
		}
		v, err := tc.Get(next)
		if err != nil {
			return nil, err
		}
		return sum + v.(int), nil
	}
	deep := rt.Submit(Opts{Name: "chain"}, chain, chainDepth)

	// External burst racing the two bodies above.
	ext := make([]*Future, burst)
	for i := range ext {
		ext[i] = rt.Submit(Opts{Name: "ext"}, one)
	}

	if v, err := rt.Get(hot); err != nil || v.(int) != hotChildren {
		t.Fatalf("hot = (%v, %v), want %d", v, err, hotChildren)
	}
	if v, err := rt.Get(deep); err != nil || v.(int) != chainDepth*chainFan {
		t.Fatalf("chain = (%v, %v), want %d", v, err, chainDepth*chainFan)
	}
	for i, f := range ext {
		if v, err := rt.Get(f); err != nil || v.(int) != 1 {
			t.Fatalf("ext[%d] = (%v, %v), want 1", i, v, err)
		}
	}
	if err := rt.Barrier(); err != nil {
		t.Fatalf("Barrier: %v", err)
	}

	// 1 hot + its leaves, chainDepth+1 chain links (depth 0 included) with
	// chainFan leaves per positive-depth link, and the external burst.
	total := 1 + hotChildren + (chainDepth + 1) + chainDepth*chainFan + burst
	obs.check(t, total)
}

// Regression: Opts.Deadline abandonment must release exactly one worker
// slot when the abandoned attempt was *stolen* — the thief's carrier owns
// the slot, not the worker whose deque the task was enqueued on, and the
// timeout handler must charge the right one. The setup pins the steal: the
// parent body holds its own carrier hostage until the child has started,
// so the child (sitting on the parent's deque) can only have been taken by
// another goroutine. Afterwards the pool must still be exactly Workers
// wide: leaked slot → probes overlap beyond Workers; lost slot → probe
// concurrency never reaches Workers.
func TestStolenDeadlineAbandonReleasesExactlyOneSlot(t *testing.T) {
	stats := NewStatsObserver()
	rt := New(Config{Workers: 2, Observers: []Observer{stats}})

	childStarted := make(chan struct{})
	parentStarted := make(chan struct{})
	var childRuns atomic.Int32
	var childID atomic.Int32
	parent := rt.Submit(Opts{Name: "parent"}, func(tc *TaskCtx, _ []any) (any, error) {
		// Signal before submitting the child: the main goroutine must not
		// reach its helping wait until this body owns a carrier's deque, or
		// the helper would run the parent inline (deque-less) and the child
		// would be dispatched locally instead of stolen.
		close(parentStarted)
		child := tc.Submit(Opts{Name: "child", Deadline: 50 * time.Millisecond, Retries: 1},
			func(_ *TaskCtx, _ []any) (any, error) {
				if childRuns.Add(1) == 1 {
					close(childStarted)
					time.Sleep(250 * time.Millisecond) // overruns the deadline
				}
				return 7, nil
			})
		childID.Store(int32(child.TaskID()))
		<-childStarted // keep this carrier busy until the steal happened
		v, err := tc.Get(child)
		if err != nil {
			return nil, err
		}
		return v.(int) + 1, nil
	})

	<-parentStarted
	if v, err := rt.Get(parent); err != nil || v.(int) != 8 {
		t.Fatalf("parent = (%v, %v), want the deadline retry to publish 8", v, err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatalf("Barrier: %v", err)
	}

	// The abandoned attempt must carry the steal attribution: it ran while
	// its enqueuing worker's carrier was blocked inside the parent body.
	var childStat *TaskStat
	for _, s := range stats.Stats() {
		if s.ID == int(childID.Load()) {
			cp := s
			childStat = &cp
		}
	}
	if childStat == nil {
		t.Fatal("no stats recorded for the child task")
	}
	if childStat.Attempts != 2 {
		t.Fatalf("child attempts = %d, want 2 (abandoned + retry)", childStat.Attempts)
	}
	if !childStat.PerAttempt[0].Stolen {
		t.Error("abandoned attempt not attributed as stolen")
	}
	if childStat.PerAttempt[0].Outcome != "timeout" {
		t.Errorf("abandoned attempt outcome = %q, want %q", childStat.PerAttempt[0].Outcome, "timeout")
	}

	// Pool exactness: with Workers=2, four sleeping probes must overlap at
	// exactly two. Peak 3+ means the abandonment leaked the thief's slot;
	// a hang (or peak 1) means it released a slot it did not own.
	var cur, peak atomic.Int32
	probe := func(_ *TaskCtx, _ []any) (any, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(60 * time.Millisecond)
		cur.Add(-1)
		return nil, nil
	}
	for i := 0; i < 4; i++ {
		rt.Submit(Opts{Name: "probe"}, probe)
	}
	barrier := make(chan error, 1)
	go func() { barrier <- rt.Barrier() }()
	select {
	case err := <-barrier:
		if err != nil {
			t.Fatalf("probe Barrier: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker pool lost a slot to the stolen abandoned attempt")
	}
	if p := peak.Load(); p != 2 {
		t.Fatalf("probe peak concurrency %d with Workers=2, want exactly 2", p)
	}
}
