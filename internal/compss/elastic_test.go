package compss

import (
	"errors"
	"sync"
	"testing"
	"time"

	"taskml/internal/exec"
)

// fakeFleet is an exec.Backend that also implements exec.Fleet, with a
// settable slot total: the compss runtime must size its slot pool from it
// and re-target the pool when the watcher fires.
type fakeFleet struct {
	mu       sync.Mutex
	slots    int
	ceiling  int
	watchers []func(int)
}

func (f *fakeFleet) ExecuteTask(*exec.Request) ([]any, string, error) {
	return nil, "", errors.New("fakeFleet executes nothing")
}
func (f *fakeFleet) Close() error                { return nil }
func (f *fakeFleet) Join(string) (string, error) { return "", errors.New("fake") }
func (f *fakeFleet) Drain(string) error          { return errors.New("fake") }
func (f *fakeFleet) Leave(string) error          { return errors.New("fake") }
func (f *fakeFleet) Workers() []exec.WorkerInfo  { return nil }

func (f *fakeFleet) SlotTotal() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slots
}
func (f *fakeFleet) SlotCeiling() int { return f.ceiling }

func (f *fakeFleet) Watch(fn func(int)) func() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.watchers = append(f.watchers, fn)
	return func() {}
}

func (f *fakeFleet) setSlots(n int) {
	f.mu.Lock()
	f.slots = n
	fns := append([]func(int){}, f.watchers...)
	f.mu.Unlock()
	for _, fn := range fns {
		fn(n)
	}
}

var _ exec.Backend = (*fakeFleet)(nil)
var _ exec.Fleet = (*fakeFleet)(nil)

// TestElasticCapacity pins the membership→parallelism contract: a runtime
// over an elastic backend starts with the fleet's live slot total as its
// effective parallelism, and a slot-total change mid-run re-targets the
// pool without a new runtime.
func TestElasticCapacity(t *testing.T) {
	fleet := &fakeFleet{slots: 1, ceiling: 4}
	rt := New(Config{Workers: 1, Backend: fleet})
	if got := rt.sem.capacity(); got != 1 {
		t.Fatalf("initial pool capacity = %d, want 1 (live slot total)", got)
	}

	started := make(chan int, 4)
	release := make(chan struct{})
	var futs []*Future
	for i := 0; i < 4; i++ {
		i := i
		futs = append(futs, rt.Submit(Opts{Name: "hold"}, func(_ *TaskCtx, _ []any) (any, error) {
			started <- i
			<-release
			return i, nil
		}))
	}

	// One slot: exactly one body starts; the other three queue.
	<-started
	select {
	case i := <-started:
		t.Fatalf("task %d started beyond the 1-slot capacity", i)
	case <-time.After(100 * time.Millisecond):
	}

	// The fleet grows to 4 slots: the watcher re-targets the pool and the
	// three queued bodies start without any new submission.
	fleet.setSlots(4)
	if got := rt.sem.capacity(); got != 4 {
		t.Fatalf("pool capacity after growth = %d, want 4", got)
	}
	for n := 1; n < 4; n++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d bodies running after the fleet grew to 4 slots", n)
		}
	}

	// Shrink below the configured base: the pool clamps at Workers, and
	// slots already held are never revoked — the run finishes cleanly.
	fleet.setSlots(0)
	if got := rt.sem.capacity(); got != 1 {
		t.Fatalf("pool capacity after shrink = %d, want the Workers base 1", got)
	}
	close(release)
	for _, f := range futs {
		if _, err := rt.Get(f); err != nil {
			t.Fatal(err)
		}
	}
}
