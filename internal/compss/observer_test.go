package compss

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// seqObserver validates, for every task, the causal event order the
// Observer API documents (observer.go): Submit < DepsReady < Start(0), each
// attempt closed by End or Failure, Retry(k+1) only after a non-final
// Failure(k), exactly one terminal event, and dep-failed tasks emitting
// only Submit < Failure(-1, "deps", final). A global mutex is enough —
// events of one task must not race each other, and the -race runs of this
// test are what check they don't.
type seqObserver struct {
	mu       sync.Mutex
	state    map[int]string // task -> "submitted" | "ready" | "running" | "failed" | "done"
	attempts map[int]int    // next expected Start attempt
	errs     []string
}

func newSeqObserver() *seqObserver {
	return &seqObserver{state: map[int]string{}, attempts: map[int]int{}}
}

func (o *seqObserver) fail(ev Event, want string) {
	o.errs = append(o.errs, fmt.Sprintf("task %d (%s): %s(attempt %d, final %v) in state %q, want %s",
		ev.Task, ev.Name, ev.Kind, ev.Attempt, ev.Final, o.state[ev.Task], want))
}

func (o *seqObserver) OnSubmit(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.state[ev.Task]; dup {
		o.fail(ev, "no prior state")
	}
	o.state[ev.Task] = "submitted"
}

func (o *seqObserver) OnDepsReady(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.state[ev.Task] != "submitted" {
		o.fail(ev, `"submitted"`)
	}
	o.state[ev.Task] = "ready"
}

func (o *seqObserver) OnStart(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if s := o.state[ev.Task]; s != "ready" {
		o.fail(ev, `"ready"`)
	}
	if ev.Attempt != o.attempts[ev.Task] {
		o.fail(ev, fmt.Sprintf("attempt %d", o.attempts[ev.Task]))
	}
	o.attempts[ev.Task]++
	o.state[ev.Task] = "running"
}

func (o *seqObserver) OnEnd(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.state[ev.Task] != "running" {
		o.fail(ev, `"running"`)
	}
	o.state[ev.Task] = "done"
}

func (o *seqObserver) OnRetry(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.state[ev.Task] != "failed" {
		o.fail(ev, `"failed"`)
	}
	if ev.Attempt != o.attempts[ev.Task] {
		o.fail(ev, fmt.Sprintf("upcoming attempt %d", o.attempts[ev.Task]))
	}
	o.state[ev.Task] = "ready"
}

func (o *seqObserver) OnFailure(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if ev.Attempt < 0 { // dependency failure: body never ran
		if o.state[ev.Task] != "submitted" || ev.Mode != "deps" || !ev.Final {
			o.fail(ev, `"submitted" with mode "deps", final`)
		}
		o.state[ev.Task] = "done"
		return
	}
	if o.state[ev.Task] != "running" {
		o.fail(ev, `"running"`)
	}
	if ev.Final {
		o.state[ev.Task] = "done"
	} else {
		o.state[ev.Task] = "failed"
	}
}

func (o *seqObserver) OnDegrade(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.state[ev.Task] != "failed" {
		o.fail(ev, `"failed" (non-final Failure precedes Degrade)`)
	}
	o.state[ev.Task] = "done"
}

// check reports accumulated violations and verifies every task terminated.
func (o *seqObserver) check(t *testing.T, wantTasks int) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range o.errs {
		t.Error(e)
	}
	if len(o.state) != wantTasks {
		t.Errorf("observer saw %d tasks, want %d", len(o.state), wantTasks)
	}
	for id, s := range o.state {
		if s != "done" {
			t.Errorf("task %d ended in state %q, want \"done\"", id, s)
		}
	}
}

// TestObserverCausalOrder drives a concurrent workload through every event
// path — plain success, fan-in dependencies, fault-injected retries, a
// degraded task, a permanently failed task and its dep-failed dependents —
// and asserts each task's event sequence respects the documented causal
// order. Run under -race, it also proves per-task events never fire
// concurrently.
func TestObserverCausalOrder(t *testing.T) {
	obs := newSeqObserver()
	rt := New(Config{
		Workers:       8,
		OnTaskFailure: Degrade,
		Observers:     []Observer{obs},
		Faults: &FaultPlan{Faults: []Fault{
			{Name: "flaky", Nth: -1, Attempts: 1, Mode: FaultError},
			{Name: "dead", Nth: -1, Attempts: -1, Mode: FaultError},
			{Name: "degrading", Nth: -1, Attempts: -1, Mode: FaultPanic},
		}},
	})
	body := func(_ *TaskCtx, _ []any) (any, error) {
		time.Sleep(200 * time.Microsecond)
		return 1, nil
	}

	var layer []*Future
	for i := 0; i < 24; i++ {
		layer = append(layer, rt.Submit(Opts{Name: "gen"}, body))
	}
	var mids []*Future
	for i := 0; i < 24; i++ {
		mids = append(mids, rt.Submit(Opts{Name: "flaky", Retries: 2}, body, layer[i%len(layer)]))
	}
	deg := rt.Submit(Opts{Name: "degrading", Retries: 1, Fallback: 7}, body, mids[0])
	dead := rt.Submit(Opts{Name: "dead", Retries: 1}, body)
	var poisoned []*Future
	for i := 0; i < 4; i++ {
		poisoned = append(poisoned, rt.Submit(Opts{Name: "victim"}, body, dead))
	}
	sink := rt.Submit(Opts{Name: "sink"}, func(_ *TaskCtx, args []any) (any, error) {
		return len(args), nil
	}, mids, deg)

	if v, err := rt.Get(sink); err != nil || v.(int) != 2 {
		t.Fatalf("sink = %v, %v", v, err)
	}
	for _, p := range poisoned {
		if _, err := rt.Get(p); err == nil {
			t.Fatal("dependent of a failed task must fail")
		}
	}
	rt.WaitAll() // drain; the dead/victim errors are expected

	want := len(layer) + len(mids) + len(poisoned) + 3 // + deg, dead, sink
	obs.check(t, want)
}

// TestZeroObserverEmitsNothing pins the overhead contract's semantic half:
// a runtime constructed without observers must not retain or invoke any.
func TestZeroObserverEmitsNothing(t *testing.T) {
	rt := New(Config{Workers: 2})
	if rt.obs.Load() != nil {
		t.Fatal("zero-observer runtime holds an observer list")
	}
	f := rt.Submit(Opts{Name: "n"}, constTask(1))
	if _, err := rt.Get(f); err != nil {
		t.Fatal(err)
	}
	if rt.obs.Load() != nil {
		t.Fatal("observer list appeared during execution")
	}
}

// TestObserversViaConfigFeedStats asserts the Config.Observers path drives
// the StatsObserver: one TaskStat per submitted task, no wrapper needed.
func TestObserversViaConfigFeedStats(t *testing.T) {
	s := NewStatsObserver()
	rt := New(Config{Workers: 2, Observers: []Observer{s}})
	for i := 0; i < 6; i++ {
		rt.Submit(Opts{Name: "w"}, constTask(i))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if len(stats) != 6 {
		t.Fatalf("stats = %d, want 6", len(stats))
	}
	for _, st := range stats {
		if st.Attempts != 1 || len(st.PerAttempt) != 1 || st.PerAttempt[0].Outcome != "ok" {
			t.Fatalf("unexpected per-attempt record: %+v", st)
		}
	}
}
