// External test package: internal/cluster (transitively internal/trace)
// imports compss, so the end-to-end replay test cannot live in the compss
// package itself without an import cycle.
package compss_test

import (
	"testing"

	"taskml/internal/cluster"
	"taskml/internal/compss"
)

func TestCapturedGraphSchedulesOnCluster(t *testing.T) {
	// End-to-end: run a small map-reduce, then replay the captured graph on
	// two cluster sizes and check the parallel one is faster.
	rt := compss.New(compss.Config{Workers: 4})
	var parts []*compss.Future
	for i := 0; i < 16; i++ {
		parts = append(parts, rt.Submit(compss.Opts{Name: "map", Cost: 1},
			func(_ *compss.TaskCtx, _ []any) (any, error) { return 1, nil }))
	}
	red := rt.Submit(compss.Opts{Name: "reduce", Cost: 0.5}, func(_ *compss.TaskCtx, args []any) (any, error) {
		s := 0
		for _, v := range args[0].([]any) {
			s += v.(int)
		}
		return s, nil
	}, parts)
	v, err := rt.Get(red)
	if err != nil || v.(int) != 16 {
		t.Fatalf("reduce = %v, %v", v, err)
	}

	g := rt.Graph()
	small, err := cluster.ScheduleGraph(g, cluster.Homogeneous("small", 1, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	big, err := cluster.ScheduleGraph(g, cluster.Homogeneous("big", 1, 16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if big.Makespan >= small.Makespan {
		t.Fatalf("16 cores (%v) not faster than 2 cores (%v)", big.Makespan, small.Makespan)
	}
	if big.Makespan < g.CriticalPath() {
		t.Fatalf("makespan %v below critical path %v", big.Makespan, g.CriticalPath())
	}
}
