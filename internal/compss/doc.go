// Package compss is a task-based workflow runtime in the style of PyCOMPSs,
// the programming model the paper builds on: plain functions become
// asynchronous tasks, data dependencies between tasks are detected
// automatically from their arguments, and the runtime executes the resulting
// DAG in parallel.
//
// # Programming model
//
// A task is submitted with Submit (from the main program) or TaskCtx.Submit
// (from inside another task — "nesting", the PyCOMPSs feature the paper uses
// to overlap the CNN folds in Figure 10). Any argument that is a *Future, or
// a []*Future, marks a dependency on the producing task; the runtime resolves
// it to the produced value before the task body runs:
//
//	a := rt.Submit(compss.Opts{Name: "load", Cost: 1}, loadFn)
//	b := rt.Submit(compss.Opts{Name: "fit", Cost: 5}, fitFn, a) // waits for a
//	model, err := rt.Get(b)                                     // synchronises
//
// Get is a synchronisation: besides blocking the caller, it raises the
// calling context's *sync floor* — tasks submitted afterwards cannot, in
// virtual time, start before the synchronised value reached the master.
// This reproduces the behaviour the paper describes for Figure 9, where each
// epoch's weight synchronisation "stops the generation of tasks". Nested
// contexts have their own local floor, so a Get inside a nested task does
// not delay sibling tasks — the Figure 10 improvement.
//
// # Execution and time
//
// Tasks really run, on a goroutine pool of Config.Workers slots, so model
// outputs are genuine. Virtual time is handled elsewhere: every submission
// is recorded in a graph.Graph (with its analytic cost and resource demand)
// that internal/cluster replays against a virtual cluster description.
//
// Where a body runs is pluggable: SubmitExec / SubmitExecN submit *named*
// registered functions (internal/exec) instead of closures, and
// Config.Backend routes those attempts either in-process (nil backend) or
// to out-of-process workers (exec.Remote). Closure tasks always run
// in-process.
//
// # Failure, observation
//
// Attempts that error or panic become TaskErrors and feed the retry /
// deadline / degraded-mode machinery selected by Config.OnTaskFailure;
// FaultPlan injects failures deterministically for tests. Config.Observers
// receive the full ordered event stream (Submit ≤ DepsReady ≤ Start ≤
// End/Failure/Retry/Degrade) that internal/trace renders as Chrome traces.
//
// # Concurrency and ownership
//
// Runtime methods are safe for concurrent use from the main program and
// from task bodies. A Future's value is owned by the runtime; bodies
// receive resolved arguments they must treat as shared and immutable unless
// the submit site guarantees exclusive ownership (see dsarray.ReduceInPlace
// for the one sanctioned exception). Observer callbacks run on runtime
// goroutines and must not block.
//
// # Scheduling
//
// Dispatch is work-stealing (executor.go, DESIGN.md "Scheduler"): each
// worker slot owns a deque of ready tasks, a body's nested submissions push
// onto its own worker's deque without a runtime-global lock, external
// submissions round-robin over the live workers, and idle workers steal.
// Three consequences are part of the package contract:
//
//   - Locality: a completing task wakes its newly-ready dependents onto the
//     completing worker's deque, so a future tends to be consumed where it
//     was produced. Tasks must not rely on this — any attempt can be stolen
//     by any worker (Event.Stolen reports when one was), so bodies must be
//     goroutine-agnostic.
//   - No execution-order guarantee exists between independent ready tasks:
//     the owner runs its deque LIFO, thieves take FIFO, so sibling tasks run
//     in no particular order. Only dependency order is guaranteed.
//   - A task whose dependency failed is declared dep-failed once all of its
//     dependencies completed, not at the instant the first one failed; its
//     terminal event sequence is unchanged, but the failure is observed
//     after the last dependency settles.
//
// Waits help instead of blocking: Get and Barrier execute ready tasks
// inline while they wait (within the Config.Workers slot bound), so a
// parent blocked on its child makes progress even with Workers: 1.
package compss
