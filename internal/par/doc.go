// Package par is the shared intra-task parallelism layer under the numeric
// kernels (internal/mat, internal/sigproc, internal/knn): a bounded global
// helper pool behind two primitives, For (chunked parallel loops) and Do
// (parallel thunks).
//
// # The oversubscription contract
//
// Kernel parallelism must compose with the task-level parallelism of
// internal/compss: a runtime with Config.Workers = W runs W task bodies
// concurrently, and if every body ran a kernel on its own GOMAXPROCS-wide
// pool the machine would execute W×P runnable goroutines. par bounds the
// *sum* instead:
//
//   - SetLimit(L) caps the kernel layer at L concurrently running
//     goroutines in total, across every For/Do in the process. L-1 helper
//     tokens live in one global pool; each parallel region additionally
//     runs on its calling goroutine.
//   - Token acquisition never blocks. A kernel that finds the pool drained
//     simply runs its chunks on the caller — so a wide top-level caller
//     (a CLI building features on the master) and many task bodies can
//     share one limit without deadlock or oversubscription: total kernel
//     concurrency ≤ callers + L - 1.
//
// The conventions, then: top-level single-stream programs (cmd/*, feature
// extraction on the master) leave the default limit (GOMAXPROCS) so one
// kernel call uses the whole machine; programs about to drive a wide
// compss.Runtime drop the kernel layer to SetLimit(1) so the task pool owns
// the cores; worker processes of the out-of-process backend (internal/exec)
// do the same, because their parallelism budget is their slot count.
//
// # Public surface and concurrency
//
// SetLimit / Limit configure the global pool; For and Do are safe to call
// from any number of goroutines, including nested (a parallel region inside
// a parallel region degrades to serial rather than deadlocking).
package par
