package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is the process-global helper-token pool. Helpers borrow a token for
// the duration of one parallel region and return it when the region drains.
type pool struct {
	limit  int
	tokens chan struct{}
}

var current atomic.Pointer[pool]

func init() {
	SetLimit(runtime.GOMAXPROCS(0))
}

// SetLimit caps the kernel layer at n concurrently running goroutines
// (callers included) process-wide. n < 1 is treated as 1: fully serial.
// Regions already running keep the tokens they hold; the new limit governs
// every region entered afterwards.
func SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	p := &pool{limit: n, tokens: make(chan struct{}, n-1)}
	for i := 0; i < n-1; i++ {
		p.tokens <- struct{}{}
	}
	current.Store(p)
}

// Limit returns the current kernel-parallelism cap.
func Limit() int { return current.Load().limit }

// firstPanic captures the first panic raised inside a parallel region so it
// can be re-raised on the calling goroutine (matching the containment
// behaviour kernels have when run serially: compss task bodies recover
// panics, which only works if the panic surfaces on the body's goroutine).
type firstPanic struct {
	once sync.Once
	val  any
}

func (f *firstPanic) capture() {
	if r := recover(); r != nil {
		f.once.Do(func() { f.val = r })
	}
}

func (f *firstPanic) rethrow() {
	if f.val != nil {
		panic(fmt.Sprintf("par: panic in parallel region: %v", f.val))
	}
}

// For runs fn over the half-open chunks of [0, n): fn(lo, hi), covering
// every index exactly once. Chunks execute on the caller plus however many
// helper tokens are free (never more than chunks-1); with a drained pool or
// Limit() == 1 the loop degenerates to a single fn(0, n) call on the
// caller, so fn must accept ranges wider than grain. fn must be safe to
// call concurrently on disjoint ranges.
//
// grain is the smallest unit worth shipping to another goroutine — pick it
// so one chunk is ≥ a few microseconds of work.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	p := current.Load()
	if chunks == 1 || p.limit == 1 {
		fn(0, n)
		return
	}

	var next int64
	var pan firstPanic
	work := func() {
		defer pan.capture()
		for {
			c := atomic.AddInt64(&next, 1) - 1
			if c >= int64(chunks) {
				return
			}
			lo := int(c) * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}

	var wg sync.WaitGroup
	for spawned := 0; spawned < chunks-1; spawned++ {
		select {
		case <-p.tokens:
		default:
			spawned = chunks // pool drained: run the rest on the caller
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { p.tokens <- struct{}{} }()
			work()
		}()
	}
	work()
	wg.Wait()
	pan.rethrow()
}

// ForScratch is For for loop bodies that need per-goroutine scratch (an
// arena buffer, an FFT work area): each goroutine that participates in the
// region — the caller plus any helpers that won a token — calls get exactly
// once before its first chunk and put exactly once after its last, so a
// scratch value is reused across all the chunks one goroutine executes and
// never shared between two. The handoff composes with SetLimit the same way
// For does: at Limit() == 1 (or a drained pool) the whole loop runs on the
// caller with a single get/put pair around one fn(0, n, scratch) call, so
// the serial path costs one scratch checkout, not one per chunk.
//
// fn must treat scratch as exclusively owned for the duration of a call;
// put receives the value back for recycling (typically a mat.Pool.Put).
func ForScratch(n, grain int, get func() any, put func(any), fn func(lo, hi int, scratch any)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	p := current.Load()
	if chunks == 1 || p.limit == 1 {
		s := get()
		fn(0, n, s)
		put(s)
		return
	}

	var next int64
	var pan firstPanic
	work := func() {
		s := get()
		defer put(s)
		defer pan.capture()
		for {
			c := atomic.AddInt64(&next, 1) - 1
			if c >= int64(chunks) {
				return
			}
			lo := int(c) * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi, s)
		}
	}

	var wg sync.WaitGroup
	for spawned := 0; spawned < chunks-1; spawned++ {
		select {
		case <-p.tokens:
		default:
			spawned = chunks // pool drained: run the rest on the caller
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { p.tokens <- struct{}{} }()
			work()
		}()
	}
	work()
	wg.Wait()
	pan.rethrow()
}

// Do runs the thunks, concurrently when helper tokens are free, and returns
// when all have completed. With Limit() == 1 (or a drained pool) the thunks
// run sequentially on the caller.
func Do(thunks ...func()) {
	switch len(thunks) {
	case 0:
		return
	case 1:
		thunks[0]()
		return
	}
	var next int64
	var pan firstPanic
	work := func() {
		defer pan.capture()
		for {
			c := atomic.AddInt64(&next, 1) - 1
			if c >= int64(len(thunks)) {
				return
			}
			thunks[c]()
		}
	}
	p := current.Load()
	var wg sync.WaitGroup
	for spawned := 0; spawned < len(thunks)-1; spawned++ {
		select {
		case <-p.tokens:
		default:
			spawned = len(thunks)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { p.tokens <- struct{}{} }()
			work()
		}()
	}
	work()
	wg.Wait()
	pan.rethrow()
}
