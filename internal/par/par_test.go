package par

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// restoreLimit resets the global pool after tests that change it.
func restoreLimit(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { SetLimit(runtime.GOMAXPROCS(0)) })
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	restoreLimit(t)
	for _, limit := range []int{1, 2, 8} {
		SetLimit(limit)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 64, 2000} {
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("limit=%d n=%d grain=%d: index %d visited %d times", limit, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestDoRunsEveryThunk(t *testing.T) {
	restoreLimit(t)
	for _, limit := range []int{1, 4} {
		SetLimit(limit)
		var ran [9]int32
		thunks := make([]func(), len(ran))
		for i := range thunks {
			i := i
			thunks[i] = func() { atomic.AddInt32(&ran[i], 1) }
		}
		Do(thunks...)
		for i, r := range ran {
			if r != 1 {
				t.Fatalf("limit=%d: thunk %d ran %d times", limit, i, r)
			}
		}
	}
	Do() // zero thunks must be a no-op
}

func TestSetLimitBoundsConcurrency(t *testing.T) {
	restoreLimit(t)
	const limit = 3
	SetLimit(limit)
	var inFlight, peak int32
	For(256, 1, func(lo, hi int) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		for i := 0; i < 2000; i++ { // keep the chunk alive long enough to overlap
			_ = i * i
		}
		atomic.AddInt32(&inFlight, -1)
	})
	if peak > limit {
		t.Fatalf("observed %d concurrent chunks, limit %d", peak, limit)
	}
}

func TestLimitOneIsSerialOnCaller(t *testing.T) {
	restoreLimit(t)
	SetLimit(1)
	if Limit() != 1 {
		t.Fatalf("Limit() = %d", Limit())
	}
	var order []int
	For(10, 3, func(lo, hi int) { order = append(order, lo) }) // unsynchronised: must be single-goroutine
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("chunks out of order under limit 1: %v", order)
		}
	}
}

func TestNestedForComposesWithoutDeadlock(t *testing.T) {
	restoreLimit(t)
	SetLimit(2)
	var total int64
	For(8, 1, func(lo, hi int) {
		For(100, 10, func(l, h int) {
			atomic.AddInt64(&total, int64(h-l))
		})
	})
	if total != 800 {
		t.Fatalf("nested total = %d, want 800", total)
	}
}

// Many goroutines (as the compss worker pool would) hammering For at once:
// the global pool must stay bounded and every loop must still complete.
func TestConcurrentCallersShareOnePool(t *testing.T) {
	restoreLimit(t)
	SetLimit(4)
	var wg sync.WaitGroup
	var grand int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local int64
			For(500, 7, func(lo, hi int) {
				atomic.AddInt64(&local, int64(hi-lo))
			})
			atomic.AddInt64(&grand, local)
		}()
	}
	wg.Wait()
	if grand != 16*500 {
		t.Fatalf("grand total = %d, want %d", grand, 16*500)
	}
}

func TestForPanicSurfacesOnCaller(t *testing.T) {
	restoreLimit(t)
	SetLimit(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the chunk panic to re-surface on the caller")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	For(64, 1, func(lo, hi int) {
		if lo == 13 {
			panic("boom")
		}
	})
}

func TestSetLimitFloorsAtOne(t *testing.T) {
	restoreLimit(t)
	SetLimit(-5)
	if Limit() != 1 {
		t.Fatalf("Limit() = %d, want 1", Limit())
	}
	For(4, 1, func(lo, hi int) {})
}
