package svm

import (
	"fmt"
	"math"

	"taskml/internal/compss"
	"taskml/internal/costs"
	"taskml/internal/dsarray"
	"taskml/internal/mat"
)

// CascadeParams configures the CascadeSVM estimator.
type CascadeParams struct {
	// SVC configures the solver run inside every cascade task.
	SVC SVCParams
	// Iterations is the number of cascade passes; dislib repeats the
	// cascade "for a fixed number of iterations or until a convergence
	// criterion is met". Default 3.
	Iterations int
	// Arity is the merge fan-in of the reduction. Default 2 (the paper's
	// Figure 3 merges "two by two").
	Arity int
	// CoresPerTask is the per-task core reservation recorded in the graph;
	// the paper's Figure 11a runs "6 tasks [per node], each using 8 cores".
	// Default 1.
	CoresPerTask int
	// SVFraction is the fraction of a task's input rows assumed to become
	// support vectors when estimating downstream task costs (costs must be
	// declared at submission time, before the actual SV count exists).
	// Default 0.5.
	SVFraction float64
	// CheckConvergence stops the cascade early when the dual objective's
	// relative change between iterations drops below ConvergenceTol —
	// dislib's check_convergence, which the paper's description covers
	// ("repeated for a fixed number of iterations or until a convergence
	// criterion is met"). Checking synchronises the objective to the
	// master after every iteration, exactly as dislib does.
	CheckConvergence bool
	// ConvergenceTol is the relative objective tolerance. Default 1e-3.
	ConvergenceTol float64
}

func (p CascadeParams) withDefaults() CascadeParams {
	if p.Iterations == 0 {
		p.Iterations = 3
	}
	if p.Arity == 0 {
		p.Arity = 2
	}
	if p.CoresPerTask == 0 {
		p.CoresPerTask = 1
	}
	if p.SVFraction == 0 {
		p.SVFraction = 0.5
	}
	if p.ConvergenceTol == 0 {
		p.ConvergenceTol = 1e-3
	}
	return p
}

// casNode is the value flowing through the cascade: a set of support
// vectors and the SVC trained at the node that produced them.
type casNode struct {
	x     *mat.Dense
	y     []int
	model *SVC
}

// Iterations returns how many cascade passes the last Fit actually ran
// (less than Params.Iterations when convergence checking stopped early).
func (c *CascadeSVM) IterationsRun() int { return c.itersRun }

// CascadeSVM is the distributed SVM of the paper's §III-C.1: the input
// ds-array's row blocks are trained independently, support vectors are
// merged pairwise and retrained until a single set remains, and the process
// repeats with the final support vectors fed back to every partition. "The
// maximum amount of parallelism of the fitting process is thus limited by
// the number of row blocks ... the scalability of the estimator is limited
// by the reduction phase of the cascade."
type CascadeSVM struct {
	Params CascadeParams

	model    *compss.Future // resolves to *casNode (final trained node)
	dims     int
	itersRun int
}

// Fit builds the cascade workflow over x (samples) and y (labels, a
// 1-column ds-array with the same row blocking). It does not synchronise;
// the trained model is a future consumed by Predict/Score tasks.
func (c *CascadeSVM) Fit(x, y *dsarray.Array) error {
	if x.Rows() != y.Rows() {
		return fmt.Errorf("svm: %d samples vs %d labels", x.Rows(), y.Rows())
	}
	if y.Cols() != 1 {
		return fmt.Errorf("svm: labels must have 1 column, got %d", y.Cols())
	}
	if x.NumRowBlocks() != y.NumRowBlocks() {
		return fmt.Errorf("svm: x has %d row blocks, y has %d", x.NumRowBlocks(), y.NumRowBlocks())
	}
	p := c.Params.withDefaults()
	tc := x.Ctx()
	d := x.Cols()
	c.dims = d

	type lf struct {
		fut *compss.Future
		est int // estimated row count for cost declaration
	}

	svcParams := p.SVC
	fitBlock := func(name string, est int, args ...any) lf {
		fut := tc.Submit(compss.Opts{
			Name:     name,
			Cost:     costs.SVCFit(est, d),
			Cores:    p.CoresPerTask,
			OutBytes: costs.Bytes(int(p.SVFraction*float64(est))+1, d+1),
		}, func(_ *compss.TaskCtx, resolved []any) (any, error) {
			// Gather training rows from every input: (block, labels) pairs
			// and/or casNodes from previous layers.
			var xs []*mat.Dense
			var ys []int
			for i := 0; i < len(resolved); {
				switch v := resolved[i].(type) {
				case *mat.Dense: // block followed by its labels block
					lbl := resolved[i+1].(*mat.Dense)
					xs = append(xs, v)
					ys = append(ys, dsarray.LabelsToInts(lbl)...)
					i += 2
				case *casNode:
					xs = append(xs, v.x)
					ys = append(ys, v.y...)
					i++
				default:
					return nil, fmt.Errorf("svm: unexpected cascade input %T", v)
				}
			}
			xcat := mat.VStack(xs...)
			model := &SVC{Params: svcParams}
			if err := model.Fit(xcat, ys); err != nil {
				return nil, err
			}
			svx, svy := model.SupportSet()
			return &casNode{x: svx, y: svy, model: model}, nil
		}, args...)
		return lf{fut: fut, est: int(p.SVFraction*float64(est)) + 1}
	}

	var prev *lf // final node of the previous iteration
	prevObj := math.Inf(1)
	c.itersRun = 0
	for iter := 0; iter < p.Iterations; iter++ {
		// Layer 0: one task per row block (merged with the previous
		// iteration's support vectors after the first pass).
		level := make([]lf, x.NumRowBlocks())
		for i := range level {
			rows := x.RowBlockRows(i)
			args := []any{x.RowBlock(i), y.RowBlock(i)}
			est := rows
			if prev != nil {
				args = append(args, prev.fut)
				est += prev.est
			}
			level[i] = fitBlock("svc_fit", est, args...)
		}
		// Reduction: merge Arity nodes at a time and retrain.
		for len(level) > 1 {
			var next []lf
			for i := 0; i < len(level); i += p.Arity {
				end := i + p.Arity
				if end > len(level) {
					end = len(level)
				}
				if end-i == 1 {
					next = append(next, level[i])
					continue
				}
				est := 0
				args := make([]any, 0, end-i)
				for _, node := range level[i:end] {
					est += node.est
					args = append(args, node.fut)
				}
				next = append(next, fitBlock("svc_merge", est, args...))
			}
			level = next
		}
		prev = &level[0]
		c.itersRun++

		if p.CheckConvergence && iter < p.Iterations-1 {
			// Compute the dual objective of the iteration's final model and
			// synchronise it — the per-iteration sync dislib pays for its
			// convergence check.
			objFut := tc.Submit(compss.Opts{
				Name:     "svc_objective",
				Cost:     costs.SVCPredict(prev.est, prev.est, d),
				OutBytes: 8,
			}, func(_ *compss.TaskCtx, args []any) (any, error) {
				node := args[0].(*casNode)
				return nodeObjective(node)
			}, prev.fut)
			v, err := tc.Get(objFut)
			if err != nil {
				return err
			}
			obj := v.(float64)
			if math.Abs(obj-prevObj) <= p.ConvergenceTol*math.Abs(prevObj) {
				break
			}
			prevObj = obj
		}
	}
	c.model = prev.fut
	return nil
}

// nodeObjective evaluates the dual objective of a cascade node's model.
func nodeObjective(node *casNode) (float64, error) {
	return node.model.Objective()
}

// Model synchronises and returns the final trained SVC.
func (c *CascadeSVM) Model(tc *compss.TaskCtx) (*SVC, error) {
	if c.model == nil {
		return nil, ErrNotFitted
	}
	v, err := tc.Get(c.model)
	if err != nil {
		return nil, err
	}
	return v.(*casNode).model, nil
}

// Predict classifies x with one task per row block, returning a 1-column
// ds-array of labels with x's row blocking.
func (c *CascadeSVM) Predict(x *dsarray.Array) (*dsarray.Array, error) {
	if c.model == nil {
		return nil, ErrNotFitted
	}
	if x.Cols() != c.dims {
		return nil, fmt.Errorf("svm: %d features, model fitted on %d", x.Cols(), c.dims)
	}
	tc := x.Ctx()
	nrb := x.NumRowBlocks()
	blocks := make([][]*compss.Future, nrb)
	p := c.Params.withDefaults()
	for i := 0; i < nrb; i++ {
		rows := x.RowBlockRows(i)
		estSV := int(p.SVFraction*float64(x.BlockRows())) + 1
		blocks[i] = []*compss.Future{tc.Submit(compss.Opts{
			Name:     "svc_predict",
			Cost:     costs.SVCPredict(estSV, rows, c.dims),
			OutBytes: costs.Bytes(rows, 1),
		}, func(_ *compss.TaskCtx, args []any) (any, error) {
			blk := args[0].(*mat.Dense)
			node := args[1].(*casNode)
			labels, err := node.model.Predict(blk)
			if err != nil {
				return nil, err
			}
			out := mat.New(blk.Rows, 1)
			for r, l := range labels {
				out.Set(r, 0, float64(l))
			}
			return out, nil
		}, x.RowBlock(i), c.model)}
	}
	return dsarray.FromBlocks(tc, blocks, x.Rows(), 1, x.BlockRows(), 1), nil
}

// Score returns the mean accuracy on (x, y): per-block comparison tasks, a
// pairwise reduction, and one synchronisation — the paper's "calculates the
// score returning the mean accuracy on a given test data and labels".
func (c *CascadeSVM) Score(x, y *dsarray.Array) (float64, error) {
	pred, err := c.Predict(x)
	if err != nil {
		return 0, err
	}
	return dsarray.Accuracy(pred, y)
}
