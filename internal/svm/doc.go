// Package svm implements the support-vector machinery of the paper's CSVM
// experiment (§III-C.1): a sequential-minimal-optimization (SMO) binary SVC
// equivalent to the scikit-learn SVC that dislib's CascadeSVM calls inside
// each task, and the CascadeSVM estimator itself in cascade.go.
//
// # Public surface
//
// SVC (SVCParams, linear or RBF Kernel) is the in-task solver; CascadeSVM
// (CascadeParams) is the distributed estimator, building the cascade of
// Figure 3 — per-block fits whose support vectors merge pairwise over
// CascadeParams.Iterations rounds.
//
// # Concurrency and ownership
//
// CascadeSVM.Fit submits tasks on the caller's compss context; each task
// fits an independent SVC on its own data copy. A fitted SVC or CascadeSVM
// is immutable and safe for concurrent Predict. Training is deterministic
// in SVCParams.Seed.
package svm
