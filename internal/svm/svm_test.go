package svm

import (
	"math"
	"math/rand"
	"testing"

	"taskml/internal/compss"
	"taskml/internal/dsarray"
	"taskml/internal/mat"
)

func newRT() *compss.Runtime { return compss.New(compss.Config{Workers: 4}) }

// blobs generates two Gaussian clusters, labels 0/1, separation sep.
func blobs(rng *rand.Rand, n, d int, sep float64) (*mat.Dense, []int) {
	x := mat.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		off := -sep / 2
		if c == 1 {
			off = sep / 2
		}
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64()+off)
		}
	}
	return x, y
}

// xorData is the classic non-linearly-separable set.
func xorData(rng *rand.Rand, n int) (*mat.Dense, []int) {
	x := mat.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	return x, y
}

func TestSVCSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := blobs(rng, 120, 3, 5)
	m := &SVC{Params: SVCParams{Seed: 1}}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	acc, err := m.Score(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.98 {
		t.Fatalf("training accuracy %v on well-separated blobs", acc)
	}
	// Generalisation on fresh data.
	xt, yt := blobs(rng, 60, 3, 5)
	acc, err = m.Score(xt, yt)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestSVCXorNeedsRBF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := xorData(rng, 240)
	rbf := &SVC{Params: SVCParams{Kernel: RBF, Gamma: 1, C: 5, Seed: 2}}
	if err := rbf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	accRBF, _ := rbf.Score(x, y)
	lin := &SVC{Params: SVCParams{Kernel: Linear, C: 5, Seed: 2}}
	if err := lin.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	accLin, _ := lin.Score(x, y)
	if accRBF < 0.9 {
		t.Fatalf("RBF accuracy %v on XOR", accRBF)
	}
	if accLin > 0.75 {
		t.Fatalf("linear kernel should fail on XOR, got %v", accLin)
	}
}

func TestSVCSupportVectorsSubsetAndMargin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := blobs(rng, 100, 2, 6)
	m := &SVC{Params: SVCParams{Seed: 3}}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.NumSupport() == 0 || m.NumSupport() > x.Rows {
		t.Fatalf("support vector count %d", m.NumSupport())
	}
	// With a large margin, most points should NOT be support vectors.
	if m.NumSupport() > x.Rows/2 {
		t.Fatalf("%d of %d samples are SVs for well-separated data", m.NumSupport(), x.Rows)
	}
	// Alphas bounded by C.
	p := m.Params.withDefaults()
	for _, a := range m.Alphas {
		if a < 0 || a > p.C+1e-9 {
			t.Fatalf("alpha %v outside [0, C]", a)
		}
	}
}

func TestSVCDegenerateSingleClass(t *testing.T) {
	x := mat.NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	m := &SVC{}
	if err := m.Fit(x, []int{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pred {
		if p != 1 {
			t.Fatalf("single-class model predicted %d", p)
		}
	}
}

func TestSVCErrors(t *testing.T) {
	m := &SVC{}
	if err := m.Fit(mat.New(2, 2), []int{0}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if err := m.Fit(mat.New(0, 2), nil); err == nil {
		t.Fatal("want empty set error")
	}
	if err := m.Fit(mat.New(2, 2), []int{0, 7}); err == nil {
		t.Fatal("want invalid label error")
	}
	if _, err := (&SVC{}).Predict(mat.New(1, 2)); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
	fitted := &SVC{}
	if err := fitted.Fit(mat.NewFromRows([][]float64{{0, 0}, {1, 1}}), []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fitted.Predict(mat.New(1, 5)); err == nil {
		t.Fatal("want feature mismatch error")
	}
}

func TestSVCDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := blobs(rng, 80, 2, 2)
	a := &SVC{Params: SVCParams{Seed: 9}}
	b := &SVC{Params: SVCParams{Seed: 9}}
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if a.NumSupport() != b.NumSupport() || math.Abs(a.B-b.B) > 1e-12 {
		t.Fatal("same seed produced different models")
	}
}

func TestCascadeSVMMatchesQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := blobs(rng, 300, 4, 4)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 50, 4)
	ya := dsarray.FromLabels(rt.Main(), y, 50)
	c := &CascadeSVM{Params: CascadeParams{SVC: SVCParams{Seed: 5}, Iterations: 2}}
	if err := c.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	acc, err := c.Score(xa, ya)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("cascade accuracy %v", acc)
	}
}

func TestCascadeGraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := blobs(rng, 160, 3, 4)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 20, 3) // 8 row blocks
	ya := dsarray.FromLabels(rt.Main(), y, 20)
	c := &CascadeSVM{Params: CascadeParams{SVC: SVCParams{Seed: 6}, Iterations: 2}}
	if err := c.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	counts := rt.Graph().CountByName()
	// One svc_fit per row block per iteration.
	if counts["svc_fit"] != 16 {
		t.Fatalf("svc_fit = %d, want 16", counts["svc_fit"])
	}
	// Pairwise reduction of 8 → 7 merges, per iteration.
	if counts["svc_merge"] != 14 {
		t.Fatalf("svc_merge = %d, want 14", counts["svc_merge"])
	}
	if err := rt.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeArityReducesMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := blobs(rng, 160, 3, 4)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 20, 3)
	ya := dsarray.FromLabels(rt.Main(), y, 20)
	c := &CascadeSVM{Params: CascadeParams{SVC: SVCParams{Seed: 7}, Iterations: 1, Arity: 4}}
	if err := c.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	// 8 nodes, arity 4: 2 merges then 1 → 3 merges.
	if n := rt.Graph().CountByName()["svc_merge"]; n != 3 {
		t.Fatalf("svc_merge = %d, want 3 with arity 4", n)
	}
}

func TestCascadeCoresPerTaskRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := blobs(rng, 60, 2, 4)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 30, 2)
	ya := dsarray.FromLabels(rt.Main(), y, 30)
	c := &CascadeSVM{Params: CascadeParams{SVC: SVCParams{Seed: 8}, Iterations: 1, CoresPerTask: 8}}
	if err := c.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range rt.Graph().Tasks() {
		if tk.Name == "svc_fit" && tk.Cores != 8 {
			t.Fatalf("svc_fit task has %d cores, want 8", tk.Cores)
		}
	}
}

func TestCascadeErrors(t *testing.T) {
	rt := newRT()
	x := dsarray.FromMatrix(rt.Main(), mat.New(10, 2), 5, 2)
	yShort := dsarray.FromLabels(rt.Main(), make([]int, 8), 5)
	c := &CascadeSVM{}
	if err := c.Fit(x, yShort); err == nil {
		t.Fatal("want sample/label mismatch")
	}
	if _, err := c.Predict(x); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
	yWide := dsarray.FromMatrix(rt.Main(), mat.New(10, 2), 5, 2)
	if err := c.Fit(x, yWide); err == nil {
		t.Fatal("want 1-column label error")
	}
}

func TestCascadeModelExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := blobs(rng, 100, 2, 5)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 25, 2)
	ya := dsarray.FromLabels(rt.Main(), y, 25)
	c := &CascadeSVM{Params: CascadeParams{SVC: SVCParams{Seed: 9}, Iterations: 2}}
	if err := c.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	m, err := c.Model(rt.Main())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSupport() == 0 {
		t.Fatal("final model has no support vectors")
	}
	// The extracted serial model must agree with distributed predict.
	pred, err := c.Predict(xa)
	if err != nil {
		t.Fatal(err)
	}
	distLabels, err := dsarray.CollectLabels(pred)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != distLabels[i] {
			t.Fatalf("serial and distributed predictions disagree at %d", i)
		}
	}
}

func TestScoreBlockingMismatch(t *testing.T) {
	rt := newRT()
	a := dsarray.FromLabels(rt.Main(), make([]int, 10), 5)
	b := dsarray.FromLabels(rt.Main(), make([]int, 8), 5)
	if _, err := dsarray.Accuracy(a, b); err == nil {
		t.Fatal("want blocking mismatch error")
	}
}

func BenchmarkSVCFit200x8(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x, y := blobs(rng, 200, 8, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &SVC{Params: SVCParams{Seed: int64(i)}}
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCascadeFit(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x, y := blobs(rng, 400, 8, 3)
	for i := 0; i < b.N; i++ {
		rt := newRT()
		xa := dsarray.FromMatrix(rt.Main(), x, 50, 8)
		ya := dsarray.FromLabels(rt.Main(), y, 50)
		c := &CascadeSVM{Params: CascadeParams{SVC: SVCParams{Seed: 11}, Iterations: 2}}
		if err := c.Fit(xa, ya); err != nil {
			b.Fatal(err)
		}
		if err := rt.Barrier(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSVCObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x, y := blobs(rng, 80, 3, 3)
	m := &SVC{Params: SVCParams{Seed: 20}}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	obj, err := m.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if obj <= 0 {
		t.Fatalf("dual objective %v, want positive at the optimum", obj)
	}
	if _, err := (&SVC{}).Objective(); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
}

func TestCascadeConvergenceStopsEarly(t *testing.T) {
	// Easily separable data converges after the first feedback pass; with
	// a generous tolerance the cascade must stop well before 6 iterations.
	rng := rand.New(rand.NewSource(21))
	x, y := blobs(rng, 200, 3, 6)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 40, 3)
	ya := dsarray.FromLabels(rt.Main(), y, 40)
	c := &CascadeSVM{Params: CascadeParams{
		SVC: SVCParams{Seed: 21}, Iterations: 6,
		CheckConvergence: true, ConvergenceTol: 0.05,
	}}
	if err := c.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	if c.IterationsRun() >= 6 {
		t.Fatalf("ran %d iterations, expected early convergence", c.IterationsRun())
	}
	acc, err := c.Score(xa, ya)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("converged model accuracy %v", acc)
	}
	// The convergence checks synchronise: svc_objective tasks exist.
	if rt.Graph().CountByName()["svc_objective"] == 0 {
		t.Fatal("no objective tasks captured")
	}
}

func TestCascadeWithoutConvergenceRunsAllIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x, y := blobs(rng, 100, 2, 4)
	rt := newRT()
	xa := dsarray.FromMatrix(rt.Main(), x, 25, 2)
	ya := dsarray.FromLabels(rt.Main(), y, 25)
	c := &CascadeSVM{Params: CascadeParams{SVC: SVCParams{Seed: 22}, Iterations: 3}}
	if err := c.Fit(xa, ya); err != nil {
		t.Fatal(err)
	}
	if c.IterationsRun() != 3 {
		t.Fatalf("ran %d iterations, want 3", c.IterationsRun())
	}
}
