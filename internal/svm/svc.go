package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"taskml/internal/mat"
)

// Kernel selects the SVC kernel function.
type Kernel int

const (
	// RBF is the Gaussian radial basis function kernel (the dislib CSVM
	// default).
	RBF Kernel = iota
	// Linear is the plain dot-product kernel.
	Linear
)

// SVCParams configures the SMO solver.
type SVCParams struct {
	// C is the soft-margin penalty. Default 1.
	C float64
	// Gamma is the RBF width. 0 selects scikit-learn's "scale":
	// 1 / (d · Var(x)).
	Gamma float64
	// Kernel selects the kernel. Default RBF.
	Kernel Kernel
	// Tol is the KKT violation tolerance. Default 1e-3.
	Tol float64
	// MaxPasses is the number of consecutive full passes without an update
	// that ends training. Default 5.
	MaxPasses int
	// MaxIter caps total alpha updates as a safety net. Default 100·n.
	MaxIter int
	// Seed seeds the SMO partner-selection randomness.
	Seed int64
}

func (p SVCParams) withDefaults() SVCParams {
	if p.C == 0 {
		p.C = 1
	}
	if p.Tol == 0 {
		p.Tol = 1e-3
	}
	if p.MaxPasses == 0 {
		p.MaxPasses = 5
	}
	return p
}

// SVC is a binary C-support-vector classifier trained with SMO. Labels are
// 0/1 at the API surface and ±1 internally.
type SVC struct {
	Params SVCParams

	// Fitted state: support vectors, their ±1 labels, multipliers and bias.
	SupportX *mat.Dense
	SupportY []float64
	Alphas   []float64
	B        float64
	gamma    float64
}

// ErrNotFitted is returned by prediction before Fit.
var ErrNotFitted = errors.New("svm: model is not fitted")

// effectiveGamma resolves Gamma==0 to scikit-learn's "scale" heuristic.
func effectiveGamma(p SVCParams, x *mat.Dense) float64 {
	if p.Kernel == Linear {
		return 0
	}
	if p.Gamma != 0 {
		return p.Gamma
	}
	// 1 / (n_features * x.var())
	var mean, sq float64
	for _, v := range x.Data {
		mean += v
	}
	mean /= float64(len(x.Data))
	for _, v := range x.Data {
		sq += (v - mean) * (v - mean)
	}
	variance := sq / float64(len(x.Data))
	if variance == 0 {
		variance = 1
	}
	return 1 / (float64(x.Cols) * variance)
}

func kernelFn(k Kernel, gamma float64) func(a, b []float64) float64 {
	switch k {
	case Linear:
		return func(a, b []float64) float64 {
			var s float64
			for i, v := range a {
				s += v * b[i]
			}
			return s
		}
	default:
		return func(a, b []float64) float64 {
			var s float64
			for i, v := range a {
				d := v - b[i]
				s += d * d
			}
			return math.Exp(-gamma * s)
		}
	}
}

// Fit trains the classifier on x (n×d) with 0/1 labels y.
func (m *SVC) Fit(x *mat.Dense, y []int) error {
	if x.Rows != len(y) {
		return fmt.Errorf("svm: %d rows vs %d labels", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return errors.New("svm: empty training set")
	}
	p := m.Params.withDefaults()
	n := x.Rows

	ys := make([]float64, n)
	pos, neg := 0, 0
	for i, l := range y {
		switch l {
		case 1:
			ys[i] = 1
			pos++
		case 0:
			ys[i] = -1
			neg++
		default:
			return fmt.Errorf("svm: label %d not in {0, 1}", l)
		}
	}
	// Single-class degenerate set: constant classifier.
	if pos == 0 || neg == 0 {
		m.SupportX = x.Slice(0, 1, 0, x.Cols)
		m.SupportY = []float64{ys[0]}
		m.Alphas = []float64{0}
		m.B = ys[0]
		m.gamma = effectiveGamma(p, x)
		return nil
	}

	gamma := effectiveGamma(p, x)
	kf := kernelFn(p.Kernel, gamma)

	// Precompute the kernel matrix when affordable; cascade blocks are
	// small by construction (≤ block rows).
	var kmat *mat.Dense
	kij := func(i, j int) float64 { return kf(x.Row(i), x.Row(j)) }
	if n <= 4096 {
		kmat = mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := kf(x.Row(i), x.Row(j))
				kmat.Set(i, j, v)
				kmat.Set(j, i, v)
			}
		}
		kij = kmat.At
	}

	alphas := make([]float64, n)
	errs := make([]float64, n) // E_i = f(x_i) - y_i, with all alphas 0: -y
	for i := range errs {
		errs[i] = -ys[i]
	}
	b := 0.0
	rng := rand.New(rand.NewSource(p.Seed + 1))
	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 100 * n
	}

	iters := 0
	// takeStep attempts the joint optimisation of (alphas[i], alphas[j]);
	// it returns true when it made progress.
	takeStep := func(i, j int) bool {
		if i == j {
			return false
		}
		ei, ej := errs[i], errs[j]
		ai, aj := alphas[i], alphas[j]
		var lo, hi float64
		if ys[i] != ys[j] {
			lo = math.Max(0, aj-ai)
			hi = math.Min(p.C, p.C+aj-ai)
		} else {
			lo = math.Max(0, ai+aj-p.C)
			hi = math.Min(p.C, ai+aj)
		}
		if lo == hi {
			return false
		}
		eta := 2*kij(i, j) - kij(i, i) - kij(j, j)
		if eta >= 0 {
			return false
		}
		ajNew := aj - ys[j]*(ei-ej)/eta
		if ajNew > hi {
			ajNew = hi
		} else if ajNew < lo {
			ajNew = lo
		}
		if math.Abs(ajNew-aj) < 1e-7*(ajNew+aj+1e-7) {
			return false
		}
		aiNew := ai + ys[i]*ys[j]*(aj-ajNew)

		b1 := b - ei - ys[i]*(aiNew-ai)*kij(i, i) - ys[j]*(ajNew-aj)*kij(i, j)
		b2 := b - ej - ys[i]*(aiNew-ai)*kij(i, j) - ys[j]*(ajNew-aj)*kij(j, j)
		var bNew float64
		switch {
		case aiNew > 0 && aiNew < p.C:
			bNew = b1
		case ajNew > 0 && ajNew < p.C:
			bNew = b2
		default:
			bNew = (b1 + b2) / 2
		}

		di := ys[i] * (aiNew - ai)
		dj := ys[j] * (ajNew - aj)
		db := bNew - b
		for k := 0; k < n; k++ {
			errs[k] += di*kij(i, k) + dj*kij(j, k) + db
		}
		alphas[i], alphas[j], b = aiNew, ajNew, bNew
		iters++
		return true
	}

	// examine applies Platt's second-choice heuristics to a KKT-violating
	// sample: best |E_i - E_j| partner first, then a bounded number of
	// random partners, so a failing pair cannot permanently stall the
	// optimisation. Bounding the fallback (instead of scanning all n)
	// keeps a single examine at O(n) while losing essentially nothing:
	// when dozens of random partners make no progress, the sample is at a
	// boundary the tolerance already accepts.
	const maxFallback = 48
	examine := func(i int) bool {
		ei := errs[i]
		if !((ys[i]*ei < -p.Tol && alphas[i] < p.C) || (ys[i]*ei > p.Tol && alphas[i] > 0)) {
			return false
		}
		j, best := -1, -1.0
		for cand := 0; cand < n; cand++ {
			if cand == i {
				continue
			}
			if d := math.Abs(ei - errs[cand]); d > best {
				best, j = d, cand
			}
		}
		if j >= 0 && takeStep(i, j) {
			return true
		}
		tries := n - 1
		if tries > maxFallback {
			tries = maxFallback
		}
		for t := 0; t < tries; t++ {
			cand := rng.Intn(n)
			if cand == i || cand == j {
				continue
			}
			if takeStep(i, cand) {
				return true
			}
		}
		return false
	}

	// Platt's outer loop: alternate full sweeps with sweeps over the
	// non-bound subset until MaxPasses consecutive full sweeps change
	// nothing.
	passes := 0
	examineAll := true
	for passes < p.MaxPasses && iters < maxIter {
		changed := 0
		for i := 0; i < n && iters < maxIter; i++ {
			if !examineAll && (alphas[i] <= 0 || alphas[i] >= p.C) {
				continue
			}
			if examine(i) {
				changed++
			}
		}
		switch {
		case examineAll && changed == 0:
			passes++
		case examineAll:
			passes = 0
			examineAll = false
		case changed == 0:
			examineAll = true
		}
	}

	// Keep the support vectors.
	var idx []int
	for i, a := range alphas {
		if a > 1e-8 {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		// Pathological but possible with tiny data: keep one sample per
		// class so prediction stays defined.
		for _, want := range []float64{1, -1} {
			for i := range ys {
				if ys[i] == want {
					idx = append(idx, i)
					break
				}
			}
		}
	}
	m.SupportX = mat.TakeRows(x, idx)
	m.SupportY = make([]float64, len(idx))
	m.Alphas = make([]float64, len(idx))
	for k, i := range idx {
		m.SupportY[k] = ys[i]
		m.Alphas[k] = alphas[i]
	}
	m.B = b
	m.gamma = gamma
	return nil
}

// Decision returns the signed decision function for each row of x.
func (m *SVC) Decision(x *mat.Dense) ([]float64, error) {
	if m.SupportX == nil {
		return nil, ErrNotFitted
	}
	if x.Cols != m.SupportX.Cols {
		return nil, fmt.Errorf("svm: %d features, model has %d", x.Cols, m.SupportX.Cols)
	}
	kf := kernelFn(m.Params.withDefaults().Kernel, m.gamma)
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		s := m.B
		row := x.Row(i)
		for k := 0; k < m.SupportX.Rows; k++ {
			if m.Alphas[k] == 0 && m.SupportX.Rows > 1 {
				continue
			}
			s += m.Alphas[k] * m.SupportY[k] * kf(m.SupportX.Row(k), row)
		}
		// Degenerate single-class model: bias carries the class.
		if m.SupportX.Rows == 1 && m.Alphas[0] == 0 {
			s = m.B
		}
		out[i] = s
	}
	return out, nil
}

// Predict returns 0/1 labels for each row of x.
func (m *SVC) Predict(x *mat.Dense) ([]int, error) {
	dec, err := m.Decision(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(dec))
	for i, d := range dec {
		if d >= 0 {
			out[i] = 1
		}
	}
	return out, nil
}

// Score returns the mean accuracy of Predict on (x, y).
func (m *SVC) Score(x *mat.Dense, y []int) (float64, error) {
	pred, err := m.Predict(x)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y)), nil
}

// Objective returns the dual SVM objective W(α) = Σαᵢ − ½ΣᵢΣⱼ αᵢαⱼyᵢyⱼK(xᵢ,xⱼ)
// evaluated on the support set — the quantity dislib's CascadeSVM monitors
// for its convergence criterion.
func (m *SVC) Objective() (float64, error) {
	if m.SupportX == nil {
		return 0, ErrNotFitted
	}
	kf := kernelFn(m.Params.withDefaults().Kernel, m.gamma)
	var w float64
	for i := 0; i < m.SupportX.Rows; i++ {
		w += m.Alphas[i]
		for j := 0; j < m.SupportX.Rows; j++ {
			w -= 0.5 * m.Alphas[i] * m.Alphas[j] * m.SupportY[i] * m.SupportY[j] *
				kf(m.SupportX.Row(i), m.SupportX.Row(j))
		}
	}
	return w, nil
}

// SupportSet returns the support vectors with 0/1 labels, the unit the
// cascade passes between layers.
func (m *SVC) SupportSet() (*mat.Dense, []int) {
	labels := make([]int, len(m.SupportY))
	for i, v := range m.SupportY {
		if v > 0 {
			labels[i] = 1
		}
	}
	return m.SupportX, labels
}

// NumSupport returns the number of support vectors.
func (m *SVC) NumSupport() int {
	if m.SupportX == nil {
		return 0
	}
	return m.SupportX.Rows
}
