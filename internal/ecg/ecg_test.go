package ecg

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"taskml/internal/sigproc"
)

func stats(xs []float64) (mean, std float64) {
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return
}

func TestClassString(t *testing.T) {
	if Normal.String() != "Normal" || AF.String() != "AF" {
		t.Fatal("Class.String wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class must still render")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(GenConfig{Seed: 42}).Record(Normal)
	b := NewGenerator(GenConfig{Seed: 42}).Record(Normal)
	if len(a.Signal) != len(b.Signal) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a.Signal {
		if a.Signal[i] != b.Signal[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestRecordDurationInRange(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 1})
	for i := 0; i < 20; i++ {
		r := g.Record(Class(i % 2))
		d := r.DurationSec()
		if d < 9-1e-9 || d > 61+1e-9 {
			t.Fatalf("duration %v outside [9, 61]", d)
		}
		if r.Fs != 300 {
			t.Fatalf("Fs = %v, want 300", r.Fs)
		}
	}
}

func TestDatasetCountsAndShuffle(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 2, MinDurSec: 9, MaxDurSec: 12})
	recs := g.Dataset(12, 5)
	if len(recs) != 17 {
		t.Fatalf("Dataset length %d", len(recs))
	}
	n, a := Counts(recs)
	if n != 12 || a != 5 {
		t.Fatalf("Counts = %d, %d", n, a)
	}
	// Shuffled: the first 12 records should not all be Normal.
	allNormal := true
	for _, r := range recs[:12] {
		if r.Class != Normal {
			allNormal = false
		}
	}
	if allNormal {
		t.Fatal("Dataset does not appear shuffled")
	}
}

func TestDetectRPeaksOnCleanNormal(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 3, MinDurSec: 30, MaxDurSec: 30.5, NoiseStd: 0.01})
	r := g.Record(Normal)
	peaks := DetectRPeaks(r.Signal, r.Fs)
	// ~30 s at 63–80 bpm → between 23 and 42 beats.
	if len(peaks) < 23 || len(peaks) > 42 {
		t.Fatalf("detected %d peaks on a 30 s Normal record", len(peaks))
	}
	// RR intervals must be physiological and regular.
	rrs := RRIntervals(peaks, r.Fs)
	mean, std := stats(rrs)
	if mean < 0.6 || mean > 1.1 {
		t.Fatalf("mean RR = %v", mean)
	}
	if std/mean > 0.12 {
		t.Fatalf("Normal RR variability %v too high", std/mean)
	}
}

func TestAFRRMoreIrregularThanNormal(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 4, MinDurSec: 40, MaxDurSec: 41})
	var cvN, cvA float64
	const reps = 5
	for i := 0; i < reps; i++ {
		rn := g.Record(Normal)
		ra := g.Record(AF)
		pn := DetectRPeaks(rn.Signal, rn.Fs)
		pa := DetectRPeaks(ra.Signal, ra.Fs)
		mn, sn := stats(RRIntervals(pn, rn.Fs))
		ma, sa := stats(RRIntervals(pa, ra.Fs))
		cvN += sn / mn
		cvA += sa / ma
	}
	if cvA <= cvN*1.5 {
		t.Fatalf("AF RR coefficient of variation (%v) not clearly above Normal (%v)", cvA/reps, cvN/reps)
	}
}

// P-wave band: Normal ECG has extra low-frequency energy right before each
// QRS; AF replaces it with a 4–9 Hz f-wave. Check the f-wave band (4–9 Hz)
// carries relatively more energy in AF.
func TestAFHasFWaveBandEnergy(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 5, MinDurSec: 30, MaxDurSec: 31, NoiseStd: 0.01})
	bandRatio := func(r Record) float64 {
		cfg := sigproc.SpectrogramConfig{Fs: r.Fs, WindowSize: 512, Overlap: 256}
		m, freqs, _, err := sigproc.Spectrogram(r.Signal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var band, total float64
		for b := 0; b < m.Rows; b++ {
			var p float64
			for s := 0; s < m.Cols; s++ {
				p += m.At(b, s)
			}
			total += p
			if freqs[b] >= 4 && freqs[b] <= 9 {
				band += p
			}
		}
		return band / total
	}
	var rn, ra float64
	for i := 0; i < 4; i++ {
		rn += bandRatio(g.Record(Normal))
		ra += bandRatio(g.Record(AF))
	}
	if ra <= rn {
		t.Fatalf("AF f-wave band ratio (%v) not above Normal (%v)", ra/4, rn/4)
	}
}

func TestDetectRPeaksEmptyAndFlat(t *testing.T) {
	if p := DetectRPeaks(nil, 300); p != nil {
		t.Fatal("nil signal should yield no peaks")
	}
	if p := DetectRPeaks(make([]float64, 3000), 300); len(p) != 0 {
		t.Fatalf("flat signal yielded %d peaks", len(p))
	}
}

func TestRRIntervals(t *testing.T) {
	rr := RRIntervals([]int{0, 300, 750}, 300)
	if len(rr) != 2 || rr[0] != 1 || rr[1] != 1.5 {
		t.Fatalf("RRIntervals = %v", rr)
	}
	if RRIntervals([]int{5}, 300) != nil {
		t.Fatal("single peak must yield nil")
	}
}

func TestAugmentShufflePreservesSamples(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 6, MinDurSec: 30, MaxDurSec: 31, NoiseStd: 0.01})
	rec := g.Record(AF)
	rng := rand.New(rand.NewSource(7))
	aug := AugmentShuffle(rec, rng)
	if !aug.Augmented {
		t.Fatal("augmented record not marked")
	}
	if len(aug.Signal) != len(rec.Signal) {
		t.Fatalf("augmentation changed length %d → %d", len(rec.Signal), len(aug.Signal))
	}
	a := append([]float64(nil), rec.Signal...)
	b := append([]float64(nil), aug.Signal...)
	sort.Float64s(a)
	sort.Float64s(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("augmentation is not a permutation of the samples")
		}
	}
	if aug.Class != rec.Class || aug.Fs != rec.Fs {
		t.Fatal("augmentation must preserve class and Fs")
	}
}

func TestAugmentShuffleActuallyShuffles(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 8, MinDurSec: 40, MaxDurSec: 41, NoiseStd: 0.01})
	rec := g.Record(AF)
	rng := rand.New(rand.NewSource(9))
	changed := false
	for try := 0; try < 5 && !changed; try++ {
		aug := AugmentShuffle(rec, rng)
		for i := range rec.Signal {
			if aug.Signal[i] != rec.Signal[i] {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("augmentation never changed the signal in 5 tries")
	}
}

func TestAugmentShuffleTooFewPeaksIsIdentity(t *testing.T) {
	short := Record{Signal: make([]float64, 300), Class: AF, Fs: 300}
	rng := rand.New(rand.NewSource(1))
	aug := AugmentShuffle(short, rng)
	if aug.Augmented {
		t.Fatal("record without two patches must be returned unchanged")
	}
}

func TestBalanceEqualizesClasses(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 10, MinDurSec: 20, MaxDurSec: 22, NoiseStd: 0.02})
	recs := g.Dataset(14, 3)
	rng := rand.New(rand.NewSource(11))
	bal := Balance(recs, rng)
	n, a := Counts(bal)
	if n != a {
		t.Fatalf("Balance: %d Normal vs %d AF", n, a)
	}
	if len(bal) != 28 {
		t.Fatalf("Balance produced %d records, want 28", len(bal))
	}
	// All added records must be augmented AF.
	added := 0
	for _, r := range bal {
		if r.Augmented {
			added++
			if r.Class != AF {
				t.Fatal("augmented record with wrong class")
			}
		}
	}
	if added != 11 {
		t.Fatalf("added %d augmented records, want 11", added)
	}
}

func TestBalanceAlreadyBalancedNoOp(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 12, MinDurSec: 10, MaxDurSec: 12})
	recs := g.Dataset(3, 3)
	bal := Balance(recs, rand.New(rand.NewSource(1)))
	if len(bal) != 6 {
		t.Fatalf("balanced input grew to %d", len(bal))
	}
}

func TestBalanceEmptyMinority(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 13, MinDurSec: 10, MaxDurSec: 12})
	recs := g.Dataset(3, 0)
	bal := Balance(recs, rand.New(rand.NewSource(1)))
	if len(bal) != 3 {
		t.Fatal("Balance with no minority source must be a no-op")
	}
}

func BenchmarkGenerateRecord(b *testing.B) {
	g := NewGenerator(GenConfig{Seed: 14, MinDurSec: 30, MaxDurSec: 31})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Record(AF)
	}
}

func BenchmarkDetectRPeaks30s(b *testing.B) {
	g := NewGenerator(GenConfig{Seed: 15, MinDurSec: 30, MaxDurSec: 31})
	r := g.Record(Normal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectRPeaks(r.Signal, r.Fs)
	}
}

func TestParoxysmalOnsetAndLength(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 30, NoiseStd: 0.02})
	rec, onset := g.Paroxysmal(20, 15)
	if rec.Class != AF {
		t.Fatalf("paroxysmal record class %v, want AF", rec.Class)
	}
	if math.Abs(float64(onset)/rec.Fs-20) > 0.1 {
		t.Fatalf("onset at %v s, want ≈ 20", float64(onset)/rec.Fs)
	}
	if math.Abs(rec.DurationSec()-35) > 0.2 {
		t.Fatalf("duration %v s, want ≈ 35", rec.DurationSec())
	}
	// The prefix must be calmer than the suffix in RR variability.
	pre := Record{Signal: rec.Signal[:onset], Fs: rec.Fs}
	post := Record{Signal: rec.Signal[onset:], Fs: rec.Fs}
	mp, sp := stats(RRIntervals(DetectRPeaks(pre.Signal, pre.Fs), pre.Fs))
	ma, sa := stats(RRIntervals(DetectRPeaks(post.Signal, post.Fs), post.Fs))
	if sa/ma <= sp/mp {
		t.Fatalf("AF segment CV (%v) not above Normal segment CV (%v)", sa/ma, sp/mp)
	}
}
