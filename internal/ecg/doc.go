// Package ecg provides the data substrate of the paper: single-lead
// electrocardiogram recordings, R-peak segmentation, and the
// shuffling-based data augmentation of Figure 2.
//
// The PhysioNet CinC-2017 dataset the paper trains on is not
// redistributable, so the package generates synthetic recordings whose
// class-conditional structure follows the clinical features the paper
// itself lists (§II): Normal rhythm has regular RR intervals and a visible
// P wave before each QRS complex; atrial fibrillation (AF) has
// irregularly-irregular RR intervals, an absent P wave, and a fibrillatory
// baseline oscillation (f-waves, 4–9 Hz). Recordings are sampled at 300 Hz
// and last 9–61 s, matching the CinC recordings donated by AliveCor.
//
// # Public surface and concurrency
//
// NewGenerator produces labelled recordings from a GenConfig; DetectRPeaks
// and RRIntervals implement the R-peak analysis; AugmentShuffle and Balance
// implement the shuffling augmentation of Figure 2. Generation is
// deterministic in the seeds the caller supplies. A *Generator holds its
// own RNG and is not safe for concurrent use; the free functions are
// stateless and are, and returned recordings are owned by the caller.
package ecg
