package ecg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Class is the diagnosis label. The paper restricts the CinC dataset to the
// Normal and AF classes.
type Class int

const (
	// Normal is sinus rhythm.
	Normal Class = iota
	// AF is atrial fibrillation.
	AF
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Normal:
		return "Normal"
	case AF:
		return "AF"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Record is one ECG recording.
type Record struct {
	// Signal is the lead voltage in millivolt-scale arbitrary units.
	Signal []float64
	// Class is the diagnosis.
	Class Class
	// Fs is the sampling frequency in Hz.
	Fs float64
	// Augmented marks records produced by AugmentShuffle rather than the
	// generator (or, in the original, the sensor).
	Augmented bool
}

// DurationSec returns the recording length in seconds.
func (r Record) DurationSec() float64 { return float64(len(r.Signal)) / r.Fs }

// GenConfig parameterises the synthetic generator.
type GenConfig struct {
	// Fs is the sampling frequency. Default 300 Hz.
	Fs float64
	// MinDurSec and MaxDurSec bound recording length. Defaults 9 and 61 s
	// (the CinC range).
	MinDurSec, MaxDurSec float64
	// NoiseStd is the white measurement noise level. Default 0.04.
	NoiseStd float64
	// AFSubtlety in [0, 1) makes AF recordings resemble Normal ones: the
	// f-wave shrinks, a partial P wave reappears, and the RR irregularity
	// is tamed. 0 (default) is textbook AF; higher values create the
	// class overlap that real single-lead recordings exhibit (short, noisy
	// AliveCor strips are far from textbook morphology), which is what
	// drives the paper's Table I error patterns.
	AFSubtlety float64
	// Seed seeds the generator's deterministic random source.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Fs == 0 {
		c.Fs = 300
	}
	if c.MinDurSec == 0 {
		c.MinDurSec = 9
	}
	if c.MaxDurSec == 0 {
		c.MaxDurSec = 61
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.04
	}
	return c
}

// Generator produces synthetic ECG records deterministically from its seed.
type Generator struct {
	cfg GenConfig
	rng *rand.Rand
}

// NewGenerator returns a generator with the given configuration.
func NewGenerator(cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// gauss adds a Gaussian bump (amplitude amp, center c seconds, width w
// seconds) to the signal.
func gauss(sig []float64, fs, c, w, amp float64) {
	lo := int((c - 4*w) * fs)
	hi := int((c + 4*w) * fs)
	if lo < 0 {
		lo = 0
	}
	if hi > len(sig) {
		hi = len(sig)
	}
	for i := lo; i < hi; i++ {
		t := float64(i)/fs - c
		sig[i] += amp * math.Exp(-t*t/(2*w*w))
	}
}

// Record generates one recording of the given class.
func (g *Generator) Record(class Class) Record {
	cfg := g.cfg
	dur := cfg.MinDurSec + g.rng.Float64()*(cfg.MaxDurSec-cfg.MinDurSec)
	n := int(dur * cfg.Fs)
	sig := make([]float64, n)

	amp := 0.85 + 0.3*g.rng.Float64() // per-record electrode gain

	// Beat train.
	t := 0.3 + 0.2*g.rng.Float64()
	var meanRR float64
	if class == Normal {
		meanRR = 0.75 + 0.2*g.rng.Float64() // 63–80 bpm
	} else {
		// AF ventricular response is often faster but overlaps the normal
		// range heavily (rate-controlled patients, resting recordings) —
		// rhythm *irregularity*, not rate, is the discriminative feature.
		meanRR = 0.68 + 0.24*g.rng.Float64()
	}
	respPhase := g.rng.Float64() * 2 * math.Pi
	for t < dur-0.4 {
		// QRS complex (both classes).
		gauss(sig, cfg.Fs, t-0.025, 0.010, -0.12*amp) // Q
		gauss(sig, cfg.Fs, t, 0.012, 1.0*amp)         // R
		gauss(sig, cfg.Fs, t+0.030, 0.012, -0.20*amp) // S
		gauss(sig, cfg.Fs, t+0.28, 0.055, 0.28*amp)   // T
		if class == Normal {
			gauss(sig, cfg.Fs, t-0.17, 0.028, 0.16*amp) // P wave: Normal only
		} else if cfg.AFSubtlety > 0 {
			// Subtle AF keeps a diminished P wave.
			gauss(sig, cfg.Fs, t-0.17, 0.028, 0.16*amp*cfg.AFSubtlety)
		}

		var rr float64
		if class == Normal {
			// Regular rhythm with respiratory sinus arrhythmia and a touch
			// of jitter.
			rr = meanRR * (1 + 0.04*math.Sin(2*math.Pi*0.25*t+respPhase) + 0.02*g.rng.NormFloat64())
		} else {
			// Irregularly irregular: wide uniform spread, no structure;
			// AFSubtlety shrinks the spread toward a regular rhythm.
			spread := 1 - cfg.AFSubtlety
			rr = meanRR * (1 + spread*(0.9*g.rng.Float64()-0.4))
		}
		if rr < 0.3 {
			rr = 0.3
		}
		t += rr
	}

	// AF fibrillatory baseline: 4–9 Hz drifting oscillation.
	if class == AF {
		f := 4 + 5*g.rng.Float64()
		phase := g.rng.Float64() * 2 * math.Pi
		famp := (0.06 + 0.04*g.rng.Float64()) * amp * (1 - cfg.AFSubtlety)
		for i := range sig {
			tt := float64(i) / cfg.Fs
			// Slight frequency wobble makes the f-wave band realistic.
			sig[i] += famp * math.Sin(2*math.Pi*f*tt+phase+0.8*math.Sin(2*math.Pi*0.3*tt))
		}
	}

	// Baseline wander (electrode drift, respiration) and white noise.
	wf := 0.15 + 0.2*g.rng.Float64()
	wp := g.rng.Float64() * 2 * math.Pi
	for i := range sig {
		tt := float64(i) / cfg.Fs
		sig[i] += 0.05 * math.Sin(2*math.Pi*wf*tt+wp)
		sig[i] += cfg.NoiseStd * g.rng.NormFloat64()
	}
	return Record{Signal: sig, Class: class, Fs: cfg.Fs}
}

// Paroxysmal generates a recording in which an AF episode starts mid-way:
// normalSec seconds of sinus rhythm followed by afSec seconds of AF. It
// returns the record and the episode onset as a sample index. The paper's
// edge-monitoring scenario (Figure 1) detects such episodes in real time on
// the wearable.
func (g *Generator) Paroxysmal(normalSec, afSec float64) (Record, int) {
	cfg := g.cfg
	cfg.MinDurSec, cfg.MaxDurSec = normalSec, normalSec+1e-9
	gn := &Generator{cfg: cfg, rng: g.rng}
	normal := gn.Record(Normal)
	cfg.MinDurSec, cfg.MaxDurSec = afSec, afSec+1e-9
	ga := &Generator{cfg: cfg, rng: g.rng}
	af := ga.Record(AF)
	onset := len(normal.Signal)
	sig := append(append([]float64(nil), normal.Signal...), af.Signal...)
	return Record{Signal: sig, Class: AF, Fs: g.cfg.Fs}, onset
}

// Dataset generates nNormal Normal and nAF AF recordings in a deterministic
// shuffled order. The paper's class prior is 5154 Normal to 771 AF.
func (g *Generator) Dataset(nNormal, nAF int) []Record {
	recs := make([]Record, 0, nNormal+nAF)
	for i := 0; i < nNormal; i++ {
		recs = append(recs, g.Record(Normal))
	}
	for i := 0; i < nAF; i++ {
		recs = append(recs, g.Record(AF))
	}
	g.rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return recs
}

// DetectRPeaks locates R peaks with a derivative-energy detector in the
// spirit of the Gamboa segmenter the paper uses from BioSPPy: differentiate,
// square, smooth with an 80 ms moving average, threshold adaptively, and
// refine each detection to the local maximum of the raw signal. Returns
// sample indices in increasing order.
func DetectRPeaks(x []float64, fs float64) []int {
	n := len(x)
	if n < 3 {
		return nil
	}
	// Derivative energy.
	e := make([]float64, n)
	for i := 1; i < n-1; i++ {
		d := x[i+1] - x[i-1]
		e[i] = d * d
	}
	// Moving average, 80 ms.
	w := int(0.08 * fs)
	if w < 1 {
		w = 1
	}
	sm := movingAvg(e, w)
	// Adaptive threshold: fraction of a robust maximum (99th percentile
	// resists isolated spikes).
	thr := 0.25 * percentile(sm, 0.99)
	if thr <= 0 {
		return nil
	}
	refractory := int(0.25 * fs)
	half := int(0.06 * fs)
	var peaks []int
	i := 0
	for i < n {
		if sm[i] <= thr {
			i++
			continue
		}
		// Region above threshold: find raw-signal max nearby.
		j := i
		for j < n && sm[j] > thr {
			j++
		}
		lo, hi := i-half, j+half
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		best := lo
		for k := lo; k < hi; k++ {
			if x[k] > x[best] {
				best = k
			}
		}
		if len(peaks) == 0 || best-peaks[len(peaks)-1] >= refractory {
			peaks = append(peaks, best)
		}
		i = j + refractory
	}
	return peaks
}

func movingAvg(x []float64, w int) []float64 {
	out := make([]float64, len(x))
	var sum float64
	for i := range x {
		sum += x[i]
		if i >= w {
			sum -= x[i-w]
		}
		out[i] = sum / float64(minInt(i+1, w))
	}
	return out
}

func percentile(x []float64, p float64) float64 {
	tmp := make([]float64, len(x))
	copy(tmp, x)
	sort.Float64s(tmp)
	idx := int(p * float64(len(tmp)-1))
	return tmp[idx]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RRIntervals converts peak indices into RR intervals in seconds.
func RRIntervals(peaks []int, fs float64) []float64 {
	if len(peaks) < 2 {
		return nil
	}
	out := make([]float64, len(peaks)-1)
	for i := 1; i < len(peaks); i++ {
		out[i-1] = float64(peaks[i]-peaks[i-1]) / fs
	}
	return out
}

// PatchPeaks is the patch length of the augmentation: the paper segments
// signals into "stretches of 6 contiguous R peaks", the minimum ECG length
// needed to detect irregular rhythms.
const PatchPeaks = 6

// AugmentShuffle produces one synthetic record from rec by the paper's
// Figure 2 procedure: the signal is segmented into patches of PatchPeaks
// contiguous R peaks separated by spacers, the patches are shuffled, and
// the pieces are reassembled in the original slot structure. The output has
// exactly the same samples as the input (permuted), so ECG morphology and
// total signal statistics are preserved while the beat sequence changes.
//
// The record is returned unchanged (not copied, not marked augmented) when
// fewer than 2 full patches exist.
func AugmentShuffle(rec Record, rng *rand.Rand) Record {
	peaks := DetectRPeaks(rec.Signal, rec.Fs)
	nPatches := len(peaks) / PatchPeaks
	if nPatches < 2 {
		return rec
	}
	// Patch p spans from the midpoint before its first peak to the midpoint
	// after its last peak; the leftovers are spacers (start/end remainders
	// and the inter-patch midpoint cuts).
	type span struct{ lo, hi int }
	patches := make([]span, nPatches)
	for p := 0; p < nPatches; p++ {
		first := peaks[p*PatchPeaks]
		last := peaks[p*PatchPeaks+PatchPeaks-1]
		lo := first
		if p == 0 {
			lo = boundary(peaks, p*PatchPeaks, first, 0)
		} else {
			prevLast := peaks[p*PatchPeaks-1]
			lo = (prevLast + first) / 2
		}
		hi := last
		if p == nPatches-1 && p*PatchPeaks+PatchPeaks >= len(peaks) {
			hi = boundary(peaks, -1, last, len(rec.Signal))
		} else if p*PatchPeaks+PatchPeaks < len(peaks) {
			next := peaks[p*PatchPeaks+PatchPeaks]
			hi = (last + next) / 2
		} else {
			hi = len(rec.Signal)
		}
		patches[p] = span{lo, hi}
	}

	order := rng.Perm(nPatches)
	out := make([]float64, 0, len(rec.Signal))
	// Leading spacer.
	out = append(out, rec.Signal[:patches[0].lo]...)
	for i := 0; i < nPatches; i++ {
		src := patches[order[i]]
		out = append(out, rec.Signal[src.lo:src.hi]...)
		// Spacer that followed slot i in the original layout.
		if i < nPatches-1 {
			out = append(out, rec.Signal[patches[i].hi:patches[i+1].lo]...)
		}
	}
	// Trailing spacer.
	out = append(out, rec.Signal[patches[nPatches-1].hi:]...)

	return Record{Signal: out, Class: rec.Class, Fs: rec.Fs, Augmented: true}
}

// boundary computes the outer edge for the first/last patch: half an RR
// interval outside the edge peak, clamped to the signal.
func boundary(peaks []int, _ int, peak, clamp int) int {
	if clamp == 0 { // leading edge
		if len(peaks) >= 2 {
			half := (peaks[1] - peaks[0]) / 2
			if peak-half > 0 {
				return peak - half
			}
		}
		return 0
	}
	if len(peaks) >= 2 {
		half := (peaks[len(peaks)-1] - peaks[len(peaks)-2]) / 2
		if peak+half < clamp {
			return peak + half
		}
	}
	return clamp
}

// Balance augments the minority class with AugmentShuffle until both
// classes have equal counts, the procedure the paper applies to the 771 AF
// vs 5154 Normal imbalance. Source records are chosen uniformly at random
// from the original minority recordings.
func Balance(recs []Record, rng *rand.Rand) []Record {
	var nNormal, nAF int
	var minority []Record
	for _, r := range recs {
		if r.Class == Normal {
			nNormal++
		} else {
			nAF++
		}
	}
	minClass := AF
	need := nNormal - nAF
	if nAF > nNormal {
		minClass = Normal
		need = nAF - nNormal
	}
	for _, r := range recs {
		if r.Class == minClass && !r.Augmented {
			minority = append(minority, r)
		}
	}
	out := append([]Record(nil), recs...)
	if len(minority) == 0 {
		return out
	}
	for i := 0; i < need; i++ {
		src := minority[rng.Intn(len(minority))]
		aug := AugmentShuffle(src, rng)
		aug.Augmented = true
		out = append(out, aug)
	}
	return out
}

// Counts returns the number of records per class.
func Counts(recs []Record) (nNormal, nAF int) {
	for _, r := range recs {
		if r.Class == Normal {
			nNormal++
		} else {
			nAF++
		}
	}
	return
}
