package eddl

import (
	"math/rand"
	"testing"

	"taskml/internal/par"
)

// The training batch step is the CNN hot loop: once the network's pooled
// scratch is warm, the only allocations left are the closure headers the
// par.For-based kernels create per call (a few dozen bytes, independent of
// batch and model size). The bound pins that level — the pre-arena
// implementation allocated every activation and gradient matrix fresh,
// ~50 heap objects per step growing with the model.
func TestBatchStepSteadyStateAllocsBounded(t *testing.T) {
	defer par.SetLimit(par.Limit())
	par.SetLimit(1)
	rng := rand.New(rand.NewSource(3))
	x, y := waves(rng, 64, 16)
	net := tinyArch().Build(3)
	defer net.ReleaseScratch()
	idx := rng.Perm(x.Rows)[:32]
	net.batchStep(x, y, idx) // warm the scratch buffers
	a := testing.AllocsPerRun(100, func() { net.batchStep(x, y, idx) })
	if a > 12 {
		t.Errorf("batchStep allocates %v times per call, want <= 12", a)
	}
}

// A full TrainEpoch still allocates the shuffled order (rng.Perm), but the
// per-batch cost must not scale with the batch count — the regression guard
// for the arena-backed layer scratch.
func TestTrainEpochSteadyStateAllocsBounded(t *testing.T) {
	defer par.SetLimit(par.Limit())
	par.SetLimit(1)
	rng := rand.New(rand.NewSource(4))
	x, y := waves(rng, 128, 16)
	net := tinyArch().Build(4)
	defer net.ReleaseScratch()
	if _, err := net.TrainEpoch(x, y, 0.05, 32, rng); err != nil { // warm-up
		t.Fatal(err)
	}
	a := testing.AllocsPerRun(20, func() {
		if _, err := net.TrainEpoch(x, y, 0.05, 32, rng); err != nil {
			t.Fatal(err)
		}
	})
	// rng.Perm allocates two slices and each of the four batches pays the
	// kernels' closure headers; everything matrix-sized must be reuse. The
	// pre-arena implementation sat near 200 allocations per epoch here.
	if a > 48 {
		t.Errorf("TrainEpoch allocates %v times per epoch, want <= 48", a)
	}
}

// ReleaseScratch must leave the network usable: training continues
// bit-identically by re-drawing buffers from the pool.
func TestReleaseScratchThenTrainAgain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := waves(rng, 64, 16)
	net := tinyArch().Build(5)
	trainRng := rand.New(rand.NewSource(6))
	if _, err := net.TrainEpoch(x, y, 0.05, 32, trainRng); err != nil {
		t.Fatal(err)
	}
	net.ReleaseScratch()
	if _, err := net.TrainEpoch(x, y, 0.05, 32, trainRng); err != nil {
		t.Fatal(err)
	}
	pred := net.Predict(x)
	if len(pred) != x.Rows {
		t.Fatalf("predict returned %d rows, want %d", len(pred), x.Rows)
	}
}
