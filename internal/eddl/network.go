package eddl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"taskml/internal/mat"
	"taskml/internal/par"
)

// Layer is one differentiable stage. Forward caches whatever Backward
// needs; Backward receives dLoss/dOut and returns dLoss/dIn, accumulating
// parameter gradients internally.
//
// Memory contract: the matrices Forward and Backward return are
// layer-owned scratch drawn from mat.Scratch — valid until the layer's
// next Forward/Backward call or the network's ReleaseScratch, whichever
// comes first — and stateless layers (ReLU, Dropout) may rewrite the grad
// they are handed in place and return it. Callers that need a result to
// outlive the training loop must Clone it; trainable parameters (Params)
// are never pooled.
type Layer interface {
	Forward(x *mat.Dense) *mat.Dense
	Backward(grad *mat.Dense) *mat.Dense
	// Params returns the trainable tensors (nil for stateless layers).
	Params() []*Param
	// FwdFlops is the forward cost per sample, for the virtual-time model.
	FwdFlops() float64
	// OutCols is the flattened output width given the configured input.
	OutCols() int
}

// scratchHolder is implemented by layers that keep pooled scratch between
// steps; Network.ReleaseScratch fans out through it.
type scratchHolder interface{ releaseScratch() }

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	W    *mat.Dense
	Grad *mat.Dense
}

func newParam(r, c int) *Param {
	return &Param{W: mat.New(r, c), Grad: mat.New(r, c)}
}

// Conv1D is a 1-D convolution over single- or multi-channel sequences laid
// out channel-major: column ci*L + t holds channel ci at time t.
type Conv1D struct {
	InChannels, OutChannels int
	InLen, Kernel, Stride   int

	w, b  *Param
	lastX *mat.Dense

	out, dx *mat.Dense // pooled scratch reused across batches
}

// NewConv1D builds the layer with He-initialised weights.
func NewConv1D(inCh, outCh, inLen, kernel, stride int, rng *rand.Rand) *Conv1D {
	if stride < 1 {
		stride = 1
	}
	if kernel > inLen {
		panic(fmt.Sprintf("eddl: kernel %d exceeds input length %d", kernel, inLen))
	}
	c := &Conv1D{InChannels: inCh, OutChannels: outCh, InLen: inLen, Kernel: kernel, Stride: stride}
	c.w = newParam(outCh, inCh*kernel)
	c.b = newParam(1, outCh)
	scale := math.Sqrt(2 / float64(inCh*kernel))
	for i := range c.w.W.Data {
		c.w.W.Data[i] = rng.NormFloat64() * scale
	}
	return c
}

// OutLen is the output sequence length.
func (c *Conv1D) OutLen() int { return (c.InLen-c.Kernel)/c.Stride + 1 }

// OutCols implements Layer.
func (c *Conv1D) OutCols() int { return c.OutChannels * c.OutLen() }

// Forward implements Layer.
func (c *Conv1D) Forward(x *mat.Dense) *mat.Dense {
	if x.Cols != c.InChannels*c.InLen {
		panic(fmt.Sprintf("eddl: conv input %d cols, want %d", x.Cols, c.InChannels*c.InLen))
	}
	c.lastX = x
	lout := c.OutLen()
	out := mat.Scratch.GrowDense(&c.out, x.Rows, c.OutChannels*lout)
	// Samples are independent (disjoint output rows, read-only x and
	// weights), so the batch dimension parallelises over internal/par; the
	// window product is the shared unrolled Dot micro-kernel.
	grain := 1 + (1<<14)/(int(c.FwdFlops())+1)
	par.For(x.Rows, grain, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			xr := x.Row(bi)
			or := out.Row(bi)
			for co := 0; co < c.OutChannels; co++ {
				wr := c.w.W.Row(co)
				bias := c.b.W.At(0, co)
				for t := 0; t < lout; t++ {
					s := bias
					base := t * c.Stride
					for ci := 0; ci < c.InChannels; ci++ {
						xoff := ci*c.InLen + base
						woff := ci * c.Kernel
						s += mat.Dot(wr[woff:woff+c.Kernel], xr[xoff:])
					}
					or[co*lout+t] = s
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad *mat.Dense) *mat.Dense {
	lout := c.OutLen()
	dx := mat.Scratch.GrowDense(&c.dx, c.lastX.Rows, c.lastX.Cols)
	for bi := 0; bi < grad.Rows; bi++ {
		gr := grad.Row(bi)
		xr := c.lastX.Row(bi)
		dxr := dx.Row(bi)
		for co := 0; co < c.OutChannels; co++ {
			wr := c.w.W.Row(co)
			gwr := c.w.Grad.Row(co)
			var db float64
			for t := 0; t < lout; t++ {
				g := gr[co*lout+t]
				if g == 0 {
					continue
				}
				db += g
				base := t * c.Stride
				for ci := 0; ci < c.InChannels; ci++ {
					xoff := ci*c.InLen + base
					woff := ci * c.Kernel
					mat.Axpy(g, xr[xoff:xoff+c.Kernel], gwr[woff:])
					mat.Axpy(g, wr[woff:woff+c.Kernel], dxr[xoff:])
				}
			}
			c.b.Grad.Set(0, co, c.b.Grad.At(0, co)+db)
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.w, c.b} }

func (c *Conv1D) releaseScratch() {
	mat.Scratch.ReleaseDense(&c.out)
	mat.Scratch.ReleaseDense(&c.dx)
}

// FwdFlops implements Layer.
func (c *Conv1D) FwdFlops() float64 {
	return 2 * float64(c.OutChannels) * float64(c.OutLen()) * float64(c.InChannels) * float64(c.Kernel)
}

// Dense is a fully connected layer.
type Dense struct {
	In, Out int
	w, b    *Param
	lastX   *mat.Dense

	out, dx *mat.Dense // pooled scratch reused across batches
}

// NewDense builds the layer with He-initialised weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, w: newParam(in, out), b: newParam(1, out)}
	scale := math.Sqrt(2 / float64(in))
	for i := range d.w.W.Data {
		d.w.W.Data[i] = rng.NormFloat64() * scale
	}
	return d
}

// OutCols implements Layer.
func (d *Dense) OutCols() int { return d.Out }

// Forward implements Layer.
func (d *Dense) Forward(x *mat.Dense) *mat.Dense {
	if x.Cols != d.In {
		panic(fmt.Sprintf("eddl: dense input %d cols, want %d", x.Cols, d.In))
	}
	d.lastX = x
	out := mat.Scratch.GrowDense(&d.out, x.Rows, d.Out)
	mat.MulAdd(out, x, d.w.W) // out was zeroed: this is out = x·w
	for bi := 0; bi < out.Rows; bi++ {
		row := out.Row(bi)
		for j := range row {
			row[j] += d.b.W.At(0, j)
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *mat.Dense) *mat.Dense {
	mat.MulAtBAdd(d.w.Grad, d.lastX, grad) // accumulate xᵀ·grad without a temporary
	for bi := 0; bi < grad.Rows; bi++ {
		row := grad.Row(bi)
		for j, g := range row {
			d.b.Grad.Set(0, j, d.b.Grad.At(0, j)+g)
		}
	}
	dx := mat.Scratch.GrowDense(&d.dx, grad.Rows, d.In)
	mat.MulABtAdd(dx, grad, d.w.W) // dx was zeroed: this is dx = grad·wᵀ
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

func (d *Dense) releaseScratch() {
	mat.Scratch.ReleaseDense(&d.out)
	mat.Scratch.ReleaseDense(&d.dx)
}

// FwdFlops implements Layer.
func (d *Dense) FwdFlops() float64 { return 2 * float64(d.In) * float64(d.Out) }

// ReLU is the rectifier activation.
type ReLU struct {
	cols int
	mask []bool
	out  *mat.Dense // pooled scratch reused across batches
}

// NewReLU builds the activation for a given width.
func NewReLU(cols int) *ReLU { return &ReLU{cols: cols} }

// OutCols implements Layer.
func (r *ReLU) OutCols() int { return r.cols }

// Forward implements Layer.
func (r *ReLU) Forward(x *mat.Dense) *mat.Dense {
	out := mat.Scratch.GrowDense(&r.out, x.Rows, x.Cols)
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range x.Data {
		if v < 0 {
			r.mask[i] = false
		} else {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer. The masked entries are zeroed in grad itself
// (see the Layer memory contract): the upstream layer's grad scratch is
// dead after this call, so clamping in place saves the copy.
func (r *ReLU) Backward(grad *mat.Dense) *mat.Dense {
	for i := range grad.Data {
		if !r.mask[i] {
			grad.Data[i] = 0
		}
	}
	return grad
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

func (r *ReLU) releaseScratch() { mat.Scratch.ReleaseDense(&r.out) }

// FwdFlops implements Layer.
func (r *ReLU) FwdFlops() float64 { return float64(r.cols) }

// Network is a sequential stack of layers with a softmax cross-entropy
// head.
type Network struct {
	Layers  []Layer
	Classes int

	// Training scratch, drawn from mat.Scratch and reused across batches
	// and epochs; weights and gradients are never pooled. ReleaseScratch
	// hands everything back to the pool.
	ceGrad *mat.Dense // softmax cross-entropy gradient
	bx     *mat.Dense // mini-batch feature rows
	by     []int      // mini-batch labels

	plist []*Param // cached flattened parameter list (layers are fixed)
}

// paramList returns the network's parameters flattened across layers,
// computed once — per-batch Params() calls would allocate a small slice per
// layer per step. Layers never change after construction.
func (n *Network) paramList() []*Param {
	if n.plist == nil {
		for _, l := range n.Layers {
			n.plist = append(n.plist, l.Params()...)
		}
	}
	return n.plist
}

// ReleaseScratch returns every pooled buffer the network and its layers
// hold — forward activations, backward gradients, the mini-batch staging
// buffers — to mat.Scratch, so the next worker's training task can reuse
// them. Weights are untouched. Call it when a network is done training
// (the distributed trainer does, at the end of every cnn_train task body);
// using the network again afterwards is safe and simply re-draws scratch.
func (n *Network) ReleaseScratch() {
	for _, l := range n.Layers {
		if s, ok := l.(scratchHolder); ok {
			s.releaseScratch()
		}
	}
	mat.Scratch.ReleaseDense(&n.ceGrad)
	mat.Scratch.ReleaseDense(&n.bx)
	n.by = nil
}

// NewCNN builds the paper's architecture for a 1-D input of length
// inputLen: Conv1D(filters)–ReLU–Conv1D(filters)–ReLU–Dense(hidden)–ReLU–
// Dense(classes). kernel and stride shape the convolutions.
func NewCNN(inputLen, filters, kernel, stride, hidden, classes int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	c1 := NewConv1D(1, filters, inputLen, kernel, stride, rng)
	c2 := NewConv1D(filters, filters, c1.OutLen(), kernel, stride, rng)
	flat := c2.OutCols()
	d1 := NewDense(flat, hidden, rng)
	d2 := NewDense(hidden, classes, rng)
	return &Network{
		Layers: []Layer{
			c1, NewReLU(c1.OutCols()),
			c2, NewReLU(c2.OutCols()),
			d1, NewReLU(hidden),
			d2,
		},
		Classes: classes,
	}
}

// Forward runs the stack and returns the logits.
func (n *Network) Forward(x *mat.Dense) *mat.Dense {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// softmaxCE computes per-batch mean loss and the logits gradient into a
// fresh matrix (softmaxCEInto without the buffer reuse; tests and
// one-shot callers).
func softmaxCE(logits *mat.Dense, y []int) (float64, *mat.Dense) {
	grad := mat.New(logits.Rows, logits.Cols)
	return softmaxCEInto(grad, logits, y), grad
}

// softmaxCEInto computes the per-batch mean loss, writing the logits
// gradient into grad (pre-shaped to logits' shape, contents overwritten).
// This is the in-place variant the training loops feed with pooled
// scratch.
func softmaxCEInto(grad, logits *mat.Dense, y []int) float64 {
	if grad.Rows != logits.Rows || grad.Cols != logits.Cols {
		panic(fmt.Sprintf("eddl: softmaxCEInto grad %dx%d, want %dx%d", grad.Rows, grad.Cols, logits.Rows, logits.Cols))
	}
	var loss float64
	for bi := 0; bi < logits.Rows; bi++ {
		row := logits.Row(bi)
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		g := grad.Row(bi)
		for j, v := range row {
			e := math.Exp(v - maxv)
			g[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range g {
			g[j] *= inv
		}
		loss += -math.Log(math.Max(g[y[bi]], 1e-15))
		g[y[bi]] -= 1
	}
	invB := 1 / float64(logits.Rows)
	mat.ScaleInPlace(grad, invB)
	return loss * invB
}

// batchStep stages the mini-batch selected by idx into the network's
// pooled staging buffers, zeroes the parameter gradients, and runs one
// forward/backward pass, leaving the accumulated gradients in Params. It
// returns the batch loss. The whole step is allocation-free at steady
// state: the batch matrix, every activation and every gradient matrix is
// layer- or network-owned scratch reused across batches and epochs.
func (n *Network) batchStep(x *mat.Dense, y []int, idx []int) float64 {
	bx := mat.Scratch.GrowDense(&n.bx, len(idx), x.Cols)
	mat.TakeRowsInto(bx, x, idx)
	if cap(n.by) < len(idx) {
		n.by = make([]int, len(idx))
	}
	n.by = n.by[:len(idx)]
	for i, r := range idx {
		n.by[i] = y[r]
	}
	for _, p := range n.paramList() {
		clear(p.Grad.Data)
	}
	logits := n.Forward(bx)
	grad := mat.Scratch.GrowDense(&n.ceGrad, logits.Rows, logits.Cols)
	loss := softmaxCEInto(grad, logits, n.by)
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return loss
}

// TrainEpoch runs one epoch of mini-batch SGD and returns the mean loss.
func (n *Network) TrainEpoch(x *mat.Dense, y []int, lr float64, batch int, rng *rand.Rand) (float64, error) {
	if x.Rows != len(y) {
		return 0, fmt.Errorf("eddl: %d rows vs %d labels", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return 0, errors.New("eddl: empty training set")
	}
	if batch <= 0 {
		batch = 32
	}
	order := rng.Perm(x.Rows)
	var total float64
	batches := 0
	for at := 0; at < len(order); at += batch {
		end := at + batch
		if end > len(order) {
			end = len(order)
		}
		total += n.batchStep(x, y, order[at:end])
		for _, p := range n.paramList() {
			for i, g := range p.Grad.Data {
				p.W.Data[i] -= lr * g
			}
		}
		batches++
	}
	return total / float64(batches), nil
}

// Predict returns the argmax class per row.
func (n *Network) Predict(x *mat.Dense) []int {
	logits := n.Forward(x)
	out := make([]int, x.Rows)
	for bi := 0; bi < x.Rows; bi++ {
		row := logits.Row(bi)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[bi] = best
	}
	return out
}

// FwdFlopsPerSample sums the stack's forward cost, the basis of the
// GPU-time model.
func (n *Network) FwdFlopsPerSample() float64 {
	var f float64
	for _, l := range n.Layers {
		f += l.FwdFlops()
	}
	return f
}

// Weights returns deep copies of all parameter tensors in layer order.
func (n *Network) Weights() []*mat.Dense {
	var out []*mat.Dense
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			out = append(out, p.W.Clone())
		}
	}
	return out
}

// SetWeights installs parameter tensors previously obtained from Weights.
func (n *Network) SetWeights(ws []*mat.Dense) error {
	i := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			if i >= len(ws) {
				return errors.New("eddl: too few weight tensors")
			}
			if ws[i].Rows != p.W.Rows || ws[i].Cols != p.W.Cols {
				return fmt.Errorf("eddl: weight %d shape %dx%d, want %dx%d", i, ws[i].Rows, ws[i].Cols, p.W.Rows, p.W.Cols)
			}
			copy(p.W.Data, ws[i].Data)
			i++
		}
	}
	if i != len(ws) {
		return errors.New("eddl: too many weight tensors")
	}
	return nil
}

// WeightBytes is the serialized parameter size, used by the GPU
// communication model.
func (n *Network) WeightBytes() int64 {
	var b int64
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			b += int64(len(p.W.Data) * 8)
		}
	}
	return b
}

// MergeWeights averages several weight lists — the per-epoch merge of the
// paper's data-parallel scheme ("the weights of the neural network in each
// worker are retrieved and they are merged and used in the next epoch").
func MergeWeights(sets [][]*mat.Dense) ([]*mat.Dense, error) {
	if len(sets) == 0 {
		return nil, errors.New("eddl: no weight sets to merge")
	}
	out := make([]*mat.Dense, len(sets[0]))
	for i := range out {
		out[i] = sets[0][i].Clone()
	}
	for _, set := range sets[1:] {
		if len(set) != len(out) {
			return nil, errors.New("eddl: weight set arity mismatch")
		}
		for i, w := range set {
			if w.Rows != out[i].Rows || w.Cols != out[i].Cols {
				return nil, fmt.Errorf("eddl: weight %d shape mismatch", i)
			}
			mat.AddInPlace(out[i], w)
		}
	}
	inv := 1 / float64(len(sets))
	for _, w := range out {
		mat.ScaleInPlace(w, inv)
	}
	return out, nil
}
