package eddl

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"taskml/internal/compss"
	"taskml/internal/costs"
	"taskml/internal/mat"
	"taskml/internal/metrics"
)

// Federated learning is the extension the paper's conclusions call for:
// "our approach could incorporate federated learning in the future to train
// multiple models, which is particularly relevant for healthcare
// applications due to privacy constraints on data sharing. In this setup,
// various devices with local data contribute to training local models, and
// the resulting outcomes are then combined by a general model." This file
// implements that setup as a task workflow: per-device local training
// tasks, a FedAvg aggregation task per round, and a global evaluation —
// device data never leaves its task.

// FederatedConfig drives TrainFederated.
type FederatedConfig struct {
	// Devices is the number of participating edge devices. Default 8.
	Devices int
	// Rounds is the number of federated rounds. Default 10.
	Rounds int
	// LocalEpochs is how many epochs each device trains per round. Default 1.
	LocalEpochs int
	// NonIID skews the per-device class distribution: 0 gives IID shards;
	// 1 gives (nearly) single-class devices — the pathology federated
	// averaging must survive in real wearable fleets.
	NonIID float64
	// LR and Batch configure the local SGD. Defaults 0.05 / 16.
	LR    float64
	Batch int
	// Seed drives sharding and initialisation.
	Seed int64
	// HoldoutFraction of the data is kept at the server for evaluation.
	// Default 0.2.
	HoldoutFraction float64
}

func (c FederatedConfig) withDefaults() FederatedConfig {
	if c.Devices == 0 {
		c.Devices = 8
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.HoldoutFraction == 0 {
		c.HoldoutFraction = 0.2
	}
	return c
}

// FederatedResult reports a federated training run.
type FederatedResult struct {
	// RoundAccuracies is the server-side holdout accuracy after each round.
	RoundAccuracies []float64
	// Final holds the aggregated model weights after the last round.
	Final []*mat.Dense
	// Confusion is the holdout confusion matrix of the final model.
	Confusion *metrics.Confusion
	// DeviceSamples records the shard sizes (FedAvg weights).
	DeviceSamples []int
}

// Accuracy returns the final-round holdout accuracy.
func (r *FederatedResult) Accuracy() float64 {
	if len(r.RoundAccuracies) == 0 {
		return 0
	}
	return r.RoundAccuracies[len(r.RoundAccuracies)-1]
}

// MergeWeightsWeighted averages weight sets with per-set weights — FedAvg's
// sample-count weighting.
func MergeWeightsWeighted(sets [][]*mat.Dense, weights []float64) ([]*mat.Dense, error) {
	if len(sets) == 0 {
		return nil, errors.New("eddl: no weight sets to merge")
	}
	if len(weights) != len(sets) {
		return nil, fmt.Errorf("eddl: %d weight sets, %d weights", len(sets), len(weights))
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("eddl: negative merge weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, errors.New("eddl: merge weights sum to zero")
	}
	out := make([]*mat.Dense, len(sets[0]))
	for i, w := range sets[0] {
		out[i] = mat.Scale(weights[0]/total, w)
	}
	for s := 1; s < len(sets); s++ {
		if len(sets[s]) != len(out) {
			return nil, errors.New("eddl: weight set arity mismatch")
		}
		for i, w := range sets[s] {
			if w.Rows != out[i].Rows || w.Cols != out[i].Cols {
				return nil, fmt.Errorf("eddl: weight %d shape mismatch", i)
			}
			mat.AddInPlace(out[i], mat.Scale(weights[s]/total, w))
		}
	}
	return out, nil
}

// shardDevices splits sample indices across devices. NonIID sorts a
// fraction of the data by label before round-robin, concentrating classes
// on subsets of devices.
func shardDevices(y []int, devices int, nonIID float64, rng *rand.Rand) [][]int {
	idx := rng.Perm(len(y))
	if nonIID > 0 {
		nSorted := int(nonIID * float64(len(idx)))
		sorted := append([]int(nil), idx[:nSorted]...)
		sort.Slice(sorted, func(a, b int) bool { return y[sorted[a]] < y[sorted[b]] })
		copy(idx[:nSorted], sorted)
	}
	shards := make([][]int, devices)
	per := (len(idx) + devices - 1) / devices
	for d := 0; d < devices; d++ {
		lo := d * per
		hi := lo + per
		if hi > len(idx) {
			hi = len(idx)
		}
		if lo < hi {
			shards[d] = idx[lo:hi]
		}
	}
	return shards
}

// TrainFederated runs FedAvg over the task runtime: each round submits one
// local-training task per device (the device's shard never appears in any
// other task), aggregates with a weighted merge task, and evaluates the
// global model on the server holdout.
func TrainFederated(rt *compss.Runtime, x *mat.Dense, y []int, arch Arch, cfg FederatedConfig) (*FederatedResult, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("eddl: %d rows vs %d labels", x.Rows, len(y))
	}
	arch = arch.withDefaults()
	if arch.InputLen != x.Cols {
		return nil, fmt.Errorf("eddl: input length %d, data has %d features", arch.InputLen, x.Cols)
	}
	cfg = cfg.withDefaults()
	if cfg.HoldoutFraction <= 0 || cfg.HoldoutFraction >= 1 {
		return nil, fmt.Errorf("eddl: HoldoutFraction %v outside (0,1)", cfg.HoldoutFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Server-side holdout.
	perm := rng.Perm(x.Rows)
	nHold := int(cfg.HoldoutFraction * float64(x.Rows))
	if nHold < 1 || x.Rows-nHold < cfg.Devices {
		return nil, errors.New("eddl: dataset too small for the federation")
	}
	holdIdx, trainIdx := perm[:nHold], perm[nHold:]
	xh := mat.TakeRows(x, holdIdx)
	yh := make([]int, len(holdIdx))
	for i, r := range holdIdx {
		yh[i] = y[r]
	}
	ty := make([]int, len(trainIdx))
	for i, r := range trainIdx {
		ty[i] = y[r]
	}
	shards := shardDevices(ty, cfg.Devices, cfg.NonIID, rng)

	fwdFlops := arch.Build(0).FwdFlopsPerSample()
	weightBytes := arch.Build(0).WeightBytes()
	tc := rt.Main()

	// Device shards as tasks (the "local data" of each device).
	deviceData := make([]*compss.Future, cfg.Devices)
	sampleCounts := make([]int, cfg.Devices)
	for d := 0; d < cfg.Devices; d++ {
		local := shards[d]
		sampleCounts[d] = len(local)
		rows := make([]int, len(local))
		labels := make([]int, len(local))
		for i, r := range local {
			rows[i] = trainIdx[r]
			labels[i] = y[trainIdx[r]]
		}
		deviceData[d] = tc.Submit(compss.Opts{
			Name:     "fed_device_data",
			Cost:     costs.Copy(len(local), x.Cols),
			OutBytes: costs.Bytes(len(local), x.Cols),
		}, func(_ *compss.TaskCtx, _ []any) (any, error) {
			return &shard{x: mat.TakeRows(x, rows), y: labels}, nil
		})
	}

	initW := arch.Build(cfg.Seed).Weights()
	res := &FederatedResult{DeviceSamples: sampleCounts}
	var global any = initW
	for round := 0; round < cfg.Rounds; round++ {
		locals := make([]*compss.Future, cfg.Devices)
		for d := 0; d < cfg.Devices; d++ {
			dSeed := cfg.Seed + int64(round)*1009 + int64(d)*17
			n := sampleCounts[d]
			locals[d] = tc.Submit(compss.Opts{
				Name:     "fed_local",
				Cost:     costs.NNForwardBackward(n*cfg.LocalEpochs, fwdFlops),
				OutBytes: weightBytes,
			}, func(_ *compss.TaskCtx, args []any) (any, error) {
				sh := args[0].(*shard)
				ws := args[1].([]*mat.Dense)
				net := arch.Build(0)
				defer net.ReleaseScratch()
				if err := net.SetWeights(ws); err != nil {
					return nil, err
				}
				r := rand.New(rand.NewSource(dSeed))
				for e := 0; e < cfg.LocalEpochs; e++ {
					if sh.x.Rows == 0 {
						break
					}
					if _, err := net.TrainEpoch(sh.x, sh.y, cfg.LR, cfg.Batch, r); err != nil {
						return nil, err
					}
				}
				return net.Weights(), nil
			}, deviceData[d], global)
		}
		merged := tc.Submit(compss.Opts{
			Name:     "fed_avg",
			Cost:     costs.Copy(int(weightBytes/8), cfg.Devices),
			OutBytes: weightBytes,
		}, func(_ *compss.TaskCtx, args []any) (any, error) {
			sets := make([][]*mat.Dense, 0, cfg.Devices)
			weights := make([]float64, 0, cfg.Devices)
			for d, v := range args[0].([]any) {
				if sampleCounts[d] == 0 {
					continue
				}
				sets = append(sets, v.([]*mat.Dense))
				weights = append(weights, float64(sampleCounts[d]))
			}
			return MergeWeightsWeighted(sets, weights)
		}, locals)

		// The server synchronises the aggregate each round (the federated
		// analogue of the per-epoch weight retrieval); the next round's
		// tasks consume the future.
		mv, err := tc.Get(merged)
		if err != nil {
			return nil, err
		}
		res.Final = mv.([]*mat.Dense)
		global = merged

		evalFut := tc.Submit(compss.Opts{
			Name:     "fed_eval",
			Cost:     costs.NNForwardBackward(xh.Rows, fwdFlops) / 3,
			OutBytes: 64,
		}, func(_ *compss.TaskCtx, args []any) (any, error) {
			net := arch.Build(0)
			defer net.ReleaseScratch()
			if err := net.SetWeights(args[0].([]*mat.Dense)); err != nil {
				return nil, err
			}
			conf := metrics.NewConfusion(arch.Classes)
			conf.AddAll(yh, net.Predict(xh))
			return conf, nil
		}, global)
		cv, err := tc.Get(evalFut)
		if err != nil {
			return nil, err
		}
		conf := cv.(*metrics.Confusion)
		res.RoundAccuracies = append(res.RoundAccuracies, conf.Accuracy())
		res.Confusion = conf
	}
	return res, nil
}
