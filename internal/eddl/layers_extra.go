package eddl

import (
	"fmt"
	"math/rand"

	"taskml/internal/mat"
)

// MaxPool1D downsamples each channel by taking the maximum over
// non-overlapping windows of Pool samples (channel-major layout, matching
// Conv1D).
type MaxPool1D struct {
	Channels, InLen, Pool int

	argmax []int // flattened (batch × out) winner indices into the input
	rows   int

	out, dx *mat.Dense // pooled scratch reused across batches
}

// NewMaxPool1D builds the layer; pool must divide into at least one window.
func NewMaxPool1D(channels, inLen, pool int) *MaxPool1D {
	if pool < 1 || pool > inLen {
		panic(fmt.Sprintf("eddl: pool %d invalid for length %d", pool, inLen))
	}
	return &MaxPool1D{Channels: channels, InLen: inLen, Pool: pool}
}

// OutLen is the pooled sequence length.
func (m *MaxPool1D) OutLen() int { return m.InLen / m.Pool }

// OutCols implements Layer.
func (m *MaxPool1D) OutCols() int { return m.Channels * m.OutLen() }

// Forward implements Layer.
func (m *MaxPool1D) Forward(x *mat.Dense) *mat.Dense {
	if x.Cols != m.Channels*m.InLen {
		panic(fmt.Sprintf("eddl: pool input %d cols, want %d", x.Cols, m.Channels*m.InLen))
	}
	lout := m.OutLen()
	out := mat.Scratch.GrowDense(&m.out, x.Rows, m.Channels*lout)
	if cap(m.argmax) < x.Rows*out.Cols {
		m.argmax = make([]int, x.Rows*out.Cols)
	}
	m.argmax = m.argmax[:x.Rows*out.Cols]
	m.rows = x.Rows
	for bi := 0; bi < x.Rows; bi++ {
		xr := x.Row(bi)
		or := out.Row(bi)
		for c := 0; c < m.Channels; c++ {
			for t := 0; t < lout; t++ {
				base := c*m.InLen + t*m.Pool
				best := base
				for k := 1; k < m.Pool; k++ {
					if xr[base+k] > xr[best] {
						best = base + k
					}
				}
				or[c*lout+t] = xr[best]
				m.argmax[bi*out.Cols+c*lout+t] = best
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool1D) Backward(grad *mat.Dense) *mat.Dense {
	dx := mat.Scratch.GrowDense(&m.dx, m.rows, m.Channels*m.InLen)
	for bi := 0; bi < grad.Rows; bi++ {
		gr := grad.Row(bi)
		dr := dx.Row(bi)
		for j, g := range gr {
			dr[m.argmax[bi*grad.Cols+j]] += g
		}
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool1D) Params() []*Param { return nil }

func (m *MaxPool1D) releaseScratch() {
	mat.Scratch.ReleaseDense(&m.out)
	mat.Scratch.ReleaseDense(&m.dx)
}

// FwdFlops implements Layer.
func (m *MaxPool1D) FwdFlops() float64 { return float64(m.Channels * m.InLen) }

// Dropout randomly zeroes a fraction of activations during training and
// scales the survivors (inverted dropout). Prediction paths call Eval()
// first; TrainEpoch switches Train() on.
type Dropout struct {
	Rate float64
	cols int
	rng  *rand.Rand

	training bool
	mask     []bool
	out      *mat.Dense // pooled scratch reused across batches
}

// NewDropout builds the layer for a given width.
func NewDropout(cols int, rate float64, seed int64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("eddl: dropout rate %v outside [0, 1)", rate))
	}
	return &Dropout{Rate: rate, cols: cols, rng: rand.New(rand.NewSource(seed))}
}

// Train enables stochastic dropping.
func (d *Dropout) Train() { d.training = true }

// Eval disables dropping (identity at inference).
func (d *Dropout) Eval() { d.training = false }

// OutCols implements Layer.
func (d *Dropout) OutCols() int { return d.cols }

// Forward implements Layer.
func (d *Dropout) Forward(x *mat.Dense) *mat.Dense {
	if !d.training || d.Rate == 0 {
		return x
	}
	out := mat.Scratch.GrowDense(&d.out, x.Rows, x.Cols)
	if cap(d.mask) < len(out.Data) {
		d.mask = make([]bool, len(out.Data))
	}
	d.mask = d.mask[:len(out.Data)]
	scale := 1 / (1 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float64() < d.Rate {
			d.mask[i] = false
		} else {
			out.Data[i] = v * scale
			d.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer. Like ReLU, the survivors are rescaled in grad
// itself (see the Layer memory contract).
func (d *Dropout) Backward(grad *mat.Dense) *mat.Dense {
	if !d.training || d.Rate == 0 {
		return grad
	}
	scale := 1 / (1 - d.Rate)
	for i := range grad.Data {
		if d.mask[i] {
			grad.Data[i] *= scale
		} else {
			grad.Data[i] = 0
		}
	}
	return grad
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

func (d *Dropout) releaseScratch() { mat.Scratch.ReleaseDense(&d.out) }

// FwdFlops implements Layer.
func (d *Dropout) FwdFlops() float64 { return float64(d.cols) }

// SGD is a momentum stochastic-gradient-descent optimiser over a network's
// parameters. Momentum 0 reduces to the plain update TrainEpoch applies
// inline.
type SGD struct {
	LR       float64
	Momentum float64

	velocity [][]float64
}

// NewSGD builds the optimiser.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one update to every parameter from its accumulated gradient
// (gradients are not cleared; callers zero them per batch).
func (o *SGD) Step(n *Network) {
	params := n.paramList()
	if o.velocity == nil {
		o.velocity = make([][]float64, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float64, len(p.W.Data))
		}
	}
	for i, p := range params {
		v := o.velocity[i]
		for j, g := range p.Grad.Data {
			v[j] = o.Momentum*v[j] - o.LR*g
			p.W.Data[j] += v[j]
		}
	}
}

// TrainEpochSGD runs one epoch of mini-batch training with the given
// optimiser (TrainEpoch's inline update generalised to momentum), setting
// any Dropout layers to training mode for the duration.
func (n *Network) TrainEpochSGD(x *mat.Dense, y []int, opt *SGD, batch int, rng *rand.Rand) (float64, error) {
	if x.Rows != len(y) {
		return 0, fmt.Errorf("eddl: %d rows vs %d labels", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return 0, fmt.Errorf("eddl: empty training set")
	}
	if batch <= 0 {
		batch = 32
	}
	for _, l := range n.Layers {
		if d, ok := l.(*Dropout); ok {
			d.Train()
			defer d.Eval()
		}
	}
	order := rng.Perm(x.Rows)
	var total float64
	batches := 0
	for at := 0; at < len(order); at += batch {
		end := at + batch
		if end > len(order) {
			end = len(order)
		}
		total += n.batchStep(x, y, order[at:end])
		opt.Step(n)
		batches++
	}
	return total / float64(batches), nil
}
