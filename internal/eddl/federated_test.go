package eddl

import (
	"math/rand"
	"testing"

	"taskml/internal/compss"
	"taskml/internal/mat"
)

func TestMergeWeightsWeighted(t *testing.T) {
	sets := [][]*mat.Dense{
		{mat.NewFromData(1, 2, []float64{0, 0})},
		{mat.NewFromData(1, 2, []float64{10, 20})},
	}
	m, err := MergeWeightsWeighted(sets, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m[0].At(0, 0) != 2.5 || m[0].At(0, 1) != 5 {
		t.Fatalf("weighted merge = %v", m[0])
	}
}

func TestMergeWeightsWeightedErrors(t *testing.T) {
	one := [][]*mat.Dense{{mat.New(1, 1)}}
	if _, err := MergeWeightsWeighted(nil, nil); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := MergeWeightsWeighted(one, []float64{1, 2}); err == nil {
		t.Fatal("want arity error")
	}
	if _, err := MergeWeightsWeighted(one, []float64{0}); err == nil {
		t.Fatal("want zero-weight error")
	}
	if _, err := MergeWeightsWeighted(one, []float64{-1}); err == nil {
		t.Fatal("want negative-weight error")
	}
	two := [][]*mat.Dense{{mat.New(1, 1)}, {mat.New(2, 2)}}
	if _, err := MergeWeightsWeighted(two, []float64{1, 1}); err == nil {
		t.Fatal("want shape error")
	}
}

func TestShardDevicesPartition(t *testing.T) {
	y := make([]int, 103)
	for i := range y {
		y[i] = i % 2
	}
	rng := rand.New(rand.NewSource(1))
	shards := shardDevices(y, 8, 0, rng)
	seen := map[int]bool{}
	total := 0
	for _, sh := range shards {
		for _, i := range sh {
			if seen[i] {
				t.Fatalf("index %d in two shards", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != 103 {
		t.Fatalf("shards cover %d of 103", total)
	}
}

func TestShardDevicesNonIIDSkews(t *testing.T) {
	y := make([]int, 200)
	for i := range y {
		y[i] = i % 2
	}
	rng := rand.New(rand.NewSource(2))
	skewed := shardDevices(y, 4, 1, rng)
	// With full skew, at least one device should be (almost) single-class.
	maxImbalance := 0.0
	for _, sh := range skewed {
		ones := 0
		for _, i := range sh {
			ones += y[i]
		}
		frac := float64(ones) / float64(len(sh))
		if imb := absf(frac - 0.5); imb > maxImbalance {
			maxImbalance = imb
		}
	}
	if maxImbalance < 0.4 {
		t.Fatalf("non-IID sharding max imbalance %v, want near 0.5", maxImbalance)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestTrainFederatedLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := waves(rng, 240, 16)
	rt := compss.New(compss.Config{Workers: 4})
	arch := tinyArch()
	res, err := TrainFederated(rt, x, y, arch, FederatedConfig{
		Devices: 4, Rounds: 12, LocalEpochs: 2, LR: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundAccuracies) != 12 {
		t.Fatalf("%d round accuracies", len(res.RoundAccuracies))
	}
	if res.Accuracy() < 0.8 {
		t.Fatalf("federated accuracy %v", res.Accuracy())
	}
	if res.Confusion.Total() == 0 || len(res.Final) == 0 {
		t.Fatal("result incomplete")
	}
	// Graph shape: Devices local tasks per round, one fed_avg per round.
	counts := rt.Graph().CountByName()
	if counts["fed_local"] != 4*12 || counts["fed_avg"] != 12 || counts["fed_eval"] != 12 {
		t.Fatalf("federated graph shape: %v", counts)
	}
	if counts["fed_device_data"] != 4 {
		t.Fatalf("device data tasks: %v", counts)
	}
}

func TestTrainFederatedNonIIDHarder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := waves(rng, 240, 16)
	arch := tinyArch()
	run := func(nonIID float64) float64 {
		rt := compss.New(compss.Config{Workers: 4})
		res, err := TrainFederated(rt, x, y, arch, FederatedConfig{
			Devices: 6, Rounds: 4, LocalEpochs: 2, LR: 0.1, Seed: 4, NonIID: nonIID,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Early-round average: convergence speed, not final quality.
		var s float64
		for _, a := range res.RoundAccuracies {
			s += a
		}
		return s / float64(len(res.RoundAccuracies))
	}
	iid := run(0)
	skewed := run(1)
	if skewed > iid+0.05 {
		t.Fatalf("non-IID (%v) should not converge faster than IID (%v)", skewed, iid)
	}
}

func TestTrainFederatedValidation(t *testing.T) {
	rt := compss.New(compss.Config{Workers: 2})
	x := mat.New(10, 16)
	if _, err := TrainFederated(rt, x, make([]int, 9), tinyArch(), FederatedConfig{}); err == nil {
		t.Fatal("want label mismatch error")
	}
	bad := tinyArch()
	bad.InputLen = 4
	if _, err := TrainFederated(rt, x, make([]int, 10), bad, FederatedConfig{}); err == nil {
		t.Fatal("want input length error")
	}
	if _, err := TrainFederated(rt, x, make([]int, 10), tinyArch(), FederatedConfig{Devices: 50}); err == nil {
		t.Fatal("want too-small dataset error")
	}
	if _, err := TrainFederated(rt, x, make([]int, 10), tinyArch(), FederatedConfig{HoldoutFraction: 2}); err == nil {
		t.Fatal("want holdout fraction error")
	}
}
