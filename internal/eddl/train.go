package eddl

import (
	"fmt"
	"math/rand"

	"taskml/internal/compss"
	"taskml/internal/costs"
	"taskml/internal/mat"
	"taskml/internal/metrics"
)

// Arch describes the CNN (see NewCNN); the paper's model uses two Conv1D
// layers with 32 filters and a 32-neuron dense layer.
type Arch struct {
	InputLen int
	Filters  int
	Kernel   int
	Stride   int
	Hidden   int
	Classes  int
}

func (a Arch) withDefaults() Arch {
	if a.Filters == 0 {
		a.Filters = 32
	}
	if a.Kernel == 0 {
		a.Kernel = 5
	}
	if a.Stride == 0 {
		a.Stride = 1
	}
	if a.Hidden == 0 {
		a.Hidden = 32
	}
	if a.Classes == 0 {
		a.Classes = 2
	}
	return a
}

// Build instantiates the network.
func (a Arch) Build(seed int64) *Network {
	a = a.withDefaults()
	return NewCNN(a.InputLen, a.Filters, a.Kernel, a.Stride, a.Hidden, a.Classes, seed)
}

// TrainConfig drives the distributed K-fold training.
type TrainConfig struct {
	// Folds is the cross-validation arity. Default 5 (the paper's K-fold).
	Folds int
	// Epochs per fold. Default 7 ("each fold runs seven epochs").
	Epochs int
	// Workers is the data-parallel width per epoch. Default 4 ("a group of
	// four training tasks each one running on a GPU").
	Workers int
	// GPUsPerTask is the accelerator demand of each training task: 1 in
	// the paper's best configuration, 4 when EDDL spreads each task over a
	// node's GPUs.
	GPUsPerTask int
	// LR is the SGD learning rate. Default 0.05.
	LR float64
	// Batch is the mini-batch size. Default 32.
	Batch int
	// Seed drives initialisation, shuffling and fold splitting.
	Seed int64
	// ComputeScale multiplies the virtual cost of the training/eval tasks.
	// The experiment harness sets it to the ratio between the paper's
	// per-task work (their network and shard sizes, on a V100) and this
	// run's; 1 (default) keeps the natural costs.
	ComputeScale float64
	// PayloadScale multiplies the virtual payload sizes (dataset
	// distribution, shards, weights) the same way. See EXPERIMENTS.md.
	PayloadScale float64
	// DistributeScale additionally multiplies the shared
	// dataset-distribution stage's cost: the paper's pre-training stage
	// (per-fold staging to the parallel filesystem, worker deployment)
	// costs more than one serialization pass. Default 1.
	DistributeScale float64
	// GPUSyncFrac is the per-extra-GPU synchronisation overhead fraction in
	// the virtual-time model: a task on g GPUs costs
	// compute/g · (1 + GPUSyncFrac·(g-1)). The default 1.267 is calibrated
	// so a 4-GPU task takes ≈1.2× the time of a 1-GPU task on the same
	// shard — the paper's observation that "the dataset is not big enough
	// to fill the 4 GPUs ... and the communication between the GPUs is
	// causing unnecessary overhead" (§IV-B).
	GPUSyncFrac float64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Folds == 0 {
		c.Folds = 5
	}
	if c.Epochs == 0 {
		c.Epochs = 7
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.GPUsPerTask == 0 {
		c.GPUsPerTask = 1
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.GPUSyncFrac == 0 {
		c.GPUSyncFrac = 1.267
	}
	if c.ComputeScale == 0 {
		c.ComputeScale = 1
	}
	if c.PayloadScale == 0 {
		c.PayloadScale = 1
	}
	if c.DistributeScale == 0 {
		c.DistributeScale = 1
	}
	return c
}

// scaleBytes applies PayloadScale to a payload size.
func (c TrainConfig) scaleBytes(b int64) int64 { return int64(float64(b) * c.PayloadScale) }

// taskSeconds is the virtual cost of one data-parallel training task: the
// shard's forward+backward work split across the task's GPUs, inflated by
// inter-GPU synchronisation.
func taskSeconds(samples int, fwdFlops float64, gpus int, syncFrac float64) float64 {
	if gpus < 1 {
		gpus = 1
	}
	compute := costs.NNForwardBackward(samples, fwdFlops)
	return compute / float64(gpus) * (1 + syncFrac*float64(gpus-1))
}

// shard is a worker's slice of the training data.
type shard struct {
	x *mat.Dense
	y []int
}

// KFoldResult aggregates a distributed cross-validation.
type KFoldResult struct {
	// Confusion merges all folds (the paper reports one fold's matrix;
	// per-fold matrices are in FoldConfusions).
	Confusion *metrics.Confusion
	// FoldConfusions holds one matrix per fold.
	FoldConfusions []*metrics.Confusion
	// FoldAccuracies holds per-fold accuracy.
	FoldAccuracies []float64
}

// Accuracy returns the pooled accuracy.
func (r *KFoldResult) Accuracy() float64 { return r.Confusion.Accuracy() }

// trainFoldWorkflow submits the task graph for one fold into tc and
// returns the fold's confusion matrix. Every epoch ends with a Get on the
// merged weights — the synchronisation the paper's Figure 9 discussion
// centres on. Run with tc = the main context to reproduce the plain
// version; run inside a nested task to reproduce Figure 10.
func trainFoldWorkflow(tc *compss.TaskCtx, arch Arch, cfg TrainConfig, dist *compss.Future,
	xtr *mat.Dense, ytr []int, xte *mat.Dense, yte []int, foldSeed int64) (*metrics.Confusion, error) {

	arch = arch.withDefaults()
	cfg = cfg.withDefaults()
	fwdFlops := arch.Build(0).FwdFlopsPerSample()
	weightBytes := arch.Build(0).WeightBytes()

	// Partition the fold's training data into Workers shards (one task per
	// fold, downstream of the shared distribution stage). dist is nil when
	// the enclosing fold task already depends on the distribution.
	partArgs := []any{xtr, ytr}
	if dist != nil {
		partArgs = append(partArgs, dist)
	}
	shardFuts := tc.SubmitN(compss.Opts{
		Name:     "cnn_partition",
		Cost:     costs.Copy(xtr.Rows, xtr.Cols) * cfg.PayloadScale,
		OutBytes: cfg.scaleBytes(costs.Bytes(xtr.Rows, xtr.Cols) / int64(cfg.Workers)),
	}, cfg.Workers, func(_ *compss.TaskCtx, args []any) ([]any, error) {
		x := args[0].(*mat.Dense)
		y := args[1].([]int)
		rng := rand.New(rand.NewSource(foldSeed))
		order := rng.Perm(x.Rows)
		out := make([]any, cfg.Workers)
		per := (x.Rows + cfg.Workers - 1) / cfg.Workers
		for w := 0; w < cfg.Workers; w++ {
			lo := w * per
			hi := lo + per
			if hi > x.Rows {
				hi = x.Rows
			}
			if lo >= hi {
				out[w] = &shard{x: mat.New(0, x.Cols), y: nil}
				continue
			}
			idx := order[lo:hi]
			sy := make([]int, len(idx))
			for i, r := range idx {
				sy[i] = y[r]
			}
			out[w] = &shard{x: mat.TakeRows(x, idx), y: sy}
		}
		return out, nil
	}, partArgs...)

	// Initial weights.
	weightsFut := tc.Submit(compss.Opts{
		Name:     "cnn_init",
		Cost:     costs.Copy(int(weightBytes/8), 1),
		OutBytes: cfg.scaleBytes(weightBytes),
	}, func(_ *compss.TaskCtx, _ []any) (any, error) {
		return arch.Build(foldSeed).Weights(), nil
	})

	shardRows := (xtr.Rows + cfg.Workers - 1) / cfg.Workers
	var weights any = weightsFut
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochSeed := foldSeed + int64(epoch)*613
		trained := make([]*compss.Future, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			wSeed := epochSeed + int64(w)*31
			trained[w] = tc.Submit(compss.Opts{
				Name:     "cnn_train",
				Cost:     taskSeconds(shardRows, fwdFlops, cfg.GPUsPerTask, cfg.GPUSyncFrac) * cfg.ComputeScale,
				GPUs:     cfg.GPUsPerTask,
				Cores:    1,
				OutBytes: cfg.scaleBytes(weightBytes),
			}, func(_ *compss.TaskCtx, args []any) (any, error) {
				sh := args[0].(*shard)
				ws := args[1].([]*mat.Dense)
				net := arch.Build(0)
				// The published weights are deep copies (Weights clones);
				// the activation/gradient scratch goes back to the pool for
				// the next worker's epoch.
				defer net.ReleaseScratch()
				if err := net.SetWeights(ws); err != nil {
					return nil, err
				}
				if sh.x.Rows == 0 {
					return net.Weights(), nil
				}
				rng := rand.New(rand.NewSource(wSeed))
				if _, err := net.TrainEpoch(sh.x, sh.y, cfg.LR, cfg.Batch, rng); err != nil {
					return nil, err
				}
				return net.Weights(), nil
			}, shardFuts[w], weights)
		}
		merged := tc.Submit(compss.Opts{
			Name:     "cnn_merge",
			Cost:     costs.Copy(int(weightBytes/8), cfg.Workers) * cfg.PayloadScale,
			OutBytes: cfg.scaleBytes(weightBytes),
		}, func(_ *compss.TaskCtx, args []any) (any, error) {
			sets := make([][]*mat.Dense, 0, cfg.Workers)
			for _, v := range args[0].([]any) {
				sets = append(sets, v.([]*mat.Dense))
			}
			return MergeWeights(sets)
		}, trained)

		// The per-epoch synchronisation: retrieve the merged weights at the
		// submitting program before generating the next epoch's tasks. The
		// next epoch still consumes the future (one modeled transfer per
		// consumer); the Get's role is the ordering floor.
		if _, err := tc.Get(merged); err != nil {
			return nil, err
		}
		weights = merged
	}

	// Evaluate the fold on held-out data.
	evalFut := tc.Submit(compss.Opts{
		Name:     "cnn_eval",
		Cost:     costs.NNForwardBackward(xte.Rows, fwdFlops) / 3 * cfg.ComputeScale, // forward only
		GPUs:     1,
		Cores:    1,
		OutBytes: 64,
	}, func(_ *compss.TaskCtx, args []any) (any, error) {
		ws := args[0].([]*mat.Dense)
		net := arch.Build(0)
		defer net.ReleaseScratch()
		if err := net.SetWeights(ws); err != nil {
			return nil, err
		}
		pred := net.Predict(xte)
		conf := metrics.NewConfusion(arch.Classes)
		conf.AddAll(yte, pred)
		return conf, nil
	}, weights)
	confAny, err := tc.Get(evalFut)
	if err != nil {
		return nil, err
	}
	return confAny.(*metrics.Confusion), nil
}

// TrainKFold runs the paper's distributed K-fold CNN training. With
// nested=false the fold loops run in the main program, so each epoch's
// weight synchronisation stops global task generation and the folds
// serialise (Figure 9). With nested=true each fold is a task that submits
// its own subtasks, making the synchronisations fold-local so the folds
// overlap (Figure 10 — the "nesting" feature).
func TrainKFold(rt *compss.Runtime, x *mat.Dense, y []int, arch Arch, cfg TrainConfig, nested bool) (*KFoldResult, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("eddl: %d rows vs %d labels", x.Rows, len(y))
	}
	arch = arch.withDefaults()
	if arch.InputLen != x.Cols {
		return nil, fmt.Errorf("eddl: input length %d, data has %d features", arch.InputLen, x.Cols)
	}
	cfg = cfg.withDefaults()
	folds := metrics.StratifiedKFold(y, cfg.Folds, cfg.Seed)

	// Shared stage before any fold trains: the master serializes and
	// distributes the dataset. The paper attributes the nested version's
	// sub-5× speedup to exactly this part of the workflow ("the
	// partitioning and distribution of the dataset"); its cost is priced
	// at master-I/O bandwidth (costs.MasterIOBps), not interconnect speed.
	dist := rt.Submit(compss.Opts{
		Name:     "cnn_distribute",
		Cost:     costs.IO(cfg.scaleBytes(costs.Bytes(x.Rows, x.Cols))) * cfg.DistributeScale,
		OutBytes: cfg.scaleBytes(costs.Bytes(x.Rows, x.Cols)),
	}, func(_ *compss.TaskCtx, _ []any) (any, error) {
		return true, nil
	})

	take := func(idx []int) (*mat.Dense, []int) {
		sub := mat.TakeRows(x, idx)
		sy := make([]int, len(idx))
		for i, r := range idx {
			sy[i] = y[r]
		}
		return sub, sy
	}

	res := &KFoldResult{Confusion: metrics.NewConfusion(arch.Classes)}
	if nested {
		futs := make([]*compss.Future, len(folds))
		for f, fold := range folds {
			foldSeed := cfg.Seed + int64(f)*7001
			xtr, ytr := take(fold.Train)
			xte, yte := take(fold.Test)
			futs[f] = rt.Submit(compss.Opts{
				Name:  "fold_train",
				Cost:  1e-3, // orchestration only; children carry the work
				Cores: 1,
			}, func(tcc *compss.TaskCtx, args []any) (any, error) {
				distDone := args[0]
				_ = distDone
				return trainFoldWorkflow(tcc, arch, cfg, nil, xtr, ytr, xte, yte, foldSeed)
			}, dist)
		}
		for _, fut := range futs {
			v, err := rt.Get(fut)
			if err != nil {
				return nil, err
			}
			conf := v.(*metrics.Confusion)
			res.FoldConfusions = append(res.FoldConfusions, conf)
			res.FoldAccuracies = append(res.FoldAccuracies, conf.Accuracy())
			res.Confusion.Merge(conf)
		}
		return res, nil
	}

	for f, fold := range folds {
		foldSeed := cfg.Seed + int64(f)*7001
		xtr, ytr := take(fold.Train)
		xte, yte := take(fold.Test)
		conf, err := trainFoldWorkflow(rt.Main(), arch, cfg, dist, xtr, ytr, xte, yte, foldSeed)
		if err != nil {
			return nil, err
		}
		res.FoldConfusions = append(res.FoldConfusions, conf)
		res.FoldAccuracies = append(res.FoldAccuracies, conf.Accuracy())
		res.Confusion.Merge(conf)
	}
	return res, nil
}
