package eddl

import (
	"math"
	"math/rand"
	"testing"

	"taskml/internal/mat"
)

func TestMaxPool1DForward(t *testing.T) {
	p := NewMaxPool1D(2, 4, 2) // 2 channels, length 4, pool 2
	x := mat.NewFromData(1, 8, []float64{
		1, 5, 2, 3, // channel 0
		-1, -2, 7, 0, // channel 1
	})
	out := p.Forward(x)
	want := []float64{5, 3, -1, 7}
	for i, w := range want {
		if out.At(0, i) != w {
			t.Fatalf("pooled = %v, want %v", out.Row(0), want)
		}
	}
	if p.OutCols() != 4 || p.OutLen() != 2 {
		t.Fatalf("OutCols=%d OutLen=%d", p.OutCols(), p.OutLen())
	}
}

func TestMaxPool1DBackwardRoutesToWinners(t *testing.T) {
	p := NewMaxPool1D(1, 4, 2)
	x := mat.NewFromData(1, 4, []float64{1, 5, 2, 3})
	p.Forward(x)
	grad := mat.NewFromData(1, 2, []float64{10, 20})
	dx := p.Backward(grad)
	want := []float64{0, 10, 0, 20}
	for i, w := range want {
		if dx.At(0, i) != w {
			t.Fatalf("dx = %v, want %v", dx.Row(0), want)
		}
	}
}

func TestMaxPool1DGradientCheck(t *testing.T) {
	// A network with pooling must still pass the numerical gradient check.
	rng := rand.New(rand.NewSource(1))
	conv := NewConv1D(1, 2, 12, 3, 1, rng)
	pool := NewMaxPool1D(2, conv.OutLen(), 2)
	dense := NewDense(pool.OutCols(), 2, rng)
	net := &Network{Layers: []Layer{conv, NewReLU(conv.OutCols()), pool, dense}, Classes: 2}

	x := mat.New(2, 12)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := []int{0, 1}
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = 0
			}
		}
	}
	logits := net.Forward(x)
	_, grad := softmaxCE(logits, y)
	for i := len(net.Layers) - 1; i >= 0; i-- {
		grad = net.Layers[i].Backward(grad)
	}
	const eps = 1e-6
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			step := len(p.W.Data)/4 + 1
			for i := 0; i < len(p.W.Data); i += step {
				orig := p.W.Data[i]
				p.W.Data[i] = orig + eps
				lp, _ := softmaxCEOf(net, x, y)
				p.W.Data[i] = orig - eps
				lm, _ := softmaxCEOf(net, x, y)
				p.W.Data[i] = orig
				numeric := (lp - lm) / (2 * eps)
				analytic := p.Grad.Data[i]
				if math.Abs(numeric-analytic) > 1e-4*(math.Abs(numeric)+math.Abs(analytic)+1e-3) {
					t.Fatalf("pooled-net gradient mismatch: numeric %v vs analytic %v", numeric, analytic)
				}
			}
		}
	}
}

func softmaxCEOf(n *Network, x *mat.Dense, y []int) (float64, *mat.Dense) {
	return softmaxCE(n.Forward(x), y)
}

func TestMaxPool1DInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewMaxPool1D(1, 4, 5)
}

func TestDropoutIdentityAtEval(t *testing.T) {
	d := NewDropout(8, 0.5, 1)
	x := mat.New(3, 8)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	out := d.Forward(x) // Eval by default
	if !mat.Equal(out, x, 0) {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainingDropsAndScales(t *testing.T) {
	d := NewDropout(1000, 0.4, 2)
	d.Train()
	x := mat.New(1, 1000)
	for i := range x.Data {
		x.Data[i] = 1
	}
	out := d.Forward(x)
	zeros, scaled := 0, 0
	for _, v := range out.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-1/0.6) < 1e-12:
			scaled++
		default:
			t.Fatalf("unexpected activation %v", v)
		}
	}
	if zeros < 300 || zeros > 500 {
		t.Fatalf("%d of 1000 dropped at rate 0.4", zeros)
	}
	if zeros+scaled != 1000 {
		t.Fatal("activations unaccounted for")
	}
	// Backward masks the same entries.
	grad := mat.New(1, 1000)
	for i := range grad.Data {
		grad.Data[i] = 1
	}
	dg := d.Backward(grad)
	for i, v := range out.Data {
		if (v == 0) != (dg.Data[i] == 0) {
			t.Fatal("backward mask disagrees with forward")
		}
	}
}

func TestDropoutInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDropout(4, 1.0, 1)
}

func TestSGDMomentumAccelerates(t *testing.T) {
	// On a fixed gradient, momentum accumulates: the second step moves
	// farther than the first.
	net := &Network{Layers: []Layer{NewDense(1, 1, rand.New(rand.NewSource(3)))}, Classes: 1}
	p := net.Layers[0].Params()[0]
	p.W.Data[0] = 0
	opt := NewSGD(0.1, 0.9)

	p.Grad.Data[0] = 1
	opt.Step(net)
	first := -p.W.Data[0]
	before := p.W.Data[0]
	p.Grad.Data[0] = 1
	opt.Step(net)
	second := before - p.W.Data[0]
	if second <= first {
		t.Fatalf("momentum did not accelerate: first %v, second %v", first, second)
	}
}

func TestTrainEpochSGDMatchesPlainAtZeroMomentum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := waves(rng, 80, 16)
	a := tinyArch().Build(9)
	b := tinyArch().Build(9)
	ra := rand.New(rand.NewSource(5))
	rb := rand.New(rand.NewSource(5))
	lossA, err := a.TrainEpoch(x, y, 0.05, 16, ra)
	if err != nil {
		t.Fatal(err)
	}
	lossB, err := b.TrainEpochSGD(x, y, NewSGD(0.05, 0), 16, rb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lossA-lossB) > 1e-12 {
		t.Fatalf("losses differ: %v vs %v", lossA, lossB)
	}
	for i, wa := range a.Weights() {
		wb := b.Weights()[i]
		if !mat.Equal(wa, wb, 1e-12) {
			t.Fatalf("weight tensor %d differs between plain and SGD(0) training", i)
		}
	}
}

func TestTrainEpochSGDWithDropoutLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := waves(rng, 160, 16)
	arch := tinyArch()
	conv := NewConv1D(1, arch.Filters, arch.InputLen, arch.Kernel, arch.Stride, rng)
	drop := NewDropout(conv.OutCols(), 0.2, 7)
	dense := NewDense(conv.OutCols(), 2, rng)
	net := &Network{Layers: []Layer{conv, NewReLU(conv.OutCols()), drop, dense}, Classes: 2}
	opt := NewSGD(0.05, 0.9)
	var loss float64
	var err error
	for e := 0; e < 20; e++ {
		loss, err = net.TrainEpochSGD(x, y, opt, 16, rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	if loss > 0.4 {
		t.Fatalf("loss %v after training with dropout+momentum", loss)
	}
	if drop.training {
		t.Fatal("dropout left in training mode after the epoch")
	}
	pred := net.Predict(x)
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.85 {
		t.Fatalf("accuracy %v", acc)
	}
}
