// Package eddl is the deep-learning substrate of the paper's §III-D: a
// small neural-network library in the role of EDDL (the European
// Distributed Deep Learning library), plus the PyCOMPSs-distributed
// data-parallel trainer of Figures 9 (plain) and 10 (nested).
//
// The network architecture the paper converged on — "two 1-dimensional
// convolutional layers with 32 filters and a final dense layer with 32
// neurons" — is available through NewCNN. Training is plain mini-batch SGD
// on softmax cross-entropy; data parallelism retrieves the weights of every
// worker after each epoch, merges (averages) them, and seeds the next epoch,
// exactly the synchronisation pattern whose cost the paper analyses.
//
// # Public surface
//
// Layer implementations (Conv1D, MaxPool1D, Dense, Dropout, ...) compose
// into a Network; NewCNN builds the paper's architecture. TrainKFold runs
// the data-parallel cross-validated trainer on a compss runtime (plain or
// nested — Figures 9 and 10); TrainFederated is the federated variant.
//
// # Concurrency and ownership
//
// A Network and its layers are single-goroutine objects: the distributed
// trainers give each worker task its own replica (weights are copied in and
// out through the Weights/SetWeights round-trip) and merge results on the
// master. Scratch buffers are pooled per network; ReleaseScratch returns
// them. Nothing here is safe for concurrent use of a single instance.
package eddl
