package eddl

import (
	"math"
	"math/rand"
	"testing"

	"taskml/internal/compss"
	"taskml/internal/mat"
)

// tinyArch keeps unit tests fast.
func tinyArch() Arch {
	return Arch{InputLen: 16, Filters: 4, Kernel: 3, Stride: 2, Hidden: 8, Classes: 2}
}

// waves builds a frequency-discrimination dataset: class 0 is a slow wave,
// class 1 a fast wave, with noise — a miniature of the ECG band structure.
func waves(rng *rand.Rand, n, length int) (*mat.Dense, []int) {
	x := mat.New(n, length)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		freq := 1.0
		if c == 1 {
			freq = 3.0
		}
		phase := rng.Float64() * 2 * math.Pi
		for j := 0; j < length; j++ {
			x.Set(i, j, math.Sin(2*math.Pi*freq*float64(j)/float64(length)+phase)+0.1*rng.NormFloat64())
		}
	}
	return x, y
}

func TestConv1DShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(2, 3, 10, 3, 1, rng)
	if c.OutLen() != 8 || c.OutCols() != 24 {
		t.Fatalf("OutLen=%d OutCols=%d", c.OutLen(), c.OutCols())
	}
	cs := NewConv1D(1, 4, 16, 3, 2, rng)
	if cs.OutLen() != 7 {
		t.Fatalf("strided OutLen=%d, want 7", cs.OutLen())
	}
	x := mat.New(5, 20) // 2 channels × 10
	out := c.Forward(x)
	if out.Rows != 5 || out.Cols != 24 {
		t.Fatalf("forward shape %dx%d", out.Rows, out.Cols)
	}
}

func TestConv1DKernelTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewConv1D(1, 1, 4, 8, 1, rand.New(rand.NewSource(1)))
}

func TestConv1DKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv1D(1, 1, 4, 2, 1, rng)
	// Overwrite weights with known values: w = [1, 2], b = 0.5.
	c.w.W.Data[0], c.w.W.Data[1] = 1, 2
	c.b.W.Data[0] = 0.5
	x := mat.NewFromData(1, 4, []float64{1, 2, 3, 4})
	out := c.Forward(x)
	want := []float64{1*1 + 2*2 + 0.5, 2*1 + 3*2 + 0.5, 3*1 + 4*2 + 0.5}
	for i, w := range want {
		if math.Abs(out.At(0, i)-w) > 1e-12 {
			t.Fatalf("out = %v, want %v", out.Row(0), want)
		}
	}
}

// Numerical gradient check across all parameters of the full network —
// the decisive correctness test for the backward pass.
func TestGradientCheck(t *testing.T) {
	arch := tinyArch()
	net := arch.Build(3)
	rng := rand.New(rand.NewSource(4))
	x := mat.New(3, arch.InputLen)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := []int{0, 1, 0}

	lossOf := func() float64 {
		logits := net.Forward(x)
		l, _ := softmaxCE(logits, y)
		return l
	}

	// Analytic gradients.
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = 0
			}
		}
	}
	logits := net.Forward(x)
	_, grad := softmaxCE(logits, y)
	for i := len(net.Layers) - 1; i >= 0; i-- {
		grad = net.Layers[i].Backward(grad)
	}

	const eps = 1e-6
	checked := 0
	for li, l := range net.Layers {
		for pi, p := range l.Params() {
			step := len(p.W.Data)/5 + 1
			for i := 0; i < len(p.W.Data); i += step {
				orig := p.W.Data[i]
				p.W.Data[i] = orig + eps
				lp := lossOf()
				p.W.Data[i] = orig - eps
				lm := lossOf()
				p.W.Data[i] = orig
				numeric := (lp - lm) / (2 * eps)
				analytic := p.Grad.Data[i]
				if math.Abs(numeric-analytic) > 1e-4*(math.Abs(numeric)+math.Abs(analytic)+1e-3) {
					t.Fatalf("layer %d param %d index %d: numeric %v vs analytic %v", li, pi, i, numeric, analytic)
				}
				checked++
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

func TestTrainingLearnsWaves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := waves(rng, 200, 16)
	net := tinyArch().Build(5)
	var lastLoss float64
	for e := 0; e < 15; e++ {
		loss, err := net.TrainEpoch(x, y, 0.05, 16, rng)
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = loss
	}
	if lastLoss > 0.3 {
		t.Fatalf("loss %v after training", lastLoss)
	}
	pred := net.Predict(x)
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.9 {
		t.Fatalf("training accuracy %v", acc)
	}
}

func TestTrainEpochErrors(t *testing.T) {
	net := tinyArch().Build(1)
	rng := rand.New(rand.NewSource(6))
	if _, err := net.TrainEpoch(mat.New(2, 16), []int{0}, 0.1, 8, rng); err == nil {
		t.Fatal("want label mismatch error")
	}
	if _, err := net.TrainEpoch(mat.New(0, 16), nil, 0.1, 8, rng); err == nil {
		t.Fatal("want empty set error")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	a := tinyArch().Build(7)
	b := tinyArch().Build(8)
	rng := rand.New(rand.NewSource(9))
	x := mat.New(4, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	if err := b.SetWeights(a.Weights()); err != nil {
		t.Fatal(err)
	}
	pa := a.Forward(x)
	pb := b.Forward(x)
	if !mat.Equal(pa, pb, 1e-12) {
		t.Fatal("SetWeights(Weights()) did not replicate the network")
	}
	// Weights must be copies: mutating them must not affect the source.
	ws := a.Weights()
	ws[0].Data[0] += 100
	pa2 := a.Forward(x)
	if !mat.Equal(pa, pa2, 0) {
		t.Fatal("Weights() aliases network parameters")
	}
}

func TestSetWeightsErrors(t *testing.T) {
	net := tinyArch().Build(10)
	ws := net.Weights()
	if err := net.SetWeights(ws[:len(ws)-1]); err == nil {
		t.Fatal("want arity error")
	}
	bad := net.Weights()
	bad[0] = mat.New(1, 1)
	if err := net.SetWeights(bad); err == nil {
		t.Fatal("want shape error")
	}
	if err := net.SetWeights(append(net.Weights(), mat.New(1, 1))); err == nil {
		t.Fatal("want too-many error")
	}
}

func TestMergeWeightsAverages(t *testing.T) {
	a := [][]*mat.Dense{
		{mat.NewFromData(1, 2, []float64{2, 4})},
		{mat.NewFromData(1, 2, []float64{4, 8})},
	}
	m, err := MergeWeights(a)
	if err != nil {
		t.Fatal(err)
	}
	if m[0].At(0, 0) != 3 || m[0].At(0, 1) != 6 {
		t.Fatalf("merged = %v", m[0])
	}
	if _, err := MergeWeights(nil); err == nil {
		t.Fatal("want empty error")
	}
	bad := [][]*mat.Dense{{mat.New(1, 2)}, {mat.New(2, 2)}}
	if _, err := MergeWeights(bad); err == nil {
		t.Fatal("want shape mismatch error")
	}
}

func TestTaskSecondsGPUModel(t *testing.T) {
	cfg := TrainConfig{}.withDefaults()
	t1 := taskSeconds(1000, 1e6, 1, cfg.GPUSyncFrac)
	t4 := taskSeconds(1000, 1e6, 4, cfg.GPUSyncFrac)
	ratio := t4 / t1
	if ratio < 1.15 || ratio > 1.25 {
		t.Fatalf("4-GPU/1-GPU ratio %v, want ≈ 1.2 (the paper's observation)", ratio)
	}
}

func TestFwdFlopsPositiveAndAdditive(t *testing.T) {
	net := tinyArch().Build(11)
	total := net.FwdFlopsPerSample()
	if total <= 0 {
		t.Fatal("FwdFlopsPerSample must be positive")
	}
	var sum float64
	for _, l := range net.Layers {
		sum += l.FwdFlops()
	}
	if math.Abs(total-sum) > 1e-9 {
		t.Fatal("FwdFlopsPerSample must sum layer flops")
	}
	if net.WeightBytes() <= 0 {
		t.Fatal("WeightBytes must be positive")
	}
}

func TestTrainKFoldPlainAndNestedAgreeOnQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y := waves(rng, 120, 16)
	arch := tinyArch()
	cfg := TrainConfig{Folds: 3, Epochs: 12, Workers: 2, LR: 0.1, Seed: 12}

	rtPlain := compss.New(compss.Config{Workers: 4})
	plain, err := TrainKFold(rtPlain, x, y, arch, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	rtNested := compss.New(compss.Config{Workers: 4})
	nested, err := TrainKFold(rtNested, x, y, arch, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Accuracy() < 0.75 {
		t.Fatalf("plain accuracy %v", plain.Accuracy())
	}
	if nested.Accuracy() < 0.75 {
		t.Fatalf("nested accuracy %v", nested.Accuracy())
	}
	if len(plain.FoldConfusions) != 3 || len(nested.FoldAccuracies) != 3 {
		t.Fatal("fold bookkeeping wrong")
	}
	// Same folds, same seeds, same task bodies: identical pooled matrices.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if plain.Confusion.Counts[i][j] != nested.Confusion.Counts[i][j] {
				t.Fatalf("plain and nested confusions differ: %v vs %v",
					plain.Confusion.Counts, nested.Confusion.Counts)
			}
		}
	}
}

func TestTrainKFoldGraphShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, y := waves(rng, 60, 16)
	arch := tinyArch()
	cfg := TrainConfig{Folds: 2, Epochs: 2, Workers: 2, Seed: 13}

	rtPlain := compss.New(compss.Config{Workers: 4})
	if _, err := TrainKFold(rtPlain, x, y, arch, cfg, false); err != nil {
		t.Fatal(err)
	}
	gp := rtPlain.Graph()
	for _, tk := range gp.Tasks() {
		if tk.Parent != -1 {
			t.Fatal("plain version must not nest tasks")
		}
	}
	cp := gp.CountByName()
	// Per fold: 1 partition + 1 init + 2 epochs × (2 train + 1 merge) + 1 eval.
	if cp["cnn_train"] != 2*2*2 || cp["cnn_merge"] != 2*2 || cp["fold_train"] != 0 {
		t.Fatalf("plain graph: %v", cp)
	}

	rtNested := compss.New(compss.Config{Workers: 4})
	if _, err := TrainKFold(rtNested, x, y, arch, cfg, true); err != nil {
		t.Fatal(err)
	}
	gn := rtNested.Graph()
	cn := gn.CountByName()
	if cn["fold_train"] != 2 {
		t.Fatalf("nested graph: %v", cn)
	}
	// All cnn_* tasks must live inside a fold task.
	foldIDs := map[int]bool{}
	for _, tk := range gn.Tasks() {
		if tk.Name == "fold_train" {
			foldIDs[tk.ID] = true
		}
	}
	for _, tk := range gn.Tasks() {
		if tk.Name == "cnn_train" && !foldIDs[tk.Parent] {
			t.Fatalf("cnn_train task %d not nested in a fold (parent %d)", tk.ID, tk.Parent)
		}
	}
	if err := gn.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainKFoldInputValidation(t *testing.T) {
	rt := compss.New(compss.Config{Workers: 2})
	x := mat.New(10, 16)
	if _, err := TrainKFold(rt, x, make([]int, 8), tinyArch(), TrainConfig{Folds: 2}, false); err == nil {
		t.Fatal("want label mismatch error")
	}
	badArch := tinyArch()
	badArch.InputLen = 99
	if _, err := TrainKFold(rt, x, make([]int, 10), badArch, TrainConfig{Folds: 2}, false); err == nil {
		t.Fatal("want input length error")
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	x, y := waves(rng, 128, 16)
	net := tinyArch().Build(14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.TrainEpoch(x, y, 0.05, 32, rng); err != nil {
			b.Fatal(err)
		}
	}
}
