// Package core is the paper's application: distributed machine-learning
// workflows for atrial-fibrillation detection from single-lead ECG
// (§III). It wires the substrates together — synthetic ECG generation and
// augmentation (internal/ecg), zero-padding + STFT features
// (internal/sigproc), distributed PCA (internal/preproc), and the four
// classifiers (internal/svm, internal/knn, internal/forest, internal/eddl) —
// into the exact experiment pipelines of the paper's evaluation (§IV).
//
// # Public surface
//
// BuildDataset constructs the augmented feature dataset from a DataConfig
// (TableIData gives the calibrated Table I configuration). PipelineConfig
// carries every experiment knob — folds, block geometry, retry policy,
// observers, and the execution Backend (nil in-process, exec.Remote for
// worker processes). RunCV runs a full cross-validation for one Model;
// ReduceWithPCA + RunCVReduced split out the shared PCA stage;
// TrainGraph captures a training workflow's task graph for replay.
//
// # Concurrency and ownership
//
// Each Run*/TrainGraph call drives its own compss.Runtime and is safe to
// call from one goroutine at a time per runtime; datasets returned by
// BuildDataset are immutable after construction and may be shared across
// concurrent runs. A caller-provided Backend is borrowed, not owned: the
// caller closes it.
package core
