package core

import (
	"fmt"

	"taskml/internal/ecg"
	"taskml/internal/mat"
	"taskml/internal/sigproc"

	"math/rand"
)

// FeatureConfig shapes the STFT feature extraction of §III-B. The paper
// zero-pads every recording to the longest signal (18300 samples ≈ 61 s at
// 300 Hz), computes a spectrogram, and flattens it to an 18810-long vector.
// Two scaled-down knobs keep the covariance eigendecomposition tractable on
// a laptop: frequencies above MaxFreqHz are dropped (ECG diagnostic content
// lives below ~40 Hz; the AF f-wave band is 4–9 Hz) and TimePool adjacent
// segments are averaged.
type FeatureConfig struct {
	// PadSec is the zero-padding target length in seconds. Default 20.
	PadSec float64
	// Window is the STFT segment size (power of two). Default 512.
	Window int
	// Overlap is the STFT segment overlap. Default 0.
	Overlap int
	// MaxFreqHz truncates the spectrogram's frequency axis. Default 30.
	MaxFreqHz float64
	// TimePool averages groups of adjacent time segments. Default 1 (off).
	TimePool int
}

func (c FeatureConfig) withDefaults() FeatureConfig {
	if c.PadSec == 0 {
		c.PadSec = 20
	}
	if c.Window == 0 {
		c.Window = 512
	}
	if c.MaxFreqHz == 0 {
		c.MaxFreqHz = 30
	}
	if c.TimePool == 0 {
		c.TimePool = 1
	}
	return c
}

// spec builds the sigproc configuration for a sampling rate.
func (c FeatureConfig) spec(fs float64) sigproc.SpectrogramConfig {
	return sigproc.SpectrogramConfig{Fs: fs, WindowSize: c.Window, Overlap: c.Overlap}
}

// FeatureLen returns the flattened feature count for the configuration at
// the given sampling rate.
func (c FeatureConfig) FeatureLen(fs float64) int {
	c = c.withDefaults()
	sp := c.spec(fs)
	n := int(c.PadSec * fs)
	bins := c.keptBins(fs)
	segs := sp.NumSegments(n) / c.TimePool
	return bins * segs
}

func (c FeatureConfig) keptBins(fs float64) int {
	binHz := fs / float64(c.Window)
	bins := int(c.MaxFreqHz/binHz) + 1
	if max := c.Window/2 + 1; bins > max {
		bins = max
	}
	return bins
}

// Features converts one recording into its flattened, truncated
// spectrogram feature vector.
func (c FeatureConfig) Features(rec ecg.Record) ([]float64, error) {
	c = c.withDefaults()
	n := int(c.PadSec * rec.Fs)
	padded := sigproc.ZeroPad(rec.Signal, n)
	spec, _, _, err := sigproc.Spectrogram(padded, c.spec(rec.Fs))
	if err != nil {
		return nil, err
	}
	bins := c.keptBins(rec.Fs)
	segs := spec.Cols / c.TimePool
	out := make([]float64, 0, bins*segs)
	for b := 0; b < bins; b++ {
		for s := 0; s < segs; s++ {
			var v float64
			for p := 0; p < c.TimePool; p++ {
				v += spec.At(b, s*c.TimePool+p)
			}
			out = append(out, v/float64(c.TimePool))
		}
	}
	return out, nil
}

// DataConfig describes a synthetic experiment dataset.
type DataConfig struct {
	// NNormal and NAF are the raw class counts before augmentation. The
	// CinC-2017 subset the paper uses has 5154 Normal and 771 AF; defaults
	// here are a laptop-scale 400/60 with the same ≈6.7:1 imbalance.
	NNormal, NAF int
	// Balance applies the Figure 2 shuffling augmentation to equalise the
	// classes. Default on (set SkipBalance to disable).
	SkipBalance bool
	// MinDurSec and MaxDurSec bound recording length. Defaults 9 and 20
	// (the CinC range is 9–61; shortened to keep features tractable).
	MinDurSec, MaxDurSec float64
	// NoiseStd is the generator's measurement noise. Default 0.12 — the
	// short AliveCor strips of the CinC challenge are noisy, and the class
	// overlap this creates is what produces the paper's Table I error
	// patterns.
	NoiseStd float64
	// AFSubtlety blends AF morphology toward Normal (see ecg.GenConfig).
	// Default 0.5.
	AFSubtlety float64
	// Feature configures the STFT features.
	Feature FeatureConfig
	// Seed drives generation, augmentation and shuffling.
	Seed int64
}

func (c DataConfig) withDefaults() DataConfig {
	if c.NNormal == 0 {
		c.NNormal = 400
	}
	if c.NAF == 0 {
		c.NAF = 60
	}
	if c.MinDurSec == 0 {
		c.MinDurSec = 9
	}
	if c.MaxDurSec == 0 {
		c.MaxDurSec = 20
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.12
	}
	if c.AFSubtlety == 0 {
		c.AFSubtlety = 0.5
	}
	c.Feature = c.Feature.withDefaults()
	if c.Feature.PadSec < c.MaxDurSec {
		c.Feature.PadSec = c.MaxDurSec
	}
	return c
}

// Label values: the paper's two-class problem.
const (
	// LabelAF is class 0 so Table I's row order (AF first) falls out of the
	// confusion-matrix rendering.
	LabelAF = 0
	// LabelNormal is class 1.
	LabelNormal = 1
)

// ClassLabels names the classes for confusion-matrix rendering.
var ClassLabels = []string{"AF", "N"}

// Dataset is a featurised experiment dataset.
type Dataset struct {
	// X holds one flattened spectrogram per row.
	X *mat.Dense
	// Y holds LabelAF/LabelNormal per row.
	Y []int
	// Records keeps the underlying signals (aligned with rows).
	Records []ecg.Record
	// Config echoes the generating configuration (post defaults).
	Config DataConfig
}

// BuildDataset generates, balances and featurises a synthetic dataset —
// the paper's §III-B pipeline end to end.
func BuildDataset(cfg DataConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	gen := ecg.NewGenerator(ecg.GenConfig{
		Seed:       cfg.Seed,
		MinDurSec:  cfg.MinDurSec,
		MaxDurSec:  cfg.MaxDurSec,
		NoiseStd:   cfg.NoiseStd,
		AFSubtlety: cfg.AFSubtlety,
	})
	recs := gen.Dataset(cfg.NNormal, cfg.NAF)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	if !cfg.SkipBalance {
		recs = ecg.Balance(recs, rng)
	}
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })

	if len(recs) == 0 {
		return nil, fmt.Errorf("core: empty dataset (%d Normal, %d AF)", cfg.NNormal, cfg.NAF)
	}
	d := cfg.Feature.FeatureLen(recs[0].Fs)
	x := mat.New(len(recs), d)
	y := make([]int, len(recs))
	for i, rec := range recs {
		feats, err := cfg.Feature.Features(rec)
		if err != nil {
			return nil, fmt.Errorf("core: featurising record %d: %w", i, err)
		}
		if len(feats) != d {
			return nil, fmt.Errorf("core: record %d yielded %d features, want %d", i, len(feats), d)
		}
		copy(x.Row(i), feats)
		if rec.Class == ecg.AF {
			y[i] = LabelAF
		} else {
			y[i] = LabelNormal
		}
	}
	return &Dataset{X: x, Y: y, Records: recs, Config: cfg}, nil
}

// Counts returns the per-class sample counts of the featurised dataset.
func (d *Dataset) Counts() (af, normal int) {
	for _, l := range d.Y {
		if l == LabelAF {
			af++
		} else {
			normal++
		}
	}
	return
}
