package core

import (
	"math"
	"testing"

	"taskml/internal/mat"
)

// TestRunCVBitIdenticalUnderPoolPoisoning is the enforcement test for the
// scratch ownership contract (DESIGN.md, "Memory model"): every value the
// AF pipeline publishes through a compss.Future must be freshly allocated,
// never pooled scratch. It runs the pipeline end to end — feature
// extraction, PCA, folds, models — three ways:
//
//   - pooling disabled (Get always allocates): the reference, equivalent to
//     the pre-arena implementation;
//   - pooling on: the production configuration;
//   - pooling on with debug poisoning: every buffer returned to the pool is
//     filled with NaN, so a task that leaked scratch into a published value
//     turns the final numbers into NaN instead of stale-but-plausible data.
//
// All three must produce bit-identical fold accuracies and confusion
// matrices. Run under -race (scripts/check.sh does), the poisoned pass also
// shakes out cross-task sharing of recycled buffers.
func TestRunCVBitIdenticalUnderPoolPoisoning(t *testing.T) {
	models := []Model{ModelKNN, ModelCNN}
	type outcome struct {
		counts [2][2]int
		folds  []float64
	}
	run := func() map[Model]outcome {
		ds, err := BuildDataset(smallData(21))
		if err != nil {
			t.Fatal(err)
		}
		out := map[Model]outcome{}
		for _, m := range models {
			rep, err := RunCV(m, ds, fastCfg(21))
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			var o outcome
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					o.counts[i][j] = rep.Confusion.Counts[i][j]
				}
			}
			o.folds = rep.FoldAccuracies
			for _, a := range o.folds {
				if math.IsNaN(a) {
					t.Fatalf("%s: NaN fold accuracy — poisoned scratch leaked into a published value", m)
				}
			}
			out[m] = o
		}
		return out
	}

	mat.Scratch.SetDisabled(true)
	ref := run()
	mat.Scratch.SetDisabled(false)

	pooled := run()

	mat.Scratch.SetDebug(true)
	defer mat.Scratch.SetDebug(false)
	poisoned := run()

	for _, m := range models {
		for name, got := range map[string]outcome{"pooled": pooled[m], "poisoned": poisoned[m]} {
			if got.counts != ref[m].counts {
				t.Errorf("%s/%s: confusion %v differs from unpooled reference %v", m, name, got.counts, ref[m].counts)
			}
			if len(got.folds) != len(ref[m].folds) {
				t.Fatalf("%s/%s: %d folds vs %d", m, name, len(got.folds), len(ref[m].folds))
			}
			for i := range got.folds {
				if got.folds[i] != ref[m].folds[i] {
					t.Errorf("%s/%s: fold %d accuracy %v differs from reference %v", m, name, i, got.folds[i], ref[m].folds[i])
				}
			}
		}
	}
}
